package cvm_test

import (
	"testing"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/harness"
)

// The benchmarks below regenerate each of the paper's tables and figures
// once per iteration, reporting simulated-cluster metrics alongside Go
// wall time. They run at the "test" input scale so `go test -bench=.`
// stays quick; use cmd/cvm-bench (-size small|paper) for full-scale runs.

// benchGrid runs one grid configuration per iteration.
func benchGrid(b *testing.B, appNames []string, nodes, threads []int) harness.Results {
	b.Helper()
	var res harness.Results
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunGrid(appNames, apps.SizeTest,
			harness.GridShapes(nodes, threads), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkSection41_Costs regenerates the §4.1 primitive-cost numbers.
func BenchmarkSection41_Costs(b *testing.B) {
	var c harness.Costs
	for i := 0; i < b.N; i++ {
		var err error
		c, err = harness.MeasureCosts()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.TwoHopLock.Microseconds(), "2hop-µs")
	b.ReportMetric(c.ThreeHopLock.Microseconds(), "3hop-µs")
	b.ReportMetric(c.PageFault.Microseconds(), "fault-µs")
	b.ReportMetric(c.Barrier8.Microseconds(), "barrier-µs")
}

// BenchmarkFigure1 regenerates the normalized-execution-time grid
// (all applications, 4 and 8 processors, 1-4 threads).
func BenchmarkFigure1(b *testing.B) {
	res := benchGrid(b, harness.AppOrder, []int{4, 8}, harness.ThreadLevels)
	rows := harness.Figure1(res, harness.AppOrder, []int{4, 8}, harness.ThreadLevels)
	// Report the paper's headline: mean normalized time at 8 procs / 4
	// threads across the suite (< 1.0 means multi-threading wins).
	var sum float64
	var n int
	for _, r := range rows {
		if r.Nodes == 8 && r.Threads == 4 {
			sum += r.Norm
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "mean-norm-8p4t")
	}
}

// BenchmarkTable2_Communication regenerates the communication table at 8
// processors.
func BenchmarkTable2_Communication(b *testing.B) {
	res := benchGrid(b, harness.AppOrder, []int{8}, harness.ThreadLevels)
	rows := harness.Table2(res, harness.AppOrder, 8, harness.ThreadLevels)
	var msgs int64
	for _, r := range rows {
		msgs += r.TotalMsgs
	}
	b.ReportMetric(float64(msgs), "total-msgs")
}

// BenchmarkTable3_DSMActions regenerates the DSM-actions table at 8
// processors.
func BenchmarkTable3_DSMActions(b *testing.B) {
	res := benchGrid(b, harness.AppOrder, []int{8}, harness.ThreadLevels)
	rows := harness.Table3(res, harness.AppOrder, 8, harness.ThreadLevels)
	var switches, diffs int64
	for _, r := range rows {
		switches += r.ThreadSwitches
		diffs += r.DiffsCreated
	}
	b.ReportMetric(float64(switches), "switches")
	b.ReportMetric(float64(diffs), "diffs-created")
}

// BenchmarkFigure2_MemorySystem regenerates the cache/TLB miss series.
func BenchmarkFigure2_MemorySystem(b *testing.B) {
	res := benchGrid(b, harness.AppOrder, []int{8}, harness.ThreadLevels)
	rows := harness.Figure2(res, harness.AppOrder, 8, harness.ThreadLevels)
	var dcache int64
	for _, r := range rows {
		dcache += r.DCacheMisses
	}
	b.ReportMetric(float64(dcache), "dcache-misses")
}

// BenchmarkTable4_Scalability regenerates the scalability deltas over 4,
// 8 and 16 processors.
func BenchmarkTable4_Scalability(b *testing.B) {
	names := []string{"fft", "ocean", "sor", "swm750", "watersp", "waternsq"}
	res := benchGrid(b, names, []int{4, 8, 16}, []int{1, 2, 4})
	rows := harness.Table4(res, names, []int{4, 8, 16}, []int{2, 4})
	b.ReportMetric(float64(len(rows)), "rows")
}

// BenchmarkTable5_WaterNsqOptimizations regenerates the Water-Nsq
// source-modification case study.
func BenchmarkTable5_WaterNsqOptimizations(b *testing.B) {
	var rows []harness.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Table5(apps.SizeTest, 8, harness.ThreadLevels, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Variant == "waternsq" && r.Threads == 4 {
			b.ReportMetric(r.SpeedupPct, "both-opts-4t-spdup-%")
		}
	}
}

// BenchmarkApps measures a single simulated run of each application, the
// unit of work every table is built from.
func BenchmarkApps(b *testing.B) {
	for _, name := range apps.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			var wall cvm.Time
			for i := 0; i < b.N; i++ {
				st, err := apps.Run(name, apps.SizeTest, 8, 2)
				if err != nil {
					b.Fatal(err)
				}
				wall = st.Wall
			}
			b.ReportMetric(wall.Milliseconds(), "sim-ms")
		})
	}
}

// BenchmarkAblation_SwitchCost regenerates the thread-switch-cost
// sensitivity study (DESIGN.md ablation).
func BenchmarkAblation_SwitchCost(b *testing.B) {
	var rows []harness.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.AblationSwitchCost("waternsq", apps.SizeTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].SpeedupPct, "spdup-8µs-%")
	b.ReportMetric(rows[len(rows)-1].SpeedupPct, "spdup-1ms-%")
}

// BenchmarkAblation_WireLatency regenerates the remote-latency
// sensitivity study (DESIGN.md ablation).
func BenchmarkAblation_WireLatency(b *testing.B) {
	var rows []harness.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.AblationWireLatency("waternsq", apps.SizeTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].SpeedupPct, "spdup-4x-%")
}

// BenchmarkProtocols compares the paper's lazy multi-writer protocol
// against the single-writer invalidate baseline across the suite.
func BenchmarkProtocols(b *testing.B) {
	var rows []harness.ProtocolRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.CompareProtocols([]string{"sor", "waternsq"},
			apps.SizeTest, 8, 2, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.App == "waternsq" {
			b.ReportMetric(float64(r.SWWall)/float64(r.LRCWall), "sw/lrc-wall")
		}
	}
}
