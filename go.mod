module cvm

go 1.22
