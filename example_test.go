package cvm_test

import (
	"fmt"
	"log"

	"cvm"
)

// ExampleCluster demonstrates the basic shared-memory workflow: allocate,
// write on one thread, synchronize with a barrier, read everywhere. The
// simulation is deterministic, so the output is exact.
func ExampleCluster() {
	cluster, err := cvm.New(cvm.DefaultConfig(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	data := cluster.MustAllocF64("data", 8)

	_, err = cluster.Run(func(w cvm.Worker) {
		if w.GlobalID() == 0 {
			data.Set(w, 0, 42)
		}
		w.Barrier(0)
		if w.GlobalID() == w.Threads()-1 {
			fmt.Println("last thread reads", data.Get(w, 0))
		}
		w.Barrier(1)
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: last thread reads 42
}

// ExampleWorker_ReduceF64 shows CVM's built-in reduction: one message
// pair per node regardless of the per-node threading level.
func ExampleWorker_ReduceF64() {
	cluster, err := cvm.New(cvm.DefaultConfig(4, 2))
	if err != nil {
		log.Fatal(err)
	}
	cluster.MustAlloc("pad", 64)

	_, err = cluster.Run(func(w cvm.Worker) {
		sum := w.ReduceF64(0, float64(w.GlobalID()+1), cvm.ReduceSum)
		if w.GlobalID() == 0 {
			fmt.Println("sum of 1..8 =", sum)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: sum of 1..8 = 36
}

// ExampleWorker_Lock shows mutual exclusion: the lock grant carries the
// write notices that make the previous holder's update visible.
func ExampleWorker_Lock() {
	cluster, err := cvm.New(cvm.DefaultConfig(4, 1))
	if err != nil {
		log.Fatal(err)
	}
	counter := cluster.MustAllocI64("counter", 1)

	_, err = cluster.Run(func(w cvm.Worker) {
		for i := 0; i < 3; i++ {
			w.Lock(1)
			counter.Set(w, 0, counter.Get(w, 0)+1)
			w.Unlock(1)
		}
		w.Barrier(0)
		if w.GlobalID() == 0 {
			fmt.Println("counter =", counter.Get(w, 0))
		}
		w.Barrier(1)
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: counter = 12
}
