// Gridsolver: the paper's headline result as a runnable demo. A red-black
// Laplace solver with nearest-neighbour communication runs at increasing
// per-node threading levels; per-node multi-threading hides remote page
// fault latency behind the other threads' computation, so non-overlapped
// fault wait shrinks while total time drops — without any change to the
// solver's code (the transparency the paper aims for).
//
// Run:
//
//	go run ./examples/gridsolver
package main

import (
	"fmt"
	"log"

	"cvm"
)

const (
	rows  = 66
	cols  = 1024
	iters = 6
	nodes = 8
)

func main() {
	fmt.Printf("red-black solver on %d nodes, %dx%d grid, %d iterations\n",
		nodes, rows, cols, iters)
	fmt.Printf("\n%8s %14s %14s %14s %10s\n",
		"threads", "wall", "fault wait", "barrier wait", "switches")

	var base cvm.Time
	for _, threads := range []int{1, 2, 3, 4} {
		stats, err := solve(threads)
		if err != nil {
			log.Fatal(err)
		}
		if threads == 1 {
			base = stats.Wall
		}
		fmt.Printf("%8d %14v %14v %14v %10d   (%+.1f%% vs 1 thread)\n",
			threads, stats.Wall, stats.Total.FaultWait, stats.Total.BarrierWait,
			stats.Total.ThreadSwitches,
			100*(float64(base)/float64(stats.Wall)-1))
	}
}

func solve(threads int) (cvm.Stats, error) {
	cluster, err := cvm.New(cvm.DefaultConfig(nodes, threads))
	if err != nil {
		return cvm.Stats{}, err
	}
	grid := cluster.MustAllocF64Matrix("grid", rows, cols, true)

	return cluster.Run(func(w cvm.Worker) {
		if w.GlobalID() == 0 {
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					v := 0.0
					if i == 0 || j == 0 || i == rows-1 || j == cols-1 {
						v = 1
					}
					grid.Set(w, i, j, v)
				}
			}
		}
		w.Barrier(0)
		if w.GlobalID() == 0 {
			w.MarkSteadyState()
		}
		w.Barrier(1)

		lo := 1 + (rows-2)*w.GlobalID()/w.Threads()
		hi := 1 + (rows-2)*(w.GlobalID()+1)/w.Threads()
		bar := 10
		for it := 0; it < iters; it++ {
			for color := 0; color < 2; color++ {
				for i := lo; i < hi; i++ {
					for j := 1 + (i+color)%2; j < cols-1; j += 2 {
						grid.Set(w, i, j, 0.25*(grid.Get(w, i-1, j)+
							grid.Get(w, i+1, j)+grid.Get(w, i, j-1)+grid.Get(w, i, j+1)))
					}
				}
				w.Barrier(bar)
				bar++
			}
		}
	})
}
