// Reduction: CVM's built-in reduction support versus the naive
// global-lock accumulation pattern. The paper notes CVM "does support
// simple reduction types, but none of the applications in our study take
// advantage of them" — this example shows what they left on the table:
// one message pair per node, independent of the threading level, versus a
// serialized lock chain.
//
// Run:
//
//	go run ./examples/reduction
package main

import (
	"fmt"
	"log"

	"cvm"
)

const (
	nodes   = 8
	threads = 4
	rounds  = 5
)

func main() {
	fmt.Printf("global sum, %d nodes x %d threads, %d rounds\n", nodes, threads, rounds)

	// Naive: every thread takes a global lock to add its contribution.
	naive, err := run(func(w cvm.Worker, acc cvm.F64Array, round int) float64 {
		w.Lock(0)
		acc.Add(w, round, float64(w.GlobalID()+1))
		w.Unlock(0)
		w.Barrier(100 + round)
		return acc.Get(w, round)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Built-in: the runtime aggregates locally, then one message pair
	// per node.
	builtin, err := run(func(w cvm.Worker, acc cvm.F64Array, round int) float64 {
		return w.ReduceF64(round, float64(w.GlobalID()+1), cvm.ReduceSum)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %14s %14s\n", "", "global lock", "ReduceF64")
	fmt.Printf("%-22s %14v %14v\n", "wall time", naive.Wall, builtin.Wall)
	fmt.Printf("%-22s %14d %14d\n", "total messages", naive.Net.TotalMsgs(), builtin.Net.TotalMsgs())
	fmt.Printf("%-22s %14v %14v\n", "lock wait", naive.Total.LockWait, builtin.Total.LockWait)
	fmt.Printf("%-22s %14d %14d\n", "remote locks", naive.Total.RemoteLocks, builtin.Total.RemoteLocks)
}

// run executes `rounds` global sums with the given strategy and verifies
// the result of the last round.
func run(sum func(w cvm.Worker, acc cvm.F64Array, round int) float64) (cvm.Stats, error) {
	cluster, err := cvm.New(cvm.DefaultConfig(nodes, threads))
	if err != nil {
		return cvm.Stats{}, err
	}
	acc := cluster.MustAllocF64("acc", rounds)
	return cluster.Run(func(w cvm.Worker) {
		w.Barrier(0)
		if w.GlobalID() == 0 {
			w.MarkSteadyState()
		}
		w.Barrier(1)
		var last float64
		for r := 0; r < rounds; r++ {
			last = sum(w, acc, r)
		}
		w.Barrier(2)
		total := nodes * threads
		want := float64(total * (total + 1) / 2)
		if w.GlobalID() == 0 && last != want {
			log.Fatalf("sum = %v, want %v", last, want)
		}
	})
}
