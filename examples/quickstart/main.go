// Quickstart: a parallel sum over shared memory on a simulated CVM
// cluster, showing allocation, the worker API, barriers, and the run
// statistics (including the multi-threading effect on fault latency).
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cvm"
)

func main() {
	// Four nodes with two application threads each: the second thread
	// per node is CVM's latency-hiding mechanism — whenever one thread
	// blocks on a remote page fetch, the other runs.
	cluster, err := cvm.New(cvm.DefaultConfig(4, 2))
	if err != nil {
		log.Fatal(err)
	}

	const n = 1 << 15
	data := cluster.MustAllocF64("data", n)
	partial := cluster.MustAllocF64("partials", 64)

	stats, err := cluster.Run(func(w cvm.Worker) {
		// Thread 0 initializes; the barrier publishes the writes (lazy
		// release consistency: the barrier release carries write
		// notices; later reads fault and fetch diffs).
		if w.GlobalID() == 0 {
			for i := 0; i < n; i++ {
				data.Set(w, i, float64(i%1000))
			}
		}
		w.Barrier(0)

		// Every thread sums a contiguous chunk.
		chunk := n / w.Threads()
		lo := w.GlobalID() * chunk
		sum := 0.0
		for i := lo; i < lo+chunk; i++ {
			sum += data.Get(w, i)
		}
		partial.Set(w, w.GlobalID(), sum)
		w.Barrier(1)

		// Thread 0 reduces the partials.
		if w.GlobalID() == 0 {
			total := 0.0
			for i := 0; i < w.Threads(); i++ {
				total += partial.Get(w, i)
			}
			fmt.Printf("total = %.0f\n", total)
		}
		w.Barrier(2)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated wall time:  %v\n", stats.Wall)
	fmt.Printf("remote page faults:   %d\n", stats.Total.RemoteFaults)
	fmt.Printf("thread switches:      %d (latency hiding in action)\n", stats.Total.ThreadSwitches)
	fmt.Printf("fault wait (hidden fraction grows with threads/node): %v\n", stats.Total.FaultWait)
	fmt.Printf("messages on the wire: %d (%d KB)\n",
		stats.Net.TotalMsgs(), stats.Net.TotalBytes()/1024)
}
