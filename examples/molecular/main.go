// Molecular: the paper's Table 5 lesson as a runnable demo. A lock-based
// force accumulation is run two ways at the same threading level:
//
//   - transparent: every thread updates the shared array under
//     per-element locks (the "No Opts" pattern — local threads pile up on
//     the same locks, Block Same Lock grows, and multi-threading hurts);
//   - aggregated: threads combine per node behind a LOCAL barrier and
//     publish one update per node (the paper's `r` modification).
//
// Run:
//
//	go run ./examples/molecular
package main

import (
	"fmt"
	"log"

	"cvm"
)

const (
	elements = 96
	rounds   = 3
	nodes    = 4
	threads  = 3
)

func main() {
	fmt.Printf("lock-based accumulation, %d nodes x %d threads, %d elements x %d rounds\n",
		nodes, threads, elements, rounds)
	for _, aggregated := range []bool{false, true} {
		stats, err := accumulate(aggregated)
		if err != nil {
			log.Fatal(err)
		}
		mode := "transparent (per-thread lock updates)"
		if aggregated {
			mode = "aggregated  (local barrier + one update per node)"
		}
		fmt.Printf("\n%s:\n", mode)
		fmt.Printf("  wall time        %v\n", stats.Wall)
		fmt.Printf("  remote locks     %d\n", stats.Total.RemoteLocks)
		fmt.Printf("  lock messages    %d\n", stats.Net.Msgs[1])
		fmt.Printf("  block same lock  %d\n", stats.Total.BlockSameLock)
		fmt.Printf("  lock wait        %v\n", stats.Total.LockWait)
	}
}

func accumulate(aggregated bool) (cvm.Stats, error) {
	cluster, err := cvm.New(cvm.DefaultConfig(nodes, threads))
	if err != nil {
		return cvm.Stats{}, err
	}
	acc := cluster.MustAllocF64("acc", elements)
	nodeBuf := make([][]float64, nodes)
	for i := range nodeBuf {
		nodeBuf[i] = make([]float64, elements)
	}
	arrived := make([]int, nodes)

	return cluster.Run(func(w cvm.Worker) {
		w.Barrier(0)
		if w.GlobalID() == 0 {
			w.MarkSteadyState()
		}
		w.Barrier(1)

		for r := 0; r < rounds; r++ {
			// Each thread contributes to every element.
			contribution := float64(w.GlobalID() + 1)

			if !aggregated {
				for e := 0; e < elements; e++ {
					w.Lock(10 + e)
					acc.Add(w, e, contribution)
					w.Unlock(10 + e)
				}
			} else {
				buf := nodeBuf[w.NodeID()]
				for e := 0; e < elements; e++ {
					buf[e] += contribution
				}
				w.Compute(cvm.Time(elements) * 40)
				arrived[w.NodeID()]++
				w.LocalBarrier(1)
				if arrived[w.NodeID()] == w.LocalThreads() {
					arrived[w.NodeID()] = 0
					for e := 0; e < elements; e++ {
						w.Lock(10 + e)
						acc.Add(w, e, buf[e])
						buf[e] = 0
						w.Unlock(10 + e)
					}
				}
			}
			w.Barrier(10 + r)
		}

		if w.GlobalID() == 0 {
			want := float64(rounds) * float64(nodes*threads*(nodes*threads+1)/2)
			got := acc.Get(w, 0)
			if got != want {
				log.Fatalf("element 0 = %v, want %v", got, want)
			}
		}
		w.Barrier(999)
	})
}
