#!/usr/bin/env bash
# cover_gate.sh — per-package test-coverage floors.
#
# Runs `go test -coverprofile` for each gated package and fails if its
# statement coverage drops below the recorded baseline. The floors sit
# half a point under the coverage measured when they were last raised,
# so routine refactors pass while a change that lands untested protocol
# code fails loudly. Raise a floor whenever real coverage rises; never
# lower one to make a commit pass — write the missing tests instead.
#
# Mirrored in CI as the coverage-gate step and in `make cover`.
set -euo pipefail

GO="${GO:-go}"

# package  floor(%)  — measured 86.3 / 97.3 when recorded.
GATES="
internal/core 85.5
internal/check 96.5
"

status=0
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

while read -r pkg floor; do
    [ -z "$pkg" ] && continue
    profile="$tmpdir/$(echo "$pkg" | tr / _).out"
    "$GO" test -coverprofile="$profile" "./$pkg" >/dev/null
    pct="$("$GO" tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')"
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "cover: FAIL $pkg ${pct}% < floor ${floor}%"
        status=1
    else
        echo "cover: ok   $pkg ${pct}% (floor ${floor}%)"
    fi
done <<EOF
$GATES
EOF

exit $status
