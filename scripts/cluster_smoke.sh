#!/usr/bin/env bash
# cluster_smoke.sh — multi-process real-transport smoke test.
#
# Builds cvm-node and boots a real 4-process cluster (one coordinator,
# three members, TCP data mesh on loopback) for each app listed in
# $APPS, at test scale. The coordinator runs with -oracle, so every run
# is checked bit for bit against the deterministic simulator's checksum;
# any node error, checksum mismatch, or hang (60s timeout per control
# step) fails the script.
#
# Every process also exposes its debug endpoint (-debug-addr), and a
# scraper per node polls it live with `cvm-metrics scrape` until it
# answers /healthz and serves a /metrics report with nonzero counters;
# a node whose observability surface never comes up fails the script
# even if the run itself succeeds. Mirrored in CI as the cluster-smoke
# job and locally as `make cluster-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

NODES=${NODES:-4}
THREADS=${THREADS:-2}
APPS=${APPS:-"sor waternsq"}
SCRAPE_DEADLINE=${SCRAPE_DEADLINE:-30}

bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir/cvm-node" ./cmd/cvm-node
go build -o "$bindir/cvm-metrics" ./cmd/cvm-metrics

# scrape_until_live polls one node's debug endpoint until `cvm-metrics
# scrape` passes (healthz ok, /metrics parses, counters nonzero), then
# drops a marker file. The -debug-linger on each node keeps the
# endpoint up after fast runs so the final counters stay scrapeable.
scrape_until_live() {
    local addr=$1 marker=$2
    for _ in $(seq 1 $((SCRAPE_DEADLINE * 10))); do
        if "$bindir/cvm-metrics" scrape -timeout 2s "$addr" >/dev/null 2>&1; then
            touch "$marker"
            return 0
        fi
        sleep 0.1
    done
    return 1
}

# pick_port finds a loopback port nothing is listening on. The race
# between probing and binding is tolerable for a smoke test: a clash
# fails loudly and a rerun picks a new port.
pick_port() {
    for _ in $(seq 1 20); do
        local p=$((20000 + RANDOM % 20000))
        if ! (exec 3<>"/dev/tcp/127.0.0.1/$p") 2>/dev/null; then
            echo "$p"
            return 0
        fi
    done
    echo "cluster_smoke: no free loopback port found" >&2
    return 1
}

for app in $APPS; do
    addr="127.0.0.1:$(pick_port)"
    echo "== cluster smoke: $app on $NODES processes x $THREADS threads ($addr) =="

    markdir=$(mktemp -d)
    scrapers=()
    dbg0="127.0.0.1:$(pick_port)"
    "$bindir/cvm-node" -listen "$addr" -nodes "$NODES" -threads "$THREADS" \
        -app "$app" -size test -oracle -timeout 60s \
        -debug-addr "$dbg0" -debug-linger 8s &
    coord=$!
    scrape_until_live "$dbg0" "$markdir/node0" &
    scrapers+=($!)
    members=()
    for id in $(seq 1 $((NODES - 1))); do
        dbg="127.0.0.1:$(pick_port)"
        "$bindir/cvm-node" -join "$addr" -node-id "$id" -nodes "$NODES" \
            -timeout 60s -quiet \
            -debug-addr "$dbg" -debug-linger 8s &
        members+=($!)
        scrape_until_live "$dbg" "$markdir/node$id" &
        scrapers+=($!)
    done

    fail=0
    wait "$coord" || fail=1
    for pid in "${members[@]}"; do
        wait "$pid" || fail=1
    done
    for pid in "${scrapers[@]}"; do
        wait "$pid" || fail=1
    done
    for id in $(seq 0 $((NODES - 1))); do
        if [ ! -f "$markdir/node$id" ]; then
            echo "cluster smoke: $app: node $id debug endpoint never scraped live" >&2
            fail=1
        fi
    done
    scraped=$(ls "$markdir" | wc -l)
    echo "   scraped live /metrics + /healthz from $scraped/$NODES processes"
    rm -rf "$markdir"
    if [ "$fail" -ne 0 ]; then
        echo "cluster smoke: $app FAILED" >&2
        exit 1
    fi
done

echo "cluster smoke: OK"
