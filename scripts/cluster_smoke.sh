#!/usr/bin/env bash
# cluster_smoke.sh — multi-process real-transport smoke test.
#
# Builds cvm-node and boots a real 4-process cluster (one coordinator,
# three members, TCP data mesh on loopback) for each app listed in
# $APPS, at test scale. The coordinator runs with -oracle, so every run
# is checked bit for bit against the deterministic simulator's checksum;
# any node error, checksum mismatch, or hang (60s timeout per control
# step) fails the script. Mirrored in CI as the cluster-smoke job and
# locally as `make cluster-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

NODES=${NODES:-4}
THREADS=${THREADS:-2}
APPS=${APPS:-"sor waternsq"}

bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir/cvm-node" ./cmd/cvm-node

# pick_port finds a loopback port nothing is listening on. The race
# between probing and binding is tolerable for a smoke test: a clash
# fails loudly and a rerun picks a new port.
pick_port() {
    for _ in $(seq 1 20); do
        local p=$((20000 + RANDOM % 20000))
        if ! (exec 3<>"/dev/tcp/127.0.0.1/$p") 2>/dev/null; then
            echo "$p"
            return 0
        fi
    done
    echo "cluster_smoke: no free loopback port found" >&2
    return 1
}

for app in $APPS; do
    addr="127.0.0.1:$(pick_port)"
    echo "== cluster smoke: $app on $NODES processes x $THREADS threads ($addr) =="

    "$bindir/cvm-node" -listen "$addr" -nodes "$NODES" -threads "$THREADS" \
        -app "$app" -size test -oracle -timeout 60s &
    coord=$!
    members=()
    for id in $(seq 1 $((NODES - 1))); do
        "$bindir/cvm-node" -join "$addr" -node-id "$id" -nodes "$NODES" \
            -timeout 60s -quiet &
        members+=($!)
    done

    fail=0
    wait "$coord" || fail=1
    for pid in "${members[@]}"; do
        wait "$pid" || fail=1
    done
    if [ "$fail" -ne 0 ]; then
        echo "cluster smoke: $app FAILED" >&2
        exit 1
    fi
done

echo "cluster smoke: OK"
