package cvm

// F64Array is a shared array of float64 values.
type F64Array struct {
	Base Addr
	Len  int
}

// MustAllocF64 allocates a shared float64 array of n elements on any
// cluster kind.
func MustAllocF64(c Allocator, name string, n int) F64Array {
	return F64Array{Base: c.MustAlloc(name, n*8), Len: n}
}

// MustAllocF64 allocates a shared float64 array of n elements.
func (c *Cluster) MustAllocF64(name string, n int) F64Array {
	return MustAllocF64(c, name, n)
}

// At returns the address of element i.
func (a F64Array) At(i int) Addr { return a.Base + Addr(i)*8 }

// Get reads element i through w.
func (a F64Array) Get(w Worker, i int) float64 { return w.ReadF64(a.At(i)) }

// Set writes element i through w.
func (a F64Array) Set(w Worker, i int, v float64) { w.WriteF64(a.At(i), v) }

// Add adds v to element i through w (a read-modify-write; guard with a
// lock or partition ownership when threads share elements). The access
// check runs once for the fused load/store pair.
func (a F64Array) Add(w Worker, i int, v float64) {
	w.AddF64(a.At(i), v)
}

// GetRange reads elements [i, i+len(dst)) into dst with per-page batched
// access checks (see Worker.ReadRangeF64).
func (a F64Array) GetRange(w Worker, i int, dst []float64) {
	w.ReadRangeF64(a.At(i), dst)
}

// SetRange writes src to elements [i, i+len(src)) with per-page batched
// access checks.
func (a F64Array) SetRange(w Worker, i int, src []float64) {
	w.WriteRangeF64(a.At(i), src)
}

// Fill writes v to elements [i, i+n).
func (a F64Array) Fill(w Worker, i, n int, v float64) {
	w.FillF64(a.At(i), n, v)
}

// I64Array is a shared array of int64 values.
type I64Array struct {
	Base Addr
	Len  int
}

// MustAllocI64 allocates a shared int64 array of n elements on any
// cluster kind.
func MustAllocI64(c Allocator, name string, n int) I64Array {
	return I64Array{Base: c.MustAlloc(name, n*8), Len: n}
}

// MustAllocI64 allocates a shared int64 array of n elements.
func (c *Cluster) MustAllocI64(name string, n int) I64Array {
	return MustAllocI64(c, name, n)
}

// At returns the address of element i.
func (a I64Array) At(i int) Addr { return a.Base + Addr(i)*8 }

// Get reads element i through w.
func (a I64Array) Get(w Worker, i int) int64 { return w.ReadI64(a.At(i)) }

// Set writes element i through w.
func (a I64Array) Set(w Worker, i int, v int64) { w.WriteI64(a.At(i), v) }

// GetRange reads elements [i, i+len(dst)) into dst with per-page batched
// access checks.
func (a I64Array) GetRange(w Worker, i int, dst []int64) {
	w.ReadRangeI64(a.At(i), dst)
}

// SetRange writes src to elements [i, i+len(src)) with per-page batched
// access checks.
func (a I64Array) SetRange(w Worker, i int, src []int64) {
	w.WriteRangeI64(a.At(i), src)
}

// F64Matrix is a shared row-major matrix of float64 values. Stride is the
// row stride in elements; when rows are page-padded, Stride exceeds Cols
// so each row starts on a page boundary (the layout the paper's
// applications use to control false sharing).
type F64Matrix struct {
	Base   Addr
	Rows   int
	Cols   int
	Stride int
}

// MustAllocF64Matrix allocates a rows×cols shared matrix on any cluster
// kind. When padRows is set, each row is padded to a whole number of
// pages, eliminating cross-row false sharing at the cost of space.
func MustAllocF64Matrix(c Allocator, name string, rows, cols int, padRows bool) F64Matrix {
	stride := cols
	if padRows {
		perPage := c.PageSize() / 8
		stride = (cols + perPage - 1) / perPage * perPage
	}
	return F64Matrix{
		Base:   c.MustAlloc(name, rows*stride*8),
		Rows:   rows,
		Cols:   cols,
		Stride: stride,
	}
}

// MustAllocF64Matrix allocates a rows×cols shared matrix; see the free
// function of the same name.
func (c *Cluster) MustAllocF64Matrix(name string, rows, cols int, padRows bool) F64Matrix {
	return MustAllocF64Matrix(c, name, rows, cols, padRows)
}

// At returns the address of element (r, c).
func (m F64Matrix) At(r, c int) Addr { return m.Base + Addr(r*m.Stride+c)*8 }

// Get reads element (r, c) through w.
func (m F64Matrix) Get(w Worker, r, c int) float64 { return w.ReadF64(m.At(r, c)) }

// Set writes element (r, c) through w.
func (m F64Matrix) Set(w Worker, r, c int, v float64) { w.WriteF64(m.At(r, c), v) }

// Row reads row r's Cols elements into dst with per-page batched access
// checks. dst must hold at least Cols elements.
func (m F64Matrix) Row(w Worker, r int, dst []float64) {
	w.ReadRangeF64(m.At(r, 0), dst[:m.Cols])
}

// SetRow writes src (Cols elements) to row r with per-page batched access
// checks.
func (m F64Matrix) SetRow(w Worker, r int, src []float64) {
	w.WriteRangeF64(m.At(r, 0), src[:m.Cols])
}

// RowRange reads columns [c, c+len(dst)) of row r into dst.
func (m F64Matrix) RowRange(w Worker, r, c int, dst []float64) {
	w.ReadRangeF64(m.At(r, c), dst)
}

// SetRowRange writes src to columns [c, c+len(src)) of row r.
func (m F64Matrix) SetRowRange(w Worker, r, c int, src []float64) {
	w.WriteRangeF64(m.At(r, c), src)
}
