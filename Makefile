GO ?= go

.PHONY: check vet build test race cover golden-trace bench-smoke chaos par-check cluster-smoke scale-smoke metrics-gate diff-backends metrics-baseline perf-baseline scale-baseline

## check: the pre-commit gate (mirrors .github/workflows/ci.yml) — vet,
## build, race-test everything, verify the golden trace, a one-iteration
## pass over every benchmark so the perf kernels stay honest, the chaos
## suite under fault injection, the windowed-engine determinism guard,
## the multi-process cluster smoke against the simulator oracle, the
## 256-node scale smoke, the metrics regression gate against the
## committed baseline, the sim-vs-real counter-equivalence gate, and the
## per-package coverage floors.
check: vet build race golden-trace bench-smoke chaos par-check cluster-smoke scale-smoke metrics-gate diff-backends cover
	@echo "check: OK"

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## cover: per-package coverage floors (internal/core, internal/check).
## Fails if statement coverage drops below the baselines recorded in
## scripts/cover_gate.sh; raise a floor there when coverage rises.
cover:
	./scripts/cover_gate.sh

## golden-trace: the protocol event-order regression oracle. Regenerate
## with `go test ./internal/trace -run TestGoldenTrace -update` only for
## intentional protocol or exporter changes.
golden-trace:
	$(GO) test ./internal/trace -run TestGoldenTrace

## bench-smoke: run each benchmark exactly once. Catches benchmarks that
## panic or assert-fail without paying for stable timings.
bench-smoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

## chaos: the fault-injection suite — every app across the drop-rate
## table plus the fixed-corpus schedule fuzzer, all with the protocol
## invariant checker attached. Failures write violation reports into
## chaos-artifacts/.
chaos:
	CHAOS_ARTIFACT_DIR=chaos-artifacts $(GO) test ./internal/chaos ./internal/check -count=1

## par-check: the windowed-engine determinism guard — byte-identical
## checksums, run statistics, metrics reports, and Chrome traces across
## engine-workers 1, 2, and 4, fault-free and under a fuzzed fault
## schedule, plus the chaos engine-workers axis (sequential vs windowed
## under random fault plans with the invariant checker attached).
par-check:
	$(GO) test ./internal/harness -run 'TestGuardDeterminism' -count=1
	$(GO) test ./internal/chaos -run TestEngineWorkersUnderChaos -count=1

## cluster-smoke: boot a real 4-process cvm-node cluster (TCP data mesh
## on loopback) for sor and waternsq at test scale; the coordinator's
## -oracle requires an exact checksum match against the deterministic
## simulator. Proves the real-transport backend end to end.
cluster-smoke:
	./scripts/cluster_smoke.sh

## scale-smoke: one 256-node scaleout run — checksum-identical to the
## sequential engine, byte-identical across windowed worker counts —
## proving the sparse page directory and spilled copysets far past the
## paper grid's cluster sizes.
scale-smoke:
	$(GO) test ./internal/harness -run 'TestScaleSmoke|TestRunScaleStudy' -count=1

## scale-baseline: regenerate the committed BENCH_scaleout.json scaling
## study (8 to 1024 nodes at paper size; takes several minutes).
scale-baseline:
	$(GO) run ./cmd/cvm-bench -experiment scaleout -size paper -scale-json BENCH_scaleout.json

## metrics-gate: re-run the baseline workload and compare its metrics
## report against the committed BASELINE_metrics.json. The simulator is
## deterministic, so any event-count drift fails hard; mean-latency
## drift beyond 25% warns. Regenerate intentionally with
## `make metrics-baseline` after protocol or calibration changes.
metrics-gate:
	$(GO) run ./cmd/cvm-run -app waternsq -nodes 4 -threads 2 -size test -metrics metrics_current.json >/dev/null
	$(GO) run ./cmd/cvm-metrics compare BASELINE_metrics.json metrics_current.json
	@rm -f metrics_current.json

## diff-backends: the sim-vs-real counter-equivalence gate. Run sor and
## waternsq at 4x2 on both backends — the deterministic simulator and
## the real runtime over the in-process loopback transport — and require
## every backend-invariant sync counter (lock acquires/releases, barrier
## and local-barrier arrivals, reductions) to match exactly. Wall-time
## histograms are reported side by side, never gated: the two backends
## measure different machines.
diff-backends:
	@for app in sor waternsq; do \
		echo "== diff-backends: $$app 4x2 =="; \
		$(GO) run ./cmd/cvm-run -app $$app -nodes 4 -threads 2 -size test -metrics sim_$$app.json >/dev/null || exit 1; \
		$(GO) run ./cmd/cvm-run -transport loopback -app $$app -nodes 4 -threads 2 -size test -metrics real_$$app.json >/dev/null || exit 1; \
		$(GO) run ./cmd/cvm-metrics diff-backends sim_$$app.json real_$$app.json || exit 1; \
		rm -f sim_$$app.json real_$$app.json; \
	done

## metrics-baseline: regenerate the committed metrics-gate baseline.
metrics-baseline:
	$(GO) run ./cmd/cvm-run -app waternsq -nodes 4 -threads 2 -size test -metrics BASELINE_metrics.json >/dev/null

## perf-baseline: regenerate BENCH_harness.json (compare before committing
## changes to the diff/memsim/harness hot paths).
perf-baseline:
	$(GO) run ./cmd/cvm-bench -experiment perf -size small -json BENCH_harness.json
