GO ?= go

.PHONY: check vet build test race golden-trace bench-smoke perf-baseline

## check: the pre-commit gate (mirrors .github/workflows/ci.yml) — vet,
## build, race-test everything, verify the golden trace, and a
## one-iteration pass over every benchmark so the perf kernels stay honest.
check: vet build race golden-trace bench-smoke
	@echo "check: OK"

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## golden-trace: the protocol event-order regression oracle. Regenerate
## with `go test ./internal/trace -run TestGoldenTrace -update` only for
## intentional protocol or exporter changes.
golden-trace:
	$(GO) test ./internal/trace -run TestGoldenTrace

## bench-smoke: run each benchmark exactly once. Catches benchmarks that
## panic or assert-fail without paying for stable timings.
bench-smoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

## perf-baseline: regenerate BENCH_harness.json (compare before committing
## changes to the diff/memsim/harness hot paths).
perf-baseline:
	$(GO) run ./cmd/cvm-bench -experiment perf -size small -json BENCH_harness.json
