package cvm_test

import (
	"testing"

	"cvm"
)

// The benchmarks below isolate the span-accessor fast path against the
// equivalent elementwise loops: the same simulated accesses, virtual-time
// charges, and protocol actions, differing only in how many software
// access checks and codec round-trips the host executes. The scalar/span
// ratio is the amortization factor recorded in BENCH_harness.json.

const (
	spanBenchRows = 64
	spanBenchCols = 1024 // 8 KiB per row: two 4 KiB pages
)

// spanBenchCluster builds a single-node cluster with one matrix large
// enough that the sweep touches many pages.
func spanBenchCluster(b *testing.B) (*cvm.Cluster, cvm.F64Matrix) {
	b.Helper()
	cluster, err := cvm.New(cvm.DefaultConfig(1, 1))
	if err != nil {
		b.Fatal(err)
	}
	return cluster, cluster.MustAllocF64Matrix("bench.m", spanBenchRows, spanBenchCols, false)
}

// BenchmarkSpanRead measures a pure read sweep: elementwise Get against
// ReadRangeF64 row spans.
func BenchmarkSpanRead(b *testing.B) {
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchCluster(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				sum := 0.0
				for r := 0; r < spanBenchRows; r++ {
					for j := 0; j < spanBenchCols; j++ {
						sum += m.Get(w, r, j)
					}
				}
				_ = sum
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("span", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchCluster(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				row := make([]float64, spanBenchCols)
				sum := 0.0
				for r := 0; r < spanBenchRows; r++ {
					m.Row(w, r, row)
					for _, v := range row {
						sum += v
					}
				}
				_ = sum
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSpanWrite measures a pure write sweep: elementwise Set against
// WriteRangeF64 row spans.
func BenchmarkSpanWrite(b *testing.B) {
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchCluster(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				for r := 0; r < spanBenchRows; r++ {
					for j := 0; j < spanBenchCols; j++ {
						m.Set(w, r, j, float64(r+j))
					}
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("span", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchCluster(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				row := make([]float64, spanBenchCols)
				for r := 0; r < spanBenchRows; r++ {
					for j := range row {
						row[j] = float64(r + j)
					}
					m.SetRow(w, r, row)
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSpanSweep measures a read-modify-write sweep over the whole
// matrix: elementwise Get/Set against Row/SetRow spans.
func BenchmarkSpanSweep(b *testing.B) {
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchCluster(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				for r := 0; r < spanBenchRows; r++ {
					for j := 0; j < spanBenchCols; j++ {
						m.Set(w, r, j, m.Get(w, r, j)+1)
					}
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("span", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchCluster(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				row := make([]float64, spanBenchCols)
				for r := 0; r < spanBenchRows; r++ {
					m.Row(w, r, row)
					for j := range row {
						row[j]++
					}
					m.SetRow(w, r, row)
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSpanFill measures initializing the matrix to a constant:
// elementwise stores against one FillF64 per row.
func BenchmarkSpanFill(b *testing.B) {
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchCluster(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				for r := 0; r < spanBenchRows; r++ {
					for j := 0; j < spanBenchCols; j++ {
						m.Set(w, r, j, 1)
					}
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("span", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchCluster(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				for r := 0; r < spanBenchRows; r++ {
					w.FillF64(m.At(r, 0), spanBenchCols, 1)
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSpanSORRow measures the SOR inner kernel — a five-point
// red-black relaxation over one row — in its original elementwise form
// and the rolling row-buffer form the application now uses.
func BenchmarkSpanSORRow(b *testing.B) {
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchCluster(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				for r := 1; r < spanBenchRows-1; r++ {
					for j := 1 + r%2; j < spanBenchCols-1; j += 2 {
						v := 0.25 * (m.Get(w, r-1, j) + m.Get(w, r+1, j) +
							m.Get(w, r, j-1) + m.Get(w, r, j+1))
						m.Set(w, r, j, v)
					}
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("span", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchCluster(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				top := make([]float64, spanBenchCols)
				cur := make([]float64, spanBenchCols)
				bot := make([]float64, spanBenchCols)
				m.Row(w, 0, top)
				m.Row(w, 1, cur)
				for r := 1; r < spanBenchRows-1; r++ {
					m.Row(w, r+1, bot)
					for j := 1 + r%2; j < spanBenchCols-1; j += 2 {
						cur[j] = 0.25 * (top[j] + bot[j] + cur[j-1] + cur[j+1])
					}
					m.SetRow(w, r, cur)
					top, cur, bot = cur, bot, top
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSpanPooling isolates the allocation diet of the span access
// path: the same span sweep with the per-node page-backing arena and
// twin pool enabled (the default) and disabled via Config.NoPagePooling.
// The pooled variant is the configuration BENCH_harness.json gates;
// unpooled is the reference that shows what the arena buys.
func BenchmarkSpanPooling(b *testing.B) {
	sweep := func(b *testing.B, noPool bool) {
		for i := 0; i < b.N; i++ {
			cfg := cvm.DefaultConfig(1, 1)
			cfg.NoPagePooling = noPool
			cluster, err := cvm.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			m := cluster.MustAllocF64Matrix("bench.m", spanBenchRows, spanBenchCols, false)
			if _, err := cluster.Run(func(w cvm.Worker) {
				row := make([]float64, spanBenchCols)
				for r := 0; r < spanBenchRows; r++ {
					m.Row(w, r, row)
					for j := range row {
						row[j]++
					}
					m.SetRow(w, r, row)
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("pooled", func(b *testing.B) { sweep(b, false) })
	b.Run("unpooled", func(b *testing.B) { sweep(b, true) })
}
