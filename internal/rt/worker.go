package rt

import (
	"encoding/binary"
	"math"
	"runtime"

	"cvm"
	"cvm/internal/core"
	"cvm/internal/sim"
)

// Worker is the real-execution implementation of cvm.Worker: one
// application thread on one node, running while it holds the node's run
// token. The simulator-modelling methods (Compute, Phase, TouchPrivate)
// are no-ops — real hardware charges real costs on its own.
type Worker struct {
	n   *rnode
	gid int
	lid int
}

var _ cvm.Worker = (*Worker)(nil)

// GlobalID implements cvm.Worker.
func (w *Worker) GlobalID() int { return w.gid }

// LocalID implements cvm.Worker.
func (w *Worker) LocalID() int { return w.lid }

// NodeID implements cvm.Worker.
func (w *Worker) NodeID() int { return w.n.self }

// Threads implements cvm.Worker.
func (w *Worker) Threads() int { return w.n.nodes * w.n.threads }

// Nodes implements cvm.Worker.
func (w *Worker) Nodes() int { return w.n.nodes }

// LocalThreads implements cvm.Worker.
func (w *Worker) LocalThreads() int { return w.n.threads }

// Now reports monotonic wall time since the node started.
func (w *Worker) Now() sim.Time { return w.n.clock.Now() }

// Compute implements cvm.Worker; the work modelled in the simulator is
// real work here, so there is nothing to charge.
func (w *Worker) Compute(sim.Time) {}

// Phase implements cvm.Worker (instruction-locality modelling; no-op).
func (w *Worker) Phase(int) {}

// TouchPrivate implements cvm.Worker (memory-hierarchy modelling; no-op).
func (w *Worker) TouchPrivate(int) {}

// MarkSteadyState implements cvm.Worker. The real runtime keeps only
// transport totals, which the callers snapshot themselves, so there is
// nothing to reset.
func (w *Worker) MarkSteadyState() {}

// Yield bounces the run token so a co-located thread can run.
func (w *Worker) Yield() {
	w.n.tok.Unlock()
	runtime.Gosched()
	w.n.tok.Lock()
}

// Barrier implements cvm.Worker.
func (w *Worker) Barrier(id int) { w.n.barrier(w, uint32(id)) }

// LocalBarrier implements cvm.Worker.
func (w *Worker) LocalBarrier(id int) { w.n.localBarrier(w, uint32(id)) }

// Lock implements cvm.Worker.
func (w *Worker) Lock(id int) { w.n.lock(w, id) }

// Unlock implements cvm.Worker.
func (w *Worker) Unlock(id int) { w.n.unlock(w, id) }

// ReduceF64 implements cvm.Worker.
func (w *Worker) ReduceF64(id int, v float64, op core.ReduceOp) float64 {
	return w.n.reduce(w, id, v, op)
}

// read8 loads the 8-byte word at a: directly from the master copy when
// this node is the home, through the cache otherwise.
func (w *Worker) read8(a core.Addr) uint64 {
	n := w.n
	ps := core.Addr(n.c.cfg.PageSize)
	pg, off := core.PageID(a/ps), int(a%ps)
	if n.home(pg) == n.self {
		n.hmu.Lock()
		v := binary.LittleEndian.Uint64(n.masterPage(pg)[off:])
		n.hmu.Unlock()
		return v
	}
	return binary.LittleEndian.Uint64(n.fetchPage(w, pg).data[off:])
}

// write8 stores the 8-byte word at a. Self-homed pages are written at
// the master (immediately visible — harmless for data-race-free
// programs); remote pages get a twin on first write and join the dirty
// list for the next release.
func (w *Worker) write8(a core.Addr, v uint64) {
	n := w.n
	ps := core.Addr(n.c.cfg.PageSize)
	pg, off := core.PageID(a/ps), int(a%ps)
	if n.home(pg) == n.self {
		n.hmu.Lock()
		binary.LittleEndian.PutUint64(n.masterPage(pg)[off:], v)
		n.hmu.Unlock()
		return
	}
	p := n.fetchPage(w, pg)
	if p.twin == nil {
		p.twin = append([]byte(nil), p.data...)
		n.dirty = append(n.dirty, pg)
	}
	binary.LittleEndian.PutUint64(p.data[off:], v)
}

// ReadF64 implements cvm.Worker.
func (w *Worker) ReadF64(a core.Addr) float64 { return math.Float64frombits(w.read8(a)) }

// WriteF64 implements cvm.Worker.
func (w *Worker) WriteF64(a core.Addr, v float64) { w.write8(a, math.Float64bits(v)) }

// ReadI64 implements cvm.Worker.
func (w *Worker) ReadI64(a core.Addr) int64 { return int64(w.read8(a)) }

// WriteI64 implements cvm.Worker.
func (w *Worker) WriteI64(a core.Addr, v int64) { w.write8(a, uint64(v)) }

// AddF64 implements cvm.Worker.
func (w *Worker) AddF64(a core.Addr, v float64) { w.WriteF64(a, w.ReadF64(a)+v) }

// ReadRangeF64 implements cvm.Worker.
func (w *Worker) ReadRangeF64(a core.Addr, dst []float64) {
	for i := range dst {
		dst[i] = w.ReadF64(a + core.Addr(8*i))
	}
}

// WriteRangeF64 implements cvm.Worker.
func (w *Worker) WriteRangeF64(a core.Addr, src []float64) {
	for i, v := range src {
		w.WriteF64(a+core.Addr(8*i), v)
	}
}

// FillF64 implements cvm.Worker.
func (w *Worker) FillF64(a core.Addr, n int, v float64) {
	for i := 0; i < n; i++ {
		w.WriteF64(a+core.Addr(8*i), v)
	}
}

// ReadRangeI64 implements cvm.Worker.
func (w *Worker) ReadRangeI64(a core.Addr, dst []int64) {
	for i := range dst {
		dst[i] = w.ReadI64(a + core.Addr(8*i))
	}
}

// WriteRangeI64 implements cvm.Worker.
func (w *Worker) WriteRangeI64(a core.Addr, src []int64) {
	for i, v := range src {
		w.WriteI64(a+core.Addr(8*i), v)
	}
}

// FillI64 implements cvm.Worker.
func (w *Worker) FillI64(a core.Addr, n int, v int64) {
	for i := 0; i < n; i++ {
		w.WriteI64(a+core.Addr(8*i), v)
	}
}
