package rt_test

import (
	"sync"
	"testing"
	"time"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/rt"
	"cvm/internal/transport"
)

func newCluster(t *testing.T, nodes, threads int) *rt.Cluster {
	t.Helper()
	c, err := rt.NewCluster(rt.DefaultConfig(nodes, threads))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []rt.Config{
		{Nodes: 0, ThreadsPerNode: 1, PageSize: 4096},
		{Nodes: 1, ThreadsPerNode: 0, PageSize: 4096},
		{Nodes: 1, ThreadsPerNode: 1, PageSize: 0},
		{Nodes: 1, ThreadsPerNode: 1, PageSize: 100}, // not a multiple of 8
	} {
		if _, err := rt.NewCluster(cfg); err == nil {
			t.Errorf("NewCluster(%+v) succeeded, want error", cfg)
		}
	}
}

// TestCounterValue is the fundamental coherence test: concurrent
// read-modify-writes to one shared word are serialized by a DSM lock,
// and the final value must be exact. Exercises lock management, twin
// creation, diff flushing at release, and invalidation at acquire.
func TestCounterValue(t *testing.T) {
	const nodes, threads, iters = 4, 2, 25
	c := newCluster(t, nodes, threads)
	ctr := cvm.MustAllocF64(c, "ctr", 1)
	var got float64
	_, err := c.RunLoopback(func(w cvm.Worker) {
		for i := 0; i < iters; i++ {
			w.Lock(5)
			ctr.Add(w, 0, 1)
			w.Unlock(5)
		}
		w.Barrier(0)
		if w.GlobalID() == 0 {
			got = ctr.Get(w, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(nodes * threads * iters); got != want {
		t.Fatalf("counter = %v, want %v", got, want)
	}
}

// TestBarrierPropagatesWrites checks the barrier's release-consistency
// semantics: every thread writes its slot before the barrier and reads
// all other slots after it.
func TestBarrierPropagatesWrites(t *testing.T) {
	const nodes, threads = 4, 2
	c := newCluster(t, nodes, threads)
	slots := cvm.MustAllocF64(c, "slots", nodes*threads)
	var mu sync.Mutex
	bad := 0
	_, err := c.RunLoopback(func(w cvm.Worker) {
		for round := 0; round < 3; round++ {
			slots.Set(w, w.GlobalID(), float64(100*round+w.GlobalID()))
			w.Barrier(round)
			for g := 0; g < w.Threads(); g++ {
				if v := slots.Get(w, g); v != float64(100*round+g) {
					mu.Lock()
					bad++
					mu.Unlock()
				}
			}
			w.Barrier(100 + round)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d stale reads after barrier", bad)
	}
}

// TestLocalBarrier checks that co-located threads can share plain
// process memory across a local barrier (the run token's handoff is the
// synchronization, exactly as under the simulator's cooperative
// scheduler).
func TestLocalBarrier(t *testing.T) {
	const nodes, threads = 2, 4
	c := newCluster(t, nodes, threads)
	local := make([][]int, nodes)
	for i := range local {
		local[i] = make([]int, threads)
	}
	sums := make([][]int, nodes)
	for i := range sums {
		sums[i] = make([]int, threads)
	}
	_, err := c.RunLoopback(func(w cvm.Worker) {
		local[w.NodeID()][w.LocalID()] = w.GlobalID() + 1
		w.LocalBarrier(0)
		s := 0
		for _, v := range local[w.NodeID()] {
			s += v
		}
		sums[w.NodeID()][w.LocalID()] = s
	})
	if err != nil {
		t.Fatal(err)
	}
	for nd := 0; nd < nodes; nd++ {
		want := 0
		for l := 0; l < threads; l++ {
			want += nd*threads + l + 1
		}
		for l, got := range sums[nd] {
			if got != want {
				t.Errorf("node %d thread %d: local sum %d, want %d", nd, l, got, want)
			}
		}
	}
}

func TestReduce(t *testing.T) {
	const nodes, threads = 3, 2
	c := newCluster(t, nodes, threads)
	results := make([]float64, nodes*threads)
	maxes := make([]float64, nodes*threads)
	_, err := c.RunLoopback(func(w cvm.Worker) {
		results[w.GlobalID()] = w.ReduceF64(1, float64(w.GlobalID()+1), cvm.ReduceSum)
		maxes[w.GlobalID()] = w.ReduceF64(2, float64(w.GlobalID()), cvm.ReduceMax)
	})
	if err != nil {
		t.Fatal(err)
	}
	n := nodes * threads
	wantSum := float64(n * (n + 1) / 2)
	for g, r := range results {
		if r != wantSum {
			t.Errorf("thread %d: reduce sum = %v, want %v", g, r, wantSum)
		}
		if maxes[g] != float64(n-1) {
			t.Errorf("thread %d: reduce max = %v, want %v", g, maxes[g], float64(n-1))
		}
	}
}

func TestWorkerIdentity(t *testing.T) {
	const nodes, threads = 2, 3
	c := newCluster(t, nodes, threads)
	seen := make([]bool, nodes*threads)
	_, err := c.RunLoopback(func(w cvm.Worker) {
		if w.Nodes() != nodes || w.LocalThreads() != threads || w.Threads() != nodes*threads {
			t.Errorf("bad shape: %d/%d/%d", w.Nodes(), w.LocalThreads(), w.Threads())
		}
		if w.GlobalID() != w.NodeID()*threads+w.LocalID() {
			t.Errorf("gid %d != node %d * %d + lid %d", w.GlobalID(), w.NodeID(), threads, w.LocalID())
		}
		if w.Now() < 0 {
			t.Error("negative wall time")
		}
		w.Compute(cvm.Millisecond) // modelling no-ops must not charge wall time
		w.Phase(1)
		w.TouchPrivate(0)
		w.Yield()
		w.MarkSteadyState()
		seen[w.GlobalID()] = true
		w.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for g, ok := range seen {
		if !ok {
			t.Errorf("thread %d never ran", g)
		}
	}
}

// runLoopbackApp executes one paper application on the real runtime over
// the loopback transport and returns its checksum after validating
// against the sequential reference.
func runLoopbackApp(t *testing.T, name string, nodes, threads int) float64 {
	t.Helper()
	app, err := apps.New(name, apps.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, nodes, threads)
	if err := app.Setup(c); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunLoopback(app.Main); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := app.Check(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return app.Checksum()
}

// TestAppsMatchSimulator is the conformance core: every paper
// application at test scale must reproduce, on the real runtime, the
// exact checksum the deterministic simulator produces. The applications
// round shared-sum contributions to an exact grid, so any correct
// release-consistent execution yields bit-identical checksums — making
// the simulator a cross-backend oracle (DESIGN.md §11).
func TestAppsMatchSimulator(t *testing.T) {
	const nodes, threads = 4, 2
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			app, err := apps.New(name, apps.SizeTest)
			if err != nil {
				t.Fatal(err)
			}
			if !app.SupportsThreads(threads) {
				t.Skipf("%s does not support %d threads per node", name, threads)
			}
			_, simSum, err := apps.RunConfigFull(name, apps.SizeTest,
				cvm.DefaultConfig(nodes, threads), 0)
			if err != nil {
				t.Fatal(err)
			}
			rtSum := runLoopbackApp(t, name, nodes, threads)
			if rtSum != simSum {
				t.Fatalf("%s: loopback checksum %v, simulator %v", name, rtSum, simSum)
			}
		})
	}
}

// TestRunNodeTCP runs a 3-node cluster over real TCP connections, one
// rt.Cluster per node as separate processes would, with each node
// constructing its own application instance (daemon mode's discipline).
func TestRunNodeTCP(t *testing.T) {
	const nodes, threads = 3, 2
	lns := make([]*transport.TCPListener, nodes)
	addrs := make([]string, nodes)
	for i := range lns {
		ln, err := transport.ListenTCP(transport.NodeID(i), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr()
	}
	sums := make([]float64, nodes)
	errs := make([]error, nodes)
	checks := make([]error, nodes)
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := lns[i].Mesh(addrs, 10*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			app, err := apps.New("sor", apps.SizeTest)
			if err != nil {
				errs[i] = err
				return
			}
			c, err := rt.NewCluster(rt.DefaultConfig(nodes, threads))
			if err != nil {
				errs[i] = err
				return
			}
			if err := app.Setup(c); err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = c.RunNode(conn, app.Main)
			sums[i] = app.Checksum()
			checks[i] = app.Check()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	// Global thread 0 lives on node 0: only that process has the checksum.
	if checks[0] != nil {
		t.Fatalf("node 0 check: %v", checks[0])
	}
	_, simSum, err := apps.RunConfigFull("sor", apps.SizeTest,
		cvm.DefaultConfig(nodes, threads), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sums[0] != simSum {
		t.Fatalf("tcp checksum %v, simulator %v", sums[0], simSum)
	}
}

func TestAllocAfterRunFails(t *testing.T) {
	c := newCluster(t, 1, 1)
	c.MustAlloc("a", 8)
	if _, err := c.RunLoopback(func(w cvm.Worker) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc("b", 8); err == nil {
		t.Error("Alloc after run succeeded")
	}
	if _, err := c.RunLoopback(func(w cvm.Worker) {}); err == nil {
		t.Error("second run succeeded")
	}
}
