package rt_test

import (
	"testing"

	"cvm"
	"cvm/internal/metrics"
	"cvm/internal/rt"
	"cvm/internal/trace"
)

// runMetered runs a lock/barrier workload with metrics and tracing
// attached and returns the snapshot plus the recorder.
func runMetered(t *testing.T, nodes, threads, iters int) (*metrics.Snapshot, *trace.Recorder, *rt.Cluster) {
	t.Helper()
	cfg := rt.DefaultConfig(nodes, threads)
	met := rt.NewMetrics()
	rec := trace.NewRecorder(nodes, threads, 0)
	cfg.Metrics = met
	cfg.Tracer = rec
	c, err := rt.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctr := cvm.MustAllocF64(c, "ctr", 1)
	if _, err := c.RunLoopback(func(w cvm.Worker) {
		for i := 0; i < iters; i++ {
			w.Lock(3)
			ctr.Add(w, 0, 1)
			w.Unlock(3)
		}
		w.Barrier(0)
		w.LocalBarrier(1)
		w.ReduceF64(2, 1, 0)
	}); err != nil {
		t.Fatal(err)
	}
	return met.Snapshot(), rec, c
}

// TestMetricsCountsSyncOps checks the backend-invariant counters: each
// is program-determined — exactly one increment per application call —
// which is the property the sim-vs-real equivalence gate relies on.
func TestMetricsCountsSyncOps(t *testing.T) {
	const nodes, threads, iters = 4, 2, 5
	snap, _, _ := runMetered(t, nodes, threads, iters)
	nt := int64(nodes * threads)
	for _, tc := range []struct {
		name string
		got  metrics.Counter
		want int64
	}{
		{"lock_acquires", snap.LockAcquires, nt * iters},
		{"lock_releases", snap.LockReleases, nt * iters},
		{"barrier_arrivals", snap.BarrierArrivals, nt},
		{"local_barrier_arrivals", snap.LocalBarrierArrivals, nt},
		{"reductions", snap.Reductions, nt},
	} {
		if int64(tc.got) != tc.want {
			t.Errorf("%s = %d, want %d", tc.name, tc.got, tc.want)
		}
	}
}

// TestMetricsObservesWaits checks that the wall-clock histograms and
// attribution maps populate: remote lock waits classify as 2-hop (the
// centralized managers never need a third hop), barrier stalls and
// fault service times are nonzero, and the hot-lock table attributes
// the contended lock.
func TestMetricsObservesWaits(t *testing.T) {
	const nodes, threads, iters = 4, 2, 5
	snap, rec, _ := runMetered(t, nodes, threads, iters)

	var hist metrics.Histogram
	for i := range snap.Nodes {
		nm := &snap.Nodes[i]
		hist.Count += nm.Lock2Hop.Count + nm.LockLocalWait.Count
	}
	if got, want := hist.Count, int64(nodes*threads*iters); got != want {
		t.Errorf("lock wait observations = %d, want %d", got, want)
	}
	var threeHop int64
	for i := range snap.Nodes {
		threeHop += snap.Nodes[i].Lock3Hop.Count
	}
	if threeHop != 0 {
		t.Errorf("Lock3Hop = %d, want 0 (centralized managers are 2-hop by construction)", threeHop)
	}
	var stalls, faults int64
	for i := range snap.Nodes {
		stalls += snap.Nodes[i].BarrierStall.Count
		faults += snap.Nodes[i].FaultService.Count
	}
	if stalls != int64(nodes*threads) {
		t.Errorf("barrier stalls = %d, want %d", stalls, nodes*threads)
	}
	if faults == 0 {
		t.Error("no fault service observations despite remote page traffic")
	}
	if a := snap.LockWait[3]; a == nil || a.Count == 0 {
		t.Errorf("lock 3 missing from the hot-lock attribution: %+v", snap.LockWait)
	}
	if len(snap.PageWait) == 0 {
		t.Error("no page wait attribution despite remote faults")
	}
	if len(snap.MsgClasses) == 0 {
		t.Error("snapshot carries no message class names")
	}
	if rec.Len() == 0 {
		t.Error("tracer attached but no events recorded")
	}
}

// TestStatusAfterRun checks the live-introspection surface: after the
// run every thread reports done, the epoch advanced with the acquires,
// and the per-peer traffic is populated.
func TestStatusAfterRun(t *testing.T) {
	const nodes, threads = 4, 2
	_, _, c := runMetered(t, nodes, threads, 3)
	sts := c.Status()
	if len(sts) != nodes {
		t.Fatalf("Status() returned %d nodes, want %d", len(sts), nodes)
	}
	for _, st := range sts {
		if len(st.Threads) != threads {
			t.Errorf("node %d: %d thread states, want %d", st.Node, len(st.Threads), threads)
		}
		for i, s := range st.Threads {
			if s != "done" {
				t.Errorf("node %d thread %d state %q after run, want done", st.Node, i, s)
			}
		}
		if st.Epoch == 0 {
			t.Errorf("node %d epoch 0 after a run with acquires", st.Node)
		}
		if st.Failure != "" {
			t.Errorf("node %d reports failure %q after clean run", st.Node, st.Failure)
		}
		var traffic int64
		for _, p := range st.Peers {
			traffic += p.Msgs
		}
		if traffic == 0 {
			t.Errorf("node %d reports zero peer traffic", st.Node)
		}
	}
}

// TestMetricsReconfigureMismatchPanics pins the shape guard: one
// collector cannot silently aggregate differently-shaped clusters.
func TestMetricsReconfigureMismatchPanics(t *testing.T) {
	met := rt.NewMetrics()
	run := func(nodes int) error {
		cfg := rt.DefaultConfig(nodes, 1)
		cfg.Metrics = met
		c, err := rt.NewCluster(cfg)
		if err != nil {
			return err
		}
		_, err = c.RunLoopback(func(w cvm.Worker) { w.Barrier(0) })
		return err
	}
	if err := run(2); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("reattaching a 2-node Metrics to a 4-node cluster did not panic")
		}
	}()
	run(4)
}
