package rt

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"cvm"
	"cvm/internal/core"
	"cvm/internal/sim"
	"cvm/internal/trace"
	"cvm/internal/transport"
)

// rpage is one remotely-homed page in the node cache. twin is nil while
// the copy is clean; the first write snapshots the page into twin and
// puts the page on the dirty list.
type rpage struct {
	data []byte
	twin []byte
}

// rnode is one node of the real-execution cluster: the per-node run
// token, the page cache, the home (master) copies of pages this node
// owns, and — when this node is a manager — lock, barrier, and
// reduction state.
//
// Lock ordering: tok > hmu > pmu. Workers run holding tok and may take
// hmu (self-homed access, sync arrival) and pmu (request registration);
// the dispatcher takes hmu and pmu but never tok, so a worker blocked on
// a reply can never deadlock the goroutine that delivers it.
type rnode struct {
	c       *Cluster
	conn    transport.Conn
	self    int
	nodes   int
	threads int // per node

	// tok is the run token: application code and the cache are touched
	// only while holding it. Blocking protocol operations release it, so
	// co-located threads multiplex exactly as under the simulator's
	// cooperative scheduler.
	tok   sync.Mutex
	cache map[core.PageID]*rpage
	dirty []core.PageID // pages in cache with a twin
	// epoch is bumped by invalidate; stale fetches re-request. Writes
	// happen under tok, but Status reads it without, hence atomic.
	epoch atomic.Uint64

	// hmu guards the master copies, manager state, and per-node sync
	// state shared with the dispatcher.
	hmu    sync.Mutex
	master map[core.PageID][]byte
	locks  map[uint32]*lockState
	mbar   map[uint32]int // manager barrier: node arrivals
	mred   map[uint32]*redManager
	nbar   map[uint32]*nodeBar
	nred   map[uint32]*nodeRed
	nlbar  map[uint32]*nodeBar // local barriers (no manager side)

	// doneCh is closed when the completion rendezvous releases: every
	// node's threads have finished and no more requests will arrive.
	doneCh chan struct{}

	pmu     sync.Mutex
	pending map[uint32]chan []byte
	reqSeq  atomic.Uint32

	failMu  sync.Mutex
	failErr error
	failCh  chan struct{}

	clock *sim.WallClock
	dispd chan struct{} // dispatcher exited

	// Observability. met and tracer are nil unless the run asked for
	// them; tstate (one atomic per local thread) always tracks worker
	// states for Status.
	met    *Metrics
	tracer *lockedTracer
	tstate []atomic.Int32
}

func newNode(c *Cluster, conn transport.Conn, clock *sim.WallClock, tracer *lockedTracer) *rnode {
	return &rnode{
		c:       c,
		conn:    conn,
		self:    int(conn.Self()),
		nodes:   c.cfg.Nodes,
		threads: c.cfg.ThreadsPerNode,
		cache:   make(map[core.PageID]*rpage),
		master:  make(map[core.PageID][]byte),
		locks:   make(map[uint32]*lockState),
		mbar:    make(map[uint32]int),
		mred:    make(map[uint32]*redManager),
		nbar:    make(map[uint32]*nodeBar),
		nred:    make(map[uint32]*nodeRed),
		nlbar:   make(map[uint32]*nodeBar),
		doneCh:  make(chan struct{}),
		pending: make(map[uint32]chan []byte),
		failCh:  make(chan struct{}),
		clock:   clock,
		dispd:   make(chan struct{}),
		met:     c.cfg.Metrics,
		tracer:  tracer,
		tstate:  make([]atomic.Int32, c.cfg.ThreadsPerNode),
	}
}

// setState publishes worker w's scheduling state for Status.
func (n *rnode) setState(w *Worker, s int32) { n.tstate[w.lid].Store(s) }

// home reports the node holding page pg's master copy.
func (n *rnode) home(pg core.PageID) int { return int(pg) % n.nodes }

// masterPage returns pg's master copy, zero-filled on first touch.
// Caller holds hmu.
func (n *rnode) masterPage(pg core.PageID) []byte {
	m := n.master[pg]
	if m == nil {
		m = make([]byte, n.c.cfg.PageSize)
		n.master[pg] = m
	}
	return m
}

// run executes this node's threads to completion: it starts the
// dispatcher, spawns ThreadsPerNode workers multiplexed by the run
// token, and after they finish holds the node's pages available until
// every other node is done too.
func (n *rnode) run(main func(cvm.Worker)) error {
	go n.dispatch()

	var wg sync.WaitGroup
	for lid := 0; lid < n.threads; lid++ {
		w := &Worker{n: n, lid: lid, gid: n.self*n.threads + lid}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(rtAbort); !ok {
						panic(r)
					}
				}
				n.setState(w, tsDone)
				n.tok.Unlock()
			}()
			n.tok.Lock()
			n.setState(w, tsRunning)
			main(w)
		}()
	}
	wg.Wait()

	// Completion rendezvous: a node-level barrier on a reserved id keeps
	// this node's master pages reachable until every peer has finished.
	if err := n.failure(); err == nil {
		if n.self == 0 {
			n.barArrive(doneBarrier)
		} else {
			n.send(0, msgBarArrive, putU32(nil, doneBarrier))
		}
		select {
		case <-n.doneCh:
		case <-n.failCh:
		}
	}
	return n.failure()
}

// dispatch is the node's message pump: it serves page and diff requests
// against the master copies, runs manager-side synchronization, and
// routes replies back to blocked workers. It never takes the run token.
func (n *rnode) dispatch() {
	defer close(n.dispd)
	for {
		m, err := n.conn.Recv()
		if err != nil {
			select {
			case <-n.doneCh: // clean shutdown: the run is over
			default:
				n.setFail(err)
			}
			return
		}
		n.handle(m)
	}
}

func (n *rnode) handle(m transport.Message) {
	p := m.Payload
	switch m.Type {
	case msgPageReq:
		if len(p) < 8 {
			n.setFail(fmt.Errorf("rt: node %d: short page request (%d bytes)", n.self, len(p)))
			return
		}
		reqID, pg := u32(p), core.PageID(u32(p[4:]))
		n.hmu.Lock()
		data := append([]byte(nil), n.masterPage(pg)...)
		n.hmu.Unlock()
		n.send(int(m.From), msgPageRep, encodePageRep(reqID, pg, data))
	case msgPageRep:
		n.deliver(u32(p), p[8:])
	case msgDiffReq:
		reqID, pg, runs, err := decodeDiff(p)
		if err != nil {
			n.setFail(err)
			return
		}
		n.hmu.Lock()
		mp := n.masterPage(pg)
		for _, r := range runs {
			copy(mp[r.Off:], r.Data)
		}
		n.hmu.Unlock()
		n.send(int(m.From), msgDiffAck, putU32(nil, reqID))
	case msgDiffAck:
		n.deliver(u32(p), nil)
	case msgLockReq:
		n.lockReq(int(m.From), u32(p), u32(p[4:]))
	case msgLockGrant:
		n.deliver(u32(p), nil)
	case msgLockRel:
		n.lockRel(u32(p))
	case msgBarArrive:
		n.barArrive(u32(p))
	case msgBarRelease:
		n.barRelease(u32(p))
	case msgRedArrive:
		n.redArrive(u32(p), int(m.From), core.ReduceOp(p[4]), math.Float64frombits(u64(p[5:])))
	case msgRedRelease:
		n.redRelease(u32(p), math.Float64frombits(u64(p[4:])))
	default:
		n.setFail(fmt.Errorf("rt: node %d: unknown message type %d from node %d",
			n.self, m.Type, m.From))
	}
}

// send ships one protocol message, converting transport failures into a
// node failure (which aborts every local worker).
func (n *rnode) send(to int, typ uint8, payload []byte) {
	err := n.conn.Send(transport.Message{
		To:      transport.NodeID(to),
		Class:   classOf(typ),
		Type:    typ,
		Payload: payload,
	})
	if err != nil {
		n.setFail(err)
	}
}

// newPending registers a reply slot and returns its request id.
func (n *rnode) newPending() (uint32, chan []byte) {
	id := n.reqSeq.Add(1)
	ch := make(chan []byte, 1)
	n.pmu.Lock()
	n.pending[id] = ch
	n.pmu.Unlock()
	return id, ch
}

// deliver routes a reply payload to the worker that registered reqID.
func (n *rnode) deliver(reqID uint32, payload []byte) {
	n.pmu.Lock()
	ch := n.pending[reqID]
	delete(n.pending, reqID)
	n.pmu.Unlock()
	if ch == nil {
		n.setFail(fmt.Errorf("rt: node %d: reply for unknown request %d", n.self, reqID))
		return
	}
	ch <- payload
}

// await blocks on a reply slot without the run token; the caller must
// have released tok and reacquires it afterwards. A node failure aborts
// the worker instead.
func (n *rnode) await(ch chan []byte) []byte {
	select {
	case p := <-ch:
		return p
	case <-n.failCh:
		n.tok.Lock()
		panic(rtAbort{})
	}
}

// rtAbort unwinds a worker goroutine after a node failure; run's
// deferred recover swallows it.
type rtAbort struct{}

func (n *rnode) setFail(err error) {
	n.failMu.Lock()
	if n.failErr == nil {
		n.failErr = fmt.Errorf("rt: node %d: %w", n.self, err)
		close(n.failCh)
	}
	n.failMu.Unlock()
}

func (n *rnode) failure() error {
	n.failMu.Lock()
	defer n.failMu.Unlock()
	return n.failErr
}

// checkFail aborts the calling worker if the node has failed. Called
// with tok held at protocol entry points.
func (n *rnode) checkFail() {
	select {
	case <-n.failCh:
		panic(rtAbort{})
	default:
	}
}

// fetchPage returns the cache entry for remotely-homed page pg,
// requesting it from the home on a miss. Caller holds tok; the token is
// released while the request is in flight, letting co-located threads
// run — the paper's latency hiding, for real this time. Replies that
// raced an invalidation (epoch moved) are discarded and re-requested.
// The cache-hit path stays observation-free; misses pay one wall-clock
// read per enabled collector, dwarfed by the network round trip.
func (n *rnode) fetchPage(w *Worker, pg core.PageID) *rpage {
	for {
		if p := n.cache[pg]; p != nil {
			return p
		}
		obs := n.met != nil || n.tracer != nil
		var t0 sim.Time
		if obs {
			t0 = n.clock.Now()
			if tr := n.tracer; tr != nil {
				tr.emit(trace.Event{T: t0, Kind: trace.KindFaultStart,
					Node: int32(n.self), Thread: int32(w.gid), Page: int32(pg)})
			}
		}
		n.setState(w, tsFault)
		e := n.epoch.Load()
		reqID, ch := n.newPending()
		n.send(n.home(pg), msgPageReq, encodeReq(reqID, uint32(pg)))
		n.tok.Unlock()
		data := n.await(ch)
		n.tok.Lock()
		n.setState(w, tsRunning)
		if obs {
			now := n.clock.Now()
			if m := n.met; m != nil {
				m.observeFault(n.self, pg, now-t0)
			}
			if tr := n.tracer; tr != nil {
				tr.emit(trace.Event{T: now, Kind: trace.KindFaultResolve,
					Node: int32(n.self), Thread: int32(w.gid), Page: int32(pg)})
			}
		}
		if n.epoch.Load() != e {
			continue
		}
		if p := n.cache[pg]; p != nil {
			// A co-located thread installed the page while we waited;
			// its copy may already carry local writes — keep it.
			return p
		}
		p := &rpage{data: data}
		n.cache[pg] = p
		return p
	}
}

// flushOnce diffs every dirty page against its twin, ships the diffs to
// the homes, and waits for all acknowledgements. Caller holds tok; the
// token is released during the wait, so pages dirtied meanwhile by
// co-located threads are NOT covered — loop via flushAll when the flush
// must be complete at return.
func (n *rnode) flushOnce() {
	if len(n.dirty) == 0 {
		return
	}
	type ack struct{ ch chan []byte }
	var acks []ack
	for _, pg := range n.dirty {
		p := n.cache[pg]
		if p == nil || p.twin == nil {
			continue
		}
		runs := core.MakeDiff(pg, p.twin, p.data)
		p.twin = nil
		if len(runs) == 0 {
			continue
		}
		reqID, ch := n.newPending()
		payload := encodeDiff(reqID, pg, runs)
		if m := n.met; m != nil {
			// The diff's wire size: the encoded runs, excluding the
			// reqID+page request header.
			m.observeDiff(n.self, int64(len(payload)-8))
		}
		if tr := n.tracer; tr != nil {
			tr.emit(trace.Event{T: n.clock.Now(), Kind: trace.KindDiffCreate,
				Node: int32(n.self), Thread: -1, Page: int32(pg),
				Arg: int64(len(payload) - 8)})
		}
		n.send(n.home(pg), msgDiffReq, payload)
		acks = append(acks, ack{ch})
	}
	n.dirty = n.dirty[:0]
	if len(acks) == 0 {
		return
	}
	n.tok.Unlock()
	for _, a := range acks {
		n.await(a.ch)
	}
	n.tok.Lock()
}

// flushAll flushes until no dirty pages remain at return, with tok held
// continuously from the final emptiness check onward.
func (n *rnode) flushAll() {
	for len(n.dirty) > 0 {
		n.flushOnce()
	}
}

// acquireSync implements the acquire half of release consistency: flush
// anything dirty (invalidating it unflushed would lose writes), then
// drop the entire cache so post-acquire reads refetch current data from
// the homes. Caller holds tok.
func (n *rnode) acquireSync() {
	n.flushAll()
	n.epoch.Add(1)
	n.cache = make(map[core.PageID]*rpage)
}
