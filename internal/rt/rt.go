// Package rt is the real-execution runtime: it runs cvm applications on
// OS threads over a byte-level transport (internal/transport) instead of
// under the deterministic simulator. Where the simulator models the
// paper's protocol costs in virtual time, rt actually pays them — pages
// move as bytes, synchronization blocks real goroutines, and Now() is
// wall time.
//
// The coherence protocol is a home-based eager release consistency with
// multiple writers: page p is homed at node p % N, which holds the
// master copy. Self-homed pages are accessed directly at the master (no
// caching, no twins — early visibility of writes is harmless for
// data-race-free programs). Remote pages are cached with a twin created
// on first write; a release operation (Unlock, barrier or reduction
// arrival) diffs dirty pages against their twins, ships the diffs to
// the homes, and awaits acknowledgements before the release message is
// sent; an acquire operation (lock grant, barrier or reduction release)
// flushes and then invalidates the whole cache. For data-race-free
// programs this yields the same memory semantics the simulator's lazy
// protocol provides — and because the applications round shared-sum
// contributions to an exact grid (see apps.qfix), the same checksums,
// bit for bit. That equivalence is the conformance oracle; see
// harness.GuardTransportEquivalence and DESIGN.md §11.
//
// Threading mirrors the simulator's cooperative node scheduler with a
// per-node run token: application code runs only while holding the
// token, and the token is surrendered exactly where the simulator would
// switch threads — on remote fetches, lock waits, and barriers. The
// token's mutex handoff also gives co-located threads the happens-before
// edges the paper's applications assume when they share node-local
// buffers between a computation phase and a local barrier.
package rt

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cvm"
	"cvm/internal/core"
	"cvm/internal/sim"
	"cvm/internal/trace"
	"cvm/internal/transport"
)

// Config shapes a real-execution cluster.
type Config struct {
	Nodes          int
	ThreadsPerNode int
	PageSize       int // coherence unit in bytes; multiple of 8

	// Metrics, when non-nil, collects wall-clock protocol metrics
	// (fault service, lock waits, barrier stalls, diff bytes, and the
	// backend-invariant sync counters) into the simulator's snapshot
	// shape. Nil keeps every hot path observation-free.
	Metrics *Metrics

	// Tracer, when non-nil, receives wall-timestamped protocol events
	// on the same kinds the simulator emits, feeding the existing
	// Chrome exporter. The runtime serializes emissions with an
	// internal mutex, so a plain trace.Recorder is safe here.
	Tracer trace.Tracer
}

// DefaultConfig mirrors the simulator's shape defaults: the given
// geometry with the paper's 4 KB pages.
func DefaultConfig(nodes, threadsPerNode int) Config {
	return Config{Nodes: nodes, ThreadsPerNode: threadsPerNode, PageSize: 4096}
}

// Segment records one shared allocation, mirroring core.Segment.
type Segment struct {
	Name string
	Base core.Addr
	Size int
}

// Cluster is the real-execution counterpart of cvm.Cluster: it
// implements cvm.Allocator for application setup, then runs the
// application over a transport backend with RunLoopback (all nodes in
// this process) or RunNode (this process is one node of a multi-process
// cluster).
type Cluster struct {
	cfg       Config
	allocated core.Addr
	segments  []Segment
	started   bool

	// runMu guards rnodes, which Status reads while the run is live.
	runMu  sync.Mutex
	rnodes []*rnode
}

// NewCluster validates cfg and returns an empty cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("rt: %d nodes", cfg.Nodes)
	}
	if cfg.ThreadsPerNode < 1 {
		return nil, fmt.Errorf("rt: %d threads per node", cfg.ThreadsPerNode)
	}
	if cfg.PageSize < 8 || cfg.PageSize%8 != 0 {
		return nil, fmt.Errorf("rt: page size %d not a positive multiple of 8", cfg.PageSize)
	}
	return &Cluster{cfg: cfg}, nil
}

// Alloc reserves a page-aligned shared segment (cvm.Allocator). The
// bump-allocation discipline matches the simulator's, so the same setup
// code produces the same address-space layout on both engines.
func (c *Cluster) Alloc(name string, size int) (core.Addr, error) {
	if c.started {
		return 0, errors.New("rt: Alloc after run")
	}
	if size <= 0 {
		return 0, fmt.Errorf("rt: Alloc %q with size %d", name, size)
	}
	base := c.allocated
	pages := (size + c.cfg.PageSize - 1) / c.cfg.PageSize
	c.allocated += core.Addr(pages * c.cfg.PageSize)
	c.segments = append(c.segments, Segment{Name: name, Base: base, Size: size})
	return base, nil
}

// MustAlloc is Alloc, panicking on error (cvm.Allocator).
func (c *Cluster) MustAlloc(name string, size int) core.Addr {
	a, err := c.Alloc(name, size)
	if err != nil {
		panic(fmt.Sprintf("rt: %v", err))
	}
	return a
}

// PageSize reports the coherence unit in bytes (cvm.Allocator).
func (c *Cluster) PageSize() int { return c.cfg.PageSize }

// Nodes reports the cluster's node count (cvm.Allocator).
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// ThreadsPerNode reports the threads per node (cvm.Allocator).
func (c *Cluster) ThreadsPerNode() int { return c.cfg.ThreadsPerNode }

// Segments returns the allocated shared segments.
func (c *Cluster) Segments() []Segment { return c.segments }

// Result summarizes one node's (or, for RunLoopback, the whole
// cluster's) real execution.
type Result struct {
	Elapsed time.Duration
	Net     transport.Stats
}

// RunLoopback runs the full cluster in this process over the in-process
// loopback transport: Nodes×ThreadsPerNode goroutines execute main,
// multiplexed by per-node run tokens. Net in the result sums all nodes'
// traffic. The application value backing main is shared by every node,
// exactly as a multi-process run shares it by constructing it
// identically in each process — node-local buffers inside it must be
// indexed by NodeID, which the paper's applications already do.
func (c *Cluster) RunLoopback(main func(cvm.Worker)) (Result, error) {
	if c.started {
		return Result{}, errors.New("rt: cluster already run")
	}
	c.started = true
	if m := c.cfg.Metrics; m != nil {
		m.configure(c.cfg.Nodes)
	}
	var lt *lockedTracer
	if c.cfg.Tracer != nil {
		lt = &lockedTracer{tr: c.cfg.Tracer}
	}
	// One wall clock for the whole in-process cluster, so trace
	// timestamps from different nodes share an epoch.
	clock := sim.NewWallClock()
	conns := transport.NewLoopback(c.cfg.Nodes)
	nodes := make([]*rnode, c.cfg.Nodes)
	for i := range nodes {
		nodes[i] = newNode(c, conns[i], clock, lt)
	}
	c.runMu.Lock()
	c.rnodes = nodes
	c.runMu.Unlock()
	start := time.Now()
	errs := make([]error, len(nodes))
	done := make(chan int, len(nodes))
	for i, n := range nodes {
		go func(i int, n *rnode) {
			errs[i] = n.run(main)
			done <- i
		}(i, n)
	}
	for range nodes {
		<-done
	}
	res := Result{Elapsed: time.Since(start)}
	res.Net.Peers = make([]transport.PeerStats, c.cfg.Nodes)
	for _, n := range nodes {
		st := n.conn.Stats()
		for _, cl := range transport.Classes() {
			res.Net.Msgs[cl] += st.Msgs[cl]
			res.Net.Bytes[cl] += st.Bytes[cl]
			for j := range st.Peers {
				res.Net.Peers[j].Msgs[cl] += st.Peers[j].Msgs[cl]
				res.Net.Peers[j].Bytes[cl] += st.Peers[j].Bytes[cl]
			}
		}
		n.conn.Close()
	}
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// RunNode runs this process's node of a multi-process cluster over conn,
// which must already be a connected mesh of Nodes endpoints (see
// transport.Mesh). Every process must call RunNode with an identically
// configured cluster and an identically constructed application; RunNode
// returns once every node's threads have finished (the nodes run an
// internal completion rendezvous so no node's pages disappear while a
// peer still needs them). The caller owns conn and closes it afterwards.
func (c *Cluster) RunNode(conn transport.Conn, main func(cvm.Worker)) (Result, error) {
	if c.started {
		return Result{}, errors.New("rt: cluster already run")
	}
	if conn.Nodes() != c.cfg.Nodes {
		return Result{}, fmt.Errorf("rt: transport spans %d nodes, cluster configured for %d",
			conn.Nodes(), c.cfg.Nodes)
	}
	c.started = true
	if m := c.cfg.Metrics; m != nil {
		m.configure(c.cfg.Nodes)
	}
	var lt *lockedTracer
	if c.cfg.Tracer != nil {
		lt = &lockedTracer{tr: c.cfg.Tracer}
	}
	n := newNode(c, conn, sim.NewWallClock(), lt)
	c.runMu.Lock()
	c.rnodes = []*rnode{n}
	c.runMu.Unlock()
	start := time.Now()
	err := n.run(main)
	return Result{Elapsed: time.Since(start), Net: conn.Stats()}, err
}
