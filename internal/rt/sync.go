package rt

import (
	"cvm/internal/core"
	"cvm/internal/sim"
	"cvm/internal/trace"
)

// doneBarrier is the reserved node-level barrier id for the completion
// rendezvous run by rnode.run after all local threads finish.
const doneBarrier = ^uint32(0)

// lockState is one lock at its manager (lock id % nodes). queue holds
// waiters in FIFO order as (node, reqID) pairs.
type lockState struct {
	held  bool
	queue []lockWaiter
}

type lockWaiter struct {
	node  int
	reqID uint32
}

// lockReq handles a lock request at the manager (from the dispatcher,
// or locally when the requester is co-located with the manager).
func (n *rnode) lockReq(from int, reqID, id uint32) {
	n.hmu.Lock()
	ls := n.locks[id]
	if ls == nil {
		ls = &lockState{}
		n.locks[id] = ls
	}
	if ls.held {
		ls.queue = append(ls.queue, lockWaiter{from, reqID})
		n.hmu.Unlock()
		return
	}
	ls.held = true
	n.hmu.Unlock()
	n.grant(from, reqID)
}

// lockRel handles a release at the manager: pass the token to the next
// waiter, or mark the lock free.
func (n *rnode) lockRel(id uint32) {
	n.hmu.Lock()
	ls := n.locks[id]
	if ls == nil || !ls.held {
		n.hmu.Unlock()
		return
	}
	if len(ls.queue) == 0 {
		ls.held = false
		n.hmu.Unlock()
		return
	}
	w := ls.queue[0]
	ls.queue = ls.queue[1:]
	n.hmu.Unlock()
	n.grant(w.node, w.reqID)
}

// grant delivers a lock grant: locally when the waiter is on this node
// (the transport forbids self-sends), over the wire otherwise.
func (n *rnode) grant(node int, reqID uint32) {
	if node == n.self {
		n.deliver(reqID, nil)
		return
	}
	n.send(node, msgLockGrant, putU32(nil, reqID))
}

// lock acquires global lock id for the calling worker. Caller holds tok.
func (n *rnode) lock(w *Worker, id int) {
	n.checkFail()
	mgr := id % n.nodes
	obs := n.met != nil || n.tracer != nil
	var t0 sim.Time
	if obs {
		t0 = n.clock.Now()
		if tr := n.tracer; tr != nil {
			tr.emit(trace.Event{T: t0, Kind: trace.KindLockRequest,
				Node: int32(n.self), Thread: int32(w.gid), Sync: int32(id)})
		}
	}
	n.setState(w, tsLock)
	reqID, ch := n.newPending()
	if mgr == n.self {
		n.lockReq(n.self, reqID, uint32(id))
	} else {
		n.send(mgr, msgLockReq, encodeReq(reqID, uint32(id)))
	}
	n.tok.Unlock()
	n.await(ch)
	n.tok.Lock()
	n.setState(w, tsRunning)
	if obs {
		now := n.clock.Now()
		if m := n.met; m != nil {
			m.observeLock(n.self, int32(id), now-t0, mgr == n.self)
		}
		if tr := n.tracer; tr != nil {
			var arg int64
			if mgr == n.self {
				arg = 1 // satisfied without wire messages
			}
			tr.emit(trace.Event{T: now, Kind: trace.KindLockAcquire,
				Node: int32(n.self), Thread: int32(w.gid), Sync: int32(id), Arg: arg})
		}
	}
	n.acquireSync()
}

// unlock releases global lock id: flush first, so the next holder's
// post-acquire reads observe everything written inside the critical
// section (release consistency's release half). Caller holds tok.
func (n *rnode) unlock(w *Worker, id int) {
	n.checkFail()
	if m := n.met; m != nil {
		m.countUnlock(n.self)
	}
	n.flushAll()
	if tr := n.tracer; tr != nil {
		tr.emit(trace.Event{T: n.clock.Now(), Kind: trace.KindLockRelease,
			Node: int32(n.self), Thread: int32(w.gid), Sync: int32(id)})
	}
	mgr := id % n.nodes
	if mgr == n.self {
		n.lockRel(uint32(id))
		return
	}
	n.send(mgr, msgLockRel, putU32(nil, uint32(id)))
}

// nodeBar is one generation of a barrier (or local barrier) at one
// node: local arrival count, the channel waiters block on, and the
// invalidated flag the first post-release waker uses so the cache is
// dropped exactly once per generation. The entry is replaced on release,
// so reuse of a barrier id starts a fresh generation.
type nodeBar struct {
	count int
	ch    chan struct{}
	inv   bool // guarded by tok
}

func getBar(m map[uint32]*nodeBar, id uint32) *nodeBar {
	b := m[id]
	if b == nil {
		b = &nodeBar{ch: make(chan struct{})}
		m[id] = b
	}
	return b
}

// barrier blocks until every thread in the cluster arrives at id. The
// last local arriver flushes the node's dirty pages (all co-located
// threads are blocked here, so the flush is complete) and forwards one
// node-level arrival to the manager, node 0. Caller holds tok.
func (n *rnode) barrier(w *Worker, id uint32) {
	n.checkFail()
	obs := n.met != nil || n.tracer != nil
	var t0 sim.Time
	if obs {
		t0 = n.clock.Now()
		if m := n.met; m != nil {
			m.countBarrierArrive(n.self, false)
		}
		if tr := n.tracer; tr != nil {
			tr.emit(trace.Event{T: t0, Kind: trace.KindBarrierArrive,
				Node: int32(n.self), Thread: int32(w.gid), Sync: int32(id)})
		}
	}
	n.setState(w, tsBarrier)
	n.hmu.Lock()
	nb := getBar(n.nbar, id)
	nb.count++
	last := nb.count == n.threads
	n.hmu.Unlock()
	if last {
		n.flushAll()
		if n.self == 0 {
			n.barArrive(id)
		} else {
			n.send(0, msgBarArrive, putU32(nil, id))
		}
	}
	n.tok.Unlock()
	select {
	case <-nb.ch:
	case <-n.failCh:
	}
	n.tok.Lock()
	n.setState(w, tsRunning)
	if obs {
		if m := n.met; m != nil {
			m.observeBarrierStall(n.self, n.clock.Now()-t0, false)
		}
	}
	n.checkFail()
	if !nb.inv {
		nb.inv = true
		n.acquireSync()
	}
}

// barArrive counts node-level arrivals at the manager (node 0); the
// last one broadcasts the release.
func (n *rnode) barArrive(id uint32) {
	n.hmu.Lock()
	n.mbar[id]++
	done := n.mbar[id] == n.nodes
	if done {
		delete(n.mbar, id)
	}
	n.hmu.Unlock()
	if !done {
		return
	}
	for i := 1; i < n.nodes; i++ {
		n.send(i, msgBarRelease, putU32(nil, id))
	}
	n.barRelease(id)
}

// barRelease wakes this node's waiters on barrier id and retires the
// generation.
func (n *rnode) barRelease(id uint32) {
	if id == doneBarrier {
		close(n.doneCh)
		return
	}
	if tr := n.tracer; tr != nil {
		tr.emit(trace.Event{T: n.clock.Now(), Kind: trace.KindBarrierRelease,
			Node: int32(n.self), Thread: -1, Sync: int32(id)})
	}
	n.hmu.Lock()
	nb := n.nbar[id]
	delete(n.nbar, id)
	n.hmu.Unlock()
	if nb != nil {
		close(nb.ch)
	}
}

// localBarrier blocks until every co-located thread arrives: purely
// node-local, no flush, no invalidation — the run token's handoff
// already orders co-located threads' accesses to node-local memory.
// Caller holds tok.
func (n *rnode) localBarrier(w *Worker, id uint32) {
	n.checkFail()
	obs := n.met != nil || n.tracer != nil
	var t0 sim.Time
	if obs {
		t0 = n.clock.Now()
		if m := n.met; m != nil {
			m.countBarrierArrive(n.self, true)
		}
		if tr := n.tracer; tr != nil {
			tr.emit(trace.Event{T: t0, Kind: trace.KindBarrierArrive,
				Node: int32(n.self), Thread: int32(w.gid), Sync: int32(id), Aux: 1})
		}
	}
	n.setState(w, tsBarrier)
	n.hmu.Lock()
	nb := getBar(n.nlbar, id)
	nb.count++
	last := nb.count == n.threads
	if last {
		delete(n.nlbar, id)
		close(nb.ch)
	}
	n.hmu.Unlock()
	if last {
		if tr := n.tracer; tr != nil {
			tr.emit(trace.Event{T: n.clock.Now(), Kind: trace.KindBarrierRelease,
				Node: int32(n.self), Thread: int32(w.gid), Sync: int32(id), Aux: 1})
		}
	}
	n.tok.Unlock()
	select {
	case <-nb.ch:
	case <-n.failCh:
	}
	n.tok.Lock()
	n.setState(w, tsRunning)
	if obs {
		if m := n.met; m != nil {
			m.observeBarrierStall(n.self, n.clock.Now()-t0, true)
		}
	}
	n.checkFail()
}

// nodeRed is one generation of a reduction at one node: per-thread
// contributions indexed by local id, combined in that order once
// everyone has arrived, so the floating-point combine order is fixed
// regardless of scheduling.
type nodeRed struct {
	count  int
	vals   []float64
	ch     chan struct{}
	result float64
	inv    bool // guarded by tok
}

// redManager accumulates node contributions at node 0, indexed by node
// id and combined in node order — the second half of the deterministic
// combine order.
type redManager struct {
	arrived int
	vals    []float64
}

// reduce combines v across all threads with op and returns the result.
// Structurally a barrier whose arrival carries a value and whose
// release carries the combined result. Contributions fold in local-id
// order, not arrival order, so the floating-point result is independent
// of scheduling. Caller holds tok.
func (n *rnode) reduce(w *Worker, id int, v float64, op core.ReduceOp) float64 {
	n.checkFail()
	if m := n.met; m != nil {
		m.countReduce(n.self)
	}
	n.setState(w, tsReduce)
	rid := uint32(id)
	n.hmu.Lock()
	nr := n.nred[rid]
	if nr == nil {
		nr = &nodeRed{vals: make([]float64, n.threads), ch: make(chan struct{})}
		n.nred[rid] = nr
	}
	nr.vals[w.lid] = v
	nr.count++
	last := nr.count == n.threads
	var nodeVal float64
	if last {
		nodeVal = nr.vals[0]
		for _, x := range nr.vals[1:] {
			nodeVal = core.Combine(op, nodeVal, x)
		}
	}
	n.hmu.Unlock()
	if last {
		n.flushAll()
		if n.self == 0 {
			n.redArrive(rid, 0, op, nodeVal)
		} else {
			n.send(0, msgRedArrive, encodeRedArrive(rid, op, nodeVal))
		}
	}
	n.tok.Unlock()
	select {
	case <-nr.ch:
	case <-n.failCh:
	}
	n.tok.Lock()
	n.setState(w, tsRunning)
	n.checkFail()
	if !nr.inv {
		nr.inv = true
		n.acquireSync()
	}
	return nr.result
}

// redArrive records one node's contribution at the manager; the last
// arrival combines in node order and broadcasts the result.
func (n *rnode) redArrive(id uint32, node int, op core.ReduceOp, v float64) {
	n.hmu.Lock()
	rm := n.mred[id]
	if rm == nil {
		rm = &redManager{vals: make([]float64, n.nodes)}
		n.mred[id] = rm
	}
	rm.vals[node] = v
	rm.arrived++
	done := rm.arrived == n.nodes
	var result float64
	if done {
		delete(n.mred, id)
		result = rm.vals[0]
		for _, x := range rm.vals[1:] {
			result = core.Combine(op, result, x)
		}
	}
	n.hmu.Unlock()
	if !done {
		return
	}
	for i := 1; i < n.nodes; i++ {
		n.send(i, msgRedRelease, encodeRedRelease(id, result))
	}
	n.redRelease(id, result)
}

// redRelease wakes this node's reduction waiters with the result.
func (n *rnode) redRelease(id uint32, result float64) {
	n.hmu.Lock()
	nr := n.nred[id]
	delete(n.nred, id)
	n.hmu.Unlock()
	if nr != nil {
		nr.result = result
		close(nr.ch)
	}
}
