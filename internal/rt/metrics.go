package rt

import (
	"fmt"
	"sync"
	"time"

	"cvm/internal/core"
	"cvm/internal/metrics"
	"cvm/internal/sim"
	"cvm/internal/trace"
	"cvm/internal/transport"
)

// Metrics collects a real-execution cluster's wall-clock protocol
// metrics into the same Snapshot shape the simulator's registry
// produces, so the existing reporter, merge, and compare tooling work
// unchanged on real runs. Histogram values are nanoseconds of wall
// time (virtual nanoseconds in the simulator's reports) — time-typed
// metrics are therefore comparable only side by side, while the
// backend-invariant counters (see metrics.BackendInvariantCounters)
// must match the simulator exactly.
//
// Unlike the simulator's registry, observations here are concurrent:
// workers on different nodes (and the dispatcher) observe in parallel,
// so each node's shard carries its own mutex. A Metrics is attached to
// one rt.Config; in a multi-process cluster each process observes only
// its own node's shard, and the coordinator merges the per-node
// snapshots in node order.
type Metrics struct {
	mu     sync.Mutex
	nodes  int
	shards []rtMetShard
}

// rtMetShard is one node's mutex-guarded observation shard.
type rtMetShard struct {
	mu       sync.Mutex
	nm       metrics.NodeMetrics
	pageWait map[int32]*metrics.WaitAttr
	lockWait map[int32]*metrics.WaitAttr

	lockAcquires         int64
	lockReleases         int64
	barrierArrivals      int64
	localBarrierArrivals int64
	reductions           int64
}

// NewMetrics returns an empty collector; attach it via Config.Metrics.
func NewMetrics() *Metrics { return &Metrics{} }

// configure sizes the collector for the cluster. Reattaching the same
// collector to a differently-shaped cluster panics; reattaching to the
// same shape accumulates (a multi-run aggregate is meaningless for the
// equivalence gate, so callers use a fresh Metrics per run).
func (m *Metrics) configure(nodes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.shards == nil {
		m.nodes = nodes
		m.shards = make([]rtMetShard, nodes)
		for i := range m.shards {
			m.shards[i].pageWait = make(map[int32]*metrics.WaitAttr)
			m.shards[i].lockWait = make(map[int32]*metrics.WaitAttr)
		}
		return
	}
	if m.nodes != nodes {
		panic(fmt.Sprintf("rt: Metrics attached to a %d-node cluster after a %d-node one",
			nodes, m.nodes))
	}
}

func (m *Metrics) shard(node int) *rtMetShard { return &m.shards[node] }

// observeFault records one remote page fetch: service time (request to
// install) and the faulting thread's blocked time, attributed to pg.
func (m *Metrics) observeFault(node int, pg core.PageID, d sim.Time) {
	sh := m.shard(node)
	sh.mu.Lock()
	sh.nm.FaultService.Observe(int64(d))
	sh.nm.FaultThreadWait.Observe(int64(d))
	attrAdd(sh.pageWait, int32(pg), int64(d))
	sh.mu.Unlock()
}

// observeLock records one lock acquire: request-to-grant wait,
// classified by whether the manager was local (no wire messages) or
// remote (the runtime's centralized managers make every remote acquire
// a 2-hop exchange; Lock3Hop stays empty by construction).
func (m *Metrics) observeLock(node int, id int32, d sim.Time, local bool) {
	sh := m.shard(node)
	sh.mu.Lock()
	if local {
		sh.nm.LockLocalWait.Observe(int64(d))
	} else {
		sh.nm.Lock2Hop.Observe(int64(d))
	}
	attrAdd(sh.lockWait, id, int64(d))
	sh.lockAcquires++
	sh.mu.Unlock()
}

// countUnlock records one application-level Unlock.
func (m *Metrics) countUnlock(node int) {
	sh := m.shard(node)
	sh.mu.Lock()
	sh.lockReleases++
	sh.mu.Unlock()
}

// countBarrierArrive records one global-barrier arrival.
func (m *Metrics) countBarrierArrive(node int, local bool) {
	sh := m.shard(node)
	sh.mu.Lock()
	if local {
		sh.localBarrierArrivals++
	} else {
		sh.barrierArrivals++
	}
	sh.mu.Unlock()
}

// observeBarrierStall records one thread's arrive-to-release stall.
func (m *Metrics) observeBarrierStall(node int, d sim.Time, local bool) {
	sh := m.shard(node)
	sh.mu.Lock()
	if local {
		sh.nm.LocalBarrierStall.Observe(int64(d))
	} else {
		sh.nm.BarrierStall.Observe(int64(d))
	}
	sh.mu.Unlock()
}

// countReduce records one global-reduction arrival.
func (m *Metrics) countReduce(node int) {
	sh := m.shard(node)
	sh.mu.Lock()
	sh.reductions++
	sh.mu.Unlock()
}

// observeDiff records the wire size of one diff shipped to a home.
func (m *Metrics) observeDiff(node int, bytes int64) {
	sh := m.shard(node)
	sh.mu.Lock()
	sh.nm.DiffBytes.Observe(bytes)
	sh.mu.Unlock()
}

func attrAdd(m map[int32]*metrics.WaitAttr, k int32, ns int64) {
	a := m[k]
	if a == nil {
		a = &metrics.WaitAttr{}
		m[k] = a
	}
	a.WaitNs += ns
	a.Count++
}

func foldAttr(dst, src map[int32]*metrics.WaitAttr) {
	for k, a := range src {
		d := dst[k]
		if d == nil {
			d = &metrics.WaitAttr{}
			dst[k] = d
		}
		d.WaitNs += a.WaitNs
		d.Count += a.Count
	}
}

// Snapshot folds the shards into a full-shape metrics snapshot: Nodes
// is sized for the whole cluster (a member process's snapshot has only
// its own node populated), and MsgClasses carries the transport class
// names so network-shaped fields mean the same thing as the
// simulator's. Safe to call concurrently with observation — the debug
// server scrapes mid-run.
func (m *Metrics) Snapshot() *metrics.Snapshot {
	m.mu.Lock()
	nodes := m.nodes
	m.mu.Unlock()
	classes := make([]string, 0, transport.NumClasses)
	for _, cl := range transport.Classes() {
		classes = append(classes, cl.String())
	}
	out := &metrics.Snapshot{
		Nodes: make([]metrics.NodeMetrics, nodes),
		Net: metrics.NetMetrics{
			Latency:     make([]metrics.Histogram, len(classes)),
			EgressWait:  make([]metrics.Histogram, len(classes)),
			IngressWait: make([]metrics.Histogram, len(classes)),
		},
		MsgClasses: classes,
		PageWait:   make(map[int32]*metrics.WaitAttr),
		LockWait:   make(map[int32]*metrics.WaitAttr),
		Timeline:   make([][]metrics.TimelineBin, nodes),
	}
	for i := 0; i < nodes; i++ {
		sh := &m.shards[i]
		sh.mu.Lock()
		out.Nodes[i] = sh.nm
		foldAttr(out.PageWait, sh.pageWait)
		foldAttr(out.LockWait, sh.lockWait)
		out.LockAcquires.Add(sh.lockAcquires)
		out.LockReleases.Add(sh.lockReleases)
		out.BarrierArrivals.Add(sh.barrierArrivals)
		out.LocalBarrierArrivals.Add(sh.localBarrierArrivals)
		out.Reductions.Add(sh.reductions)
		sh.mu.Unlock()
	}
	return out
}

// lockedTracer serializes Emit calls: trace.Recorder is not
// thread-safe, and a real cluster's workers and dispatcher emit
// concurrently.
type lockedTracer struct {
	mu sync.Mutex
	tr trace.Tracer
}

func (lt *lockedTracer) emit(e trace.Event) {
	lt.mu.Lock()
	lt.tr.Emit(e)
	lt.mu.Unlock()
}

// Thread states surfaced by Cluster.Status. Stored per worker as an
// atomic so the debug server reads them without touching the run token.
const (
	tsStarting int32 = iota
	tsRunning
	tsFault
	tsLock
	tsBarrier
	tsReduce
	tsDone
)

var tsNames = [...]string{"starting", "running", "fault-wait", "lock-wait",
	"barrier-wait", "reduce-wait", "done"}

func tsName(s int32) string {
	if s < 0 || int(s) >= len(tsNames) {
		return "unknown"
	}
	return tsNames[s]
}

// NodeStatus is one node's live introspection snapshot, served by the
// cvm-node debug endpoint as /status.
type NodeStatus struct {
	Node    int          `json:"node"`
	Epoch   uint64       `json:"epoch"`
	Threads []string     `json:"threads"`
	Failure string       `json:"failure,omitempty"`
	Peers   []PeerStatus `json:"peers,omitempty"`
}

// PeerStatus is the sent-side traffic toward one peer, with its
// transport address — nonzero growth over successive scrapes is the
// liveness signal.
type PeerStatus struct {
	Peer  int    `json:"peer"`
	Addr  string `json:"addr"`
	Msgs  int64  `json:"msgs"`
	Bytes int64  `json:"bytes"`
}

// Status reports the live state of every node running in this process:
// one entry per node for RunLoopback, one for RunNode, empty before
// the run starts. Safe to call concurrently with the run.
func (c *Cluster) Status() []NodeStatus {
	c.runMu.Lock()
	nodes := append([]*rnode(nil), c.rnodes...)
	c.runMu.Unlock()
	out := make([]NodeStatus, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.status())
	}
	return out
}

func (n *rnode) status() NodeStatus {
	st := NodeStatus{Node: n.self, Epoch: n.epoch.Load()}
	st.Threads = make([]string, len(n.tstate))
	for i := range n.tstate {
		st.Threads[i] = tsName(n.tstate[i].Load())
	}
	if err := n.failure(); err != nil {
		st.Failure = err.Error()
	}
	stats := n.conn.Stats()
	for j := range stats.Peers {
		if j == n.self {
			continue
		}
		p := &stats.Peers[j]
		st.Peers = append(st.Peers, PeerStatus{
			Peer:  j,
			Addr:  n.conn.PeerAddr(transport.NodeID(j)),
			Msgs:  p.TotalMsgs(),
			Bytes: p.TotalBytes(),
		})
	}
	return st
}

// RealStats converts a run's wall time and transport totals into a
// report's Real section (shared by cvm-run's loopback path and
// cvm-node's cluster path).
func RealStats(backend string, nodes int, elapsed time.Duration, st transport.Stats) *metrics.RealStats {
	re := &metrics.RealStats{
		Backend:   backend,
		Nodes:     nodes,
		ElapsedNs: elapsed.Nanoseconds(),
	}
	for _, cl := range transport.Classes() {
		re.Classes = append(re.Classes, metrics.RealClassStat{
			Class: cl.String(), Msgs: st.Msgs[cl], Bytes: st.Bytes[cl],
		})
	}
	for j := range st.Peers {
		p := &st.Peers[j]
		if p.TotalMsgs() == 0 {
			continue
		}
		re.Peers = append(re.Peers, metrics.RealPeerStat{
			Peer: j, Msgs: p.TotalMsgs(), Bytes: p.TotalBytes(),
		})
	}
	return re
}
