package rt_test

import (
	"testing"

	"cvm/internal/apps"
	"cvm/internal/rt"
)

// benchLoopback runs one full waternsq/test loopback cluster per
// iteration. The off/on pair is the metrics A/B: with Config.Metrics
// nil the runtime's observation gate is false and the hot paths pay
// only a nil check, so the off variant must track the uninstrumented
// runtime and the on variant prices the opt-in instrumentation.
func benchLoopback(b *testing.B, withMetrics bool) {
	for i := 0; i < b.N; i++ {
		a, err := apps.New("waternsq", apps.SizeTest)
		if err != nil {
			b.Fatal(err)
		}
		cfg := rt.DefaultConfig(4, 2)
		if withMetrics {
			cfg.Metrics = rt.NewMetrics()
		}
		cl, err := rt.NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Setup(cl); err != nil {
			b.Fatal(err)
		}
		if _, err := cl.RunLoopback(a.Main); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoopbackMetricsOff(b *testing.B) { benchLoopback(b, false) }
func BenchmarkLoopbackMetricsOn(b *testing.B)  { benchLoopback(b, true) }
