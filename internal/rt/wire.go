package rt

import (
	"encoding/binary"
	"fmt"
	"math"

	"cvm/internal/core"
	"cvm/internal/transport"
)

// DSM message types carried in transport.Message.Type. Requests carry a
// request id the reply echoes, so replies route back to the blocked
// worker without the dispatcher knowing who asked.
const (
	msgPageReq    uint8 = iota + 1 // reqID, pg          -> home
	msgPageRep                     // reqID, pg, data    <- home
	msgDiffReq                     // reqID, pg, runs    -> home
	msgDiffAck                     // reqID              <- home
	msgLockReq                     // reqID, lock        -> manager
	msgLockGrant                   // reqID              <- manager
	msgLockRel                     // lock               -> manager
	msgBarArrive                   // barrier            -> manager (node 0)
	msgBarRelease                  // barrier            <- manager
	msgRedArrive                   // reduce, op, value  -> manager (node 0)
	msgRedRelease                  // reduce, value      <- manager
)

// classOf maps a message type to its Table 2 accounting class. Page and
// diff traffic is ClassDiff, matching the simulator's classification of
// data-carrying messages.
func classOf(typ uint8) transport.Class {
	switch typ {
	case msgLockReq, msgLockGrant, msgLockRel:
		return transport.ClassLock
	case msgBarArrive, msgBarRelease, msgRedArrive, msgRedRelease:
		return transport.ClassBarrier
	default:
		return transport.ClassDiff
	}
}

// Payload encoding is little-endian fixed-width fields, mirroring the
// page data encoding the Worker accessors use.

func putU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func putU64(b []byte, v uint64) []byte {
	b = putU32(b, uint32(v))
	return putU32(b, uint32(v>>32))
}

func u32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
func u64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// encodeReq builds a (reqID, arg) payload shared by page requests
// (arg = page) and lock requests (arg = lock id).
func encodeReq(reqID, arg uint32) []byte {
	return putU32(putU32(make([]byte, 0, 8), reqID), arg)
}

// encodePageRep builds a page reply: reqID, page id, page contents.
func encodePageRep(reqID uint32, pg core.PageID, data []byte) []byte {
	b := make([]byte, 0, 8+len(data))
	b = putU32(b, reqID)
	b = putU32(b, uint32(pg))
	return append(b, data...)
}

// encodeDiff builds a diff flush: reqID, page id, then the runs in the
// compressed wire form (run-length + xor8 prefilter, core.EncodeRuns).
// The encoding is self-contained, so the home can decode it regardless
// of its own page contents, and decoding returns exactly the Run form
// core.MakeDiff produced.
func encodeDiff(reqID uint32, pg core.PageID, runs []core.Run) []byte {
	b := make([]byte, 0, 64)
	b = putU32(b, reqID)
	b = putU32(b, uint32(pg))
	return core.EncodeRuns(b, runs)
}

// decodeDiff parses an encodeDiff payload back into page id and runs.
func decodeDiff(b []byte) (reqID uint32, pg core.PageID, runs []core.Run, err error) {
	if len(b) < 8 {
		return 0, 0, nil, fmt.Errorf("rt: diff payload %d bytes", len(b))
	}
	reqID = u32(b)
	pg = core.PageID(u32(b[4:]))
	runs, rest, err := core.DecodeRuns(b[8:])
	if err != nil {
		return 0, 0, nil, fmt.Errorf("rt: diff payload: %w", err)
	}
	if len(rest) != 0 {
		return 0, 0, nil, fmt.Errorf("rt: %d trailing bytes after diff runs", len(rest))
	}
	return reqID, pg, runs, nil
}

// encodeRedArrive builds a reduction arrival: reduce id, op, node value.
func encodeRedArrive(id uint32, op core.ReduceOp, v float64) []byte {
	b := make([]byte, 0, 13)
	b = putU32(b, id)
	b = append(b, byte(op))
	return putU64(b, math.Float64bits(v))
}

// encodeRedRelease builds a reduction release: reduce id, result.
func encodeRedRelease(id uint32, v float64) []byte {
	return putU64(putU32(make([]byte, 0, 12), id), math.Float64bits(v))
}
