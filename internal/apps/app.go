// Package apps implements the paper's application suite (Table 1) against
// the CVM API: Barnes, FFT, Ocean, SOR, SWM750, Water-Sp and Water-Nsq,
// plus the Water-Nsq source-modification variants of Table 5.
//
// Every application follows the paper's structure: thread 0 initializes
// the shared data, an initialization barrier separates startup from the
// measured steady state, and work is partitioned by dividing the problem
// size by the total number of threads (so per-node multi-threading is
// transparent to the source, as in the paper's experiments).
//
// Each application has a sequential reference used by correctness tests:
// the DSM execution must reproduce the reference checksum.
package apps

import (
	"fmt"
	"math"
	"sort"

	"cvm"
)

// Size selects an input scale.
type Size int

// Input scales. SizeTest keeps unit tests fast; SizeSmall is the default
// for benchmarks (the paper's communication/computation ratios at reduced
// cost); SizePaper is the paper's Table 1 input.
const (
	SizeTest Size = iota
	SizeSmall
	SizePaper
)

// ParseSize converts a flag value.
func ParseSize(s string) (Size, error) {
	switch s {
	case "test":
		return SizeTest, nil
	case "small":
		return SizeSmall, nil
	case "paper":
		return SizePaper, nil
	default:
		return 0, fmt.Errorf("apps: unknown size %q (want test, small or paper)", s)
	}
}

// App is one benchmark application.
type App interface {
	// Name is the registry key (lower case).
	Name() string

	// SupportsThreads reports whether the app can run at the given
	// per-node threading level (Ocean requires a power of two).
	SupportsThreads(t int) bool

	// Setup allocates the app's shared segments on the cluster.
	Setup(c cvm.Allocator) error

	// Main is the thread body. It must initialize on global thread 0,
	// call MarkSteadyState after the init barrier, and leave a checksum
	// via the app's own state for Check.
	Main(w cvm.Worker)

	// Check validates the parallel result against the sequential
	// reference, returning an error on mismatch.
	Check() error

	// Checksum returns the run's computed checksum (valid after Main
	// completes on all threads). The chaos suite compares it across
	// fault schedules: retransmission only perturbs virtual timing, so
	// a faulted run must reproduce the fault-free checksum exactly.
	Checksum() float64
}

// factory builds a fresh App for one run.
type factory func(size Size) App

var registry = map[string]factory{}

// migratable lists the applications that are safe to run under thread
// migration (cvm.Config.Migrate). An app qualifies when it partitions
// work purely by GlobalID: Ocean, Water-Sp and the Water-Nsq variants
// key per-node accumulators on NodeID and synchronize with
// LocalBarrier, so a mid-run re-homing would split their node-local
// state across two nodes (the runtime pins LocalBarrier participants,
// but NodeID may still change before the first local barrier).
var migratable = map[string]bool{
	"barnes":   true,
	"fft":      true,
	"sor":      true,
	"swm750":   true,
	"scaleout": true,
}

// Migratable reports whether the named application tolerates thread
// migration. Unknown names report false; New is the place that
// validates app names.
func Migratable(name string) bool { return migratable[name] }

// migratableNames lists the migration-safe apps in sorted order.
func migratableNames() []string {
	names := make([]string, 0, len(migratable))
	for n := range migratable {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// register adds an application factory; called from init in each app file.
func register(name string, f factory) { registry[name] = f }

// New builds a fresh application instance by name.
func New(name string, size Size) (App, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
	return f(size), nil
}

// Names lists registered applications in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// defaultCheckTol is the relative checksum tolerance that absorbs the
// floating-point reassociation caused by different thread counts (the
// paper's applications tolerate the same).
const defaultCheckTol = 1e-6

// tolerance carries a per-run checksum tolerance override; every app
// embeds it so harness experiments that perturb cluster timing (and
// thereby synchronization order and FP accumulation order) can widen the
// bound without loosening the default validation.
type tolerance struct {
	tol float64
}

// setCheckTol overrides the relative checksum tolerance for this run.
func (t *tolerance) setCheckTol(tol float64) { t.tol = tol }

// toleranceSetter is satisfied by every app via the embedded tolerance.
type toleranceSetter interface {
	setCheckTol(tol float64)
}

// checkClose validates a float checksum with the run's relative
// tolerance (the default unless setCheckTol widened it).
func (t *tolerance) checkClose(name string, got, want float64) error {
	tol := t.tol
	if tol <= 0 {
		tol = defaultCheckTol
	}
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	scale := want
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	if diff > tol*scale {
		return fmt.Errorf("%s: checksum %g, reference %g (relative error %g, tolerance %g)",
			name, got, want, diff/scale, tol)
	}
	return nil
}

// qfix rounds x to the nearest multiple of 2^-32, the fixed-point grid
// shared accumulators use. Residual and energy sums are accumulated
// across threads in lock-grant (or thread-schedule) order, and that
// order legally shifts when fault injection perturbs virtual timing;
// with every addend on the grid and every partial sum well inside
// float64's 53-bit exact range, the additions are exact and therefore
// associative — the total is bit-identical under any fault schedule,
// which is the chaos suite's correctness oracle. The quantization error
// (≤ 2^-33 per addend) is far inside the sequential-reference tolerance.
func qfix(x float64) float64 { return math.Round(x*(1<<32)) / (1 << 32) }

// lcg is a small deterministic pseudo-random generator for initial data.
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64((*r)>>11) / float64(1<<53)
}

// chunkOf splits n items across total threads, assigning the remainder to
// the leading threads (the paper's problem-size / thread-count division).
func chunkOf(n, threads, id int) (lo, hi int) {
	base := n / threads
	rem := n % threads
	lo = id*base + min(id, rem)
	hi = lo + base
	if id < rem {
		hi++
	}
	return lo, hi
}

// sortInts sorts a small int slice ascending (insertion sort; inputs are
// tiny neighbour lists).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
