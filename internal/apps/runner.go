package apps

import (
	"fmt"

	"cvm"
)

// Run builds the named application at the given scale, executes it on a
// fresh cluster with the paper's default calibration, validates the
// result against the sequential reference, and returns the run statistics.
func Run(name string, size Size, nodes, threadsPerNode int) (cvm.Stats, error) {
	return RunConfig(name, size, cvm.DefaultConfig(nodes, threadsPerNode))
}

// RunConfig is Run with an explicit cluster configuration.
func RunConfig(name string, size Size, cfg cvm.Config) (cvm.Stats, error) {
	return RunConfigTol(name, size, cfg, 0)
}

// RunConfigTol is RunConfig with a widened relative checksum tolerance
// (0 keeps the default). Experiments that perturb cluster timing — e.g.
// the switch-cost ablation — change synchronization order and therefore
// floating-point accumulation order; the result is the same computation
// reassociated, which can drift past the default bound.
func RunConfigTol(name string, size Size, cfg cvm.Config, tol float64) (cvm.Stats, error) {
	stats, _, err := RunConfigFull(name, size, cfg, tol)
	return stats, err
}

// RunConfigFull is RunConfigTol returning the run's checksum alongside
// the statistics. The chaos suite uses the checksum as its correctness
// oracle: a run under any fault schedule must reproduce the fault-free
// checksum bit for bit.
func RunConfigFull(name string, size Size, cfg cvm.Config, tol float64) (cvm.Stats, float64, error) {
	app, err := New(name, size)
	if err != nil {
		return cvm.Stats{}, 0, err
	}
	if tol > 0 {
		app.(toleranceSetter).setCheckTol(tol)
	}
	if !app.SupportsThreads(cfg.ThreadsPerNode) {
		return cvm.Stats{}, 0, fmt.Errorf("apps: %s does not support %d threads per node",
			name, cfg.ThreadsPerNode)
	}
	if cfg.Migrate && !Migratable(name) {
		return cvm.Stats{}, 0, fmt.Errorf("apps: %s keys node-local state on NodeID and cannot run under thread migration (migration-safe: %v)",
			name, migratableNames())
	}
	cluster, err := cvm.New(cfg)
	if err != nil {
		return cvm.Stats{}, 0, err
	}
	if err := app.Setup(cluster); err != nil {
		return cvm.Stats{}, 0, err
	}
	stats, err := cluster.Run(app.Main)
	if err != nil {
		return cvm.Stats{}, 0, fmt.Errorf("apps: %s run: %w", name, err)
	}
	if err := app.Check(); err != nil {
		return cvm.Stats{}, app.Checksum(), fmt.Errorf("apps: %s check: %w", name, err)
	}
	return stats, app.Checksum(), nil
}
