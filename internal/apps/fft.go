package apps

import (
	"fmt"
	"math"

	"cvm"
)

// FFT is the transpose-based Fourier transform kernel: row FFTs are pure
// local computation over owned rows, and the transpose steps are the
// communication phase (every thread reads a column stripe spanning all
// other threads' rows). The paper's input is a 64³ 3-D FFT; this is the
// equivalent matrix formulation (m×m complex, same memory footprint at
// m=512), which preserves the transpose communication pattern the paper's
// FFT results are about.
//
// As in the paper, data alignment to pages drives the 3-thread anomaly:
// row counts that do not divide by the total thread count leave partial
// pages shared between consecutive threads.
type FFT struct {
	tolerance
	m     int // matrix dimension (power of two)
	iters int

	a, b cvm.F64Matrix // complex matrices: re/im interleaved, 2*m floats per row

	checksum float64
}

func init() {
	register("fft", func(size Size) App { return NewFFT(size) })
}

// NewFFT builds the FFT instance for an input scale.
func NewFFT(size Size) *FFT {
	switch size {
	case SizeTest:
		return &FFT{m: 32, iters: 1}
	case SizePaper:
		return &FFT{m: 512, iters: 2}
	default:
		return &FFT{m: 128, iters: 2}
	}
}

// Name implements App.
func (f *FFT) Name() string { return "fft" }

// SupportsThreads implements App.
func (f *FFT) SupportsThreads(int) bool { return true }

// Setup implements App.
func (f *FFT) Setup(c cvm.Allocator) error {
	if f.m&(f.m-1) != 0 {
		return fmt.Errorf("fft: m=%d must be a power of two", f.m)
	}
	f.a = cvm.MustAllocF64Matrix(c, "fft.a", f.m, 2*f.m, false)
	f.b = cvm.MustAllocF64Matrix(c, "fft.b", f.m, 2*f.m, false)
	return nil
}

// Main implements App.
func (f *FFT) Main(w cvm.Worker) {
	if w.GlobalID() == 0 {
		r := lcg(7)
		row := make([]float64, 2*f.m)
		for i := 0; i < f.m; i++ {
			for j := 0; j < f.m; j++ {
				row[2*j] = r.next() - 0.5
				row[2*j+1] = 0
			}
			f.a.SetRow(w, i, row)
		}
	}
	w.Barrier(0)
	if w.GlobalID() == 0 {
		w.MarkSteadyState()
	}
	w.Barrier(1)

	lo, hi := chunkOf(f.m, w.Threads(), w.GlobalID())
	re := make([]float64, f.m)
	im := make([]float64, f.m)
	row := make([]float64, 2*f.m)
	bar := 10

	// transpose writes dst rows from src columns: the column reads stay
	// scalar-granular (each row contributes one re/im pair — the scatter
	// that makes the transpose the communication phase), but the pair is
	// one small span and the assembled destination row is written back as
	// one span per page.
	transpose := func(dst, src cvm.F64Matrix) {
		var pair [2]float64
		for i := lo; i < hi; i++ {
			for j := 0; j < f.m; j++ {
				src.RowRange(w, j, 2*i, pair[:])
				row[2*j], row[2*j+1] = pair[0], pair[1]
			}
			dst.SetRow(w, i, row)
		}
	}

	for it := 0; it < f.iters; it++ {
		// Row FFTs on A.
		w.Phase(1)
		f.fftRows(w, f.a, lo, hi, re, im, row)
		w.Barrier(bar)
		bar++

		// Transpose A into B: reads scatter across all nodes' rows.
		w.Phase(2)
		transpose(f.b, f.a)
		w.Barrier(bar)
		bar++

		// Row FFTs on B (columns of the original matrix).
		w.Phase(1)
		f.fftRows(w, f.b, lo, hi, re, im, row)
		w.Barrier(bar)
		bar++

		// Transpose back into A.
		w.Phase(2)
		transpose(f.a, f.b)
		w.Barrier(bar)
		bar++
	}

	if w.GlobalID() == 0 {
		w.Phase(3)
		sum := 0.0
		for i := 0; i < f.m; i++ {
			sum += f.a.Get(w, i, 2*(i%f.m)) + f.a.Get(w, i, 2*(i%f.m)+1)
		}
		f.checksum = sum
	}
	w.Barrier(9999)
}

// fftRows transforms rows [lo, hi): each row is read as page-granular
// spans into private buffers, transformed (the n·log n arithmetic charged
// as computation), and written back as spans. row is a 2*m scratch buffer
// for the interleaved re/im layout.
func (f *FFT) fftRows(w cvm.Worker, mat cvm.F64Matrix, lo, hi int, re, im, row []float64) {
	logM := 0
	for 1<<logM < f.m {
		logM++
	}
	for i := lo; i < hi; i++ {
		mat.Row(w, i, row)
		for j := 0; j < f.m; j++ {
			re[j] = row[2*j]
			im[j] = row[2*j+1]
		}
		fft1d(re, im)
		// ~12 flops per butterfly at 275 MHz ≈ 45 ns each.
		w.Compute(cvm.Time(f.m*logM) * 45)
		for j := 0; j < f.m; j++ {
			row[2*j] = re[j]
			row[2*j+1] = im[j]
		}
		mat.SetRow(w, i, row)
	}
}

// Check implements App.
// Checksum returns the computed transform checksum.
func (f *FFT) Checksum() float64 { return f.checksum }

func (f *FFT) Check() error {
	return f.checkClose("fft", f.checksum, f.reference())
}

func (f *FFT) reference() float64 {
	re := make([][]float64, f.m)
	im := make([][]float64, f.m)
	r := lcg(7)
	for i := range re {
		re[i] = make([]float64, f.m)
		im[i] = make([]float64, f.m)
		for j := range re[i] {
			re[i][j] = r.next() - 0.5
		}
	}
	transpose := func(ar, ai [][]float64) ([][]float64, [][]float64) {
		br := make([][]float64, f.m)
		bi := make([][]float64, f.m)
		for i := range br {
			br[i] = make([]float64, f.m)
			bi[i] = make([]float64, f.m)
			for j := range br[i] {
				br[i][j] = ar[j][i]
				bi[i][j] = ai[j][i]
			}
		}
		return br, bi
	}
	for it := 0; it < f.iters; it++ {
		for i := range re {
			fft1d(re[i], im[i])
		}
		re, im = transpose(re, im)
		for i := range re {
			fft1d(re[i], im[i])
		}
		re, im = transpose(re, im)
	}
	sum := 0.0
	for i := range re {
		sum += re[i][i%f.m] + im[i][i%f.m]
	}
	return sum
}

// fft1d is an in-place iterative radix-2 Cooley-Tukey transform.
func fft1d(re, im []float64) {
	n := len(re)
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			cr, ci := 1.0, 0.0
			for k := start; k < start+length/2; k++ {
				ur, ui := re[k], im[k]
				vr := re[k+length/2]*cr - im[k+length/2]*ci
				vi := re[k+length/2]*ci + im[k+length/2]*cr
				re[k], im[k] = ur+vr, ui+vi
				re[k+length/2], im[k+length/2] = ur-vr, ui-vi
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
}
