package apps

import (
	"testing"

	"cvm"
)

// TestWindowedSmoke is the cheap in-package determinism smoke for the
// conservative windowed engine: one real application at several worker
// counts must agree on wall time and checksum exactly. The full
// byte-level guard (metrics reports, Chrome traces, fault schedules)
// lives in internal/harness and internal/chaos.
func TestWindowedSmoke(t *testing.T) {
	type res struct {
		wall cvm.Time
		sum  float64
	}
	var got []res
	for _, w := range []int{1, 2, 4} {
		cfg := cvm.DefaultConfig(4, 4)
		cfg.EngineWorkers = w
		stats, sum, err := RunConfigFull("sor", SizeSmall, cfg, 0)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		t.Logf("workers=%d wall=%v checksum=%x faults=%d", w, stats.Wall, sum, stats.Total.RemoteFaults)
		got = append(got, res{stats.Wall, sum})
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatalf("divergence: workers=%d %+v vs workers=1 %+v", []int{1, 2, 4}[i], got[i], got[0])
		}
	}
}
