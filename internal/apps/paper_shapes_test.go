package apps

import (
	"testing"

	"cvm"
	"cvm/internal/netsim"
)

// These tests pin the paper's qualitative results at the test input scale
// so regressions in the protocol or the applications that would change a
// paper-level conclusion fail loudly.

// TestShapeOceanFaultHiding: Ocean is the fault-bound application; adding
// a second thread per node must hide a large share of non-overlapped
// fault wait (paper: Figure 1's largest fault-component collapse).
func TestShapeOceanFaultHiding(t *testing.T) {
	// Ocean's fault volume needs the small grid; the test grid is too
	// tiny for overlap to matter.
	t1, err := Run("ocean", SizeSmall, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Run("ocean", SizeSmall, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Total.FaultWait >= t1.Total.FaultWait*8/10 {
		t.Errorf("fault wait %v at T=2 vs %v at T=1: want ≥20%% hidden",
			t2.Total.FaultWait, t1.Total.FaultWait)
	}
	if t2.Wall >= t1.Wall {
		t.Errorf("wall %v at T=2 not below %v at T=1", t2.Wall, t1.Wall)
	}
}

// TestShapeWaterNsqLockHiding: Water-Nsq is the lock-bound application;
// multi-threading must reduce non-overlapped lock wait (paper: "most of
// Water-Nsq's [speedup] is from locks").
func TestShapeWaterNsqLockHiding(t *testing.T) {
	t1, err := Run("waternsq", SizeTest, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Run("waternsq", SizeTest, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if t4.Total.LockWait >= t1.Total.LockWait {
		t.Errorf("lock wait %v at T=4 not below %v at T=1",
			t4.Total.LockWait, t1.Total.LockWait)
	}
	if t4.Wall >= t1.Wall {
		t.Errorf("wall %v at T=4 not below %v at T=1", t4.Wall, t1.Wall)
	}
}

// TestShapeLockMessagesFlat: the paper's Table 2 conclusion — per-node
// aggregation keeps lock message counts essentially constant as the
// threading level rises.
func TestShapeLockMessagesFlat(t *testing.T) {
	t1, err := Run("waternsq", SizeTest, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Run("waternsq", SizeTest, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	m1 := t1.Net.Msgs[netsim.ClassLock]
	m4 := t4.Net.Msgs[netsim.ClassLock]
	// Aggregation means lock traffic must not grow with the threading
	// level (a decrease is fine: local hand-offs replace remote trips).
	if m4 > m1+m1/10 {
		t.Errorf("lock messages grew %d → %d with threading", m1, m4)
	}
}

// TestShapeSwitchesGrowWithThreads: Table 3's first column.
func TestShapeSwitchesGrowWithThreads(t *testing.T) {
	prev := int64(-1)
	for _, threads := range []int{1, 2, 4} {
		st, err := Run("waternsq", SizeTest, 4, threads)
		if err != nil {
			t.Fatal(err)
		}
		if st.Total.ThreadSwitches <= prev {
			t.Errorf("switches %d at T=%d not above previous %d",
				st.Total.ThreadSwitches, threads, prev)
		}
		prev = st.Total.ThreadSwitches
	}
}

// TestShapeITLBGrowsWithThreads: Figure 2's I-TLB series rises with the
// threading level for every application.
func TestShapeITLBGrowsWithThreads(t *testing.T) {
	for _, name := range []string{"sor", "fft", "waternsq"} {
		t1, err := Run(name, SizeTest, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		t4, err := Run(name, SizeTest, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if t4.MemTotal.ITLBMisses <= t1.MemTotal.ITLBMisses {
			t.Errorf("%s: I-TLB misses %d at T=4 not above %d at T=1",
				name, t4.MemTotal.ITLBMisses, t1.MemTotal.ITLBMisses)
		}
	}
}

// TestShapeSingleWriterLosesOnFalseSharing: the protocol-motivation
// result — under heavy false sharing the single-writer baseline moves far
// more data than multi-writer LRC. Ocean is the witness: its un-padded
// grids keep element-granular red-black accesses (stride-2 columns cannot
// use the span accessors), so neighbouring partitions ping-pong shared
// pages under single-writer. SOR no longer qualifies — its row-span
// sweeps fault at most once per page per row, which batches away the
// intra-phase interleaving the ping-pong needs.
func TestShapeSingleWriterLosesOnFalseSharing(t *testing.T) {
	run := func(protocol cvm.Protocol) (int64, cvm.Time) {
		cfg := cvm.DefaultConfig(8, 2)
		cfg.Protocol = protocol
		st, err := RunConfig("ocean", SizeTest, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st.Net.TotalBytes(), st.Wall
	}
	lrcBytes, lrcWall := run(cvm.ProtocolLRC)
	swBytes, swWall := run(cvm.ProtocolSW)
	if swBytes <= 2*lrcBytes {
		t.Errorf("single-writer bytes %d not ≫ multi-writer %d on Ocean", swBytes, lrcBytes)
	}
	if swWall <= 2*lrcWall {
		t.Errorf("single-writer wall %v not ≫ multi-writer %v on Ocean", swWall, lrcWall)
	}
}
