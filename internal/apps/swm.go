package apps

import (
	"cvm"
)

// SWM is the SPEC SWM750 shallow-water benchmark: a two-dimensional
// finite-difference stencil over several state grids, barrier-only, with
// the SUIF fork-join runtime overhead the paper observed as increased user
// time. Rows are stored contiguously (un-padded), so neighbouring
// partitions share pages — the source of the Block-Same-Page counts the
// paper reports for SWM750.
type SWM struct {
	tolerance
	n     int // grid dimension (paper: 750)
	iters int

	u, v, p, unew, vnew, pnew cvm.F64Matrix

	checksum float64
}

func init() {
	register("swm750", func(size Size) App { return NewSWM(size) })
}

// NewSWM builds the SWM750 instance for an input scale.
func NewSWM(size Size) *SWM {
	switch size {
	case SizeTest:
		return &SWM{n: 48, iters: 2}
	case SizePaper:
		return &SWM{n: 750, iters: 8}
	default:
		return &SWM{n: 192, iters: 4}
	}
}

// Name implements App.
func (s *SWM) Name() string { return "swm750" }

// SupportsThreads implements App.
func (s *SWM) SupportsThreads(int) bool { return true }

// Setup implements App.
func (s *SWM) Setup(c *cvm.Cluster) error {
	s.u = c.MustAllocF64Matrix("swm.u", s.n, s.n, false)
	s.v = c.MustAllocF64Matrix("swm.v", s.n, s.n, false)
	s.p = c.MustAllocF64Matrix("swm.p", s.n, s.n, false)
	s.unew = c.MustAllocF64Matrix("swm.unew", s.n, s.n, false)
	s.vnew = c.MustAllocF64Matrix("swm.vnew", s.n, s.n, false)
	s.pnew = c.MustAllocF64Matrix("swm.pnew", s.n, s.n, false)
	return nil
}

// Main implements App.
func (s *SWM) Main(w *cvm.Worker) {
	n := s.n
	if w.GlobalID() == 0 {
		r := lcg(11)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s.u.Set(w, i, j, r.next())
				s.v.Set(w, i, j, r.next())
				s.p.Set(w, i, j, 10+r.next())
			}
		}
	}
	w.Barrier(0)
	if w.GlobalID() == 0 {
		w.MarkSteadyState()
	}
	w.Barrier(1)

	lo, hi := chunkOf(n, w.Threads(), w.GlobalID())
	bar := 10
	const dt = 0.01

	cur := [3]cvm.F64Matrix{s.u, s.v, s.p}
	next := [3]cvm.F64Matrix{s.unew, s.vnew, s.pnew}

	for it := 0; it < s.iters; it++ {
		// SUIF fork-join runtime: per-iteration scheduling overhead
		// charged to every thread (the paper's extra user time).
		w.Compute(120 * cvm.Microsecond)

		u, v, p := cur[0], cur[1], cur[2]
		un, vn, pn := next[0], next[1], next[2]

		w.Phase(1)
		for i := lo; i < hi; i++ {
			im, ip := (i+n-1)%n, (i+1)%n
			for j := 0; j < n; j++ {
				jm, jp := (j+n-1)%n, (j+1)%n
				pc := p.Get(w, i, j)
				un.Set(w, i, j, u.Get(w, i, j)-dt*(p.Get(w, ip, j)-pc))
				vn.Set(w, i, j, v.Get(w, i, j)-dt*(p.Get(w, i, jp)-pc))
				div := u.Get(w, ip, j) - u.Get(w, im, j) +
					v.Get(w, i, jp) - v.Get(w, i, jm)
				pn.Set(w, i, j, pc-0.5*dt*div)
			}
		}
		w.Barrier(bar)
		bar++

		cur, next = next, cur
	}

	if w.GlobalID() == 0 {
		w.Phase(2)
		sum := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j += 7 {
				sum += cur[2].Get(w, i, j)
			}
		}
		s.checksum = sum
	}
	w.Barrier(9999)
}

// Check implements App.
func (s *SWM) Check() error {
	return s.checkClose("swm750", s.checksum, s.reference())
}

func (s *SWM) reference() float64 {
	n := s.n
	alloc := func() [][]float64 {
		g := make([][]float64, n)
		for i := range g {
			g[i] = make([]float64, n)
		}
		return g
	}
	u, v, p := alloc(), alloc(), alloc()
	un, vn, pn := alloc(), alloc(), alloc()
	r := lcg(11)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			u[i][j] = r.next()
			v[i][j] = r.next()
			p[i][j] = 10 + r.next()
		}
	}
	const dt = 0.01
	for it := 0; it < s.iters; it++ {
		for i := 0; i < n; i++ {
			im, ip := (i+n-1)%n, (i+1)%n
			for j := 0; j < n; j++ {
				jm, jp := (j+n-1)%n, (j+1)%n
				pc := p[i][j]
				un[i][j] = u[i][j] - dt*(p[ip][j]-pc)
				vn[i][j] = v[i][j] - dt*(p[i][jp]-pc)
				div := u[ip][j] - u[im][j] + v[i][jp] - v[i][jm]
				pn[i][j] = pc - 0.5*dt*div
			}
		}
		u, un = un, u
		v, vn = vn, v
		p, pn = pn, p
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j += 7 {
			sum += p[i][j]
		}
	}
	return sum
}
