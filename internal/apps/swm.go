package apps

import (
	"cvm"
)

// SWM is the SPEC SWM750 shallow-water benchmark: a two-dimensional
// finite-difference stencil over several state grids, barrier-only, with
// the SUIF fork-join runtime overhead the paper observed as increased user
// time. Rows are stored contiguously (un-padded), so neighbouring
// partitions share pages — the source of the Block-Same-Page counts the
// paper reports for SWM750.
type SWM struct {
	tolerance
	n     int // grid dimension (paper: 750)
	iters int

	u, v, p, unew, vnew, pnew cvm.F64Matrix

	checksum float64
}

func init() {
	register("swm750", func(size Size) App { return NewSWM(size) })
}

// NewSWM builds the SWM750 instance for an input scale.
func NewSWM(size Size) *SWM {
	switch size {
	case SizeTest:
		return &SWM{n: 48, iters: 2}
	case SizePaper:
		return &SWM{n: 750, iters: 8}
	default:
		return &SWM{n: 192, iters: 4}
	}
}

// Name implements App.
func (s *SWM) Name() string { return "swm750" }

// SupportsThreads implements App.
func (s *SWM) SupportsThreads(int) bool { return true }

// Setup implements App.
func (s *SWM) Setup(c cvm.Allocator) error {
	s.u = cvm.MustAllocF64Matrix(c, "swm.u", s.n, s.n, false)
	s.v = cvm.MustAllocF64Matrix(c, "swm.v", s.n, s.n, false)
	s.p = cvm.MustAllocF64Matrix(c, "swm.p", s.n, s.n, false)
	s.unew = cvm.MustAllocF64Matrix(c, "swm.unew", s.n, s.n, false)
	s.vnew = cvm.MustAllocF64Matrix(c, "swm.vnew", s.n, s.n, false)
	s.pnew = cvm.MustAllocF64Matrix(c, "swm.pnew", s.n, s.n, false)
	return nil
}

// Main implements App.
func (s *SWM) Main(w cvm.Worker) {
	n := s.n
	if w.GlobalID() == 0 {
		r := lcg(11)
		ur := make([]float64, n)
		vr := make([]float64, n)
		pr := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ur[j] = r.next()
				vr[j] = r.next()
				pr[j] = 10 + r.next()
			}
			s.u.SetRow(w, i, ur)
			s.v.SetRow(w, i, vr)
			s.p.SetRow(w, i, pr)
		}
	}
	w.Barrier(0)
	if w.GlobalID() == 0 {
		w.MarkSteadyState()
	}
	w.Barrier(1)

	lo, hi := chunkOf(n, w.Threads(), w.GlobalID())
	bar := 10
	const dt = 0.01

	cur := [3]cvm.F64Matrix{s.u, s.v, s.p}
	next := [3]cvm.F64Matrix{s.unew, s.vnew, s.pnew}

	// Per-row span buffers: the stencil reads six source rows (u at i-1,
	// i, i+1; v at i; p at i, i+1) and writes three destination rows, all
	// contiguous — one access check per page instead of per element. The
	// j±1 neighbours wrap within the buffered row, so no extra reads.
	uim := make([]float64, n)
	uic := make([]float64, n)
	uip := make([]float64, n)
	vic := make([]float64, n)
	pic := make([]float64, n)
	pip := make([]float64, n)
	unr := make([]float64, n)
	vnr := make([]float64, n)
	pnr := make([]float64, n)

	for it := 0; it < s.iters; it++ {
		// SUIF fork-join runtime: per-iteration scheduling overhead
		// charged to every thread (the paper's extra user time).
		w.Compute(120 * cvm.Microsecond)

		u, v, p := cur[0], cur[1], cur[2]
		un, vn, pn := next[0], next[1], next[2]

		w.Phase(1)
		for i := lo; i < hi; i++ {
			im, ip := (i+n-1)%n, (i+1)%n
			u.Row(w, im, uim)
			u.Row(w, i, uic)
			u.Row(w, ip, uip)
			v.Row(w, i, vic)
			p.Row(w, i, pic)
			p.Row(w, ip, pip)
			for j := 0; j < n; j++ {
				jm, jp := (j+n-1)%n, (j+1)%n
				pc := pic[j]
				unr[j] = uic[j] - dt*(pip[j]-pc)
				vnr[j] = vic[j] - dt*(pic[jp]-pc)
				div := uip[j] - uim[j] + vic[jp] - vic[jm]
				pnr[j] = pc - 0.5*dt*div
			}
			un.SetRow(w, i, unr)
			vn.SetRow(w, i, vnr)
			pn.SetRow(w, i, pnr)
		}
		w.Barrier(bar)
		bar++

		cur, next = next, cur
	}

	if w.GlobalID() == 0 {
		w.Phase(2)
		sum := 0.0
		for i := 0; i < n; i++ {
			cur[2].Row(w, i, pic)
			for j := 0; j < n; j += 7 {
				sum += pic[j]
			}
		}
		s.checksum = sum
	}
	w.Barrier(9999)
}

// Check implements App.
// Checksum returns the computed field checksum.
func (s *SWM) Checksum() float64 { return s.checksum }

func (s *SWM) Check() error {
	return s.checkClose("swm750", s.checksum, s.reference())
}

func (s *SWM) reference() float64 {
	n := s.n
	alloc := func() [][]float64 {
		g := make([][]float64, n)
		for i := range g {
			g[i] = make([]float64, n)
		}
		return g
	}
	u, v, p := alloc(), alloc(), alloc()
	un, vn, pn := alloc(), alloc(), alloc()
	r := lcg(11)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			u[i][j] = r.next()
			v[i][j] = r.next()
			p[i][j] = 10 + r.next()
		}
	}
	const dt = 0.01
	for it := 0; it < s.iters; it++ {
		for i := 0; i < n; i++ {
			im, ip := (i+n-1)%n, (i+1)%n
			for j := 0; j < n; j++ {
				jm, jp := (j+n-1)%n, (j+1)%n
				pc := p[i][j]
				un[i][j] = u[i][j] - dt*(p[ip][j]-pc)
				vn[i][j] = v[i][j] - dt*(p[i][jp]-pc)
				div := u[ip][j] - u[im][j] + v[i][jp] - v[i][jm]
				pn[i][j] = pc - 0.5*dt*div
			}
		}
		u, un = un, u
		v, vn = vn, v
		p, pn = pn, p
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j += 7 {
			sum += p[i][j]
		}
	}
	return sum
}
