package apps

import (
	"fmt"

	"cvm"
)

// SOR is red-black successive over-relaxation with nearest-neighbour
// communication, the paper's simplest application: barrier-only, near
// linear speedup, almost no remote latency to hide. Rows are sized to
// whole pages so — as in the paper — no page is shared by both a local
// thread and a remote node, and local threads never block on the same
// remote request after initialization.
type SOR struct {
	tolerance
	rows, cols, iters int

	grid     cvm.F64Matrix
	checksum float64
}

func init() {
	register("sor", func(size Size) App { return NewSOR(size) })
}

// NewSOR builds the SOR instance for an input scale. The paper's input is
// 2048×2048.
func NewSOR(size Size) *SOR {
	switch size {
	case SizeTest:
		return &SOR{rows: 18, cols: 1024, iters: 2}
	case SizePaper:
		return &SOR{rows: 2048, cols: 2048, iters: 10}
	default:
		return &SOR{rows: 66, cols: 1024, iters: 4}
	}
}

// Name implements App.
func (s *SOR) Name() string { return "sor" }

// SupportsThreads implements App.
func (s *SOR) SupportsThreads(int) bool { return true }

// Setup implements App.
func (s *SOR) Setup(c cvm.Allocator) error {
	if s.rows < 3 || s.cols < 3 {
		return fmt.Errorf("sor: grid %dx%d too small", s.rows, s.cols)
	}
	s.grid = cvm.MustAllocF64Matrix(c, "sor.grid", s.rows, s.cols, true)
	return nil
}

// Main implements App.
func (s *SOR) Main(w cvm.Worker) {
	g := s.grid
	if w.GlobalID() == 0 {
		r := lcg(1)
		row := make([]float64, s.cols)
		for i := 0; i < s.rows; i++ {
			for j := 0; j < s.cols; j++ {
				row[j] = sorInit(&r, i, j, s.rows, s.cols)
			}
			g.SetRow(w, i, row)
		}
	}
	w.Barrier(0)
	if w.GlobalID() == 0 {
		w.MarkSteadyState()
	}
	w.Barrier(1)

	lo, hi := chunkOf(s.rows-2, w.Threads(), w.GlobalID())
	lo, hi = lo+1, hi+1 // interior rows only

	// Rolling row buffers: each sweep step reads one new row as a span
	// and writes the updated row back as a span, so the software access
	// check runs per page instead of per element. Red-black parity makes
	// this exact: every neighbour a relaxation reads is the opposite
	// colour, so nothing read here is written by any thread this phase,
	// and rewriting a row's untouched (opposite-colour and boundary)
	// cells stores back the bytes already there — no diff runs result.
	top := make([]float64, s.cols)
	cur := make([]float64, s.cols)
	bot := make([]float64, s.cols)

	for it := 0; it < s.iters; it++ {
		for color := 0; color < 2; color++ {
			w.Phase(1 + color)
			if hi > lo {
				g.Row(w, lo-1, top)
				g.Row(w, lo, cur)
			}
			for i := lo; i < hi; i++ {
				g.Row(w, i+1, bot)
				for j := 1 + (i+color)%2; j < s.cols-1; j += 2 {
					cur[j] = 0.25 * (top[j] + bot[j] + cur[j-1] + cur[j+1])
				}
				g.SetRow(w, i, cur)
				top, cur, bot = cur, bot, top
			}
			w.Barrier(10 + 2*it + color)
		}
	}

	if w.GlobalID() == 0 {
		w.Phase(3)
		sum := 0.0
		for i := 0; i < s.rows; i++ {
			g.Row(w, i, cur)
			for j := 0; j < s.cols; j++ {
				sum += cur[j]
			}
		}
		s.checksum = sum
	}
	w.Barrier(9999)
}

// Check implements App.
// Checksum returns the computed grid checksum.
func (s *SOR) Checksum() float64 { return s.checksum }

func (s *SOR) Check() error {
	return s.checkClose("sor", s.checksum, s.reference())
}

// reference runs the identical relaxation sequentially.
func (s *SOR) reference() float64 {
	grid := make([][]float64, s.rows)
	r := lcg(1)
	for i := range grid {
		grid[i] = make([]float64, s.cols)
		for j := range grid[i] {
			grid[i][j] = sorInit(&r, i, j, s.rows, s.cols)
		}
	}
	for it := 0; it < s.iters; it++ {
		for color := 0; color < 2; color++ {
			for i := 1; i < s.rows-1; i++ {
				for j := 1 + (i+color)%2; j < s.cols-1; j += 2 {
					grid[i][j] = 0.25 * (grid[i-1][j] + grid[i+1][j] +
						grid[i][j-1] + grid[i][j+1])
				}
			}
		}
	}
	sum := 0.0
	for i := range grid {
		for j := range grid[i] {
			sum += grid[i][j]
		}
	}
	return sum
}

// sorInit gives boundary cells a fixed temperature and interior cells a
// deterministic pseudo-random value.
func sorInit(r *lcg, i, j, rows, cols int) float64 {
	v := r.next()
	if i == 0 || j == 0 || i == rows-1 || j == cols-1 {
		return 1
	}
	return v
}
