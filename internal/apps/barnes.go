package apps

import (
	"math"
	"sort"

	"cvm"
)

// Barnes is the paper's modified gravitational N-body simulation: unlike
// SPLASH-2 Barnes, it uses only barrier synchronization — shared updates
// that SPLASH guards with locks are partitioned among the threads. The
// hierarchical tree is approximated by a uniform grid of cells whose
// summaries (total mass and centre of mass) stand in for internal tree
// nodes: every thread reads all summaries each iteration (the all-to-all
// read sharing that makes Barnes fault-bound) plus the exact bodies of its
// own cells.
type Barnes struct {
	tolerance
	bodies int
	grid   int // grid dimension; cells = grid²
	iters  int

	pos  cvm.F64Matrix // bodies × (x, y)
	vel  cvm.F64Matrix // bodies × (vx, vy)
	mass cvm.F64Array
	cell cvm.F64Matrix // cells × (mass, cx, cy)

	cellOf []int // body → cell, fixed at init (bodies sorted by cell)
	starts []int // cell → first body index

	// Deterministic initial state shared by the DSM run and the
	// sequential reference.
	initX, initY, initM []float64

	checksum float64
}

func init() {
	register("barnes", func(size Size) App { return NewBarnes(size) })
}

// NewBarnes builds the Barnes instance for an input scale (paper: 10240
// particles).
func NewBarnes(size Size) *Barnes {
	switch size {
	case SizeTest:
		return &Barnes{bodies: 192, grid: 4, iters: 2}
	case SizePaper:
		return &Barnes{bodies: 10240, grid: 16, iters: 4}
	default:
		return &Barnes{bodies: 1024, grid: 8, iters: 3}
	}
}

// Name implements App.
func (b *Barnes) Name() string { return "barnes" }

// SupportsThreads implements App.
func (b *Barnes) SupportsThreads(int) bool { return true }

// Setup implements App.
func (b *Barnes) Setup(c cvm.Allocator) error {
	cells := b.grid * b.grid
	b.pos = cvm.MustAllocF64Matrix(c, "barnes.pos", b.bodies, 2, false)
	b.vel = cvm.MustAllocF64Matrix(c, "barnes.vel", b.bodies, 2, false)
	b.mass = cvm.MustAllocF64(c, "barnes.mass", b.bodies)
	b.cell = cvm.MustAllocF64Matrix(c, "barnes.cell", cells, 3, false)

	// Deterministic placement, bodies sorted by cell so each cell's
	// bodies are a contiguous range owned by one thread.
	type placed struct {
		x, y, m float64
		cell    int
	}
	r := lcg(23)
	bodies := make([]placed, b.bodies)
	for i := range bodies {
		x, y := r.next(), r.next()
		cx := int(x * float64(b.grid))
		cy := int(y * float64(b.grid))
		bodies[i] = placed{x: x, y: y, m: 0.5 + r.next(), cell: cx*b.grid + cy}
	}
	sort.SliceStable(bodies, func(i, j int) bool { return bodies[i].cell < bodies[j].cell })

	b.cellOf = make([]int, b.bodies)
	b.starts = make([]int, cells+1)
	b.initX = make([]float64, b.bodies)
	b.initY = make([]float64, b.bodies)
	b.initM = make([]float64, b.bodies)
	for i, bd := range bodies {
		b.cellOf[i] = bd.cell
		b.initX[i], b.initY[i], b.initM[i] = bd.x, bd.y, bd.m
	}
	for c := 1; c <= cells; c++ {
		b.starts[c] = sort.SearchInts(b.cellOf, c)
	}
	return nil
}

// Main implements App.
func (b *Barnes) Main(w cvm.Worker) {
	if w.GlobalID() == 0 {
		var xy [2]float64
		for i := 0; i < b.bodies; i++ {
			xy[0], xy[1] = b.initX[i], b.initY[i]
			b.pos.SetRow(w, i, xy[:])
		}
		b.mass.SetRange(w, 0, b.initM)
	}
	w.Barrier(0)
	if w.GlobalID() == 0 {
		w.MarkSteadyState()
	}
	w.Barrier(1)

	cells := b.grid * b.grid
	bLo, bHi := chunkOf(b.bodies, w.Threads(), w.GlobalID())
	cLo, cHi := chunkOf(cells, w.Threads(), w.GlobalID())
	bar := 10

	// Span scratch: each cell's bodies are a contiguous block of the pos
	// matrix and mass array, the cell-summary matrix is one contiguous
	// region every thread re-reads per body, and the owned body range is a
	// contiguous block of pos and vel — all page-granular spans.
	maxPer := 0
	for c := 0; c < cells; c++ {
		if n := b.starts[c+1] - b.starts[c]; n > maxPer {
			maxPer = n
		}
	}
	mbuf := make([]float64, maxPer)
	pbuf := make([]float64, 2*maxPer)
	cellBuf := make([]float64, 3*cells)
	posBlk := make([]float64, 2*(bHi-bLo))
	velBlk := make([]float64, 2*(bHi-bLo))
	var c3 [3]float64
	var xy, v2 [2]float64

	for it := 0; it < b.iters; it++ {
		// Build phase: summarize owned cells (partitioned writes).
		w.Phase(1)
		for c := cLo; c < cHi; c++ {
			cnt := b.starts[c+1] - b.starts[c]
			var m, mx, my float64
			if cnt > 0 {
				b.mass.GetRange(w, b.starts[c], mbuf[:cnt])
				w.ReadRangeF64(b.pos.At(b.starts[c], 0), pbuf[:2*cnt])
				for k := 0; k < cnt; k++ {
					bm := mbuf[k]
					m += bm
					mx += bm * pbuf[2*k]
					my += bm * pbuf[2*k+1]
				}
			}
			c3[0] = m
			if m > 0 {
				c3[1], c3[2] = mx/m, my/m
			} else {
				c3[1], c3[2] = 0, 0
			}
			b.cell.SetRow(w, c, c3[:])
		}
		w.Barrier(bar)
		bar++

		// Force phase: every thread reads every cell summary plus the
		// exact bodies of its own cell, then integrates its bodies. The
		// summary matrix is re-read per body — as one whole-matrix span,
		// matching the scalar all-to-all read sharing per page.
		w.Phase(2)
		for i := bLo; i < bHi; i++ {
			b.pos.Row(w, i, xy[:])
			xi, yi := xy[0], xy[1]
			var fx, fy float64
			my := b.cellOf[i]
			w.ReadRangeF64(b.cell.At(0, 0), cellBuf)
			for c := 0; c < cells; c++ {
				if c == my {
					continue
				}
				m := cellBuf[3*c]
				if m == 0 {
					continue
				}
				dx := cellBuf[3*c+1] - xi
				dy := cellBuf[3*c+2] - yi
				inv := 1 / math.Sqrt(dx*dx+dy*dy+1e-3)
				f := m * inv * inv * inv
				fx += f * dx
				fy += f * dy
			}
			cnt := b.starts[my+1] - b.starts[my]
			b.mass.GetRange(w, b.starts[my], mbuf[:cnt])
			w.ReadRangeF64(b.pos.At(b.starts[my], 0), pbuf[:2*cnt])
			for k := 0; k < cnt; k++ {
				if b.starts[my]+k == i {
					continue
				}
				dx := pbuf[2*k] - xi
				dy := pbuf[2*k+1] - yi
				inv := 1 / math.Sqrt(dx*dx+dy*dy+1e-3)
				f := mbuf[k] * inv * inv * inv
				fx += f * dx
				fy += f * dy
			}
			w.Compute(cvm.Time(cells+cnt) * 30)
			b.vel.Row(w, i, v2[:])
			v2[0] += 1e-5 * fx
			v2[1] += 1e-5 * fy
			b.vel.SetRow(w, i, v2[:])
		}
		w.Barrier(bar)
		bar++

		// Integrate positions of owned bodies: the owned range is one
		// contiguous block of each matrix, so the whole update is two
		// read spans and one write span.
		w.Phase(3)
		if bHi > bLo {
			w.ReadRangeF64(b.pos.At(bLo, 0), posBlk)
			w.ReadRangeF64(b.vel.At(bLo, 0), velBlk)
			for k := range posBlk {
				posBlk[k] += velBlk[k]
			}
			w.WriteRangeF64(b.pos.At(bLo, 0), posBlk)
		}
		w.Barrier(bar)
		bar++
	}

	if w.GlobalID() == 0 {
		sum := 0.0
		for i := 0; i < b.bodies; i++ {
			b.pos.Row(w, i, xy[:])
			sum += xy[0] + xy[1]
		}
		b.checksum = sum
	}
	w.Barrier(9999)
}

// Check implements App.
// Checksum returns the computed mass-weighted position checksum.
func (b *Barnes) Checksum() float64 { return b.checksum }

func (b *Barnes) Check() error {
	return b.checkClose("barnes", b.checksum, b.reference())
}

func (b *Barnes) reference() float64 {
	n := b.bodies
	cells := b.grid * b.grid
	x := append([]float64(nil), b.initX...)
	y := append([]float64(nil), b.initY...)
	vx := make([]float64, n)
	vy := make([]float64, n)
	cm := make([]float64, cells)
	cx := make([]float64, cells)
	cy := make([]float64, cells)
	for it := 0; it < b.iters; it++ {
		for c := 0; c < cells; c++ {
			var m, mx, my float64
			for i := b.starts[c]; i < b.starts[c+1]; i++ {
				m += b.initM[i]
				mx += b.initM[i] * x[i]
				my += b.initM[i] * y[i]
			}
			cm[c] = m
			if m > 0 {
				cx[c], cy[c] = mx/m, my/m
			} else {
				cx[c], cy[c] = 0, 0
			}
		}
		for i := 0; i < n; i++ {
			var fx, fy float64
			my := b.cellOf[i]
			for c := 0; c < cells; c++ {
				if c == my || cm[c] == 0 {
					continue
				}
				dx := cx[c] - x[i]
				dy := cy[c] - y[i]
				inv := 1 / math.Sqrt(dx*dx+dy*dy+1e-3)
				f := cm[c] * inv * inv * inv
				fx += f * dx
				fy += f * dy
			}
			for j := b.starts[my]; j < b.starts[my+1]; j++ {
				if j == i {
					continue
				}
				dx := x[j] - x[i]
				dy := y[j] - y[i]
				inv := 1 / math.Sqrt(dx*dx+dy*dy+1e-3)
				f := b.initM[j] * inv * inv * inv
				fx += f * dx
				fy += f * dy
			}
			vx[i] += 1e-5 * fx
			vy[i] += 1e-5 * fy
		}
		for i := 0; i < n; i++ {
			x[i] += vx[i]
			y[i] += vy[i]
		}
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += x[i] + y[i]
	}
	return sum
}
