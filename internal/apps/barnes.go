package apps

import (
	"math"
	"sort"

	"cvm"
)

// Barnes is the paper's modified gravitational N-body simulation: unlike
// SPLASH-2 Barnes, it uses only barrier synchronization — shared updates
// that SPLASH guards with locks are partitioned among the threads. The
// hierarchical tree is approximated by a uniform grid of cells whose
// summaries (total mass and centre of mass) stand in for internal tree
// nodes: every thread reads all summaries each iteration (the all-to-all
// read sharing that makes Barnes fault-bound) plus the exact bodies of its
// own cells.
type Barnes struct {
	tolerance
	bodies int
	grid   int // grid dimension; cells = grid²
	iters  int

	pos  cvm.F64Matrix // bodies × (x, y)
	vel  cvm.F64Matrix // bodies × (vx, vy)
	mass cvm.F64Array
	cell cvm.F64Matrix // cells × (mass, cx, cy)

	cellOf []int // body → cell, fixed at init (bodies sorted by cell)
	starts []int // cell → first body index

	// Deterministic initial state shared by the DSM run and the
	// sequential reference.
	initX, initY, initM []float64

	checksum float64
}

func init() {
	register("barnes", func(size Size) App { return NewBarnes(size) })
}

// NewBarnes builds the Barnes instance for an input scale (paper: 10240
// particles).
func NewBarnes(size Size) *Barnes {
	switch size {
	case SizeTest:
		return &Barnes{bodies: 192, grid: 4, iters: 2}
	case SizePaper:
		return &Barnes{bodies: 10240, grid: 16, iters: 4}
	default:
		return &Barnes{bodies: 1024, grid: 8, iters: 3}
	}
}

// Name implements App.
func (b *Barnes) Name() string { return "barnes" }

// SupportsThreads implements App.
func (b *Barnes) SupportsThreads(int) bool { return true }

// Setup implements App.
func (b *Barnes) Setup(c *cvm.Cluster) error {
	cells := b.grid * b.grid
	b.pos = c.MustAllocF64Matrix("barnes.pos", b.bodies, 2, false)
	b.vel = c.MustAllocF64Matrix("barnes.vel", b.bodies, 2, false)
	b.mass = c.MustAllocF64("barnes.mass", b.bodies)
	b.cell = c.MustAllocF64Matrix("barnes.cell", cells, 3, false)

	// Deterministic placement, bodies sorted by cell so each cell's
	// bodies are a contiguous range owned by one thread.
	type placed struct {
		x, y, m float64
		cell    int
	}
	r := lcg(23)
	bodies := make([]placed, b.bodies)
	for i := range bodies {
		x, y := r.next(), r.next()
		cx := int(x * float64(b.grid))
		cy := int(y * float64(b.grid))
		bodies[i] = placed{x: x, y: y, m: 0.5 + r.next(), cell: cx*b.grid + cy}
	}
	sort.SliceStable(bodies, func(i, j int) bool { return bodies[i].cell < bodies[j].cell })

	b.cellOf = make([]int, b.bodies)
	b.starts = make([]int, cells+1)
	b.initX = make([]float64, b.bodies)
	b.initY = make([]float64, b.bodies)
	b.initM = make([]float64, b.bodies)
	for i, bd := range bodies {
		b.cellOf[i] = bd.cell
		b.initX[i], b.initY[i], b.initM[i] = bd.x, bd.y, bd.m
	}
	for c := 1; c <= cells; c++ {
		b.starts[c] = sort.SearchInts(b.cellOf, c)
	}
	return nil
}

// Main implements App.
func (b *Barnes) Main(w *cvm.Worker) {
	if w.GlobalID() == 0 {
		for i := 0; i < b.bodies; i++ {
			b.pos.Set(w, i, 0, b.initX[i])
			b.pos.Set(w, i, 1, b.initY[i])
			b.mass.Set(w, i, b.initM[i])
		}
	}
	w.Barrier(0)
	if w.GlobalID() == 0 {
		w.MarkSteadyState()
	}
	w.Barrier(1)

	cells := b.grid * b.grid
	bLo, bHi := chunkOf(b.bodies, w.Threads(), w.GlobalID())
	cLo, cHi := chunkOf(cells, w.Threads(), w.GlobalID())
	bar := 10

	for it := 0; it < b.iters; it++ {
		// Build phase: summarize owned cells (partitioned writes).
		w.Phase(1)
		for c := cLo; c < cHi; c++ {
			var m, mx, my float64
			for i := b.starts[c]; i < b.starts[c+1]; i++ {
				bm := b.mass.Get(w, i)
				m += bm
				mx += bm * b.pos.Get(w, i, 0)
				my += bm * b.pos.Get(w, i, 1)
			}
			b.cell.Set(w, c, 0, m)
			if m > 0 {
				b.cell.Set(w, c, 1, mx/m)
				b.cell.Set(w, c, 2, my/m)
			} else {
				b.cell.Set(w, c, 1, 0)
				b.cell.Set(w, c, 2, 0)
			}
		}
		w.Barrier(bar)
		bar++

		// Force phase: every thread reads every cell summary plus the
		// exact bodies of its own cell, then integrates its bodies.
		w.Phase(2)
		for i := bLo; i < bHi; i++ {
			xi, yi := b.pos.Get(w, i, 0), b.pos.Get(w, i, 1)
			var fx, fy float64
			my := b.cellOf[i]
			for c := 0; c < cells; c++ {
				if c == my {
					continue
				}
				m := b.cell.Get(w, c, 0)
				if m == 0 {
					continue
				}
				dx := b.cell.Get(w, c, 1) - xi
				dy := b.cell.Get(w, c, 2) - yi
				inv := 1 / math.Sqrt(dx*dx+dy*dy+1e-3)
				f := m * inv * inv * inv
				fx += f * dx
				fy += f * dy
			}
			for j := b.starts[my]; j < b.starts[my+1]; j++ {
				if j == i {
					continue
				}
				dx := b.pos.Get(w, j, 0) - xi
				dy := b.pos.Get(w, j, 1) - yi
				inv := 1 / math.Sqrt(dx*dx+dy*dy+1e-3)
				f := b.mass.Get(w, j) * inv * inv * inv
				fx += f * dx
				fy += f * dy
			}
			w.Compute(cvm.Time(cells+b.starts[my+1]-b.starts[my]) * 30)
			b.vel.Set(w, i, 0, b.vel.Get(w, i, 0)+1e-5*fx)
			b.vel.Set(w, i, 1, b.vel.Get(w, i, 1)+1e-5*fy)
		}
		w.Barrier(bar)
		bar++

		// Integrate positions of owned bodies.
		w.Phase(3)
		for i := bLo; i < bHi; i++ {
			b.pos.Set(w, i, 0, b.pos.Get(w, i, 0)+b.vel.Get(w, i, 0))
			b.pos.Set(w, i, 1, b.pos.Get(w, i, 1)+b.vel.Get(w, i, 1))
		}
		w.Barrier(bar)
		bar++
	}

	if w.GlobalID() == 0 {
		sum := 0.0
		for i := 0; i < b.bodies; i++ {
			sum += b.pos.Get(w, i, 0) + b.pos.Get(w, i, 1)
		}
		b.checksum = sum
	}
	w.Barrier(9999)
}

// Check implements App.
func (b *Barnes) Check() error {
	return b.checkClose("barnes", b.checksum, b.reference())
}

func (b *Barnes) reference() float64 {
	n := b.bodies
	cells := b.grid * b.grid
	x := append([]float64(nil), b.initX...)
	y := append([]float64(nil), b.initY...)
	vx := make([]float64, n)
	vy := make([]float64, n)
	cm := make([]float64, cells)
	cx := make([]float64, cells)
	cy := make([]float64, cells)
	for it := 0; it < b.iters; it++ {
		for c := 0; c < cells; c++ {
			var m, mx, my float64
			for i := b.starts[c]; i < b.starts[c+1]; i++ {
				m += b.initM[i]
				mx += b.initM[i] * x[i]
				my += b.initM[i] * y[i]
			}
			cm[c] = m
			if m > 0 {
				cx[c], cy[c] = mx/m, my/m
			} else {
				cx[c], cy[c] = 0, 0
			}
		}
		for i := 0; i < n; i++ {
			var fx, fy float64
			my := b.cellOf[i]
			for c := 0; c < cells; c++ {
				if c == my || cm[c] == 0 {
					continue
				}
				dx := cx[c] - x[i]
				dy := cy[c] - y[i]
				inv := 1 / math.Sqrt(dx*dx+dy*dy+1e-3)
				f := cm[c] * inv * inv * inv
				fx += f * dx
				fy += f * dy
			}
			for j := b.starts[my]; j < b.starts[my+1]; j++ {
				if j == i {
					continue
				}
				dx := x[j] - x[i]
				dy := y[j] - y[i]
				inv := 1 / math.Sqrt(dx*dx+dy*dy+1e-3)
				f := b.initM[j] * inv * inv * inv
				fx += f * dx
				fy += f * dy
			}
			vx[i] += 1e-5 * fx
			vy[i] += 1e-5 * fy
		}
		for i := 0; i < n; i++ {
			x[i] += vx[i]
			y[i] += vy[i]
		}
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += x[i] + y[i]
	}
	return sum
}
