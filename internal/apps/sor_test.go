package apps

import "testing"

func TestSORCorrectAcrossShapes(t *testing.T) {
	shapes := []struct{ nodes, threads int }{
		{1, 1}, {2, 1}, {4, 1}, {2, 2}, {4, 2}, {2, 3}, {2, 4},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(shapeName(sh.nodes, sh.threads), func(t *testing.T) {
			if _, err := Run("sor", SizeTest, sh.nodes, sh.threads); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSORNoLockTraffic(t *testing.T) {
	st, err := Run("sor", SizeTest, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Net.Msgs[1] != 0 { // ClassLock
		t.Errorf("SOR sent %d lock messages, want 0 (barrier-only)", st.Net.Msgs[1])
	}
	if st.Total.RemoteLocks != 0 {
		t.Errorf("SOR remote locks = %d, want 0", st.Total.RemoteLocks)
	}
}

func TestSORNearestNeighbourBlockSamePage(t *testing.T) {
	// With page-aligned rows, local threads should (almost) never block
	// on the same remote page — the paper's SOR observation.
	st, err := Run("sor", SizeSmall, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total.BlockSamePage > st.Total.RemoteFaults/10 {
		t.Errorf("BlockSamePage = %d of %d remote faults, want rare",
			st.Total.BlockSamePage, st.Total.RemoteFaults)
	}
}

func shapeName(nodes, threads int) string {
	return string(rune('0'+nodes)) + "x" + string(rune('0'+threads))
}
