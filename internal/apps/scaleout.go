package apps

import (
	"fmt"

	"cvm"
)

// Scaleout is the synthetic scaling workload behind BENCH_scaleout.json:
// a cluster-size stress that exercises every DSM primitive — remote read
// faults, write faults, lock grants with write notices, barriers and a
// reduction — over an address space far larger than any node's working
// set. Three shared regions:
//
//   - strip: one page per thread. Each epoch, thread t writes a small
//     cluster of counters into its own page, then (after a barrier)
//     reads its neighbour's page — one remote fault per thread per
//     epoch whenever the neighbour lives on another node.
//   - accum: striped lock-protected accumulators, several int64 slots
//     sharing pages, so concurrent critical sections produce
//     multi-writer pages and real diff merging.
//   - cold: a large allocated-but-never-touched region. It exists to
//     blow up the address space (at SizePaper, 1024 pages per thread:
//     a 1024-node run crosses a million pages) while the sparse page
//     directory keeps resident state proportional to the working set.
//
// All shared arithmetic is small-integer, so every sum is exact in
// float64 and the checksum is closed-form: Check needs no sequential
// grid, just the same arithmetic re-done locally. That also makes the
// checksum independent of lock-grant order — the chaos and
// transport-equivalence suites get an exact cross-backend oracle.
type Scaleout struct {
	tolerance
	epochs        int
	coldPerThread int // untouched pages per thread

	threads  int
	stripes  int
	pageSize int

	strip cvm.Addr
	accum cvm.I64Array
	cold  cvm.Addr

	checksum float64
}

func init() {
	register("scaleout", func(size Size) App { return NewScaleout(size) })
}

// NewScaleout builds the scaling workload for an input scale. The scale
// only changes epoch count and cold-region size; the working set per
// thread is constant by design.
func NewScaleout(size Size) *Scaleout {
	switch size {
	case SizeTest:
		return &Scaleout{epochs: 3, coldPerThread: 4}
	case SizePaper:
		return &Scaleout{epochs: 4, coldPerThread: 1024}
	default:
		return &Scaleout{epochs: 4, coldPerThread: 64}
	}
}

// Name implements App.
func (s *Scaleout) Name() string { return "scaleout" }

// SupportsThreads implements App.
func (s *Scaleout) SupportsThreads(int) bool { return true }

// scaleoutSentinel is the one value written into (and read back from)
// the cold region, proving the region is addressable without walking it.
const scaleoutSentinel = 104729

// Setup implements App.
func (s *Scaleout) Setup(c cvm.Allocator) error {
	s.threads = c.Nodes() * c.ThreadsPerNode()
	s.pageSize = c.PageSize()
	if s.threads < 1 {
		return fmt.Errorf("scaleout: no threads")
	}
	// Enough stripes that big clusters still contend, few enough that
	// slots share pages and the accumulator region stays hot.
	s.stripes = s.threads
	if s.stripes > 64 {
		s.stripes = 64
	}
	var err error
	if s.strip, err = c.Alloc("scaleout.strip", s.threads*s.pageSize); err != nil {
		return err
	}
	s.accum = cvm.MustAllocI64(c, "scaleout.accum", s.stripes)
	if s.cold, err = c.Alloc("scaleout.cold", s.threads*s.coldPerThread*s.pageSize); err != nil {
		return err
	}
	return nil
}

// stripVal is the counter thread t stores in its strip page at epoch e
// (word k of the 4-word cluster adds k).
func stripVal(t, e int) int64 { return int64(31*t + 7*e + 1) }

// accumVal is thread t's epoch-e contribution to its stripe accumulator.
func accumVal(t, e int) int64 { return int64(t + 3*e + 2) }

// Main implements App.
func (s *Scaleout) Main(w cvm.Worker) {
	t := w.GlobalID()
	if t == 0 {
		// Zero the accumulators and plant the cold-region sentinel; the
		// rest of the cold region is never touched by anyone.
		for i := 0; i < s.stripes; i++ {
			s.accum.Set(w, i, 0)
		}
		w.WriteI64(s.cold, scaleoutSentinel)
	}
	w.Barrier(0)
	if t == 0 {
		w.MarkSteadyState()
	}
	w.Barrier(1)

	myPage := s.strip + cvm.Addr(t*s.pageSize)
	nbPage := s.strip + cvm.Addr(((t+1)%s.threads)*s.pageSize)
	var priv int64
	for e := 0; e < s.epochs; e++ {
		// Write phase: a 4-word cluster at an epoch-dependent offset, so
		// the page's diff is a short run in a big page (the sparse wire
		// pattern the compression gate measures).
		w.Phase(1)
		off := cvm.Addr((e % 8) * 32)
		for k := 0; k < 4; k++ {
			w.WriteI64(myPage+off+cvm.Addr(k*8), stripVal(t, e)+int64(k))
		}
		w.Barrier(100 + 2*e)

		// Read phase: fetch the neighbour's fresh cluster (remote fault
		// when the neighbour is off-node) and fold it into private state.
		w.Phase(2)
		for k := 0; k < 4; k++ {
			priv += w.ReadI64(nbPage + off + cvm.Addr(k*8))
		}

		// Stripe update: a short lock-protected read-modify-write. The
		// stripe rotates with the epoch so lock tokens migrate.
		stripe := (t + e) % s.stripes
		w.Lock(10 + stripe)
		a := s.accum.At(stripe)
		w.WriteI64(a, w.ReadI64(a)+accumVal(t, e))
		w.Unlock(10 + stripe)
		w.Barrier(101 + 2*e)
	}

	// Every thread contributes its private sum through a reduction;
	// integer-valued float64 addition is exact, so the result is
	// identical in any combining order.
	total := w.ReduceF64(1, float64(priv), cvm.ReduceSum)

	if t == 0 {
		w.Phase(3)
		sum := int64(0)
		for i := 0; i < s.stripes; i++ {
			sum += s.accum.Get(w, i)
		}
		s.checksum = total + float64(sum) + float64(w.ReadI64(s.cold))
	}
	w.Barrier(9999)
}

// Checksum returns the computed checksum.
func (s *Scaleout) Checksum() float64 { return s.checksum }

// Check validates against the closed form.
func (s *Scaleout) Check() error {
	exp := int64(scaleoutSentinel)
	for e := 0; e < s.epochs; e++ {
		for t := 0; t < s.threads; t++ {
			// Neighbour reads cover every thread's cluster exactly once.
			exp += 4*stripVal(t, e) + 6
			exp += accumVal(t, e)
		}
	}
	return s.checkClose("scaleout", s.checksum, float64(exp))
}
