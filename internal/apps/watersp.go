package apps

import (
	"cvm"
)

// WaterSp is the spatial molecular dynamics simulation (SPLASH Water
// Spatial): a uniform 3-D grid of cells limits force computation to
// neighbouring cells. Each thread owns a contiguous range of cells and
// accumulates forces only into its own molecules (computing each pair from
// both sides), so locks are rare — one energy-lock episode per thread per
// iteration — and remote page faults on neighbour cells dominate, exactly
// the profile the paper reports (most of Water-Sp's speedup comes from
// fault time).
type WaterSp struct {
	tolerance
	side  int // cells per dimension; cells = side³
	perC  int // molecules per cell
	iters int

	// mol is the molecule record array: each molecule is molStride
	// float64s (position, velocity, and the predictor-corrector state the
	// SPLASH original keeps per atom), so the array spans many pages as
	// on the real system.
	mol  cvm.F64Matrix
	epot cvm.F64Array

	nodeEpot []float64
	nodeCnt  []int
	initPos  []float64

	// slot scatters molecule records across the shared array, modeling
	// the SPLASH original's linked-list layout: a cell's molecules span
	// many pages, so neighbour-cell reads fault broadly.
	slot []int

	checksum float64
}

func init() {
	register("watersp", func(size Size) App { return NewWaterSp(size) })
}

// NewWaterSp builds the Water-Sp instance for an input scale (paper: 4096
// molecules).
func NewWaterSp(size Size) *WaterSp {
	switch size {
	case SizeTest:
		return &WaterSp{side: 2, perC: 12, iters: 2}
	case SizePaper:
		return &WaterSp{side: 4, perC: 64, iters: 4}
	default:
		return &WaterSp{side: 4, perC: 32, iters: 3}
	}
}

// molStride is the per-molecule record width in float64s: 3 position, 3
// velocity, and 7 words of predictor-corrector state (touched but not
// read by the physics here).
const molStride = 13

// fPos/fVel index the position and velocity fields of a molecule record.
const (
	fPos = 0
	fVel = 3
	fAux = 6
)

// get and set access field f of molecule i through the scattered layout.
func (a *WaterSp) get(w cvm.Worker, i, f int) float64 {
	return a.mol.Get(w, a.slot[i], f)
}

func (a *WaterSp) set(w cvm.Worker, i, f int, v float64) {
	a.mol.Set(w, a.slot[i], f, v)
}

// getSpan and setSpan access the contiguous fields [f, f+len) of molecule
// i's record as one span: the records scatter across pages, but fields
// within a record are adjacent, so each record costs one access check.
func (a *WaterSp) getSpan(w cvm.Worker, i, f int, dst []float64) {
	a.mol.RowRange(w, a.slot[i], f, dst)
}

func (a *WaterSp) setSpan(w cvm.Worker, i, f int, src []float64) {
	a.mol.SetRowRange(w, a.slot[i], f, src)
}

// Name implements App.
func (a *WaterSp) Name() string { return "watersp" }

// SupportsThreads implements App.
func (a *WaterSp) SupportsThreads(int) bool { return true }

func (a *WaterSp) cells() int     { return a.side * a.side * a.side }
func (a *WaterSp) molecules() int { return a.cells() * a.perC }

// Setup implements App.
func (a *WaterSp) Setup(c cvm.Allocator) error {
	n := a.molecules()
	a.mol = cvm.MustAllocF64Matrix(c, "watersp.mol", n, molStride, false)
	a.epot = cvm.MustAllocF64(c, "watersp.epot", 1)

	a.nodeEpot = make([]float64, c.Nodes())
	a.nodeCnt = make([]int, c.Nodes())

	// Molecule i's record lives at shared slot a.slot[i], a deterministic
	// shuffle: the SPLASH original reaches molecules through per-cell
	// linked lists whose nodes scatter across the heap, and this layout
	// reproduces that page-locality profile. Positions stay within the
	// owning cell so the neighbour structure is static (no re-binning;
	// the paper's runs are short enough that SPLASH re-bins rarely).
	rs := lcg(97)
	a.slot = make([]int, n)
	for i := range a.slot {
		a.slot[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(rs.next() * float64(i+1))
		a.slot[i], a.slot[j] = a.slot[j], a.slot[i]
	}

	r := lcg(53)
	a.initPos = make([]float64, 3*n)
	for cell := 0; cell < a.cells(); cell++ {
		cx := cell / (a.side * a.side)
		cy := (cell / a.side) % a.side
		cz := cell % a.side
		for m := 0; m < a.perC; m++ {
			i := cell*a.perC + m
			a.initPos[3*i] = float64(cx) + r.next()
			a.initPos[3*i+1] = float64(cy) + r.next()
			a.initPos[3*i+2] = float64(cz) + r.next()
		}
	}
	return nil
}

// neighborCells returns cell and its neighbours under periodic boundary
// conditions (every cell sees a full 27-cell neighbourhood, so per-cell
// work is uniform), deduplicated and ascending.
func (a *WaterSp) neighborCells(cell int) []int {
	s := a.side
	cx := cell / (s * s)
	cy := (cell / s) % s
	cz := cell % s
	seen := make(map[int]bool, 27)
	var out []int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				x := (cx + dx + s) % s
				y := (cy + dy + s) % s
				z := (cz + dz + s) % s
				c := (x*s+y)*s + z
				if !seen[c] {
					seen[c] = true
					out = append(out, c)
				}
			}
		}
	}
	sortInts(out)
	return out
}

// Main implements App.
func (a *WaterSp) Main(w cvm.Worker) {
	n := a.molecules()
	if w.GlobalID() == 0 {
		rec := make([]float64, molStride)
		for d := fAux; d < molStride; d++ {
			rec[d] = 1
		}
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				rec[fPos+d] = a.initPos[3*i+d]
				rec[fVel+d] = 0
			}
			a.setSpan(w, i, 0, rec)
		}
		a.epot.Set(w, 0, 0)
	}
	w.Barrier(0)
	if w.GlobalID() == 0 {
		w.MarkSteadyState()
	}
	w.Barrier(1)

	cLo, cHi := chunkOf(a.cells(), w.Threads(), w.GlobalID())
	bar := 10

	for it := 0; it < a.iters; it++ {
		// Force phase: for every molecule of every owned cell, sum pair
		// forces against molecules of the neighbourhood. Both sides of
		// each cross-cell pair compute it, so writes stay local.
		w.Phase(1)
		localEpot := 0.0
		var xi, xj, v3 [3]float64
		for cell := cLo; cell < cHi; cell++ {
			neigh := a.neighborCells(cell)
			for m := 0; m < a.perC; m++ {
				i := cell*a.perC + m
				a.getSpan(w, i, fPos, xi[:])
				var f [3]float64
				pairs := 0
				for _, nc := range neigh {
					for mj := 0; mj < a.perC; mj++ {
						j := nc*a.perC + mj
						if j == i {
							continue
						}
						a.getSpan(w, j, fPos, xj[:])
						var dx [3]float64
						r2 := 0.1
						for d := 0; d < 3; d++ {
							dx[d] = xi[d] - xj[d]
							r2 += dx[d] * dx[d]
						}
						inv := 1 / r2
						ff := inv*inv - 0.01*inv
						for d := 0; d < 3; d++ {
							f[d] += ff * dx[d]
						}
						if j > i {
							localEpot += inv
						}
						pairs++
					}
				}
				w.Compute(cvm.Time(pairs) * 20)
				a.getSpan(w, i, fVel, v3[:])
				for d := 0; d < 3; d++ {
					v3[d] += 1e-4 * f[d]
				}
				a.setSpan(w, i, fVel, v3[:])
			}
		}

		// Potential energy: node aggregation, one lock episode per node.
		a.nodeEpot[w.NodeID()] += qfix(localEpot)
		a.nodeCnt[w.NodeID()]++
		w.LocalBarrier(1)
		if a.nodeCnt[w.NodeID()] == w.LocalThreads() {
			sum := a.nodeEpot[w.NodeID()]
			a.nodeEpot[w.NodeID()] = 0
			a.nodeCnt[w.NodeID()] = 0
			w.Lock(0)
			a.epot.Add(w, 0, sum)
			w.Unlock(0)
		}
		w.Barrier(bar)
		bar++

		// Integrate positions of owned molecules (bounded so cell
		// assignment stays valid): one 6-element read span over the
		// adjacent position and velocity fields, one 3-element write back.
		w.Phase(2)
		var pv [6]float64
		for cell := cLo; cell < cHi; cell++ {
			for m := 0; m < a.perC; m++ {
				i := cell*a.perC + m
				a.getSpan(w, i, fPos, pv[:])
				for d := 0; d < 3; d++ {
					pv[d] += 1e-3 * pv[fVel+d]
				}
				a.setSpan(w, i, fPos, pv[:3])
				// Predictor-corrector bookkeeping: touch the record tail.
				a.set(w, i, fAux+(it%7), float64(it+1))
			}
		}
		w.Barrier(bar)
		bar++
	}

	if w.GlobalID() == 0 {
		sum := a.epot.Get(w, 0)
		var pv [6]float64
		for i := 0; i < n; i++ {
			a.getSpan(w, i, fPos, pv[:])
			for d := 0; d < 3; d++ {
				sum += pv[d] + 100*pv[fVel+d]
			}
		}
		a.checksum = sum
	}
	w.Barrier(9999)
}

// Check implements App.
// Checksum returns the computed energy checksum.
func (a *WaterSp) Checksum() float64 { return a.checksum }

func (a *WaterSp) Check() error {
	return a.checkClose("watersp", a.checksum, a.reference())
}

func (a *WaterSp) reference() float64 {
	n := a.molecules()
	pos := append([]float64(nil), a.initPos...)
	vel := make([]float64, 3*n)
	epot := 0.0
	for it := 0; it < a.iters; it++ {
		newVel := append([]float64(nil), vel...)
		for cell := 0; cell < a.cells(); cell++ {
			neigh := a.neighborCells(cell)
			for m := 0; m < a.perC; m++ {
				i := cell*a.perC + m
				var f [3]float64
				for _, nc := range neigh {
					for mj := 0; mj < a.perC; mj++ {
						j := nc*a.perC + mj
						if j == i {
							continue
						}
						var dx [3]float64
						r2 := 0.1
						for d := 0; d < 3; d++ {
							dx[d] = pos[3*i+d] - pos[3*j+d]
							r2 += dx[d] * dx[d]
						}
						inv := 1 / r2
						ff := inv*inv - 0.01*inv
						for d := 0; d < 3; d++ {
							f[d] += ff * dx[d]
						}
						if j > i {
							epot += inv
						}
					}
				}
				for d := 0; d < 3; d++ {
					newVel[3*i+d] = vel[3*i+d] + 1e-4*f[d]
				}
			}
		}
		vel = newVel
		for i := 0; i < 3*n; i++ {
			pos[i] += 1e-3 * vel[i]
		}
	}
	sum := epot
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			sum += pos[3*i+d] + 100*vel[3*i+d]
		}
	}
	return sum
}
