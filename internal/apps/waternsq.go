package apps

import (
	"fmt"

	"cvm"
)

// WaterVariant selects the Water-Nsq source-modification level studied in
// the paper's Table 5 case study.
type WaterVariant int

// Water-Nsq variants.
const (
	// WaterNoOpts only promotes globals to shared data (the `g`
	// modification): every thread updates the shared force array
	// directly under per-molecule locks. Transparent multi-threading
	// uniformly hurts this version.
	WaterNoOpts WaterVariant = iota
	// WaterLocalBarrier adds the `r` modification: threads accumulate
	// forces into node-local memory, synchronize with a local barrier,
	// and cooperatively flush one aggregate update per node (each thread
	// starting at a different portion of the array, wrapping around).
	WaterLocalBarrier
	// WaterBoth additionally reorders the read phase so co-located
	// threads start at opposing ends of the molecule array, delaying
	// overlapping reads of the same page (the version the paper uses
	// everywhere outside Table 5).
	WaterBoth
)

// String returns the Table 5 row label.
func (v WaterVariant) String() string {
	switch v {
	case WaterNoOpts:
		return "No Opts"
	case WaterLocalBarrier:
		return "w/ Local Barrier"
	default:
		return "w/ Both Opts"
	}
}

// WaterNsq is the O(N²) molecular dynamics simulation (SPLASH Water
// N-squared): per-molecule locks guard force updates, making it the
// paper's lock-bound application and its Table 5 case study.
type WaterNsq struct {
	tolerance
	n       int // molecules (paper: 512)
	iters   int
	variant WaterVariant

	// mol is the molecule record array (molStride float64s per molecule:
	// position, velocity, force, and predictor-corrector state), spanning
	// many pages as the SPLASH original does.
	mol  cvm.F64Matrix
	epot cvm.F64Array // global potential-energy accumulator

	// Node-local accumulation buffers (physical memory shared by
	// co-located threads; never accessed across nodes).
	nodeForce [][]float64
	nodeEpot  []float64
	initPos   []float64

	checksum float64
}

func init() {
	register("waternsq", func(size Size) App { return NewWaterNsq(size, WaterBoth) })
	register("waternsq-noopts", func(size Size) App { return NewWaterNsq(size, WaterNoOpts) })
	register("waternsq-localbarrier", func(size Size) App { return NewWaterNsq(size, WaterLocalBarrier) })
}

// NewWaterNsq builds the Water-Nsq instance for a scale and variant.
func NewWaterNsq(size Size, variant WaterVariant) *WaterNsq {
	switch size {
	case SizeTest:
		return &WaterNsq{n: 48, iters: 2, variant: variant}
	case SizePaper:
		return &WaterNsq{n: 512, iters: 4, variant: variant}
	default:
		return &WaterNsq{n: 192, iters: 3, variant: variant}
	}
}

// Name implements App.
func (a *WaterNsq) Name() string {
	switch a.variant {
	case WaterNoOpts:
		return "waternsq-noopts"
	case WaterLocalBarrier:
		return "waternsq-localbarrier"
	default:
		return "waternsq"
	}
}

// SupportsThreads implements App.
func (a *WaterNsq) SupportsThreads(int) bool { return true }

// Setup implements App.
func (a *WaterNsq) Setup(c cvm.Allocator) error {
	if a.n < 4 {
		return fmt.Errorf("waternsq: %d molecules too few", a.n)
	}
	a.mol = cvm.MustAllocF64Matrix(c, "water.mol", a.n, molStride, false)
	a.epot = cvm.MustAllocF64(c, "water.epot", 1)

	a.nodeForce = make([][]float64, c.Nodes())
	for i := range a.nodeForce {
		a.nodeForce[i] = make([]float64, 3*a.n)
	}
	a.nodeEpot = make([]float64, c.Nodes())

	r := lcg(41)
	a.initPos = make([]float64, 3*a.n)
	for i := range a.initPos {
		a.initPos[i] = r.next() * 4
	}
	return nil
}

// molLock is the lock guarding molecule m's force entry (lock 0 is the
// potential-energy lock).
func molLock(m int) int { return 100 + m }

// fForce and fTail index the force and predictor-corrector fields of a
// molecule record (fPos and fVel are shared with Water-Sp).
const (
	fForce = 6
	fTail  = 9
)

// Main implements App.
func (a *WaterNsq) Main(w cvm.Worker) {
	if w.GlobalID() == 0 {
		rec := make([]float64, molStride)
		for i := 0; i < a.n; i++ {
			for d := 0; d < 3; d++ {
				rec[fPos+d] = a.initPos[3*i+d]
				rec[fVel+d] = 0
				rec[fForce+d] = 0
			}
			for d := fTail; d < molStride; d++ {
				rec[d] = 1
			}
			a.mol.SetRow(w, i, rec)
		}
		a.epot.Set(w, 0, 0)
	}
	w.Barrier(0)
	if w.GlobalID() == 0 {
		w.MarkSteadyState()
	}
	w.Barrier(1)

	lo, hi := chunkOf(a.n, w.Threads(), w.GlobalID())
	contrib := make([]float64, 3*a.n)
	touched := make([]bool, a.n)
	// Span scratch over a molecule record's contiguous fields.
	var posVel [6]float64
	var f3 [3]float64
	bar := 10

	for it := 0; it < a.iters; it++ {
		// Predict: integrate positions of owned molecules. Each record's
		// position and velocity fields are adjacent, so the update is one
		// 6-element read span and one 3-element write span.
		w.Phase(1)
		for i := lo; i < hi; i++ {
			a.mol.RowRange(w, i, fPos, posVel[:])
			for d := 0; d < 3; d++ {
				posVel[d] += 0.01 * posVel[fVel+d]
			}
			a.mol.SetRowRange(w, i, fPos, posVel[:3])
		}
		w.Barrier(bar)
		bar++

		// Inter-molecular forces: each thread computes a half-shell of
		// pairs for its molecules, accumulating privately.
		w.Phase(2)
		for i := range contrib {
			contrib[i] = 0
		}
		for i := range touched {
			touched[i] = false
		}
		localEpot := 0.0
		forEachOwned(lo, hi, a.readDescending(w), func(i int) {
			var xi, xj [3]float64
			a.mol.RowRange(w, i, fPos, xi[:])
			half := a.n / 2
			for k := 1; k <= half; k++ {
				j := i + k
				if j >= a.n {
					break
				}
				a.mol.RowRange(w, j, fPos, xj[:])
				var dx [3]float64
				r2 := 0.1
				for d := 0; d < 3; d++ {
					dx[d] = xi[d] - xj[d]
					r2 += dx[d] * dx[d]
				}
				inv := 1 / r2
				f := inv*inv - 0.01*inv
				for d := 0; d < 3; d++ {
					contrib[3*i+d] += f * dx[d]
					contrib[3*j+d] -= f * dx[d]
				}
				touched[i], touched[j] = true, true
				localEpot += inv
			}
			w.Compute(cvm.Time(half) * 60) // ~16 flops per pair
		})
		w.Barrier(bar)
		bar++

		// Publish force contributions to the shared array.
		w.Phase(3)
		switch a.variant {
		case WaterNoOpts:
			// Every thread updates shared forces directly, one
			// per-molecule lock at a time, then the global energy.
			for m := 0; m < a.n; m++ {
				if !touched[m] {
					continue
				}
				w.Lock(molLock(m))
				a.mol.RowRange(w, m, fForce, f3[:])
				for d := 0; d < 3; d++ {
					f3[d] += qfix(contrib[3*m+d])
				}
				a.mol.SetRowRange(w, m, fForce, f3[:])
				w.Unlock(molLock(m))
			}
			w.Lock(0)
			a.epot.Add(w, 0, qfix(localEpot))
			w.Unlock(0)

		default:
			// Aggregate per node behind a local barrier, then flush
			// cooperatively: each thread starts at a different portion
			// of the array and wraps (crude local load balancing).
			nf := a.nodeForce[w.NodeID()]
			for m := 0; m < a.n; m++ {
				if !touched[m] {
					continue
				}
				for d := 0; d < 3; d++ {
					nf[3*m+d] += qfix(contrib[3*m+d])
				}
			}
			a.nodeEpot[w.NodeID()] += qfix(localEpot)
			w.Compute(cvm.Time(a.n) * 30)
			w.LocalBarrier(1)

			segLo, segHi := chunkOf(a.n, w.LocalThreads(), w.LocalID())
			for m := segLo; m < segHi; m++ {
				z := nf[3*m] != 0 || nf[3*m+1] != 0 || nf[3*m+2] != 0
				if !z {
					continue
				}
				w.Lock(molLock(m))
				a.mol.RowRange(w, m, fForce, f3[:])
				for d := 0; d < 3; d++ {
					f3[d] += nf[3*m+d]
					nf[3*m+d] = 0
				}
				a.mol.SetRowRange(w, m, fForce, f3[:])
				w.Unlock(molLock(m))
			}
			if w.LocalID() == 0 {
				w.Lock(0)
				a.epot.Add(w, 0, a.nodeEpot[w.NodeID()])
				w.Unlock(0)
				a.nodeEpot[w.NodeID()] = 0
			}
		}
		w.Barrier(bar)
		bar++

		// Correct: apply forces to owned molecules and clear them. The
		// velocity and force fields are adjacent, so the update is one
		// 6-element read span and one 6-element write span per record.
		w.Phase(4)
		for i := lo; i < hi; i++ {
			a.mol.RowRange(w, i, fVel, posVel[:])
			for d := 0; d < 3; d++ {
				posVel[d] += 1e-4 * posVel[3+d]
				posVel[3+d] = 0
			}
			a.mol.SetRowRange(w, i, fVel, posVel[:])
			// Predictor-corrector bookkeeping: touch the record tail.
			a.mol.Set(w, i, fTail+(it%4), float64(it+1))
		}
		w.Barrier(bar)
		bar++
	}

	if w.GlobalID() == 0 {
		sum := a.epot.Get(w, 0)
		for i := 0; i < a.n; i++ {
			a.mol.RowRange(w, i, fPos, posVel[:])
			for d := 0; d < 3; d++ {
				sum += posVel[d] + 100*posVel[fVel+d]
			}
		}
		a.checksum = sum
	}
	w.Barrier(9999)
}

// readDescending reports whether this thread should traverse its
// molecules in descending order (the `Both` read-reordering: odd local
// threads start at the opposite end).
func (a *WaterNsq) readDescending(w cvm.Worker) bool {
	return a.variant == WaterBoth && w.LocalID()%2 == 1
}

// forEachOwned visits [lo, hi) in ascending or descending order.
func forEachOwned(lo, hi int, descending bool, fn func(i int)) {
	if descending {
		for i := hi - 1; i >= lo; i-- {
			fn(i)
		}
		return
	}
	for i := lo; i < hi; i++ {
		fn(i)
	}
}

// Check implements App.
// Checksum returns the computed energy checksum.
func (a *WaterNsq) Checksum() float64 { return a.checksum }

func (a *WaterNsq) Check() error {
	return a.checkClose(a.Name(), a.checksum, a.reference())
}

func (a *WaterNsq) reference() float64 {
	n := a.n
	pos := append([]float64(nil), a.initPos...)
	vel := make([]float64, 3*n)
	force := make([]float64, 3*n)
	epot := 0.0
	for it := 0; it < a.iters; it++ {
		for i := 0; i < 3*n; i++ {
			pos[i] += 0.01 * vel[i]
		}
		for i := 0; i < n; i++ {
			for k := 1; k <= n/2; k++ {
				j := i + k
				if j >= n {
					break
				}
				var dx [3]float64
				r2 := 0.1
				for d := 0; d < 3; d++ {
					dx[d] = pos[3*i+d] - pos[3*j+d]
					r2 += dx[d] * dx[d]
				}
				inv := 1 / r2
				f := inv*inv - 0.01*inv
				for d := 0; d < 3; d++ {
					force[3*i+d] += f * dx[d]
					force[3*j+d] -= f * dx[d]
				}
				epot += inv
			}
		}
		for i := 0; i < 3*n; i++ {
			vel[i] += 1e-4 * force[i]
			force[i] = 0
		}
	}
	sum := epot
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			sum += pos[3*i+d] + 100*vel[3*i+d]
		}
	}
	return sum
}
