package apps

import (
	"cvm"
)

// Ocean models SPLASH-2's contiguous Ocean: a multigrid red-black solver
// over several full-size state grids with lock-guarded global reductions.
// The paper includes it as the application that is "anything but
// well-tuned" for CVM — SPLASH Ocean keeps ~25 grids and sweeps several
// per phase, and with un-padded rows (a few rows per page) every sweep
// invalidates nearly every boundary page, so the single-threaded run is
// fault-bound; multi-threading then hides a large share of that latency.
// Like the SPLASH original, the thread count must be a power of two.
//
// The paper's `g` and `r` modifications are reflected here: global
// residual accumulation is aggregated per node with a local barrier
// before touching the global lock.
type Ocean struct {
	tolerance
	n     int // fine grid dimension (paper: 258)
	iters int

	u, b, r, psi cvm.F64Matrix // fine-grid state arrays
	coarse       cvm.F64Matrix
	resid        cvm.F64Array // global residual accumulator (lock-guarded)

	nodeResid []float64 // per-node aggregation buffer (node-local memory)
	nodeCnt   []int

	checksum float64
}

func init() {
	register("ocean", func(size Size) App { return NewOcean(size) })
}

// NewOcean builds the Ocean instance for an input scale.
func NewOcean(size Size) *Ocean {
	switch size {
	case SizeTest:
		return &Ocean{n: 34, iters: 2}
	case SizePaper:
		return &Ocean{n: 258, iters: 6}
	default:
		return &Ocean{n: 130, iters: 4}
	}
}

// Name implements App.
func (o *Ocean) Name() string { return "ocean" }

// SupportsThreads reports power-of-two thread levels only, as in the
// paper ("no three-thread case for Ocean").
func (o *Ocean) SupportsThreads(t int) bool { return t&(t-1) == 0 }

// Setup implements App.
func (o *Ocean) Setup(c cvm.Allocator) error {
	o.u = cvm.MustAllocF64Matrix(c, "ocean.u", o.n, o.n, false)
	o.b = cvm.MustAllocF64Matrix(c, "ocean.b", o.n, o.n, false)
	o.r = cvm.MustAllocF64Matrix(c, "ocean.r", o.n, o.n, false)
	o.psi = cvm.MustAllocF64Matrix(c, "ocean.psi", o.n, o.n, false)
	o.coarse = cvm.MustAllocF64Matrix(c, "ocean.coarse", o.n/2, o.n/2, false)
	o.resid = cvm.MustAllocF64(c, "ocean.resid", 8)
	o.nodeResid = make([]float64, 64)
	o.nodeCnt = make([]int, 64)
	return nil
}

// Main implements App.
func (o *Ocean) Main(w cvm.Worker) {
	n := o.n
	if w.GlobalID() == 0 {
		r := lcg(31)
		urow := make([]float64, n)
		brow := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				urow[j] = oceanInit(&r, i, j, n)
				brow[j] = 0.01 * r.next()
			}
			o.u.SetRow(w, i, urow)
			o.b.SetRow(w, i, brow)
		}
		// Un-padded rows are contiguous, so each grid zeroes as one fill.
		w.FillF64(o.r.At(0, 0), n*n, 0)
		w.FillF64(o.psi.At(0, 0), n*n, 0)
		w.FillF64(o.coarse.At(0, 0), (n/2)*(n/2), 0)
	}
	w.Barrier(0)
	if w.GlobalID() == 0 {
		w.MarkSteadyState()
	}
	w.Barrier(1)

	// Co-located threads traverse rows from rotated starting points so
	// their outstanding fetches target different pages (the paper's
	// access-reordering optimization: "threads start at a different
	// portion of the shared array, wrapping around").
	rowStart := 1 + (n-2)*w.LocalID()/w.LocalThreads()
	forRows := func(body func(i int)) {
		for k := 0; k < n-2; k++ {
			i := rowStart + k
			if i > n-2 {
				i -= n - 2
			}
			body(i)
		}
	}

	// Ocean partitions by COLUMN stripes over row-major grids — the
	// layout mismatch that makes it "anything but well-tuned" for a
	// page-based DSM: every thread's stripe intersects every page of
	// every row, so each sweep faults nearly the whole grid remotely and
	// the multiple-writer protocol merges per-page diffs from all nodes.
	jLo, jHi := chunkOf(n-2, w.Threads(), w.GlobalID())
	jLo, jHi = jLo+1, jHi+1
	cn := n / 2
	cLo, cHi := chunkOf(cn-2, w.Threads(), w.GlobalID())
	cLo, cHi = cLo+1, cHi+1
	bar := 10

	// Span scratch rows for the contiguous sweeps (phases 3, 4 and 7);
	// the red-black phases keep the scalar stride-2 access pattern.
	rowUp := make([]float64, n)
	rowDn := make([]float64, n)
	rowC := make([]float64, n)
	rowB := make([]float64, n)
	rowW := make([]float64, n)

	for it := 0; it < o.iters; it++ {
		// Red-black relaxation of u against the source term b.
		for color := 0; color < 2; color++ {
			w.Phase(1 + color)
			forRows(func(i int) {
				start := jLo
				if (i+start)%2 != (1+color)%2 {
					start++
				}
				for j := start; j < jHi; j += 2 {
					v := 0.25 * (o.u.Get(w, i-1, j) + o.u.Get(w, i+1, j) +
						o.u.Get(w, i, j-1) + o.u.Get(w, i, j+1) - o.b.Get(w, i, j))
					o.u.Set(w, i, j, v)
				}
			})
			w.Barrier(bar)
			bar++
		}

		// Residual grid: r = stencil(u) - b, plus the scalar residual
		// norm aggregated per node behind a local barrier (the `r`
		// modification) and published under the global lock. The full-j
		// sweep is contiguous, so the stencil's source rows are read as
		// page-granular spans and the residual row is written as one.
		w.Phase(3)
		local := 0.0
		wj := jHi - jLo
		forRows(func(i int) {
			if wj <= 0 {
				return
			}
			um, up := rowUp[:wj], rowDn[:wj]
			uc := rowC[:wj+2]
			bc, rc := rowB[:wj], rowW[:wj]
			o.u.RowRange(w, i-1, jLo, um)
			o.u.RowRange(w, i+1, jLo, up)
			o.u.RowRange(w, i, jLo-1, uc)
			o.b.RowRange(w, i, jLo, bc)
			for k := 0; k < wj; k++ {
				d := uc[k+1] - 0.25*(um[k]+up[k]+uc[k]+uc[k+2]-bc[k])
				rc[k] = d
				local += d * d
			}
			o.r.SetRowRange(w, i, jLo, rc)
		})
		o.nodeResid[w.NodeID()] += qfix(local)
		o.nodeCnt[w.NodeID()]++
		w.LocalBarrier(1)
		if o.nodeCnt[w.NodeID()] == w.LocalThreads() {
			sum := o.nodeResid[w.NodeID()]
			o.nodeResid[w.NodeID()] = 0
			o.nodeCnt[w.NodeID()] = 0
			w.Lock(0)
			o.resid.Set(w, 0, o.resid.Get(w, 0)+sum)
			w.Unlock(0)
		}
		w.Barrier(bar)
		bar++

		// Restrict the residual to the coarse grid and relax there
		// (single colour: order-independent). Each coarse cell reads a
		// 2×2 fine block; across the j sweep those blocks tile two
		// contiguous fine rows, read as spans.
		w.Phase(4)
		for i := cLo; i < cHi; i++ {
			fw := 2 * (cn - 2)
			ra, rb := rowUp[:fw], rowDn[:fw]
			o.r.RowRange(w, 2*i, 2, ra)
			o.r.RowRange(w, 2*i+1, 2, rb)
			cw := rowW[:cn-2]
			for j := 1; j < cn-1; j++ {
				k := 2 * (j - 1)
				cw[j-1] = 0.25 * (ra[k] + rb[k] + ra[k+1] + rb[k+1])
			}
			o.coarse.SetRowRange(w, i, 1, cw)
		}
		w.Barrier(bar)
		bar++

		w.Phase(5)
		for i := cLo; i < cHi; i++ {
			for j := 1 + i%2; j < cn-1; j += 2 {
				v := 0.25 * (o.coarse.Get(w, i-1, j) + o.coarse.Get(w, i+1, j) +
					o.coarse.Get(w, i, j-1) + o.coarse.Get(w, i, j+1))
				o.coarse.Set(w, i, j, 0.5*(o.coarse.Get(w, i, j)+v))
			}
		}
		w.Barrier(bar)
		bar++

		// Interpolate the correction back into u.
		w.Phase(6)
		jTop := jHi
		if jTop > n-2 {
			jTop = n - 2
		}
		forRows(func(i int) {
			ci := i / 2
			if ci < 1 || ci >= cn-1 {
				return
			}
			for j := jLo + jLo%2; j < jTop; j += 2 {
				cj := j / 2
				if cj < 1 || cj >= cn-1 {
					continue
				}
				o.u.Set(w, i, j, o.u.Get(w, i, j)-0.05*o.coarse.Get(w, ci, cj))
			}
		})
		w.Barrier(bar)
		bar++

		// Integrate the stream-function grid from u (a second full-grid
		// sweep, reading across the partition boundary), span per row.
		w.Phase(7)
		forRows(func(i int) {
			if wj <= 0 {
				return
			}
			pc, uc, um := rowW[:wj], rowC[:wj], rowUp[:wj]
			o.psi.RowRange(w, i, jLo, pc)
			o.u.RowRange(w, i, jLo, uc)
			o.u.RowRange(w, i-1, jLo, um)
			for k := 0; k < wj; k++ {
				pc[k] = 0.9*pc[k] + 0.1*(uc[k]-um[k])
			}
			o.psi.SetRowRange(w, i, jLo, pc)
		})
		w.Barrier(bar)
		bar++
	}

	if w.GlobalID() == 0 {
		w.Phase(8)
		sum := o.resid.Get(w, 0)
		for i := 0; i < n; i++ {
			o.u.Row(w, i, rowUp)
			o.psi.Row(w, i, rowDn)
			for j := 0; j < n; j += 3 {
				sum += rowUp[j] + rowDn[j]
			}
		}
		o.checksum = sum
	}
	w.Barrier(9999)
}

// Check implements App.
// Checksum returns the computed grid checksum.
func (o *Ocean) Checksum() float64 { return o.checksum }

func (o *Ocean) Check() error {
	return o.checkClose("ocean", o.checksum, o.reference())
}

func (o *Ocean) reference() float64 {
	n := o.n
	cn := n / 2
	alloc := func(rows, cols int) [][]float64 {
		g := make([][]float64, rows)
		for i := range g {
			g[i] = make([]float64, cols)
		}
		return g
	}
	u := alloc(n, n)
	b := alloc(n, n)
	rg := alloc(n, n)
	psi := alloc(n, n)
	coarse := alloc(cn, cn)
	r := lcg(31)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			u[i][j] = oceanInit(&r, i, j, n)
			b[i][j] = 0.01 * r.next()
		}
	}
	resid := 0.0
	for it := 0; it < o.iters; it++ {
		for color := 0; color < 2; color++ {
			for i := 1; i < n-1; i++ {
				for j := 1 + (i+color)%2; j < n-1; j += 2 {
					u[i][j] = 0.25 * (u[i-1][j] + u[i+1][j] +
						u[i][j-1] + u[i][j+1] - b[i][j])
				}
			}
		}
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				d := u[i][j] - 0.25*(u[i-1][j]+u[i+1][j]+u[i][j-1]+u[i][j+1]-b[i][j])
				rg[i][j] = d
				resid += d * d
			}
		}
		for i := 1; i < cn-1; i++ {
			for j := 1; j < cn-1; j++ {
				coarse[i][j] = 0.25 * (rg[2*i][2*j] + rg[2*i+1][2*j] +
					rg[2*i][2*j+1] + rg[2*i+1][2*j+1])
			}
		}
		for i := 1; i < cn-1; i++ {
			for j := 1 + i%2; j < cn-1; j += 2 {
				v := 0.25 * (coarse[i-1][j] + coarse[i+1][j] +
					coarse[i][j-1] + coarse[i][j+1])
				coarse[i][j] = 0.5 * (coarse[i][j] + v)
			}
		}
		for i := 1; i < n-1; i++ {
			ci := i / 2
			if ci < 1 || ci >= cn-1 {
				continue
			}
			for j := 2; j < n-2; j += 2 {
				cj := j / 2
				if cj < 1 || cj >= cn-1 {
					continue
				}
				u[i][j] -= 0.05 * coarse[ci][cj]
			}
		}
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				psi[i][j] = 0.9*psi[i][j] + 0.1*(u[i][j]-u[i-1][j])
			}
		}
	}
	sum := resid
	for i := 0; i < n; i++ {
		for j := 0; j < n; j += 3 {
			sum += u[i][j] + psi[i][j]
		}
	}
	return sum
}

func oceanInit(r *lcg, i, j, n int) float64 {
	v := r.next()
	if i == 0 || j == 0 || i == n-1 || j == n-1 {
		return 2
	}
	return v
}
