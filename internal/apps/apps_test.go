package apps

import (
	"fmt"
	"testing"
)

func TestRegistryNames(t *testing.T) {
	want := []string{"barnes", "fft", "ocean", "scaleout", "sor", "swm750",
		"waternsq", "waternsq-localbarrier", "waternsq-noopts", "watersp"}
	got := Names()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
}

func TestUnknownApp(t *testing.T) {
	if _, err := New("nosuch", SizeTest); err == nil {
		t.Error("New(nosuch) succeeded, want error")
	}
}

func TestParseSize(t *testing.T) {
	tests := []struct {
		in   string
		want Size
		ok   bool
	}{
		{"test", SizeTest, true},
		{"small", SizeSmall, true},
		{"paper", SizePaper, true},
		{"huge", 0, false},
	}
	for _, tt := range tests {
		got, err := ParseSize(tt.in)
		if (err == nil) != tt.ok || got != tt.want {
			t.Errorf("ParseSize(%q) = %v, %v", tt.in, got, err)
		}
	}
}

func TestChunkOf(t *testing.T) {
	tests := []struct {
		n, threads, id int
		lo, hi         int
	}{
		{10, 4, 0, 0, 3},
		{10, 4, 1, 3, 6},
		{10, 4, 2, 6, 8},
		{10, 4, 3, 8, 10},
		{8, 8, 7, 7, 8},
		{3, 8, 5, 3, 3}, // more threads than items: empty chunk
	}
	for _, tt := range tests {
		lo, hi := chunkOf(tt.n, tt.threads, tt.id)
		if lo != tt.lo || hi != tt.hi {
			t.Errorf("chunkOf(%d,%d,%d) = [%d,%d), want [%d,%d)",
				tt.n, tt.threads, tt.id, lo, hi, tt.lo, tt.hi)
		}
	}
	// Chunks must partition the range.
	for _, n := range []int{1, 7, 64, 1000} {
		for _, th := range []int{1, 3, 8, 32} {
			prev := 0
			for id := 0; id < th; id++ {
				lo, hi := chunkOf(n, th, id)
				if lo != prev {
					t.Fatalf("chunkOf(%d,%d,%d) gap: lo=%d, want %d", n, th, id, lo, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("chunkOf(%d,%d) covers %d, want %d", n, th, prev, n)
			}
		}
	}
}

// TestAllAppsCorrectAllShapes is the master correctness matrix: every
// application must reproduce its sequential reference checksum on every
// cluster shape the paper uses.
func TestAllAppsCorrectAllShapes(t *testing.T) {
	shapes := []struct{ nodes, threads int }{
		{1, 1}, {2, 2}, {4, 1}, {4, 2}, {4, 3}, {4, 4}, {8, 2},
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, sh := range shapes {
				app, err := New(name, SizeTest)
				if err != nil {
					t.Fatal(err)
				}
				if !app.SupportsThreads(sh.threads) {
					continue
				}
				if _, err := Run(name, SizeTest, sh.nodes, sh.threads); err != nil {
					t.Fatalf("%dx%d: %v", sh.nodes, sh.threads, err)
				}
			}
		})
	}
}

func TestOceanRejectsThreeThreads(t *testing.T) {
	app, err := New("ocean", SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if app.SupportsThreads(3) {
		t.Error("ocean claims to support 3 threads; the paper says it cannot")
	}
	if !app.SupportsThreads(1) || !app.SupportsThreads(2) || !app.SupportsThreads(4) {
		t.Error("ocean must support power-of-two threads")
	}
	if _, err := Run("ocean", SizeTest, 4, 3); err == nil {
		t.Error("Run(ocean, 3 threads) succeeded, want error")
	}
}

func TestAppProfilesMatchPaper(t *testing.T) {
	// The paper's Table 1: which apps use locks, which are barrier-only.
	barrierOnly := []string{"barnes", "fft", "sor", "swm750"}
	lockUsing := []string{"ocean", "watersp", "waternsq"}

	for _, name := range barrierOnly {
		st, err := Run(name, SizeTest, 4, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Total.RemoteLocks != 0 {
			t.Errorf("%s: remote locks = %d, want 0 (barrier-only)", name, st.Total.RemoteLocks)
		}
	}
	for _, name := range lockUsing {
		st, err := Run(name, SizeTest, 4, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Total.RemoteLocks == 0 {
			t.Errorf("%s: remote locks = 0, want > 0 (lock-using)", name)
		}
	}
}

func TestWaterNsqVariantsDiffer(t *testing.T) {
	// The local-barrier variants must aggregate: far fewer remote lock
	// episodes than NoOpts at the same threading level, and no
	// Block-Same-Lock (Table 5's most dramatic column).
	noOpts, err := Run("waternsq-noopts", SizeTest, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	both, err := Run("waternsq", SizeTest, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if both.Total.BlockSameLock != 0 {
		t.Errorf("Both-opts BlockSameLock = %d, want 0 (Table 5)", both.Total.BlockSameLock)
	}
	if noOpts.Total.BlockSameLock == 0 {
		t.Error("NoOpts BlockSameLock = 0, want > 0 (Table 5)")
	}
}

func TestDeterministicStats(t *testing.T) {
	for _, name := range []string{"sor", "waternsq"} {
		a, err := Run(name, SizeTest, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(name, SizeTest, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		if a.Total != b.Total || a.Wall != b.Wall {
			t.Errorf("%s: runs differ:\n%+v\n%+v", name, a.Total, b.Total)
		}
	}
}
