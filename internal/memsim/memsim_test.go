package memsim

import (
	"testing"
	"testing/quick"

	"cvm/internal/sim"
)

func TestColdMissThenHit(t *testing.T) {
	s := NewSystem(SP2Params())
	c1 := s.Access(0x1000)
	c2 := s.Access(0x1000)
	if c1 <= c2 {
		t.Errorf("cold access cost %v not greater than warm cost %v", c1, c2)
	}
	st := s.Stats()
	if st.Accesses != 2 {
		t.Errorf("accesses = %d, want 2", st.Accesses)
	}
	if st.DCacheMisses != 1 {
		t.Errorf("dcache misses = %d, want 1", st.DCacheMisses)
	}
	if st.DTLBMisses != 1 {
		t.Errorf("dtlb misses = %d, want 1", st.DTLBMisses)
	}
	if c2 != SP2Params().HitCost {
		t.Errorf("warm cost = %v, want pure hit cost %v", c2, SP2Params().HitCost)
	}
}

func TestSameLineSharesEntry(t *testing.T) {
	s := NewSystem(SP2Params())
	s.Access(0x2000)
	if got := s.Access(0x2000 + 8); got != SP2Params().HitCost {
		t.Errorf("same-line access cost = %v, want hit", got)
	}
	if s.Stats().DCacheMisses != 1 {
		t.Errorf("dcache misses = %d, want 1", s.Stats().DCacheMisses)
	}
}

func TestCapacityEviction(t *testing.T) {
	p := SP2Params()
	s := NewSystem(p)
	// Stream through 2x the cache size, then revisit the start: the first
	// lines must have been evicted.
	span := 2 * p.CacheSize
	for a := 0; a < span; a += p.LineSize {
		s.Access(uint64(a))
	}
	before := s.Stats().DCacheMisses
	s.Access(0)
	if s.Stats().DCacheMisses != before+1 {
		t.Error("line 0 survived a 2x-capacity streaming sweep")
	}
}

func TestLRUWithinSet(t *testing.T) {
	// With 4 ways, 4 distinct tags mapping to one set all fit; a 5th
	// evicts the least recently used.
	p := SP2Params()
	s := NewSystem(p)
	sets := p.CacheSize / (p.LineSize * p.CacheWays)
	stride := uint64(sets * p.LineSize) // same set every time
	for i := uint64(0); i < 4; i++ {
		s.Access(i * stride)
	}
	// Touch tag 0 to make tag 1 the LRU victim.
	s.Access(0)
	s.Access(4 * stride) // evicts tag 1
	before := s.Stats().DCacheMisses
	s.Access(0) // still resident
	if s.Stats().DCacheMisses != before {
		t.Error("recently-used line was evicted instead of LRU line")
	}
	s.Access(1 * stride) // evicted: must miss
	if s.Stats().DCacheMisses != before+1 {
		t.Error("LRU line was not evicted")
	}
}

func TestDTLBPageGranularity(t *testing.T) {
	p := SP2Params()
	s := NewSystem(p)
	s.Access(0)
	s.Access(uint64(p.PageSize - 8)) // same page, different line
	if s.Stats().DTLBMisses != 1 {
		t.Errorf("dtlb misses = %d, want 1 (same page)", s.Stats().DTLBMisses)
	}
	s.Access(uint64(p.PageSize)) // next page
	if s.Stats().DTLBMisses != 2 {
		t.Errorf("dtlb misses = %d, want 2", s.Stats().DTLBMisses)
	}
}

func TestITLBModel(t *testing.T) {
	s := NewSystem(SP2Params())
	if cost := s.InstrTouch(1); cost == 0 {
		t.Error("cold I-TLB touch cost = 0, want miss penalty")
	}
	if cost := s.InstrTouch(1); cost != 0 {
		t.Error("warm I-TLB touch cost != 0")
	}
	if s.Stats().ITLBMisses != 1 {
		t.Errorf("itlb misses = %d, want 1", s.Stats().ITLBMisses)
	}
	// Cycling through more code pages than the I-TLB holds must keep
	// missing.
	p := SP2Params()
	capacity := p.ITLBSets * p.ITLBWays
	before := s.Stats().ITLBMisses
	for round := 0; round < 3; round++ {
		for pg := uint64(100); pg < uint64(100+2*capacity); pg++ {
			s.InstrTouch(pg)
		}
	}
	got := s.Stats().ITLBMisses - before
	if got < int64(4*capacity) {
		t.Errorf("thrashing I-TLB missed %d times, want ≥ %d", got, 4*capacity)
	}
}

func TestAccessRangeTouchesEveryLine(t *testing.T) {
	p := SP2Params()
	s := NewSystem(p)
	s.AccessRange(0, 8*p.LineSize)
	if got := s.Stats().DCacheMisses; got != 8 {
		t.Errorf("range sweep missed %d lines, want 8", got)
	}
}

func TestThreadInterleavingDegradesLocality(t *testing.T) {
	// The paper's central memory-system observation: interleaving the
	// access streams of multiple threads produces more cache misses than
	// running the same streams back-to-back.
	p := SP2Params()
	run := func(interleave bool) int64 {
		s := NewSystem(p)
		const threads = 4
		const footprint = 24 << 10 // per-thread working set: under capacity
		const rounds = 6
		if interleave {
			for r := 0; r < rounds; r++ {
				for th := 0; th < threads; th++ {
					base := uint64(th) << 30
					for a := 0; a < footprint; a += p.LineSize {
						s.Access(base + uint64(a))
					}
				}
			}
		} else {
			for th := 0; th < threads; th++ {
				base := uint64(th) << 30
				for r := 0; r < rounds; r++ {
					for a := 0; a < footprint; a += p.LineSize {
						s.Access(base + uint64(a))
					}
				}
			}
		}
		return s.Stats().DCacheMisses
	}
	solo, mixed := run(false), run(true)
	if mixed <= solo {
		t.Errorf("interleaved misses %d not greater than sequential %d", mixed, solo)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 1, DCacheMisses: 2, DTLBMisses: 3, ITLBMisses: 4}
	b := Stats{Accesses: 10, DCacheMisses: 20, DTLBMisses: 30, ITLBMisses: 40}
	a.Add(b)
	want := Stats{Accesses: 11, DCacheMisses: 22, DTLBMisses: 33, ITLBMisses: 44}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}

func TestAssocPropertyHitAfterTouch(t *testing.T) {
	// Property: immediately re-touching any key is always a hit.
	f := func(keys []uint64) bool {
		a := new(assoc)
		a.init(16, 4, make([]uint64, 2*16*4))
		for _, k := range keys {
			a.touch(k)
			if !a.touch(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssocPropertyWorkingSetFits(t *testing.T) {
	// Property: any working set of at most `ways` keys per set never
	// misses after the first round.
	f := func(seed uint8) bool {
		const sets, ways = 8, 4
		a := new(assoc)
		a.init(sets, ways, make([]uint64, 2*sets*ways))
		keys := make([]uint64, 0, sets*ways)
		for s := 0; s < sets; s++ {
			for w := 0; w < ways; w++ {
				keys = append(keys, uint64(s)+uint64(w)*sets+uint64(seed%3)*sets*ways)
			}
		}
		for _, k := range keys {
			a.touch(k)
		}
		for _, k := range keys {
			if !a.touch(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCostsArePositive(t *testing.T) {
	for _, params := range []Params{SP2Params(), AlphaParams()} {
		s := NewSystem(params)
		var total sim.Time
		for a := uint64(0); a < 1<<16; a += 64 {
			total += s.Access(a)
		}
		if total <= 0 {
			t.Errorf("total cost = %v, want > 0", total)
		}
	}
}

// TestAccessMemoEquivalence drives identical pseudo-random access traces
// through a memoized system and a memo-disabled reference and requires
// bit-identical miss counts and per-access costs. The memo (the
// contiguous-sweep fast path) must be a pure simulation-speed
// optimization, invisible in every counter the tables report.
func TestAccessMemoEquivalence(t *testing.T) {
	traces := map[string]func(i int) uint64{
		// Contiguous 8-byte sweep: the fast path's target.
		"sweep": func(i int) uint64 { return uint64(i) * 8 },
		// Strided accesses crossing lines every iteration.
		"strided": func(i int) uint64 { return uint64(i) * 96 },
		// Repeated same address.
		"pinned": func(i int) uint64 { return 0x4000 },
		// Pseudo-random: an LCG over a 1 MB region.
		"random": func(i int) uint64 {
			x := uint64(i)*6364136223846793005 + 1442695040888963407
			return (x >> 11) % (1 << 20)
		},
		// Two interleaved sweeps (ping-pong defeats the memo but must
		// still agree).
		"pingpong": func(i int) uint64 {
			if i%2 == 0 {
				return uint64(i) * 4
			}
			return 1<<19 + uint64(i)*4
		},
	}
	for name, trace := range traces {
		fast := NewSystem(SP2Params())
		ref := NewSystem(SP2Params())
		ref.noMemo = true
		for i := 0; i < 20000; i++ {
			a := trace(i)
			if cf, cr := fast.Access(a), ref.Access(a); cf != cr {
				t.Fatalf("%s: access %d at %#x: fast cost %v != reference %v", name, i, a, cf, cr)
			}
		}
		if fast.Stats() != ref.Stats() {
			t.Errorf("%s: stats diverged: fast %+v, reference %+v", name, fast.Stats(), ref.Stats())
		}
	}
}

// TestAccessMemoEquivalenceRandomized complements the fixed traces with
// quick.Check-driven address sequences.
func TestAccessMemoEquivalenceRandomized(t *testing.T) {
	f := func(addrs []uint16) bool {
		fast := NewSystem(AlphaParams())
		ref := NewSystem(AlphaParams())
		ref.noMemo = true
		for _, a16 := range addrs {
			// Repeat each address a few times so same-line runs occur.
			for r := 0; r < 3; r++ {
				a := uint64(a16) * 8
				if fast.Access(a) != ref.Access(a) {
					return false
				}
			}
		}
		return fast.Stats() == ref.Stats()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAccessStride8Equivalence drives span accesses and an elementwise
// reference in lockstep and requires bit-identical costs, counters, and
// subsequent behavior (the final LRU state must match too, which the
// trailing probe accesses expose).
func TestAccessStride8Equivalence(t *testing.T) {
	for _, params := range []Params{SP2Params(), AlphaParams()} {
		fast := NewSystem(params)
		ref := NewSystem(params)
		spans := []struct {
			addr uint64
			cnt  int
		}{
			{0, 1}, {0, 7}, {8, 8}, {24, 1000}, {8000, 64}, // page-crossing
			{1 << 20, 4096}, {40, 3}, {48, 3}, {0, 2048},   // re-sweep
		}
		for _, sp := range spans {
			cf := fast.AccessStride8(sp.addr, sp.cnt)
			var cr sim.Time
			for i := 0; i < sp.cnt; i++ {
				cr += ref.Access(sp.addr + uint64(i)*8)
			}
			if cf != cr {
				t.Fatalf("span (%#x,%d): cost %v != elementwise %v", sp.addr, sp.cnt, cf, cr)
			}
			if fast.Stats() != ref.Stats() {
				t.Fatalf("span (%#x,%d): stats %+v != %+v", sp.addr, sp.cnt, fast.Stats(), ref.Stats())
			}
		}
		// Probe addresses that collide with swept sets: any divergence in
		// replacement state shows up as differing hit/miss outcomes.
		for i := 0; i < 4096; i++ {
			a := uint64(i) * 4096
			if fast.Access(a) != ref.Access(a) {
				t.Fatalf("probe %d: replacement state diverged", i)
			}
		}
		if fast.Stats() != ref.Stats() {
			t.Fatalf("post-probe stats diverged: %+v != %+v", fast.Stats(), ref.Stats())
		}
	}
}

// TestAccessStride8EquivalenceRandomized complements the fixed spans with
// quick.Check-driven (addr, cnt) sequences.
func TestAccessStride8EquivalenceRandomized(t *testing.T) {
	f := func(spans []uint16) bool {
		fast := NewSystem(SP2Params())
		ref := NewSystem(SP2Params())
		for _, s16 := range spans {
			addr := uint64(s16&0x0fff) * 8
			cnt := int(s16>>12) + 1
			var cr sim.Time
			cf := fast.AccessStride8(addr, cnt)
			for i := 0; i < cnt; i++ {
				cr += ref.Access(addr + uint64(i)*8)
			}
			if cf != cr || fast.Stats() != ref.Stats() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInstrTouchCycleEquivalence checks the bulk instruction-fetch cycle
// against the per-access rotating InstrTouch sequence: identical costs,
// miss counts, and — via interleaved competing touches that depend on the
// I-TLB's LRU stamps — identical replacement state.
func TestInstrTouchCycleEquivalence(t *testing.T) {
	for _, mod := range []int{1, 2, 3, 5, 8} {
		fast := NewSystem(SP2Params())
		ref := NewSystem(SP2Params())
		rot := 0
		base := uint64(2 << 40)
		for step, cnt := range []int{1, 3, 7, 100, 2, 5000, 1, 12, 999} {
			cf := fast.InstrTouchCycle(base, mod, rot, cnt)
			var cr sim.Time
			for i := 1; i <= cnt; i++ {
				cr += ref.InstrTouch(base + uint64(rot+i)%uint64(mod))
			}
			rot += cnt
			if cf != cr {
				t.Fatalf("mod=%d step=%d: cost %v != elementwise %v", mod, step, cf, cr)
			}
			if fast.Stats() != ref.Stats() {
				t.Fatalf("mod=%d step=%d: stats %+v != %+v", mod, step, fast.Stats(), ref.Stats())
			}
			// Interleave competing code pages (another phase's footprint,
			// same sets): evictions depend on the stamps the bulk path
			// synthesized, so stale stamps would diverge here.
			for k := uint64(0); k < 5; k++ {
				if fast.InstrTouch(1<<41+k) != ref.InstrTouch(1<<41+k) {
					t.Fatalf("mod=%d step=%d: competing touch %d diverged", mod, step, k)
				}
			}
		}
	}
}
