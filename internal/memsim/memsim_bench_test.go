package memsim

import "testing"

// Memory-access simulation dominates user-time charging: every shared
// read/write runs one Access. The sweep benchmark measures the
// contiguous fast path (typed-array traversals, page/twin copies); the
// strided and random benchmarks measure the full tag-array walk.

func benchmarkAccess(b *testing.B, next func(i int) uint64) {
	s := NewSystem(SP2Params())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(next(i))
	}
}

func BenchmarkAccessSweep(b *testing.B) {
	benchmarkAccess(b, func(i int) uint64 { return uint64(i%(1<<20)) * 8 })
}

func BenchmarkAccessStrided(b *testing.B) {
	benchmarkAccess(b, func(i int) uint64 { return uint64(i%(1<<14)) * 96 })
}

func BenchmarkAccessRandom(b *testing.B) {
	benchmarkAccess(b, func(i int) uint64 {
		x := uint64(i)*6364136223846793005 + 1442695040888963407
		return (x >> 11) % (1 << 20)
	})
}

func BenchmarkAccessRange(b *testing.B) {
	s := NewSystem(SP2Params())
	b.SetBytes(8 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AccessRange(uint64(i%16)<<13, 8<<10)
	}
}
