// Package memsim models each node's memory hierarchy: a set-associative
// data cache, a set-associative data TLB, and an instruction TLB driven by
// a synthetic code-footprint model. It produces the D-cache / D-TLB /
// I-TLB miss counts of the paper's Figure 2 and charges hit and miss costs
// into simulated user time.
//
// The paper measured Figure 2 on an IBM SP-2 (64 KB per-processor caches,
// CVM forced to the Alpha's 8 KB page size); SP2Params reproduces that
// geometry. The I-TLB model is synthetic — a simulation has no instruction
// stream — and works from per-thread phase footprints: every access touches
// the pages of the thread's current code phase, and every thread switch
// touches scheduler code, so I-TLB pressure grows with switching exactly as
// the paper observes.
package memsim

import "cvm/internal/sim"

// Params describes one node's memory system.
type Params struct {
	CacheSize int // data cache capacity in bytes
	LineSize  int // cache line size in bytes
	CacheWays int // data cache associativity

	PageSize int // virtual memory page size in bytes
	DTLBSets int // data TLB sets
	DTLBWays int // data TLB associativity
	ITLBSets int // instruction TLB sets
	ITLBWays int // instruction TLB associativity

	HitCost      sim.Time // charged on every access (load/store + ALU work)
	CacheMissPen sim.Time // extra on a data cache miss
	TLBMissPen   sim.Time // extra on a data TLB miss
	ITLBMissPen  sim.Time // extra on an instruction TLB miss
}

// SP2Params models the paper's SP-2 configuration: 64 KB data cache and
// the Alpha's 8 KB pages forced as the coherence and paging unit.
func SP2Params() Params {
	return Params{
		// Geometry is scaled below the SP-2's physical 64 KB cache and
		// 512-entry TLB in proportion to the reduced default input
		// sizes, so locality effects (Figure 2) appear at the same
		// relative working-set pressure the paper measured.
		CacheSize:    32 << 10,
		LineSize:     64,
		CacheWays:    4,
		PageSize:     8 << 10,
		DTLBSets:     8,
		DTLBWays:     2,
		ITLBSets:     4,
		ITLBWays:     2,
		HitCost:      50 * sim.Nanosecond,
		CacheMissPen: 200 * sim.Nanosecond,
		TLBMissPen:   350 * sim.Nanosecond,
		ITLBMissPen:  350 * sim.Nanosecond,
	}
}

// AlphaParams models one Alpha 2100 4/275 processor: 16 KB direct-mapped
// first-level cache and 8 KB pages. (The 4 MB second-level cache is not
// modeled; first-level misses dominate the locality effects of interest.)
func AlphaParams() Params {
	p := SP2Params()
	p.CacheSize = 16 << 10
	p.LineSize = 32
	p.CacheWays = 1
	return p
}

// Stats holds cumulative counters for one node's memory system.
type Stats struct {
	Accesses     int64
	DCacheMisses int64
	DTLBMisses   int64
	ITLBMisses   int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.DCacheMisses += other.DCacheMisses
	s.DTLBMisses += other.DTLBMisses
	s.ITLBMisses += other.ITLBMisses
}

// assoc is a set-associative tag array with per-set LRU replacement. It
// backs both the cache and the TLBs. The tag and stamp arrays are slices
// of one shared backing array (see System.Init), so a whole hierarchy
// costs a single allocation.
type assoc struct {
	sets  int
	ways  int
	tags  []uint64 // sets*ways entries; tag 0 means empty (tags stored +1)
	stamp []uint64 // LRU stamps, parallel to tags
	tick  uint64
}

func (a *assoc) init(sets, ways int, backing []uint64) {
	n := sets * ways
	a.sets = sets
	a.ways = ways
	a.tags = backing[:n:n]
	a.stamp = backing[n : 2*n : 2*n]
}

// touch looks up key; it returns true on hit. On miss the LRU way of the
// set is replaced.
func (a *assoc) touch(key uint64) bool {
	set := int(key % uint64(a.sets))
	base := set * a.ways
	a.tick++
	stored := key + 1
	victim := base
	for i := base; i < base+a.ways; i++ {
		if a.tags[i] == stored {
			a.stamp[i] = a.tick
			return true
		}
		if a.stamp[i] < a.stamp[victim] {
			victim = i
		}
	}
	a.tags[victim] = stored
	a.stamp[victim] = a.tick
	return false
}

// find returns the way index currently holding key, or -1.
func (a *assoc) find(key uint64) int {
	set := int(key % uint64(a.sets))
	stored := key + 1
	for i := set * a.ways; i < (set+1)*a.ways; i++ {
		if a.tags[i] == stored {
			return i
		}
	}
	return -1
}

// System simulates one node's memory hierarchy. The zero value is not
// ready for use; construct with NewSystem or embed and call Init.
type System struct {
	params Params
	dcache assoc
	dtlb   assoc
	itlb   assoc
	stats  Stats

	lineShift uint
	pageShift uint

	// lastLine/lastPage memoize the previous data access for the
	// contiguous-sweep fast path (see Access). noMemo disables the fast
	// path; equivalence tests use it to check miss counts are identical.
	lastLine uint64
	lastPage uint64
	noMemo   bool
}

// invalidLine is a line tag no real access can produce (addresses are
// below 2^42), marking the memo empty.
const invalidLine = ^uint64(0)

// NewSystem returns a memory system with the given geometry.
func NewSystem(p Params) *System {
	s := new(System)
	s.Init(p)
	return s
}

// Init configures s in place with the given geometry, replacing any
// previous state. It exists so a System can be embedded by value in a
// larger per-node structure; the whole hierarchy then costs one backing
// allocation.
func (s *System) Init(p Params) {
	cacheSets := p.CacheSize / (p.LineSize * p.CacheWays)
	nc := cacheSets * p.CacheWays
	nd := p.DTLBSets * p.DTLBWays
	ni := p.ITLBSets * p.ITLBWays
	backing := make([]uint64, 2*(nc+nd+ni))
	*s = System{
		params:    p,
		lineShift: log2(p.LineSize),
		pageShift: log2(p.PageSize),
		lastLine:  invalidLine,
	}
	s.dcache.init(cacheSets, p.CacheWays, backing[:2*nc])
	s.dtlb.init(p.DTLBSets, p.DTLBWays, backing[2*nc:2*(nc+nd)])
	s.itlb.init(p.ITLBSets, p.ITLBWays, backing[2*(nc+nd):])
}

// Params returns the system's geometry.
func (s *System) Params() Params { return s.params }

// Stats returns a snapshot of the miss counters.
func (s *System) Stats() Stats { return s.stats }

// ResetStats zeroes the counters (cache and TLB contents are kept).
func (s *System) ResetStats() { s.stats = Stats{} }

// Access simulates one data access at the given virtual address and
// returns the time cost to charge to the accessing thread.
//
// Consecutive accesses to the same cache line take a batched fast path:
// the previous access left the line resident and its page mapped, so the
// access is a guaranteed double hit and the set-associative LRU walks are
// skipped. A contiguous typed-array sweep therefore pays the tag-array
// simulation once per line rather than once per element. Miss counts and
// charged costs are bit-identical to the slow path (skipping a touch of
// the just-touched — and therefore most-recent — way preserves the
// relative LRU order of every set; TestAccessMemoEquivalence checks this
// against the memo-disabled reference).
func (s *System) Access(addr uint64) sim.Time {
	line := addr >> s.lineShift
	pg := addr >> s.pageShift
	if line == s.lastLine && pg == s.lastPage && !s.noMemo {
		s.stats.Accesses++
		return s.params.HitCost
	}
	s.lastLine = line
	s.lastPage = pg
	s.stats.Accesses++
	cost := s.params.HitCost
	if !s.dcache.touch(line) {
		s.stats.DCacheMisses++
		cost += s.params.CacheMissPen
	}
	if !s.dtlb.touch(pg) {
		s.stats.DTLBMisses++
		cost += s.params.TLBMissPen
	}
	return cost
}

// AccessStride8 simulates cnt sequential 8-byte data accesses starting at
// addr (a typed-array span) and returns the total cost. Counters, costs,
// and replacement state are bit-identical to cnt scalar Access calls:
// after the first access of a cache line, the scalar path's remaining
// accesses in that line are guaranteed memo hits (same line, same page),
// so their effect — Accesses++ and HitCost each, no tag-array activity —
// is applied in bulk without re-running the per-access checks.
func (s *System) AccessStride8(addr uint64, cnt int) sim.Time {
	if s.noMemo || s.lineShift < 3 || s.pageShift < s.lineShift {
		// Geometry where same-line does not imply the memo shortcut;
		// replay the scalar sequence.
		var cost sim.Time
		for i := 0; i < cnt; i++ {
			cost += s.Access(addr + uint64(i)*8)
		}
		return cost
	}
	var cost sim.Time
	line := uint64(s.params.LineSize)
	for cnt > 0 {
		lineEnd := (addr &^ (line - 1)) + line
		k := int((lineEnd - addr + 7) / 8)
		if k > cnt {
			k = cnt
		}
		cost += s.Access(addr)
		if k > 1 {
			s.stats.Accesses += int64(k - 1)
			cost += sim.Time(k-1) * s.params.HitCost
		}
		addr += uint64(k) * 8
		cnt -= k
	}
	return cost
}

// AccessRange simulates a sequential multi-byte access (e.g. a block copy)
// touching every line in [addr, addr+n).
func (s *System) AccessRange(addr uint64, n int) sim.Time {
	var cost sim.Time
	line := uint64(s.params.LineSize)
	first := addr &^ (line - 1)
	for a := first; a < addr+uint64(n); a += line {
		cost += s.Access(a)
	}
	return cost
}

// InstrTouch simulates instruction fetch from the given synthetic code
// page and returns the cost to charge (zero on an I-TLB hit).
func (s *System) InstrTouch(codePage uint64) sim.Time {
	if s.itlb.touch(codePage) {
		return 0
	}
	s.stats.ITLBMisses++
	return s.params.ITLBMissPen
}

// InstrTouchCycle simulates cnt instruction fetches cycling through a
// phase's code pages — page base + (start+i) % mod for i = 1..cnt — and
// returns the total cost. It is the bulk form of the per-access rotating
// InstrTouch in a thread's charge loop, bit-identical in miss counts,
// costs, tick, and per-entry LRU stamps: after one full warm cycle every
// code page is resident, and since hits evict nothing, the remaining
// touches are all hits whose only effect is advancing the LRU clock and
// refreshing each page's stamp to its final touch time.
func (s *System) InstrTouchCycle(base uint64, mod, start, cnt int) sim.Time {
	if mod <= 0 || cnt <= 0 {
		return 0
	}
	if cnt <= 2*mod || !s.itlbCycleSafe(mod) {
		var cost sim.Time
		for i := 1; i <= cnt; i++ {
			cost += s.InstrTouch(base + uint64(start+i)%uint64(mod))
		}
		return cost
	}
	tick0 := s.itlb.tick
	var cost sim.Time
	for i := 1; i <= mod; i++ {
		cost += s.InstrTouch(base + uint64(start+i)%uint64(mod))
	}
	// The remaining cnt-mod touches are guaranteed hits; replay their
	// tick and stamp effects in bulk.
	s.itlb.tick = tick0 + uint64(cnt)
	for c := 0; c < mod; c++ {
		// Last step i in 1..cnt with (start+i) % mod == c.
		last := cnt - (start+cnt-c)%mod
		if w := s.itlb.find(base + uint64(c)); w >= 0 {
			s.itlb.stamp[w] = tick0 + uint64(last)
		}
	}
	return cost
}

// itlbCycleSafe reports whether mod consecutive code pages fit in the
// I-TLB without self-eviction: no set receives more cycle pages than it
// has ways. Consecutive keys spread round-robin over sets, so the
// per-set population is at most ceil(mod/sets).
func (s *System) itlbCycleSafe(mod int) bool {
	sets := s.itlb.sets
	return (mod+sets-1)/sets <= s.itlb.ways
}

func log2(n int) uint {
	var b uint
	for 1<<b < n {
		b++
	}
	return b
}
