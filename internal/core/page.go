package core

// PageID indexes an 8 KB coherence unit within the shared address space.
type PageID int32

// Addr is a byte offset into the shared address space. All nodes see the
// same addresses; each node keeps its own (possibly stale) copy of every
// page it has touched.
type Addr int64

// PageState is a node's current access right to one page, the software
// equivalent of the mprotect-managed protection CVM used.
type PageState uint8

// Page states.
const (
	// PageInvalid: write notices for unseen intervals are pending; any
	// access faults and fetches the missing diffs.
	PageInvalid PageState = iota
	// PageReadOnly: contents are current; a write faults locally to
	// create a twin.
	PageReadOnly
	// PageReadWrite: the node holds a twin and is collecting writes.
	PageReadWrite
)

// String returns a short name for the state.
func (s PageState) String() string {
	switch s {
	case PageInvalid:
		return "invalid"
	case PageReadOnly:
		return "readonly"
	case PageReadWrite:
		return "readwrite"
	default:
		return "unknown"
	}
}

// page is one node's view of a shared page.
type page struct {
	id    PageID
	state PageState

	// data is the local copy; nil means the page has never been
	// materialized locally and reads as zeros.
	data []byte

	// twin is a snapshot from the first write access of the current
	// write-collection episode; diffs are computed against it.
	twin []byte

	// openDirty reports whether the page is in the open interval's dirty
	// list (a write notice will be emitted when the interval closes).
	openDirty bool

	// applied[n] is the highest interval index of node n whose
	// modifications are reflected in data. wanted[n] is the highest
	// index named by a received write notice. The page is consistent
	// when applied covers wanted for every node.
	applied []int32
	wanted  []int32

	// diffs holds the diffs this node created for the page, ascending by
	// interval index (the storage serveDiffRequest answers from).
	diffs []*Diff

	// fault is the in-flight remote fetch for this page, if any
	// (lazy-multi-writer protocol).
	fault *faultState

	// swf is the in-flight directory transaction, if any (single-writer
	// protocol).
	swf *swFault
}

// consistent reports whether every write notice received for the page has
// been applied.
func (p *page) consistent() bool {
	for i := range p.wanted {
		if p.applied[i] > p.wanted[i] {
			continue
		}
		if p.wanted[i] > p.applied[i] {
			return false
		}
	}
	return true
}

// missingFrom returns the nodes holding diffs this node still needs,
// with the (from, to] interval ranges to request.
func (p *page) missingFrom() []diffRange {
	var out []diffRange
	for n := range p.wanted {
		if p.wanted[n] > p.applied[n] {
			out = append(out, diffRange{node: n, from: p.applied[n], to: p.wanted[n]})
		}
	}
	return out
}

// diffRange names the diffs of one writer node needed to validate a page.
type diffRange struct {
	node     int
	from, to int32 // half-open (from, to]
}
