package core

// PageID indexes an 8 KB coherence unit within the shared address space.
type PageID int32

// Addr is a byte offset into the shared address space. All nodes see the
// same addresses; each node keeps its own (possibly stale) copy of every
// page it has touched.
type Addr int64

// PageState is a node's current access right to one page, the software
// equivalent of the mprotect-managed protection CVM used.
type PageState uint8

// Page states.
const (
	// PageInvalid: write notices for unseen intervals are pending; any
	// access faults and fetches the missing diffs.
	PageInvalid PageState = iota
	// PageReadOnly: contents are current; a write faults locally to
	// create a twin.
	PageReadOnly
	// PageReadWrite: the node holds a twin and is collecting writes.
	PageReadWrite
)

// String returns a short name for the state.
func (s PageState) String() string {
	switch s {
	case PageInvalid:
		return "invalid"
	case PageReadOnly:
		return "readonly"
	case PageReadWrite:
		return "readwrite"
	default:
		return "unknown"
	}
}

// page is one node's view of a shared page.
type page struct {
	id    PageID
	state PageState

	// data is the local copy; nil means the page has never been
	// materialized locally and reads as zeros.
	data []byte

	// twin is a snapshot from the first write access of the current
	// write-collection episode; diffs are computed against it.
	twin []byte

	// openDirty reports whether the page is in the open interval's dirty
	// list (a write notice will be emitted when the interval closes).
	openDirty bool

	// writers tracks, per remote writer that has ever been named by a
	// write notice for this page, the highest interval index applied to
	// data and the highest index wanted by a received notice. The page
	// is consistent when applied covers wanted for every writer. Entries
	// are sorted ascending by node and only exist for actual writers, so
	// a page with two writers costs two entries regardless of cluster
	// size (the dense per-node vectors this replaces cost O(nodes) per
	// page per node).
	writers []pageWriter

	// diffs holds the diffs this node created for the page, ascending by
	// interval index (the storage serveDiffRequest answers from).
	diffs []*Diff

	// fault is the in-flight remote fetch for this page, if any
	// (lazy-multi-writer protocol).
	fault *faultState

	// swf is the in-flight directory transaction, if any (single-writer
	// protocol).
	swf *swFault
}

// pageWriter is one remote writer's interval coverage on one page.
type pageWriter struct {
	node    int32
	applied int32 // highest interval index reflected in data
	wanted  int32 // highest interval index named by a write notice
}

// writer returns the tracking entry for the given writer node, inserting
// a zero entry (keeping writers sorted by node) if none exists. The scan
// is linear: pages rarely have more than a handful of writers.
func (p *page) writer(node int) *pageWriter {
	i := 0
	for ; i < len(p.writers); i++ {
		if int(p.writers[i].node) >= node {
			break
		}
	}
	if i < len(p.writers) && int(p.writers[i].node) == node {
		return &p.writers[i]
	}
	p.writers = append(p.writers, pageWriter{})
	copy(p.writers[i+1:], p.writers[i:])
	p.writers[i] = pageWriter{node: int32(node)}
	return &p.writers[i]
}

// consistent reports whether every write notice received for the page has
// been applied.
func (p *page) consistent() bool {
	for i := range p.writers {
		if p.writers[i].wanted > p.writers[i].applied {
			return false
		}
	}
	return true
}

// missingFrom returns the nodes holding diffs this node still needs,
// with the (from, to] interval ranges to request. Entries come out
// ascending by node because writers is sorted.
func (p *page) missingFrom() []diffRange {
	var out []diffRange
	for i := range p.writers {
		w := &p.writers[i]
		if w.wanted > w.applied {
			out = append(out, diffRange{node: int(w.node), from: w.applied, to: w.wanted})
		}
	}
	return out
}

// diffRange names the diffs of one writer node needed to validate a page.
type diffRange struct {
	node     int
	from, to int32 // half-open (from, to]
}
