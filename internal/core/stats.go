package core

import "cvm/internal/sim"

// Block reasons for idle-time attribution, matching Figure 1's breakdown.
const (
	// ReasonFault marks a thread waiting on a remote page fetch.
	ReasonFault sim.Reason = 1 + iota
	// ReasonLock marks a thread waiting on a lock acquire.
	ReasonLock
	// ReasonBarrier marks a thread waiting at a global or local barrier.
	ReasonBarrier
)

// NodeStats are the per-node counters behind Tables 2, 3 and 5 and the
// time breakdown behind Figure 1.
type NodeStats struct {
	// DSM actions (Table 3).
	ThreadSwitches    int64 // useful thread switches
	RemoteFaults      int64 // faults requiring network communication
	LocalFaults       int64 // write faults resolved locally (twin creation)
	RemoteLocks       int64 // lock acquires requiring network communication
	LocalLockAcquires int64 // acquires satisfied by the cached token or local queue
	OutstandingFaults int64 // outstanding remote faults sampled at each request
	OutstandingLocks  int64 // outstanding remote lock requests sampled likewise
	BlockSamePage     int64 // threads blocking on an already-pending page fetch
	BlockSameLock     int64 // threads blocking on a locally held/requested lock
	DiffsCreated      int64 // diffs materialized at this node
	DiffsUsed         int64 // diffs applied at this node
	RacesDetected     int64 // overlapping concurrent diffs (Config.DetectRaces)

	// Reliable-transport counters (all zero on a fault-free run):
	// retransmissions sent by this node and replayed deliveries this node
	// suppressed as duplicates.
	Retransmits    int64
	DupsSuppressed int64

	// Adaptive-coherence counters (all zero with Config.Adapt and
	// Config.Migrate off): applied mode-change notices, eager diff pushes
	// sent and fault ranges they satisfied, exclusive-window closes,
	// whole-page fetches from exclusive owners, and threads received by
	// migration.
	ModeChanges      int64
	UpdatePushes     int64
	UpdateHits       int64
	ExclWindowCloses int64
	FullFetches      int64
	Migrations       int64

	// Time breakdown (Figure 1): user time includes all local consistency
	// work; the waits are non-overlapped (node fully idle).
	UserTime    sim.Time
	FaultWait   sim.Time
	LockWait    sim.Time
	BarrierWait sim.Time
}

// Wall reports the sum of the four Figure 1 components.
func (s NodeStats) Wall() sim.Time {
	return s.UserTime + s.FaultWait + s.LockWait + s.BarrierWait
}

// Add accumulates other into s.
func (s *NodeStats) Add(other NodeStats) {
	s.ThreadSwitches += other.ThreadSwitches
	s.RemoteFaults += other.RemoteFaults
	s.LocalFaults += other.LocalFaults
	s.RemoteLocks += other.RemoteLocks
	s.LocalLockAcquires += other.LocalLockAcquires
	s.OutstandingFaults += other.OutstandingFaults
	s.OutstandingLocks += other.OutstandingLocks
	s.BlockSamePage += other.BlockSamePage
	s.BlockSameLock += other.BlockSameLock
	s.DiffsCreated += other.DiffsCreated
	s.DiffsUsed += other.DiffsUsed
	s.RacesDetected += other.RacesDetected
	s.Retransmits += other.Retransmits
	s.DupsSuppressed += other.DupsSuppressed
	s.ModeChanges += other.ModeChanges
	s.UpdatePushes += other.UpdatePushes
	s.UpdateHits += other.UpdateHits
	s.ExclWindowCloses += other.ExclWindowCloses
	s.FullFetches += other.FullFetches
	s.Migrations += other.Migrations
	s.UserTime += other.UserTime
	s.FaultWait += other.FaultWait
	s.LockWait += other.LockWait
	s.BarrierWait += other.BarrierWait
}
