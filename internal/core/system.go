package core

import (
	"errors"
	"fmt"
	"sync"

	"cvm/internal/memsim"
	"cvm/internal/metrics"
	"cvm/internal/netsim"
	"cvm/internal/sim"
	"cvm/internal/trace"
)

// Config parameterizes a simulated CVM cluster.
type Config struct {
	Nodes          int // processors (one per node, as in the paper)
	ThreadsPerNode int // application threads multiplexed per node

	// Protocol selects the coherence protocol: the paper's lazy
	// multi-writer release consistency (default) or the single-writer
	// write-invalidate baseline.
	Protocol Protocol

	PageSize int // coherence unit; the paper uses the Alpha's 8 KB pages

	Net netsim.Params // interconnect costs
	Mem memsim.Params // cache/TLB geometry and costs

	SwitchCost   sim.Time // non-preemptive thread switch (paper: 8 µs)
	SignalCost   sim.Time // user-level SIGSEGV delivery (paper: 98 µs)
	MprotectCost sim.Time // one protection change (paper: 49 µs)

	LockLocalCost    sim.Time // local lock fast path bookkeeping
	LocalBarrierCost sim.Time // local barrier release bookkeeping
	DiffServeCost    sim.Time // handler time to serve a stored diff
	DiffCreateCost   sim.Time // extra handler time to materialize a diff

	// DetectRaces enables the multi-writer data-race detector: the paper
	// notes that "concurrent diffs only overlap if the same location is
	// written by multiple processors without intervening synchronization,
	// which is probably a data race". With this set, every fault compares
	// concurrent incoming diffs pairwise and counts overlaps in
	// NodeStats.RacesDetected (quadratic in diffs per fault; off by
	// default).
	DetectRaces bool

	// LIFOScheduler selects the memory-conscious run-queue discipline
	// the paper proposes in §5 ("closer to LIFO than FIFO"): the most
	// recently readied thread runs first, preserving its cache and TLB
	// state. CVM's original scheduler — and the default here — is FIFO.
	LIFOScheduler bool

	// Tracer, when non-nil, receives every protocol and network event
	// (faults, twins/diffs, lock and barrier steps, thread scheduling,
	// message send/deliver) with virtual timestamps. The hot paths guard
	// each emission with a nil check, so a nil Tracer costs one branch
	// and no allocation. Use trace.NewRecorder and the trace exporters
	// to capture and analyze a run.
	Tracer trace.Tracer

	// Metrics, when non-nil, collects virtual-time histograms, per-page
	// and per-lock wait attribution, and the utilization timeline. Like
	// Tracer, every hot-path observation sits behind a nil check, so a
	// nil Metrics costs one branch and no allocation, and observing
	// never advances virtual time — results are bit-identical with
	// metrics on or off. A Registry serves exactly one System.
	Metrics *metrics.Registry

	// Faults, when non-nil and active, injects deterministic failures:
	// network drops/duplications/reordering/jitter (routed through the
	// reliable transport so the protocol still completes correctly) and
	// node pause/slowdown windows. nil means a perfectly reliable
	// cluster, with zero added cost on any hot path. The same *FaultPlan
	// may be shared across concurrently constructed systems — it is
	// read-only.
	Faults *FaultPlan
}

// DefaultConfig returns the paper's cluster calibration for the given
// shape: Alpha-like memory geometry, ATM-like interconnect, 8 µs thread
// switches.
func DefaultConfig(nodes, threadsPerNode int) Config {
	return Config{
		Nodes:            nodes,
		ThreadsPerNode:   threadsPerNode,
		PageSize:         8 << 10,
		Net:              netsim.DefaultParams(),
		Mem:              memsim.SP2Params(),
		SwitchCost:       8 * sim.Microsecond,
		SignalCost:       98 * sim.Microsecond,
		MprotectCost:     49 * sim.Microsecond,
		LockLocalCost:    3 * sim.Microsecond,
		LocalBarrierCost: 5 * sim.Microsecond,
		DiffServeCost:    10 * sim.Microsecond,
		DiffCreateCost:   40 * sim.Microsecond,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return errors.New("core: Nodes must be ≥ 1")
	case c.ThreadsPerNode < 1:
		return errors.New("core: ThreadsPerNode must be ≥ 1")
	case c.PageSize < 64 || c.PageSize&(c.PageSize-1) != 0:
		return fmt.Errorf("core: PageSize %d must be a power of two ≥ 64", c.PageSize)
	}
	return nil
}

// Segment names an allocated shared-memory region.
type Segment struct {
	Name string
	Base Addr
	Size int
}

// System is a simulated CVM cluster: the engine, network, per-node
// memory systems, DSM state, and the application threads.
type System struct {
	cfg       Config
	eng       *sim.Engine
	net       *netsim.Network
	nodes     []*node
	pageShift uint

	segments  []Segment
	allocated Addr

	episodes       map[int]*barrierEpisode
	reduceEpisodes map[int]*reduceEpisode

	threadByTask map[int]*Thread
	started      bool
	t0           sim.Time

	// tracer mirrors cfg.Tracer; hot paths nil-check this field.
	tracer trace.Tracer

	// met mirrors cfg.Metrics; hot paths nil-check the per-node
	// *metrics.NodeMetrics instead where one exists.
	met *metrics.Registry

	// transport is the reliable message envelope, non-nil only when
	// cfg.Faults enables network faults; every protocol send checks it
	// via the sendFromTask/sendFromHandler wrappers.
	transport *transport

	// pageBufs recycles page-sized byte buffers. Twins churn hardest —
	// one allocation per write-collection episode per page — and every
	// closed interval frees one; page copies draw from the same pool.
	pageBufs sync.Pool
}

// newPageBuf returns a page-sized buffer, zeroed when zero is set
// (materialized pages must read as zeros; twins are fully overwritten by
// the caller and skip the clear).
func (s *System) newPageBuf(zero bool) []byte {
	if v := s.pageBufs.Get(); v != nil {
		buf := v.([]byte)
		if zero {
			clear(buf)
		}
		return buf
	}
	return make([]byte, s.cfg.PageSize)
}

// recyclePageBuf returns a buffer to the pool. Callers must drop every
// alias first (diff runs copy their data out, so twins are safe).
func (s *System) recyclePageBuf(buf []byte) {
	if len(buf) == s.cfg.PageSize {
		s.pageBufs.Put(buf)
	}
}

// NewSystem builds a cluster from cfg.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mem.PageSize != cfg.PageSize {
		cfg.Mem.PageSize = cfg.PageSize
	}
	eng := sim.NewEngine()
	s := &System{
		cfg:            cfg,
		eng:            eng,
		net:            netsim.New(eng, cfg.Nodes, cfg.Net),
		pageShift:      log2(cfg.PageSize),
		episodes:       make(map[int]*barrierEpisode),
		reduceEpisodes: make(map[int]*reduceEpisode),
		threadByTask:   make(map[int]*Thread),
		tracer:         cfg.Tracer,
		met:            cfg.Metrics,
	}
	s.net.SetTracer(cfg.Tracer)
	if s.met != nil {
		classes := netsim.Classes()
		names := make([]string, len(classes))
		for i, c := range classes {
			names[i] = c.String()
		}
		s.met.Configure(cfg.Nodes, names)
		s.net.SetMetrics(s.met.Net())
	}
	for i := 0; i < cfg.Nodes; i++ {
		proc := eng.AddProc(cfg.SwitchCost)
		proc.SetLIFO(cfg.LIFOScheduler)
		mem := memsim.NewSystem(cfg.Mem)
		s.nodes = append(s.nodes, newNode(s, i, proc, mem))
	}
	if fp := cfg.Faults; fp != nil {
		if err := fp.Validate(cfg.Nodes); err != nil {
			return nil, err
		}
		if fp.Net.Active() {
			net := fp.Net // private copy; the plan may be shared across systems
			s.net.SetFaults(&net)
			if s.met != nil {
				s.net.SetFaultCounters(s.met.FaultCounters())
			}
			s.transport = newTransport(s, fp.RTO, fp.MaxRetries)
		}
		for _, p := range fp.Pauses {
			s.nodes[p.Node].proc.InjectPause(p.From, p.To)
		}
		for _, sl := range fp.Slowdowns {
			s.nodes[sl.Node].proc.InjectSlowdown(sl.From, sl.To, sl.Factor)
		}
	}
	eng.SetReasonNamer(reasonName)
	return s, nil
}

// reasonName names the core block reasons in engine deadlock reports.
func reasonName(r sim.Reason) string {
	switch r {
	case ReasonFault:
		return "fault"
	case ReasonLock:
		return "lock"
	case ReasonBarrier:
		return "barrier"
	default:
		return fmt.Sprintf("%d", int(r))
	}
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Engine exposes the underlying simulator (for tests and tools).
func (s *System) Engine() *sim.Engine { return s.eng }

// Network exposes the simulated interconnect (for traffic statistics).
func (s *System) Network() *netsim.Network { return s.net }

// Alloc reserves a page-aligned shared segment and returns its base
// address. All allocation must happen before Start.
func (s *System) Alloc(name string, size int) (Addr, error) {
	if s.started {
		return 0, errors.New("core: Alloc after Start")
	}
	if size <= 0 {
		return 0, fmt.Errorf("core: Alloc %q with size %d", name, size)
	}
	base := s.allocated
	pages := (size + s.cfg.PageSize - 1) / s.cfg.PageSize
	s.allocated += Addr(pages * s.cfg.PageSize)
	s.segments = append(s.segments, Segment{Name: name, Base: base, Size: size})
	return base, nil
}

// Segments returns the allocated shared segments.
func (s *System) Segments() []Segment { return s.segments }

// Start spawns Nodes × ThreadsPerNode application threads, each running
// main. Threads are numbered contiguously per node.
func (s *System) Start(main func(*Thread)) error {
	if s.started {
		return errors.New("core: Start called twice")
	}
	s.started = true
	totalPages := int(s.allocated) >> s.pageShift
	for _, n := range s.nodes {
		n.pages = make([]*page, totalPages)
	}
	for i := 0; i < s.cfg.Nodes; i++ {
		n := s.nodes[i]
		for j := 0; j < s.cfg.ThreadsPerNode; j++ {
			th := &Thread{
				node: n,
				sys:  s,
				gid:  i*s.cfg.ThreadsPerNode + j,
				lid:  j,
			}
			name := fmt.Sprintf("n%dt%d", i, j)
			task := s.eng.Spawn(n.proc, name, func(tk *sim.Task) {
				main(th)
			})
			th.task = task
			n.threads = append(n.threads, th)
			s.threadByTask[task.ID()] = th
		}
	}
	return nil
}

// Run executes the simulation to completion. Under fault injection a
// message that exhausts its retransmission budget aborts the run with
// an error wrapping ErrTransport instead of hanging.
func (s *System) Run() (err error) {
	defer func() {
		if err != nil {
			s.eng.Shutdown()
		}
	}()
	defer func() {
		if r := recover(); r != nil {
			tf, ok := r.(*transportFailure)
			if !ok {
				panic(r)
			}
			err = tf.error()
		}
	}()
	return s.eng.Run()
}

func (s *System) threadOf(task *sim.Task) *Thread { return s.threadByTask[task.ID()] }

// MarkSteadyState zeroes every statistics counter and sets the time
// origin, so that reported results cover only the steady-state portion of
// the run. Applications call it from one thread immediately after their
// initialization barrier, mirroring the paper's exclusion of startup.
func (t *Thread) MarkSteadyState() {
	s := t.sys
	s.t0 = t.task.Now()
	s.net.ResetStats()
	for _, n := range s.nodes {
		n.stats = NodeStats{}
		n.mem.ResetStats()
	}
	if s.met != nil {
		// Metrics reset at the same instant as the statistics, so
		// histogram sums keep reconciling exactly with NodeStats.
		s.met.Reset(s.t0)
		s.net.SetMetrics(s.met.Net())
		for _, n := range s.nodes {
			n.met = s.met.Node(n.id)
		}
	}
}

// RunStats aggregates a finished run's statistics.
type RunStats struct {
	Nodes    []NodeStats // per-node DSM counters and time breakdown
	Mem      []memsim.Stats
	Net      netsim.Stats
	Total    NodeStats    // sum over nodes
	MemTotal memsim.Stats // sum over nodes
	Wall     sim.Time     // steady-state wall time (max node clock − t0)
}

// Stats collects the run's statistics. Call after Run returns.
func (s *System) Stats() RunStats {
	rs := RunStats{Net: s.net.Stats()}
	for _, n := range s.nodes {
		rs.Nodes = append(rs.Nodes, n.stats)
		rs.Total.Add(n.stats)
		ms := n.mem.Stats()
		rs.Mem = append(rs.Mem, ms)
		rs.MemTotal.Add(ms)
		if wall := n.proc.Clock() - s.t0; wall > rs.Wall {
			rs.Wall = wall
		}
	}
	return rs
}

func log2(n int) uint {
	var b uint
	for 1<<b < n {
		b++
	}
	return b
}
