package core

import (
	"errors"
	"fmt"

	"cvm/internal/memsim"
	"cvm/internal/metrics"
	"cvm/internal/netsim"
	"cvm/internal/sim"
	"cvm/internal/trace"
)

// Config parameterizes a simulated CVM cluster.
type Config struct {
	Nodes          int // processors (one per node, as in the paper)
	ThreadsPerNode int // application threads multiplexed per node

	// Protocol selects the coherence protocol: the paper's lazy
	// multi-writer release consistency (default) or the single-writer
	// write-invalidate baseline.
	Protocol Protocol

	PageSize int // coherence unit; the paper uses the Alpha's 8 KB pages

	Net netsim.Params // interconnect costs
	Mem memsim.Params // cache/TLB geometry and costs

	SwitchCost   sim.Time // non-preemptive thread switch (paper: 8 µs)
	SignalCost   sim.Time // user-level SIGSEGV delivery (paper: 98 µs)
	MprotectCost sim.Time // one protection change (paper: 49 µs)

	LockLocalCost    sim.Time // local lock fast path bookkeeping
	LocalBarrierCost sim.Time // local barrier release bookkeeping
	DiffServeCost    sim.Time // handler time to serve a stored diff
	DiffCreateCost   sim.Time // extra handler time to materialize a diff

	// DetectRaces enables the multi-writer data-race detector: the paper
	// notes that "concurrent diffs only overlap if the same location is
	// written by multiple processors without intervening synchronization,
	// which is probably a data race". With this set, every fault compares
	// concurrent incoming diffs pairwise and counts overlaps in
	// NodeStats.RacesDetected (quadratic in diffs per fault; off by
	// default).
	DetectRaces bool

	// LIFOScheduler selects the memory-conscious run-queue discipline
	// the paper proposes in §5 ("closer to LIFO than FIFO"): the most
	// recently readied thread runs first, preserving its cache and TLB
	// state. CVM's original scheduler — and the default here — is FIFO.
	LIFOScheduler bool

	// Tracer, when non-nil, receives every protocol and network event
	// (faults, twins/diffs, lock and barrier steps, thread scheduling,
	// message send/deliver) with virtual timestamps. The hot paths guard
	// each emission with a nil check, so a nil Tracer costs one branch
	// and no allocation. Use trace.NewRecorder and the trace exporters
	// to capture and analyze a run.
	Tracer trace.Tracer

	// Metrics, when non-nil, collects virtual-time histograms, per-page
	// and per-lock wait attribution, and the utilization timeline. Like
	// Tracer, every hot-path observation sits behind a nil check, so a
	// nil Metrics costs one branch and no allocation, and observing
	// never advances virtual time — results are bit-identical with
	// metrics on or off. A Registry serves exactly one System.
	Metrics *metrics.Registry

	// EngineWorkers selects the discrete-event execution mode. 0 (the
	// default) is the classic sequential global-horizon loop. Any value
	// ≥ 1 switches to the conservative windowed engine, which partitions
	// event execution by node and advances all nodes window by window,
	// with windows derived from the network's one-way latency lower
	// bound; values > 1 dispatch the nodes of each window across that
	// many OS workers. Results are byte-identical at every worker count
	// (the windowed schedule itself, not the worker count, is what can
	// shift timing relative to mode 0 — see DESIGN.md §10).
	EngineWorkers int

	// CompressDiffs switches netsim byte accounting for diff replies to
	// the compressed wire encoding (run-length + xor8 prefilter, compact
	// vector clocks — see diffwire.go) instead of the legacy fixed-width
	// form. Off by default so seed-sized baselines stay byte-identical;
	// the scaling study runs both settings to quantify the traffic win.
	// Protocol behavior is unaffected either way — only message sizes,
	// and therefore transfer times, change.
	CompressDiffs bool

	// NoPagePooling disables the per-node page-backing arena: page
	// copies and twins are freshly allocated on demand and never reuse
	// backing storage. Simulation results are identical either way; the
	// span benchmarks use it to keep the pooled and unpooled allocation
	// profiles separately measurable.
	NoPagePooling bool

	// Adapt enables per-page adaptive coherence: an online classifier
	// consumes the per-epoch fault and write-notice attribution already
	// flowing through the barrier manager, tags each page's sharing
	// pattern (private, migratory, producer-consumer, false-sharing),
	// and switches pages between the default multi-writer invalidate
	// mode, an update mode (diffs pushed eagerly to subscribers), and an
	// exclusive single-writer mode (twin/diff machinery suspended at the
	// owner). Mode changes are epoch-stamped and applied on every node
	// at barrier releases, so all nodes transition consistently. Off by
	// default; with it off no adaptive state is allocated and every run
	// is byte-identical to an unadapted build. Requires ProtocolLRC.
	Adapt bool

	// Migrate enables thread migration as a first-class scheduler
	// action: per-thread remote-access affinity counters ride barrier
	// arrivals, and the controller re-homes a thread next to its hottest
	// pages by shipping its continuation in a ClassMigrate message at a
	// barrier release. Decisions are virtual-time-driven and
	// deterministic at any EngineWorkers count. Off by default.
	// Requires ProtocolLRC. Threads that ever used LocalBarrier are
	// pinned (their node-local aggregation would break if moved).
	Migrate bool

	// AdaptTune overrides the adaptive controller's thresholds; the
	// zero value means defaults (see AdaptTuning). Ignored unless Adapt
	// or Migrate is set.
	AdaptTune AdaptTuning

	// Faults, when non-nil and active, injects deterministic failures:
	// network drops/duplications/reordering/jitter (routed through the
	// reliable transport so the protocol still completes correctly) and
	// node pause/slowdown windows. nil means a perfectly reliable
	// cluster, with zero added cost on any hot path. The same *FaultPlan
	// may be shared across concurrently constructed systems — it is
	// read-only.
	Faults *FaultPlan
}

// DefaultConfig returns the paper's cluster calibration for the given
// shape: Alpha-like memory geometry, ATM-like interconnect, 8 µs thread
// switches.
func DefaultConfig(nodes, threadsPerNode int) Config {
	return Config{
		Nodes:            nodes,
		ThreadsPerNode:   threadsPerNode,
		PageSize:         8 << 10,
		Net:              netsim.DefaultParams(),
		Mem:              memsim.SP2Params(),
		SwitchCost:       8 * sim.Microsecond,
		SignalCost:       98 * sim.Microsecond,
		MprotectCost:     49 * sim.Microsecond,
		LockLocalCost:    3 * sim.Microsecond,
		LocalBarrierCost: 5 * sim.Microsecond,
		DiffServeCost:    10 * sim.Microsecond,
		DiffCreateCost:   40 * sim.Microsecond,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return errors.New("core: Nodes must be ≥ 1")
	case c.ThreadsPerNode < 1:
		return errors.New("core: ThreadsPerNode must be ≥ 1")
	case c.PageSize < 64 || c.PageSize&(c.PageSize-1) != 0:
		return fmt.Errorf("core: PageSize %d must be a power of two ≥ 64", c.PageSize)
	}
	if (c.Adapt || c.Migrate) && c.Protocol != ProtocolLRC {
		return errors.New("core: Adapt/Migrate require the multi-writer LRC protocol")
	}
	return nil
}

// Segment names an allocated shared-memory region.
type Segment struct {
	Name string
	Base Addr
	Size int
}

// System is a simulated CVM cluster: the engine, network, per-node
// memory systems, DSM state, and the application threads.
type System struct {
	cfg       Config
	engv      sim.Engine     // the engine, embedded; eng points here
	netv      netsim.Network // the simulated interconnect; net points here
	eng       *sim.Engine
	net       *netsim.Network
	fab       Interconnect // what the protocol sends through; defaults to net
	nodes     []*node
	pageShift uint

	segments  []Segment
	allocated Addr

	episodes       map[int]*barrierEpisode // lazily created
	reduceEpisodes map[int]*reduceEpisode  // lazily created

	started bool
	t0      sim.Time

	// pendingReset defers a MarkSteadyState issued inside a parallel
	// window to the next window commit; -1 means none pending.
	pendingReset sim.Time

	// tracer mirrors cfg.Tracer; hot paths nil-check this field.
	// Under the windowed engine it points at demux, which buffers
	// per-node and releases to cfg.Tracer in canonical order at every
	// window commit.
	tracer trace.Tracer
	demux  *trace.Demux

	// met mirrors cfg.Metrics; hot paths nil-check the per-node
	// *metrics.NodeMetrics instead where one exists.
	met *metrics.Registry

	// transport is the reliable message envelope, non-nil only when
	// cfg.Faults enables network faults; every protocol send checks it
	// via the sendFromTask/sendFromHandler wrappers.
	transport *reliable

	// adapt is the adaptive-coherence controller, non-nil only when
	// cfg.Adapt or cfg.Migrate is set. It runs exclusively in the
	// barrier manager's (node 0's) engine context, so it needs no
	// locking under the windowed engine.
	adapt *adaptController

	// byTask maps engine task IDs to threads. Task IDs equal spawn
	// order, which equals the global thread id, but with migration a
	// thread's current node is dynamic, so the lookup table is the
	// authoritative mapping.
	byTask []*Thread
}

// NewSystem builds a cluster from cfg.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mem.PageSize != cfg.PageSize {
		cfg.Mem.PageSize = cfg.PageSize
	}
	s := &System{
		cfg:          cfg,
		pageShift:    log2(cfg.PageSize),
		tracer:       cfg.Tracer,
		met:          cfg.Metrics,
		pendingReset: -1,
	}
	s.engv.Init()
	s.eng = &s.engv
	s.netv.Init(s.eng, cfg.Nodes, cfg.Net)
	s.net = &s.netv
	s.fab = s.net
	eng := s.eng
	s.net.SetTracer(cfg.Tracer)
	if s.met != nil {
		classes := netsim.Classes()
		if !cfg.Adapt && !cfg.Migrate {
			// The adaptive classes (Update, Migrate) carry no traffic in
			// a plain LRC run; leaving them out keeps the metrics schema
			// — and so BASELINE_metrics.json — identical to pre-adaptive
			// builds. Indexing past the registered classes would panic,
			// which doubles as a tripwire for stray adaptive messages.
			classes = classes[:netsim.ClassUpdate]
		}
		names := make([]string, len(classes))
		for i, c := range classes {
			names[i] = c.String()
		}
		s.met.Configure(cfg.Nodes, names)
		s.net.SetMetrics(s.met.Net())
	}
	for i := 0; i < cfg.Nodes; i++ {
		proc := eng.AddProc(cfg.SwitchCost)
		proc.SetLIFO(cfg.LIFOScheduler)
		s.nodes = append(s.nodes, newNode(s, i, proc))
	}
	if fp := cfg.Faults; fp != nil {
		if err := fp.Validate(cfg.Nodes); err != nil {
			return nil, err
		}
		if fp.Net.Active() {
			net := fp.Net // private copy; the plan may be shared across systems
			s.net.SetFaults(&net)
			if s.met != nil {
				s.net.SetFaultCounters(s.met.FaultCounters())
			}
			s.transport = newTransport(s, fp.RTO, fp.MaxRetries)
		}
		for _, p := range fp.Pauses {
			s.nodes[p.Node].proc.InjectPause(p.From, p.To)
		}
		for _, sl := range fp.Slowdowns {
			s.nodes[sl.Node].proc.InjectSlowdown(sl.From, sl.To, sl.Factor)
		}
	}
	if cfg.EngineWorkers > 0 {
		// Conservative windowed parallel engine: per-node work runs
		// concurrently inside lookahead-bounded windows, cross-node
		// messages defer to the window commit. The lookahead is the
		// interconnect's one-way latency lower bound, which every
		// protocol interaction pays before touching another node.
		eng.SetConservative(cfg.EngineWorkers, cfg.Net.Lookahead())
		eng.SetWindowHook(s.commitWindow)
		s.net.SetDeferred(true)
		if s.tracer != nil {
			s.demux = trace.NewDemux(cfg.Nodes, s.tracer)
			s.tracer = s.demux
			s.net.SetTracer(s.demux)
		}
	}
	if cfg.Adapt || cfg.Migrate {
		s.adapt = newAdaptController(s)
	}
	eng.SetReasonNamer(reasonName)
	return s, nil
}

// commitWindow is the engine's window hook: with every proc quiescent at
// the window boundary it applies a deferred steady-state reset, commits
// the deferred network traffic, and releases the window's trace events
// in canonical order. Each step is a pure function of simulation state,
// keeping the commit identical at every worker count.
func (s *System) commitWindow(limit sim.Time) {
	if s.pendingReset >= 0 {
		t0 := s.pendingReset
		s.pendingReset = -1
		s.applySteadyReset(t0)
	}
	s.net.CommitWindow(limit)
	if s.demux != nil {
		s.demux.Flush(limit)
	}
}

// reasonName names the core block reasons in engine deadlock reports.
func reasonName(r sim.Reason) string {
	switch r {
	case ReasonFault:
		return "fault"
	case ReasonLock:
		return "lock"
	case ReasonBarrier:
		return "barrier"
	default:
		return fmt.Sprintf("%d", int(r))
	}
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Engine exposes the underlying simulator (for tests and tools).
func (s *System) Engine() *sim.Engine { return s.eng }

// Network exposes the simulated interconnect (for traffic statistics).
func (s *System) Network() *netsim.Network { return s.net }

// Alloc reserves a page-aligned shared segment and returns its base
// address. All allocation must happen before Start.
func (s *System) Alloc(name string, size int) (Addr, error) {
	if s.started {
		return 0, errors.New("core: Alloc after Start")
	}
	if size <= 0 {
		return 0, fmt.Errorf("core: Alloc %q with size %d", name, size)
	}
	base := s.allocated
	pages := (size + s.cfg.PageSize - 1) / s.cfg.PageSize
	s.allocated += Addr(pages * s.cfg.PageSize)
	s.segments = append(s.segments, Segment{Name: name, Base: base, Size: size})
	return base, nil
}

// Segments returns the allocated shared segments.
func (s *System) Segments() []Segment { return s.segments }

// Start spawns Nodes × ThreadsPerNode application threads, each running
// main. Threads are numbered contiguously per node.
func (s *System) Start(main func(*Thread)) error {
	if s.started {
		return errors.New("core: Start called twice")
	}
	s.started = true
	totalPages := int(s.allocated) >> s.pageShift
	for _, n := range s.nodes {
		n.initPages(totalPages)
	}
	s.byTask = make([]*Thread, s.cfg.Nodes*s.cfg.ThreadsPerNode)
	for i := 0; i < s.cfg.Nodes; i++ {
		n := s.nodes[i]
		n.resident = s.cfg.ThreadsPerNode
		if s.cfg.Adapt {
			n.adaptObs = make(map[PageID]int32)
			n.adaptHits = make(map[PageID]int32)
		}
		n.threads = make([]Thread, s.cfg.ThreadsPerNode)
		for j := range n.threads {
			th := &n.threads[j]
			th.node = n
			th.sys = s
			th.gid = i*s.cfg.ThreadsPerNode + j
			th.lid = j
			th.main = main
			if s.cfg.Migrate {
				th.affinity = make([]int64, s.cfg.Nodes)
				n.residents = append(n.residents, th)
			}
			// Threads implement sim.Runner and carry precomputed names,
			// so spawning allocates neither a closure nor a string for
			// common cluster shapes.
			th.task = s.eng.SpawnRunner(n.proc, threadName(i, j), th)
			s.byTask[th.gid] = th
		}
	}
	return nil
}

// Run executes the simulation to completion. Under fault injection a
// message that exhausts its retransmission budget aborts the run with
// an error wrapping ErrTransport instead of hanging.
func (s *System) Run() (err error) {
	defer func() {
		if err != nil {
			s.eng.Shutdown()
		}
	}()
	defer func() {
		if r := recover(); r != nil {
			tf, ok := r.(*transportFailure)
			if !ok {
				panic(r)
			}
			err = tf.error()
		}
	}()
	defer func() {
		// Release trace events still buffered past the final window
		// commit (including the tail of a failed run).
		if s.demux != nil {
			s.demux.FlushAll()
		}
	}()
	return s.eng.Run()
}

// threadOf maps an engine task back to its application thread. Threads
// are spawned in global-ID order, so a thread's task ID equals its gid;
// the identity check rejects any other task. The table (rather than
// task-ID arithmetic over the node layout) keeps the mapping valid once
// migration moves threads between nodes.
func (s *System) threadOf(task *sim.Task) *Thread {
	if task == nil {
		return nil
	}
	id := task.ID()
	if id >= len(s.byTask) {
		return nil
	}
	th := s.byTask[id]
	if th == nil || th.task != task {
		return nil
	}
	return th
}

// threadNames precomputes the diagnostic names of threads in common
// cluster shapes so Start does not allocate one string per thread.
var threadNames [16][16]string

func init() {
	for i := range threadNames {
		for j := range threadNames[i] {
			threadNames[i][j] = fmt.Sprintf("n%dt%d", i, j)
		}
	}
}

func threadName(i, j int) string {
	if i < len(threadNames) && j < len(threadNames[i]) {
		return threadNames[i][j]
	}
	return fmt.Sprintf("n%dt%d", i, j)
}

// MarkSteadyState zeroes every statistics counter and sets the time
// origin, so that reported results cover only the steady-state portion of
// the run. Applications call it from one thread immediately after their
// initialization barrier, mirroring the paper's exclusion of startup.
func (t *Thread) MarkSteadyState() {
	s := t.sys
	if s.cfg.EngineWorkers > 0 {
		// Other procs are mid-window; defer the reset to the next
		// window commit, where the engine is quiescent. The reset
		// instant recorded is still this thread's call time, so t0 and
		// the metrics epoch match the sequential semantics.
		if s.pendingReset < 0 || t.task.Now() < s.pendingReset {
			s.pendingReset = t.task.Now()
		}
		return
	}
	s.applySteadyReset(t.task.Now())
}

// applySteadyReset performs the MarkSteadyState reset with the engine
// quiescent (thread context in sequential mode, the window commit in
// windowed mode).
func (s *System) applySteadyReset(t0 sim.Time) {
	s.t0 = t0
	s.net.ResetStats()
	for _, n := range s.nodes {
		n.stats = NodeStats{}
		n.mem.ResetStats()
	}
	if s.met != nil {
		// Metrics reset at the same instant as the statistics, so
		// histogram sums keep reconciling exactly with NodeStats.
		s.met.Reset(t0)
		s.net.SetMetrics(s.met.Net())
		for _, n := range s.nodes {
			n.met = s.met.Node(n.id)
		}
	}
}

// RunStats aggregates a finished run's statistics.
type RunStats struct {
	Nodes    []NodeStats // per-node DSM counters and time breakdown
	Mem      []memsim.Stats
	Net      netsim.Stats
	Total    NodeStats    // sum over nodes
	MemTotal memsim.Stats // sum over nodes
	Wall     sim.Time     // steady-state wall time (max node clock − t0)
}

// Stats collects the run's statistics. Call after Run returns.
func (s *System) Stats() RunStats {
	rs := RunStats{
		Net:   s.net.Stats(),
		Nodes: make([]NodeStats, 0, len(s.nodes)),
		Mem:   make([]memsim.Stats, 0, len(s.nodes)),
	}
	for _, n := range s.nodes {
		rs.Nodes = append(rs.Nodes, n.stats)
		rs.Total.Add(n.stats)
		ms := n.mem.Stats()
		rs.Mem = append(rs.Mem, ms)
		rs.MemTotal.Add(ms)
		if wall := n.proc.Clock() - s.t0; wall > rs.Wall {
			rs.Wall = wall
		}
	}
	return rs
}

func log2(n int) uint {
	var b uint
	for 1<<b < n {
		b++
	}
	return b
}
