package core

import (
	"errors"

	"cvm/internal/sim"
	"cvm/internal/transport"
)

// The protocol engine addresses peers with the shared transport
// vocabulary; the concrete interconnect behind it is pluggable. Aliasing
// the types here keeps the protocol files (lock.go, barrier.go,
// fault.go, reduce.go, swprotocol.go, transport.go) free of any backend
// import: they name nodes and message classes abstractly and route every
// cross-node send through System.sendFromTask/sendFromHandler, which
// dispatch on the installed Interconnect.
type (
	// NodeID identifies a node at the protocol layer.
	NodeID = transport.NodeID
	// MsgClass categorizes protocol traffic for Table 2 accounting.
	MsgClass = transport.Class
)

// Message classes, re-exported for the protocol files.
const (
	ClassBarrier = transport.ClassBarrier
	ClassLock    = transport.ClassLock
	ClassDiff    = transport.ClassDiff
	ClassUpdate  = transport.ClassUpdate
	ClassMigrate = transport.ClassMigrate
)

// Interconnect is the virtual-time, closure-level transport contract the
// protocol engine runs over. Deliver closures execute in engine context
// at the receiving node; the interconnect decides when. The simulated
// network (internal/netsim) is the canonical implementation and the
// determinism oracle; tests may wrap it to observe or perturb traffic.
//
// This interface is deliberately in-process: closures cannot cross an OS
// process boundary, so real multi-process backends do not implement it.
// They implement the byte-level transport.Conn instead, and a separate
// real-execution runtime (internal/rt) maps the coherence protocol onto
// bytes. See DESIGN.md §11 for the two-layer boundary.
type Interconnect interface {
	// Name identifies the backend in error messages and run reports.
	Name() string
	// PeerAddr describes to's address in backend terms, for error
	// attribution ("node 3" on simulated backends, "host:port" on real
	// ones).
	PeerAddr(to NodeID) string
	// SendFromTask transmits a message from task context at node from,
	// charging the sender's CPU overhead to the task. deliver runs in
	// engine context at to. from and to must differ.
	SendFromTask(t *sim.Task, from, to NodeID, class MsgClass, bytes int, deliver func())
	// SendFromHandler transmits a message from engine context (a message
	// handler acting for node from). from and to must differ.
	SendFromHandler(from, to NodeID, class MsgClass, bytes int, deliver func())
}

// SetInterconnect replaces the interconnect the protocol engine sends
// through. It must be called before Start; tests use it to interpose
// recording or fault-shaping wrappers around the simulated network
// (available via System.Network).
func (s *System) SetInterconnect(ic Interconnect) error {
	if s.started {
		return errors.New("core: SetInterconnect after Start")
	}
	if ic == nil {
		return errors.New("core: SetInterconnect with nil interconnect")
	}
	s.fab = ic
	return nil
}

// Interconnect returns the interconnect the protocol engine is wired to.
func (s *System) Interconnect() Interconnect { return s.fab }
