package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Compressed diff encoding. Diffs dominate the DSM's coherence traffic
// (the paper classes all data-carrying messages as "diff messages"), and
// their natural encoding — 8 bytes of header plus raw payload per run —
// wastes most of its bytes on two kinds of redundancy: run headers carry
// absolute 32-bit offsets and lengths when pages are only 8 KB, and
// payloads are word-granular application data (counters, float64 grids)
// whose bytes repeat heavily. The wire form here addresses both:
//
//	uvarint(#runs)
//	per run:  uvarint(gap)              start − end of previous run
//	          uvarint(len<<1 | xor8)    payload length and filter flag
//	          RLE token stream          over the (possibly filtered) payload
//
// RLE tokens: uvarint(t) with t&1==1 meaning "next byte repeats t>>1
// times" and t&1==0 meaning "t>>1 literal bytes follow". The optional
// xor8 prefilter replaces byte i (i ≥ 8) with data[i]^data[i−8] before
// tokenizing, turning slowly-varying word streams into zero runs; the
// encoder tries the run both ways and keeps the smaller, so the flag
// costs one bit and never inflates. The encoding is self-contained —
// nothing is delta'd against receiver state — so decode works at any
// node regardless of its page contents, and DecodeRuns returns exactly
// the Run form MakeDiff produced: Apply semantics are untouched.
//
// The simulator uses the encoded size for netsim byte accounting when
// Config.CompressDiffs is set (default off: byte-identical legacy
// accounting); the real transport in internal/rt frames diff flushes
// with this encoding unconditionally, since nothing there is gated on
// byte-identity.

// minRepeat is the run length at which a repeat token beats a literal:
// a repeat costs ≤ 3 bytes (token + byte) while 4 literal bytes cost 4,
// plus potentially splitting a literal group.
const minRepeat = 4

// EncodeRuns appends the compressed encoding of runs to dst and returns
// the extended slice. Runs must be ascending, non-overlapping page
// offsets — exactly what MakeDiff emits.
func EncodeRuns(dst []byte, runs []Run) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(runs)))
	prevEnd := int32(0)
	var scratch []byte
	for _, r := range runs {
		dst = binary.AppendUvarint(dst, uint64(r.Off-prevEnd))
		prevEnd = r.Off + int32(len(r.Data))

		plainLen := rlePayloadSize(r.Data)
		scratch = xor8Filter(scratch[:0], r.Data)
		xorLen := rlePayloadSize(scratch)
		if xorLen < plainLen {
			dst = binary.AppendUvarint(dst, uint64(len(r.Data))<<1|1)
			dst = appendRLEPayload(dst, scratch)
		} else {
			dst = binary.AppendUvarint(dst, uint64(len(r.Data))<<1)
			dst = appendRLEPayload(dst, r.Data)
		}
	}
	return dst
}

// EncodedRunsSize reports len(EncodeRuns(nil, runs)) without building
// the encoding.
func EncodedRunsSize(runs []Run) int {
	n := uvarintSize(uint64(len(runs)))
	prevEnd := int32(0)
	var scratch []byte
	for _, r := range runs {
		n += uvarintSize(uint64(r.Off - prevEnd))
		prevEnd = r.Off + int32(len(r.Data))
		n += uvarintSize(uint64(len(r.Data)) << 1)
		plainLen := rlePayloadSize(r.Data)
		scratch = xor8Filter(scratch[:0], r.Data)
		if xorLen := rlePayloadSize(scratch); xorLen < plainLen {
			n += xorLen
		} else {
			n += plainLen
		}
	}
	return n
}

// DecodeRuns parses an EncodeRuns payload back into runs, returning the
// unconsumed remainder of src.
func DecodeRuns(src []byte) (runs []Run, rest []byte, err error) {
	count, src, err := readUvarint(src)
	if err != nil {
		return nil, nil, fmt.Errorf("core: diff run count: %w", err)
	}
	if count > 1<<20 {
		return nil, nil, fmt.Errorf("core: diff run count %d too large", count)
	}
	runs = make([]Run, 0, count)
	off := int64(0)
	for k := uint64(0); k < count; k++ {
		gap, s, err := readUvarint(src)
		if err != nil {
			return nil, nil, fmt.Errorf("core: diff run %d gap: %w", k, err)
		}
		lm, s, err := readUvarint(s)
		if err != nil {
			return nil, nil, fmt.Errorf("core: diff run %d header: %w", k, err)
		}
		length := int(lm >> 1)
		if length > 1<<24 {
			return nil, nil, fmt.Errorf("core: diff run %d length %d too large", k, length)
		}
		off += int64(gap)
		data := make([]byte, 0, length)
		data, s, err = decodeRLEPayload(data, s, length)
		if err != nil {
			return nil, nil, fmt.Errorf("core: diff run %d payload: %w", k, err)
		}
		if lm&1 != 0 {
			for i := 8; i < len(data); i++ {
				data[i] ^= data[i-8]
			}
		}
		runs = append(runs, Run{Off: int32(off), Data: data})
		off += int64(length)
		src = s
	}
	return runs, src, nil
}

// xor8Filter appends the xor8-prefiltered form of data to dst: the first
// 8 bytes verbatim, then each byte xored with the byte one word earlier.
func xor8Filter(dst, data []byte) []byte {
	n := len(data)
	if n <= 8 {
		return append(dst, data...)
	}
	base := len(dst)
	dst = append(dst, data...)
	b := dst[base:]
	for i := n - 1; i >= 8; i-- {
		b[i] ^= b[i-8]
	}
	return dst
}

// appendRLEPayload tokenizes data: repeat tokens for byte runs of at
// least minRepeat, literal groups otherwise.
func appendRLEPayload(dst, data []byte) []byte {
	i, litStart := 0, 0
	n := len(data)
	for i < n {
		j := i + 1
		for j < n && data[j] == data[i] {
			j++
		}
		if j-i >= minRepeat {
			if i > litStart {
				dst = binary.AppendUvarint(dst, uint64(i-litStart)<<1)
				dst = append(dst, data[litStart:i]...)
			}
			dst = binary.AppendUvarint(dst, uint64(j-i)<<1|1)
			dst = append(dst, data[i])
			litStart = j
		}
		i = j
	}
	if n > litStart {
		dst = binary.AppendUvarint(dst, uint64(n-litStart)<<1)
		dst = append(dst, data[litStart:]...)
	}
	return dst
}

// rlePayloadSize reports len(appendRLEPayload(nil, data)) without
// building it.
func rlePayloadSize(data []byte) int {
	size := 0
	i, litStart := 0, 0
	n := len(data)
	for i < n {
		j := i + 1
		for j < n && data[j] == data[i] {
			j++
		}
		if j-i >= minRepeat {
			if i > litStart {
				size += uvarintSize(uint64(i-litStart)<<1) + (i - litStart)
			}
			size += uvarintSize(uint64(j-i)<<1|1) + 1
			litStart = j
		}
		i = j
	}
	if n > litStart {
		size += uvarintSize(uint64(n-litStart)<<1) + (n - litStart)
	}
	return size
}

// decodeRLEPayload expands tokens from src into dst until want bytes
// have been produced.
func decodeRLEPayload(dst, src []byte, want int) ([]byte, []byte, error) {
	for len(dst) < want {
		t, s, err := readUvarint(src)
		if err != nil {
			return nil, nil, err
		}
		src = s
		if t&1 != 0 {
			rep := int(t >> 1)
			if len(src) < 1 || len(dst)+rep > want {
				return nil, nil, fmt.Errorf("bad repeat token %d at %d/%d", t, len(dst), want)
			}
			b := src[0]
			src = src[1:]
			for k := 0; k < rep; k++ {
				dst = append(dst, b)
			}
		} else {
			lit := int(t >> 1)
			if len(src) < lit || len(dst)+lit > want {
				return nil, nil, fmt.Errorf("bad literal token %d at %d/%d", t, len(dst), want)
			}
			dst = append(dst, src[:lit]...)
			src = src[lit:]
		}
	}
	return dst, src, nil
}

// AppendVClock appends a compact encoding of vt to dst: uvarint(length),
// then tokens covering the components in order — uvarint(zn<<1|1) skips
// zn zero components, uvarint(cnt<<1) is followed by cnt uvarint values.
// Vector times at scale are almost entirely zeros (a node has synced
// with few peers), so a 1024-component clock costs a few bytes instead
// of 4 KB.
func AppendVClock(dst []byte, vt VClock) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vt)))
	i, n := 0, len(vt)
	for i < n {
		j := i
		for j < n && vt[j] == 0 {
			j++
		}
		if j > i {
			dst = binary.AppendUvarint(dst, uint64(j-i)<<1|1)
			i = j
		}
		for j < n && vt[j] != 0 {
			j++
		}
		if j > i {
			dst = binary.AppendUvarint(dst, uint64(j-i)<<1)
			for ; i < j; i++ {
				dst = binary.AppendUvarint(dst, uint64(uint32(vt[i])))
			}
		}
	}
	return dst
}

// VClockEncodedSize reports len(AppendVClock(nil, vt)) without building
// it.
func VClockEncodedSize(vt VClock) int {
	n := uvarintSize(uint64(len(vt)))
	i, l := 0, len(vt)
	for i < l {
		j := i
		for j < l && vt[j] == 0 {
			j++
		}
		if j > i {
			n += uvarintSize(uint64(j-i)<<1 | 1)
			i = j
		}
		for j < l && vt[j] != 0 {
			j++
		}
		if j > i {
			n += uvarintSize(uint64(j-i) << 1)
			for ; i < j; i++ {
				n += uvarintSize(uint64(uint32(vt[i])))
			}
		}
	}
	return n
}

// DecodeVClock parses an AppendVClock payload, returning the clock and
// the unconsumed remainder of src.
func DecodeVClock(src []byte) (VClock, []byte, error) {
	length, src, err := readUvarint(src)
	if err != nil {
		return nil, nil, fmt.Errorf("core: vclock length: %w", err)
	}
	if length > 1<<20 {
		return nil, nil, fmt.Errorf("core: vclock length %d too large", length)
	}
	vt := NewVClock(int(length))
	i := 0
	for i < int(length) {
		t, s, err := readUvarint(src)
		if err != nil {
			return nil, nil, fmt.Errorf("core: vclock token: %w", err)
		}
		src = s
		cnt := int(t >> 1)
		if i+cnt > int(length) {
			return nil, nil, fmt.Errorf("core: vclock token overruns %d+%d/%d", i, cnt, length)
		}
		if t&1 != 0 {
			i += cnt // zeros
			continue
		}
		for k := 0; k < cnt; k++ {
			v, s, err := readUvarint(src)
			if err != nil {
				return nil, nil, fmt.Errorf("core: vclock value: %w", err)
			}
			src = s
			vt[i] = int32(uint32(v))
			i++
		}
	}
	return vt, src, nil
}

// uvarintSize reports the encoded size of v.
func uvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// readUvarint consumes one uvarint from src.
func readUvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated or malformed uvarint")
	}
	return v, src[n:], nil
}

// WirePatternPages builds the (twin, cur) page pair for one of the
// named diff-wire workload patterns. The perf baseline (cvm-bench
// -experiment perf), the cvm-metrics compression gate, and the
// diff-wire benchmarks all share these fixtures, so the gated ratios
// measure exactly what the benchmarks do.
//
//   - "sparse": scattered clusters of word-aligned int64 counter updates
//     over a previously-written page (the common single-writer case:
//     1/8 of the page modified, word payloads with high zero-byte
//     content).
//   - "dense": bulk initialization — nearly every byte modified with
//     high-entropy values; the incompressible floor.
//   - "strided": a regular stride of float64 grid-point updates, the
//     nearest-neighbor relaxation shape (SOR, Ocean).
func WirePatternPages(pattern string, pageSize int) (twin, cur []byte) {
	twin = make([]byte, pageSize)
	cur = make([]byte, pageSize)
	switch pattern {
	case "sparse":
		for i := range twin {
			twin[i] = 0xFF // prior-epoch sentinel values
		}
		copy(cur, twin)
		for cluster := 0; cluster*512+64 <= pageSize; cluster++ {
			base := cluster * 512
			for w := 0; w < 8; w++ {
				binary.LittleEndian.PutUint64(cur[base+8*w:], uint64(cluster*8+w+1))
			}
		}
	case "dense":
		for i := range cur {
			cur[i] = byte(i)*167 + 13
		}
	case "strided":
		for w := 0; w*8+8 <= pageSize; w++ {
			v := 1.0 + float64(w)*0.25
			binary.LittleEndian.PutUint64(twin[w*8:], math.Float64bits(v))
			if w%4 == 0 {
				v += 0.5
			}
			binary.LittleEndian.PutUint64(cur[w*8:], math.Float64bits(v))
		}
	default:
		panic("core: unknown wire pattern " + pattern)
	}
	return twin, cur
}

// WirePatterns lists the diff-wire workload patterns in report order.
func WirePatterns() []string { return []string{"sparse", "dense", "strided"} }

// WireBytes reports the diff's payload size on the simulated wire: the
// legacy fixed-width accounting when compress is false (16-byte header,
// 4 bytes per vector-clock component, 8 bytes per run header plus raw
// data), or the compressed encoding's exact size when true. The
// compressed size is computed once and cached; callers must be on the
// diff's creator node (the only node that serves it), which keeps the
// cache single-writer under the parallel engine.
func (d *Diff) WireBytes(compress bool) int {
	if !compress {
		return d.Bytes()
	}
	if d.encSize == 0 {
		d.encSize = int32(16 + VClockEncodedSize(d.VT) + EncodedRunsSize(d.Runs))
	}
	return int(d.encSize)
}
