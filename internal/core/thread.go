package core

import (
	"encoding/binary"
	"math"

	"cvm/internal/sim"
	"cvm/internal/trace"
)

// Thread is one application thread of the DSM: the handle through which
// application code accesses shared memory and synchronizes. Threads are
// created by System.Start; all methods must be called from the thread's
// own function.
type Thread struct {
	task *sim.Task
	node *node
	sys  *System

	gid  int // global thread id: node*threadsPerNode + lid
	lid  int // local thread id within the node
	main func(*Thread)

	phase   int // application code phase, for the I-TLB model
	codeRot int

	// Migration state (see migrate.go); nil/false when Config.Migrate is
	// off. affinity counts remote events (diff fetches, lock grants) per
	// origin node since the last barrier report; pinned permanently bars
	// the thread from migration (set on LocalBarrier use).
	affinity []int64
	pinned   bool
}

// RunTask implements sim.Runner: the task body of an application thread.
func (t *Thread) RunTask(*sim.Task) { t.main(t) }

// GlobalID reports the thread's global index in [0, Threads()).
// Threads are numbered contiguously per node, so consecutive IDs are
// co-located — the layout the paper's applications assume.
func (t *Thread) GlobalID() int { return t.gid }

// LocalID reports the thread's index within its node.
func (t *Thread) LocalID() int { return t.lid }

// NodeID reports the node the thread runs on.
func (t *Thread) NodeID() int { return t.node.id }

// Threads reports the total number of application threads.
func (t *Thread) Threads() int { return t.sys.cfg.Nodes * t.sys.cfg.ThreadsPerNode }

// Nodes reports the number of nodes.
func (t *Thread) Nodes() int { return t.sys.cfg.Nodes }

// LocalThreads reports the number of threads per node.
func (t *Thread) LocalThreads() int { return t.sys.cfg.ThreadsPerNode }

// Now reports the thread's current virtual time.
func (t *Thread) Now() sim.Time { return t.task.Now() }

// Compute charges d of pure computation (work not expressed as shared
// accesses) to the thread.
func (t *Thread) Compute(d sim.Time) { t.task.Advance(d) }

// Yield requests an explicit thread switch (a CVM system call), moving
// the thread to the back of its node's run queue.
func (t *Thread) Yield() { t.task.Yield() }

// Phase declares the application code region the thread is executing,
// driving the synthetic instruction-locality model. Distinct phases have
// distinct code footprints; switching between threads in different phases
// pressures the I-TLB.
func (t *Thread) Phase(p int) {
	if t.phase != p {
		t.phase = p
		t.touchPhaseCode()
	}
}

// touchPhaseCode touches the thread's current code footprint in the
// I-TLB (on phase entry and when the thread is switched in).
func (t *Thread) touchPhaseCode() {
	base := phaseCodeBase(t.phase)
	for k := uint64(0); k < phaseCodePages; k++ {
		t.node.mem.InstrTouch(base + k)
	}
}

const phaseCodePages = 3

func phaseCodeBase(phase int) uint64 { return 2<<40 + uint64(phase)*phaseCodePages }

// block suspends the thread with reason (the protocol's Block event),
// bracketing the wait with block/unblock trace events when tracing is
// enabled. All protocol block sites go through this helper so traces
// capture every wait with its Figure-1 attribution.
func (t *Thread) block(reason sim.Reason) {
	tr := t.sys.tracer
	if tr == nil {
		t.task.Block(reason)
		return
	}
	tr.Emit(trace.Event{T: t.task.Now(), Kind: trace.KindThreadBlock,
		Node: int32(t.node.id), Thread: int32(t.gid), Arg: int64(reason)})
	t.task.Block(reason)
	tr.Emit(trace.Event{T: t.task.Now(), Kind: trace.KindThreadUnblock,
		Node: int32(t.node.id), Thread: int32(t.gid), Arg: int64(reason)})
}

// locate resolves a shared address to the node's page view.
func (t *Thread) locate(a Addr) (*page, int) {
	pg := PageID(a >> t.sys.pageShift)
	off := int(a & (Addr(t.sys.cfg.PageSize) - 1))
	return t.node.pageAt(pg), off
}

// pageVA is the simulated virtual address of a page, fed to the memory
// hierarchy model. Shared pages live at the bottom of the address space
// on every node.
func (t *Thread) pageVA(pg PageID) uint64 {
	return uint64(pg) << t.sys.pageShift
}

// charge runs one data access through the node's cache and TLB simulator
// plus the rotating instruction-fetch touch, charging the cost.
func (t *Thread) charge(a Addr) {
	cost := t.node.mem.Access(uint64(a))
	t.codeRot++
	cost += t.node.mem.InstrTouch(phaseCodeBase(t.phase) + uint64(t.codeRot)%phaseCodePages)
	t.task.Advance(cost)
}

// ReadF64 reads a float64 from shared memory.
func (t *Thread) ReadF64(a Addr) float64 {
	return math.Float64frombits(t.read8(a))
}

// WriteF64 writes a float64 to shared memory.
func (t *Thread) WriteF64(a Addr, v float64) {
	t.write8(a, math.Float64bits(v))
}

// ReadI64 reads an int64 from shared memory.
func (t *Thread) ReadI64(a Addr) int64 { return int64(t.read8(a)) }

// WriteI64 writes an int64 to shared memory.
func (t *Thread) WriteI64(a Addr, v int64) { t.write8(a, uint64(v)) }

// read8/write8 perform the data access immediately after ensureAccess
// returns, before charging the memory-system cost: charging can yield to
// the engine, and a message handler running during the yield may downgrade
// the page (consume its twin to serve a diff, or invalidate it on a write
// notice). In the real CVM the access and the protection check are atomic
// — the hardware faults mid-instruction — so the simulation must not allow
// a handler between check and access either.
func (t *Thread) read8(a Addr) uint64 {
	p, off := t.locate(a)
	t.ensureAccess(p, false)
	var v uint64
	if p.data != nil {
		v = binary.LittleEndian.Uint64(p.data[off:])
	}
	t.charge(a)
	return v
}

func (t *Thread) write8(a Addr, v uint64) {
	p, off := t.locate(a)
	for {
		t.ensureAccess(p, true)
		if p.state == PageReadWrite {
			binary.LittleEndian.PutUint64(p.data[off:], v)
			break
		}
		// A handler downgraded the page while ensureAccess was charging
		// fault costs; run the fault state machine again.
	}
	t.charge(a)
}

// TouchPrivate models an access to thread-private memory (stack or heap):
// it exercises the node's cache and TLB without touching shared state.
// idx is an arbitrary index into the thread's private region.
func (t *Thread) TouchPrivate(idx int) {
	va := 1<<41 + uint64(t.gid)<<30 + uint64(idx)*8
	t.task.Advance(t.node.mem.Access(va))
}
