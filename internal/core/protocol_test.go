package core

import (
	"testing"
	"testing/quick"
)

// TestLockChainedAccumulation is the regression test for the causal diff
// ordering bug: several nodes take turns (under one lock) incrementing
// counters that share a page, while other lock traffic causes partial
// fetches; a final reader must see every contribution. This pattern —
// Water-Nsq's force accumulation — once lost updates to (a) lazily-folded
// diffs escaping the write-notice horizon and (b) a non-topological diff
// application order.
func TestLockChainedAccumulation(t *testing.T) {
	const (
		nodes    = 8
		threads  = 2
		counters = 16
		rounds   = 3
	)
	s := testSystem(t, nodes, threads)
	addr, _ := s.Alloc("counters", 8192)
	at := func(i int) Addr { return addr + Addr(i*8) }

	var finals []float64
	runApp(t, s, func(w *Thread) {
		gid := w.GlobalID() // 0..15
		w.Barrier(0)
		for r := 0; r < rounds; r++ {
			// Every thread adds a distinct amount to every counter,
			// serialized by per-counter locks. Threads traverse in
			// different orders so lock chains interleave heavily.
			for k := 0; k < counters; k++ {
				c := k
				if gid%2 == 1 {
					c = counters - 1 - k
				}
				w.Lock(10 + c)
				w.WriteF64(at(c), w.ReadF64(at(c))+float64(gid+1))
				w.Unlock(10 + c)
			}
			w.Barrier(100 + r)
		}
		if gid == 0 {
			for c := 0; c < counters; c++ {
				finals = append(finals, w.ReadF64(at(c)))
			}
		}
		w.Barrier(9999)
	})

	total := threads * nodes
	want := float64(rounds * total * (total + 1) / 2) // Σ(gid+1) per round
	for c, got := range finals {
		if got != want {
			t.Errorf("counter %d = %v, want %v (lost update)", c, got, want)
		}
	}
	if len(finals) != counters {
		t.Fatalf("read %d finals, want %d", len(finals), counters)
	}
}

// TestSortDiffsRespectsCausality: the output order must be a linear
// extension of the happens-before partial order.
func TestSortDiffsRespectsCausality(t *testing.T) {
	f := func(seed uint16) bool {
		// Build a random but causally consistent history: each of 4
		// nodes creates intervals; each new interval's VT covers the
		// node's previous interval and sometimes merges another node's
		// latest.
		r := testRand(uint64(seed) + 1)
		const nNodes = 4
		latest := make([]VClock, nNodes)
		for i := range latest {
			latest[i] = NewVClock(nNodes)
		}
		var ds []*Diff
		for step := 0; step < 24; step++ {
			n := int(r.next() * nNodes)
			vt := latest[n].Clone()
			if r.next() < 0.5 {
				vt.Merge(latest[int(r.next()*nNodes)])
			}
			vt[n]++
			latest[n] = vt
			ds = append(ds, &Diff{Node: n, Idx: vt[n], VT: vt.Clone()})
		}
		sortDiffs(ds)
		for i := range ds {
			for j := i + 1; j < len(ds); j++ {
				if ds[j].VT.Before(ds[i].VT) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSortDiffsStableForSameNode: diffs of one node must stay in interval
// order.
func TestSortDiffsStableForSameNode(t *testing.T) {
	mk := func(node int, idx int32, vt ...int32) *Diff {
		return &Diff{Node: node, Idx: idx, VT: VClock(vt)}
	}
	ds := []*Diff{
		mk(1, 3, 0, 3),
		mk(1, 1, 0, 1),
		mk(1, 2, 0, 2),
	}
	sortDiffs(ds)
	for i, want := range []int32{1, 2, 3} {
		if ds[i].Idx != want {
			t.Fatalf("position %d has idx %d, want %d", i, ds[i].Idx, want)
		}
	}
}

// TestReadModifyWriteUnderLoad stresses many threads hammering one page
// with interleaved barrier traffic — a smoke test for torn accesses.
func TestReadModifyWriteUnderLoad(t *testing.T) {
	s := testSystem(t, 4, 4)
	addr, _ := s.Alloc("x", 8192)
	runApp(t, s, func(w *Thread) {
		for r := 0; r < 4; r++ {
			w.Lock(1)
			w.WriteI64(addr, w.ReadI64(addr)+1)
			w.Unlock(1)
			// Unsynchronized write to a private slot of the same page
			// (false sharing), plus barrier churn.
			w.WriteI64(addr+Addr(8+8*w.GlobalID()), int64(r))
			w.Barrier(r)
		}
	})
	// Final value readable from the last holder's copy.
	var got int64
	for _, n := range s.nodes {
		if p := n.peek(0); p != nil && p.data != nil {
			if v := int64(le64(p.data)); v > got {
				got = v
			}
		}
	}
	if want := int64(4 * 4 * 4); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
}

// TestIdleAttributionSumsToWall verifies the Figure 1 invariant: per-node
// user + fault + lock + barrier time ≈ wall time.
func TestIdleAttributionSumsToWall(t *testing.T) {
	st, err := runSampleWorkload(t)
	if err != nil {
		t.Fatal(err)
	}
	for i, ns := range st.Nodes {
		wall := st.Wall
		sum := ns.Wall()
		// Allow skew from barrier-release stagger and final drain.
		diff := wall - sum
		if diff < 0 {
			diff = -diff
		}
		if diff > wall/5 {
			t.Errorf("node %d: breakdown %v vs wall %v (>20%% apart)", i, sum, wall)
		}
	}
}

func runSampleWorkload(t *testing.T) (RunStats, error) {
	t.Helper()
	s := testSystem(t, 4, 2)
	addr, _ := s.Alloc("grid", 16*8192)
	if err := s.Start(func(w *Thread) {
		if w.GlobalID() == 0 {
			for i := 0; i < 16*1024; i += 8 {
				w.WriteF64(addr+Addr(i*8), 1)
			}
		}
		w.Barrier(0)
		if w.GlobalID() == 0 {
			w.MarkSteadyState()
		}
		w.Barrier(1)
		for r := 0; r < 3; r++ {
			sum := 0.0
			for i := 0; i < 16*1024; i += 64 {
				sum += w.ReadF64(addr + Addr(i*8))
			}
			w.Lock(1)
			w.WriteF64(addr, w.ReadF64(addr)+sum)
			w.Unlock(1)
			w.Barrier(10 + r)
		}
	}); err != nil {
		return RunStats{}, err
	}
	if err := s.Run(); err != nil {
		return RunStats{}, err
	}
	return s.Stats(), nil
}

// testRand is a small deterministic generator for property tests.
type testRand uint64

func (r *testRand) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64((*r)>>11) / float64(1<<53)
}

// TestRaceDetector: the paper observes that overlapping concurrent diffs
// indicate a data race. Config.DetectRaces turns that observation into a
// checker: a racy program (two nodes writing the same word without
// synchronization) is flagged; a properly synchronized one is not.
func TestRaceDetector(t *testing.T) {
	run := func(racy bool) int64 {
		// Nodes 0 and 1 write concurrently; node 2 is the observer whose
		// fault collects both concurrent diffs.
		cfg := DefaultConfig(3, 1)
		cfg.DetectRaces = true
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		addr, _ := s.Alloc("x", 8192)
		runApp(t, s, func(w *Thread) {
			if w.NodeID() < 2 {
				off := Addr(8 * w.NodeID())
				if racy {
					off = 0 // both writers hit the same word, unsynchronized
				}
				w.WriteF64(addr+off, float64(w.NodeID()+1))
			}
			w.Barrier(0)
			if w.NodeID() == 2 {
				_ = w.ReadF64(addr)
			}
			w.Barrier(1)
		})
		return s.Stats().Total.RacesDetected
	}
	if got := run(false); got != 0 {
		t.Errorf("synchronized program flagged %d races, want 0", got)
	}
	if got := run(true); got == 0 {
		t.Error("racy program flagged 0 races, want > 0")
	}
}
