package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"cvm/internal/netsim"
	"cvm/internal/sim"
)

// FaultPlan bundles every fault-injection dimension for one run: the
// network fault model, node-level pause and slowdown windows, and the
// reliable transport's tuning. A nil *FaultPlan in Config means a
// fault-free run with no transport layer — byte-identical to builds
// predating fault injection.
type FaultPlan struct {
	// Net configures deterministic message drop/duplication/reordering
	// and latency jitter (see netsim.FaultParams). When any dimension is
	// active the system routes all protocol traffic through the reliable
	// transport.
	Net netsim.FaultParams

	// Pauses suspend a node's compute for a virtual-time window, as if
	// the OS had descheduled the DSM process.
	Pauses []NodePause

	// Slowdowns dilate a node's compute by a factor for a window,
	// modelling CPU contention from other jobs.
	Slowdowns []NodeSlowdown

	// RTO is the transport's initial retransmission timeout
	// (DefaultRTO when zero). Backoff doubles per attempt.
	RTO sim.Time

	// MaxRetries bounds retransmission attempts per message
	// (DefaultMaxRetries when zero); exhausting it fails the run with
	// ErrTransport.
	MaxRetries int
}

// NodePause suspends node Node's compute over [From, To).
type NodePause struct {
	Node     int
	From, To sim.Time
}

// NodeSlowdown multiplies node Node's compute by Factor over [From, To).
type NodeSlowdown struct {
	Node     int
	From, To sim.Time
	Factor   float64
}

// Validate reports plan errors for a cluster of the given size.
func (fp *FaultPlan) Validate(nodes int) error {
	if fp == nil {
		return nil
	}
	if err := fp.Net.Validate(); err != nil {
		return err
	}
	for _, p := range fp.Pauses {
		if p.Node < 0 || p.Node >= nodes {
			return fmt.Errorf("core: pause on node %d, cluster has %d", p.Node, nodes)
		}
		if p.To <= p.From || p.From < 0 {
			return fmt.Errorf("core: pause window [%v, %v) on node %d is empty or negative", p.From, p.To, p.Node)
		}
	}
	for _, s := range fp.Slowdowns {
		if s.Node < 0 || s.Node >= nodes {
			return fmt.Errorf("core: slowdown on node %d, cluster has %d", s.Node, nodes)
		}
		if s.To <= s.From || s.From < 0 {
			return fmt.Errorf("core: slowdown window [%v, %v) on node %d is empty or negative", s.From, s.To, s.Node)
		}
		if s.Factor < 1 {
			return fmt.Errorf("core: slowdown factor %v on node %d, want ≥ 1", s.Factor, s.Node)
		}
	}
	if fp.RTO < 0 {
		return fmt.Errorf("core: negative RTO %v", fp.RTO)
	}
	if fp.MaxRetries < 0 {
		return fmt.Errorf("core: negative MaxRetries %d", fp.MaxRetries)
	}
	return nil
}

// Active reports whether the plan injects anything at all.
func (fp *FaultPlan) Active() bool {
	return fp != nil && (fp.Net.Active() || len(fp.Pauses) > 0 || len(fp.Slowdowns) > 0)
}

// ParseFaultPlan builds a FaultPlan from a compact comma-separated spec,
// the format the -faults command-line flag accepts:
//
//	drop=0.01            drop probability, all classes
//	drop.lock=0.05       drop probability for one class (barrier|lock|diff)
//	dup=0.001            duplication probability (per-class variant likewise)
//	reorder=0.01         reorder probability (per-class variant likewise)
//	reorder-delay=2ms    extra delay for reordered messages (default 1ms)
//	jitter=500us         uniform extra delivery latency in [0, jitter)
//	pause=2:10ms:5ms     pause node 2 for 5ms starting at T=10ms
//	slow=0:0s:50ms:4     slow node 0 ×4 for [0, 50ms)
//	rto=10ms             transport retransmission timeout
//	retries=20           transport retry budget
//
// Durations use Go syntax (time.ParseDuration). seed keys the fault
// PRNG. An empty spec yields an inactive plan (still carrying seed).
func ParseFaultPlan(spec string, seed uint64) (*FaultPlan, error) {
	fp := &FaultPlan{Net: netsim.FaultParams{Seed: seed}}
	reorderSet := false
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("core: fault spec item %q is not key=value", item)
		}
		base, class, perClass := strings.Cut(key, ".")
		switch base {
		case "drop", "dup", "reorder":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("core: %s probability %q, want a number in [0, 1]", base, val)
			}
			var arr *[netsim.NumClasses]float64
			switch base {
			case "drop":
				arr = &fp.Net.Drop
			case "dup":
				arr = &fp.Net.Dup
			default:
				arr = &fp.Net.Reorder
				reorderSet = reorderSet || p > 0
			}
			if perClass {
				c, err := parseClass(class)
				if err != nil {
					return nil, err
				}
				arr[c] = p
			} else {
				for c := range arr {
					arr[c] = p
				}
			}
		case "jitter":
			d, err := parseSimTime(val)
			if err != nil {
				return nil, fmt.Errorf("core: jitter=%q: %v", val, err)
			}
			fp.Net.JitterMax = d
		case "reorder-delay":
			d, err := parseSimTime(val)
			if err != nil {
				return nil, fmt.Errorf("core: reorder-delay=%q: %v", val, err)
			}
			fp.Net.ReorderDelay = d
		case "pause":
			f := strings.Split(val, ":")
			if len(f) != 3 {
				return nil, fmt.Errorf("core: pause=%q, want node:start:duration", val)
			}
			node, start, dur, err := parseWindow(f[0], f[1], f[2])
			if err != nil {
				return nil, fmt.Errorf("core: pause=%q: %v", val, err)
			}
			fp.Pauses = append(fp.Pauses, NodePause{Node: node, From: start, To: start + dur})
		case "slow":
			f := strings.Split(val, ":")
			if len(f) != 4 {
				return nil, fmt.Errorf("core: slow=%q, want node:start:duration:factor", val)
			}
			node, start, dur, err := parseWindow(f[0], f[1], f[2])
			if err != nil {
				return nil, fmt.Errorf("core: slow=%q: %v", val, err)
			}
			factor, err := strconv.ParseFloat(f[3], 64)
			if err != nil || factor < 1 {
				return nil, fmt.Errorf("core: slow=%q: factor %q, want a number ≥ 1", val, f[3])
			}
			fp.Slowdowns = append(fp.Slowdowns, NodeSlowdown{Node: node, From: start, To: start + dur, Factor: factor})
		case "rto":
			d, err := parseSimTime(val)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("core: rto=%q, want a positive duration", val)
			}
			fp.RTO = d
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("core: retries=%q, want a positive integer", val)
			}
			fp.MaxRetries = n
		default:
			return nil, fmt.Errorf("core: unknown fault spec key %q", key)
		}
	}
	if reorderSet && fp.Net.ReorderDelay == 0 {
		fp.Net.ReorderDelay = sim.Millisecond
	}
	return fp, nil
}

func parseClass(name string) (netsim.Class, error) {
	for _, c := range netsim.Classes() {
		if strings.EqualFold(c.String(), name) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("core: unknown message class %q (want barrier, lock, diff, update, or migrate)", name)
}

func parseSimTime(s string) (sim.Time, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %v", d)
	}
	return sim.Time(d.Nanoseconds()), nil
}

func parseWindow(nodeS, startS, durS string) (node int, start, dur sim.Time, err error) {
	node, err = strconv.Atoi(nodeS)
	if err != nil || node < 0 {
		return 0, 0, 0, fmt.Errorf("node %q, want a non-negative integer", nodeS)
	}
	start, err = parseSimTime(startS)
	if err != nil {
		return 0, 0, 0, err
	}
	dur, err = parseSimTime(durS)
	if err != nil {
		return 0, 0, 0, err
	}
	if dur == 0 {
		return 0, 0, 0, fmt.Errorf("zero duration")
	}
	return node, start, dur, nil
}
