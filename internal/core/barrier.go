package core

import (
	"cvm/internal/trace"
)

// nodeBarrier is one node's state for one global barrier: local arrivals
// are aggregated so only the last local thread sends a per-node arrival
// message — the paper's multi-threaded barrier change.
type nodeBarrier struct {
	id      int
	arrived int
	waiters []*Thread
}

// barrierEpisode is the manager-side state of one barrier crossing.
type barrierEpisode struct {
	arrived   int
	arrivalVT []VClock // per node, nil until that node arrives
}

func (n *node) barrierAt(id int) *nodeBarrier {
	b := n.barriers[id]
	if b == nil {
		if n.barriers == nil {
			n.barriers = make(map[int]*nodeBarrier)
		}
		b = &nodeBarrier{id: id}
		n.barriers[id] = b
	}
	return b
}

// Barrier synchronizes all threads on all nodes. Arrival is an LRC
// release (the open interval closes); departure is an acquire (the
// release message carries every write notice the node has not seen).
// All but the last local thread switch out on arrival; the last sends a
// single per-node arrival carrying the node's interval knowledge.
func (t *Thread) Barrier(id int) {
	n := t.node
	b := n.barrierAt(id)
	b.arrived++
	if m := t.sys.met; m != nil {
		m.CountBarrierArrive(n.id)
	}
	a0 := t.task.Now() // arrival instant, for the BarrierStall metric
	if tr := t.sys.tracer; tr != nil {
		tr.Emit(trace.Event{T: t.task.Now(), Kind: trace.KindBarrierArrive,
			Node: int32(n.id), Thread: int32(t.gid), Sync: int32(id)})
	}
	if b.arrived < n.resident {
		b.waiters = append(b.waiters, t)
		t.block(ReasonBarrier)
		// Re-read the node through the thread: a migration order may have
		// re-homed it while it was blocked, and its stall belongs to the
		// node it resumed on.
		if nm := t.node.met; nm != nil {
			nm.BarrierStall.Observe(int64(t.task.Now() - a0))
		}
		return
	}

	// Last local thread: close the interval and send the node arrival.
	n.closeInterval(t)
	sys := t.sys
	const mgr = 0
	vt := n.vt.Clone()
	obs := n.takeAdaptObs() // nil unless adaptive coherence is on
	b.waiters = append(b.waiters, t)
	if n.id == mgr {
		// The manager's own arrival is deferred to engine context so
		// that, if it is the global last arrival, the release logic
		// finds every waiter (including this thread) already blocked.
		// Queued update pushes flush in barrierArrival, after the
		// release broadcast.
		t.task.Schedule(t.task.Now(), func() {
			if obs != nil {
				sys.adapt.noteObs(mgr, obs)
			}
			sys.barrierArrival(id, mgr, vt)
		})
		t.block(ReasonBarrier)
		if nm := t.node.met; nm != nil {
			nm.BarrierStall.Observe(int64(t.task.Now() - a0))
		}
		return
	}
	infos := n.ownInfosSince() // manager learns our new intervals
	bytes := barrierMsgBytes + vt.wireBytes() + infosBytes(infos) + obs.wireBytes()
	sys.sendFromTask(t.task, NodeID(n.id), NodeID(mgr),
		ClassBarrier, bytes, func() {
			sys.nodes[mgr].applyInfos(infos, nil)
			if obs != nil {
				sys.adapt.noteObs(n.id, obs)
			}
			sys.barrierArrival(id, n.id, vt)
		})
	// Queued update pushes flush in engine context behind the departed
	// arrival message: subscriber caches fill while the cluster is
	// barrier-waiting, and the blocked thread's clock never advances
	// (the release may arrive while the flush is still draining egress).
	if len(n.pendingPush) > 0 {
		t.task.Schedule(t.task.Now(), func() { n.flushPushes(nil) })
	}
	t.block(ReasonBarrier)
	if nm := t.node.met; nm != nil {
		nm.BarrierStall.Observe(int64(t.task.Now() - a0))
	}
}

// ownInfosSince returns the node's own intervals not yet shipped to the
// barrier manager.
func (n *node) ownInfosSince() []*IntervalInfo {
	if n.intervals == nil {
		return nil
	}
	infos := n.intervals[n.id]
	i := len(infos)
	for i > 0 && infos[i-1].Idx > n.barrierSentIdx {
		i--
	}
	out := infos[i:]
	n.barrierSentIdx = n.curIdx
	return out
}

// barrierArrival runs at the manager (engine context for remote nodes,
// thread context for the manager's own arrival). When the last node
// arrives the manager releases everyone, sending each node the interval
// knowledge its arrival vector time does not cover.
func (s *System) barrierArrival(id, from int, vt VClock) {
	ep := s.episodes[id]
	if ep == nil {
		if s.episodes == nil {
			s.episodes = make(map[int]*barrierEpisode)
		}
		ep = &barrierEpisode{arrivalVT: make([]VClock, s.cfg.Nodes)}
		s.episodes[id] = ep
	}
	ep.arrived++
	ep.arrivalVT[from] = vt
	need := s.cfg.Nodes
	if s.adapt != nil {
		// Migration can empty a node; emptied nodes send no arrival.
		need = s.adapt.occupied()
	}
	if ep.arrived < need {
		return
	}
	delete(s.episodes, id)

	// The barrier completion is the adaptation point: all threads are
	// blocked, so mode changes and migration orders piggybacked on the
	// releases apply atomically across the cluster.
	var rel *adaptRelease
	if s.adapt != nil {
		rel = s.adapt.decide()
	}

	mgr := s.nodes[0]
	// The manager has merged every node's interval knowledge (arrivals
	// carried it); its vt now dominates all arrivals.
	for nodeID := 0; nodeID < s.cfg.Nodes; nodeID++ {
		if nodeID == 0 {
			continue
		}
		nodeID := nodeID
		avt := ep.arrivalVT[nodeID]
		if avt == nil && s.adapt != nil {
			// Emptied node: it has learned exactly what its previous
			// release carried.
			avt = s.adapt.arrivalVT(nodeID, avt)
		}
		infos := mgr.newInfosSince(avt)
		bytes := barrierMsgBytes + mgr.vt.wireBytes() + infosBytes(infos) + rel.wireBytes()
		mgrVT := mgr.vt.Clone()
		s.sendFromHandler(NodeID(0), NodeID(nodeID),
			ClassBarrier, bytes, func() {
				n := s.nodes[nodeID]
				n.applyInfos(infos, mgrVT)
				if rel != nil {
					n.applyAdaptRelease(id, rel)
				}
				n.releaseBarrier(id)
			})
	}
	if s.adapt != nil {
		if rel != nil {
			mgr.applyAdaptRelease(id, rel)
		}
		s.adapt.recordRelease(mgr.vt)
	}
	mgr.releaseBarrier(id)
	// The manager's own update pushes flush last: the release broadcast
	// above must not queue behind bulk data on the manager's egress.
	mgr.flushPushes(nil)
}

// releaseBarrier wakes every local thread blocked at the barrier. It
// always runs in engine context: remote releases arrive as messages, and
// the manager's own arrival is deferred to an engine event.
func (n *node) releaseBarrier(id int) {
	b := n.barrierAt(id)
	waiters := b.waiters
	b.waiters = nil
	b.arrived = 0
	if tr := n.sys.tracer; tr != nil {
		tr.Emit(trace.Event{T: n.proc.LocalNow(), Kind: trace.KindBarrierRelease,
			Node: int32(n.id), Thread: -1, Sync: int32(id)})
	}
	for _, w := range waiters {
		n.sys.eng.Wake(w.task)
	}
}

// LocalBarrier synchronizes only the threads co-located on the calling
// thread's node. It costs no messages and no consistency actions: local
// threads share physical memory. This is the mechanism behind the
// paper's `r` source modification (per-node reduction aggregation).
func (t *Thread) LocalBarrier(id int) {
	n := t.node
	if t.sys.adapt != nil {
		// Local-barrier users depend on co-location; never migrate them.
		t.pinned = true
	}
	key := localBarrierKeyBase + id
	b := n.barrierAt(key)
	b.arrived++
	if m := t.sys.met; m != nil {
		m.CountLocalBarrierArrive(n.id)
	}
	a0 := t.task.Now()
	if tr := t.sys.tracer; tr != nil {
		tr.Emit(trace.Event{T: t.task.Now(), Kind: trace.KindBarrierArrive,
			Node: int32(n.id), Thread: int32(t.gid), Sync: int32(id), Aux: 1})
	}
	if b.arrived < n.resident {
		b.waiters = append(b.waiters, t)
		t.block(ReasonBarrier)
		if nm := n.met; nm != nil {
			nm.LocalBarrierStall.Observe(int64(t.task.Now() - a0))
		}
		return
	}
	waiters := b.waiters
	b.waiters = nil
	b.arrived = 0
	t.task.Advance(t.sys.cfg.LocalBarrierCost)
	if nm := n.met; nm != nil {
		nm.LocalBarrierStall.Observe(int64(t.task.Now() - a0))
	}
	if tr := t.sys.tracer; tr != nil {
		tr.Emit(trace.Event{T: t.task.Now(), Kind: trace.KindBarrierRelease,
			Node: int32(n.id), Thread: int32(t.gid), Sync: int32(id), Aux: 1})
	}
	for _, w := range waiters {
		t.sys.eng.WakeAt(w.task, t.task.Now())
	}
}

const (
	barrierMsgBytes     = 16
	localBarrierKeyBase = 1 << 20
)
