package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMakeDiffEmpty(t *testing.T) {
	twin := make([]byte, 128)
	cur := make([]byte, 128)
	if runs := MakeDiff(0, twin, cur); runs != nil {
		t.Errorf("identical pages produced %d runs, want none", len(runs))
	}
}

func TestMakeDiffSingleRun(t *testing.T) {
	twin := make([]byte, 128)
	cur := make([]byte, 128)
	copy(cur[10:], []byte{1, 2, 3})
	runs := MakeDiff(0, twin, cur)
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	if runs[0].Off != 10 || !bytes.Equal(runs[0].Data, []byte{1, 2, 3}) {
		t.Errorf("run = %+v, want off=10 data=[1 2 3]", runs[0])
	}
}

func TestMakeDiffMultipleRuns(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	cur[0] = 9
	cur[31] = 9
	cur[63] = 9
	runs := MakeDiff(0, twin, cur)
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(runs))
	}
}

func TestDiffApplyRoundTrip(t *testing.T) {
	// Property: applying MakeDiff(twin, cur) to a copy of twin yields cur.
	f := func(seed []byte) bool {
		const n = 256
		twin := make([]byte, n)
		cur := make([]byte, n)
		for i, b := range seed {
			twin[i%n] = b
		}
		copy(cur, twin)
		// Mutate cur at positions derived from the seed.
		for i, b := range seed {
			if b%3 == 0 {
				cur[(i*7)%n] ^= b | 1
			}
		}
		d := &Diff{Runs: MakeDiff(0, twin, cur)}
		got := make([]byte, n)
		copy(got, twin)
		d.Apply(got, nil)
		return bytes.Equal(got, cur)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiffApplyToTwin(t *testing.T) {
	twin := make([]byte, 32)
	dst := make([]byte, 32)
	d := &Diff{Runs: []Run{{Off: 4, Data: []byte{7, 8}}}}
	d.Apply(dst, twin)
	if dst[4] != 7 || twin[4] != 7 || dst[5] != 8 || twin[5] != 8 {
		t.Error("Apply did not update both destination and twin")
	}
}

func TestDiffOverlaps(t *testing.T) {
	a := &Diff{Runs: []Run{{Off: 0, Data: make([]byte, 8)}}}
	b := &Diff{Runs: []Run{{Off: 8, Data: make([]byte, 8)}}}
	c := &Diff{Runs: []Run{{Off: 4, Data: make([]byte, 8)}}}
	if a.Overlaps(b) {
		t.Error("adjacent diffs reported overlapping")
	}
	if !a.Overlaps(c) || !b.Overlaps(c) {
		t.Error("overlapping diffs reported disjoint")
	}
}

func TestDiffBytes(t *testing.T) {
	d := &Diff{VT: NewVClock(4), Runs: []Run{{Off: 0, Data: make([]byte, 100)}}}
	want := 16 + 16 + 8 + 100
	if got := d.Bytes(); got != want {
		t.Errorf("Bytes() = %d, want %d", got, want)
	}
}

func TestConcurrentDiffMergeCommutes(t *testing.T) {
	// Property: two diffs over disjoint regions applied in either order
	// produce the same page (multi-writer merge correctness).
	f := func(aData, bData []byte) bool {
		const n = 128
		base := make([]byte, n)
		a := &Diff{Runs: MakeDiff(0, base, pageWith(base, 0, aData, n/2))}
		b := &Diff{Runs: MakeDiff(0, base, pageWith(base, n/2, bData, n/2))}
		p1 := make([]byte, n)
		a.Apply(p1, nil)
		b.Apply(p1, nil)
		p2 := make([]byte, n)
		b.Apply(p2, nil)
		a.Apply(p2, nil)
		return bytes.Equal(p1, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// pageWith returns a copy of base with data written at off (clamped to
// limit bytes).
func pageWith(base []byte, off int, data []byte, limit int) []byte {
	p := make([]byte, len(base))
	copy(p, base)
	if len(data) > limit {
		data = data[:limit]
	}
	copy(p[off:], data)
	return p
}
