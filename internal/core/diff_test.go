package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMakeDiffEmpty(t *testing.T) {
	twin := make([]byte, 128)
	cur := make([]byte, 128)
	if runs := MakeDiff(0, twin, cur); runs != nil {
		t.Errorf("identical pages produced %d runs, want none", len(runs))
	}
}

func TestMakeDiffSingleRun(t *testing.T) {
	twin := make([]byte, 128)
	cur := make([]byte, 128)
	copy(cur[10:], []byte{1, 2, 3})
	runs := MakeDiff(0, twin, cur)
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	if runs[0].Off != 10 || !bytes.Equal(runs[0].Data, []byte{1, 2, 3}) {
		t.Errorf("run = %+v, want off=10 data=[1 2 3]", runs[0])
	}
}

func TestMakeDiffMultipleRuns(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	cur[0] = 9
	cur[31] = 9
	cur[63] = 9
	runs := MakeDiff(0, twin, cur)
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(runs))
	}
}

func TestDiffApplyRoundTrip(t *testing.T) {
	// Property: applying MakeDiff(twin, cur) to a copy of twin yields cur.
	f := func(seed []byte) bool {
		const n = 256
		twin := make([]byte, n)
		cur := make([]byte, n)
		for i, b := range seed {
			twin[i%n] = b
		}
		copy(cur, twin)
		// Mutate cur at positions derived from the seed.
		for i, b := range seed {
			if b%3 == 0 {
				cur[(i*7)%n] ^= b | 1
			}
		}
		d := &Diff{Runs: MakeDiff(0, twin, cur)}
		got := make([]byte, n)
		copy(got, twin)
		d.Apply(got, nil)
		return bytes.Equal(got, cur)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiffApplyToTwin(t *testing.T) {
	twin := make([]byte, 32)
	dst := make([]byte, 32)
	d := &Diff{Runs: []Run{{Off: 4, Data: []byte{7, 8}}}}
	d.Apply(dst, twin)
	if dst[4] != 7 || twin[4] != 7 || dst[5] != 8 || twin[5] != 8 {
		t.Error("Apply did not update both destination and twin")
	}
}

// makeDiffRef is the byte-at-a-time reference implementation MakeDiff's
// word-strided kernel must match exactly.
func makeDiffRef(twin, cur []byte) []Run {
	var runs []Run
	n := len(cur)
	i := 0
	for i < n {
		if twin[i] == cur[i] {
			i++
			continue
		}
		start := i
		for i < n && twin[i] != cur[i] {
			i++
		}
		data := make([]byte, i-start)
		copy(data, cur[start:i])
		runs = append(runs, Run{Off: int32(start), Data: data})
	}
	return runs
}

func runsEqual(a, b []Run) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Off != b[i].Off || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

// TestMakeDiffMatchesReference is the golden test for the word-strided
// kernel: identical run boundaries and contents to the byte-wise scan on
// random pages, plus handcrafted word-boundary edge cases.
func TestMakeDiffMatchesReference(t *testing.T) {
	// Edge cases around 8-byte word boundaries and non-multiple-of-8
	// lengths.
	cases := [][2][]byte{}
	addCase := func(n int, mutate func(cur []byte)) {
		twin := make([]byte, n)
		cur := make([]byte, n)
		mutate(cur)
		cases = append(cases, [2][]byte{twin, cur})
	}
	addCase(64, func(cur []byte) {})                         // clean page
	addCase(64, func(cur []byte) { cur[0] = 1 })             // run at start
	addCase(64, func(cur []byte) { cur[63] = 1 })            // run at end
	addCase(64, func(cur []byte) { cur[7] = 1; cur[8] = 1 }) // run across a word boundary
	addCase(64, func(cur []byte) {
		for i := range cur {
			cur[i] = byte(i) | 1 // every byte differs
		}
	})
	addCase(64, func(cur []byte) {
		for i := 0; i < 64; i += 2 {
			cur[i] = 1 // alternating differ/match defeats whole-word runs
		}
	})
	addCase(13, func(cur []byte) { cur[12] = 1 }) // tail shorter than a word
	addCase(7, func(cur []byte) { cur[3] = 1 })   // page shorter than a word
	addCase(1, func(cur []byte) { cur[0] = 1 })
	addCase(0, func(cur []byte) {})
	for i, c := range cases {
		twin, cur := c[0], c[1]
		if got, want := MakeDiff(0, twin, cur), makeDiffRef(twin, cur); !runsEqual(got, want) {
			t.Errorf("case %d: MakeDiff = %+v, want %+v", i, got, want)
		}
	}

	// Property check over pseudo-random sparse and dense patterns.
	f := func(seed []byte, dense bool) bool {
		const n = 259 // deliberately not a multiple of 8
		twin := make([]byte, n)
		cur := make([]byte, n)
		for i, b := range seed {
			twin[i%n] = b
		}
		copy(cur, twin)
		step := 31
		if dense {
			step = 2
		}
		for i, b := range seed {
			cur[(i*step)%n] ^= b
		}
		return runsEqual(MakeDiff(0, twin, cur), makeDiffRef(twin, cur))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiffOverlaps(t *testing.T) {
	a := &Diff{Runs: []Run{{Off: 0, Data: make([]byte, 8)}}}
	b := &Diff{Runs: []Run{{Off: 8, Data: make([]byte, 8)}}}
	c := &Diff{Runs: []Run{{Off: 4, Data: make([]byte, 8)}}}
	if a.Overlaps(b) {
		t.Error("adjacent diffs reported overlapping")
	}
	if !a.Overlaps(c) || !b.Overlaps(c) {
		t.Error("overlapping diffs reported disjoint")
	}
}

// TestDiffOverlapsAdjacent pins the aEnd == b.Off boundary: runs that
// touch but share no byte must not report an overlap, in either order.
func TestDiffOverlapsAdjacent(t *testing.T) {
	a := &Diff{Runs: []Run{{Off: 0, Data: make([]byte, 16)}}} // [0,16)
	b := &Diff{Runs: []Run{{Off: 16, Data: make([]byte, 8)}}} // [16,24)
	if a.Overlaps(b) || b.Overlaps(a) {
		t.Error("adjacent-but-not-overlapping runs reported overlapping")
	}
	c := &Diff{Runs: []Run{{Off: 15, Data: make([]byte, 2)}}} // [15,17) overlaps both
	if !a.Overlaps(c) || !b.Overlaps(c) {
		t.Error("one-byte overlap missed")
	}
}

// TestDiffOverlapsMergeWalk exercises the two-pointer merge with
// interleaved multi-run diffs, including a late overlap after several
// disjoint leading runs on both sides.
func TestDiffOverlapsMergeWalk(t *testing.T) {
	mk := func(spans ...[2]int32) *Diff {
		d := &Diff{}
		for _, s := range spans {
			d.Runs = append(d.Runs, Run{Off: s[0], Data: make([]byte, s[1]-s[0])})
		}
		return d
	}
	a := mk([2]int32{0, 4}, [2]int32{10, 14}, [2]int32{20, 24}, [2]int32{40, 48})
	b := mk([2]int32{4, 8}, [2]int32{14, 18}, [2]int32{24, 28})
	if a.Overlaps(b) || b.Overlaps(a) {
		t.Error("interleaved disjoint diffs reported overlapping")
	}
	c := mk([2]int32{4, 8}, [2]int32{14, 18}, [2]int32{47, 50}) // last run hits a's last
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Error("late overlap missed by merge walk")
	}
	empty := &Diff{}
	if a.Overlaps(empty) || empty.Overlaps(a) {
		t.Error("empty diff reported overlapping")
	}
}

// TestDiffOverlapsMatchesQuadratic cross-checks the merge walk against the
// all-pairs reference on random ascending run lists.
func TestDiffOverlapsMatchesQuadratic(t *testing.T) {
	quadratic := func(d, other *Diff) bool {
		for _, a := range d.Runs {
			for _, b := range other.Runs {
				aEnd := a.Off + int32(len(a.Data))
				bEnd := b.Off + int32(len(b.Data))
				if a.Off < bEnd && b.Off < aEnd {
					return true
				}
			}
		}
		return false
	}
	f := func(aSeed, bSeed []byte) bool {
		mk := func(seed []byte) *Diff {
			d := &Diff{}
			off := int32(0)
			for _, b := range seed {
				off += int32(b%37) + 1
				n := int32(b%11) + 1
				d.Runs = append(d.Runs, Run{Off: off, Data: make([]byte, n)})
				off += n
			}
			return d
		}
		a, b := mk(aSeed), mk(bSeed)
		return a.Overlaps(b) == quadratic(a, b) && b.Overlaps(a) == quadratic(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiffBytes(t *testing.T) {
	d := &Diff{VT: NewVClock(4), Runs: []Run{{Off: 0, Data: make([]byte, 100)}}}
	want := 16 + 16 + 8 + 100
	if got := d.Bytes(); got != want {
		t.Errorf("Bytes() = %d, want %d", got, want)
	}
}

func TestConcurrentDiffMergeCommutes(t *testing.T) {
	// Property: two diffs over disjoint regions applied in either order
	// produce the same page (multi-writer merge correctness).
	f := func(aData, bData []byte) bool {
		const n = 128
		base := make([]byte, n)
		a := &Diff{Runs: MakeDiff(0, base, pageWith(base, 0, aData, n/2))}
		b := &Diff{Runs: MakeDiff(0, base, pageWith(base, n/2, bData, n/2))}
		p1 := make([]byte, n)
		a.Apply(p1, nil)
		b.Apply(p1, nil)
		p2 := make([]byte, n)
		b.Apply(p2, nil)
		a.Apply(p2, nil)
		return bytes.Equal(p1, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// pageWith returns a copy of base with data written at off (clamped to
// limit bytes).
func pageWith(base []byte, off int, data []byte, limit int) []byte {
	p := make([]byte, len(base))
	copy(p, base)
	if len(data) > limit {
		data = data[:limit]
	}
	copy(p[off:], data)
	return p
}
