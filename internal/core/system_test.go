package core

import (
	"errors"
	"testing"

	"cvm/internal/sim"
)

// testSystem builds a system with the default calibration.
func testSystem(t *testing.T, nodes, threads int) *System {
	t.Helper()
	s, err := NewSystem(DefaultConfig(nodes, threads))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runApp allocates, starts, and runs the given thread body.
func runApp(t *testing.T, s *System, main func(*Thread)) {
	t.Helper()
	if err := s.Start(main); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(c *Config) {}, true},
		{"zero nodes", func(c *Config) { c.Nodes = 0 }, false},
		{"zero threads", func(c *Config) { c.ThreadsPerNode = 0 }, false},
		{"odd page size", func(c *Config) { c.PageSize = 1000 }, false},
		{"tiny page size", func(c *Config) { c.PageSize = 32 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(2, 2)
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestAllocPageAligned(t *testing.T) {
	s := testSystem(t, 2, 1)
	a, err := s.Alloc("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc("b", 8192)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 {
		t.Errorf("first segment base = %d, want 0", a)
	}
	if b != 8192 {
		t.Errorf("second segment base = %d, want 8192 (page aligned)", b)
	}
	if _, err := s.Alloc("bad", 0); err == nil {
		t.Error("Alloc(0) succeeded, want error")
	}
	if len(s.Segments()) != 2 {
		t.Errorf("segments = %d, want 2", len(s.Segments()))
	}
}

func TestSingleNodeReadWrite(t *testing.T) {
	s := testSystem(t, 1, 1)
	addr, _ := s.Alloc("data", 8192)
	var got float64
	runApp(t, s, func(w *Thread) {
		w.WriteF64(addr, 3.25)
		got = w.ReadF64(addr)
	})
	if got != 3.25 {
		t.Errorf("read back %v, want 3.25", got)
	}
}

func TestUninitializedReadsZero(t *testing.T) {
	s := testSystem(t, 2, 1)
	addr, _ := s.Alloc("data", 16384)
	vals := make([]float64, 2)
	runApp(t, s, func(w *Thread) {
		vals[w.NodeID()] = w.ReadF64(addr + Addr(w.NodeID()*8))
	})
	if vals[0] != 0 || vals[1] != 0 {
		t.Errorf("uninitialized reads = %v, want zeros", vals)
	}
}

func TestBarrierPropagatesWrites(t *testing.T) {
	// Node 0 writes, everyone barriers, all nodes must read the value.
	s := testSystem(t, 4, 1)
	addr, _ := s.Alloc("data", 8192)
	got := make([]float64, 4)
	runApp(t, s, func(w *Thread) {
		if w.GlobalID() == 0 {
			w.WriteF64(addr, 42)
		}
		w.Barrier(0)
		got[w.NodeID()] = w.ReadF64(addr)
	})
	for i, v := range got {
		if v != 42 {
			t.Errorf("node %d read %v, want 42", i, v)
		}
	}
	// Reading the value required remote faults on nodes 1..3.
	st := s.Stats()
	if st.Total.RemoteFaults < 3 {
		t.Errorf("remote faults = %d, want ≥ 3", st.Total.RemoteFaults)
	}
	if st.Total.DiffsCreated < 1 {
		t.Errorf("diffs created = %d, want ≥ 1", st.Total.DiffsCreated)
	}
	if st.Total.DiffsUsed < 3 {
		t.Errorf("diffs used = %d, want ≥ 3", st.Total.DiffsUsed)
	}
}

func TestLockCriticalSectionCounter(t *testing.T) {
	// Classic mutual-exclusion increment test across nodes and threads.
	const nodes, threads, rounds = 4, 2, 5
	s := testSystem(t, nodes, threads)
	addr, _ := s.Alloc("counter", 8192)
	runApp(t, s, func(w *Thread) {
		for r := 0; r < rounds; r++ {
			w.Lock(7)
			v := w.ReadI64(addr)
			w.WriteI64(addr, v+1)
			w.Unlock(7)
		}
		w.Barrier(0)
	})
	// Verify final value through a fresh read on node 0's view.
	want := int64(nodes * threads * rounds)
	final := s.nodes[0].peek(0)
	if final == nil || final.data == nil {
		t.Fatal("counter page never materialized on node 0")
	}
	// Node 0 may be stale if it wasn't the last writer; check via stats
	// instead: every node's last read inside the lock saw a consistent
	// chain, so check the maximum across nodes.
	var got int64
	for _, n := range s.nodes {
		p := n.peek(0)
		if p == nil || p.data == nil {
			continue
		}
		v := int64(le64(p.data))
		if v > got {
			got = v
		}
	}
	if got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func TestLockMutualExclusionOrdering(t *testing.T) {
	// Record critical-section entry/exit; sections must never overlap in
	// virtual time.
	s := testSystem(t, 3, 2)
	_, _ = s.Alloc("pad", 8192)
	type span struct{ in, out sim.Time }
	var spans []span
	runApp(t, s, func(w *Thread) {
		for r := 0; r < 3; r++ {
			w.Lock(1)
			in := w.Now()
			w.Compute(50 * sim.Microsecond)
			spans = append(spans, span{in, w.Now()})
			w.Unlock(1)
		}
	})
	for i := 1; i < len(spans); i++ {
		if spans[i].in < spans[i-1].out {
			t.Fatalf("critical sections overlap: %v before %v ended",
				spans[i].in, spans[i-1].out)
		}
	}
	if len(spans) != 18 {
		t.Errorf("sections = %d, want 18", len(spans))
	}
}

func TestMultiWriterFalseSharing(t *testing.T) {
	// Two nodes concurrently write different halves of the same page;
	// after a barrier both see both halves — the multiple-writer merge.
	s := testSystem(t, 2, 1)
	addr, _ := s.Alloc("shared", 8192)
	var a0, b0, a1, b1 float64
	runApp(t, s, func(w *Thread) {
		if w.NodeID() == 0 {
			w.WriteF64(addr, 1.5)
		} else {
			w.WriteF64(addr+4096, 2.5)
		}
		w.Barrier(0)
		if w.NodeID() == 0 {
			a0, b0 = w.ReadF64(addr), w.ReadF64(addr+4096)
		} else {
			a1, b1 = w.ReadF64(addr), w.ReadF64(addr+4096)
		}
	})
	if a0 != 1.5 || b0 != 2.5 {
		t.Errorf("node 0 sees (%v, %v), want (1.5, 2.5)", a0, b0)
	}
	if a1 != 1.5 || b1 != 2.5 {
		t.Errorf("node 1 sees (%v, %v), want (1.5, 2.5)", a1, b1)
	}
}

func TestLocalWritesSurviveRemoteDiff(t *testing.T) {
	// A node with a dirty page receives a concurrent remote diff for the
	// same page (false sharing): its own writes must survive, and its own
	// diff must not re-export the remote bytes.
	s := testSystem(t, 2, 1)
	addr, _ := s.Alloc("shared", 8192)
	var v0, v1 float64
	runApp(t, s, func(w *Thread) {
		// Both nodes write disjoint halves concurrently.
		if w.NodeID() == 0 {
			w.WriteF64(addr+8, 10)
		} else {
			w.WriteF64(addr+4096+8, 20)
		}
		w.Barrier(0)
		// Each node now writes again (still falsely shared) and reads
		// the other's earlier value.
		if w.NodeID() == 0 {
			w.WriteF64(addr+16, 11)
			v0 = w.ReadF64(addr + 4096 + 8)
		} else {
			w.WriteF64(addr+4096+16, 21)
			v1 = w.ReadF64(addr + 8)
		}
		w.Barrier(1)
		if w.NodeID() == 0 {
			v0 += w.ReadF64(addr + 4096 + 16) // should be 21
		} else {
			v1 += w.ReadF64(addr + 16) // should be 11
		}
	})
	if v0 != 20+21 {
		t.Errorf("node 0 observed %v, want 41", v0)
	}
	if v1 != 10+11 {
		t.Errorf("node 1 observed %v, want 21", v1)
	}
}

func TestBlockSamePage(t *testing.T) {
	// Two local threads touch the same invalid page: the second must join
	// the first's fetch (Block Same Page).
	s := testSystem(t, 2, 2)
	addr, _ := s.Alloc("data", 8192)
	runApp(t, s, func(w *Thread) {
		if w.NodeID() == 0 && w.LocalID() == 0 {
			w.WriteF64(addr, 5)
		}
		w.Barrier(0)
		if w.NodeID() == 1 {
			_ = w.ReadF64(addr + Addr(w.LocalID()*8))
		}
		w.Barrier(1)
	})
	st := s.Stats()
	if st.Nodes[1].BlockSamePage != 1 {
		t.Errorf("BlockSamePage = %d, want 1", st.Nodes[1].BlockSamePage)
	}
	if st.Nodes[1].RemoteFaults != 1 {
		t.Errorf("RemoteFaults = %d, want 1 (shared fetch)", st.Nodes[1].RemoteFaults)
	}
}

func TestBlockSameLockAndAggregation(t *testing.T) {
	// Threads on one node acquiring the same remote lock: one remote
	// request, the rest queue locally.
	s := testSystem(t, 2, 4)
	_, _ = s.Alloc("pad", 8192)
	runApp(t, s, func(w *Thread) {
		w.Barrier(0)
		if w.NodeID() == 1 {
			w.Lock(0) // lock 0's manager is node 0
			w.Compute(200 * sim.Microsecond)
			w.Unlock(0)
		}
		w.Barrier(1)
	})
	st := s.Stats()
	if st.Nodes[1].RemoteLocks != 1 {
		t.Errorf("RemoteLocks = %d, want 1 (local aggregation)", st.Nodes[1].RemoteLocks)
	}
	if st.Nodes[1].BlockSameLock != 3 {
		t.Errorf("BlockSameLock = %d, want 3", st.Nodes[1].BlockSameLock)
	}
}

func TestReleasePrefersLocalWaiters(t *testing.T) {
	// With local threads queued, release hands the lock over locally even
	// if a remote request arrived first; the remote node gets it only
	// after the local queue drains.
	s := testSystem(t, 2, 2)
	_, _ = s.Alloc("pad", 8192)
	var order []int
	runApp(t, s, func(w *Thread) {
		w.Barrier(0)
		switch {
		case w.NodeID() == 1:
			// Both node 1 threads grab the lock early.
			w.Compute(sim.Time(w.LocalID()) * 10 * sim.Microsecond)
			w.Lock(0)
			order = append(order, 10+w.LocalID())
			w.Compute(3000 * sim.Microsecond)
			w.Unlock(0)
		case w.LocalID() == 0:
			// Node 0 requests while node 1 holds it.
			w.Compute(1500 * sim.Microsecond)
			w.Lock(0)
			order = append(order, 0)
			w.Unlock(0)
		}
		w.Barrier(1)
	})
	want := []int{10, 11, 0}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Errorf("acquisition order = %v, want %v (local preference)", order, want)
	}
}

func TestLocalBarrier(t *testing.T) {
	// Local barriers synchronize co-located threads without messages.
	s := testSystem(t, 2, 4)
	_, _ = s.Alloc("pad", 8192)
	counts := make([]int, 2)
	runApp(t, s, func(w *Thread) {
		counts[w.NodeID()]++
		w.LocalBarrier(3)
		if counts[w.NodeID()] != 4 {
			t.Errorf("thread passed local barrier with count %d", counts[w.NodeID()])
		}
	})
	if s.Stats().Net.TotalMsgs() != 0 {
		t.Errorf("local barrier sent %d messages, want 0", s.Stats().Net.TotalMsgs())
	}
}

func TestReduceF64(t *testing.T) {
	s := testSystem(t, 4, 3)
	_, _ = s.Alloc("pad", 8192)
	results := make(chan float64, 12)
	runApp(t, s, func(w *Thread) {
		v := float64(w.GlobalID() + 1)
		results <- w.ReduceF64(0, v, ReduceSum)
	})
	close(results)
	want := 78.0 // 1+2+...+12
	for r := range results {
		if r != want {
			t.Fatalf("reduce result = %v, want %v", r, want)
		}
	}
	// One arrival + one release per non-manager node.
	if got := s.Stats().Net.TotalMsgs(); got != 6 {
		t.Errorf("reduce messages = %d, want 6", got)
	}
}

func TestReduceMaxMin(t *testing.T) {
	s := testSystem(t, 2, 2)
	_, _ = s.Alloc("pad", 8192)
	var gotMax, gotMin float64
	runApp(t, s, func(w *Thread) {
		max := w.ReduceF64(0, float64(w.GlobalID()), ReduceMax)
		min := w.ReduceF64(1, float64(w.GlobalID())-10, ReduceMin)
		if w.GlobalID() == 0 {
			gotMax, gotMin = max, min
		}
	})
	if gotMax != 3 {
		t.Errorf("max = %v, want 3", gotMax)
	}
	if gotMin != -10 {
		t.Errorf("min = %v, want -10", gotMin)
	}
}

func TestThreadSwitchOnRemoteRequest(t *testing.T) {
	// While thread 0 waits on a remote fault, thread 1 must run — the
	// paper's core latency-hiding mechanism.
	s := testSystem(t, 2, 2)
	addr, _ := s.Alloc("data", 16384)
	var overlapped sim.Time
	runApp(t, s, func(w *Thread) {
		if w.NodeID() == 0 && w.LocalID() == 0 {
			w.WriteF64(addr, 1)
			w.WriteF64(addr+8192, 2)
		}
		w.Barrier(0)
		if w.NodeID() == 1 {
			if w.LocalID() == 0 {
				_ = w.ReadF64(addr) // blocks on remote fault
			} else {
				start := w.Now()
				w.Compute(400 * sim.Microsecond) // runs during the fault
				overlapped = w.Now() - start
			}
		}
		w.Barrier(1)
	})
	st := s.Stats()
	if st.Nodes[1].ThreadSwitches == 0 {
		t.Error("no thread switches on node 1")
	}
	if overlapped < 400*sim.Microsecond {
		t.Errorf("thread 1 computed %v, want ≥ 400µs", overlapped)
	}
	// The fault latency partially overlapped with computation, so
	// non-overlapped fault wait must be below the full ~1100µs.
	if st.Nodes[1].FaultWait >= 1100*sim.Microsecond {
		t.Errorf("fault wait = %v, want < 1100µs (overlap)", st.Nodes[1].FaultWait)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (RunStats, float64) {
		s := testSystem(t, 4, 2)
		addr, _ := s.Alloc("grid", 64*1024)
		var sum float64
		if err := s.Start(func(w *Thread) {
			n := 64 * 1024 / 8
			chunk := n / w.Threads()
			for r := 0; r < 3; r++ {
				for i := w.GlobalID() * chunk; i < (w.GlobalID()+1)*chunk; i++ {
					a := addr + Addr(i*8)
					w.WriteF64(a, w.ReadF64(a)+float64(r+w.GlobalID()))
				}
				w.Barrier(r)
			}
			if w.GlobalID() == 0 {
				for i := 0; i < n; i += 128 {
					sum += w.ReadF64(addr + Addr(i*8))
				}
			}
			w.Barrier(100)
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Stats(), sum
	}
	st1, sum1 := run()
	st2, sum2 := run()
	if sum1 != sum2 {
		t.Errorf("checksums differ: %v vs %v", sum1, sum2)
	}
	if st1.Wall != st2.Wall {
		t.Errorf("wall times differ: %v vs %v", st1.Wall, st2.Wall)
	}
	if st1.Total != st2.Total {
		t.Errorf("stats differ:\n%+v\n%+v", st1.Total, st2.Total)
	}
}

func TestDeadlockSurfaced(t *testing.T) {
	s := testSystem(t, 1, 2)
	_, _ = s.Alloc("pad", 8192)
	if err := s.Start(func(w *Thread) {
		if w.LocalID() == 0 {
			w.Lock(0)
			// Never unlocked: thread 1 blocks forever.
		} else {
			w.Lock(0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	err := s.Run()
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("Run() = %v, want deadlock", err)
	}
}

func TestMarkSteadyStateResets(t *testing.T) {
	s := testSystem(t, 2, 1)
	addr, _ := s.Alloc("data", 8192)
	runApp(t, s, func(w *Thread) {
		if w.NodeID() == 0 {
			w.WriteF64(addr, 1)
		}
		w.Barrier(0)
		_ = w.ReadF64(addr)
		w.Barrier(1)
		if w.GlobalID() == 0 {
			w.MarkSteadyState()
		}
		w.Barrier(2)
		w.Compute(100 * sim.Microsecond)
	})
	st := s.Stats()
	if st.Total.RemoteFaults != 0 {
		t.Errorf("post-reset remote faults = %d, want 0", st.Total.RemoteFaults)
	}
	if st.Wall <= 0 {
		t.Errorf("wall = %v, want > 0", st.Wall)
	}
	if st.Wall > 10*sim.Millisecond {
		t.Errorf("wall = %v, want small post-reset window", st.Wall)
	}
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	s := testSystem(t, 1, 1)
	_, _ = s.Alloc("pad", 8192)
	panicked := make(chan bool, 1)
	if err := s.Start(func(w *Thread) {
		defer func() { panicked <- recover() != nil }()
		w.Unlock(0)
	}); err != nil {
		t.Fatal(err)
	}
	_ = s.Run()
	select {
	case p := <-panicked:
		if !p {
			t.Error("Unlock without Lock did not panic")
		}
	default:
		t.Error("thread did not finish")
	}
}
