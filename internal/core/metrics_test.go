package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"cvm/internal/metrics"
	"cvm/internal/sim"
)

// metricsSystem builds a default-calibration system with a metrics
// registry attached.
func metricsSystem(t *testing.T, nodes, threads int) (*System, *metrics.Registry) {
	t.Helper()
	cfg := DefaultConfig(nodes, threads)
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, reg
}

// histMean asserts a histogram observed exactly count samples with a
// mean within tol of want.
func histMean(t *testing.T, name string, h metrics.Histogram, count int64, want, tol sim.Time) {
	t.Helper()
	if h.Count != count {
		t.Fatalf("%s: count = %d, want %d", name, h.Count, count)
	}
	within(t, name+" mean", sim.Time(h.Mean()), want, tol)
}

// TestMetricsTwoHopLockCalibration cross-checks the Lock2Hop histogram
// against the paper's §4.1 2-hop acquire (937µs), on the workload of
// TestCalibrationTwoHopLock, and against the thread's own measurement.
func TestMetricsTwoHopLockCalibration(t *testing.T) {
	s, reg := metricsSystem(t, 2, 1)
	_, _ = s.Alloc("pad", 8192)
	var cost sim.Time
	runApp(t, s, func(w *Thread) {
		if w.NodeID() == 1 {
			start := w.Now()
			w.Lock(0)
			cost = w.Now() - start
			w.Unlock(0)
		}
	})
	snap := reg.Snapshot()
	h := snap.Nodes[1].Lock2Hop
	histMean(t, "Lock2Hop", h, 1, 937*us, 40*us)
	if got := sim.Time(h.Sum); got != cost {
		t.Errorf("Lock2Hop sum = %v, thread measured %v", got, cost)
	}
	if c := snap.Nodes[1].Lock3Hop.Count; c != 0 {
		t.Errorf("Lock3Hop observed %d acquires on the 2-hop path", c)
	}
	// The acquire wait is attributed to lock 0.
	if a := snap.LockWait[0]; a == nil || a.Count != 1 || sim.Time(a.WaitNs) != cost {
		t.Errorf("LockWait[0] = %+v, want 1 wait of %v", snap.LockWait[0], cost)
	}
}

// TestMetricsThreeHopLockCalibration cross-checks Lock3Hop against the
// paper's 1382µs forwarded acquire.
func TestMetricsThreeHopLockCalibration(t *testing.T) {
	s, reg := metricsSystem(t, 3, 1)
	_, _ = s.Alloc("pad", 8192)
	runApp(t, s, func(w *Thread) {
		if w.NodeID() == 1 {
			w.Lock(0)
			w.Unlock(0)
		}
		w.Barrier(0)
		if w.NodeID() == 2 {
			w.Lock(0)
			w.Unlock(0)
		}
	})
	snap := reg.Snapshot()
	// Node 1's initial acquire is classified 2-hop (manager-held token);
	// its latency is not asserted because it contends with the other
	// nodes' barrier arrivals at the manager. Node 2's acquire goes
	// through the forward path at the paper's 3-hop cost.
	if c := snap.Nodes[1].Lock2Hop.Count; c != 1 {
		t.Errorf("node 1 Lock2Hop count = %d, want 1", c)
	}
	histMean(t, "node2 Lock3Hop", snap.Nodes[2].Lock3Hop, 1, 1382*us, 60*us)
	if c := snap.Nodes[2].Lock2Hop.Count; c != 0 {
		t.Errorf("node 2 recorded %d 2-hop acquires on the forwarded path", c)
	}
}

// TestMetricsRemoteFaultCalibration cross-checks FaultService against
// the paper's ~1100µs remote page fault.
func TestMetricsRemoteFaultCalibration(t *testing.T) {
	s, reg := metricsSystem(t, 2, 1)
	addr, _ := s.Alloc("page", 8192)
	runApp(t, s, func(w *Thread) {
		if w.NodeID() == 0 {
			for i := 0; i < 8192; i += 8 {
				w.WriteF64(addr+Addr(i), float64(i))
			}
		}
		w.Barrier(0)
		if w.NodeID() == 1 {
			_ = w.ReadF64(addr)
		}
	})
	snap := reg.Snapshot()
	histMean(t, "FaultService", snap.Nodes[1].FaultService, 1, 1100*us, 150*us)
	if snap.Nodes[1].FaultThreadWait.Count != 1 {
		t.Errorf("FaultThreadWait count = %d, want 1", snap.Nodes[1].FaultThreadWait.Count)
	}
	// The fault wait is attributed to the faulted page.
	pg := int32(addr / Addr(s.cfg.PageSize))
	if a := snap.PageWait[pg]; a == nil || a.Count != 1 {
		t.Errorf("PageWait[%d] = %+v, want one wait", pg, snap.PageWait[pg])
	}
}

// metricsWorkload is a mixed fault/lock/barrier workload exercising
// every metric family, with a MarkSteadyState reset in the middle so
// the test covers the registry's epoch re-anchoring.
func metricsWorkload(addr Addr) func(*Thread) {
	return func(w *Thread) {
		n := 1 + w.GlobalID()%3
		for r := 0; r < 2; r++ {
			for i := 0; i < 64*n; i++ {
				off := Addr((w.GlobalID()*64 + i) % 512 * 8)
				w.WriteF64(addr+off, float64(i))
				_ = w.ReadF64(addr + (off+4096)%8192)
			}
			w.Lock(w.GlobalID() % 2)
			w.Compute(5 * us)
			w.Unlock(w.GlobalID() % 2)
			w.Barrier(r)
			if r == 0 {
				w.MarkSteadyState()
			}
		}
	}
}

// TestMetricsWallReconciliation asserts the tentpole's core invariant:
// per node, UserBurst.Sum + FaultIdle.Sum + LockIdle.Sum +
// BarrierIdle.Sum equals NodeStats.Wall() exactly — the histograms are
// observed in the same scheduler hooks that accrue the stats, across a
// MarkSteadyState reset.
func TestMetricsWallReconciliation(t *testing.T) {
	s, reg := metricsSystem(t, 4, 2)
	addr, _ := s.Alloc("data", 8192)
	runApp(t, s, metricsWorkload(addr))
	st := s.Stats()
	snap := reg.Snapshot()

	if len(snap.Nodes) != 4 {
		t.Fatalf("snapshot has %d nodes, want 4", len(snap.Nodes))
	}
	for i, n := range snap.Nodes {
		got := n.UserBurst.Sum + n.FaultIdle.Sum + n.LockIdle.Sum + n.BarrierIdle.Sum
		want := int64(st.Nodes[i].Wall())
		if got != want {
			t.Errorf("node %d: histogram wall %d != NodeStats.Wall %d (Δ%d)",
				i, got, want, got-want)
		}
		if n.UserBurst.Sum != int64(st.Nodes[i].UserTime) {
			t.Errorf("node %d: UserBurst.Sum %d != UserTime %d", i, n.UserBurst.Sum, int64(st.Nodes[i].UserTime))
		}
		if n.FaultIdle.Sum != int64(st.Nodes[i].FaultWait) {
			t.Errorf("node %d: FaultIdle.Sum %d != FaultWait %d", i, n.FaultIdle.Sum, int64(st.Nodes[i].FaultWait))
		}
		if n.LockIdle.Sum != int64(st.Nodes[i].LockWait) {
			t.Errorf("node %d: LockIdle.Sum %d != LockWait %d", i, n.LockIdle.Sum, int64(st.Nodes[i].LockWait))
		}
		if n.BarrierIdle.Sum != int64(st.Nodes[i].BarrierWait) {
			t.Errorf("node %d: BarrierIdle.Sum %d != BarrierWait %d", i, n.BarrierIdle.Sum, int64(st.Nodes[i].BarrierWait))
		}
		// The utilization timeline holds the same spans, except that
		// remainders straddling the steady-state epoch clamp to it, so
		// each component is bounded by its histogram sum and the
		// timeline is never empty.
		var tl metrics.TimelineBin
		for _, b := range snap.Timeline[i] {
			tl.UserNs += b.UserNs
			tl.FaultNs += b.FaultNs
			tl.LockNs += b.LockNs
			tl.BarrierNs += b.BarrierNs
		}
		if tl == (metrics.TimelineBin{}) {
			t.Errorf("node %d: empty utilization timeline", i)
		}
		if tl.UserNs > n.UserBurst.Sum || tl.FaultNs > n.FaultIdle.Sum ||
			tl.LockNs > n.LockIdle.Sum || tl.BarrierNs > n.BarrierIdle.Sum {
			t.Errorf("node %d: timeline %+v exceeds histogram sums", i, tl)
		}
	}
	if snap.Nodes[0].DiffBytes.Count == 0 {
		t.Error("no diffs observed by the workload")
	}
}

// TestMetricsNeutrality asserts the A/B property: the run's statistics
// are bit-identical with metrics enabled and disabled (observation
// never advances virtual time or perturbs scheduling).
func TestMetricsNeutrality(t *testing.T) {
	run := func(withMetrics bool) (RunStats, *metrics.Snapshot) {
		cfg := DefaultConfig(4, 2)
		var reg *metrics.Registry
		if withMetrics {
			reg = metrics.NewRegistry()
			cfg.Metrics = reg
		}
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		addr, _ := s.Alloc("data", 8192)
		runApp(t, s, metricsWorkload(addr))
		if reg == nil {
			return s.Stats(), nil
		}
		return s.Stats(), reg.Snapshot()
	}
	on, _ := run(true)
	off, _ := run(false)
	if !reflect.DeepEqual(on, off) {
		t.Errorf("stats differ with metrics on vs off:\n on: %+v\noff: %+v", on.Total, off.Total)
	}
}

// TestMetricsReportDeterministic asserts the serialized report is
// byte-identical across repeated runs of the same configuration.
func TestMetricsReportDeterministic(t *testing.T) {
	report := func() []byte {
		s, reg := metricsSystem(t, 4, 2)
		addr, _ := s.Alloc("data", 8192)
		runApp(t, s, metricsWorkload(addr))
		data, err := json.MarshalIndent(reg.Snapshot(), "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := report(), report()
	if !bytes.Equal(a, b) {
		t.Error("metrics snapshot JSON differs between identical runs")
	}
}
