package core

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// roundTripRuns encodes runs, decodes them back, and fails on any
// mismatch or trailing bytes.
func roundTripRuns(t *testing.T, runs []Run) []byte {
	t.Helper()
	enc := EncodeRuns(nil, runs)
	if got := EncodedRunsSize(runs); got != len(enc) {
		t.Fatalf("EncodedRunsSize = %d, len(EncodeRuns) = %d", got, len(enc))
	}
	dec, rest, err := DecodeRuns(enc)
	if err != nil {
		t.Fatalf("DecodeRuns: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("DecodeRuns left %d trailing bytes", len(rest))
	}
	if len(dec) != len(runs) {
		t.Fatalf("decoded %d runs, want %d", len(dec), len(runs))
	}
	for i := range runs {
		if dec[i].Off != runs[i].Off || !bytes.Equal(dec[i].Data, runs[i].Data) {
			t.Fatalf("run %d: got (%d, %x), want (%d, %x)",
				i, dec[i].Off, dec[i].Data, runs[i].Off, runs[i].Data)
		}
	}
	return enc
}

func TestEncodeRunsRoundTrip(t *testing.T) {
	cases := map[string][]Run{
		"empty":   nil,
		"one":     {{Off: 0, Data: []byte{1}}},
		"tail":    {{Off: 8191, Data: []byte{9}}},
		"full":    {{Off: 0, Data: bytes.Repeat([]byte{0xAB}, 8192)}},
		"back2":   {{Off: 0, Data: []byte{1, 2}}, {Off: 2, Data: []byte{3}}},
		"repeats": {{Off: 100, Data: append(bytes.Repeat([]byte{7}, 100), 1, 2, 3)}},
		"words": {
			{Off: 64, Data: []byte{1, 0, 0, 0, 0, 0, 0, 0}},
			{Off: 512, Data: []byte{2, 0, 0, 0, 0, 0, 0, 0}},
		},
	}
	for name, runs := range cases {
		t.Run(name, func(t *testing.T) { roundTripRuns(t, runs) })
	}
}

// TestEncodeRunsMatchesMakeDiff drives the codec with real MakeDiff
// output over a deterministic pseudo-random write workload: whatever the
// protocol can produce, the wire must round-trip bit-exactly.
func TestEncodeRunsMatchesMakeDiff(t *testing.T) {
	const pageSize = 4096
	rng := uint64(1)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for trial := 0; trial < 200; trial++ {
		twin := make([]byte, pageSize)
		for i := range twin {
			twin[i] = byte(next())
		}
		cur := append([]byte(nil), twin...)
		writes := int(next() % 40)
		for w := 0; w < writes; w++ {
			off := int(next() % pageSize)
			ln := 1 + int(next()%64)
			if off+ln > pageSize {
				ln = pageSize - off
			}
			switch next() % 3 {
			case 0: // word write of a small value
				for i := 0; i < ln; i++ {
					cur[off+i] = 0
				}
				cur[off] = byte(next())
			case 1: // repeated fill
				b := byte(next())
				for i := 0; i < ln; i++ {
					cur[off+i] = b
				}
			default: // high-entropy splat
				for i := 0; i < ln; i++ {
					cur[off+i] = byte(next())
				}
			}
		}
		runs := MakeDiff(0, twin, cur)
		enc := roundTripRuns(t, runs)
		// Apply the decoded runs to a copy of the twin and compare pages:
		// end-to-end, wire form included, the receiver reconstructs cur.
		dec, _, _ := DecodeRuns(enc)
		got := append([]byte(nil), twin...)
		(&Diff{Runs: dec}).Apply(got, nil)
		if !bytes.Equal(got, cur) {
			t.Fatalf("trial %d: page reconstruction diverged", trial)
		}
	}
}

func TestDecodeRunsRejectsCorruption(t *testing.T) {
	runs := []Run{{Off: 0, Data: bytes.Repeat([]byte{5}, 100)}, {Off: 200, Data: []byte{1, 2, 3}}}
	enc := EncodeRuns(nil, runs)
	if _, _, err := DecodeRuns(enc[:len(enc)-1]); err == nil {
		t.Error("truncated payload decoded without error")
	}
	if _, _, err := DecodeRuns(enc[:1]); err == nil {
		t.Error("header-only payload decoded without error")
	}
	// A run count far beyond anything legal must be rejected up front.
	huge := binary.AppendUvarint(nil, 1<<30)
	if _, _, err := DecodeRuns(huge); err == nil {
		t.Error("absurd run count decoded without error")
	}
}

func TestVClockRoundTrip(t *testing.T) {
	cases := []VClock{
		nil,
		{},
		{0, 0, 0, 0},
		{1, 2, 3},
		{0, 0, 7, 0, 0, 0, 9, 1 << 30, 0},
		make(VClock, 1024),
	}
	big := make(VClock, 1024)
	big[3] = 44
	big[1000] = 7
	cases = append(cases, big)
	for i, vt := range cases {
		enc := AppendVClock(nil, vt)
		if got := VClockEncodedSize(vt); got != len(enc) {
			t.Fatalf("case %d: VClockEncodedSize = %d, len = %d", i, got, len(enc))
		}
		dec, rest, err := DecodeVClock(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(rest) != 0 || len(dec) != len(vt) {
			t.Fatalf("case %d: rest=%d len=%d want %d", i, len(rest), len(dec), len(vt))
		}
		for j := range vt {
			if dec[j] != vt[j] {
				t.Fatalf("case %d component %d: got %d want %d", i, j, dec[j], vt[j])
			}
		}
	}
	// A sparse 1024-node clock must cost bytes, not kilobytes.
	if got := VClockEncodedSize(big); got > 32 {
		t.Errorf("sparse 1024-component clock encodes to %d bytes", got)
	}
}

// TestWirePatternRatios pins the compression guarantees the metrics gate
// enforces: ≤ 60% of raw on the sparse pattern, never meaningfully
// inflating on the incompressible dense pattern.
func TestWirePatternRatios(t *testing.T) {
	const pageSize = 8 << 10
	caps := map[string]float64{"sparse": 0.60, "dense": 1.01, "strided": 0.90}
	for _, pattern := range WirePatterns() {
		twin, cur := WirePatternPages(pattern, pageSize)
		runs := MakeDiff(0, twin, cur)
		if len(runs) == 0 {
			t.Fatalf("%s: no runs", pattern)
		}
		raw := 0
		for _, r := range runs {
			raw += 8 + len(r.Data)
		}
		enc := roundTripRuns(t, runs)
		ratio := float64(len(enc)) / float64(raw)
		t.Logf("%s: raw %d encoded %d ratio %.3f", pattern, raw, len(enc), ratio)
		if cap, ok := caps[pattern]; !ok || ratio > cap {
			t.Errorf("%s: ratio %.3f exceeds cap %.2f (raw %d, encoded %d)",
				pattern, ratio, cap, raw, len(enc))
		}
	}
}

// TestWireBytesAccounting: WireBytes(false) is the legacy accounting,
// WireBytes(true) the cached compressed size.
func TestWireBytesAccounting(t *testing.T) {
	twin, cur := WirePatternPages("sparse", 8<<10)
	vt := VClock{3, 0, 0, 5}
	d := &Diff{Page: 1, Node: 0, Idx: 3, VT: vt, Runs: MakeDiff(1, twin, cur)}
	if got, want := d.WireBytes(false), d.Bytes(); got != want {
		t.Errorf("WireBytes(false) = %d, want Bytes() = %d", got, want)
	}
	want := 16 + VClockEncodedSize(vt) + EncodedRunsSize(d.Runs)
	if got := d.WireBytes(true); got != want {
		t.Errorf("WireBytes(true) = %d, want %d", got, want)
	}
	if got := d.WireBytes(true); got != want {
		t.Errorf("cached WireBytes(true) = %d, want %d", got, want)
	}
	if d.WireBytes(true) >= d.WireBytes(false) {
		t.Errorf("compressed %d not smaller than raw %d on the sparse pattern",
			d.WireBytes(true), d.WireBytes(false))
	}
}

// TestCompressDiffsEquivalence: compression changes message sizes (and
// therefore virtual timing) but must not change a single computed value
// or protocol decision. Run the same lock-counter workload both ways and
// compare final memory contents and protocol counts that are
// timing-independent.
func TestCompressDiffsEquivalence(t *testing.T) {
	run := func(compress bool) (int64, RunStats) {
		cfg := DefaultConfig(4, 2)
		cfg.CompressDiffs = compress
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		addr, _ := s.Alloc("counter", cfg.PageSize)
		var final int64
		runApp(t, s, func(w *Thread) {
			for r := 0; r < 5; r++ {
				w.Lock(1)
				w.WriteI64(addr, w.ReadI64(addr)+1)
				w.Unlock(1)
			}
			w.Barrier(0)
			if w.GlobalID() == 0 {
				w.Lock(1)
				final = w.ReadI64(addr)
				w.Unlock(1)
			}
		})
		return final, s.Stats()
	}
	vOff, stOff := run(false)
	vOn, stOn := run(true)
	if vOff != vOn || vOff != 40 {
		t.Fatalf("counter: off=%d on=%d want 40", vOff, vOn)
	}
	if stOn.Net.Bytes[ClassDiff] >= stOff.Net.Bytes[ClassDiff] {
		t.Errorf("compressed diff bytes %d not below raw %d",
			stOn.Net.Bytes[ClassDiff], stOff.Net.Bytes[ClassDiff])
	}
	if stOn.Net.Msgs != stOff.Net.Msgs {
		t.Errorf("message counts diverged: %v vs %v", stOn.Net.Msgs, stOff.Net.Msgs)
	}
}

// Benchmarks: the encoder/decoder on the gated wire patterns. These feed
// the BENCH_harness.json micro section (DiffEncode/DiffDecode).
func benchmarkDiffEncode(b *testing.B, pattern string) {
	twin, cur := WirePatternPages(pattern, benchPageSize)
	runs := MakeDiff(0, twin, cur)
	raw := 0
	for _, r := range runs {
		raw += 8 + len(r.Data)
	}
	var dst []byte
	b.SetBytes(int64(benchPageSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EncodeRuns(dst[:0], runs)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(dst))/float64(raw), "ratio")
}

func BenchmarkDiffEncodeSparse(b *testing.B)  { benchmarkDiffEncode(b, "sparse") }
func BenchmarkDiffEncodeDense(b *testing.B)   { benchmarkDiffEncode(b, "dense") }
func BenchmarkDiffEncodeStrided(b *testing.B) { benchmarkDiffEncode(b, "strided") }

func benchmarkDiffDecode(b *testing.B, pattern string) {
	twin, cur := WirePatternPages(pattern, benchPageSize)
	enc := EncodeRuns(nil, MakeDiff(0, twin, cur))
	b.SetBytes(int64(benchPageSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRuns(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiffDecodeSparse(b *testing.B) { benchmarkDiffDecode(b, "sparse") }
func BenchmarkDiffDecodeDense(b *testing.B)  { benchmarkDiffDecode(b, "dense") }

// Ensure the fixtures cover the documented shapes (a guard against
// silently editing a pattern into triviality).
func TestWirePatternShapes(t *testing.T) {
	for _, pattern := range WirePatterns() {
		twin, cur := WirePatternPages(pattern, 8<<10)
		if len(twin) != 8<<10 || len(cur) != 8<<10 {
			t.Fatalf("%s: wrong page sizes", pattern)
		}
		runs := MakeDiff(0, twin, cur)
		total := 0
		for _, r := range runs {
			total += len(r.Data)
		}
		switch pattern {
		case "sparse":
			if total < 512 || total > 2048 {
				t.Errorf("sparse modifies %d bytes, want ~1/8 of the page", total)
			}
		case "dense":
			if total < 8000 {
				t.Errorf("dense modifies only %d bytes", total)
			}
		case "strided":
			if len(runs) < 100 {
				t.Errorf("strided has %d runs, want a regular stride", len(runs))
			}
		}
	}
}
