package core

// ReduceOp selects the combining operator of a reduction.
type ReduceOp uint8

// Reduction operators.
const (
	ReduceSum ReduceOp = iota
	ReduceMax
	ReduceMin
)

// Combine applies op to two partial results; other engines (internal/rt)
// reuse it so every runtime folds reductions with the same operator
// semantics.
func Combine(op ReduceOp, a, b float64) float64 { return op.combine(a, b) }

func (op ReduceOp) combine(a, b float64) float64 {
	switch op {
	case ReduceMax:
		if b > a {
			return b
		}
		return a
	case ReduceMin:
		if b < a {
			return b
		}
		return a
	default:
		return a + b
	}
}

// nodeReduce aggregates local contributions to one global reduction.
type nodeReduce struct {
	arrived int
	acc     float64
	result  float64
	waiters []*Thread
}

// reduceEpisode is the manager-side state of one global reduction.
type reduceEpisode struct {
	arrived int
	acc     float64
	started bool
}

// ReduceF64 combines v across all threads of the system and returns the
// combined value to every thread. This is CVM's built-in reduction
// support: local contributions are aggregated per node first, so each
// reduction costs one message pair per node regardless of the threading
// level. (The paper notes its applications predate this interface and
// hand-roll reductions with locks or local barriers instead.)
func (t *Thread) ReduceF64(id int, v float64, op ReduceOp) float64 {
	n := t.node
	if m := t.sys.met; m != nil {
		m.CountReduce(n.id)
	}
	r := n.reduces[id]
	if r == nil {
		if n.reduces == nil {
			n.reduces = make(map[int]*nodeReduce)
		}
		r = &nodeReduce{}
		n.reduces[id] = r
	}
	if r.arrived == 0 {
		r.acc = v
	} else {
		r.acc = op.combine(r.acc, v)
	}
	r.arrived++
	if r.arrived < n.resident {
		r.waiters = append(r.waiters, t)
		t.block(ReasonBarrier)
		return r.result
	}

	// Last local thread ships the node's contribution to the manager.
	sys := t.sys
	const mgr = 0
	contribution := r.acc
	r.waiters = append(r.waiters, t)
	if n.id == mgr {
		t.task.Schedule(t.task.Now(), func() {
			sys.reduceArrival(id, contribution, op)
		})
		t.block(ReasonBarrier)
		return r.result
	}
	sys.sendFromTask(t.task, NodeID(n.id), NodeID(mgr),
		ClassBarrier, reduceMsgBytes, func() {
			sys.reduceArrival(id, contribution, op)
		})
	t.block(ReasonBarrier)
	return r.result
}

// reduceArrival runs at the manager in engine context.
func (s *System) reduceArrival(id int, v float64, op ReduceOp) {
	ep := s.reduceEpisodes[id]
	if ep == nil {
		if s.reduceEpisodes == nil {
			s.reduceEpisodes = make(map[int]*reduceEpisode)
		}
		ep = &reduceEpisode{}
		s.reduceEpisodes[id] = ep
	}
	if !ep.started {
		ep.acc = v
		ep.started = true
	} else {
		ep.acc = op.combine(ep.acc, v)
	}
	ep.arrived++
	need := s.cfg.Nodes
	if s.adapt != nil {
		need = s.adapt.occupied() // emptied nodes contribute nothing
	}
	if ep.arrived < need {
		return
	}
	delete(s.reduceEpisodes, id)
	result := ep.acc
	for nodeID := 1; nodeID < s.cfg.Nodes; nodeID++ {
		nodeID := nodeID
		s.sendFromHandler(NodeID(0), NodeID(nodeID),
			ClassBarrier, reduceMsgBytes, func() {
				s.nodes[nodeID].finishReduce(id, result)
			})
	}
	s.nodes[0].finishReduce(id, result)
}

// finishReduce publishes the global result and wakes the node's waiters.
func (n *node) finishReduce(id int, result float64) {
	r := n.reduces[id]
	if r == nil {
		return // node emptied by migration: no local participants
	}
	r.result = result
	waiters := r.waiters
	r.waiters = nil
	r.arrived = 0
	for _, w := range waiters {
		n.sys.eng.Wake(w.task)
	}
}

const reduceMsgBytes = 24
