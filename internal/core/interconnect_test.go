package core

import (
	"strings"
	"testing"

	"cvm/internal/sim"
	"cvm/internal/transport"
)

// recordingInterconnect wraps another Interconnect and counts the
// traffic passing through the seam, proving the protocol engine sends
// exclusively through the installed backend.
type recordingInterconnect struct {
	inner     Interconnect
	taskSends int
	hdlrSends int
	bytes     int64
	classes   [transport.NumClasses]int
}

func (r *recordingInterconnect) Name() string              { return "recording+" + r.inner.Name() }
func (r *recordingInterconnect) PeerAddr(to NodeID) string { return r.inner.PeerAddr(to) }

func (r *recordingInterconnect) SendFromTask(t *sim.Task, from, to NodeID, class MsgClass, bytes int, deliver func()) {
	r.taskSends++
	r.bytes += int64(bytes)
	r.classes[class]++
	r.inner.SendFromTask(t, from, to, class, bytes, deliver)
}

func (r *recordingInterconnect) SendFromHandler(from, to NodeID, class MsgClass, bytes int, deliver func()) {
	r.hdlrSends++
	r.bytes += int64(bytes)
	r.classes[class]++
	r.inner.SendFromHandler(from, to, class, bytes, deliver)
}

// interconnectWorkload exercises every message class: barriers, lock
// transfers, and remote data faults.
func interconnectWorkload(addr Addr) func(*Thread) {
	return func(w *Thread) {
		gid := w.GlobalID()
		w.Barrier(0)
		w.Lock(1)
		w.WriteF64(addr, w.ReadF64(addr)+float64(gid+1))
		w.Unlock(1)
		w.Barrier(1)
	}
}

// adaptiveWorkload extends interconnectWorkload with a producer-consumer
// page set: thread 0 writes npages pages every epoch and the last thread
// reads them in a separate barrier phase. Under Adapt the pages promote
// to update mode (ClassUpdate pushes); under Migrate the reader's
// one-sided affinity re-homes it next to the producer (ClassMigrate).
func adaptiveWorkload(lockAddr, pages Addr, npages, pageSize int) func(*Thread) {
	return func(w *Thread) {
		gid := w.GlobalID()
		w.Barrier(0)
		w.Lock(1)
		w.WriteF64(lockAddr, w.ReadF64(lockAddr)+float64(gid+1))
		w.Unlock(1)
		last := w.Threads() - 1
		for e := 0; e < 6; e++ {
			if gid == 0 {
				for i := 0; i < npages; i++ {
					w.WriteF64(pages+Addr(i*pageSize), float64(e*npages+i))
				}
			}
			w.Barrier(2 + 2*e)
			if gid == last {
				for i := 0; i < npages; i++ {
					_ = w.ReadF64(pages + Addr(i*pageSize))
				}
			}
			w.Barrier(3 + 2*e)
		}
	}
}

func TestSetInterconnectRoutesAllTraffic(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Adapt = true
	cfg.Migrate = true
	cfg.AdaptTune = AdaptTuning{MigrateMinEvents: 4, MigrateCooldown: 2}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := s.Alloc("x", 8)
	pages, _ := s.Alloc("pc", 8*cfg.PageSize)
	rec := &recordingInterconnect{inner: s.Network()}
	if err := s.SetInterconnect(rec); err != nil {
		t.Fatal(err)
	}
	runApp(t, s, adaptiveWorkload(addr, pages, 8, cfg.PageSize))

	if rec.taskSends == 0 || rec.hdlrSends == 0 {
		t.Fatalf("seam bypassed: taskSends=%d hdlrSends=%d", rec.taskSends, rec.hdlrSends)
	}
	for _, c := range transport.Classes() {
		if rec.classes[c] == 0 {
			t.Errorf("no %v traffic crossed the interconnect seam", c)
		}
	}
	// Everything the wrapper saw reached the inner simulator: the seam
	// is the only path, so the counts must reconcile exactly.
	st := s.Network().Stats()
	if got, want := int64(rec.taskSends+rec.hdlrSends), st.TotalMsgs(); got != want {
		t.Errorf("wrapper saw %d messages, netsim accounted %d", got, want)
	}
	if got, want := rec.bytes, st.TotalBytes(); got != want {
		t.Errorf("wrapper saw %d bytes, netsim accounted %d", got, want)
	}
}

// TestInterconnectIdenticalThroughWrapper proves the seam is
// transparent: a pass-through wrapper must not change a single
// statistic of the run.
func TestInterconnectIdenticalThroughWrapper(t *testing.T) {
	run := func(wrap bool) RunStats {
		s, err := NewSystem(DefaultConfig(4, 2))
		if err != nil {
			t.Fatal(err)
		}
		addr, _ := s.Alloc("x", 8)
		if wrap {
			if err := s.SetInterconnect(&recordingInterconnect{inner: s.Network()}); err != nil {
				t.Fatal(err)
			}
		}
		runApp(t, s, interconnectWorkload(addr))
		return s.Stats()
	}
	direct, wrapped := run(false), run(true)
	if direct.Wall != wrapped.Wall {
		t.Errorf("wall time changed through wrapper: %v vs %v", direct.Wall, wrapped.Wall)
	}
	if !direct.Net.Equal(wrapped.Net) {
		t.Errorf("traffic changed through wrapper: %+v vs %+v", direct.Net, wrapped.Net)
	}
}

func TestSetInterconnectValidation(t *testing.T) {
	s, err := NewSystem(DefaultConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetInterconnect(nil); err == nil {
		t.Error("SetInterconnect(nil) succeeded, want error")
	}
	if err := s.Start(func(w *Thread) {}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInterconnect(s.Network()); err == nil {
		t.Error("SetInterconnect after Start succeeded, want error")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTransportFailureNamesBackend(t *testing.T) {
	tf := &transportFailure{at: 5 * sim.Millisecond, from: 1, to: 2,
		class: ClassLock, seq: 7, attempts: 13,
		backend: "netsim", peer: "node 2"}
	msg := tf.error().Error()
	for _, want := range []string{"netsim", "node 2", "Lock", "13 attempts"} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure message %q missing %q", msg, want)
		}
	}
}
