package core

// This file implements the node's sparse page directory and the slab
// buffer pool behind page copies and twins. Together they make per-node
// memory proportional to the node's working set instead of the address
// space: a 1024-node system over a million shared pages only pays for
// the shards (and page buffers) each node actually touches.
//
// Layout: a two-level directory keyed by page id. The root is a slice of
// shard pointers sized at Start (8 bytes per 64 pages of address space);
// each shard is a fixed array of pageShardSize page structs materialized
// on first touch. Shards are arrays, not per-page pointers, so the
// common clustered working set (apps touch runs of neighboring pages)
// costs one allocation per 64 pages and the access fast path is two
// loads and one branch. Page *structs* are metadata only (~100 bytes);
// the page-size data and twin buffers remain lazy within a shard and
// come from the node's bufPool.

// pageShardBits sets the shard granularity: 64 pages (512 KB of address
// space at the paper's 8 KB pages) per shard.
const pageShardBits = 6

// pageShardSize is the number of pages per shard.
const pageShardSize = 1 << pageShardBits

// pageShard is one materialized run of pageShardSize consecutive pages.
type pageShard struct {
	pages [pageShardSize]page
}

// initPages sizes the node's page directory for total pages. No shard —
// and no page buffer — is allocated here; everything materializes on
// first touch. Only the root pointer table and the node's vector clock
// are built eagerly, so an idle node over a million-page address space
// costs ~128 KB, not gigabytes.
func (n *node) initPages(total int) {
	n.totalPages = total
	n.shards = make([]*pageShard, (total+pageShardSize-1)>>pageShardBits)
	n.vt = NewVClock(n.sys.cfg.Nodes)
	n.pool.pageSize = n.sys.cfg.PageSize
	n.csp.init(n.sys.cfg.Nodes)
}

// pageAt returns the node's view of pg, materializing its shard on first
// touch. This is the access fast path: one shift, one nil check, one
// index.
func (n *node) pageAt(pg PageID) *page {
	s := n.shards[pg>>pageShardBits]
	if s == nil {
		s = n.newShard(int(pg) >> pageShardBits)
	}
	return &s.pages[pg&(pageShardSize-1)]
}

// peek returns the node's view of pg if its shard has materialized, nil
// otherwise. Tests and audits use it to observe the table without
// perturbing it.
func (n *node) peek(pg PageID) *page {
	s := n.shards[pg>>pageShardBits]
	if s == nil {
		return nil
	}
	return &s.pages[pg&(pageShardSize-1)]
}

// newShard materializes the shard with the given index: every page in it
// gets its id and protocol-defined initial state. Under the
// lazy-multi-writer protocol every node starts with a valid zero page
// (write notices invalidate later); under single-writer only the page's
// manager starts with a copy.
func (n *node) newShard(si int) *pageShard {
	s := new(pageShard)
	nodes := n.sys.cfg.Nodes
	sw := n.sys.cfg.Protocol == ProtocolSW
	base := si << pageShardBits
	for i := range s.pages {
		p := &s.pages[i]
		p.id = PageID(base + i)
		p.state = PageReadOnly
		if sw && (base+i)%nodes != n.id {
			p.state = PageInvalid
		}
	}
	n.shards[si] = s
	n.shardCount++
	return s
}

// materialize allocates p's local copy on first use; pages read as zeros
// until then. The buffer comes from the node's slab pool (zeroed when
// recycled; fresh slab carvings are already zero) unless pooling is
// disabled.
func (n *node) materialize(p *page) {
	if p.data != nil {
		return
	}
	if n.sys.cfg.NoPagePooling {
		p.data = make([]byte, n.sys.cfg.PageSize)
		return
	}
	p.data = n.pool.get(true)
}

// newTwin snapshots p's current contents as its twin. Twins skip the
// zeroing pass: the full-page copy below overwrites every byte, so a
// recycled buffer cannot leak state.
func (n *node) newTwin(p *page) {
	if n.sys.cfg.NoPagePooling {
		p.twin = make([]byte, n.sys.cfg.PageSize)
	} else {
		p.twin = n.pool.get(false)
	}
	copy(p.twin, p.data)
}

// releaseTwin detaches and recycles p's twin after the interval's diff
// has been created (MakeDiff copies the modified bytes out, so nothing
// references the buffer afterward).
func (n *node) releaseTwin(p *page) {
	if p.twin == nil {
		return
	}
	if !n.sys.cfg.NoPagePooling {
		n.pool.put(p.twin)
	}
	p.twin = nil
}

// releaseData detaches and recycles p's local copy. Only the
// single-writer protocol may call this (on invalidation or ownership
// transfer): any later access is preceded by a full-page transfer, and
// never-written pages read as zeros everywhere, so dropping the copy is
// observationally invisible. The LRC protocol must NOT release
// invalidated pages — their stale contents are the base diffs are
// applied onto.
func (n *node) releaseData(p *page) {
	if p.data == nil {
		return
	}
	if !n.sys.cfg.NoPagePooling {
		n.pool.put(p.data)
	}
	p.data = nil
}

// bufPool hands out page-size buffers, carving them from geometrically
// growing slabs: the first slab holds 4 pages and each subsequent slab
// doubles, capping at 256 pages (2 MB at 8 KB pages). A node touching k
// pages therefore pays O(log k) allocations, while a node touching two
// pages never reserves more than 32 KB. Freed buffers recycle LIFO.
type bufPool struct {
	pageSize int
	free     [][]byte // recycled buffers (contents stale)
	slab     []byte   // remaining tail of the current slab (zeroed)
	nextSlab int      // pages in the next slab to allocate
}

const (
	bufPoolFirstSlab = 4
	bufPoolMaxSlab   = 256
)

// get returns one page-size buffer. Buffers recycled through put hold
// stale bytes and are cleared when zero is set; fresh slab carvings are
// already zero.
func (bp *bufPool) get(zero bool) []byte {
	if k := len(bp.free); k > 0 {
		b := bp.free[k-1]
		bp.free[k-1] = nil
		bp.free = bp.free[:k-1]
		if zero {
			clearBytes(b)
		}
		return b
	}
	if len(bp.slab) == 0 {
		if bp.nextSlab == 0 {
			bp.nextSlab = bufPoolFirstSlab
		}
		bp.slab = make([]byte, bp.nextSlab*bp.pageSize)
		if bp.nextSlab < bufPoolMaxSlab {
			bp.nextSlab *= 2
		}
	}
	b := bp.slab[:bp.pageSize:bp.pageSize]
	bp.slab = bp.slab[bp.pageSize:]
	return b
}

// put recycles a buffer for a later get.
func (bp *bufPool) put(b []byte) {
	bp.free = append(bp.free, b)
}

// clearBytes zeroes b (the compiler lowers this loop to memclr).
func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
