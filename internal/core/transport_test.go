package core

import (
	"errors"
	"testing"

	"cvm/internal/netsim"
	"cvm/internal/sim"
)

// faultyAccumulation runs the chained-accumulation workload (the
// protocol's hardest ordering test) under the given fault plan and
// returns the final counter values and the run's statistics.
func faultyAccumulation(t *testing.T, fp *FaultPlan) ([]float64, RunStats) {
	t.Helper()
	const (
		nodes    = 4
		threads  = 2
		counters = 8
		rounds   = 2
	)
	cfg := DefaultConfig(nodes, threads)
	cfg.Faults = fp
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := s.Alloc("counters", 8192)
	at := func(i int) Addr { return addr + Addr(i*8) }

	var finals []float64
	runApp(t, s, func(w *Thread) {
		gid := w.GlobalID()
		w.Barrier(0)
		for r := 0; r < rounds; r++ {
			for k := 0; k < counters; k++ {
				c := k
				if gid%2 == 1 {
					c = counters - 1 - k
				}
				w.Lock(10 + c)
				w.WriteF64(at(c), w.ReadF64(at(c))+float64(gid+1))
				w.Unlock(10 + c)
			}
			w.Barrier(100 + r)
		}
		if gid == 0 {
			for c := 0; c < counters; c++ {
				finals = append(finals, w.ReadF64(at(c)))
			}
		}
		w.Barrier(9999)
	})
	return finals, s.Stats()
}

// heavyFaults is a plan that exercises every network fault dimension at
// rates high enough to guarantee retransmissions and dup suppressions
// in a short run.
func heavyFaults(seed uint64) *FaultPlan {
	fp := &FaultPlan{Net: netsim.FaultParams{
		Seed:         seed,
		JitterMax:    200 * sim.Microsecond,
		ReorderDelay: 2 * sim.Millisecond,
	}}
	for c := 0; c < netsim.NumClasses; c++ {
		fp.Net.Drop[c] = 0.05
		fp.Net.Dup[c] = 0.05
		fp.Net.Reorder[c] = 0.05
	}
	return fp
}

func TestTransportSurvivesFaults(t *testing.T) {
	clean, cleanStats := faultyAccumulation(t, nil)
	faulty, stats := faultyAccumulation(t, heavyFaults(1))

	if len(clean) != len(faulty) {
		t.Fatalf("result lengths differ: %d vs %d", len(clean), len(faulty))
	}
	for i := range clean {
		if clean[i] != faulty[i] {
			t.Errorf("counter %d = %v under faults, want %v", i, faulty[i], clean[i])
		}
	}
	if stats.Total.Retransmits == 0 {
		t.Error("5% drop run recorded no retransmissions")
	}
	if stats.Total.DupsSuppressed == 0 {
		t.Error("5% dup run suppressed no duplicate deliveries")
	}
	if cleanStats.Total.Retransmits != 0 || cleanStats.Total.DupsSuppressed != 0 {
		t.Errorf("fault-free run recorded transport activity: %d retransmits, %d dups",
			cleanStats.Total.Retransmits, cleanStats.Total.DupsSuppressed)
	}
	// Faults cost real virtual time: the faulty run cannot be faster.
	if stats.Wall < cleanStats.Wall {
		t.Errorf("faulty wall %v < fault-free wall %v", stats.Wall, cleanStats.Wall)
	}
}

func TestTransportDeterministic(t *testing.T) {
	r1, s1 := faultyAccumulation(t, heavyFaults(77))
	r2, s2 := faultyAccumulation(t, heavyFaults(77))
	if s1.Wall != s2.Wall {
		t.Errorf("wall time diverged across identical runs: %v vs %v", s1.Wall, s2.Wall)
	}
	if s1.Total != s2.Total {
		t.Errorf("stats diverged:\n%+v\n%+v", s1.Total, s2.Total)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("result %d diverged: %v vs %v", i, r1[i], r2[i])
		}
	}
	// A different seed must yield a different fault schedule (and thus
	// different timing), while computing the same answer.
	r3, s3 := faultyAccumulation(t, heavyFaults(78))
	if s3.Wall == s1.Wall {
		t.Error("different fault seeds produced identical wall time (suspicious)")
	}
	for i := range r1 {
		if r1[i] != r3[i] {
			t.Errorf("seed changed the computed result %d: %v vs %v", i, r3[i], r1[i])
		}
	}
}

func TestTransportRetryBudgetFailsLoudly(t *testing.T) {
	// A dead network (100% drop) must abort with ErrTransport, not hang.
	fp := &FaultPlan{
		Net:        netsim.FaultParams{Seed: 1},
		RTO:        sim.Millisecond,
		MaxRetries: 3,
	}
	for c := 0; c < netsim.NumClasses; c++ {
		fp.Net.Drop[c] = 1
	}
	cfg := DefaultConfig(2, 1)
	cfg.Faults = fp
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc("x", 8192); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(func(w *Thread) { w.Barrier(0) }); err != nil {
		t.Fatal(err)
	}
	err = s.Run()
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("Run() = %v, want ErrTransport", err)
	}
}

func TestNodePauseStretchesRun(t *testing.T) {
	_, base := faultyAccumulation(t, nil)
	fp := &FaultPlan{Pauses: []NodePause{{Node: 1, From: 0, To: 20 * sim.Millisecond}}}
	res, paused := faultyAccumulation(t, fp)
	if paused.Wall <= base.Wall {
		t.Errorf("20ms pause did not stretch the run: %v vs %v", paused.Wall, base.Wall)
	}
	clean, _ := faultyAccumulation(t, nil)
	for i := range clean {
		if clean[i] != res[i] {
			t.Errorf("pause changed computed result %d: %v vs %v", i, res[i], clean[i])
		}
	}
}

func TestNodeSlowdownStretchesRun(t *testing.T) {
	_, base := faultyAccumulation(t, nil)
	fp := &FaultPlan{Slowdowns: []NodeSlowdown{{Node: 0, From: 0, To: sim.Time(1 << 62), Factor: 3}}}
	_, slowed := faultyAccumulation(t, fp)
	if slowed.Wall <= base.Wall {
		t.Errorf("3× slowdown did not stretch the run: %v vs %v", slowed.Wall, base.Wall)
	}
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []*FaultPlan{
		{Pauses: []NodePause{{Node: 9, From: 0, To: 1}}},
		{Pauses: []NodePause{{Node: 0, From: 5, To: 5}}},
		{Slowdowns: []NodeSlowdown{{Node: 0, From: 0, To: 1, Factor: 0.5}}},
		{Net: netsim.FaultParams{Drop: [netsim.NumClasses]float64{2}}},
		{RTO: -1},
		{MaxRetries: -1},
	}
	for i, fp := range bad {
		if err := fp.Validate(4); err == nil {
			t.Errorf("Validate(%d) accepted bad plan %+v", i, fp)
		}
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(4); err != nil {
		t.Errorf("nil plan failed validation: %v", err)
	}
	if nilPlan.Active() {
		t.Error("nil plan reports active")
	}
}

func TestParseFaultPlan(t *testing.T) {
	fp, err := ParseFaultPlan("drop=0.01,dup=0.001,reorder.lock=0.05,jitter=500us,pause=2:10ms:5ms,slow=0:0s:50ms:4,rto=10ms,retries=20", 42)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Net.Seed != 42 {
		t.Errorf("seed = %d, want 42", fp.Net.Seed)
	}
	for c := 0; c < netsim.NumClasses; c++ {
		if fp.Net.Drop[c] != 0.01 {
			t.Errorf("drop[%d] = %v, want 0.01", c, fp.Net.Drop[c])
		}
		if fp.Net.Dup[c] != 0.001 {
			t.Errorf("dup[%d] = %v, want 0.001", c, fp.Net.Dup[c])
		}
	}
	if fp.Net.Reorder[netsim.ClassLock] != 0.05 || fp.Net.Reorder[netsim.ClassDiff] != 0 {
		t.Errorf("per-class reorder wrong: %v", fp.Net.Reorder)
	}
	if fp.Net.ReorderDelay != sim.Millisecond {
		t.Errorf("reorder-delay default = %v, want 1ms", fp.Net.ReorderDelay)
	}
	if fp.Net.JitterMax != 500*sim.Microsecond {
		t.Errorf("jitter = %v, want 500µs", fp.Net.JitterMax)
	}
	wantPause := NodePause{Node: 2, From: 10 * sim.Millisecond, To: 15 * sim.Millisecond}
	if len(fp.Pauses) != 1 || fp.Pauses[0] != wantPause {
		t.Errorf("pauses = %+v, want [%+v]", fp.Pauses, wantPause)
	}
	wantSlow := NodeSlowdown{Node: 0, From: 0, To: 50 * sim.Millisecond, Factor: 4}
	if len(fp.Slowdowns) != 1 || fp.Slowdowns[0] != wantSlow {
		t.Errorf("slowdowns = %+v, want [%+v]", fp.Slowdowns, wantSlow)
	}
	if fp.RTO != 10*sim.Millisecond || fp.MaxRetries != 20 {
		t.Errorf("rto/retries = %v/%d, want 10ms/20", fp.RTO, fp.MaxRetries)
	}

	if fp, err := ParseFaultPlan("", 7); err != nil || fp.Active() {
		t.Errorf("empty spec: plan %+v, err %v; want inactive, nil", fp, err)
	}

	for _, spec := range []string{
		"drop", "drop=2", "drop.tcp=0.1", "frobnicate=1",
		"jitter=fast", "pause=1:2ms", "pause=-1:0s:1ms", "pause=0:0s:0s",
		"slow=0:0s:1ms:0.5", "rto=-5ms", "retries=0",
	} {
		if _, err := ParseFaultPlan(spec, 0); err == nil {
			t.Errorf("ParseFaultPlan(%q) succeeded, want error", spec)
		}
	}
}
