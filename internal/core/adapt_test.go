package core

import (
	"reflect"
	"testing"
)

// classStep is one synthetic epoch fed to the classifier: the nodes
// that closed write intervals on the page, the nodes that
// remote-faulted on it, and the faults satisfied from pushed-update
// caches, plus the expected outcome.
type classStep struct {
	writers []int32
	readers []int32
	hits    int32

	wantChanged bool
	wantPattern PagePattern
	wantMode    PageMode
}

// driveClassifier replays a step table against a fresh classifier,
// failing on the first divergence. promoteOK is held true throughout.
func driveClassifier(t *testing.T, tune AdaptTuning, steps []classStep) *classifier {
	t.Helper()
	c := newClassifier(tune.withDefaults())
	const pg = PageID(7)
	for i, s := range steps {
		d, changed := c.Step(pg, s.writers, s.readers, s.hits, true)
		if changed != s.wantChanged {
			t.Fatalf("step %d: changed = %v, want %v (decision %+v)", i, changed, s.wantChanged, d)
		}
		if got := c.Pattern(pg); got != s.wantPattern {
			t.Fatalf("step %d: pattern = %v, want %v", i, got, s.wantPattern)
		}
		if d.Mode != s.wantMode {
			t.Fatalf("step %d: mode = %v, want %v", i, d.Mode, s.wantMode)
		}
	}
	return c
}

// TestClassifierTaxonomy drives each sharing pattern of the taxonomy
// through the classifier and checks the prescribed mode transitions.
func TestClassifierTaxonomy(t *testing.T) {
	tune := AdaptTuning{Hysteresis: 2, Cooldown: 3}
	for name, steps := range map[string][]classStep{
		// One stable writer, never read remotely: exclusive mode at the
		// hysteresis threshold.
		"private": {
			{writers: []int32{0}, wantPattern: PatternPrivate, wantMode: ModeMWInv},
			{writers: []int32{0}, wantChanged: true, wantPattern: PatternPrivate, wantMode: ModeExcl},
		},
		// The single writer hops between nodes: plain invalidate is
		// already optimal (diffs chase the writer), so no mode change.
		"migratory": {
			{writers: []int32{0}, wantPattern: PatternPrivate, wantMode: ModeMWInv},
			{writers: []int32{1}, wantPattern: PatternMigratory, wantMode: ModeMWInv},
			{writers: []int32{2}, wantPattern: PatternMigratory, wantMode: ModeMWInv},
			{writers: []int32{0}, wantPattern: PatternMigratory, wantMode: ModeMWInv},
		},
		// One writer with foreign readers in the same epoch: update mode.
		"producer-consumer": {
			{writers: []int32{0}, readers: []int32{1, 2}, wantPattern: PatternProducerConsumer, wantMode: ModeMWInv},
			{writers: []int32{0}, readers: []int32{1, 2}, wantChanged: true, wantPattern: PatternProducerConsumer, wantMode: ModeMWUpd},
		},
		// Barrier-separated phases: the write epoch and the read epoch
		// never coincide, yet the page is still producer-consumer — the
		// readers-only epoch over the last writer's data continues (and
		// upgrades) the streak instead of resetting it.
		"producer-consumer-phase-split": {
			{writers: []int32{0}, wantPattern: PatternPrivate, wantMode: ModeMWInv},
			{readers: []int32{3}, wantChanged: true, wantPattern: PatternProducerConsumer, wantMode: ModeMWUpd},
		},
		// Multiple writers in one epoch: false sharing, stay on the
		// multi-writer invalidate protocol that exists for exactly this.
		"false-sharing": {
			{writers: []int32{0, 1}, wantPattern: PatternFalseSharing, wantMode: ModeMWInv},
			{writers: []int32{0, 1}, wantPattern: PatternFalseSharing, wantMode: ModeMWInv},
			{writers: []int32{2, 3}, wantPattern: PatternFalseSharing, wantMode: ModeMWInv},
		},
		// Reads with no writer on record classify nothing: there is no
		// producer to subscribe to.
		"readers-before-any-writer": {
			{readers: []int32{1}, wantPattern: PatternUnknown, wantMode: ModeMWInv},
			{readers: []int32{2}, wantPattern: PatternUnknown, wantMode: ModeMWInv},
		},
	} {
		t.Run(name, func(t *testing.T) { driveClassifier(t, tune, steps) })
	}
}

// TestClassifierHysteresis checks that a single-epoch pattern does not
// act and that alternating patterns never reach the threshold: the
// classifier must not flap.
func TestClassifierHysteresis(t *testing.T) {
	tune := AdaptTuning{Hysteresis: 2, Cooldown: 3}

	t.Run("one-epoch-pattern-waits", func(t *testing.T) {
		driveClassifier(t, tune, []classStep{
			{writers: []int32{0}, wantPattern: PatternPrivate, wantMode: ModeMWInv},
		})
	})

	t.Run("alternating-patterns-never-act", func(t *testing.T) {
		var steps []classStep
		for i := 0; i < 6; i++ {
			// Producer-consumer one epoch, false sharing the next: each
			// alternation resets the streak below the threshold.
			steps = append(steps,
				classStep{writers: []int32{0}, readers: []int32{1}, wantPattern: PatternProducerConsumer, wantMode: ModeMWInv},
				classStep{writers: []int32{0, 1}, wantPattern: PatternFalseSharing, wantMode: ModeMWInv},
			)
		}
		driveClassifier(t, tune, steps)
	})

	t.Run("alternating-writers-stay-invalidate", func(t *testing.T) {
		var steps []classStep
		steps = append(steps, classStep{writers: []int32{0}, wantPattern: PatternPrivate, wantMode: ModeMWInv})
		for i := 0; i < 10; i++ {
			steps = append(steps, classStep{writers: []int32{int32(1 + i%2)}, wantPattern: PatternMigratory, wantMode: ModeMWInv})
		}
		driveClassifier(t, tune, steps)
	})
}

// TestClassifierCooldown checks that a page rests after a mode change:
// even a persistent contradicting pattern cannot switch it again until
// the cooldown has drained.
func TestClassifierCooldown(t *testing.T) {
	tune := AdaptTuning{Hysteresis: 2, Cooldown: 3}
	steps := []classStep{
		{writers: []int32{0}, readers: []int32{1}, wantPattern: PatternProducerConsumer, wantMode: ModeMWInv},
		{writers: []int32{0}, readers: []int32{1}, wantChanged: true, wantPattern: PatternProducerConsumer, wantMode: ModeMWUpd},
	}
	// False sharing from here on: the demotion must wait out the
	// 3-epoch cooldown even though the pattern's streak passes the
	// hysteresis threshold during it. hits keeps the update-mode
	// usefulness feedback quiet so only the cooldown is under test.
	for i := 0; i < 3; i++ {
		steps = append(steps, classStep{writers: []int32{0, 1}, hits: 1, wantPattern: PatternFalseSharing, wantMode: ModeMWUpd})
	}
	steps = append(steps, classStep{writers: []int32{0, 1}, hits: 1, wantChanged: true, wantPattern: PatternFalseSharing, wantMode: ModeMWInv})
	driveClassifier(t, tune, steps)
}

// TestClassifierExclDemotion checks the exclusive-mode escape hatch:
// any foreign touch demotes immediately — no hysteresis, no cooldown —
// and bars the page from ever promoting again.
func TestClassifierExclDemotion(t *testing.T) {
	tune := AdaptTuning{Hysteresis: 2, Cooldown: 3}
	steps := []classStep{
		{writers: []int32{0}, wantPattern: PatternPrivate, wantMode: ModeMWInv},
		{writers: []int32{0}, wantChanged: true, wantPattern: PatternPrivate, wantMode: ModeExcl},
		// Foreign reader: immediate demotion despite the fresh cooldown.
		{readers: []int32{2}, wantChanged: true, wantPattern: PatternProducerConsumer, wantMode: ModeMWInv},
	}
	// A long private streak afterwards must not re-promote: the window
	// machinery has been disabled for this page for good.
	for i := 0; i < 8; i++ {
		steps = append(steps, classStep{writers: []int32{0}, wantPattern: PatternProducerConsumer, wantMode: ModeMWInv})
	}
	driveClassifier(t, tune, steps)
}

// TestClassifierSubscriberCap checks both sides of the subscriber
// bound: a too-wide readership never promotes, and a promoted page
// demotes when its sticky subscriber set outgrows the cap.
func TestClassifierSubscriberCap(t *testing.T) {
	tune := AdaptTuning{Hysteresis: 2, Cooldown: 3, SubscriberCap: 2}

	t.Run("wide-readership-never-promotes", func(t *testing.T) {
		var steps []classStep
		for i := 0; i < 6; i++ {
			steps = append(steps, classStep{writers: []int32{0}, readers: []int32{1, 2, 3},
				wantPattern: PatternProducerConsumer, wantMode: ModeMWInv})
		}
		driveClassifier(t, tune, steps)
	})

	t.Run("growth-past-cap-demotes", func(t *testing.T) {
		steps := []classStep{
			{writers: []int32{0}, readers: []int32{1, 2}, wantPattern: PatternProducerConsumer, wantMode: ModeMWInv},
			{writers: []int32{0}, readers: []int32{1, 2}, wantChanged: true, wantPattern: PatternProducerConsumer, wantMode: ModeMWUpd},
		}
		for i := 0; i < 3; i++ { // cooldown drain; hits silence the usefulness feedback
			steps = append(steps, classStep{writers: []int32{0}, readers: []int32{1, 2}, hits: 1, wantPattern: PatternProducerConsumer, wantMode: ModeMWUpd})
		}
		steps = append(steps, classStep{writers: []int32{0}, readers: []int32{1, 2, 3}, hits: 1,
			wantChanged: true, wantPattern: PatternProducerConsumer, wantMode: ModeMWInv})
		driveClassifier(t, tune, steps)
	})
}

// TestClassifierPromotionGate checks the controller's per-epoch
// promotion cap seam: with promoteOK false a promotable page stays put
// but keeps its streak, and promotes on the next permitted epoch.
func TestClassifierPromotionGate(t *testing.T) {
	c := newClassifier(AdaptTuning{Hysteresis: 2, Cooldown: 3}.withDefaults())
	const pg = PageID(3)
	if _, changed := c.Step(pg, []int32{1}, nil, 0, true); changed {
		t.Fatal("changed on first epoch, before hysteresis")
	}
	d, changed := c.Step(pg, []int32{1}, nil, 0, false)
	if changed || d.Mode != ModeMWInv {
		t.Fatalf("promoted with promoteOK=false: changed=%v mode=%v", changed, d.Mode)
	}
	d, changed = c.Step(pg, []int32{1}, nil, 0, true)
	if !changed || d.Mode != ModeExcl || d.Owner != 1 {
		t.Fatalf("no promotion once gate opened: changed=%v decision=%+v", changed, d)
	}
}

// TestClassifierSubsSticky checks that the update-mode subscriber set
// only grows (sorted, deduplicated) and excludes the producer: a
// consumer that skips an epoch keeps receiving pushes.
func TestClassifierSubsSticky(t *testing.T) {
	c := newClassifier(AdaptTuning{Hysteresis: 2, Cooldown: 1}.withDefaults())
	const pg = PageID(11)
	c.Step(pg, []int32{0}, []int32{2}, 0, true)
	d, changed := c.Step(pg, []int32{0}, []int32{2}, 0, true)
	if !changed || !reflect.DeepEqual(d.Subs, []int32{2}) {
		t.Fatalf("after promotion: changed=%v subs=%v, want [2]", changed, d.Subs)
	}
	c.Step(pg, []int32{0}, []int32{1}, 1, true) // cooldown epoch, reader 1 arrives
	d, changed = c.Step(pg, []int32{0}, []int32{1, 0}, 1, true)
	if !changed || !reflect.DeepEqual(d.Subs, []int32{1, 2}) {
		t.Fatalf("subscriber growth: changed=%v subs=%v, want [1 2] (writer excluded)", changed, d.Subs)
	}
	d, _ = c.Step(pg, []int32{0}, nil, 1, true)
	if !reflect.DeepEqual(d.Subs, []int32{1, 2}) {
		t.Fatalf("subs shrank on a quiet epoch: %v, want [1 2]", d.Subs)
	}
}

// TestClassifierUpdateDemotion checks the update-mode usefulness
// feedback: a run of 2×Hysteresis hitless push epochs demotes despite
// the cooldown, a hit epoch resets the run, and a second useless stint
// bars the page from update mode permanently.
func TestClassifierUpdateDemotion(t *testing.T) {
	tune := AdaptTuning{Hysteresis: 2, Cooldown: 3}

	promote := []classStep{
		{writers: []int32{0}, readers: []int32{1}, wantPattern: PatternProducerConsumer, wantMode: ModeMWInv},
		{writers: []int32{0}, readers: []int32{1}, wantChanged: true, wantPattern: PatternProducerConsumer, wantMode: ModeMWUpd},
	}

	t.Run("hitless-run-demotes", func(t *testing.T) {
		steps := append([]classStep(nil), promote...)
		// Four hitless write epochs (2×Hysteresis): demotion fires on the
		// last one, overriding the post-promotion cooldown.
		for i := 0; i < 3; i++ {
			steps = append(steps, classStep{writers: []int32{0}, wantPattern: PatternProducerConsumer, wantMode: ModeMWUpd})
		}
		steps = append(steps, classStep{writers: []int32{0},
			wantChanged: true, wantPattern: PatternProducerConsumer, wantMode: ModeMWInv})
		driveClassifier(t, tune, steps)
	})

	t.Run("hit-resets-the-run", func(t *testing.T) {
		steps := append([]classStep(nil), promote...)
		for round := 0; round < 3; round++ {
			// Three hitless epochs, then a hit: the run never reaches
			// 2×Hysteresis, so the page keeps pushing.
			for i := 0; i < 3; i++ {
				steps = append(steps, classStep{writers: []int32{0}, wantPattern: PatternProducerConsumer, wantMode: ModeMWUpd})
			}
			steps = append(steps, classStep{writers: []int32{0}, hits: 2, wantPattern: PatternProducerConsumer, wantMode: ModeMWUpd})
		}
		driveClassifier(t, tune, steps)
	})

	t.Run("second-stint-bars-for-good", func(t *testing.T) {
		steps := append([]classStep(nil), promote...)
		// First useless stint: demote after 4 hitless write epochs.
		for i := 0; i < 3; i++ {
			steps = append(steps, classStep{writers: []int32{0}, wantPattern: PatternProducerConsumer, wantMode: ModeMWUpd})
		}
		steps = append(steps, classStep{writers: []int32{0},
			wantChanged: true, wantPattern: PatternProducerConsumer, wantMode: ModeMWInv})
		// Cooldown drains, then the persistent pattern re-promotes.
		for i := 0; i < 3; i++ {
			steps = append(steps, classStep{writers: []int32{0}, readers: []int32{1}, wantPattern: PatternProducerConsumer, wantMode: ModeMWInv})
		}
		steps = append(steps, classStep{writers: []int32{0}, readers: []int32{1},
			wantChanged: true, wantPattern: PatternProducerConsumer, wantMode: ModeMWUpd})
		// Second useless stint: demote again — and bar.
		for i := 0; i < 3; i++ {
			steps = append(steps, classStep{writers: []int32{0}, wantPattern: PatternProducerConsumer, wantMode: ModeMWUpd})
		}
		steps = append(steps, classStep{writers: []int32{0},
			wantChanged: true, wantPattern: PatternProducerConsumer, wantMode: ModeMWInv})
		// No amount of producer-consumer evidence re-promotes a barred page.
		for i := 0; i < 8; i++ {
			steps = append(steps, classStep{writers: []int32{0}, readers: []int32{1}, wantPattern: PatternProducerConsumer, wantMode: ModeMWInv})
		}
		driveClassifier(t, tune, steps)
	})
}

func TestMergeSubs(t *testing.T) {
	for _, tc := range []struct {
		subs, readers []int32
		writer        int32
		want          []int32
	}{
		{nil, []int32{2, 1}, 0, []int32{1, 2}},
		{[]int32{1}, []int32{1, 3}, 0, []int32{1, 3}},
		{[]int32{2}, []int32{0, 4}, 0, []int32{2, 4}},
		{[]int32{1, 3}, nil, 0, []int32{1, 3}},
	} {
		if got := mergeSubs(tc.subs, tc.readers, tc.writer); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("mergeSubs(%v, %v, %d) = %v, want %v", tc.subs, tc.readers, tc.writer, got, tc.want)
		}
	}
}

// TestAdaptTuningDefaults pins the calibrated defaults: a zero value on
// any field selects the documented default, and explicit values pass
// through.
func TestAdaptTuningDefaults(t *testing.T) {
	d := AdaptTuning{}.withDefaults()
	want := AdaptTuning{
		Hysteresis: 2, Cooldown: 3, MaxPromotionsPerEpoch: 32, SubscriberCap: 16,
		MigrateMinEvents: 16, MigrateDominancePct: 60, MigrateMaxPerEpoch: 1,
		MigrateCooldown: 8, MigrateBytes: 4096, NodeCapacityFactor: 2,
	}
	if d != want {
		t.Errorf("withDefaults() = %+v, want %+v", d, want)
	}
	custom := AdaptTuning{Hysteresis: 5}.withDefaults()
	if custom.Hysteresis != 5 || custom.Cooldown != 3 {
		t.Errorf("explicit value overridden: %+v", custom)
	}
}
