package core

import (
	"cvm/internal/sim"
	"cvm/internal/trace"
)

// lockState is one node's view of one global lock. Lock ownership is a
// token that migrates between nodes; a static manager (lock % nodes)
// forwards each request to the last requester, giving the paper's 2-hop
// (manager holds the token) and 3-hop (token elsewhere) acquire paths.
//
// Per the paper's multi-threading changes, each node keeps a local queue:
// threads acquiring a lock already held or requested locally enqueue
// without remote traffic, and release prefers local waiters over remote
// requesters — unfair, but effective.
type lockState struct {
	id        int
	token     bool    // lock ownership resident at this node
	heldBy    *Thread // local holder, nil if free
	localQ    []*Thread
	requested bool   // remote request in flight
	nextNode  int    // node to hand the token to after the local queue drains
	nextVT    VClock // the pending remote requester's vector time
	nextHops  uint8  // hop count of the pending remote request

	mgrLast int // manager's record of the last requesting node

	// reqStart/grantHops time the in-flight remote acquire for the
	// Lock2Hop/Lock3Hop metrics: the grant records its hop count (2 when
	// the manager held or was asked by the token holder, 3 when it
	// forwarded), classifying exactly as the trace analyzer does.
	reqStart  sim.Time
	grantHops uint8
}

func (n *node) lockAt(id int) *lockState {
	l := n.locks[id]
	if l == nil {
		if n.locks == nil {
			n.locks = make(map[int]*lockState)
		}
		l = &lockState{id: id, nextNode: -1}
		mgr := id % n.sys.cfg.Nodes
		if n.id == mgr {
			// The manager initially holds the token, free.
			l.token = true
			l.mgrLast = mgr
		}
		n.locks[id] = l
	}
	return l
}

// Lock acquires global lock id, blocking until granted. Acquiring is an
// LRC acquire: the grant carries write notices for intervals this node
// has not seen.
func (t *Thread) Lock(id int) {
	n := t.node
	l := n.lockAt(id)
	cfg := &t.sys.cfg
	if m := t.sys.met; m != nil {
		m.CountLockAcquire(n.id)
	}

	switch {
	case l.token && l.heldBy == nil && !l.requested:
		// Fast path: token cached here and free.
		t.task.Advance(cfg.LockLocalCost)
		l.heldBy = t
		n.stats.LocalLockAcquires++
		t.traceLockAcquire(id, true)

	case l.heldBy != nil || l.requested || len(l.localQ) > 0:
		// Locally contended: join the local queue. This is the paper's
		// Block Same Lock event and costs no messages.
		n.stats.BlockSameLock++
		n.stats.LocalLockAcquires++
		l.localQ = append(l.localQ, t)
		wstart := t.task.Now()
		t.block(ReasonLock)
		if nm := n.met; nm != nil {
			d := t.task.Now() - wstart
			nm.LockLocalWait.Observe(int64(d))
			t.sys.met.LockAcquireWait(t.node.id, int32(id), d)
		}
		// Woken as the holder (set by the releaser or the grant).
		t.traceLockAcquire(id, true)

	default:
		// Token elsewhere: one remote request via the manager.
		l.requested = true
		n.stats.RemoteLocks++
		n.stats.OutstandingFaults += int64(n.inFlightFaults)
		n.stats.OutstandingLocks += int64(n.inFlightLocks)
		n.inFlightLocks++
		l.localQ = append(l.localQ, t)
		l.reqStart = t.task.Now()
		if tr := t.sys.tracer; tr != nil {
			tr.Emit(trace.Event{T: t.task.Now(), Kind: trace.KindLockRequest,
				Node: int32(n.id), Thread: int32(t.gid), Sync: int32(id)})
		}
		t.sendLockRequest(l)
		t.block(ReasonLock)
		if nm := n.met; nm != nil {
			d := t.task.Now() - l.reqStart
			if l.grantHops == 3 {
				nm.Lock3Hop.Observe(int64(d))
			} else {
				nm.Lock2Hop.Observe(int64(d))
			}
			t.sys.met.LockAcquireWait(t.node.id, int32(id), d)
		}
		t.traceLockAcquire(id, false)
	}
}

// traceLockAcquire records that the thread now holds lock id; local
// marks acquires satisfied without messages (cached token/local queue).
func (t *Thread) traceLockAcquire(id int, local bool) {
	tr := t.sys.tracer
	if tr == nil {
		return
	}
	var arg int64
	if local {
		arg = 1
	}
	tr.Emit(trace.Event{T: t.task.Now(), Kind: trace.KindLockAcquire,
		Node: int32(t.node.id), Thread: int32(t.gid), Sync: int32(id), Arg: arg})
}

// sendLockRequest routes the acquire to the lock's manager. The request
// carries the requester's vector time so the eventual grant can compute
// the write notices to piggyback (the LRC acquire protocol).
func (t *Thread) sendLockRequest(l *lockState) {
	sys := t.sys
	n := t.node
	mgr := l.id % sys.cfg.Nodes
	reqVT := n.vt.Clone()
	bytes := lockMsgBytes + reqVT.wireBytes()

	if mgr == n.id {
		// We are the manager: forward straight to the last requester.
		// (The token cannot be here: the fast path would have taken it.)
		last := l.mgrLast
		l.mgrLast = n.id
		sys.sendFromTask(t.task, NodeID(n.id), NodeID(last),
			ClassLock, bytes, func() {
				// Two messages total (request straight to the holder,
				// grant back): the 2-hop path, no manager forward.
				sys.nodes[last].handleLockHandoff(l.id, n.id, reqVT, 2)
			})
		return
	}
	sys.sendFromTask(t.task, NodeID(n.id), NodeID(mgr),
		ClassLock, bytes, func() {
			sys.nodes[mgr].handleLockManagerRequest(l.id, n.id, reqVT)
		})
}

// handleLockManagerRequest runs at the lock's manager (engine context):
// record the requester as last and forward to the previous last. If the
// previous last is the manager itself the "forward" is a local call — the
// 2-hop path.
func (n *node) handleLockManagerRequest(id, from int, reqVT VClock) {
	l := n.lockAt(id)
	last := l.mgrLast
	l.mgrLast = from
	if last == n.id {
		n.handleLockHandoff(id, from, reqVT, 2)
		return
	}
	sys := n.sys
	if tr := sys.tracer; tr != nil {
		// A remote forward marks the 3-hop acquire path (the 2-hop path
		// resolves at the manager without one).
		tr.Emit(trace.Event{T: n.proc.LocalNow(), Kind: trace.KindLockForward,
			Node: int32(n.id), Thread: -1, Sync: int32(id),
			Peer: int32(last), Arg: int64(from)})
	}
	sys.sendFromHandler(NodeID(n.id), NodeID(last),
		ClassLock, lockMsgBytes+reqVT.wireBytes(), func() {
			sys.nodes[last].handleLockHandoff(id, from, reqVT, 3)
		})
}

// handleLockHandoff runs at the node that last requested the token
// (engine context): grant immediately if the token is free, otherwise
// remember the requester for release time.
func (n *node) handleLockHandoff(id, to int, reqVT VClock, hops uint8) {
	l := n.lockAt(id)
	if l.token && l.heldBy == nil && len(l.localQ) == 0 && !l.requested {
		n.grantLock(l, to, reqVT, hops)
		return
	}
	if l.nextNode >= 0 {
		panic("core: second lock forward before token handoff")
	}
	l.nextNode = to
	l.nextVT = reqVT
	l.nextHops = hops
}

// grantLock sends the token (with piggybacked write notices) to a remote
// requester. It runs in engine context; grants issued from a releasing
// thread go through releaseRemote.
func (n *node) grantLock(l *lockState, to int, reqVT VClock, hops uint8) {
	l.token = false
	infos := n.newInfosSince(reqVT)
	bytes := lockMsgBytes + n.vt.wireBytes() + infosBytes(infos)
	vt := n.vt.Clone()
	sys := n.sys
	sys.sendFromHandler(NodeID(n.id), NodeID(to),
		ClassLock, bytes, func() {
			sys.nodes[to].handleLockGrant(l.id, n.id, infos, vt, hops)
		})
}

// handleLockGrant runs at the original requester (engine context): apply
// the piggybacked consistency information and hand the lock to the first
// queued local thread. from is the granting node, credited to the woken
// thread's migration affinity.
func (n *node) handleLockGrant(id, from int, infos []*IntervalInfo, senderVT VClock, hops uint8) {
	l := n.lockAt(id)
	l.grantHops = hops
	n.applyInfos(infos, senderVT)
	if tr := n.sys.tracer; tr != nil {
		tr.Emit(trace.Event{T: n.proc.LocalNow(), Kind: trace.KindLockGrant,
			Node: int32(n.id), Thread: -1, Sync: int32(id)})
	}
	l.token = true
	l.requested = false
	n.inFlightLocks--
	next := l.localQ[0]
	l.localQ = l.localQ[:copy(l.localQ, l.localQ[1:])]
	l.heldBy = next
	if next.affinity != nil && from != n.id {
		next.affinity[from]++
	}
	n.sys.eng.Wake(next.task)
}

// Unlock releases global lock id. Release is an LRC release: the open
// interval closes so subsequent acquirers see this critical section's
// modifications. Local waiters are preferred over remote requesters, even
// ones that asked earlier.
func (t *Thread) Unlock(id int) {
	n := t.node
	l := n.lockAt(id)
	if l.heldBy != t {
		panic("core: Unlock of lock not held by this thread")
	}
	if m := t.sys.met; m != nil {
		m.CountLockRelease(n.id)
	}
	n.closeInterval(t)
	t.task.Advance(t.sys.cfg.LockLocalCost)
	if tr := t.sys.tracer; tr != nil {
		tr.Emit(trace.Event{T: t.task.Now(), Kind: trace.KindLockRelease,
			Node: int32(n.id), Thread: int32(t.gid), Sync: int32(id)})
	}

	if len(l.localQ) > 0 {
		next := l.localQ[0]
		l.localQ = l.localQ[:copy(l.localQ, l.localQ[1:])]
		l.heldBy = next
		t.sys.eng.WakeAt(next.task, t.task.Now())
		n.flushPushes(t)
		return
	}
	l.heldBy = nil
	if l.nextNode >= 0 {
		to, vt, hops := l.nextNode, l.nextVT, l.nextHops
		l.nextNode, l.nextVT, l.nextHops = -1, nil, 0
		l.token = false
		infos := n.newInfosSince(vt)
		bytes := lockMsgBytes + n.vt.wireBytes() + infosBytes(infos)
		myVT := n.vt.Clone()
		sys := t.sys
		sys.sendFromTask(t.task, NodeID(n.id), NodeID(to),
			ClassLock, bytes, func() {
				sys.nodes[to].handleLockGrant(id, n.id, infos, myVT, hops)
			})
	}
	// Update pushes depart behind the grant (or immediately, when the
	// token stays cached): the release-critical path never waits on them.
	n.flushPushes(t)
}

// lockMsgBytes is the header size of lock protocol messages.
const lockMsgBytes = 16
