package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"cvm/internal/sim"
)

// spanScenario is one randomized page-state configuration for the
// span-vs-elementwise equivalence property: each page of the region is
// driven into a protocol state before a measured sweep runs over the
// whole region through either the span accessors or the scalar loop.
type spanScenario struct {
	pages     int
	peerWrite []bool // node 1 dirties the page (node 0's copy invalidates)
	preRead   []bool // node 0 pre-reads (invalid → fetched read-only)
	preWrite  []bool // node 0 pre-writes (twin present, read-write)
	inflight  int    // page whose fetch a co-located thread starts, or -1
	sweepLo   int    // measured span bounds, in elements
	sweepHi   int
	adds      []int // elements receiving a fused Add in the measured phase
}

func makeSpanScenario(seed uint64) spanScenario {
	r := testRand(seed)
	sc := spanScenario{pages: 5, inflight: -1}
	perPage := (8 << 10) / 8
	n := sc.pages * perPage
	sc.peerWrite = make([]bool, sc.pages)
	sc.preRead = make([]bool, sc.pages)
	sc.preWrite = make([]bool, sc.pages)
	for p := 0; p < sc.pages; p++ {
		sc.peerWrite[p] = r.next() < 0.5
		sc.preRead[p] = r.next() < 0.4
		sc.preWrite[p] = r.next() < 0.3
	}
	// A fetch in flight: a co-located thread starts faulting a page the
	// sweep will also touch (Block Same Page on whichever arrives second).
	if r.next() < 0.7 {
		sc.inflight = int(r.next() * float64(sc.pages))
		sc.peerWrite[sc.inflight] = true
		sc.preRead[sc.inflight] = false
		sc.preWrite[sc.inflight] = false
	}
	sc.sweepLo = int(r.next() * float64(n/2))
	sc.sweepHi = n/2 + int(r.next()*float64(n/2))
	for k := 0; k < 4; k++ {
		sc.adds = append(sc.adds, int(r.next()*float64(n)))
	}
	return sc
}

// runSpanScenario executes the scenario with the measured phase using
// either the span accessors (span=true) or the elementwise loop, and
// returns the run's full statistics, node 0's final page bytes, and the
// values the sweep read.
func runSpanScenario(t *testing.T, sc spanScenario, span bool) (RunStats, []byte, []float64) {
	t.Helper()
	s := testSystem(t, 2, 2)
	pageSize := s.cfg.PageSize
	base, err := s.Alloc("span", sc.pages*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	at := func(i int) Addr { return base + Addr(i)*8 }
	sweepN := sc.sweepHi - sc.sweepLo
	got := make([]float64, sweepN)

	runApp(t, s, func(w *Thread) {
		nid, lid := w.NodeID(), w.LocalID()
		w.Barrier(0)
		// Peer dirties its pages: write notices for node 0.
		if nid == 1 && lid == 0 {
			for p, dirty := range sc.peerWrite {
				if dirty {
					for k := 0; k < 3; k++ {
						w.WriteF64(at(p*pageSize/8+k*11), float64(100*p+k))
					}
				}
			}
		}
		w.Barrier(1)
		// Node 0 establishes the pre-states.
		if nid == 0 && lid == 0 {
			for p := 0; p < sc.pages; p++ {
				if sc.preRead[p] {
					_ = w.ReadF64(at(p * pageSize / 8))
				}
				if sc.preWrite[p] {
					w.WriteF64(at(p*pageSize/8+5), float64(p)+0.5)
				}
			}
		}
		w.Barrier(2)

		switch {
		case nid == 0 && lid == 1 && sc.inflight >= 0:
			// Start a fetch the sweep will collide with.
			_ = w.ReadF64(at(sc.inflight * pageSize / 8))
		case nid == 0 && lid == 0:
			if span {
				w.ReadRangeF64(at(sc.sweepLo), got)
				for _, i := range sc.adds {
					w.AddF64(at(i), 2.25)
				}
				buf := make([]float64, sweepN)
				for i := range buf {
					buf[i] = float64(sc.sweepLo+i) * 0.125
				}
				w.WriteRangeF64(at(sc.sweepLo), buf)
				w.FillF64(at(sc.sweepLo), sweepN/3, math.Pi)
			} else {
				for i := 0; i < sweepN; i++ {
					got[i] = w.ReadF64(at(sc.sweepLo + i))
				}
				for _, i := range sc.adds {
					w.WriteF64(at(i), w.ReadF64(at(i))+2.25)
				}
				for i := 0; i < sweepN; i++ {
					w.WriteF64(at(sc.sweepLo+i), float64(sc.sweepLo+i)*0.125)
				}
				for i := 0; i < sweepN/3; i++ {
					w.WriteF64(at(sc.sweepLo+i), math.Pi)
				}
			}
		}
		w.Barrier(3)
	})

	var data []byte
	for i := 0; i < s.nodes[0].totalPages; i++ {
		p := s.nodes[0].peek(PageID(i))
		if p == nil || p.data == nil {
			data = append(data, make([]byte, pageSize)...)
		} else {
			data = append(data, p.data[:pageSize]...)
		}
	}
	return s.Stats(), data, got
}

// TestSpanEquivalence is the property gate for the bulk fast path: over
// randomized page-state configurations (invalid / read-only / read-write,
// twin present or absent, a fetch in flight), the span accessors must
// produce the same NodeStats counters, the same memory-system miss
// counts, the same virtual end time, the same page bytes, and the same
// values as the elementwise loop.
func TestSpanEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		sc := makeSpanScenario(seed)
		rsE, bytesE, gotE := runSpanScenario(t, sc, false)
		rsS, bytesS, gotS := runSpanScenario(t, sc, true)

		if !reflect.DeepEqual(rsE.Nodes, rsS.Nodes) {
			t.Fatalf("seed %d: NodeStats diverged\nelementwise: %+v\nspan:        %+v",
				seed, rsE.Nodes, rsS.Nodes)
		}
		if !reflect.DeepEqual(rsE.Mem, rsS.Mem) {
			t.Fatalf("seed %d: memsim stats diverged\nelementwise: %+v\nspan:        %+v",
				seed, rsE.Mem, rsS.Mem)
		}
		if rsE.Wall != rsS.Wall {
			t.Fatalf("seed %d: virtual end time diverged: elementwise %v, span %v",
				seed, rsE.Wall, rsS.Wall)
		}
		if !reflect.DeepEqual(rsE.Net, rsS.Net) {
			t.Fatalf("seed %d: network stats diverged", seed)
		}
		if !bytes.Equal(bytesE, bytesS) {
			t.Fatalf("seed %d: node 0 page bytes diverged", seed)
		}
		if !reflect.DeepEqual(gotE, gotS) {
			t.Fatalf("seed %d: sweep read values diverged", seed)
		}
	}
}

// TestSpanZeroPages: span reads of never-materialized pages return zeros
// without allocating page frames, like the scalar path.
func TestSpanZeroPages(t *testing.T) {
	s := testSystem(t, 1, 1)
	base, err := s.Alloc("zero", 3*s.cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	runApp(t, s, func(w *Thread) {
		dst := make([]float64, 2*s.cfg.PageSize/8)
		for i := range dst {
			dst[i] = 42
		}
		w.ReadRangeF64(base+8, dst[:len(dst)-2])
		for i, v := range dst[:len(dst)-2] {
			if v != 0 {
				t.Errorf("element %d = %v, want 0", i, v)
			}
		}
	})
	for i := 0; i < s.nodes[0].totalPages; i++ {
		if p := s.nodes[0].peek(PageID(i)); p != nil && p.data != nil {
			t.Errorf("page %d materialized by a read of untouched memory", p.id)
		}
	}
}

// TestSpanI64RoundTrip exercises the int64 span variants across a page
// boundary.
func TestSpanI64RoundTrip(t *testing.T) {
	s := testSystem(t, 1, 1)
	base, err := s.Alloc("i64", 3*s.cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	perPage := s.cfg.PageSize / 8
	runApp(t, s, func(w *Thread) {
		src := make([]int64, perPage+10)
		for i := range src {
			src[i] = int64(i)*3 - 7
		}
		w.WriteRangeI64(base+Addr(perPage-5)*8, src)
		dst := make([]int64, len(src))
		w.ReadRangeI64(base+Addr(perPage-5)*8, dst)
		if !reflect.DeepEqual(src, dst) {
			t.Fatal("int64 span round trip mismatch")
		}
		w.FillI64(base, 4, -9)
		for i := 0; i < 4; i++ {
			if got := w.ReadI64(base + Addr(i)*8); got != -9 {
				t.Errorf("fill element %d = %d, want -9", i, got)
			}
		}
	})
}

// TestSpanVirtualTimeMatchesScalar pins the charge model: a span read of
// k elements must advance virtual time exactly as k scalar reads do (the
// coalesced Advance is the sum of the per-element costs).
func TestSpanVirtualTimeMatchesScalar(t *testing.T) {
	run := func(span bool) sim.Time {
		s := testSystem(t, 1, 1)
		base, err := s.Alloc("vt", 2*s.cfg.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		var start, end sim.Time
		runApp(t, s, func(w *Thread) {
			n := s.cfg.PageSize/8 + 100
			buf := make([]float64, n)
			for i := range buf {
				buf[i] = float64(i)
			}
			w.WriteRangeF64(base, buf) // identical warm-up in both runs
			start = w.Now()
			if span {
				w.ReadRangeF64(base+24, buf[:n-10])
			} else {
				for i := 0; i < n-10; i++ {
					buf[i] = w.ReadF64(base + 24 + Addr(i)*8)
				}
			}
			end = w.Now()
		})
		return end - start
	}
	if e, sp := run(false), run(true); e != sp {
		t.Fatalf("span read advanced %v, scalar loop %v", sp, e)
	}
}
