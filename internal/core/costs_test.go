package core

import (
	"testing"

	"cvm/internal/sim"
)

const us = sim.Microsecond

// within asserts v is within tol of want.
func within(t *testing.T, name string, v, want, tol sim.Time) {
	t.Helper()
	if v < want-tol || v > want+tol {
		t.Errorf("%s = %v, want %v ± %v (paper §4.1)", name, v, want, tol)
	}
}

// TestCalibrationTwoHopLock reproduces the paper's simple 2-hop lock
// acquire: the manager holds the free token; acquire costs ~937µs.
func TestCalibrationTwoHopLock(t *testing.T) {
	s := testSystem(t, 2, 1)
	_, _ = s.Alloc("pad", 8192)
	var cost sim.Time
	runApp(t, s, func(w *Thread) {
		if w.NodeID() == 1 {
			start := w.Now()
			w.Lock(0) // manager (node 0) holds the token
			cost = w.Now() - start
			w.Unlock(0)
		}
	})
	within(t, "2-hop lock", cost, 937*us, 40*us)
}

// TestCalibrationThreeHopLock measures the 3-hop path: the token is at a
// third node, so the request is forwarded (paper: 1382µs).
func TestCalibrationThreeHopLock(t *testing.T) {
	s := testSystem(t, 3, 1)
	_, _ = s.Alloc("pad", 8192)
	var cost sim.Time
	runApp(t, s, func(w *Thread) {
		// Node 1 takes the token away from the manager (node 0), then
		// node 2's acquire needs three hops: 2 → 0 → 1 → 2.
		if w.NodeID() == 1 {
			w.Lock(0)
			w.Unlock(0)
		}
		w.Barrier(0)
		if w.NodeID() == 2 {
			start := w.Now()
			w.Lock(0)
			cost = w.Now() - start
			w.Unlock(0)
		}
	})
	within(t, "3-hop lock", cost, 1382*us, 60*us)
}

// TestCalibrationRemotePageFault measures a simple remote page fault:
// ~1100µs including mprotect (49µs) and signal handling (98µs).
func TestCalibrationRemotePageFault(t *testing.T) {
	s := testSystem(t, 2, 1)
	addr, _ := s.Alloc("page", 8192)
	var cost sim.Time
	runApp(t, s, func(w *Thread) {
		if w.NodeID() == 0 {
			// Dirty the full page so the diff is page-sized.
			for i := 0; i < 8192; i += 8 {
				w.WriteF64(addr+Addr(i), float64(i))
			}
		}
		w.Barrier(0)
		if w.NodeID() == 1 {
			start := w.Now()
			_ = w.ReadF64(addr)
			cost = w.Now() - start
		}
	})
	// The fetch carries a full-page diff; diff application (a page-length
	// cache-speed copy) is charged to the faulting thread on top of the
	// paper's 1100µs wire path.
	within(t, "remote page fault", cost, 1100*us, 150*us)
}

// TestCalibrationBarrier measures back-to-back 8-processor barriers.
// The paper's 2470µs minimal barrier assumes simultaneous arrivals (the
// netsim calibration test reproduces that case exactly); inside the
// system, consecutive barriers pipeline — the previous release staggers
// arrivals by the manager's per-message overhead — so the steady-state
// cost is somewhat lower. Assert the cost sits between the pipelined
// lower bound and the paper's simultaneous-arrival figure.
func TestCalibrationBarrier(t *testing.T) {
	s := testSystem(t, 8, 1)
	_, _ = s.Alloc("pad", 8192)
	var cost sim.Time
	runApp(t, s, func(w *Thread) {
		w.Barrier(0) // align all nodes
		start := w.Now()
		w.Barrier(1)
		if w.NodeID() == 7 {
			cost = w.Now() - start
		}
	})
	if cost < 1400*us || cost > 2600*us {
		t.Errorf("8-processor barrier = %v, want within [1.4ms, 2.6ms] "+
			"(paper §4.1: 2470µs minimal, less when pipelined)", cost)
	}
}

// TestCalibrationThreadSwitch verifies the 8µs thread switch cost.
func TestCalibrationThreadSwitch(t *testing.T) {
	s := testSystem(t, 1, 2)
	_, _ = s.Alloc("pad", 8192)
	var t0End, t1Start sim.Time
	runApp(t, s, func(w *Thread) {
		if w.LocalID() == 0 {
			w.Compute(10 * us)
			t0End = w.Now()
			w.Yield()
		} else {
			t1Start = w.Now()
		}
	})
	if got := t1Start - t0End; got != 8*us {
		t.Errorf("thread switch = %v, want 8µs", got)
	}
}
