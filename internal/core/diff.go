package core

import "encoding/binary"

// Diff summarizes the modifications made to one page during one or more
// intervals, as a list of byte runs that differ between the page's twin
// and its current contents. Diffs are how CVM's multiple-writer protocol
// merges concurrent modifications to the same page.
type Diff struct {
	Page PageID
	Node int    // creator node
	Idx  int32  // newest interval the diff belongs to
	VT   VClock // creator's vector time when the interval closed
	Runs []Run

	// encSize caches the compressed wire size (see WireBytes); 0 means
	// not yet computed. Only the creator node touches it.
	encSize int32
}

// Run is a contiguous modified byte range within a page.
type Run struct {
	Off  int32
	Data []byte
}

// MakeDiff compares twin (the page contents at first write) against cur
// and returns the modified runs. The slices must be the same length.
//
// The comparison strides 8 bytes at a time: equal regions skip a word per
// test, and inside a modified region a SWAR zero-byte probe on twin^cur
// extends the run a word at a time while no byte matches. Byte-level
// scans only run at region boundaries, so sparse and dense pages alike
// cost ~n/8 comparisons. Run boundaries are bit-identical to a
// byte-at-a-time scan (see TestMakeDiffMatchesReference).
func MakeDiff(page PageID, twin, cur []byte) []Run {
	var runs []Run
	n := len(cur)
	i := 0
	for i < n {
		// Skip the equal region, word-wise while both slices allow it.
		for i+8 <= n && binary.LittleEndian.Uint64(twin[i:]) == binary.LittleEndian.Uint64(cur[i:]) {
			i += 8
		}
		for i < n && twin[i] == cur[i] {
			i++
		}
		if i == n {
			break
		}
		// Extend the modified run: whole words where every byte differs,
		// then bytes until the first match.
		start := i
		for i+8 <= n {
			x := binary.LittleEndian.Uint64(twin[i:]) ^ binary.LittleEndian.Uint64(cur[i:])
			if hasZeroByte(x) {
				break
			}
			i += 8
		}
		for i < n && twin[i] != cur[i] {
			i++
		}
		data := make([]byte, i-start)
		copy(data, cur[start:i])
		runs = append(runs, Run{Off: int32(start), Data: data})
	}
	return runs
}

// hasZeroByte reports whether any byte of x is zero (the SWAR trick:
// borrow propagation sets the high bit of each zero byte).
func hasZeroByte(x uint64) bool {
	return (x-0x0101010101010101)&^x&0x8080808080808080 != 0
}

// Apply writes the diff's runs into page contents dst, and into twin as
// well when twin is non-nil. Applying to the twin keeps remotely-created
// modifications from being re-attributed to the local node's next diff
// when the local node is itself a concurrent writer of the page.
func (d *Diff) Apply(dst, twin []byte) {
	for _, r := range d.Runs {
		copy(dst[r.Off:], r.Data)
		if twin != nil {
			copy(twin[r.Off:], r.Data)
		}
	}
}

// Bytes reports the payload size of the diff on the simulated wire:
// 8 bytes of header per run plus the run data, plus the vector time.
func (d *Diff) Bytes() int {
	n := d.VT.wireBytes() + 16
	for _, r := range d.Runs {
		n += 8 + len(r.Data)
	}
	return n
}

// Overlaps reports whether two diffs modify any common byte. Overlapping
// concurrent diffs indicate a data race in the application. MakeDiff
// emits runs in ascending, non-overlapping offset order, so the two run
// lists are walked with a linear two-pointer merge instead of the
// quadratic all-pairs scan.
func (d *Diff) Overlaps(other *Diff) bool {
	da, db := d.Runs, other.Runs
	i, j := 0, 0
	for i < len(da) && j < len(db) {
		a, b := &da[i], &db[j]
		aEnd := a.Off + int32(len(a.Data))
		bEnd := b.Off + int32(len(b.Data))
		if a.Off < bEnd && b.Off < aEnd {
			return true
		}
		// Disjoint: drop whichever run ends first; it cannot overlap any
		// later (higher-offset) run of the other diff either.
		if aEnd <= bEnd {
			i++
		} else {
			j++
		}
	}
	return false
}
