package core

// Diff summarizes the modifications made to one page during one or more
// intervals, as a list of byte runs that differ between the page's twin
// and its current contents. Diffs are how CVM's multiple-writer protocol
// merges concurrent modifications to the same page.
type Diff struct {
	Page PageID
	Node int    // creator node
	Idx  int32  // newest interval the diff belongs to
	VT   VClock // creator's vector time when the interval closed
	Runs []Run
}

// Run is a contiguous modified byte range within a page.
type Run struct {
	Off  int32
	Data []byte
}

// MakeDiff compares twin (the page contents at first write) against cur
// and returns the modified runs. The slices must be the same length.
func MakeDiff(page PageID, twin, cur []byte) []Run {
	var runs []Run
	n := len(cur)
	i := 0
	for i < n {
		if twin[i] == cur[i] {
			i++
			continue
		}
		start := i
		for i < n && twin[i] != cur[i] {
			i++
		}
		data := make([]byte, i-start)
		copy(data, cur[start:i])
		runs = append(runs, Run{Off: int32(start), Data: data})
	}
	return runs
}

// Apply writes the diff's runs into page contents dst, and into twin as
// well when twin is non-nil. Applying to the twin keeps remotely-created
// modifications from being re-attributed to the local node's next diff
// when the local node is itself a concurrent writer of the page.
func (d *Diff) Apply(dst, twin []byte) {
	for _, r := range d.Runs {
		copy(dst[r.Off:], r.Data)
		if twin != nil {
			copy(twin[r.Off:], r.Data)
		}
	}
}

// Bytes reports the payload size of the diff on the simulated wire:
// 8 bytes of header per run plus the run data, plus the vector time.
func (d *Diff) Bytes() int {
	n := d.VT.wireBytes() + 16
	for _, r := range d.Runs {
		n += 8 + len(r.Data)
	}
	return n
}

// Overlaps reports whether two diffs modify any common byte. Overlapping
// concurrent diffs indicate a data race in the application.
func (d *Diff) Overlaps(other *Diff) bool {
	for _, a := range d.Runs {
		for _, b := range other.Runs {
			aEnd := a.Off + int32(len(a.Data))
			bEnd := b.Off + int32(len(b.Data))
			if a.Off < bEnd && b.Off < aEnd {
				return true
			}
		}
	}
	return false
}
