package core

import (
	"testing"
	"testing/quick"
)

func TestVClockBasics(t *testing.T) {
	v := NewVClock(3)
	w := NewVClock(3)
	if !v.Covers(w) || !w.Covers(v) {
		t.Error("zero clocks must cover each other")
	}
	v[1] = 5
	if !v.Covers(w) {
		t.Error("advanced clock must cover zero clock")
	}
	if w.Covers(v) {
		t.Error("zero clock must not cover advanced clock")
	}
	if !w.Before(v) {
		t.Error("zero clock must be Before advanced clock")
	}
	if v.Before(w) {
		t.Error("advanced clock must not be Before zero clock")
	}
	if v.Before(v) {
		t.Error("Before must be irreflexive")
	}
}

func TestVClockConcurrent(t *testing.T) {
	a := VClock{1, 0}
	b := VClock{0, 1}
	if a.Before(b) || b.Before(a) {
		t.Error("incomparable clocks must not be ordered")
	}
	if a.Covers(b) || b.Covers(a) {
		t.Error("incomparable clocks must not cover each other")
	}
}

func TestVClockMerge(t *testing.T) {
	a := VClock{1, 5, 2}
	b := VClock{3, 1, 2}
	a.Merge(b)
	want := VClock{3, 5, 2}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("merge = %v, want %v", a, want)
		}
	}
}

func TestVClockCoversInterval(t *testing.T) {
	v := VClock{2, 0}
	if !v.CoversInterval(0, 2) || !v.CoversInterval(0, 1) {
		t.Error("covered intervals reported uncovered")
	}
	if v.CoversInterval(0, 3) || v.CoversInterval(1, 1) {
		t.Error("uncovered intervals reported covered")
	}
}

func clamp(xs []int32) VClock {
	v := make(VClock, 4)
	for i := range v {
		if i < len(xs) {
			x := xs[i]
			if x < 0 {
				x = -x
			}
			v[i] = x % 100
		}
	}
	return v
}

func TestVClockMergeProperties(t *testing.T) {
	// Merge produces the least upper bound: it covers both inputs, and
	// anything covering both inputs covers the merge.
	f := func(xs, ys, zs []int32) bool {
		a, b := clamp(xs), clamp(ys)
		m := a.Clone()
		m.Merge(b)
		if !m.Covers(a) || !m.Covers(b) {
			return false
		}
		c := clamp(zs)
		if c.Covers(a) && c.Covers(b) && !c.Covers(m) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVClockBeforeAntisymmetric(t *testing.T) {
	f := func(xs, ys []int32) bool {
		a, b := clamp(xs), clamp(ys)
		return !(a.Before(b) && b.Before(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVClockBeforeTransitive(t *testing.T) {
	f := func(xs, ys, zs []int32) bool {
		a, b, c := clamp(xs), clamp(ys), clamp(zs)
		if a.Before(b) && b.Before(c) {
			return a.Before(c)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
