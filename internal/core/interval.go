package core

// IntervalInfo describes one closed interval of one node: its position in
// the partial order (VT) and the pages it modified (its write notices).
// IntervalInfos travel on lock-grant and barrier-release messages; applying
// one invalidates the named pages.
type IntervalInfo struct {
	Node  int
	Idx   int32
	VT    VClock
	Pages []PageID
}

// wireBytes reports the encoded size of the interval record: header,
// vector time, and 4 bytes per write notice.
func (in *IntervalInfo) wireBytes() int {
	return 12 + in.VT.wireBytes() + 4*len(in.Pages)
}

// infosBytes sums the wire size of a batch of interval records.
func infosBytes(infos []*IntervalInfo) int {
	n := 0
	for _, in := range infos {
		n += in.wireBytes()
	}
	return n
}
