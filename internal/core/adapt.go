package core

import (
	"sort"

	"cvm/internal/sim"
	"cvm/internal/trace"
)

// This file implements per-page adaptive coherence (Config.Adapt): an
// online classifier tags each page's sharing pattern from the fault and
// write-notice attribution already flowing through the barrier manager,
// and a controller switches pages between three coherence modes at
// barrier releases. Thread migration (Config.Migrate) shares the
// controller and epoch machinery; its decision logic lives in
// migrate.go.
//
// Mode semantics:
//
//   - ModeMWInv (default): the unmodified lazy multi-writer invalidate
//     protocol — twins, diffs, write notices.
//   - ModeMWUpd: invalidation semantics are unchanged, but the writer
//     eagerly pushes each closed interval's diff to the page's
//     subscribers. A subscriber caches contiguous push chains per
//     writer and satisfies later fault ranges locally, removing the
//     request/reply round trip from the paper's ~1100 µs fault path.
//   - ModeExcl: a single designated owner suspends the twin/diff
//     machinery — writes are absorbed with no interval bookkeeping
//     (the exclusive "window"). Non-owners are invalidated at the mode
//     switch and must fetch a whole-page snapshot from the owner; the
//     first foreign access closes the window (twin + dirty mark), so
//     absorbed writes re-enter the interval machinery before any
//     foreign copy can observe them.
//
// Every decision is taken at a global-barrier completion in the
// manager's engine context, stamped with the adaptation epoch, and
// applied on each node before its barrier release wakes any thread —
// all application threads are blocked at that instant, which makes the
// transition atomic across the cluster. All controller iteration is
// over sorted keys, so the decisions — and therefore every downstream
// artifact — are byte-identical at any EngineWorkers count.

// AdaptTuning bounds the adaptive controller. The zero value of every
// field selects the default noted on it.
type AdaptTuning struct {
	// Hysteresis is how many consecutive epochs a sharing pattern must
	// persist before the controller acts on it (default 2). Higher
	// values react slower but never flap on alternating patterns.
	Hysteresis int
	// Cooldown is how many epochs a page rests after a mode change
	// before the controller may switch it again (default 3).
	Cooldown int
	// MaxPromotionsPerEpoch caps exclusive-mode promotions per epoch
	// (default 32), bounding the invalidation burst a release carries.
	MaxPromotionsPerEpoch int
	// SubscriberCap bounds the update-mode subscriber set (default 16);
	// pages read by more nodes stay in invalidate mode.
	SubscriberCap int

	// MigrateMinEvents is the minimum remote events a thread must
	// accumulate in an epoch before migration is considered (default 16).
	MigrateMinEvents int
	// MigrateDominancePct is the share (percent) of a thread's remote
	// events that must target a single other node (default 60).
	MigrateDominancePct int
	// MigrateMaxPerEpoch caps migrations ordered per epoch (default 1).
	MigrateMaxPerEpoch int
	// MigrateCooldown is the epochs a migrated thread stays put
	// (default 8).
	MigrateCooldown int
	// MigrateBytes is the wire size charged for shipping one thread's
	// continuation (default 4096).
	MigrateBytes int
	// NodeCapacityFactor bounds a node's post-migration population to
	// factor × ThreadsPerNode (default 2).
	NodeCapacityFactor int
}

func (t AdaptTuning) withDefaults() AdaptTuning {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&t.Hysteresis, 2)
	def(&t.Cooldown, 3)
	def(&t.MaxPromotionsPerEpoch, 32)
	def(&t.SubscriberCap, 16)
	def(&t.MigrateMinEvents, 16)
	def(&t.MigrateDominancePct, 60)
	def(&t.MigrateMaxPerEpoch, 1)
	def(&t.MigrateCooldown, 8)
	def(&t.MigrateBytes, 4096)
	def(&t.NodeCapacityFactor, 2)
	return t
}

// PageMode is a page's coherence mode under adaptive coherence.
type PageMode uint8

// Page coherence modes.
const (
	// ModeMWInv is the default lazy multi-writer invalidate protocol.
	ModeMWInv PageMode = iota
	// ModeMWUpd pushes closed-interval diffs eagerly to subscribers.
	ModeMWUpd
	// ModeExcl suspends twin/diff machinery at a single owner.
	ModeExcl
)

// String returns a short name for the mode.
func (m PageMode) String() string {
	switch m {
	case ModeMWInv:
		return "mw-inv"
	case ModeMWUpd:
		return "mw-upd"
	case ModeExcl:
		return "excl"
	default:
		return "mode?"
	}
}

// PagePattern is the classifier's tag for a page's sharing behavior,
// following the classic taxonomy: private (one writer, no foreign
// readers), migratory (the single writer moves between nodes),
// producer-consumer (one stable writer, foreign readers), and false
// sharing / write-shared (multiple writers in one epoch).
type PagePattern uint8

// Sharing patterns.
const (
	PatternUnknown PagePattern = iota
	PatternPrivate
	PatternMigratory
	PatternProducerConsumer
	PatternFalseSharing
)

// String returns a short name for the pattern.
func (p PagePattern) String() string {
	switch p {
	case PatternPrivate:
		return "private"
	case PatternMigratory:
		return "migratory"
	case PatternProducerConsumer:
		return "producer-consumer"
	case PatternFalseSharing:
		return "false-sharing"
	default:
		return "unknown"
	}
}

// ModeDecision is the classifier's current prescription for one page.
type ModeDecision struct {
	Mode  PageMode
	Owner int32   // exclusive owner, or the producer; -1 when none
	Subs  []int32 // update-mode subscriber nodes, ascending
}

// classifier is the pure sharing-pattern engine: it consumes one
// (writers, readers) observation per page per epoch and prescribes a
// coherence mode with hysteresis and cooldown. It touches no protocol
// state, so unit tests drive it directly with synthetic traces.
type classifier struct {
	tune  AdaptTuning
	pages map[PageID]*classPage
}

type classPage struct {
	pattern    PagePattern
	streak     int // consecutive epochs observing pattern
	lastWriter int32
	cooldown   int
	barred     bool // foreign access hit exclusive mode: never promote again

	upMisses    int  // consecutive update-mode push epochs with zero hits
	upDemotions int  // times update mode was demoted for uselessness
	upBarred    bool // update mode proved useless twice: stop trying

	mode  PageMode
	owner int32
	subs  []int32
}

func newClassifier(tune AdaptTuning) *classifier {
	return &classifier{tune: tune, pages: make(map[PageID]*classPage)}
}

// Step ingests one epoch's activity for pg — the nodes that closed
// write intervals naming it, the nodes that remote-faulted on it, and
// the fault ranges satisfied from pushed-update caches (hits) — and
// returns the page's mode decision plus whether it changed this epoch.
// promoteOK gates exclusive-mode promotion (the controller's per-epoch
// cap); when false a promotable page simply stays put, keeps its
// streak, and retries next epoch.
func (c *classifier) Step(pg PageID, writers, readers []int32, hits int32, promoteOK bool) (ModeDecision, bool) {
	st := c.pages[pg]
	if st == nil {
		st = &classPage{lastWriter: -1, owner: -1}
		c.pages[pg] = st
	}

	pat := st.pattern
	switch {
	case len(writers) >= 2:
		pat = PatternFalseSharing
	case len(writers) == 1:
		w := writers[0]
		foreign := false
		for _, r := range readers {
			if r != w {
				foreign = true
				break
			}
		}
		switch {
		case foreign:
			pat = PatternProducerConsumer
		case st.lastWriter >= 0 && st.lastWriter != w:
			pat = PatternMigratory
		default:
			pat = PatternPrivate
		}
		st.lastWriter = w
	case len(readers) > 0 && st.lastWriter >= 0:
		// Readers-only epoch: phase-split applications write and read in
		// different barrier epochs. Foreign reads of the last writer's
		// data are producer-consumer evidence, not a new pattern.
		for _, r := range readers {
			if r != st.lastWriter {
				pat = PatternProducerConsumer
				break
			}
		}
	}
	// Producer-consumer subsumes private: a single-writer epoch with no
	// foreign readers is just the producer between read phases, so it
	// neither contradicts the pattern nor resets the streak — and the
	// private → producer-consumer upgrade continues the streak rather
	// than restarting it.
	if pat == PatternPrivate && st.pattern == PatternProducerConsumer {
		pat = PatternProducerConsumer
	}
	switch {
	case pat == st.pattern:
		st.streak++
	case pat == PatternProducerConsumer && st.pattern == PatternPrivate:
		st.pattern = pat
		st.streak++
	default:
		st.pattern = pat
		st.streak = 1
	}

	// Exclusive mode demotes immediately — hysteresis and cooldown do
	// not apply — the moment any foreign node touches the page: the
	// owner's window is already closed (the foreign fault's whole-page
	// fetch closed it), and the page is permanently barred from
	// re-promotion.
	if st.mode == ModeExcl {
		foreign := false
		for _, w := range writers {
			if w != st.owner {
				foreign = true
			}
		}
		for _, r := range readers {
			if r != st.owner {
				foreign = true
			}
		}
		if foreign {
			st.barred = true
			st.mode = ModeMWInv
			st.subs = nil
			st.cooldown = c.tune.Cooldown
			st.streak = 0
			// Keep st.owner: demoted non-owners may still hold a
			// pending whole-page fetch toward it.
			return c.decision(st), true
		}
	}

	// Update-mode effectiveness feedback: every push epoch (the writer
	// closed an interval, so diffs went out) that produces no cache hits
	// anywhere is wasted wire and receive overhead. Phase-split apps
	// alternate push epochs and hit epochs, so only a RUN of hitless
	// push epochs demotes; a second useless stint bars the page from
	// update mode for good. Like the exclusive-mode escape, this
	// overrides hysteresis and cooldown — it is evidence, not noise.
	if st.mode == ModeMWUpd {
		switch {
		case hits > 0:
			st.upMisses = 0
		case len(writers) > 0:
			st.upMisses++
			if st.upMisses >= 2*c.tune.Hysteresis {
				st.upMisses = 0
				st.upDemotions++
				if st.upDemotions >= 2 {
					st.upBarred = true
				}
				st.mode = ModeMWInv
				st.subs = nil
				st.cooldown = c.tune.Cooldown
				return c.decision(st), true
			}
		}
	}

	if st.cooldown > 0 {
		st.cooldown--
		return c.decision(st), false
	}
	if st.streak < c.tune.Hysteresis {
		return c.decision(st), false
	}

	switch st.pattern {
	case PatternPrivate:
		if st.mode != ModeExcl && !st.barred && st.lastWriter >= 0 {
			if !promoteOK {
				return c.decision(st), false
			}
			st.mode = ModeExcl
			st.owner = st.lastWriter
			st.subs = nil
			st.cooldown = c.tune.Cooldown
			return c.decision(st), true
		}
	case PatternProducerConsumer:
		if st.upBarred {
			return c.decision(st), false
		}
		if st.mode != ModeMWUpd {
			// Promotion needs fresh consumer evidence — a foreign fault in
			// THIS epoch, not a pattern carried over from one. A page read
			// once (initialization, a one-shot result collection) keeps the
			// producer-consumer tag while only its producer writes; pushing
			// to its recorded readers would be pure overhead.
			fresh := false
			for _, r := range readers {
				if r != st.lastWriter {
					fresh = true
					break
				}
			}
			if !fresh {
				return c.decision(st), false
			}
		}
		subs := mergeSubs(st.subs, readers, st.lastWriter)
		if len(subs) == 0 {
			// No foreign readers on record (possible right after an
			// exclusive-mode demotion cleared the set): update mode with
			// nobody to push to is pure overhead.
			return c.decision(st), false
		}
		if len(subs) > c.tune.SubscriberCap {
			// Too widely read to push to everyone; fall back.
			if st.mode == ModeMWUpd {
				st.mode = ModeMWInv
				st.subs = nil
				st.cooldown = c.tune.Cooldown
				return c.decision(st), true
			}
			return c.decision(st), false
		}
		if st.mode != ModeMWUpd || len(subs) != len(st.subs) {
			st.mode = ModeMWUpd
			st.owner = st.lastWriter
			st.subs = subs
			st.cooldown = c.tune.Cooldown
			return c.decision(st), true
		}
		st.subs = subs
	default: // migratory, false sharing, unknown
		if st.mode != ModeMWInv {
			st.mode = ModeMWInv
			st.subs = nil
			st.cooldown = c.tune.Cooldown
			return c.decision(st), true
		}
	}
	return c.decision(st), false
}

func (c *classifier) decision(st *classPage) ModeDecision {
	return ModeDecision{Mode: st.mode, Owner: st.owner, Subs: st.subs}
}

// Pattern reports the classifier's current tag for pg (for tests and
// introspection).
func (c *classifier) Pattern(pg PageID) PagePattern {
	if st := c.pages[pg]; st != nil {
		return st.pattern
	}
	return PatternUnknown
}

// mergeSubs folds this epoch's readers (minus the writer) into the
// sticky subscriber set, keeping it sorted and deduplicated. Sticky
// growth avoids flapping when a consumer skips an epoch.
func mergeSubs(subs, readers []int32, writer int32) []int32 {
	out := append([]int32(nil), subs...)
	for _, r := range readers {
		if r == writer {
			continue
		}
		i := sort.Search(len(out), func(i int) bool { return out[i] >= r })
		if i < len(out) && out[i] == r {
			continue
		}
		out = append(out, 0)
		copy(out[i+1:], out[i:])
		out[i] = r
	}
	return out
}

// ---------------------------------------------------------------------
// Controller (barrier-manager side, node 0 engine context only).

// modeChange is one epoch-stamped mode-change notice, broadcast on
// every barrier release and applied identically by all nodes.
type modeChange struct {
	page  PageID
	mode  PageMode
	owner int32
	epoch int32
	subs  []int32
}

// migOrder re-homes one thread at a barrier release.
type migOrder struct {
	gid   int
	from  int32
	to    int32
	epoch int32
}

// adaptRelease is the adaptation payload piggybacked on barrier release
// messages: mode-change notices, migration orders, and (when orders
// exist) the post-migration residency table.
type adaptRelease struct {
	epoch     int32
	changes   []modeChange
	orders    []migOrder
	residency []int32
}

// wireBytes is the accounting size of the piggybacked payload.
func (r *adaptRelease) wireBytes() int {
	if r == nil {
		return 0
	}
	b := 8
	for _, mc := range r.changes {
		b += 16 + 4*len(mc.subs)
	}
	b += 16 * len(r.orders)
	b += 4 * len(r.residency)
	return b
}

// adaptObs is one node's per-epoch observation report, piggybacked on
// its barrier arrival: remote-fault counts per page (the classifier's
// reader signal) and, under Migrate, per-thread affinity counters.
type adaptObs struct {
	pages  []PageID
	counts []int32
	// hitPages/hits report faults satisfied from pushed-update caches —
	// the controller's evidence that a page's update mode is earning its
	// push traffic.
	hitPages []PageID
	hits     []int32
	aff      []threadAff
}

// threadAff is one thread's remote-event counts toward each node.
type threadAff struct {
	gid    int
	pinned bool
	counts []int64
}

// wireBytes is the accounting size of the piggybacked report.
func (o *adaptObs) wireBytes() int {
	if o == nil {
		return 0
	}
	b := 8 + 12*len(o.pages) + 12*len(o.hitPages)
	for _, a := range o.aff {
		b += 9 + 4*len(a.counts)
	}
	return b
}

// adaptController owns all cluster-level adaptation state. It is
// touched exclusively from the barrier manager's (node 0's) engine
// context — observation ingestion at arrivals, decisions at
// completions — so it needs no locking under the windowed engine.
type adaptController struct {
	sys  *System
	tune AdaptTuning
	cls  *classifier

	epoch   int32
	lastIdx []int32 // per node: highest interval index already classified

	readers map[PageID][]int32 // this epoch's remote-faulting nodes per page
	hits    map[PageID]int32   // this epoch's update-cache hits per page

	// Migration state (allocated only under Config.Migrate).
	resident      []int32   // authoritative post-order residency per node
	homes         []int32   // current node per thread gid
	pinned        []bool    // threads barred from migration (LocalBarrier users)
	aff           [][]int64 // per gid: decayed remote-event counts per node
	cooldownUntil []int32   // per gid: epoch before which the thread stays put
	relVT         []VClock  // per node: manager VT at its last release (empty-node arrival stand-in)
}

func newAdaptController(s *System) *adaptController {
	ctl := &adaptController{
		sys:     s,
		tune:    s.cfg.AdaptTune.withDefaults(),
		lastIdx: make([]int32, s.cfg.Nodes),
		readers: make(map[PageID][]int32),
		hits:    make(map[PageID]int32),
	}
	ctl.cls = newClassifier(ctl.tune)
	if s.cfg.Migrate {
		threads := s.cfg.Nodes * s.cfg.ThreadsPerNode
		ctl.resident = make([]int32, s.cfg.Nodes)
		ctl.homes = make([]int32, threads)
		ctl.pinned = make([]bool, threads)
		ctl.aff = make([][]int64, threads)
		ctl.cooldownUntil = make([]int32, threads)
		ctl.relVT = make([]VClock, s.cfg.Nodes)
		for i := range ctl.resident {
			ctl.resident[i] = int32(s.cfg.ThreadsPerNode)
		}
		for g := range ctl.homes {
			ctl.homes[g] = int32(g / s.cfg.ThreadsPerNode)
		}
		for i := range ctl.relVT {
			ctl.relVT[i] = NewVClock(s.cfg.Nodes)
		}
	}
	return ctl
}

// occupied reports how many nodes currently host at least one thread —
// the barrier and reduction completion threshold once migration can
// empty a node.
func (ctl *adaptController) occupied() int {
	if ctl.resident == nil {
		return ctl.sys.cfg.Nodes
	}
	n := 0
	for _, r := range ctl.resident {
		if r > 0 {
			n++
		}
	}
	return n
}

// arrivalVT substitutes the manager's last-release vector time for a
// node that sent no arrival (zero resident threads): the node has
// learned exactly the intervals that release carried.
func (ctl *adaptController) arrivalVT(node int, vt VClock) VClock {
	if vt != nil {
		return vt
	}
	return ctl.relVT[node]
}

// recordRelease snapshots the manager's vector time at a barrier
// release, for empty-node arrival substitution at the next barrier.
func (ctl *adaptController) recordRelease(mgrVT VClock) {
	if ctl.relVT == nil {
		return
	}
	for i := range ctl.relVT {
		ctl.relVT[i] = mgrVT.Clone()
	}
}

// noteObs ingests one node's arrival report.
func (ctl *adaptController) noteObs(from int, o *adaptObs) {
	if o == nil {
		return
	}
	for _, pg := range o.pages {
		ctl.readers[pg] = append(ctl.readers[pg], int32(from))
	}
	for i, pg := range o.hitPages {
		ctl.hits[pg] += o.hits[i]
	}
	for _, a := range o.aff {
		if a.pinned {
			ctl.pinned[a.gid] = true
			ctl.aff[a.gid] = nil
			continue
		}
		acc := ctl.aff[a.gid]
		if acc == nil {
			acc = make([]int64, len(a.counts))
			ctl.aff[a.gid] = acc
		}
		// Exponential decay: recent epochs dominate, one hot epoch
		// does not commit the thread forever.
		for i := range acc {
			acc[i] = acc[i]/2 + a.counts[i]
		}
	}
}

// decide runs at a global-barrier completion: it derives this epoch's
// writer sets from the manager's interval table (arrivals already
// carried every node's new intervals), feeds the classifier page by
// page in sorted order, computes migration orders, and returns the
// release payload — or nil when nothing changed.
func (ctl *adaptController) decide() *adaptRelease {
	s := ctl.sys
	mgr := s.nodes[0]
	writers := make(map[PageID][]int32)
	if mgr.intervals != nil {
		for nodeID := 0; nodeID < s.cfg.Nodes; nodeID++ {
			infos := mgr.intervals[nodeID]
			i := sort.Search(len(infos), func(i int) bool { return infos[i].Idx > ctl.lastIdx[nodeID] })
			for _, info := range infos[i:] {
				for _, pg := range info.Pages {
					ws := writers[pg]
					if len(ws) == 0 || ws[len(ws)-1] != int32(nodeID) {
						writers[pg] = append(ws, int32(nodeID))
					}
				}
			}
			if len(infos) > 0 {
				ctl.lastIdx[nodeID] = infos[len(infos)-1].Idx
			}
		}
	}

	pages := make([]PageID, 0, len(writers)+len(ctl.readers))
	for pg := range writers {
		pages = append(pages, pg)
	}
	for pg := range ctl.readers {
		if _, ok := writers[pg]; !ok {
			pages = append(pages, pg)
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	rel := &adaptRelease{epoch: ctl.epoch}
	if s.cfg.Adapt {
		promotions := 0
		for _, pg := range pages {
			rs := ctl.readers[pg]
			sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
			d, changed := ctl.cls.Step(pg, writers[pg], rs, ctl.hits[pg],
				promotions < ctl.tune.MaxPromotionsPerEpoch)
			if !changed {
				continue
			}
			if d.Mode == ModeExcl {
				promotions++
			}
			rel.changes = append(rel.changes, modeChange{
				page: pg, mode: d.Mode, owner: d.Owner, epoch: ctl.epoch,
				subs: append([]int32(nil), d.Subs...),
			})
		}
	}
	if s.cfg.Migrate {
		rel.orders = ctl.decideMigrations()
		if len(rel.orders) > 0 {
			rel.residency = append([]int32(nil), ctl.resident...)
		}
	}

	for pg := range ctl.readers {
		delete(ctl.readers, pg)
	}
	for pg := range ctl.hits {
		delete(ctl.hits, pg)
	}
	ctl.epoch++
	if len(rel.changes) == 0 && len(rel.orders) == 0 {
		return nil
	}
	return rel
}

// ---------------------------------------------------------------------
// Node side: per-page adaptive state and notice application.

// pageAdapt is one node's adaptive state for one page.
type pageAdapt struct {
	mode  PageMode
	owner int32
	epoch int32 // epoch of the last applied mode change
	subs  []int32

	// needFull: the node was invalidated by an exclusive-mode promotion
	// and must fetch a whole-page snapshot from the owner before diffs
	// can validate the page again (the owner's window writes exist in no
	// diff). Set at promotion, cleared only by a snapshot install; it
	// deliberately survives demotion.
	needFull bool

	// exclOpen: the owner's exclusive window is open — writes are being
	// absorbed with no twin and no dirty mark.
	exclOpen bool

	// exclMissed: a foreign access closed the window; the fast path is
	// disabled so the window can never re-open and absorb writes a
	// previously served snapshot would miss.
	exclMissed bool

	// cache holds pushed-diff chains per writer (update mode,
	// subscriber side).
	cache map[int32]*updCache
}

// updCache is one contiguous chain of pushed diffs from one writer:
// the diffs cover intervals (from, to].
type updCache struct {
	from, to int32
	diffs    []*Diff
}

// updCacheCap bounds a chain's length; a longer backlog resets to the
// freshest push (the faulting range would need the dropped prefix from
// the network anyway).
const updCacheCap = 16

// adaptOf returns the node's adaptive state for pg, or nil.
func (n *node) adaptOf(pg PageID) *pageAdapt {
	if n.pmode == nil {
		return nil
	}
	return n.pmode[pg]
}

func (n *node) ensureAdapt(pg PageID) *pageAdapt {
	if n.pmode == nil {
		n.pmode = make(map[PageID]*pageAdapt)
	}
	ad := n.pmode[pg]
	if ad == nil {
		ad = &pageAdapt{owner: -1}
		n.pmode[pg] = ad
	}
	return ad
}

// noteFaultObs records a remote fault on pg for the classifier's reader
// signal. Called at every remote-fault entry; adaptObs is non-nil only
// when adaptation is on.
func (n *node) noteFaultObs(pg PageID) {
	if n.adaptObs != nil {
		n.adaptObs[pg]++
	}
}

// takeAdaptObs snapshots and resets the node's observation report at a
// barrier arrival (thread context, all local threads blocked or
// arriving). Returns nil when adaptation is off.
func (n *node) takeAdaptObs() *adaptObs {
	if n.sys.adapt == nil {
		return nil
	}
	o := &adaptObs{}
	if len(n.adaptObs) > 0 {
		o.pages = make([]PageID, 0, len(n.adaptObs))
		for pg := range n.adaptObs {
			o.pages = append(o.pages, pg)
		}
		sort.Slice(o.pages, func(i, j int) bool { return o.pages[i] < o.pages[j] })
		o.counts = make([]int32, len(o.pages))
		for i, pg := range o.pages {
			o.counts[i] = n.adaptObs[pg]
			delete(n.adaptObs, pg)
		}
	}
	if len(n.adaptHits) > 0 {
		o.hitPages = make([]PageID, 0, len(n.adaptHits))
		for pg := range n.adaptHits {
			o.hitPages = append(o.hitPages, pg)
		}
		sort.Slice(o.hitPages, func(i, j int) bool { return o.hitPages[i] < o.hitPages[j] })
		o.hits = make([]int32, len(o.hitPages))
		for i, pg := range o.hitPages {
			o.hits[i] = n.adaptHits[pg]
			delete(n.adaptHits, pg)
		}
	}
	if n.sys.cfg.Migrate {
		for _, th := range n.residents {
			a := threadAff{gid: th.gid, pinned: th.pinned}
			if !th.pinned {
				a.counts = append([]int64(nil), th.affinity...)
				for i := range th.affinity {
					th.affinity[i] = 0
				}
			}
			o.aff = append(o.aff, a)
		}
	}
	return o
}

// applyAdaptRelease applies the epoch's adaptation payload at this node
// (engine context, before releaseBarrier wakes anyone): mode-change
// notices, then residency, then outbound migrations for the barrier
// being released.
func (n *node) applyAdaptRelease(barrierID int, rel *adaptRelease) {
	for i := range rel.changes {
		mc := &rel.changes[i]
		ad := n.ensureAdapt(mc.page)
		prevMode, prevOwner := ad.mode, ad.owner
		ad.mode = mc.mode
		ad.owner = mc.owner
		ad.epoch = mc.epoch
		ad.subs = mc.subs
		if mc.mode != prevMode {
			// A mode transition invalidates push chains. A subs-only
			// refresh (still update mode) must NOT: the pushes that just
			// arrived during the barrier wait are exactly what the next
			// epoch's faults will hit.
			ad.cache = nil
		}
		switch {
		case mc.mode == ModeExcl && int32(n.id) == mc.owner:
			// A fresh exclusive grant: clear any miss left by an earlier
			// stint so the owner's next write can reopen the window. The
			// checker's excl-no-diff invariant relies on this — between
			// the grant and the window close the owner commits nothing.
			ad.exclMissed = false
		case mc.mode == ModeExcl && int32(n.id) != mc.owner:
			// Stale copies from before the promotion would otherwise
			// read forever: exclusive mode emits no write notices.
			p := n.pageAt(mc.page)
			p.state = PageInvalid
			ad.needFull = true
		case prevMode == ModeExcl && mc.mode != ModeExcl &&
			int32(n.id) == prevOwner && ad.exclOpen:
			// Demotion with the window still open (possible only if no
			// foreign access ever closed it): close it here so absorbed
			// writes re-enter the interval machinery.
			n.closeExclWindow(n.pageAt(mc.page), ad)
		}
		n.stats.ModeChanges++
		if tr := n.sys.tracer; tr != nil {
			tr.Emit(trace.Event{T: n.proc.LocalNow(), Kind: trace.KindModeChange,
				Node: int32(n.id), Thread: -1, Page: int32(mc.page),
				Peer: mc.owner, Arg: int64(mc.mode), Aux: int64(mc.epoch)})
		}
	}
	if rel.residency != nil {
		n.resident = int(rel.residency[n.id])
	}
	for i := range rel.orders {
		o := &rel.orders[i]
		if o.from == int32(n.id) {
			n.migrateOut(barrierID, o)
		}
	}
}

// ---------------------------------------------------------------------
// Update mode: eager push, subscriber cache, fault-time consumption.

// pendingPush is one queued update push: the just-closed interval's
// diff for one page, bound for the page's subscribers. Pushes queue at
// closeInterval and flush at the next barrier release (or right behind
// a departing lock grant), so the eager data never delays the
// release-critical path.
type pendingPush struct {
	pg      PageID
	d       *Diff
	prevIdx int32
	subs    []int32
}

// queuePush records an update push for the interval that just closed
// over p (thread context, from closeInterval). prevIdx is this node's
// previous diff index for the page, anchoring the receiver's chain
// contiguity check.
func (n *node) queuePush(p *page, d *Diff, ad *pageAdapt) {
	prevIdx := int32(0)
	if len(p.diffs) >= 2 {
		prevIdx = p.diffs[len(p.diffs)-2].Idx
	}
	n.pendingPush = append(n.pendingPush, pendingPush{
		pg: p.id, d: d, prevIdx: prevIdx, subs: ad.subs,
	})
}

// flushPushes sends every queued update push. At a lock release it runs
// in thread context right after the grant departs; at a barrier it runs
// in engine context at the RELEASE (not the arrival), so pushed data
// rides the idle post-barrier wire instead of racing the release
// broadcast for subscriber ingress. Either way the release-critical
// message always reserves the egress first.
func (n *node) flushPushes(t *Thread) {
	if len(n.pendingPush) == 0 {
		return
	}
	sys := n.sys
	for _, pp := range n.pendingPush {
		pp := pp
		bytes := 16 + pp.d.WireBytes(sys.cfg.CompressDiffs)
		for _, sub := range pp.subs {
			if sub == int32(n.id) {
				continue
			}
			sub := sub
			n.stats.UpdatePushes++
			deliver := func() {
				sys.nodes[sub].receiveUpdate(pp.pg, pp.d, pp.prevIdx)
			}
			if t != nil {
				sys.sendFromTask(t.task, NodeID(n.id), NodeID(sub),
					ClassUpdate, bytes, deliver)
			} else {
				sys.sendFromHandler(NodeID(n.id), NodeID(sub),
					ClassUpdate, bytes, deliver)
			}
		}
	}
	n.pendingPush = n.pendingPush[:0]
}

// receiveUpdate accepts a pushed diff at a subscriber (engine context),
// extending the per-writer chain when contiguous and resetting it
// otherwise. Pushes for pages no longer in update mode are dropped.
func (n *node) receiveUpdate(pg PageID, d *Diff, prevIdx int32) {
	ad := n.adaptOf(pg)
	if ad == nil || ad.mode != ModeMWUpd {
		return
	}
	if ad.cache == nil {
		ad.cache = make(map[int32]*updCache)
	}
	c := ad.cache[int32(d.Node)]
	if c == nil {
		c = &updCache{}
		ad.cache[int32(d.Node)] = c
	}
	switch {
	case len(c.diffs) == 0:
		c.from, c.to = prevIdx, d.Idx
		c.diffs = append(c.diffs[:0], d)
	case c.to == prevIdx && len(c.diffs) < updCacheCap:
		c.to = d.Idx
		c.diffs = append(c.diffs, d)
	default:
		c.from, c.to = prevIdx, d.Idx
		c.diffs = append(c.diffs[:0], d)
	}
}

// consumeCached splits a fault's missing ranges into locally satisfied
// diffs (from pushed chains) and ranges that still need the network.
// A chain covering (from, to] ⊇ (r.from, r.to] is a hit; a chain that
// cannot cover the range is stale and dropped.
func (n *node) consumeCached(pg PageID, ad *pageAdapt, ranges []diffRange) (remote []diffRange, cached []*Diff) {
	for _, r := range ranges {
		c := ad.cache[int32(r.node)]
		if c == nil || len(c.diffs) == 0 || c.from > r.from || c.to < r.to {
			if c != nil {
				delete(ad.cache, int32(r.node))
			}
			remote = append(remote, r)
			continue
		}
		for _, d := range c.diffs {
			if d.Idx > r.from && d.Idx <= r.to {
				cached = append(cached, d)
			}
		}
		n.stats.UpdateHits++
		if n.adaptHits != nil {
			n.adaptHits[pg]++
		}
		if c.to <= r.to {
			delete(ad.cache, int32(r.node))
		}
	}
	return remote, cached
}

// ---------------------------------------------------------------------
// Exclusive mode: owner window, whole-page serving.

// closeExclWindow ends the owner's exclusive window (engine or thread
// context at the owner): the current page contents become the twin, the
// page joins the dirty list, and subsequent writes flow through the
// normal interval machinery. Absorbed window writes are therefore
// committed before any foreign copy can be served.
func (n *node) closeExclWindow(p *page, ad *pageAdapt) {
	ad.exclOpen = false
	ad.exclMissed = true
	if p.state == PageReadWrite && p.twin == nil {
		n.materialize(p)
		n.newTwin(p)
		n.markDirty(p)
		if tr := n.sys.tracer; tr != nil {
			tr.Emit(trace.Event{T: n.proc.LocalNow(), Kind: trace.KindTwinCreate,
				Node: int32(n.id), Thread: -1, Page: int32(p.id)})
		}
	}
	n.stats.ExclWindowCloses++
	if tr := n.sys.tracer; tr != nil {
		tr.Emit(trace.Event{T: n.proc.LocalNow(), Kind: trace.KindExclWindowClose,
			Node: int32(n.id), Thread: -1, Page: int32(p.id), Aux: int64(ad.epoch)})
	}
}

// serveFullPage answers a whole-page fetch at the (current or former)
// exclusive owner (engine context): close a still-open window, then
// reply with the committed page image — the twin when an interval is
// open, else the live data — and the owner's applied-coverage vector,
// with the owner's own entry at its current interval index.
func (n *node) serveFullPage(pg PageID, reply func(data []byte, vec VClock, bytes int, service sim.Time)) {
	p := n.pageAt(pg)
	if ad := n.adaptOf(pg); ad != nil && ad.exclOpen {
		n.closeExclWindow(p, ad)
	}
	n.materialize(p)
	src := p.data
	if p.twin != nil {
		src = p.twin
	}
	data := make([]byte, len(src))
	copy(data, src)
	vec := NewVClock(n.sys.cfg.Nodes)
	for i := range p.writers {
		vec[p.writers[i].node] = p.writers[i].applied
	}
	vec[n.id] = n.curIdx
	bytes := 16 + len(data) + vec.wireBytes()
	reply(data, vec, bytes, n.sys.cfg.DiffServeCost)
}

// fullFetchFault fetches a whole-page snapshot from the exclusive
// owner (thread context; the fault span is already open and signal
// delivery charged). The install happens in applyFault via
// faultState.snap; residual writer gaps, if any, re-fault normally.
func (t *Thread) fullFetchFault(p *page, ad *pageAdapt, fstart sim.Time) {
	n := t.node
	sys := t.sys
	owner := int(ad.owner)
	fs := &faultState{page: p, outstanding: 1, start: fstart}
	p.fault = fs
	n.stats.RemoteFaults++
	n.stats.FullFetches++
	n.stats.OutstandingFaults += int64(n.inFlightFaults)
	n.stats.OutstandingLocks += int64(n.inFlightLocks)
	n.inFlightFaults++
	if t.affinity != nil {
		t.affinity[owner]++
	}
	target := sys.nodes[owner]
	sys.sendFromTask(t.task, NodeID(n.id), NodeID(owner),
		ClassDiff, diffRequestBytes, func() {
			target.serveFullPage(p.id, func(data []byte, vec VClock, bytes int, service sim.Time) {
				sys.eng.ScheduleOn(target.proc, target.proc.LocalNow()+service, func() {
					sys.sendFromHandler(NodeID(owner), NodeID(n.id),
						ClassDiff, bytes, func() {
							fs.snap = data
							fs.snapVec = vec
							fs.outstanding = 0
							fs.ready = true
							sys.eng.Wake(fs.waiters[0].task)
						})
				})
			})
		})
	fs.waiters = append(fs.waiters, t)
	wstart := t.task.Now()
	t.block(ReasonFault)
	if nm := n.met; nm != nil {
		d := t.task.Now() - wstart
		nm.FaultThreadWait.Observe(int64(d))
		sys.met.PageFaultWait(n.id, int32(p.id), d)
	}
	if p.fault == fs && fs.ready && fs.waiters[0] == t {
		t.applyFault(fs)
	}
}
