package core

import "math/bits"

// copysetInline is the sharer count a copyset tracks without spilling.
// Most pages have a handful of sharers (the paper's apps mostly
// ping-pong pages between two nodes), so the common case stays a small
// sorted array inside the directory entry.
const copysetInline = 6

// copyset is the set of nodes holding a valid copy of one page. It
// replaces the former uint64 bitmask, whose shift arithmetic silently
// wrapped at 64 nodes (node 65's bit landed on node 1). Representation:
// a small sorted inline array up to copysetInline members, spilling to a
// word bitset above that. Spilled bitsets are recycled through the
// owning directory node's csPool, so churny pages do not allocate per
// transition. Enumeration is ascending by node either way, which keeps
// invalidation fan-out order — and therefore the simulation schedule —
// deterministic and identical to the bitmask's 0..N scan.
type copyset struct {
	inline [copysetInline]int32 // sorted ascending; first n valid
	n      int                  // inline member count (ignored when spilled)
	bits   []uint64             // non-nil once spilled
}

// reset makes the set contain exactly {node}, recycling a spilled bitset
// into pool.
func (cs *copyset) reset(node int, pool *csPool) {
	if cs.bits != nil {
		pool.put(cs.bits)
		cs.bits = nil
	}
	cs.inline[0] = int32(node)
	cs.n = 1
}

// add inserts node into the set, spilling to a bitset at the inline
// capacity.
func (cs *copyset) add(node int, pool *csPool) {
	if cs.bits != nil {
		cs.bits[node>>6] |= 1 << uint(node&63)
		return
	}
	i := 0
	for ; i < cs.n; i++ {
		switch {
		case cs.inline[i] == int32(node):
			return
		case cs.inline[i] > int32(node):
			goto insert
		}
	}
insert:
	if cs.n < copysetInline {
		copy(cs.inline[i+1:cs.n+1], cs.inline[i:cs.n])
		cs.inline[i] = int32(node)
		cs.n++
		return
	}
	// Spill: move the inline members into a pooled bitset.
	cs.bits = pool.get()
	for _, m := range cs.inline[:cs.n] {
		cs.bits[m>>6] |= 1 << uint(m&63)
	}
	cs.bits[node>>6] |= 1 << uint(node&63)
	cs.n = 0
}

// contains reports membership.
func (cs *copyset) contains(node int) bool {
	if cs.bits != nil {
		return cs.bits[node>>6]&(1<<uint(node&63)) != 0
	}
	for _, m := range cs.inline[:cs.n] {
		if m == int32(node) {
			return true
		}
	}
	return false
}

// size reports the member count.
func (cs *copyset) size() int {
	if cs.bits == nil {
		return cs.n
	}
	total := 0
	for _, w := range cs.bits {
		total += bits.OnesCount64(w)
	}
	return total
}

// appendMembers appends the members except skip1 and skip2 to dst,
// ascending by node, and returns the extended slice. Fan-out work is
// O(|copyset|) inline and O(nodes/64) words when spilled — never a scan
// over every node.
func (cs *copyset) appendMembers(dst []int32, skip1, skip2 int) []int32 {
	if cs.bits == nil {
		for _, m := range cs.inline[:cs.n] {
			if int(m) == skip1 || int(m) == skip2 {
				continue
			}
			dst = append(dst, m)
		}
		return dst
	}
	for wi, w := range cs.bits {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			m := wi<<6 + b
			if m == skip1 || m == skip2 {
				continue
			}
			dst = append(dst, int32(m))
		}
	}
	return dst
}

// csPool recycles spilled copyset bitsets for one directory node. All
// bitsets in one pool are sized for the cluster's node count.
type csPool struct {
	words int
	free  [][]uint64
}

func (p *csPool) init(nodes int) {
	p.words = (nodes + 63) >> 6
}

func (p *csPool) get() []uint64 {
	if k := len(p.free); k > 0 {
		b := p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		return b
	}
	return make([]uint64, p.words)
}

func (p *csPool) put(b []uint64) {
	for i := range b {
		b[i] = 0
	}
	p.free = append(p.free, b)
}
