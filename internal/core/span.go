package core

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// Span accessors: the bulk fast path over shared memory. The scalar path
// (read8/write8) pays the full software access pipeline — locate,
// ensureAccess, byte codec, memory-system charge, task.Advance — per 8
// bytes. A span splits the request at page boundaries and runs that
// pipeline once per page instead of once per element: one fault check,
// one bulk copy, one coalesced charge. This is the simulation analogue of
// a real software DSM batching its access checks (Shasta-style): the
// protocol work is per page, so per-element repetition of the check is
// pure overhead.
//
// Virtual-time equivalence: the coalesced charge computes exactly the
// per-element costs (memsim.AccessStride8 and InstrTouchCycle are
// bit-identical to the element loop) and advances once with their sum, so
// counters, miss counts, and end times match the elementwise path.
//
// Handler interleaving: the copy happens immediately after ensureAccess
// with no intervening yields, so protocol handlers (write-notice
// invalidation, twin consumption) can only interleave at page-span
// boundaries — the same points where the fault machine already re-checks
// state. Within a span the elementwise path could additionally observe a
// handler between elements of one page; lazy release consistency permits
// either outcome (no acquire separates the elements), and the span's
// page-snapshot behavior is what mmap-based DSMs provide anyway. Write
// spans re-run the fault loop until the page holds still in ReadWrite
// with a live twin, exactly as write8 does.

// chargeSpan charges cnt consecutive 8-byte accesses at a through the
// node's memory hierarchy plus the rotating instruction-fetch touches,
// advancing once with the exact elementwise total.
func (t *Thread) chargeSpan(a Addr, cnt int) {
	cost := t.node.mem.AccessStride8(uint64(a), cnt)
	cost += t.node.mem.InstrTouchCycle(phaseCodeBase(t.phase), phaseCodePages, t.codeRot, cnt)
	t.codeRot += cnt
	t.task.Advance(cost)
}

// spanPages walks [a, a+8*len) splitting at page boundaries, calling body
// with the page, byte offset, element offset into the span, and element
// count. body runs the access check, copy, and charge for its segment.
func (t *Thread) spanPages(a Addr, n int, body func(p *page, off, idx, cnt int)) {
	for idx := 0; idx < n; {
		p, off := t.locate(a)
		cnt := (t.sys.cfg.PageSize - off) / 8
		if cnt > n-idx {
			cnt = n - idx
		}
		body(p, off, idx, cnt)
		t.chargeSpan(a, cnt)
		a += Addr(cnt) * 8
		idx += cnt
	}
}

// readSpan reads n 8-byte words starting at a into dst.
func (t *Thread) readSpan(a Addr, dst []uint64, n int) {
	t.spanPages(a, n, func(p *page, off, idx, cnt int) {
		t.ensureAccess(p, false)
		seg := dst[idx : idx+cnt]
		if p.data == nil {
			for i := range seg {
				seg[i] = 0
			}
			return
		}
		bytesToU64(p.data[off:off+cnt*8], seg)
	})
}

// writeSpan writes n 8-byte words from src starting at a.
func (t *Thread) writeSpan(a Addr, src []uint64, n int) {
	t.spanPages(a, n, func(p *page, off, idx, cnt int) {
		for {
			t.ensureAccess(p, true)
			if p.state == PageReadWrite {
				u64ToBytes(src[idx:idx+cnt], p.data[off:off+cnt*8])
				return
			}
			// A handler downgraded the page while ensureAccess was
			// charging fault costs; run the fault state machine again.
		}
	})
}

// fillSpan writes n copies of the 8-byte word v starting at a.
func (t *Thread) fillSpan(a Addr, n int, v uint64) {
	var pat [8]byte
	binary.LittleEndian.PutUint64(pat[:], v)
	t.spanPages(a, n, func(p *page, off, idx, cnt int) {
		for {
			t.ensureAccess(p, true)
			if p.state == PageReadWrite {
				seg := p.data[off : off+cnt*8]
				copy(seg, pat[:])
				for done := 8; done < len(seg); done *= 2 {
					copy(seg[done:], seg[:done])
				}
				return
			}
		}
	})
}

// ReadRangeF64 reads len(dst) float64s from shared memory starting at a.
// The access check and memory-system charge are batched per page; see the
// package comment above for the equivalence and interleaving contract.
func (t *Thread) ReadRangeF64(a Addr, dst []float64) {
	t.readSpan(a, f64sAsU64s(dst), len(dst))
}

// WriteRangeF64 writes src to shared memory starting at a.
func (t *Thread) WriteRangeF64(a Addr, src []float64) {
	t.writeSpan(a, f64sAsU64s(src), len(src))
}

// FillF64 writes n copies of v to shared memory starting at a.
func (t *Thread) FillF64(a Addr, n int, v float64) {
	t.fillSpan(a, n, math.Float64bits(v))
}

// ReadRangeI64 reads len(dst) int64s from shared memory starting at a.
func (t *Thread) ReadRangeI64(a Addr, dst []int64) {
	t.readSpan(a, i64sAsU64s(dst), len(dst))
}

// WriteRangeI64 writes src to shared memory starting at a.
func (t *Thread) WriteRangeI64(a Addr, src []int64) {
	t.writeSpan(a, i64sAsU64s(src), len(src))
}

// FillI64 writes n copies of v to shared memory starting at a.
func (t *Thread) FillI64(a Addr, n int, v int64) {
	t.fillSpan(a, n, uint64(v))
}

// AddF64 adds v to the float64 at a as one fused read-modify-write: one
// locate and one access check instead of the independent Get and Set
// round-trips, with both data accesses still charged. Fault counters and
// virtual time match the Get+Set pair exactly (an invalid page takes the
// remote fault then the twin fault, a read-only page just the twin fault,
// both orders charging the same access sequence).
func (t *Thread) AddF64(a Addr, v float64) {
	p, off := t.locate(a)
	for {
		t.ensureAccess(p, true)
		if p.state == PageReadWrite {
			old := math.Float64frombits(binary.LittleEndian.Uint64(p.data[off:]))
			binary.LittleEndian.PutUint64(p.data[off:], math.Float64bits(old+v))
			break
		}
	}
	t.charge(a) // the load
	t.charge(a) // the store
}

// hostLittleEndian reports whether the host stores multi-byte words
// little-endian, making page bytes directly aliasable as word slices.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// f64sAsU64s reinterprets a float64 slice as its raw 8-byte words (always
// safe: same size and alignment, no byte-order dependence).
func f64sAsU64s(s []float64) []uint64 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&s[0])), len(s))
}

// i64sAsU64s reinterprets an int64 slice as its raw 8-byte words.
func i64sAsU64s(s []int64) []uint64 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&s[0])), len(s))
}

// aligned8 reports whether b starts on an 8-byte boundary.
func aligned8(b []byte) bool {
	return uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

// bytesToU64 decodes little-endian page bytes into words, aliasing the
// page directly when the host layout permits.
func bytesToU64(b []byte, dst []uint64) {
	if hostLittleEndian && aligned8(b) {
		copy(dst, unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(dst)))
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
}

// u64ToBytes encodes words as little-endian page bytes (the shared-memory
// byte order on every host), aliasing when permitted.
func u64ToBytes(src []uint64, b []byte) {
	if hostLittleEndian && aligned8(b) {
		copy(unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(src)), src)
		return
	}
	for i, v := range src {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
}
