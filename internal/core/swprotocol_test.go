package core

import (
	"testing"

	"cvm/internal/sim"
)

// swSystem builds a single-writer-protocol system.
func swSystem(t *testing.T, nodes, threads int) *System {
	t.Helper()
	cfg := DefaultConfig(nodes, threads)
	cfg.Protocol = ProtocolSW
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestProtocolString(t *testing.T) {
	if ProtocolLRC.String() != "lazy-multi-writer" || ProtocolSW.String() != "single-writer" {
		t.Errorf("protocol names = %q, %q", ProtocolLRC, ProtocolSW)
	}
}

func TestSWReadWriteSingleNode(t *testing.T) {
	s := swSystem(t, 1, 1)
	addr, _ := s.Alloc("x", 8192)
	var got float64
	runApp(t, s, func(w *Thread) {
		w.WriteF64(addr, 2.5)
		got = w.ReadF64(addr)
	})
	if got != 2.5 {
		t.Errorf("got %v, want 2.5", got)
	}
}

func TestSWPropagationViaBarrier(t *testing.T) {
	s := swSystem(t, 4, 1)
	addr, _ := s.Alloc("x", 8192)
	got := make([]float64, 4)
	runApp(t, s, func(w *Thread) {
		if w.NodeID() == 0 {
			w.WriteF64(addr, 7)
		}
		w.Barrier(0)
		got[w.NodeID()] = w.ReadF64(addr)
	})
	for i, v := range got {
		if v != 7 {
			t.Errorf("node %d read %v, want 7", i, v)
		}
	}
	if s.Stats().Total.DiffsCreated != 0 {
		t.Error("single-writer protocol created diffs")
	}
}

func TestSWIsEagerlyCoherent(t *testing.T) {
	// Unlike LRC, single-writer propagates without synchronization: a
	// write invalidates remote copies immediately, so a later remote read
	// (ordered only by virtual time, no lock/barrier) sees it.
	s := swSystem(t, 2, 1)
	addr, _ := s.Alloc("x", 8192)
	var got float64
	runApp(t, s, func(w *Thread) {
		if w.NodeID() == 0 {
			w.WriteF64(addr, 3)
		} else {
			// Wait out the write's invalidation in virtual time.
			w.Compute(50 * sim.Millisecond)
			got = w.ReadF64(addr)
		}
	})
	if got != 3 {
		t.Errorf("read %v, want 3 (eager coherence)", got)
	}
}

func TestSWLockCounter(t *testing.T) {
	const nodes, threads, rounds = 4, 2, 4
	s := swSystem(t, nodes, threads)
	addr, _ := s.Alloc("counter", 8192)
	var final int64
	runApp(t, s, func(w *Thread) {
		for r := 0; r < rounds; r++ {
			w.Lock(7)
			w.WriteI64(addr, w.ReadI64(addr)+1)
			w.Unlock(7)
		}
		w.Barrier(0)
		if w.GlobalID() == 0 {
			final = w.ReadI64(addr)
		}
		w.Barrier(1)
	})
	if want := int64(nodes * threads * rounds); final != want {
		t.Errorf("counter = %d, want %d", final, want)
	}
}

func TestSWOwnershipMigration(t *testing.T) {
	// Ping-pong writes between two nodes: ownership must migrate and the
	// final value reflect both writers.
	s := swSystem(t, 2, 1)
	addr, _ := s.Alloc("x", 8192)
	var got float64
	runApp(t, s, func(w *Thread) {
		for r := 0; r < 4; r++ {
			if r%2 == w.NodeID() {
				w.WriteF64(addr+Addr(r*8), float64(r+1))
			}
			w.Barrier(r)
		}
		if w.GlobalID() == 0 {
			got = w.ReadF64(addr) + w.ReadF64(addr+8) + w.ReadF64(addr+16) + w.ReadF64(addr+24)
		}
		w.Barrier(100)
	})
	if got != 1+2+3+4 {
		t.Errorf("sum = %v, want 10", got)
	}
}

func TestSWBlockSamePage(t *testing.T) {
	s := swSystem(t, 2, 2)
	addr, _ := s.Alloc("x", 8192)
	runApp(t, s, func(w *Thread) {
		if w.NodeID() == 0 && w.LocalID() == 0 {
			w.WriteF64(addr, 1)
		}
		w.Barrier(0)
		if w.NodeID() == 1 {
			_ = w.ReadF64(addr + Addr(8*w.LocalID()))
		}
		w.Barrier(1)
	})
	st := s.Stats()
	if st.Nodes[1].BlockSamePage != 1 {
		t.Errorf("BlockSamePage = %d, want 1", st.Nodes[1].BlockSamePage)
	}
}

func TestSWFalseSharingPingPong(t *testing.T) {
	// The protocol comparison in miniature: concurrent writers to
	// disjoint halves of one page. Multi-writer LRC resolves it with
	// concurrent diffs; single-writer must ping-pong ownership, costing
	// far more data traffic.
	run := func(protocol Protocol) int64 {
		cfg := DefaultConfig(2, 1)
		cfg.Protocol = protocol
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		addr, _ := s.Alloc("x", 8192)
		runApp(t, s, func(w *Thread) {
			base := addr + Addr(4096*w.NodeID())
			for r := 0; r < 8; r++ {
				for i := 0; i < 16; i++ {
					w.WriteF64(base+Addr(i*8), float64(r*i))
				}
				w.Barrier(r)
			}
		})
		return s.Stats().Net.TotalBytes()
	}
	lrc, sw := run(ProtocolLRC), run(ProtocolSW)
	if sw <= lrc {
		t.Errorf("single-writer bytes %d not greater than multi-writer %d under false sharing", sw, lrc)
	}
}

func TestSWDeterministic(t *testing.T) {
	run := func() RunStats {
		s := swSystem(t, 4, 2)
		addr, _ := s.Alloc("grid", 32768)
		if err := s.Start(func(w *Thread) {
			for r := 0; r < 2; r++ {
				for i := w.GlobalID(); i < 4096; i += w.Threads() * 8 {
					w.WriteF64(addr+Addr(i*8), float64(i+r))
				}
				w.Barrier(r)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	a, b := run(), run()
	if a.Total != b.Total || a.Wall != b.Wall {
		t.Error("single-writer runs diverged")
	}
}

func TestSWWriteInvalidatesReaders(t *testing.T) {
	// Readers join the copyset; a subsequent writer must invalidate every
	// copy, and the readers must re-fetch the new value.
	s := swSystem(t, 4, 1)
	addr, _ := s.Alloc("x", 8192)
	got := make([]float64, 4)
	runApp(t, s, func(w *Thread) {
		// Round 1: node 3 writes, everyone reads (copyset = all).
		if w.NodeID() == 3 {
			w.WriteF64(addr, 1)
		}
		w.Barrier(0)
		_ = w.ReadF64(addr)
		w.Barrier(1)
		// Round 2: node 1 writes — must invalidate nodes 0, 2, 3.
		if w.NodeID() == 1 {
			w.WriteF64(addr, 2)
		}
		w.Barrier(2)
		got[w.NodeID()] = w.ReadF64(addr)
		w.Barrier(3)
	})
	for i, v := range got {
		if v != 2 {
			t.Errorf("node %d read %v after invalidation round, want 2", i, v)
		}
	}
}

func TestSWQueuedTransactions(t *testing.T) {
	// Concurrent write faults on one page from several nodes serialize
	// through the directory's transaction queue; all updates to distinct
	// words must survive.
	s := swSystem(t, 4, 2)
	addr, _ := s.Alloc("x", 8192)
	var sum float64
	runApp(t, s, func(w *Thread) {
		w.WriteF64(addr+Addr(w.GlobalID()*8), float64(w.GlobalID()+1))
		w.Barrier(0)
		if w.GlobalID() == 0 {
			for i := 0; i < w.Threads(); i++ {
				sum += w.ReadF64(addr + Addr(i*8))
			}
		}
		w.Barrier(1)
	})
	if want := 36.0; sum != want {
		t.Errorf("sum = %v, want %v (lost concurrent writes)", sum, want)
	}
}
