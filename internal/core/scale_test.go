package core

import (
	"runtime"
	"testing"
)

// TestSWProtocolBeyond64Nodes is the regression test for the copyset's
// former uint64 representation: with 65 nodes, node 64's membership bit
// wrapped around (Go defines 1<<64 on uint64 as 0), so node 64 silently
// vanished from every copyset, write invalidations skipped it, and it
// read stale data forever. The scenario forces exactly that path: node
// 64 joins a read copyset, another node writes, node 64 must observe the
// new value.
func TestSWProtocolBeyond64Nodes(t *testing.T) {
	const nodes = 65
	cfg := DefaultConfig(nodes, 1)
	cfg.Protocol = ProtocolSW
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := s.Alloc("x", cfg.PageSize)
	runApp(t, s, func(w *Thread) {
		if w.GlobalID() == 64 {
			w.WriteI64(addr, 7)
		}
		w.Barrier(0)
		// Every node reads: all 65 nodes join the copyset.
		if v := w.ReadI64(addr); v != 7 {
			t.Errorf("node %d phase 2: read %d, want 7", w.GlobalID(), v)
		}
		w.Barrier(1)
		if w.GlobalID() == 3 {
			// Invalidation must fan out to all 64 other copies — node 64
			// included.
			w.WriteI64(addr, 9)
		}
		w.Barrier(2)
		if v := w.ReadI64(addr); v != 9 {
			t.Errorf("node %d phase 4: read %d, want 9 (stale copy not invalidated)", w.GlobalID(), v)
		}
	})
	// After phase 4 every node holds a read copy again: the copyset must
	// have spilled past the inline array and node 64 — the node the old
	// bitmask lost — must be a member.
	d := s.nodes[0].swdir[0]
	if d == nil {
		t.Fatal("no directory entry at the manager")
	}
	if got := d.copyset.size(); got != nodes {
		t.Errorf("final copyset size = %d, want %d (all readers rejoined)", got, nodes)
	}
	if d.copyset.bits == nil {
		t.Error("a 65-member copyset did not spill to the bitset form")
	}
	if !d.copyset.contains(64) {
		t.Error("node 64 missing from the copyset (the old uint64 wraparound bug)")
	}
	if d.owner != 3 {
		t.Errorf("owner = %d, want 3 (the phase-3 writer)", d.owner)
	}
}

// TestLRCBeyond64Nodes runs the default lazy-multi-writer protocol past
// the old ceiling: 65 nodes incrementing one counter under a lock, with
// interval/write-notice machinery exercised end to end.
func TestLRCBeyond64Nodes(t *testing.T) {
	const nodes = 65
	s := testSystem(t, nodes, 1)
	addr, _ := s.Alloc("counter", s.cfg.PageSize)
	runApp(t, s, func(w *Thread) {
		w.Lock(1)
		w.WriteI64(addr, w.ReadI64(addr)+1)
		w.Unlock(1)
		w.Barrier(0)
		w.Lock(1)
		if v := w.ReadI64(addr); v != nodes {
			t.Errorf("node %d: counter = %d, want %d", w.GlobalID(), v, nodes)
		}
		w.Unlock(1)
	})
}

// TestCopysetSpill unit-tests the inline→bitset transition, ordering,
// and pool recycling.
func TestCopysetSpill(t *testing.T) {
	var pool csPool
	pool.init(130)
	var cs copyset
	cs.reset(5, &pool)
	if got := cs.size(); got != 1 || !cs.contains(5) {
		t.Fatalf("after reset(5): size=%d contains(5)=%v", got, cs.contains(5))
	}
	// Insert out of order, with duplicates, past the inline capacity.
	for _, n := range []int{99, 2, 129, 2, 64, 65, 17, 0, 99, 33} {
		cs.add(n, &pool)
	}
	want := []int32{0, 2, 5, 17, 33, 64, 65, 99, 129}
	if cs.bits == nil {
		t.Fatalf("copyset with %d members did not spill", len(want))
	}
	if got := cs.size(); got != len(want) {
		t.Fatalf("size = %d, want %d", got, len(want))
	}
	got := cs.appendMembers(nil, -1, -1)
	for i, m := range want {
		if got[i] != m {
			t.Fatalf("members = %v, want %v", got, want)
		}
	}
	// Skips must drop members without disturbing order.
	skipped := cs.appendMembers(nil, 0, 129)
	if len(skipped) != len(want)-2 || skipped[0] != 2 || skipped[len(skipped)-1] != 99 {
		t.Fatalf("appendMembers with skips = %v", skipped)
	}
	// reset returns the spilled bitset to the pool, zeroed, and the next
	// spill reuses it.
	cs.reset(7, &pool)
	if cs.bits != nil || len(pool.free) != 1 {
		t.Fatalf("reset did not recycle the bitset (bits=%v, pool=%d)", cs.bits, len(pool.free))
	}
	for n := 0; n < copysetInline+1; n++ {
		cs.add(10+n, &pool)
	}
	if len(pool.free) != 0 {
		t.Fatal("re-spill did not take the pooled bitset")
	}
	if got := cs.size(); got != copysetInline+2 {
		t.Fatalf("size after re-spill = %d, want %d", got, copysetInline+2)
	}
}

// TestFirstTouchMaterialization: page-table shards materialize on first
// touch only — a node whose threads work in a narrow address range holds
// page structs for that range alone, no matter how large the shared
// segment is.
func TestFirstTouchMaterialization(t *testing.T) {
	s := testSystem(t, 2, 1)
	const pages = 100_000 // ~1563 shards of address space
	base, _ := s.Alloc("big", pages*s.cfg.PageSize)
	runApp(t, s, func(w *Thread) {
		if w.GlobalID() == 0 {
			w.WriteI64(base, 1)                         // shard 0
			w.WriteI64(base+Addr(77*s.cfg.PageSize), 2) // shard 1
		}
		w.Barrier(0)
		if w.GlobalID() == 1 {
			if v := w.ReadI64(base); v != 1 {
				t.Errorf("read %d, want 1", v)
			}
		}
	})
	for id, n := range s.nodes {
		if n.shardCount > 3 {
			t.Errorf("node %d materialized %d shards, want ≤ 3 (working set is 2 shards)", id, n.shardCount)
		}
		if got := len(n.shards); got != (pages+pageShardSize-1)/pageShardSize {
			t.Errorf("node %d directory root has %d entries", id, got)
		}
	}
	if p := s.nodes[1].peek(PageID(50_000)); p != nil {
		t.Error("untouched page has a materialized struct")
	}
}

// TestPoolReuseAfterInvalidate: a page buffer released by a single-writer
// invalidation is recycled for the node's next materialization instead of
// allocating a fresh one.
func TestPoolReuseAfterInvalidate(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.Protocol = ProtocolSW
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := s.Alloc("x", 4*cfg.PageSize)
	runApp(t, s, func(w *Thread) {
		if w.GlobalID() == 0 {
			w.WriteI64(base, 1) // node 0 materializes page 0
		}
		w.Barrier(0)
		if w.GlobalID() == 1 {
			w.WriteI64(base, 2) // invalidates node 0's copy → buffer pooled
		}
		w.Barrier(1)
		if w.GlobalID() == 0 {
			// New page: materialization must reuse the pooled buffer.
			w.WriteI64(base+Addr(2*cfg.PageSize), 3)
		}
	})
	n0 := s.nodes[0]
	if p := n0.peek(0); p == nil || p.data != nil {
		t.Error("node 0's invalidated copy of page 0 still holds a buffer")
	}
	if p := n0.peek(2); p == nil || p.data == nil {
		t.Error("node 0's page 2 never materialized")
	}
	if got := len(n0.pool.free); got != 0 {
		t.Errorf("node 0 free list has %d buffers; the recycled buffer was not reused", got)
	}
}

// TestTwinPoolReuse: LRC twins return to the pool when the interval
// closes and are reused by the next write episode.
func TestTwinPoolReuse(t *testing.T) {
	s := testSystem(t, 2, 1)
	addr, _ := s.Alloc("x", s.cfg.PageSize)
	runApp(t, s, func(w *Thread) {
		if w.GlobalID() == 0 {
			for r := 0; r < 3; r++ {
				w.Lock(0)
				w.WriteI64(addr, int64(r)) // twin created
				w.Unlock(0)                // interval closes, twin pooled
			}
		}
		w.Barrier(0)
	})
	n0 := s.nodes[0]
	if p := n0.peek(0); p == nil || p.twin != nil {
		t.Fatal("twin still attached after the final interval close")
	}
	// Three write episodes, one data buffer + one twin buffer total: the
	// twin slot was recycled twice, so exactly one buffer sits free.
	if got := len(n0.pool.free); got != 1 {
		t.Errorf("free list has %d buffers, want 1 (the recycled twin)", got)
	}
	if n0.pool.nextSlab > 2*bufPoolFirstSlab {
		t.Errorf("slab growth ran to %d pages for a 2-buffer working set", n0.pool.nextSlab)
	}
}

// TestMemoryFootprintMillionPages is the scale-out memory guarantee: a
// 1024-node system over a million-page (8 GB) shared segment, with each
// node touching a tiny working set, stays under a fixed heap budget.
// The eager layout this replaced allocated ~16 MB of page structs plus
// an 8 GB pageVec equivalent *per node* before the first fault.
func TestMemoryFootprintMillionPages(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node system in -short mode")
	}
	const nodes = 1024
	const pages = 1 << 20 // 8 GB of address space at 8 KB pages
	cfg := DefaultConfig(nodes, 1)
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := s.Alloc("huge", pages*cfg.PageSize)
	if got := int(s.allocated) >> s.pageShift; got < pages {
		t.Fatalf("allocated %d pages, want ≥ %d", got, pages)
	}
	// Each node writes one word in its own page of a dense strip and
	// reads its neighbor's — a tiny per-node working set with real
	// cross-node coherence traffic (write notices for all 1024 strip
	// pages reach every node).
	runApp(t, s, func(w *Thread) {
		g := w.GlobalID()
		own := base + Addr(g*cfg.PageSize)
		w.WriteI64(own, int64(g)+1)
		w.Barrier(0)
		peer := base + Addr(((g+1)%nodes)*cfg.PageSize)
		if v := w.ReadI64(peer); v != int64((g+1)%nodes)+1 {
			t.Errorf("node %d: neighbor read %d", g, v)
		}
	})
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const budget = 768 << 20
	if ms.HeapAlloc > budget {
		t.Errorf("HeapAlloc = %d MB after the run, budget %d MB",
			ms.HeapAlloc>>20, budget>>20)
	}
	// The strip plus its neighbors spans ≤ 17 shards per node.
	for id, n := range s.nodes {
		if n.shardCount > 20 {
			t.Fatalf("node %d materialized %d shards for a 2-page working set", id, n.shardCount)
		}
	}
}
