package core

import (
	"cvm/internal/trace"
)

// Thread migration (Config.Migrate): the controller watches each
// thread's remote-event affinity — which node its page fetches and lock
// grants come from — and, at a barrier release, re-homes a thread whose
// traffic is dominated by one other node. The mechanics ride the
// adaptation epoch machinery in adapt.go:
//
//   - Affinity counters accumulate in thread context (remoteFault,
//     fullFetchFault, handleLockGrant) and ship to the controller on
//     barrier arrivals, piggybacked with the page observations.
//   - Orders are issued by decideMigrations at a barrier completion and
//     applied at the source node before its release wakes anyone: the
//     thread is unhooked from the barrier's waiter list and shipped as a
//     ClassMigrate message. Its sim.Task is re-homed onto the
//     destination's processor (sim.Engine.Migrate) when the message
//     delivers, and only then woken.
//   - Residency counts travel on the same release, so every node knows
//     its new expected barrier population before any thread resumes.
//     The migrate message takes one extra network hop beyond the
//     release fan-out (manager → source → destination), so the
//     destination's residency is always updated before the migrant can
//     arrive — threads already there simply wait at the next barrier
//     until the migrant joins them.
//
// Threads that ever synchronize through LocalBarrier are pinned: their
// correctness depends on co-location, which migration would silently
// break. Applications additionally opt in per-app (see
// apps.Spec.Migratable); address-based node affinity (NodeID()-derived
// layouts) is not detectable here.

// decideMigrations scans threads in gid order and emits at most
// MigrateMaxPerEpoch re-homing orders. Controller residency, homes, and
// cooldowns update immediately so later candidates in the same epoch
// see the post-order state.
func (ctl *adaptController) decideMigrations() []migOrder {
	tune := ctl.tune
	var orders []migOrder
	capacity := int32(tune.NodeCapacityFactor * ctl.sys.cfg.ThreadsPerNode)
	for gid := range ctl.aff {
		if len(orders) >= tune.MigrateMaxPerEpoch {
			break
		}
		if ctl.pinned[gid] || ctl.cooldownUntil[gid] > ctl.epoch {
			continue
		}
		acc := ctl.aff[gid]
		if acc == nil {
			continue
		}
		var total, bestV int64
		best := -1
		for node, v := range acc {
			total += v
			if v > bestV { // strict: first maximum wins, deterministically
				bestV = v
				best = node
			}
		}
		home := ctl.homes[gid]
		if best < 0 || int32(best) == home ||
			total < int64(tune.MigrateMinEvents) ||
			bestV*100 < int64(tune.MigrateDominancePct)*total ||
			ctl.resident[best] >= capacity {
			continue
		}
		orders = append(orders, migOrder{
			gid: gid, from: home, to: int32(best), epoch: ctl.epoch,
		})
		ctl.resident[home]--
		ctl.resident[best]++
		ctl.homes[gid] = int32(best)
		ctl.cooldownUntil[gid] = ctl.epoch + int32(tune.MigrateCooldown)
		for i := range acc {
			acc[i] = 0
		}
	}
	return orders
}

// migrateOut ships one thread away from this node (engine context,
// during applyAdaptRelease — strictly before releaseBarrier wakes
// anyone). The thread is blocked at barrier barrierID; it is removed
// from the waiter list so the local release cannot wake it, and resumes
// on the destination when the migrate message delivers.
func (n *node) migrateOut(barrierID int, o *migOrder) {
	sys := n.sys
	if o.gid >= len(sys.byTask) {
		return
	}
	th := sys.byTask[o.gid]
	if th == nil || th.node != n {
		return
	}
	b := n.barrierAt(barrierID)
	found := false
	for i, w := range b.waiters {
		if w == th {
			b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return
	}
	for i, r := range n.residents {
		if r == th {
			n.residents = append(n.residents[:i], n.residents[i+1:]...)
			break
		}
	}
	if tr := sys.tracer; tr != nil {
		tr.Emit(trace.Event{T: n.proc.LocalNow(), Kind: trace.KindMigrateStart,
			Node: int32(n.id), Thread: int32(th.gid), Peer: o.to, Aux: int64(o.epoch)})
	}
	dest := sys.nodes[o.to]
	epoch := o.epoch
	sys.sendFromHandler(NodeID(n.id), NodeID(dest.id),
		ClassMigrate, sys.adapt.tune.MigrateBytes, func() {
			dest.receiveMigrant(th, int32(n.id), epoch)
		})
}

// receiveMigrant installs a migrated thread at its destination (engine
// context): the task is re-homed onto this node's processor, the thread
// re-pointed, and only then woken — it resumes inside Thread.Barrier's
// post-block path as a local thread of this node.
func (n *node) receiveMigrant(th *Thread, from int32, epoch int32) {
	n.sys.eng.Migrate(th.task, n.proc)
	th.node = n
	n.residents = append(n.residents, th)
	n.stats.Migrations++
	if tr := n.sys.tracer; tr != nil {
		tr.Emit(trace.Event{T: n.proc.LocalNow(), Kind: trace.KindMigrateArrive,
			Node: int32(n.id), Thread: int32(th.gid), Peer: from, Aux: int64(epoch)})
	}
	n.sys.eng.Wake(th.task)
}
