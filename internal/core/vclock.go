// Package core implements CVM, a multiple-writer lazy-release-consistency
// software DSM, extended with the paper's per-node multi-threading: thread
// switches on remote requests, per-node barrier aggregation, per-lock local
// queues, local barriers, and reduction support.
//
// The package runs on the deterministic simulated cluster provided by
// internal/sim and internal/netsim, and charges the costs the paper
// measured (mprotect, signal delivery, twin copies, diff creation and
// application, message overheads) into virtual time.
package core

// VClock is a vector timestamp with one component per node. Component i
// is the index of the most recent interval of node i whose effects are
// visible. Intervals are numbered from 1; 0 means "none seen".
type VClock []int32

// NewVClock returns a zero vector clock for n nodes.
func NewVClock(n int) VClock { return make(VClock, n) }

// Clone returns an independent copy of v.
func (v VClock) Clone() VClock {
	c := make(VClock, len(v))
	copy(c, v)
	return c
}

// Covers reports whether v dominates or equals w componentwise, i.e.
// every interval visible in w is also visible in v.
func (v VClock) Covers(w VClock) bool {
	for i := range v {
		if v[i] < w[i] {
			return false
		}
	}
	return true
}

// CoversInterval reports whether interval idx of the given node is visible
// in v.
func (v VClock) CoversInterval(node int, idx int32) bool {
	return v[node] >= idx
}

// Merge raises each component of v to at least the corresponding component
// of w (the standard vector-clock join, performed at acquires).
func (v VClock) Merge(w VClock) {
	for i := range v {
		if w[i] > v[i] {
			v[i] = w[i]
		}
	}
}

// Before reports whether v happens-before w: v ≤ w componentwise and
// v ≠ w. Incomparable clocks denote concurrent intervals.
func (v VClock) Before(w VClock) bool {
	strict := false
	for i := range v {
		if v[i] > w[i] {
			return false
		}
		if v[i] < w[i] {
			strict = true
		}
	}
	return strict
}

// wireBytes reports the encoded size of a vector clock on the simulated
// wire (4 bytes per component).
func (v VClock) wireBytes() int { return 4 * len(v) }
