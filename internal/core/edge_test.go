package core

import (
	"testing"

	"cvm/internal/sim"
)

func TestSixteenNodes(t *testing.T) {
	// The Table 4 scale: 16 nodes, mixed sharing.
	s := testSystem(t, 16, 2)
	addr, _ := s.Alloc("data", 32*8192)
	var sum float64
	runApp(t, s, func(w *Thread) {
		if w.GlobalID() == 0 {
			for i := 0; i < 32*1024; i += 16 {
				w.WriteF64(addr+Addr(i*8), 1)
			}
		}
		w.Barrier(0)
		local := 0.0
		for i := w.GlobalID() * 1024; i < (w.GlobalID()+1)*1024; i += 16 {
			local += w.ReadF64(addr + Addr(i*8))
		}
		w.Lock(3)
		w.WriteF64(addr, w.ReadF64(addr)+local)
		w.Unlock(3)
		w.Barrier(1)
		if w.GlobalID() == 0 {
			sum = w.ReadF64(addr)
		}
		w.Barrier(2)
	})
	want := 2048.0 + 1 // 32 threads × 64 ones each, plus slot 0's own 1
	if sum != want {
		t.Errorf("sum = %v, want %v", sum, want)
	}
}

func TestBarrierIDReuse(t *testing.T) {
	// The same barrier id crossed repeatedly (episode state must reset).
	s := testSystem(t, 4, 2)
	_, _ = s.Alloc("pad", 8192)
	count := 0
	runApp(t, s, func(w *Thread) {
		for r := 0; r < 5; r++ {
			w.Barrier(7)
		}
		count++
	})
	if count != 8 {
		t.Errorf("finished threads = %d, want 8", count)
	}
}

func TestManyLocksAcrossManagers(t *testing.T) {
	// Locks hash across managers (id % nodes); exercise all managers.
	s := testSystem(t, 4, 1)
	addr, _ := s.Alloc("slots", 8192)
	runApp(t, s, func(w *Thread) {
		for l := 0; l < 12; l++ {
			w.Lock(l)
			w.WriteF64(addr+Addr(l*8), w.ReadF64(addr+Addr(l*8))+1)
			w.Unlock(l)
		}
		w.Barrier(0)
	})
	for _, n := range s.nodes {
		for id, l := range n.locks {
			if l.heldBy != nil {
				t.Errorf("node %d lock %d still held at exit", n.id, id)
			}
			if len(l.localQ) != 0 {
				t.Errorf("node %d lock %d has %d queued waiters at exit", n.id, id, len(l.localQ))
			}
		}
	}
}

func TestLockTokenCaching(t *testing.T) {
	// Repeated acquire/release by one node after the first remote fetch
	// must be free of messages (the token stays cached).
	s := testSystem(t, 2, 1)
	_, _ = s.Alloc("pad", 8192)
	runApp(t, s, func(w *Thread) {
		if w.NodeID() == 1 {
			w.Lock(0)
			w.Unlock(0)
			before := s.net.Stats().TotalMsgs()
			for i := 0; i < 5; i++ {
				w.Lock(0)
				w.Unlock(0)
			}
			if got := s.net.Stats().TotalMsgs(); got != before {
				t.Errorf("cached reacquires sent %d messages", got-before)
			}
		}
	})
	st := s.Stats()
	if st.Nodes[1].LocalLockAcquires < 5 {
		t.Errorf("local acquires = %d, want ≥ 5", st.Nodes[1].LocalLockAcquires)
	}
}

func TestPhaseAndTouchPrivate(t *testing.T) {
	s := testSystem(t, 1, 2)
	_, _ = s.Alloc("pad", 8192)
	runApp(t, s, func(w *Thread) {
		w.Phase(3)
		for i := 0; i < 100; i++ {
			w.TouchPrivate(i)
		}
		w.Phase(4)
		w.Yield()
	})
	ms := s.Stats().MemTotal
	if ms.Accesses < 200 {
		t.Errorf("accesses = %d, want ≥ 200 (private touches)", ms.Accesses)
	}
	if ms.ITLBMisses == 0 {
		t.Error("no I-TLB activity from phase changes")
	}
}

func TestInterleavedLockAndBarrier(t *testing.T) {
	// Lock-carried write notices and barrier-carried write notices must
	// compose: a value chained through locks then published at a barrier
	// is visible everywhere.
	s := testSystem(t, 4, 2)
	addr, _ := s.Alloc("x", 8192)
	bad := false
	runApp(t, s, func(w *Thread) {
		w.Lock(5)
		w.WriteF64(addr, w.ReadF64(addr)+1)
		w.Unlock(5)
		w.Barrier(0)
		if w.ReadF64(addr) != 8 {
			bad = true
		}
		w.Barrier(1)
	})
	if bad {
		t.Error("a thread saw a stale counter after the barrier")
	}
}

func TestWallTimeMonotonicWithWork(t *testing.T) {
	run := func(extra sim.Time) sim.Time {
		s := testSystem(t, 2, 1)
		_, _ = s.Alloc("pad", 8192)
		runApp(t, s, func(w *Thread) {
			w.Compute(extra)
			w.Barrier(0)
		})
		return s.Stats().Wall
	}
	if run(10*sim.Millisecond) <= run(1*sim.Millisecond) {
		t.Error("wall time did not grow with added work")
	}
}

func TestStatsNodesLength(t *testing.T) {
	s := testSystem(t, 3, 1)
	_, _ = s.Alloc("pad", 8192)
	runApp(t, s, func(w *Thread) { w.Barrier(0) })
	st := s.Stats()
	if len(st.Nodes) != 3 || len(st.Mem) != 3 {
		t.Errorf("stats slices = %d/%d nodes, want 3/3", len(st.Nodes), len(st.Mem))
	}
}

func TestSegmentsRecorded(t *testing.T) {
	s := testSystem(t, 1, 1)
	_, _ = s.Alloc("a", 100)
	_, _ = s.Alloc("b", 9000)
	segs := s.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	if segs[0].Name != "a" || segs[1].Name != "b" {
		t.Errorf("segment names = %q, %q", segs[0].Name, segs[1].Name)
	}
	if segs[1].Base != 8192 {
		t.Errorf("segment b base = %d, want 8192", segs[1].Base)
	}
}

func TestStartTwiceFails(t *testing.T) {
	s := testSystem(t, 1, 1)
	if err := s.Start(func(w *Thread) {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(func(w *Thread) {}); err == nil {
		t.Error("second Start succeeded, want error")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPageStateString(t *testing.T) {
	tests := []struct {
		s    PageState
		want string
	}{
		{PageInvalid, "invalid"},
		{PageReadOnly, "readonly"},
		{PageReadWrite, "readwrite"},
		{PageState(9), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("PageState(%d).String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}
