package core

import (
	"reflect"
	"testing"

	"cvm/internal/sim"
)

// fillDistinct sets every numeric field of a NodeStats to a distinct
// nonzero value via reflection, so a field dropped from Add or Wall
// can't cancel out.
func fillDistinct(s *NodeStats, base int64) {
	v := reflect.ValueOf(s).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetInt(base + int64(i)*7)
	}
}

// TestNodeStatsAddAllFields checks Add field by field via reflection:
// a counter added to NodeStats but forgotten in Add would silently
// report per-node-only totals, and this test fails instead.
func TestNodeStatsAddAllFields(t *testing.T) {
	var a, b NodeStats
	fillDistinct(&a, 1000)
	fillDistinct(&b, 5)
	want := reflect.ValueOf(a)
	got := a
	got.Add(b)

	gv := reflect.ValueOf(got)
	bv := reflect.ValueOf(b)
	rt := reflect.TypeOf(a)
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		sum := want.Field(i).Int() + bv.Field(i).Int()
		if gv.Field(i).Int() != sum {
			t.Errorf("Add dropped or miscombined field %s: got %d, want %d",
				name, gv.Field(i).Int(), sum)
		}
	}
}

// TestNodeStatsWall checks that Wall sums exactly the Figure-1 time
// components — every sim.Time field of NodeStats and nothing else.
func TestNodeStatsWall(t *testing.T) {
	var s NodeStats
	fillDistinct(&s, 100)
	var want sim.Time
	v := reflect.ValueOf(s)
	rt := v.Type()
	timeType := reflect.TypeOf(sim.Time(0))
	timeFields := 0
	for i := 0; i < rt.NumField(); i++ {
		if rt.Field(i).Type == timeType {
			want += sim.Time(v.Field(i).Int())
			timeFields++
		}
	}
	if timeFields != 4 {
		t.Fatalf("NodeStats has %d sim.Time fields, Figure 1 defines 4 "+
			"(user, fault, lock, barrier) — update Wall and this test together", timeFields)
	}
	if got := s.Wall(); got != want {
		t.Errorf("Wall() = %v, want the sum of all time components %v", got, want)
	}
}
