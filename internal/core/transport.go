package core

import (
	"fmt"

	"cvm/internal/sim"
	"cvm/internal/trace"
)

// The reliable transport makes the protocol survive a lossy network.
// CVM's real transport was UDP; under the fault model (Config.Faults)
// messages can be dropped, duplicated, or arbitrarily delayed, so every
// cross-node protocol message is wrapped in a sequence-numbered,
// acknowledged, retransmitted envelope:
//
//   - each directed channel (from, to) numbers its messages 1, 2, ...;
//   - the receiver acks every delivery (acks are not themselves acked —
//     a lost ack is recovered by the sender's retransmission, which the
//     receiver dedupes and re-acks);
//   - the sender keeps unacked messages pending and retransmits on an
//     exponential-backoff timer (rto, 2·rto, 4·rto, ...);
//   - the receiver tracks a contiguous delivery watermark plus a sparse
//     seen-set and suppresses replayed deliveries, so handlers observe
//     each message exactly once;
//   - a message still unacked after MaxRetries attempts fails the run
//     loudly (ErrTransport from System.Run) instead of hanging.
//
// Exactly-once delivery is sufficient for protocol correctness — no
// per-channel FIFO is needed: the lock token chain, barrier epochs, and
// diff replies are each causally chained, so cross-message reordering
// cannot violate their state machines (the invariant checker in
// internal/check proves this under the chaos suite).
//
// When Config.Faults is nil the transport does not exist and every send
// goes straight to netsim — fault-free runs are byte-identical to
// builds without this layer.

// DefaultRTO is the default retransmission timeout: comfortably above
// the worst-case uncontended round trip (≈1 ms for a page-sized reply)
// so fault-free-latency traffic never spuriously retransmits.
const DefaultRTO = 5 * sim.Millisecond

// DefaultMaxRetries bounds retransmission attempts per message. With
// doubling backoff the final attempt waits 2^12·RTO ≈ 20 s of virtual
// time — unambiguous network death, reported loudly.
const DefaultMaxRetries = 12

// ackBytes is the wire size of a transport acknowledgement.
const ackBytes = 8

// ErrTransport is wrapped by the error System.Run returns when a
// message exhausts its retry budget.
var ErrTransport = fmt.Errorf("core: transport failure")

// transportFailure carries the failing message's coordinates from the
// engine event that detected it (via panic) to System.Run's recover.
// backend and peer attribute the failure to a concrete interconnect and
// address, so multi-process failures are diagnosable from the error text
// alone.
type transportFailure struct {
	at       sim.Time
	from, to NodeID
	class    MsgClass
	seq      uint64
	attempts int
	backend  string
	peer     string
}

func (tf *transportFailure) error() error {
	return fmt.Errorf("%w: %v message %d from node %d to node %d (%s via %s) undelivered after %d attempts (T=%v)",
		ErrTransport, tf.class, tf.seq, tf.from, tf.to, tf.peer, tf.backend, tf.attempts, tf.at)
}

// pendingMsg is one unacknowledged message at its sender.
type pendingMsg struct {
	from, to NodeID
	class    MsgClass
	bytes    int
	seq      uint64
	attempt  int
	deliver  func()
}

// tchan is the transport state of one directed channel: the sender-side
// pending window at `from` and the receiver-side dedupe state at `to`
// (one struct holds both — the simulator sees all nodes).
type tchan struct {
	nextSeq uint64
	pending map[uint64]*pendingMsg

	watermark uint64          // every seq ≤ watermark has been delivered
	seen      map[uint64]bool // delivered seqs > watermark
}

// reliable implements the retransmitting envelope over the interconnect. It exists
// only when Config.Faults enables network faults.
type reliable struct {
	sys        *System
	nodes      int
	rto        sim.Time
	maxRetries int
	chans      []*tchan
}

func newTransport(s *System, rto sim.Time, maxRetries int) *reliable {
	if rto <= 0 {
		rto = DefaultRTO
	}
	if maxRetries <= 0 {
		maxRetries = DefaultMaxRetries
	}
	tr := &reliable{
		sys:        s,
		nodes:      s.cfg.Nodes,
		rto:        rto,
		maxRetries: maxRetries,
		chans:      make([]*tchan, s.cfg.Nodes*s.cfg.Nodes),
	}
	// Channels are created eagerly so the windowed engine never
	// allocates one from two procs concurrently; each tchan's fields
	// are then owned by exactly one proc (sender side by `from`,
	// dedupe side by `to`), with the inter-window barrier ordering the
	// cross-side seq handoff.
	for i := range tr.chans {
		tr.chans[i] = &tchan{pending: make(map[uint64]*pendingMsg), seen: make(map[uint64]bool)}
	}
	return tr
}

func (tr *reliable) chanFor(from, to NodeID) *tchan {
	return tr.chans[int(from)*tr.nodes+int(to)]
}

// send transmits one protocol message reliably. task is non-nil for
// task-context sends (the first transmission charges the task's send
// overhead and lowers its causality horizon, exactly like the raw
// netsim path); retransmissions always run from engine context.
func (tr *reliable) send(task *sim.Task, from, to NodeID, class MsgClass, bytes int, deliver func()) {
	ch := tr.chanFor(from, to)
	ch.nextSeq++
	pm := &pendingMsg{from: from, to: to, class: class, bytes: bytes, seq: ch.nextSeq, deliver: deliver}
	ch.pending[pm.seq] = pm
	if task != nil {
		tr.sys.fab.SendFromTask(task, from, to, class, bytes, tr.recvFunc(pm))
		task.Schedule(task.Now()+tr.rto, func() { tr.checkAck(pm) })
		return
	}
	tr.sys.fab.SendFromHandler(from, to, class, bytes, tr.recvFunc(pm))
	fp := tr.sys.nodes[from].proc
	tr.sys.eng.ScheduleOn(fp, fp.LocalNow()+tr.rto, func() { tr.checkAck(pm) })
}

// recvFunc wraps a message's delivery for the receiver: ack, dedupe,
// then deliver. Runs in engine context at the receiving node.
func (tr *reliable) recvFunc(pm *pendingMsg) func() {
	return func() {
		sys := tr.sys
		ch := tr.chanFor(pm.from, pm.to)
		// Ack unconditionally — a replay means the sender has not seen an
		// ack yet (the previous one was dropped or is still in flight).
		// Acks carry the data message's class for Table 2 accounting and
		// are idempotent at the sender, so they need no envelope of
		// their own.
		seq := pm.seq
		sys.fab.SendFromHandler(pm.to, pm.from, pm.class, ackBytes, func() {
			delete(ch.pending, seq)
		})
		if seq <= ch.watermark || ch.seen[seq] {
			// Replayed delivery: suppress. Handlers stay idempotent by
			// never running twice.
			rcv := sys.nodes[pm.to]
			rcv.stats.DupsSuppressed++
			if sys.met != nil {
				sys.met.CountDupSuppressed(int(pm.to))
			}
			if t := sys.tracer; t != nil {
				t.Emit(trace.Event{T: sys.nodes[pm.to].proc.LocalNow(), Kind: trace.KindDupSuppress,
					Node: int32(pm.to), Thread: -1, Peer: int32(pm.from),
					Sync: int32(pm.class), Aux: int64(seq)})
			}
			return
		}
		if seq == ch.watermark+1 {
			ch.watermark++
			for ch.seen[ch.watermark+1] {
				delete(ch.seen, ch.watermark+1)
				ch.watermark++
			}
		} else {
			ch.seen[seq] = true
		}
		pm.deliver()
	}
}

// checkAck fires rto·2^attempt after a (re)transmission: if the message
// is still pending, retransmit with doubled backoff or fail the run.
// Runs in engine context.
func (tr *reliable) checkAck(pm *pendingMsg) {
	sys := tr.sys
	ch := tr.chanFor(pm.from, pm.to)
	if ch.pending[pm.seq] != pm {
		return // acked
	}
	pm.attempt++
	if pm.attempt > tr.maxRetries {
		// Fail loudly: unwound through eng.Run and recovered by
		// System.Run, which shuts the engine down and reports the
		// message's coordinates.
		panic(&transportFailure{at: sys.nodes[pm.from].proc.LocalNow(), from: pm.from, to: pm.to,
			class: pm.class, seq: pm.seq, attempts: pm.attempt,
			backend: sys.fab.Name(), peer: sys.fab.PeerAddr(pm.to)})
	}
	sys.nodes[pm.from].stats.Retransmits++
	if sys.met != nil {
		sys.met.CountRetransmit(int(pm.from))
	}
	if t := sys.tracer; t != nil {
		t.Emit(trace.Event{T: sys.nodes[pm.from].proc.LocalNow(), Kind: trace.KindRetransmit,
			Node: int32(pm.from), Thread: -1, Peer: int32(pm.to),
			Sync: int32(pm.class), Aux: int64(pm.seq), Arg: int64(pm.attempt)})
	}
	sys.fab.SendFromHandler(pm.from, pm.to, pm.class, pm.bytes, tr.recvFunc(pm))
	fp := sys.nodes[pm.from].proc
	sys.eng.ScheduleOn(fp, fp.LocalNow()+tr.rto<<uint(pm.attempt), func() { tr.checkAck(pm) })
}

// sendFromTask routes a task-context protocol send through the reliable
// transport when faults are enabled, or straight to netsim when not.
// Every cross-node send in the protocol goes through these two wrappers.
func (s *System) sendFromTask(t *sim.Task, from, to NodeID, class MsgClass, bytes int, deliver func()) {
	if s.transport == nil {
		s.fab.SendFromTask(t, from, to, class, bytes, deliver)
		return
	}
	s.transport.send(t, from, to, class, bytes, deliver)
}

// sendFromHandler is the engine-context counterpart of sendFromTask.
func (s *System) sendFromHandler(from, to NodeID, class MsgClass, bytes int, deliver func()) {
	if s.transport == nil {
		s.fab.SendFromHandler(from, to, class, bytes, deliver)
		return
	}
	s.transport.send(nil, from, to, class, bytes, deliver)
}
