package core

import (
	"cvm/internal/sim"
	"cvm/internal/trace"
)

// Protocol selects the coherence protocol. CVM was built as a platform
// for protocol experimentation ("supports multiple protocols and
// consistency models"); the paper's experiments all use the lazy
// multi-writer protocol, and the single-writer protocol here is the
// classic baseline it was measured against in Keleher's ICDCS'96 study
// (the paper's reference [1]).
type Protocol uint8

const (
	// ProtocolLRC is the paper's protocol: multiple-writer lazy release
	// consistency with twins, diffs, and write notices.
	ProtocolLRC Protocol = iota
	// ProtocolSW is a single-writer write-invalidate protocol with a
	// static per-page directory: read faults fetch the page and join the
	// copyset; write faults invalidate every copy and migrate ownership.
	// It is sequentially consistent and needs no twins or diffs, but
	// falsely-shared pages ping-pong.
	ProtocolSW
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtocolSW:
		return "single-writer"
	default:
		return "lazy-multi-writer"
	}
}

// swDir is the directory entry for one page at its manager: who owns the
// page (write access), who holds read copies, and the transaction gate
// serializing fault handling.
type swDir struct {
	owner   int
	copyset copyset // nodes with a valid (read or write) copy

	busy        bool
	pendingAcks int
	current     swReq
	queue       []swReq
}

// swReq is one queued fault transaction.
type swReq struct {
	node  int
	write bool
}

// swFault tracks an in-flight fetch at the faulting node.
type swFault struct {
	waiters []*Thread
	done    bool
	start   sim.Time // fault-span open, for the FaultService metric
}

func (n *node) swDirFor(pg PageID) *swDir {
	d := n.swdir[pg]
	if d == nil {
		if n.swdir == nil {
			n.swdir = make(map[PageID]*swDir)
		}
		d = &swDir{owner: n.id}
		d.copyset.reset(n.id, &n.csp)
		n.swdir[pg] = d
	}
	return d
}

// swEnsureAccess is the single-writer fault state machine, the SW
// counterpart of ensureAccess.
func (t *Thread) swEnsureAccess(p *page, write bool) {
	n := t.node
	cfg := &t.sys.cfg
	for {
		switch {
		case p.state == PageReadWrite:
			return
		case p.state == PageReadOnly && !write:
			return
		default:
			// Upgrade or miss: both go through the directory.
			if f := p.swf; f != nil {
				n.stats.BlockSamePage++
				f.waiters = append(f.waiters, t)
				wstart := t.task.Now()
				t.block(ReasonFault)
				if nm := n.met; nm != nil {
					d := t.task.Now() - wstart
					nm.FaultThreadWait.Observe(int64(d))
					t.sys.met.PageFaultWait(t.node.id, int32(p.id), d)
				}
				continue
			}
			t.task.Advance(cfg.SignalCost)
			if p.state != PageInvalid && !(write && p.state == PageReadOnly) {
				continue // raced with a completing transaction
			}
			f := &swFault{start: t.task.Now()}
			p.swf = f
			f.waiters = append(f.waiters, t)
			if tr := t.sys.tracer; tr != nil {
				tr.Emit(trace.Event{T: t.task.Now(), Kind: trace.KindFaultStart,
					Node: int32(n.id), Thread: int32(t.gid), Page: int32(p.id)})
			}
			n.stats.RemoteFaults++
			n.stats.OutstandingFaults += int64(n.inFlightFaults)
			n.stats.OutstandingLocks += int64(n.inFlightLocks)
			n.inFlightFaults++

			sys := t.sys
			mgr := int(p.id) % sys.cfg.Nodes
			req := swReq{node: n.id, write: write}
			if mgr == n.id {
				// Defer to engine context so the thread is blocked
				// before any completion can wake it.
				t.task.Schedule(t.task.Now(), func() {
					sys.nodes[mgr].swHandleRequest(p.id, req)
				})
			} else {
				sys.sendFromTask(t.task, NodeID(n.id), NodeID(mgr),
					ClassDiff, swCtlBytes, func() {
						sys.nodes[mgr].swHandleRequest(p.id, req)
					})
			}
			wstart := t.task.Now()
			t.block(ReasonFault)
			if nm := n.met; nm != nil {
				d := t.task.Now() - wstart
				nm.FaultThreadWait.Observe(int64(d))
				t.sys.met.PageFaultWait(t.node.id, int32(p.id), d)
			}
			// Completion installed the page and cleared p.swf; loop to
			// validate the new access rights.
		}
	}
}

// swHandleRequest runs at the page's manager (engine context): serialize
// transactions per page, then invalidate and transfer as needed.
func (n *node) swHandleRequest(pg PageID, req swReq) {
	d := n.swDirFor(pg)
	if d.busy {
		d.queue = append(d.queue, req)
		return
	}
	d.busy = true
	n.swServe(pg, d, req)
}

func (n *node) swServe(pg PageID, d *swDir, req swReq) {
	d.current = req
	if !req.write {
		n.swTransfer(pg, d)
		return
	}
	// Write: invalidate every copy except the requester's own (the
	// owner's copy dies at transfer). Fan-out enumerates the copyset
	// directly — ascending by node, like the old full 0..N bitmask scan,
	// but in O(|copyset|).
	targets := d.copyset.appendMembers(n.csScratch[:0], req.node, d.owner)
	n.csScratch = targets[:0]
	d.pendingAcks = len(targets)
	if d.pendingAcks == 0 {
		n.swTransfer(pg, d)
		return
	}
	sys := n.sys
	for _, t := range targets {
		node := int(t)
		n.swSend(node, swCtlBytes, func() {
			sys.nodes[node].swInvalidate(pg)
			sys.nodes[node].swSend(n.id, swCtlBytes, func() {
				d.pendingAcks--
				if d.pendingAcks == 0 {
					n.swTransfer(pg, d)
				}
			})
		})
	}
}

// swInvalidate drops this node's copy (engine context). The page buffer
// returns to the node's pool: any later access is preceded by a
// full-page transfer (or the page is logically zero everywhere), so the
// stale copy can never be read again.
func (n *node) swInvalidate(pg PageID) {
	p := n.pageAt(pg)
	if p.state != PageInvalid {
		p.state = PageInvalid
	}
	n.releaseData(p)
}

// swTransfer moves the page (and, for writes, ownership) to the
// requester. Runs at the manager in engine context.
func (n *node) swTransfer(pg PageID, d *swDir) {
	req := d.current
	sys := n.sys
	owner := d.owner

	finish := func() {
		target := sys.nodes[req.node]
		p := target.pageAt(pg)
		if req.write {
			target.materialize(p)
			p.state = PageReadWrite
		} else if p.state != PageReadWrite {
			p.state = PageReadOnly
		}
		target.swComplete(p)
		// Completion ack releases the transaction gate.
		target.swSend(n.id, swCtlBytes, func() {
			d.busy = false
			if len(d.queue) > 0 {
				next := d.queue[0]
				d.queue = d.queue[:copy(d.queue, d.queue[1:])]
				d.busy = true
				n.swServe(pg, d, next)
			}
		})
	}

	if req.write {
		d.owner = req.node
		d.copyset.reset(req.node, &n.csp)
	} else {
		d.copyset.add(req.node, &n.csp)
	}

	if owner == req.node {
		// Upgrade in place: no data moves, just the grant.
		n.swSend(req.node, swCtlBytes, finish)
		return
	}

	// Forward to the owner, which ships the page to the requester.
	n.swSend(owner, swCtlBytes, func() {
		src := sys.nodes[owner]
		sp := src.pageAt(pg)
		var data []byte
		if sp.data != nil {
			data = append([]byte(nil), sp.data...)
		}
		if req.write {
			sp.state = PageInvalid
			src.releaseData(sp) // the copy just shipped; recycle the buffer
		} else if sp.state == PageReadWrite {
			sp.state = PageReadOnly
		}
		src.swSend(req.node, swCtlBytes+sys.cfg.PageSize, func() {
			dst := sys.nodes[req.node]
			p := dst.pageAt(pg)
			if data != nil {
				dst.materialize(p)
				copy(p.data, data)
			}
			finish()
		})
	})
}

// swComplete wakes the threads blocked on the fault.
func (n *node) swComplete(p *page) {
	f := p.swf
	if f == nil {
		return
	}
	p.swf = nil
	n.inFlightFaults--
	if nm := n.met; nm != nil {
		nm.FaultService.Observe(int64(n.proc.LocalNow() - f.start))
	}
	if tr := n.sys.tracer; tr != nil {
		tr.Emit(trace.Event{T: n.proc.LocalNow(), Kind: trace.KindFaultResolve,
			Node: int32(n.id), Thread: -1, Page: int32(p.id)})
	}
	for _, w := range f.waiters {
		n.sys.eng.Wake(w.task)
	}
}

// swSend delivers fn at another node (engine context), degenerating to a
// local event when from == to.
func (n *node) swSend(to int, bytes int, fn func()) {
	if to == n.id {
		n.sys.eng.ScheduleOn(n.proc, n.proc.LocalNow(), fn)
		return
	}
	n.sys.sendFromHandler(NodeID(n.id), NodeID(to),
		ClassDiff, bytes, fn)
}

// swCtlBytes is the wire size of directory control messages.
const swCtlBytes = 16
