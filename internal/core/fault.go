package core

import (
	"cvm/internal/sim"
	"cvm/internal/trace"
)

// faultState tracks one in-flight remote page fetch: the parallel diff
// requests sent, the replies collected, and the local threads blocked on
// the page. The first blocked thread applies the diffs when the last
// reply arrives; later threads are Block-Same-Page waiters.
type faultState struct {
	page        *page
	ranges      []diffRange
	outstanding int
	diffs       []*Diff
	waiters     []*Thread
	ready       bool     // all replies received; applier may proceed
	start       sim.Time // fault-span open (before signal delivery), for FaultService

	// Whole-page snapshot from an exclusive-mode owner (adapt.go): when
	// set, applyFault installs it (with its coverage vector) before any
	// diffs.
	snap    []byte
	snapVec VClock
}

// ensureAccess makes the page accessible for the requested access kind,
// dispatching to the configured protocol's fault state machine. The LRC
// path runs remote fetches for invalid pages and twin creation for writes
// to read-only pages.
func (t *Thread) ensureAccess(p *page, write bool) {
	cfg := &t.sys.cfg
	if cfg.Protocol == ProtocolSW {
		t.swEnsureAccess(p, write)
		return
	}
	n := t.node
	for {
		switch {
		case p.state == PageReadWrite:
			return

		case p.state == PageReadOnly && !write:
			return

		case p.state == PageReadOnly:
			// Write to a valid read-only page: local fault. Charge
			// signal delivery, create the twin (a page-length copy
			// through the cache), re-enable writes (mprotect).
			if ad := n.adaptOf(p.id); ad != nil && ad.mode == ModeExcl &&
				ad.owner == int32(n.id) && !ad.exclMissed {
				// Exclusive owner: open the single-writer window — no
				// twin, no dirty-list entry, no page-length copy. The
				// absorbed writes re-enter the interval machinery when
				// the window closes (first foreign access or demotion).
				t.task.Advance(cfg.SignalCost)
				n.materialize(p)
				t.task.Advance(cfg.MprotectCost)
				if p.state != PageReadOnly || ad.mode != ModeExcl || ad.exclMissed {
					continue // a handler intervened while charging
				}
				p.state = PageReadWrite
				ad.exclOpen = true
				n.stats.LocalFaults++
				return
			}
			t.task.Advance(cfg.SignalCost)
			n.materialize(p)
			if p.twin == nil {
				n.newTwin(p)
				t.task.Advance(n.mem.AccessRange(t.pageVA(p.id), cfg.PageSize))
				if tr := t.sys.tracer; tr != nil {
					tr.Emit(trace.Event{T: t.task.Now(), Kind: trace.KindTwinCreate,
						Node: int32(n.id), Thread: int32(t.gid), Page: int32(p.id)})
				}
			}
			t.task.Advance(cfg.MprotectCost)
			if p.state != PageReadOnly || p.twin == nil {
				// While the charges above yielded to the engine, a
				// handler either invalidated the page (write notice) or
				// consumed the twin to serve a diff request. Re-run the
				// fault state machine: writes must never proceed
				// without a live twin or they escape the next diff.
				continue
			}
			p.state = PageReadWrite
			n.markDirty(p)
			n.stats.LocalFaults++
			return

		default: // PageInvalid
			t.remoteFault(p)
		}
	}
}

// remoteFault fetches the diffs needed to validate p, blocking the thread.
// If a fetch for p is already in flight the thread joins it (Block Same
// Page). On return the page may still be invalid (a write notice arrived
// during the fetch); the caller's loop re-faults.
func (t *Thread) remoteFault(p *page) {
	n := t.node
	cfg := &t.sys.cfg

	if fs := p.fault; fs != nil {
		n.stats.BlockSamePage++
		fs.waiters = append(fs.waiters, t)
		wstart := t.task.Now()
		t.block(ReasonFault)
		if nm := n.met; nm != nil {
			d := t.task.Now() - wstart
			nm.FaultThreadWait.Observe(int64(d))
			t.sys.met.PageFaultWait(t.node.id, int32(p.id), d)
		}
		return
	}

	// The fault span opens before signal delivery is charged, matching
	// the paper's accounting of the ~1100µs remote fault path.
	fstart := t.task.Now()
	if tr := t.sys.tracer; tr != nil {
		tr.Emit(trace.Event{T: fstart, Kind: trace.KindFaultStart,
			Node: int32(n.id), Thread: int32(t.gid), Page: int32(p.id)})
	}
	t.task.Advance(cfg.SignalCost)
	n.noteFaultObs(p.id)
	ad := n.adaptOf(p.id)
	if ad != nil && ad.needFull {
		// Exclusive-mode invalidation: the owner's window writes exist
		// in no diff, so fetch a whole-page snapshot instead.
		t.fullFetchFault(p, ad, fstart)
		return
	}
	ranges := p.missingFrom()
	if len(ranges) == 0 {
		// Raced with a completing fetch; nothing is missing anymore.
		p.state = validState(p)
		if nm := n.met; nm != nil {
			nm.FaultService.Observe(int64(t.task.Now() - fstart))
		}
		if tr := t.sys.tracer; tr != nil {
			tr.Emit(trace.Event{T: t.task.Now(), Kind: trace.KindFaultResolve,
				Node: int32(n.id), Thread: int32(t.gid), Page: int32(p.id)})
		}
		return
	}

	remote := ranges
	var cached []*Diff
	if ad != nil && ad.mode == ModeMWUpd && ad.cache != nil {
		remote, cached = n.consumeCached(p.id, ad, ranges)
		if len(remote) == 0 {
			// Every missing range is covered by pushed-update chains:
			// resolve the fault entirely locally, no round trip.
			fs := &faultState{page: p, ranges: ranges, diffs: cached,
				ready: true, start: fstart, waiters: []*Thread{t}}
			p.fault = fs
			n.inFlightFaults++
			t.applyFault(fs)
			return
		}
	}

	fs := &faultState{page: p, ranges: ranges, outstanding: len(remote),
		diffs: cached, start: fstart}
	p.fault = fs
	n.stats.RemoteFaults++
	n.stats.OutstandingFaults += int64(n.inFlightFaults)
	n.stats.OutstandingLocks += int64(n.inFlightLocks)
	n.inFlightFaults++

	sys := t.sys
	for _, r := range remote {
		r := r
		if t.affinity != nil {
			t.affinity[r.node]++
		}
		target := sys.nodes[r.node]
		sys.sendFromTask(t.task, NodeID(n.id), NodeID(r.node),
			ClassDiff, diffRequestBytes, func() {
				target.serveDiffRequest(p.id, r.from, r.to, func(ds []*Diff, bytes int, service sim.Time) {
					sys.eng.ScheduleOn(target.proc, target.proc.LocalNow()+service, func() {
						sys.sendFromHandler(NodeID(r.node), NodeID(n.id),
							ClassDiff, bytes, func() {
								fs.diffs = append(fs.diffs, ds...)
								fs.outstanding--
								if fs.outstanding == 0 {
									fs.ready = true
									sys.eng.Wake(fs.waiters[0].task)
								}
							})
					})
				})
			})
	}

	fs.waiters = append(fs.waiters, t)
	wstart := t.task.Now()
	t.block(ReasonFault)
	if nm := n.met; nm != nil {
		d := t.task.Now() - wstart
		nm.FaultThreadWait.Observe(int64(d))
		t.sys.met.PageFaultWait(t.node.id, int32(p.id), d)
	}

	if p.fault == fs && fs.ready && fs.waiters[0] == t {
		t.applyFault(fs)
	}
}

// applyFault installs the collected diffs in happened-before order,
// charging the memory-system cost of every modified byte, then releases
// the fault's co-waiters.
func (t *Thread) applyFault(fs *faultState) {
	n := t.node
	p := fs.page
	t.node.materialize(p)
	sortDiffs(fs.diffs)
	if t.sys.cfg.DetectRaces {
		n.detectRaces(fs.diffs)
	}
	base := t.pageVA(p.id)
	if fs.snap != nil {
		// Whole-page snapshot from an exclusive owner: install it first,
		// then credit the coverage its vector certifies. The owner's
		// applied indices are safe to adopt — the snapshot bytes include
		// every interval they cover.
		copy(p.data, fs.snap)
		for nd, v := range fs.snapVec {
			if nd == n.id || v == 0 {
				continue
			}
			if w := p.writer(nd); w.applied < v {
				w.applied = v
			}
		}
		t.task.Advance(n.mem.AccessRange(base, t.sys.cfg.PageSize))
		if ad := n.adaptOf(p.id); ad != nil {
			ad.needFull = false
		}
	}
	for _, d := range fs.diffs {
		d.Apply(p.data, p.twin)
		if w := p.writer(d.Node); d.Idx > w.applied {
			w.applied = d.Idx
		}
		n.stats.DiffsUsed++
		for _, run := range d.Runs {
			t.task.Advance(n.mem.AccessRange(base+uint64(run.Off), len(run.Data)))
		}
		if tr := t.sys.tracer; tr != nil {
			tr.Emit(trace.Event{T: t.task.Now(), Kind: trace.KindDiffApply,
				Node: int32(n.id), Thread: int32(t.gid), Page: int32(p.id),
				Peer: int32(d.Node), Arg: int64(d.Idx), Aux: int64(d.Bytes())})
		}
	}
	// Empty replies still certify the requested ranges.
	for _, r := range fs.ranges {
		if w := p.writer(r.node); w.applied < r.to {
			w.applied = r.to
		}
	}
	t.task.Advance(t.sys.cfg.MprotectCost)

	if p.consistent() {
		p.state = validState(p)
	} // else: a write notice arrived mid-fetch; stay invalid and re-fault.

	if nm := n.met; nm != nil {
		nm.FaultService.Observe(int64(t.task.Now() - fs.start))
	}
	if tr := t.sys.tracer; tr != nil {
		tr.Emit(trace.Event{T: t.task.Now(), Kind: trace.KindFaultResolve,
			Node: int32(n.id), Thread: int32(t.gid), Page: int32(p.id),
			Arg: int64(len(fs.diffs))})
	}
	p.fault = nil
	n.inFlightFaults--
	for _, w := range fs.waiters[1:] {
		t.sys.eng.WakeAt(w.task, t.task.Now())
	}
}

// validState is the access right a consistent page returns to: read-write
// if the node is an active concurrent writer, read-only otherwise.
func validState(p *page) PageState {
	if p.openDirty {
		return PageReadWrite
	}
	return PageReadOnly
}

// diffRequestBytes is the wire size of a diff request (page id + range).
const diffRequestBytes = 16

// detectRaces counts pairs of concurrent (causally unordered) diffs that
// write overlapping bytes — the paper's definition of a probable data
// race in a multiple-writer protocol.
func (n *node) detectRaces(ds []*Diff) {
	for i := 0; i < len(ds); i++ {
		for j := i + 1; j < len(ds); j++ {
			a, b := ds[i], ds[j]
			if a.Node == b.Node || a.VT.Before(b.VT) || b.VT.Before(a.VT) {
				continue
			}
			if a.Overlaps(b) {
				n.stats.RacesDetected++
			}
		}
	}
}
