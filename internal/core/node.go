package core

import (
	"sort"

	"cvm/internal/memsim"
	"cvm/internal/metrics"
	"cvm/internal/sim"
	"cvm/internal/trace"
)

// node holds one processor's DSM state: its page table, interval
// knowledge, lock and barrier state, and counters.
type node struct {
	sys  *System
	id   int
	proc *sim.Proc
	mem  memsim.System

	// Consistency state. The page table is a lazily-materialized sharded
	// directory (see pagetable.go), so per-node memory tracks the working
	// set, not the address space. The sync-object maps are created lazily
	// on first use — a run that never touches a lock pays nothing for the
	// lock table.
	vt             VClock
	curIdx         int32                // index of this node's next interval
	shards         []*pageShard         // sparse page directory root, sized at Start
	totalPages     int                  // address-space size in pages
	shardCount     int                  // shards materialized so far
	pool           bufPool              // page/twin buffer slabs (see pagetable.go)
	dirty          []PageID             // pages written in the open interval
	intervals      [][]*IntervalInfo    // known intervals, per node, idx-ascending
	locks          map[int]*lockState   // lazily created
	barriers       map[int]*nodeBarrier // lazily created
	reduces        map[int]*nodeReduce  // lazily created
	swdir          map[PageID]*swDir    // single-writer directory (manager side), lazily created
	csp            csPool               // recycled spilled copyset bitsets
	csScratch      []int32              // copyset fan-out scratch (swServe)
	barrierSentIdx int32                // own intervals already shipped to the barrier manager

	// In-flight remote request counts for outstanding-request sampling.
	inFlightFaults int
	inFlightLocks  int

	// Adaptive-coherence state (see adapt.go, migrate.go); all nil/zero
	// overhead when Config.Adapt and Config.Migrate are off. resident is
	// the node's expected barrier population (ThreadsPerNode until a
	// migration order changes it); residents lists the threads currently
	// homed here (maintained only under Migrate, from this node's engine
	// context); pmode holds per-page coherence modes; adaptObs counts
	// this epoch's remote faults per page for the classifier; adaptHits
	// counts the faults satisfied from pushed-update caches (the
	// controller's update-mode usefulness signal); pendingPush queues
	// update-mode pushes between closeInterval and the flush after the
	// synchronization send.
	resident    int
	residents   []*Thread
	pmode       map[PageID]*pageAdapt
	adaptObs    map[PageID]int32
	adaptHits   map[PageID]int32
	pendingPush []pendingPush

	threads []Thread
	stats   NodeStats

	// met is this node's metrics view (nil when metrics are off); hot
	// paths guard every observation with one nil check, like sys.tracer.
	met *metrics.NodeMetrics
}

func newNode(sys *System, id int, proc *sim.Proc) *node {
	n := &node{
		sys:  sys,
		id:   id,
		proc: proc,
	}
	n.mem.Init(sys.cfg.Mem)
	if sys.met != nil {
		n.met = sys.met.Node(id)
	}
	proc.SetHookHandler(n)
	return n
}

// OnSwitch implements sim.Hooks.
func (n *node) OnSwitch(from, to *sim.Task) {
	n.stats.ThreadSwitches++
	// Scheduler code plus the incoming thread's code phase touch the
	// I-TLB; this is the synthetic instruction-locality model (Figure 2).
	n.mem.InstrTouch(schedCodePage)
	th := n.sys.threadOf(to)
	if th != nil {
		th.touchPhaseCode()
	}
	if tr := n.sys.tracer; tr != nil {
		fromGid := int64(-1)
		if f := n.sys.threadOf(from); f != nil {
			fromGid = int64(f.gid)
		}
		toGid := int32(-1)
		if th != nil {
			toGid = int32(th.gid)
		}
		tr.Emit(trace.Event{T: n.proc.Clock(), Kind: trace.KindThreadSwitch,
			Node: int32(n.id), Thread: toGid, Arg: fromGid})
	}
}

// OnIdleEnd implements sim.Hooks.
func (n *node) OnIdleEnd(start, end sim.Time, task *sim.Task) {
	d := end - start
	switch task.BlockReason() {
	case ReasonFault:
		n.stats.FaultWait += d
		if nm := n.met; nm != nil {
			nm.FaultIdle.Observe(int64(d))
			n.sys.met.TimelineAdd(n.id, start, end, metrics.TimelineFault)
		}
	case ReasonLock:
		n.stats.LockWait += d
		if nm := n.met; nm != nil {
			nm.LockIdle.Observe(int64(d))
			n.sys.met.TimelineAdd(n.id, start, end, metrics.TimelineLock)
		}
	case ReasonBarrier:
		n.stats.BarrierWait += d
		if nm := n.met; nm != nil {
			nm.BarrierIdle.Observe(int64(d))
			n.sys.met.TimelineAdd(n.id, start, end, metrics.TimelineBarrier)
		}
	}
}

// OnSlice implements sim.Hooks.
func (n *node) OnSlice(task *sim.Task, start, end sim.Time) {
	n.stats.UserTime += end - start
	if nm := n.met; nm != nil {
		nm.UserBurst.Observe(int64(end - start))
		nm.RunQueue.Observe(int64(n.proc.QueueLen()))
		n.sys.met.TimelineAdd(n.id, start, end, metrics.TimelineUser)
	}
}

// ensureIntervals creates the per-node interval table on first use; a
// run that never closes an interval (no synchronization) never pays for
// it.
func (n *node) ensureIntervals() {
	if n.intervals == nil {
		n.intervals = make([][]*IntervalInfo, n.sys.cfg.Nodes)
	}
}

// markDirty adds pg to the open interval's dirty list.
func (n *node) markDirty(p *page) {
	if !p.openDirty {
		p.openDirty = true
		n.dirty = append(n.dirty, p.id)
	}
}

// closeInterval ends the open interval if it modified any pages, emitting
// write notices and downgrading dirty pages to read-only so the next
// interval's writes fault into the dirty list again. It is called at
// release operations (lock release, barrier arrival) in thread context;
// the per-page protection changes charge the paper's mprotect cost to t.
func (n *node) closeInterval(t *Thread) {
	if len(n.dirty) == 0 {
		return
	}
	n.ensureIntervals()
	n.curIdx++
	n.vt[n.id] = n.curIdx
	info := &IntervalInfo{
		Node:  n.id,
		Idx:   n.curIdx,
		VT:    n.vt.Clone(),
		Pages: append([]PageID(nil), n.dirty...),
	}
	n.intervals[n.id] = append(n.intervals[n.id], info)

	// Create this interval's diffs eagerly (as TreadMarks does at barrier
	// arrival): every diff then carries exact per-interval attribution,
	// which keeps diff propagation inside the causally-closed write-notice
	// set — a requester is only ever sent diffs for intervals it holds
	// write notices for, so cross-fault application order can never
	// regress a byte. The page-length comparison and the protection
	// downgrade are charged to the closing thread.
	for _, pg := range n.dirty {
		p := n.pageAt(pg)
		p.openDirty = false
		d := &Diff{
			Page: pg,
			Node: n.id,
			Idx:  n.curIdx,
			VT:   info.VT,
			Runs: MakeDiff(pg, p.twin, p.data),
		}
		n.storeDiff(d)
		if nm := n.met; nm != nil {
			nm.DiffBytes.Observe(int64(d.WireBytes(n.sys.cfg.CompressDiffs)))
		}
		if ad := n.adaptOf(pg); ad != nil && ad.mode == ModeMWUpd && len(ad.subs) > 0 {
			n.queuePush(p, d, ad)
		}
		n.releaseTwin(p)
		if t != nil {
			t.task.Advance(n.sys.cfg.DiffCreateCost +
				n.mem.AccessRange(uint64(pg)<<n.sys.pageShift, n.sys.cfg.PageSize))
		}
		if tr := n.sys.tracer; tr != nil {
			ev := trace.Event{Kind: trace.KindDiffCreate, Node: int32(n.id),
				Thread: -1, Page: int32(pg),
				Arg: int64(d.WireBytes(n.sys.cfg.CompressDiffs)), Aux: int64(n.curIdx)}
			if t != nil {
				ev.T = t.task.Now()
				ev.Thread = int32(t.gid)
			} else {
				ev.T = n.proc.LocalNow()
			}
			tr.Emit(ev)
		}
		if p.state == PageReadWrite {
			p.state = PageReadOnly
			if t != nil {
				t.task.Advance(n.sys.cfg.MprotectCost)
			}
		}
	}
	n.dirty = n.dirty[:0]
}

func (n *node) storeDiff(d *Diff) {
	p := n.pageAt(d.Page)
	p.diffs = append(p.diffs, d)
	n.stats.DiffsCreated++
}

// newInfosSince returns this node's knowledge of every interval (its own
// and others') not covered by the given vector time, ordered by node then
// index. It is the write-notice payload of lock grants and barrier
// messages.
func (n *node) newInfosSince(vt VClock) []*IntervalInfo {
	if n.intervals == nil {
		return nil
	}
	var out []*IntervalInfo
	for nodeID := 0; nodeID < n.sys.cfg.Nodes; nodeID++ {
		infos := n.intervals[nodeID]
		// Binary search: infos is ascending by Idx.
		i := sort.Search(len(infos), func(i int) bool { return infos[i].Idx > vt[nodeID] })
		out = append(out, infos[i:]...)
	}
	return out
}

// applyInfos merges received interval knowledge: records the intervals,
// invalidates pages named by fresh write notices, and joins the sender's
// vector time. It runs at acquire-type operations (lock grant, barrier
// release) in either thread or engine context.
func (n *node) applyInfos(infos []*IntervalInfo, senderVT VClock) {
	for _, info := range infos {
		if info.Node == n.id || info.Idx <= n.vt[info.Node] {
			continue // own interval or already known
		}
		n.ensureIntervals()
		n.intervals[info.Node] = append(n.intervals[info.Node], info)
		n.vt[info.Node] = info.Idx
		for _, pg := range info.Pages {
			p := n.pageAt(pg)
			w := p.writer(info.Node)
			if info.Idx > w.wanted {
				w.wanted = info.Idx
			}
			if w.applied < w.wanted {
				p.state = PageInvalid
			}
		}
	}
	if senderVT != nil {
		n.vt.Merge(senderVT)
	}
}

// serveDiffRequest handles a remote data request (engine context): it
// replies with the stored diffs for intervals in (from, to]. All such
// diffs exist — they were created when the intervals closed — so the
// reply never reaches past the requester's write-notice horizon.
// Intervals in the range that did not dirty the page simply have no diff.
func (n *node) serveDiffRequest(pg PageID, from, to int32, reply func(ds []*Diff, bytes int, serviceTime sim.Time)) {
	stored := n.pageAt(pg).diffs
	i := sort.Search(len(stored), func(i int) bool { return stored[i].Idx > from })
	j := sort.Search(len(stored), func(j int) bool { return stored[j].Idx > to })
	ds := stored[i:j]
	compress := n.sys.cfg.CompressDiffs
	bytes := 16
	for _, d := range ds {
		bytes += d.WireBytes(compress)
	}
	reply(ds, bytes, n.sys.cfg.DiffServeCost)
}

// sortDiffs orders diffs for application into a linear extension of the
// happens-before partial order, so a causally-later diff is always applied
// after every diff it supersedes. Happens-before is a partial order, NOT a
// strict weak ordering, so a comparison sort cannot be used. Instead the
// diffs are merged per creator node (each node's diffs are already
// causally ordered by interval index): repeatedly emit the queue head that
// no other head happens-before, breaking ties among concurrent heads by
// node ID. Concurrent diffs modify disjoint bytes in race-free programs,
// so their mutual order is immaterial.
func sortDiffs(ds []*Diff) {
	if len(ds) < 2 {
		return
	}
	queues := make(map[int][]*Diff)
	var nodeIDs []int
	for _, d := range ds {
		if _, ok := queues[d.Node]; !ok {
			nodeIDs = append(nodeIDs, d.Node)
		}
		queues[d.Node] = append(queues[d.Node], d)
	}
	sort.Ints(nodeIDs)
	for _, id := range nodeIDs {
		q := queues[id]
		sort.Slice(q, func(i, j int) bool { return q[i].Idx < q[j].Idx })
	}

	out := ds[:0]
	for remaining := len(ds); remaining > 0; remaining-- {
		emit := -1
		for _, id := range nodeIDs {
			q := queues[id]
			if len(q) == 0 {
				continue
			}
			safe := true
			for _, other := range nodeIDs {
				oq := queues[other]
				if other == id || len(oq) == 0 {
					continue
				}
				if oq[0].VT.Before(q[0].VT) {
					safe = false
					break
				}
			}
			if safe {
				emit = id
				break
			}
		}
		if emit < 0 {
			// Unreachable for well-formed vector times; fall back to
			// the lowest node to guarantee progress.
			for _, id := range nodeIDs {
				if len(queues[id]) > 0 {
					emit = id
					break
				}
			}
		}
		out = append(out, queues[emit][0])
		queues[emit] = queues[emit][1:]
	}
}

// schedCodePage is the synthetic I-TLB page of the thread scheduler.
const schedCodePage = 1 << 40
