package core

import (
	"sort"

	"cvm/internal/memsim"
	"cvm/internal/metrics"
	"cvm/internal/sim"
	"cvm/internal/trace"
)

// node holds one processor's DSM state: its page table, interval
// knowledge, lock and barrier state, and counters.
type node struct {
	sys  *System
	id   int
	proc *sim.Proc
	mem  *memsim.System

	// Consistency state.
	vt             VClock
	curIdx         int32                   // index of this node's next interval
	pages          []*page                 // lazily populated, one per PageID
	dirty          []PageID                // pages written in the open interval
	intervals      map[int][]*IntervalInfo // known intervals, keyed by node, idx-ascending
	diffs          map[PageID][]*Diff      // diffs created here, idx-ascending
	locks          map[int]*lockState
	barriers       map[int]*nodeBarrier
	reduces        map[int]*nodeReduce
	swdir          map[PageID]*swDir // single-writer directory (manager side)
	barrierSentIdx int32             // own intervals already shipped to the barrier manager

	// In-flight remote request counts for outstanding-request sampling.
	inFlightFaults int
	inFlightLocks  int

	threads []*Thread
	stats   NodeStats

	// met is this node's metrics view (nil when metrics are off); hot
	// paths guard every observation with one nil check, like sys.tracer.
	met *metrics.NodeMetrics
}

func newNode(sys *System, id int, proc *sim.Proc, mem *memsim.System) *node {
	n := &node{
		sys:       sys,
		id:        id,
		proc:      proc,
		mem:       mem,
		vt:        NewVClock(sys.cfg.Nodes),
		intervals: make(map[int][]*IntervalInfo),
		diffs:     make(map[PageID][]*Diff),
		locks:     make(map[int]*lockState),
		barriers:  make(map[int]*nodeBarrier),
		reduces:   make(map[int]*nodeReduce),
		swdir:     make(map[PageID]*swDir),
	}
	if sys.met != nil {
		n.met = sys.met.Node(id)
	}
	proc.SetHooks(sim.ProcHooks{
		OnSwitch:  n.onSwitch,
		OnIdleEnd: n.onIdleEnd,
		OnSlice:   n.onSlice,
	})
	return n
}

func (n *node) onSwitch(from, to *sim.Task) {
	n.stats.ThreadSwitches++
	// Scheduler code plus the incoming thread's code phase touch the
	// I-TLB; this is the synthetic instruction-locality model (Figure 2).
	n.mem.InstrTouch(schedCodePage)
	th := n.sys.threadOf(to)
	if th != nil {
		th.touchPhaseCode()
	}
	if tr := n.sys.tracer; tr != nil {
		fromGid := int64(-1)
		if f := n.sys.threadOf(from); f != nil {
			fromGid = int64(f.gid)
		}
		toGid := int32(-1)
		if th != nil {
			toGid = int32(th.gid)
		}
		tr.Emit(trace.Event{T: n.proc.Clock(), Kind: trace.KindThreadSwitch,
			Node: int32(n.id), Thread: toGid, Arg: fromGid})
	}
}

func (n *node) onIdleEnd(start, end sim.Time, task *sim.Task) {
	d := end - start
	switch task.BlockReason() {
	case ReasonFault:
		n.stats.FaultWait += d
		if nm := n.met; nm != nil {
			nm.FaultIdle.Observe(int64(d))
			n.sys.met.TimelineAdd(n.id, start, end, metrics.TimelineFault)
		}
	case ReasonLock:
		n.stats.LockWait += d
		if nm := n.met; nm != nil {
			nm.LockIdle.Observe(int64(d))
			n.sys.met.TimelineAdd(n.id, start, end, metrics.TimelineLock)
		}
	case ReasonBarrier:
		n.stats.BarrierWait += d
		if nm := n.met; nm != nil {
			nm.BarrierIdle.Observe(int64(d))
			n.sys.met.TimelineAdd(n.id, start, end, metrics.TimelineBarrier)
		}
	}
}

func (n *node) onSlice(task *sim.Task, start, end sim.Time) {
	n.stats.UserTime += end - start
	if nm := n.met; nm != nil {
		nm.UserBurst.Observe(int64(end - start))
		nm.RunQueue.Observe(int64(n.proc.QueueLen()))
		n.sys.met.TimelineAdd(n.id, start, end, metrics.TimelineUser)
	}
}

// pageAt returns the node's view of pg, creating it lazily. Under the
// lazy-multi-writer protocol every node starts with a valid zero page
// (write notices invalidate later); under single-writer only the page's
// manager starts with a copy.
func (n *node) pageAt(pg PageID) *page {
	p := n.pages[pg]
	if p == nil {
		state := PageReadOnly
		if n.sys.cfg.Protocol == ProtocolSW && int(pg)%n.sys.cfg.Nodes != n.id {
			state = PageInvalid
		}
		p = &page{
			id:      pg,
			state:   state,
			applied: make([]int32, n.sys.cfg.Nodes),
			wanted:  make([]int32, n.sys.cfg.Nodes),
		}
		n.pages[pg] = p
	}
	return p
}

// markDirty adds pg to the open interval's dirty list.
func (n *node) markDirty(p *page) {
	if !p.openDirty {
		p.openDirty = true
		n.dirty = append(n.dirty, p.id)
	}
}

// closeInterval ends the open interval if it modified any pages, emitting
// write notices and downgrading dirty pages to read-only so the next
// interval's writes fault into the dirty list again. It is called at
// release operations (lock release, barrier arrival) in thread context;
// the per-page protection changes charge the paper's mprotect cost to t.
func (n *node) closeInterval(t *Thread) {
	if len(n.dirty) == 0 {
		return
	}
	n.curIdx++
	n.vt[n.id] = n.curIdx
	info := &IntervalInfo{
		Node:  n.id,
		Idx:   n.curIdx,
		VT:    n.vt.Clone(),
		Pages: append([]PageID(nil), n.dirty...),
	}
	n.intervals[n.id] = append(n.intervals[n.id], info)

	// Create this interval's diffs eagerly (as TreadMarks does at barrier
	// arrival): every diff then carries exact per-interval attribution,
	// which keeps diff propagation inside the causally-closed write-notice
	// set — a requester is only ever sent diffs for intervals it holds
	// write notices for, so cross-fault application order can never
	// regress a byte. The page-length comparison and the protection
	// downgrade are charged to the closing thread.
	for _, pg := range n.dirty {
		p := n.pages[pg]
		p.openDirty = false
		d := &Diff{
			Page: pg,
			Node: n.id,
			Idx:  n.curIdx,
			VT:   info.VT,
			Runs: MakeDiff(pg, p.twin, p.data),
		}
		n.storeDiff(d)
		if nm := n.met; nm != nil {
			nm.DiffBytes.Observe(int64(d.Bytes()))
		}
		n.sys.recyclePageBuf(p.twin)
		p.twin = nil
		if t != nil {
			t.task.Advance(n.sys.cfg.DiffCreateCost +
				n.mem.AccessRange(uint64(pg)<<n.sys.pageShift, n.sys.cfg.PageSize))
		}
		if tr := n.sys.tracer; tr != nil {
			ev := trace.Event{Kind: trace.KindDiffCreate, Node: int32(n.id),
				Thread: -1, Page: int32(pg),
				Arg: int64(d.Bytes()), Aux: int64(n.curIdx)}
			if t != nil {
				ev.T = t.task.Now()
				ev.Thread = int32(t.gid)
			} else {
				ev.T = n.sys.eng.Now()
			}
			tr.Emit(ev)
		}
		if p.state == PageReadWrite {
			p.state = PageReadOnly
			if t != nil {
				t.task.Advance(n.sys.cfg.MprotectCost)
			}
		}
	}
	n.dirty = n.dirty[:0]
}

func (n *node) storeDiff(d *Diff) {
	n.diffs[d.Page] = append(n.diffs[d.Page], d)
	n.stats.DiffsCreated++
}

// newInfosSince returns this node's knowledge of every interval (its own
// and others') not covered by the given vector time, ordered by node then
// index. It is the write-notice payload of lock grants and barrier
// messages.
func (n *node) newInfosSince(vt VClock) []*IntervalInfo {
	var out []*IntervalInfo
	for nodeID := 0; nodeID < n.sys.cfg.Nodes; nodeID++ {
		infos := n.intervals[nodeID]
		// Binary search: infos is ascending by Idx.
		i := sort.Search(len(infos), func(i int) bool { return infos[i].Idx > vt[nodeID] })
		out = append(out, infos[i:]...)
	}
	return out
}

// applyInfos merges received interval knowledge: records the intervals,
// invalidates pages named by fresh write notices, and joins the sender's
// vector time. It runs at acquire-type operations (lock grant, barrier
// release) in either thread or engine context.
func (n *node) applyInfos(infos []*IntervalInfo, senderVT VClock) {
	for _, info := range infos {
		if info.Node == n.id || info.Idx <= n.vt[info.Node] {
			continue // own interval or already known
		}
		n.intervals[info.Node] = append(n.intervals[info.Node], info)
		n.vt[info.Node] = info.Idx
		for _, pg := range info.Pages {
			p := n.pageAt(pg)
			if info.Idx > p.wanted[info.Node] {
				p.wanted[info.Node] = info.Idx
			}
			if p.applied[info.Node] < p.wanted[info.Node] {
				p.state = PageInvalid
			}
		}
	}
	if senderVT != nil {
		n.vt.Merge(senderVT)
	}
}

// serveDiffRequest handles a remote data request (engine context): it
// replies with the stored diffs for intervals in (from, to]. All such
// diffs exist — they were created when the intervals closed — so the
// reply never reaches past the requester's write-notice horizon.
// Intervals in the range that did not dirty the page simply have no diff.
func (n *node) serveDiffRequest(pg PageID, from, to int32, reply func(ds []*Diff, bytes int, serviceTime sim.Time)) {
	stored := n.diffs[pg]
	i := sort.Search(len(stored), func(i int) bool { return stored[i].Idx > from })
	j := sort.Search(len(stored), func(j int) bool { return stored[j].Idx > to })
	ds := stored[i:j]
	bytes := 16
	for _, d := range ds {
		bytes += d.Bytes()
	}
	reply(ds, bytes, n.sys.cfg.DiffServeCost)
}

// sortDiffs orders diffs for application into a linear extension of the
// happens-before partial order, so a causally-later diff is always applied
// after every diff it supersedes. Happens-before is a partial order, NOT a
// strict weak ordering, so a comparison sort cannot be used. Instead the
// diffs are merged per creator node (each node's diffs are already
// causally ordered by interval index): repeatedly emit the queue head that
// no other head happens-before, breaking ties among concurrent heads by
// node ID. Concurrent diffs modify disjoint bytes in race-free programs,
// so their mutual order is immaterial.
func sortDiffs(ds []*Diff) {
	if len(ds) < 2 {
		return
	}
	queues := make(map[int][]*Diff)
	var nodeIDs []int
	for _, d := range ds {
		if _, ok := queues[d.Node]; !ok {
			nodeIDs = append(nodeIDs, d.Node)
		}
		queues[d.Node] = append(queues[d.Node], d)
	}
	sort.Ints(nodeIDs)
	for _, id := range nodeIDs {
		q := queues[id]
		sort.Slice(q, func(i, j int) bool { return q[i].Idx < q[j].Idx })
	}

	out := ds[:0]
	for remaining := len(ds); remaining > 0; remaining-- {
		emit := -1
		for _, id := range nodeIDs {
			q := queues[id]
			if len(q) == 0 {
				continue
			}
			safe := true
			for _, other := range nodeIDs {
				oq := queues[other]
				if other == id || len(oq) == 0 {
					continue
				}
				if oq[0].VT.Before(q[0].VT) {
					safe = false
					break
				}
			}
			if safe {
				emit = id
				break
			}
		}
		if emit < 0 {
			// Unreachable for well-formed vector times; fall back to
			// the lowest node to guarantee progress.
			for _, id := range nodeIDs {
				if len(queues[id]) > 0 {
					emit = id
					break
				}
			}
		}
		out = append(out, queues[emit][0])
		queues[emit] = queues[emit][1:]
	}
}

// schedCodePage is the synthetic I-TLB page of the thread scheduler.
const schedCodePage = 1 << 40
