package core

import "testing"

// The diff kernels are the simulator's hottest inner loops: every closed
// interval runs MakeDiff over a full page, and every remote fault runs
// Apply per incoming diff. These benchmarks are the regression baseline
// for the word-strided comparison (see BENCH_harness.json).

const benchPageSize = 8 << 10

func benchPages(pattern string) (twin, cur []byte) {
	twin = make([]byte, benchPageSize)
	cur = make([]byte, benchPageSize)
	switch pattern {
	case "clean":
	case "sparse": // a few short runs, the common single-writer case
		for i := 0; i < benchPageSize; i += 512 {
			cur[i] = byte(i>>9) + 1
		}
	case "dense": // nearly every byte modified (bulk initialization)
		for i := range cur {
			cur[i] = byte(i) | 1
		}
	case "alternating": // worst case for word batching
		for i := 0; i < benchPageSize; i += 2 {
			cur[i] = 1
		}
	}
	return twin, cur
}

func benchmarkMakeDiff(b *testing.B, pattern string) {
	twin, cur := benchPages(pattern)
	b.SetBytes(benchPageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MakeDiff(0, twin, cur)
	}
}

func BenchmarkMakeDiffClean(b *testing.B)       { benchmarkMakeDiff(b, "clean") }
func BenchmarkMakeDiffSparse(b *testing.B)      { benchmarkMakeDiff(b, "sparse") }
func BenchmarkMakeDiffDense(b *testing.B)       { benchmarkMakeDiff(b, "dense") }
func BenchmarkMakeDiffAlternating(b *testing.B) { benchmarkMakeDiff(b, "alternating") }

func BenchmarkDiffApply(b *testing.B) {
	twin, cur := benchPages("sparse")
	d := &Diff{Runs: MakeDiff(0, twin, cur)}
	dst := make([]byte, benchPageSize)
	tw := make([]byte, benchPageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Apply(dst, tw)
	}
}

func BenchmarkDiffOverlaps(b *testing.B) {
	// Two interleaved disjoint diffs with many runs: the case the merge
	// walk turns from O(runs²) into O(runs).
	var a, c Diff
	for off := int32(0); off < benchPageSize; off += 32 {
		a.Runs = append(a.Runs, Run{Off: off, Data: make([]byte, 8)})
		c.Runs = append(c.Runs, Run{Off: off + 16, Data: make([]byte, 8)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Overlaps(&c) {
			b.Fatal("disjoint diffs reported overlapping")
		}
	}
}

// BenchmarkMakeDiffRefDense measures the byte-at-a-time reference scan on
// the dense pattern, quantifying the word-strided kernel's win.
func BenchmarkMakeDiffRefDense(b *testing.B) {
	twin, cur := benchPages("dense")
	b.SetBytes(benchPageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		makeDiffRef(twin, cur)
	}
}

// BenchmarkMakeDiffRefSparse is the byte-wise reference on sparse pages.
func BenchmarkMakeDiffRefSparse(b *testing.B) {
	twin, cur := benchPages("sparse")
	b.SetBytes(benchPageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		makeDiffRef(twin, cur)
	}
}
