// Package cluster is the control plane for multi-process CVM runs: it
// bootstraps N cvm-node processes into one DSM cluster over the TCP
// transport, distributes the run configuration, coordinates the start,
// and collects results.
//
// One process coordinates (node 0, -listen); the others join (-join).
// The control handshake, in newline-delimited JSON over one TCP
// connection per member:
//
//	member                         coordinator
//	  | -- hello{node, dataAddr} ----> |   collect N-1 members
//	  | <-- welcome{spec, dataAddrs} - |   config + membership out
//	  |     (both sides form the data mesh; transport.Mesh)
//	  | -- ready --------------------> |   member meshed + app built
//	  | <-- go ----------------------- |   coordinated start
//	  |     (both sides run the application; rt.RunNode)
//	  | -- result{ok, err, stats} ---> |   per-node outcome in
//	  | <-- done{checksum, ok, err} -- |   global verdict out
//
// Failure at any step closes the control connection, which fails the
// peer's pending read — no step blocks past its deadline. The checksum
// in done is computed on the coordinator (global thread 0 lives there)
// and must match the deterministic simulator's for the same
// configuration; see DESIGN.md §11.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cvm/internal/apps"
	"cvm/internal/metrics"
	"cvm/internal/rt"
	"cvm/internal/trace"
	"cvm/internal/transport"
)

// protoVersion guards against mixed cvm-node builds in one cluster.
// Version 2 added the metrics snapshot to the result message.
const protoVersion = 2

// Spec is the run configuration the coordinator distributes; members
// take everything but their identity from it.
type Spec struct {
	App     string `json:"app"`
	Size    string `json:"size"` // test, small, paper
	Nodes   int    `json:"nodes"`
	Threads int    `json:"threads"` // per node
	Page    int    `json:"page"`    // coherence unit in bytes
	Seed    uint64 `json:"seed"`    // reserved for fault/experiment keying; echoed in results
}

// Validate checks the spec against the application registry.
func (s Spec) Validate() error {
	if s.Nodes < 1 {
		return fmt.Errorf("cluster: %d nodes", s.Nodes)
	}
	if s.Threads < 1 {
		return fmt.Errorf("cluster: %d threads per node", s.Threads)
	}
	if s.Page < 8 || s.Page%8 != 0 {
		return fmt.Errorf("cluster: page size %d not a positive multiple of 8", s.Page)
	}
	size, err := apps.ParseSize(s.Size)
	if err != nil {
		return err
	}
	app, err := apps.New(s.App, size)
	if err != nil {
		return err
	}
	if !app.SupportsThreads(s.Threads) {
		return fmt.Errorf("cluster: %s does not support %d threads per node", s.App, s.Threads)
	}
	return nil
}

// Options tune a node's participation.
type Options struct {
	// DataAddr is the host:port this node's DSM data listener binds
	// (port 0 picks a free port). The host part must be reachable by
	// every peer; the default suits single-host clusters only.
	DataAddr string
	// Timeout bounds every control-plane step and the data-mesh
	// formation.
	Timeout time.Duration
	// Log, when non-nil, receives one-line progress messages.
	Log io.Writer
	// Interrupt, when non-nil, aborts the run when it fires (cvm-node
	// wires SIGINT/SIGTERM here): every control and data connection
	// this node holds is closed, so each blocked step — local and on
	// every peer — fails promptly with an attributed error instead of
	// leaving the cluster hung.
	Interrupt <-chan struct{}
	// Tracer, when non-nil, receives this node's wall-timestamped
	// protocol events (rt.Config.Tracer).
	Tracer trace.Tracer
	// Started, when non-nil, is called once the data mesh is formed and
	// the application is built, just before the run begins. The cvm-node
	// debug server uses it to attach its live introspection sources.
	Started func(RunInfo)
}

// RunInfo hands a started node's live objects to Options.Started.
type RunInfo struct {
	Node    int
	Spec    Spec
	Cluster *rt.Cluster
	Conn    transport.Conn
	Metrics *rt.Metrics
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.DataAddr == "" {
		out.DataAddr = "127.0.0.1:0"
	}
	if out.Timeout <= 0 {
		out.Timeout = 2 * time.Minute
	}
	if out.Log == nil {
		out.Log = io.Discard
	}
	return out
}

// Outcome is what a node knows at the end of a run. Checksum is the
// global checksum (computed on the coordinator, distributed in done);
// Net counts this node's own data traffic. Metrics is the node's own
// wall-clock snapshot on a member; on the coordinator it is every
// node's snapshot merged in node order (deterministic for a given set
// of member snapshots).
type Outcome struct {
	Checksum float64
	Elapsed  time.Duration
	Net      transport.Stats
	Metrics  *metrics.Snapshot
}

// ctrlMsg is the single wire shape of every control message; Type
// selects which fields are meaningful.
type ctrlMsg struct {
	Type      string   `json:"type"`
	Proto     int      `json:"proto,omitempty"`
	Node      int      `json:"node,omitempty"`
	Nodes     int      `json:"nodes,omitempty"`
	Seed      uint64   `json:"seed,omitempty"`
	DataAddr  string   `json:"dataAddr,omitempty"`
	Spec      *Spec    `json:"spec,omitempty"`
	DataAddrs []string `json:"dataAddrs,omitempty"`
	OK        bool     `json:"ok,omitempty"`
	Err       string   `json:"err,omitempty"`
	Checksum  float64  `json:"checksum,omitempty"`
	ElapsedMS int64    `json:"elapsedMs,omitempty"`
	Msgs      int64    `json:"msgs,omitempty"`
	Bytes     int64    `json:"bytes,omitempty"`
	// Metrics carries a member's wall-clock metrics snapshot in the
	// result message (proto 2), opaque to the framing layer.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// ctrlConn frames ctrlMsgs over one TCP connection with per-step
// deadlines.
type ctrlConn struct {
	c       net.Conn
	enc     *json.Encoder
	dec     *json.Decoder
	timeout time.Duration
}

func newCtrlConn(c net.Conn, timeout time.Duration) *ctrlConn {
	return &ctrlConn{c: c, enc: json.NewEncoder(c), dec: json.NewDecoder(c), timeout: timeout}
}

func (cc *ctrlConn) send(m ctrlMsg) error {
	cc.c.SetWriteDeadline(time.Now().Add(cc.timeout))
	if err := cc.enc.Encode(m); err != nil {
		return fmt.Errorf("cluster: send %s: %w", m.Type, err)
	}
	return nil
}

// recv reads the next message, requiring the given type.
func (cc *ctrlConn) recv(wantType string) (ctrlMsg, error) {
	cc.c.SetReadDeadline(time.Now().Add(cc.timeout))
	var m ctrlMsg
	if err := cc.dec.Decode(&m); err != nil {
		return m, fmt.Errorf("cluster: awaiting %s: %w", wantType, err)
	}
	if m.Type != wantType {
		if m.Type == "done" && m.Err != "" {
			// A coordinator aborting mid-handshake reports why.
			return m, fmt.Errorf("cluster: coordinator failed: %s", m.Err)
		}
		return m, fmt.Errorf("cluster: got %q, want %q", m.Type, wantType)
	}
	return m, nil
}

// buildApp constructs the application and the real-execution cluster a
// node runs; every node builds both identically from the spec, so the
// shared address space lays out the same everywhere. met is always
// attached: cluster runs collect wall-clock metrics unconditionally so
// the coordinator can merge and report them.
func buildApp(spec Spec, met *rt.Metrics, tracer trace.Tracer) (apps.App, *rt.Cluster, error) {
	size, err := apps.ParseSize(spec.Size)
	if err != nil {
		return nil, nil, err
	}
	app, err := apps.New(spec.App, size)
	if err != nil {
		return nil, nil, err
	}
	cl, err := rt.NewCluster(rt.Config{
		Nodes:          spec.Nodes,
		ThreadsPerNode: spec.Threads,
		PageSize:       spec.Page,
		Metrics:        met,
		Tracer:         tracer,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := app.Setup(cl); err != nil {
		return nil, nil, err
	}
	return app, cl, nil
}

// closers collects the connections an interrupt must sever. Adding
// after the trigger fired closes immediately, so a connection created
// while the interrupt raced is still torn down.
type closers struct {
	mu    sync.Mutex
	fired bool
	list  []io.Closer
}

func (cl *closers) add(c io.Closer) {
	cl.mu.Lock()
	fired := cl.fired
	if !fired {
		cl.list = append(cl.list, c)
	}
	cl.mu.Unlock()
	if fired {
		c.Close()
	}
}

func (cl *closers) fire() {
	cl.mu.Lock()
	list := cl.list
	cl.list = nil
	cl.fired = true
	cl.mu.Unlock()
	for _, c := range list {
		c.Close()
	}
}

// watchInterrupt severs every registered connection when interrupt
// fires; stop (closed when the run ends normally) retires the watcher.
func watchInterrupt(interrupt, stop <-chan struct{}, cl *closers) {
	if interrupt == nil {
		return
	}
	go func() {
		select {
		case <-interrupt:
			cl.fire()
		case <-stop:
		}
	}()
}

// decodeMemberMetrics parses the snapshot a member shipped in its
// result message.
func decodeMemberMetrics(node int, raw json.RawMessage) (*metrics.Snapshot, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("cluster: node %d: result carried no metrics", node)
	}
	var s metrics.Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("cluster: node %d: bad metrics payload: %w", node, err)
	}
	return &s, nil
}

// Coordinate runs node 0: it accepts Nodes-1 members on listen,
// distributes spec, forms the data mesh, runs the application, collects
// every member's result, validates the checksum against the sequential
// reference, and distributes the verdict.
func Coordinate(listen string, spec Spec, opts Options) (Outcome, error) {
	o := opts.withDefaults()
	if err := spec.Validate(); err != nil {
		return Outcome{}, err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return Outcome{}, fmt.Errorf("cluster: control listen %s: %w", listen, err)
	}
	defer ln.Close()

	dataLn, err := transport.ListenTCP(0, o.DataAddr)
	if err != nil {
		return Outcome{}, err
	}
	var sever closers
	stop := make(chan struct{})
	defer close(stop)
	watchInterrupt(o.Interrupt, stop, &sever)
	sever.add(ln)
	sever.add(dataLn)
	fmt.Fprintf(o.Log, "coordinator: control on %s, data on %s, waiting for %d members\n",
		ln.Addr(), dataLn.Addr(), spec.Nodes-1)

	// Membership exchange: every member introduces itself with its data
	// address; ids must be unique and in range.
	members := make([]*ctrlConn, spec.Nodes) // by node id; 0 unused
	dataAddrs := make([]string, spec.Nodes)
	dataAddrs[0] = dataLn.Addr()
	deadline := time.Now().Add(o.Timeout)
	abort := func(err error) (Outcome, error) {
		for _, m := range members {
			if m != nil {
				m.send(ctrlMsg{Type: "done", Err: err.Error()})
				m.c.Close()
			}
		}
		dataLn.Close()
		return Outcome{}, err
	}
	for joined := 0; joined < spec.Nodes-1; joined++ {
		if d, ok := ln.(*net.TCPListener); ok {
			d.SetDeadline(deadline)
		}
		c, err := ln.Accept()
		if err != nil {
			return abort(fmt.Errorf("cluster: %d/%d members joined: %w", joined, spec.Nodes-1, err))
		}
		cc := newCtrlConn(c, o.Timeout)
		hello, err := cc.recv("hello")
		if err != nil {
			c.Close()
			return abort(err)
		}
		switch {
		case hello.Proto != protoVersion:
			err = fmt.Errorf("cluster: member %s speaks protocol %d, coordinator %d",
				c.RemoteAddr(), hello.Proto, protoVersion)
		case hello.Node < 1 || hello.Node >= spec.Nodes:
			err = fmt.Errorf("cluster: member claims node id %d, want 1..%d", hello.Node, spec.Nodes-1)
		case members[hello.Node] != nil:
			err = fmt.Errorf("cluster: duplicate node id %d (from %s)", hello.Node, c.RemoteAddr())
		case hello.Nodes != 0 && hello.Nodes != spec.Nodes:
			err = fmt.Errorf("cluster: node %d expects %d nodes, coordinator runs %d",
				hello.Node, hello.Nodes, spec.Nodes)
		case hello.DataAddr == "":
			err = fmt.Errorf("cluster: node %d sent no data address", hello.Node)
		}
		if err != nil {
			cc.send(ctrlMsg{Type: "done", Err: err.Error()})
			c.Close()
			return abort(err)
		}
		members[hello.Node] = cc
		dataAddrs[hello.Node] = hello.DataAddr
		sever.add(c)
		fmt.Fprintf(o.Log, "coordinator: node %d joined from %s (data %s)\n",
			hello.Node, c.RemoteAddr(), hello.DataAddr)
	}
	defer func() {
		for _, m := range members {
			if m != nil {
				m.c.Close()
			}
		}
	}()

	// Config distribution, then the data mesh (the members mesh on
	// receipt of welcome; Mesh blocks until all streams are up).
	for _, m := range members[1:] {
		if err := m.send(ctrlMsg{Type: "welcome", Proto: protoVersion, Spec: &spec, DataAddrs: dataAddrs}); err != nil {
			return abort(err)
		}
	}
	conn, err := dataLn.Mesh(dataAddrs, time.Until(deadline))
	if err != nil {
		return abort(err)
	}
	defer conn.Close()
	sever.add(conn)

	met := rt.NewMetrics()
	app, cl, err := buildApp(spec, met, o.Tracer)
	if err != nil {
		return abort(err)
	}
	for id, m := range members[1:] {
		if _, err := m.recv("ready"); err != nil {
			return abort(fmt.Errorf("cluster: node %d: %w", id+1, err))
		}
	}
	for _, m := range members[1:] {
		if err := m.send(ctrlMsg{Type: "go", Seed: spec.Seed}); err != nil {
			return abort(err)
		}
	}
	fmt.Fprintf(o.Log, "coordinator: mesh up, %d nodes x %d threads running %s/%s\n",
		spec.Nodes, spec.Threads, spec.App, spec.Size)
	if o.Started != nil {
		o.Started(RunInfo{Node: 0, Spec: spec, Cluster: cl, Conn: conn, Metrics: met})
	}

	res, runErr := cl.RunNode(conn, app.Main)

	// Result collection: every member reports, run error or not, so a
	// one-node failure is attributed rather than a hang. Member metrics
	// snapshots merge into the coordinator's own in node order, so the
	// merged snapshot is deterministic for a given set of member results.
	var firstErr error
	if runErr != nil {
		firstErr = fmt.Errorf("cluster: node 0: %w", runErr)
	}
	merged := met.Snapshot()
	for id, m := range members[1:] {
		r, err := m.recv("result")
		if err != nil {
			err = fmt.Errorf("cluster: node %d: %w", id+1, err)
		} else if !r.OK {
			err = fmt.Errorf("cluster: node %d failed: %s", id+1, r.Err)
		} else {
			fmt.Fprintf(o.Log, "coordinator: node %d done in %v (%d msgs, %d KB)\n",
				id+1, time.Duration(r.ElapsedMS)*time.Millisecond, r.Msgs, r.Bytes/1024)
			ms, merr := decodeMemberMetrics(id+1, r.Metrics)
			if merr != nil {
				err = merr
			} else {
				merged.Merge(ms)
				continue
			}
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		if err := app.Check(); err != nil {
			firstErr = fmt.Errorf("cluster: %w", err)
		}
	}

	out := Outcome{Checksum: app.Checksum(), Elapsed: res.Elapsed, Net: res.Net, Metrics: merged}
	verdict := ctrlMsg{Type: "done", OK: firstErr == nil, Checksum: out.Checksum}
	if firstErr != nil {
		verdict.Err = firstErr.Error()
	}
	for _, m := range members[1:] {
		m.send(verdict)
	}
	return out, firstErr
}

// Join runs one member node: it registers with the coordinator at
// coord, receives the spec, forms the data mesh, runs the application,
// reports its result, and returns the coordinator's verdict. nodeID
// must be unique in 1..nodes-1; nodes, when non-zero, cross-checks the
// coordinator's spec.
func Join(coord string, nodeID, nodes int, opts Options) (Outcome, error) {
	o := opts.withDefaults()
	if nodeID < 1 {
		return Outcome{}, fmt.Errorf("cluster: join with node id %d (coordinator is node 0)", nodeID)
	}
	deadline := time.Now().Add(o.Timeout)
	c, err := dialControl(coord, deadline)
	if err != nil {
		return Outcome{}, err
	}
	defer c.Close()
	cc := newCtrlConn(c, o.Timeout)
	var sever closers
	stop := make(chan struct{})
	defer close(stop)
	watchInterrupt(o.Interrupt, stop, &sever)
	sever.add(c)

	dataLn, err := transport.ListenTCP(transport.NodeID(nodeID), o.DataAddr)
	if err != nil {
		return Outcome{}, err
	}
	sever.add(dataLn)
	fmt.Fprintf(o.Log, "node %d: joined %s, data on %s\n", nodeID, coord, dataLn.Addr())
	if err := cc.send(ctrlMsg{Type: "hello", Proto: protoVersion, Node: nodeID,
		Nodes: nodes, DataAddr: dataLn.Addr()}); err != nil {
		dataLn.Close()
		return Outcome{}, err
	}
	welcome, err := cc.recv("welcome")
	if err != nil {
		dataLn.Close()
		return Outcome{}, err
	}
	if welcome.Spec == nil {
		dataLn.Close()
		return Outcome{}, errors.New("cluster: welcome carried no spec")
	}
	spec := *welcome.Spec
	if nodeID >= spec.Nodes {
		dataLn.Close()
		return Outcome{}, fmt.Errorf("cluster: node id %d outside cluster of %d", nodeID, spec.Nodes)
	}

	conn, err := dataLn.Mesh(welcome.DataAddrs, time.Until(deadline))
	if err != nil {
		return Outcome{}, err
	}
	defer conn.Close()
	sever.add(conn)
	met := rt.NewMetrics()
	app, cl, err := buildApp(spec, met, o.Tracer)
	if err != nil {
		cc.send(ctrlMsg{Type: "result", Node: nodeID, OK: false, Err: err.Error()})
		return Outcome{}, err
	}
	if err := cc.send(ctrlMsg{Type: "ready", Node: nodeID}); err != nil {
		return Outcome{}, err
	}
	if _, err := cc.recv("go"); err != nil {
		return Outcome{}, err
	}
	fmt.Fprintf(o.Log, "node %d: running %s/%s on %d nodes x %d threads\n",
		nodeID, spec.App, spec.Size, spec.Nodes, spec.Threads)
	if o.Started != nil {
		o.Started(RunInfo{Node: nodeID, Spec: spec, Cluster: cl, Conn: conn, Metrics: met})
	}

	res, runErr := cl.RunNode(conn, app.Main)
	snap := met.Snapshot()
	result := ctrlMsg{Type: "result", Node: nodeID, OK: runErr == nil,
		ElapsedMS: res.Elapsed.Milliseconds(),
		Msgs:      res.Net.TotalMsgs(), Bytes: res.Net.TotalBytes()}
	if raw, merr := json.Marshal(snap); merr == nil {
		result.Metrics = raw
	}
	if runErr != nil {
		result.Err = runErr.Error()
	}
	if err := cc.send(result); err != nil {
		if runErr != nil {
			return Outcome{}, runErr
		}
		return Outcome{}, err
	}
	done, err := cc.recv("done")
	if err != nil {
		if runErr != nil {
			return Outcome{}, runErr
		}
		return Outcome{}, err
	}
	out := Outcome{Checksum: done.Checksum, Elapsed: res.Elapsed, Net: res.Net, Metrics: snap}
	if !done.OK {
		return out, fmt.Errorf("cluster: run failed: %s", done.Err)
	}
	if runErr != nil {
		return out, runErr
	}
	fmt.Fprintf(o.Log, "node %d: done in %v, global checksum %v\n", nodeID, res.Elapsed, out.Checksum)
	return out, nil
}

// dialControl dials the coordinator, retrying with backoff until the
// deadline — members may start before the coordinator's listener is up.
func dialControl(coord string, deadline time.Time) (net.Conn, error) {
	backoff := 20 * time.Millisecond
	for {
		d := net.Dialer{Deadline: deadline}
		c, err := d.Dial("tcp", coord)
		if err == nil {
			return c, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("cluster: dial coordinator %s: %w", coord, err)
		}
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// ErrChecksum marks an oracle-comparison failure in cvm-node -oracle.
var ErrChecksum = errors.New("cluster: checksum mismatch")
