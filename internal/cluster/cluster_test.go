package cluster

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/rt"
	"cvm/internal/transport"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{App: "sor", Size: "test", Nodes: 4, Threads: 2, Page: 4096}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, mut := range map[string]func(*Spec){
		"zero nodes":          func(s *Spec) { s.Nodes = 0 },
		"zero threads":        func(s *Spec) { s.Threads = 0 },
		"bad page":            func(s *Spec) { s.Page = 12 },
		"unknown app":         func(s *Spec) { s.App = "nosuch" },
		"unknown size":        func(s *Spec) { s.Size = "huge" },
		"unsupported threads": func(s *Spec) { s.App = "ocean"; s.Threads = 3 },
	} {
		s := good
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: spec %+v validated", name, s)
		}
	}
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// runCluster drives a full Coordinate/Join cluster in-process and
// returns the coordinator's outcome and every member's.
func runCluster(t *testing.T, spec Spec) (Outcome, []Outcome) {
	t.Helper()
	addr := freePort(t)
	opts := Options{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	var coord Outcome
	var coordErr error
	members := make([]Outcome, spec.Nodes)
	errs := make([]error, spec.Nodes)
	wg.Add(1)
	go func() {
		defer wg.Done()
		coord, coordErr = Coordinate(addr, spec, opts)
	}()
	for id := 1; id < spec.Nodes; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			members[id], errs[id] = Join(addr, id, spec.Nodes, opts)
		}(id)
	}
	wg.Wait()
	if coordErr != nil {
		t.Fatalf("coordinator: %v", coordErr)
	}
	for id := 1; id < spec.Nodes; id++ {
		if errs[id] != nil {
			t.Fatalf("node %d: %v", id, errs[id])
		}
	}
	return coord, members[1:]
}

// TestClusterMatchesSimulator boots a 4-process-equivalent cluster for
// two SPLASH applications — the lock-bound Water-Nsq and the
// barrier-bound SOR — and requires the TCP cluster's checksum to equal
// the deterministic simulator's exactly.
func TestClusterMatchesSimulator(t *testing.T) {
	for _, app := range []string{"sor", "waternsq"} {
		app := app
		t.Run(app, func(t *testing.T) {
			spec := Spec{App: app, Size: "test", Nodes: 4, Threads: 2, Page: 4096, Seed: 1}
			coord, members := runCluster(t, spec)
			_, simSum, err := apps.RunConfigFull(app, apps.SizeTest,
				cvm.DefaultConfig(spec.Nodes, spec.Threads), 0)
			if err != nil {
				t.Fatal(err)
			}
			if coord.Checksum != simSum {
				t.Fatalf("cluster checksum %v, simulator %v", coord.Checksum, simSum)
			}
			for i, m := range members {
				if m.Checksum != simSum {
					t.Errorf("node %d got checksum %v, want %v", i+1, m.Checksum, simSum)
				}
				if m.Net.TotalMsgs() == 0 {
					t.Errorf("node %d reports zero traffic", i+1)
				}
			}
		})
	}
}

// TestCoordinatorRejectsBadHello exercises the membership validation
// paths end to end: the faulty member gets the reason over the wire and
// the coordinator aborts rather than hangs.
func TestCoordinatorRejectsBadHello(t *testing.T) {
	for name, tc := range map[string]struct {
		nodeID, nodes int
		want          string
	}{
		"id out of range": {nodeID: 9, nodes: 0, want: "node id 9"},
		"nodes mismatch":  {nodeID: 1, nodes: 3, want: "expects 3 nodes"},
	} {
		t.Run(name, func(t *testing.T) {
			addr := freePort(t)
			opts := Options{Timeout: 10 * time.Second}
			spec := Spec{App: "sor", Size: "test", Nodes: 2, Threads: 1, Page: 4096}
			var wg sync.WaitGroup
			var coordErr, memberErr error
			wg.Add(2)
			go func() {
				defer wg.Done()
				_, coordErr = Coordinate(addr, spec, opts)
			}()
			go func() {
				defer wg.Done()
				_, memberErr = Join(addr, tc.nodeID, tc.nodes, opts)
			}()
			wg.Wait()
			if coordErr == nil || !strings.Contains(coordErr.Error(), tc.want) {
				t.Errorf("coordinator error = %v, want %q", coordErr, tc.want)
			}
			if memberErr == nil || !strings.Contains(memberErr.Error(), tc.want) {
				t.Errorf("member error = %v, want %q", memberErr, tc.want)
			}
		})
	}
}

func TestJoinValidatesNodeID(t *testing.T) {
	if _, err := Join("127.0.0.1:1", 0, 2, Options{Timeout: time.Second}); err == nil ||
		!strings.Contains(err.Error(), "node id 0") {
		t.Errorf("Join with id 0 = %v, want node id error", err)
	}
}

// fakeMember joins a cluster as node id and follows the protocol up to
// (and including) the data mesh, then hands control to the test to
// deviate: the failure-path tests use it to die, stall, or corrupt the
// stream at a chosen step.
type fakeMember struct {
	t      *testing.T
	cc     *ctrlConn
	raw    net.Conn
	dataLn *transport.TCPListener
	conn   transport.Conn
	spec   Spec
}

func joinFake(t *testing.T, coord string, id int) *fakeMember {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	c, err := dialControl(coord, deadline)
	if err != nil {
		t.Fatal(err)
	}
	dataLn, err := transport.ListenTCP(transport.NodeID(id), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cc := newCtrlConn(c, 10*time.Second)
	if err := cc.send(ctrlMsg{Type: "hello", Proto: protoVersion, Node: id, DataAddr: dataLn.Addr()}); err != nil {
		t.Fatal(err)
	}
	welcome, err := cc.recv("welcome")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := dataLn.Mesh(welcome.DataAddrs, time.Until(deadline))
	if err != nil {
		t.Fatal(err)
	}
	fm := &fakeMember{t: t, cc: cc, raw: c, dataLn: dataLn, conn: conn, spec: *welcome.Spec}
	t.Cleanup(fm.close)
	return fm
}

func (fm *fakeMember) close() {
	fm.raw.Close()
	fm.conn.Close()
	fm.dataLn.Close()
}

// runApp plays the member's part of the DSM run so the coordinator's
// own RunNode completes and the failure can be injected afterwards.
func (fm *fakeMember) runApp() {
	fm.t.Helper()
	app, cl, err := buildApp(fm.spec, rt.NewMetrics(), nil)
	if err != nil {
		fm.t.Fatal(err)
	}
	if _, err := cl.RunNode(fm.conn, app.Main); err != nil {
		fm.t.Fatal(err)
	}
}

func coordinateAsync(t *testing.T, addr string, spec Spec, timeout time.Duration) <-chan error {
	t.Helper()
	errCh := make(chan error, 1)
	go func() {
		_, err := Coordinate(addr, spec, Options{Timeout: timeout})
		errCh <- err
	}()
	return errCh
}

func wantCoordErr(t *testing.T, errCh <-chan error, wait time.Duration, fragments ...string) {
	t.Helper()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatalf("coordinator succeeded, want error mentioning %q", fragments)
		}
		for _, frag := range fragments {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("coordinator error %q does not mention %q", err, frag)
			}
		}
	case <-time.After(wait):
		t.Fatal("coordinator still blocked; failure path hangs instead of failing")
	}
}

// TestCoordinatorStepDeadline: a member that meshes but never sends
// ready must trip the coordinator's per-step deadline with the failing
// node named, not hang the cluster.
func TestCoordinatorStepDeadline(t *testing.T) {
	addr := freePort(t)
	spec := Spec{App: "sor", Size: "test", Nodes: 2, Threads: 1, Page: 4096}
	errCh := coordinateAsync(t, addr, spec, 2*time.Second)
	fm := joinFake(t, addr, 1)
	_ = fm // meshed, then silent: never sends ready
	wantCoordErr(t, errCh, 15*time.Second, "node 1", "ready")
}

// TestCoordinatorMalformedResult: a member that runs the app but then
// corrupts its result line must fail the run with the node named.
func TestCoordinatorMalformedResult(t *testing.T) {
	addr := freePort(t)
	spec := Spec{App: "sor", Size: "test", Nodes: 2, Threads: 1, Page: 4096}
	errCh := coordinateAsync(t, addr, spec, 10*time.Second)
	fm := joinFake(t, addr, 1)
	if err := fm.cc.send(ctrlMsg{Type: "ready", Node: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := fm.cc.recv("go"); err != nil {
		t.Fatal(err)
	}
	fm.runApp()
	if _, err := fm.raw.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	wantCoordErr(t, errCh, 30*time.Second, "node 1")
}

// TestCoordinatorResultWithoutMetrics: a proto-2 result must carry the
// member's metrics snapshot; its absence is attributed, not ignored.
func TestCoordinatorResultWithoutMetrics(t *testing.T) {
	addr := freePort(t)
	spec := Spec{App: "sor", Size: "test", Nodes: 2, Threads: 1, Page: 4096}
	errCh := coordinateAsync(t, addr, spec, 10*time.Second)
	fm := joinFake(t, addr, 1)
	if err := fm.cc.send(ctrlMsg{Type: "ready", Node: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := fm.cc.recv("go"); err != nil {
		t.Fatal(err)
	}
	fm.runApp()
	if err := fm.cc.send(ctrlMsg{Type: "result", Node: 1, OK: true}); err != nil {
		t.Fatal(err)
	}
	wantCoordErr(t, errCh, 30*time.Second, "node 1", "no metrics")
}

// TestCoordinatorMemberDiesBeforeGo: a member that vanishes between
// ready and go must surface as an attributed failure — its death tears
// down the data mesh, so the error names the dead peer one way or
// another.
func TestCoordinatorMemberDiesBeforeGo(t *testing.T) {
	addr := freePort(t)
	spec := Spec{App: "sor", Size: "test", Nodes: 2, Threads: 1, Page: 4096}
	errCh := coordinateAsync(t, addr, spec, 5*time.Second)
	fm := joinFake(t, addr, 1)
	if err := fm.cc.send(ctrlMsg{Type: "ready", Node: 1}); err != nil {
		t.Fatal(err)
	}
	fm.close()
	wantCoordErr(t, errCh, 30*time.Second, "node 1")
}
