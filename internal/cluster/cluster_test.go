package cluster

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cvm"
	"cvm/internal/apps"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{App: "sor", Size: "test", Nodes: 4, Threads: 2, Page: 4096}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, mut := range map[string]func(*Spec){
		"zero nodes":          func(s *Spec) { s.Nodes = 0 },
		"zero threads":        func(s *Spec) { s.Threads = 0 },
		"bad page":            func(s *Spec) { s.Page = 12 },
		"unknown app":         func(s *Spec) { s.App = "nosuch" },
		"unknown size":        func(s *Spec) { s.Size = "huge" },
		"unsupported threads": func(s *Spec) { s.App = "ocean"; s.Threads = 3 },
	} {
		s := good
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: spec %+v validated", name, s)
		}
	}
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// runCluster drives a full Coordinate/Join cluster in-process and
// returns the coordinator's outcome and every member's.
func runCluster(t *testing.T, spec Spec) (Outcome, []Outcome) {
	t.Helper()
	addr := freePort(t)
	opts := Options{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	var coord Outcome
	var coordErr error
	members := make([]Outcome, spec.Nodes)
	errs := make([]error, spec.Nodes)
	wg.Add(1)
	go func() {
		defer wg.Done()
		coord, coordErr = Coordinate(addr, spec, opts)
	}()
	for id := 1; id < spec.Nodes; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			members[id], errs[id] = Join(addr, id, spec.Nodes, opts)
		}(id)
	}
	wg.Wait()
	if coordErr != nil {
		t.Fatalf("coordinator: %v", coordErr)
	}
	for id := 1; id < spec.Nodes; id++ {
		if errs[id] != nil {
			t.Fatalf("node %d: %v", id, errs[id])
		}
	}
	return coord, members[1:]
}

// TestClusterMatchesSimulator boots a 4-process-equivalent cluster for
// two SPLASH applications — the lock-bound Water-Nsq and the
// barrier-bound SOR — and requires the TCP cluster's checksum to equal
// the deterministic simulator's exactly.
func TestClusterMatchesSimulator(t *testing.T) {
	for _, app := range []string{"sor", "waternsq"} {
		app := app
		t.Run(app, func(t *testing.T) {
			spec := Spec{App: app, Size: "test", Nodes: 4, Threads: 2, Page: 4096, Seed: 1}
			coord, members := runCluster(t, spec)
			_, simSum, err := apps.RunConfigFull(app, apps.SizeTest,
				cvm.DefaultConfig(spec.Nodes, spec.Threads), 0)
			if err != nil {
				t.Fatal(err)
			}
			if coord.Checksum != simSum {
				t.Fatalf("cluster checksum %v, simulator %v", coord.Checksum, simSum)
			}
			for i, m := range members {
				if m.Checksum != simSum {
					t.Errorf("node %d got checksum %v, want %v", i+1, m.Checksum, simSum)
				}
				if m.Net.TotalMsgs() == 0 {
					t.Errorf("node %d reports zero traffic", i+1)
				}
			}
		})
	}
}

// TestCoordinatorRejectsBadHello exercises the membership validation
// paths end to end: the faulty member gets the reason over the wire and
// the coordinator aborts rather than hangs.
func TestCoordinatorRejectsBadHello(t *testing.T) {
	for name, tc := range map[string]struct {
		nodeID, nodes int
		want          string
	}{
		"id out of range": {nodeID: 9, nodes: 0, want: "node id 9"},
		"nodes mismatch":  {nodeID: 1, nodes: 3, want: "expects 3 nodes"},
	} {
		t.Run(name, func(t *testing.T) {
			addr := freePort(t)
			opts := Options{Timeout: 10 * time.Second}
			spec := Spec{App: "sor", Size: "test", Nodes: 2, Threads: 1, Page: 4096}
			var wg sync.WaitGroup
			var coordErr, memberErr error
			wg.Add(2)
			go func() {
				defer wg.Done()
				_, coordErr = Coordinate(addr, spec, opts)
			}()
			go func() {
				defer wg.Done()
				_, memberErr = Join(addr, tc.nodeID, tc.nodes, opts)
			}()
			wg.Wait()
			if coordErr == nil || !strings.Contains(coordErr.Error(), tc.want) {
				t.Errorf("coordinator error = %v, want %q", coordErr, tc.want)
			}
			if memberErr == nil || !strings.Contains(memberErr.Error(), tc.want) {
				t.Errorf("member error = %v, want %q", memberErr, tc.want)
			}
		})
	}
}

func TestJoinValidatesNodeID(t *testing.T) {
	if _, err := Join("127.0.0.1:1", 0, 2, Options{Timeout: time.Second}); err == nil ||
		!strings.Contains(err.Error(), "node id 0") {
		t.Errorf("Join with id 0 = %v, want node id error", err)
	}
}
