// Package transport owns the vocabulary and the byte-level interfaces
// shared by every interconnect backend of the DSM.
//
// Two layers of "transport" exist in this codebase, and this package is
// the boundary between them:
//
//   - The virtual-time, closure-level layer: the protocol engine in
//     internal/core addresses peers by NodeID, labels traffic with a
//     Class, and hands the interconnect a delivery closure. The
//     deterministic simulator (internal/netsim) implements that contract
//     behind core.Interconnect; it is the oracle every other backend is
//     measured against.
//
//   - The real-time, byte-level layer: Conn moves length-delimited
//     Messages between OS threads or OS processes. The loopback backend
//     (goroutine pairs and real channels, this package) and the TCP
//     backend (tcp.go) implement Conn; the real-execution runtime in
//     internal/rt maps the coherence protocol onto those bytes.
//
// The vocabulary types (NodeID, Class, Stats) live here so that the
// protocol engine, the simulator, and the real backends agree on them
// without the engine importing any backend concretely.
package transport

import (
	"errors"
	"fmt"
)

// NodeID identifies a node (processor) in a cluster, simulated or real.
type NodeID int

// Class categorizes messages for Table 2 accounting. The classes are
// shared by every backend so traffic tables mean the same thing over the
// simulator, the loopback mesh, and a TCP cluster.
type Class uint8

// Message classes. Data-carrying traffic (page and diff requests and
// replies) is classed ClassDiff, following the paper: "Diff messages are
// used to satisfy remote data requests."
const (
	ClassBarrier Class = iota
	ClassLock
	ClassDiff
	// ClassUpdate carries eager diff pushes for pages running in the
	// adaptive update mode (producer→subscriber, no request leg).
	ClassUpdate
	// ClassMigrate carries a thread's continuation state when the
	// adaptive controller re-homes it next to its hottest pages.
	ClassMigrate
	NumClasses // count sentinel; keep last
)

// String returns the Table 2 column name for the class.
func (c Class) String() string {
	switch c {
	case ClassBarrier:
		return "Barrier"
	case ClassLock:
		return "Lock"
	case ClassDiff:
		return "Diff"
	case ClassUpdate:
		return "Update"
	case ClassMigrate:
		return "Migrate"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Classes returns every message class in Table 2 column order. Tests use
// it to guard that new classes are reflected in the accounting arrays and
// the Table 2 writer.
func Classes() []Class {
	cs := make([]Class, NumClasses)
	for i := range cs {
		cs[i] = Class(i)
	}
	return cs
}

// Stats holds cumulative per-class message and byte counts, plus a
// per-destination breakdown (Peers is indexed by destination NodeID;
// the self entry stays zero).
type Stats struct {
	Msgs  [NumClasses]int64
	Bytes [NumClasses]int64
	Peers []PeerStats
}

// PeerStats is the sent-side traffic toward one destination node.
type PeerStats struct {
	Msgs  [NumClasses]int64
	Bytes [NumClasses]int64
}

// TotalMsgs reports the peer's total message count across classes.
func (p PeerStats) TotalMsgs() int64 {
	var n int64
	for _, m := range p.Msgs {
		n += m
	}
	return n
}

// TotalBytes reports the peer's total payload bytes across classes.
func (p PeerStats) TotalBytes() int64 {
	var n int64
	for _, b := range p.Bytes {
		n += b
	}
	return n
}

// Equal reports whether two stats carry identical counts; it replaces
// == comparison, which the Peers slice rules out.
func (s Stats) Equal(o Stats) bool {
	if s.Msgs != o.Msgs || s.Bytes != o.Bytes || len(s.Peers) != len(o.Peers) {
		return false
	}
	for i := range s.Peers {
		if s.Peers[i] != o.Peers[i] {
			return false
		}
	}
	return true
}

// TotalMsgs reports the total message count across classes.
func (s Stats) TotalMsgs() int64 {
	var n int64
	for _, m := range s.Msgs {
		n += m
	}
	return n
}

// TotalBytes reports the total payload bytes across classes.
func (s Stats) TotalBytes() int64 {
	var n int64
	for _, b := range s.Bytes {
		n += b
	}
	return n
}

// ErrClosed is returned by Conn operations after Close (or after the
// peer went away). Errors returned by a Conn always name the backend and
// the peer so multi-process failures are attributable.
var ErrClosed = errors.New("transport: connection closed")

// Message is one protocol datagram at the byte layer. Type is owned by
// the layer above (internal/rt defines the DSM message types); the
// transport only routes and counts it.
type Message struct {
	From    NodeID
	To      NodeID
	Class   Class
	Type    uint8
	Payload []byte
}

// Conn is one node's attachment to a cluster interconnect at the byte
// level. Send must not block indefinitely on a slow receiver (backends
// queue outbound traffic), or two nodes flushing into each other would
// deadlock the coherence protocol. Recv blocks until a message arrives
// or the conn is closed.
//
// Implementations must allow Send and Recv from different goroutines;
// concurrent Sends must also be safe (worker threads and the protocol
// dispatcher both transmit).
type Conn interface {
	// Self reports the node this endpoint belongs to.
	Self() NodeID
	// Nodes reports the cluster size.
	Nodes() int
	// Backend names the implementation ("loopback", "tcp") for error
	// attribution and run reports.
	Backend() string
	// PeerAddr describes the peer's address in backend terms ("node 3"
	// for loopback, "127.0.0.1:7001" for TCP) for error attribution.
	PeerAddr(to NodeID) string
	// Send transmits m to m.To. The payload is owned by the transport
	// after Send returns; callers must not reuse it.
	Send(m Message) error
	// Recv returns the next inbound message, blocking until one arrives.
	// It returns ErrClosed (wrapped) once the conn is closed and the
	// inbound queue has drained.
	Recv() (Message, error)
	// Stats snapshots the per-class traffic counters (sent side).
	Stats() Stats
	// Close tears the endpoint down and unblocks Recv.
	Close() error
}
