package transport

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// mesh builds an N-node mesh of the named backend, with cleanup.
func mesh(t *testing.T, backend string, nodes int) []Conn {
	t.Helper()
	switch backend {
	case "loopback":
		conns := NewLoopback(nodes)
		t.Cleanup(func() {
			for _, c := range conns {
				c.Close()
			}
		})
		return conns
	case "tcp":
		lns := make([]*TCPListener, nodes)
		addrs := make([]string, nodes)
		for i := range lns {
			ln, err := ListenTCP(NodeID(i), "127.0.0.1:0")
			if err != nil {
				t.Fatalf("listen %d: %v", i, err)
			}
			lns[i] = ln
			addrs[i] = ln.Addr()
		}
		conns := make([]Conn, nodes)
		var wg sync.WaitGroup
		errs := make([]error, nodes)
		for i := range lns {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				conns[i], errs[i] = lns[i].Mesh(addrs, 10*time.Second)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("mesh %d: %v", i, err)
			}
		}
		t.Cleanup(func() {
			for _, c := range conns {
				c.Close()
			}
		})
		return conns
	default:
		t.Fatalf("unknown backend %q", backend)
		return nil
	}
}

func backends() []string { return []string{"loopback", "tcp"} }

func TestConnIdentity(t *testing.T) {
	for _, b := range backends() {
		t.Run(b, func(t *testing.T) {
			conns := mesh(t, b, 3)
			for i, c := range conns {
				if c.Self() != NodeID(i) {
					t.Errorf("conn %d: Self() = %d", i, c.Self())
				}
				if c.Nodes() != 3 {
					t.Errorf("conn %d: Nodes() = %d, want 3", i, c.Nodes())
				}
				if c.Backend() != b {
					t.Errorf("conn %d: Backend() = %q, want %q", i, c.Backend(), b)
				}
				if c.PeerAddr((NodeID(i)+1)%3) == "" {
					t.Errorf("conn %d: empty PeerAddr", i)
				}
			}
		})
	}
}

func TestConnPingPong(t *testing.T) {
	for _, b := range backends() {
		t.Run(b, func(t *testing.T) {
			conns := mesh(t, b, 2)
			payload := []byte("ping-payload")
			if err := conns[0].Send(Message{To: 1, Class: ClassLock, Type: 7, Payload: payload}); err != nil {
				t.Fatal(err)
			}
			m, err := conns[1].Recv()
			if err != nil {
				t.Fatal(err)
			}
			if m.From != 0 || m.To != 1 || m.Class != ClassLock || m.Type != 7 || string(m.Payload) != "ping-payload" {
				t.Fatalf("received %+v", m)
			}
			if err := conns[1].Send(Message{To: 0, Class: ClassDiff, Type: 9, Payload: nil}); err != nil {
				t.Fatal(err)
			}
			m, err = conns[0].Recv()
			if err != nil {
				t.Fatal(err)
			}
			if m.From != 1 || m.Class != ClassDiff || m.Type != 9 || len(m.Payload) != 0 {
				t.Fatalf("received %+v", m)
			}
		})
	}
}

func TestConnPairFIFO(t *testing.T) {
	const msgs = 200
	for _, b := range backends() {
		t.Run(b, func(t *testing.T) {
			conns := mesh(t, b, 2)
			go func() {
				for k := 0; k < msgs; k++ {
					conns[0].Send(Message{To: 1, Class: ClassDiff, Type: 1,
						Payload: []byte{byte(k), byte(k >> 8)}})
				}
			}()
			for k := 0; k < msgs; k++ {
				m, err := conns[1].Recv()
				if err != nil {
					t.Fatal(err)
				}
				if got := int(m.Payload[0]) | int(m.Payload[1])<<8; got != k {
					t.Fatalf("message %d arrived when %d expected: same-pair FIFO broken", got, k)
				}
			}
		})
	}
}

// TestConnAllToAll floods a 4-node mesh from every node to every peer
// concurrently; run under -race this is the backend's thread-safety
// proof. Per-pair FIFO must hold under the contention.
func TestConnAllToAll(t *testing.T) {
	const nodes, msgs = 4, 100
	for _, b := range backends() {
		t.Run(b, func(t *testing.T) {
			conns := mesh(t, b, nodes)
			var wg sync.WaitGroup
			for i := range conns {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for k := 0; k < msgs; k++ {
						for j := range conns {
							if j == i {
								continue
							}
							err := conns[i].Send(Message{To: NodeID(j), Class: ClassBarrier,
								Type: 2, Payload: []byte{byte(k)}})
							if err != nil {
								t.Errorf("send %d->%d: %v", i, j, err)
								return
							}
						}
					}
				}(i)
			}
			for i := range conns {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					next := make([]int, nodes)
					for n := 0; n < (nodes-1)*msgs; n++ {
						m, err := conns[i].Recv()
						if err != nil {
							t.Errorf("recv at %d: %v", i, err)
							return
						}
						if int(m.Payload[0]) != next[m.From] {
							t.Errorf("at %d from %d: got seq %d, want %d",
								i, m.From, m.Payload[0], next[m.From])
							return
						}
						next[m.From]++
					}
				}(i)
			}
			wg.Wait()
		})
	}
}

func TestConnStats(t *testing.T) {
	for _, b := range backends() {
		t.Run(b, func(t *testing.T) {
			conns := mesh(t, b, 2)
			conns[0].Send(Message{To: 1, Class: ClassLock, Payload: make([]byte, 10)})
			conns[0].Send(Message{To: 1, Class: ClassDiff, Payload: make([]byte, 100)})
			conns[0].Send(Message{To: 1, Class: ClassDiff, Payload: make([]byte, 50)})
			st := conns[0].Stats()
			if st.Msgs[ClassLock] != 1 || st.Msgs[ClassDiff] != 2 || st.Msgs[ClassBarrier] != 0 {
				t.Errorf("msgs = %v", st.Msgs)
			}
			if st.Bytes[ClassLock] != 10 || st.Bytes[ClassDiff] != 150 {
				t.Errorf("bytes = %v", st.Bytes)
			}
			if st.TotalMsgs() != 3 || st.TotalBytes() != 160 {
				t.Errorf("totals = %d msgs %d bytes", st.TotalMsgs(), st.TotalBytes())
			}
		})
	}
}

func TestConnCloseUnblocksRecv(t *testing.T) {
	for _, b := range backends() {
		t.Run(b, func(t *testing.T) {
			conns := mesh(t, b, 2)
			done := make(chan error, 1)
			go func() {
				_, err := conns[0].Recv()
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			conns[0].Close()
			select {
			case err := <-done:
				if !errors.Is(err, ErrClosed) {
					t.Errorf("Recv after close = %v, want ErrClosed", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Recv did not unblock on Close")
			}
		})
	}
}

// TestConnErrorsNameBackendAndPeer is the attribution satellite: a
// transport failure must identify which backend and which peer address
// failed, so multi-process failures are diagnosable from the text.
func TestConnErrorsNameBackendAndPeer(t *testing.T) {
	for _, b := range backends() {
		t.Run(b, func(t *testing.T) {
			conns := mesh(t, b, 2)
			conns[1].Close()
			if b == "loopback" {
				// Loopback reports closure at the sender.
				err := conns[0].Send(Message{To: 1, Class: ClassLock})
				if err == nil {
					t.Fatal("send to closed peer succeeded")
				}
				if !strings.Contains(err.Error(), "loopback") ||
					!strings.Contains(err.Error(), "node 1") {
					t.Errorf("error %q does not name backend and peer", err)
				}
				return
			}
			// TCP reports the dead peer at the reader; the writer may
			// buffer. Recv must surface an error naming the peer address.
			deadline := time.After(5 * time.Second)
			errC := make(chan error, 1)
			go func() {
				for {
					if _, err := conns[0].Recv(); err != nil {
						errC <- err
						return
					}
				}
			}()
			select {
			case err := <-errC:
				if !strings.Contains(err.Error(), "tcp") ||
					!strings.Contains(err.Error(), conns[0].PeerAddr(1)) {
					t.Errorf("error %q does not name backend and peer address", err)
				}
			case <-deadline:
				t.Fatal("no error surfaced after peer close")
			}
		})
	}
}

func TestConnRejectsInvalidPeer(t *testing.T) {
	for _, b := range backends() {
		t.Run(b, func(t *testing.T) {
			conns := mesh(t, b, 2)
			for _, to := range []NodeID{-1, 2, 0} { // 0 == self
				if err := conns[0].Send(Message{To: to}); err == nil {
					t.Errorf("send to %d succeeded, want error", to)
				}
			}
		})
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{ClassBarrier: "Barrier", ClassLock: "Lock", ClassDiff: "Diff"}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if s := Class(200).String(); s != fmt.Sprintf("Class(%d)", 200) {
		t.Errorf("out-of-range class = %q", s)
	}
}
