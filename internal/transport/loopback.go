package transport

import (
	"fmt"
	"sync"
)

// loopbackConn is one node's endpoint of an in-process channel mesh. All
// N endpoints share the mesh; each Send appends to the receiver's
// unbounded inbox under the receiver's lock and signals its condition
// variable. An unbounded queue is deliberate: the coherence protocol has
// nodes flushing into each other symmetrically at barriers, and a
// bounded queue without a drain running would deadlock the mesh
// (distributed head-of-line blocking). Memory is bounded in practice by
// the protocol's request/reply discipline.
type loopbackConn struct {
	self  NodeID
	peers []*loopbackConn

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []Message
	closed bool

	statsMu sync.Mutex
	stats   Stats
}

// NewLoopback builds an in-process mesh of nodes endpoints. Endpoint i
// belongs to node i. Every pair of endpoints is connected; messages
// between a pair are FIFO (one lock per receiver), messages from
// different senders interleave arbitrarily — like a real interconnect.
func NewLoopback(nodes int) []Conn {
	if nodes < 1 {
		panic(fmt.Sprintf("transport: NewLoopback(%d)", nodes))
	}
	mesh := make([]*loopbackConn, nodes)
	for i := range mesh {
		c := &loopbackConn{self: NodeID(i), peers: mesh}
		c.cond = sync.NewCond(&c.mu)
		c.stats.Peers = make([]PeerStats, nodes)
		mesh[i] = c
	}
	conns := make([]Conn, nodes)
	for i, c := range mesh {
		conns[i] = c
	}
	return conns
}

func (c *loopbackConn) Self() NodeID    { return c.self }
func (c *loopbackConn) Nodes() int      { return len(c.peers) }
func (c *loopbackConn) Backend() string { return "loopback" }

func (c *loopbackConn) PeerAddr(to NodeID) string {
	return fmt.Sprintf("loopback node %d", to)
}

func (c *loopbackConn) Send(m Message) error {
	if m.To < 0 || int(m.To) >= len(c.peers) || m.To == c.self {
		return fmt.Errorf("loopback node %d: send to invalid peer %d", c.self, m.To)
	}
	m.From = c.self
	p := c.peers[m.To]
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("loopback node %d -> %s: %w", c.self, c.PeerAddr(m.To), ErrClosed)
	}
	p.inbox = append(p.inbox, m)
	p.mu.Unlock()
	p.cond.Signal()
	c.statsMu.Lock()
	c.stats.Msgs[m.Class]++
	c.stats.Bytes[m.Class] += int64(len(m.Payload))
	c.stats.Peers[m.To].Msgs[m.Class]++
	c.stats.Peers[m.To].Bytes[m.Class] += int64(len(m.Payload))
	c.statsMu.Unlock()
	return nil
}

func (c *loopbackConn) Recv() (Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.inbox) == 0 && !c.closed {
		c.cond.Wait()
	}
	if len(c.inbox) == 0 {
		return Message{}, fmt.Errorf("loopback node %d: recv: %w", c.self, ErrClosed)
	}
	m := c.inbox[0]
	// Shift rather than reslice so the backing array is reusable once
	// drained; the queue stays small in steady state.
	n := copy(c.inbox, c.inbox[1:])
	c.inbox[n] = Message{}
	c.inbox = c.inbox[:n]
	return m, nil
}

func (c *loopbackConn) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	out := c.stats
	out.Peers = append([]PeerStats(nil), c.stats.Peers...)
	return out
}

func (c *loopbackConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cond.Broadcast()
	return nil
}
