package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The TCP backend connects one OS process per node into a full mesh of
// length-prefixed streams. Frame layout, after a 4-byte big-endian
// length covering the rest:
//
//	from   uint32
//	class  uint8
//	type   uint8
//	payload (length-6 bytes)
//
// Mesh formation is deterministic: every node listens; node i dials
// every peer j < i and accepts from every peer j > i, so each unordered
// pair uses exactly one stream. The dialer identifies itself with a
// hello frame (class=helloClass, from=i) before any traffic. Dials
// retry with backoff until the deadline, covering peers whose listeners
// come up later.
//
// TCP gives per-stream FIFO and reliable delivery, which is strictly
// stronger than the protocol needs (it tolerates reordering across
// streams). Like the loopback backend, outbound traffic queues without
// bound per peer so Send never blocks — symmetric barrier flushes would
// otherwise deadlock head-to-head.

// helloClass marks the mesh-formation hello frame; it is outside the
// protocol Class space on purpose.
const helloClass = 0xff

// tcpHeader is the fixed frame header size after the length prefix.
const tcpHeader = 6

// maxFrame bounds a frame's length field: a defense against a corrupt
// or hostile peer making us allocate gigabytes. The DSM's largest
// messages are a page plus protocol metadata, far below this.
const maxFrame = 64 << 20

// TCPListener is a bound but not yet meshed TCP endpoint. Binding first
// and meshing later lets a control plane collect every node's actual
// address (port 0 resolves at bind time) before any dial starts.
type TCPListener struct {
	self NodeID
	ln   *net.TCPListener
}

// ListenTCP binds node self's data listener on addr (host:port;
// port 0 picks a free port).
func ListenTCP(self NodeID, addr string) (*TCPListener, error) {
	ta, err := net.ResolveTCPAddr("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp node %d: listen %s: %w", self, addr, err)
	}
	ln, err := net.ListenTCP("tcp", ta)
	if err != nil {
		return nil, fmt.Errorf("tcp node %d: listen %s: %w", self, addr, err)
	}
	return &TCPListener{self: self, ln: ln}, nil
}

// Addr reports the bound address (with the resolved port).
func (l *TCPListener) Addr() string { return l.ln.Addr().String() }

// Close releases the listener without forming a mesh (error paths).
func (l *TCPListener) Close() error { return l.ln.Close() }

// Mesh completes the full mesh. addrs[i] is node i's data address;
// len(addrs) is the cluster size and addrs[l.self] must be this
// listener. Mesh blocks until every stream is up or the deadline
// passes. On success the listener is consumed by the returned Conn.
func (l *TCPListener) Mesh(addrs []string, timeout time.Duration) (Conn, error) {
	nodes := len(addrs)
	self := int(l.self)
	if self >= nodes {
		return nil, fmt.Errorf("tcp node %d: only %d addresses", l.self, nodes)
	}
	c := &tcpConn{
		self:  l.self,
		addrs: append([]string(nil), addrs...),
		ln:    l.ln,
		conns: make([]*net.TCPConn, nodes),
		outbx: make([]*outQueue, nodes),
	}
	c.stats.Peers = make([]PeerStats, nodes)
	c.cond = sync.NewCond(&c.mu)
	deadline := time.Now().Add(timeout)

	// Accept from higher-id peers and dial lower-id peers concurrently:
	// with every node doing both, ordering either phase first can
	// deadlock (node 0 only accepts, node N-1 only dials).
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := c.acceptPeers(nodes-1-self, deadline); err != nil {
			errs <- err
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < self; j++ {
			conn, err := dialPeer(l.self, NodeID(j), addrs[j], deadline)
			if err != nil {
				errs <- err
				return
			}
			c.mu.Lock()
			c.conns[j] = conn
			c.mu.Unlock()
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		c.teardown()
		return nil, err
	default:
	}
	for j := range c.conns {
		if j == self {
			continue
		}
		q := newOutQueue()
		c.outbx[j] = q
		c.wwg.Add(1)
		c.rwg.Add(1)
		go c.writeLoop(NodeID(j), c.conns[j], q)
		go c.readLoop(NodeID(j), c.conns[j])
	}
	return c, nil
}

// acceptPeers accepts want hello-identified streams from higher-id peers.
func (c *tcpConn) acceptPeers(want int, deadline time.Time) error {
	for k := 0; k < want; k++ {
		c.ln.SetDeadline(deadline)
		conn, err := c.ln.AcceptTCP()
		if err != nil {
			return fmt.Errorf("tcp node %d: accept (%d/%d peers): %w", c.self, k, want, err)
		}
		conn.SetReadDeadline(deadline)
		from, class, _, _, err := readFrame(conn)
		if err != nil || class != helloClass {
			conn.Close()
			return fmt.Errorf("tcp node %d: bad hello from %s: class=%d err=%v",
				c.self, conn.RemoteAddr(), class, err)
		}
		conn.SetReadDeadline(time.Time{})
		if int(from) <= int(c.self) || int(from) >= len(c.addrs) {
			conn.Close()
			return fmt.Errorf("tcp node %d: hello claims invalid peer %d", c.self, from)
		}
		conn.SetNoDelay(true)
		c.mu.Lock()
		dup := c.conns[from] != nil
		if !dup {
			c.conns[from] = conn
		}
		c.mu.Unlock()
		if dup {
			conn.Close()
			return fmt.Errorf("tcp node %d: duplicate hello from node %d", c.self, from)
		}
	}
	return nil
}

// dialPeer connects to peer j, retrying with backoff until the deadline
// (the peer's listener may not be bound yet), and sends the hello frame.
func dialPeer(self, peer NodeID, addr string, deadline time.Time) (*net.TCPConn, error) {
	backoff := 10 * time.Millisecond
	for {
		d := net.Dialer{Deadline: deadline}
		conn, err := d.Dial("tcp", addr)
		if err == nil {
			tc := conn.(*net.TCPConn)
			tc.SetNoDelay(true)
			hello := frame(self, helloClass, 0, nil)
			tc.SetWriteDeadline(deadline)
			if _, err := tc.Write(hello); err != nil {
				tc.Close()
				return nil, fmt.Errorf("tcp node %d -> node %d (%s): hello: %w", self, peer, addr, err)
			}
			tc.SetWriteDeadline(time.Time{})
			return tc, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("tcp node %d -> node %d (%s): dial: %w", self, peer, addr, err)
		}
		time.Sleep(backoff)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// tcpConn is one node's meshed endpoint.
type tcpConn struct {
	self  NodeID
	addrs []string
	ln    *net.TCPListener
	conns []*net.TCPConn
	outbx []*outQueue

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []Message
	closed bool
	rerr   error // first reader failure, reported by Recv after drain

	statsMu sync.Mutex
	stats   Stats

	wwg       sync.WaitGroup // write loops
	rwg       sync.WaitGroup // read loops
	closeOnce sync.Once
}

func (c *tcpConn) Self() NodeID    { return c.self }
func (c *tcpConn) Nodes() int      { return len(c.addrs) }
func (c *tcpConn) Backend() string { return "tcp" }

func (c *tcpConn) PeerAddr(to NodeID) string {
	if to < 0 || int(to) >= len(c.addrs) {
		return fmt.Sprintf("invalid node %d", to)
	}
	return c.addrs[to]
}

func (c *tcpConn) Send(m Message) error {
	if m.To < 0 || int(m.To) >= len(c.addrs) || m.To == c.self {
		return fmt.Errorf("tcp node %d: send to invalid peer %d", c.self, m.To)
	}
	q := c.outbx[m.To]
	if !q.push(frame(c.self, uint8(m.Class), m.Type, m.Payload)) {
		return fmt.Errorf("tcp node %d -> node %d (%s): %w", c.self, m.To, c.PeerAddr(m.To), ErrClosed)
	}
	c.statsMu.Lock()
	c.stats.Msgs[m.Class]++
	c.stats.Bytes[m.Class] += int64(len(m.Payload))
	c.stats.Peers[m.To].Msgs[m.Class]++
	c.stats.Peers[m.To].Bytes[m.Class] += int64(len(m.Payload))
	c.statsMu.Unlock()
	return nil
}

func (c *tcpConn) Recv() (Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.inbox) == 0 && !c.closed {
		c.cond.Wait()
	}
	if len(c.inbox) == 0 {
		err := c.rerr
		if err == nil {
			err = fmt.Errorf("tcp node %d: recv: %w", c.self, ErrClosed)
		}
		return Message{}, err
	}
	m := c.inbox[0]
	n := copy(c.inbox, c.inbox[1:])
	c.inbox[n] = Message{}
	c.inbox = c.inbox[:n]
	return m, nil
}

func (c *tcpConn) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	out := c.stats
	out.Peers = append([]PeerStats(nil), c.stats.Peers...)
	return out
}

// peerTraffic summarizes the sent-side traffic toward peer j for error
// attribution ("after 42 msgs / 13807 bytes sent to peer").
func (c *tcpConn) peerTraffic(j NodeID) string {
	c.statsMu.Lock()
	p := c.stats.Peers[j]
	c.statsMu.Unlock()
	return fmt.Sprintf("after %d msgs / %d bytes sent to peer", p.TotalMsgs(), p.TotalBytes())
}

// Close tears the mesh down gracefully: it stops accepting new sends,
// lets the write loops drain everything already queued (so final
// protocol messages reach peers ahead of the FIN), then closes the
// streams and the listener and unblocks Recv.
func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		c.cond.Broadcast()
		for _, q := range c.outbx {
			if q != nil {
				q.close()
			}
		}
		c.wwg.Wait()
		c.teardown()
		c.rwg.Wait()
	})
	return nil
}

func (c *tcpConn) teardown() {
	c.ln.Close()
	c.mu.Lock()
	conns := append([]*net.TCPConn(nil), c.conns...)
	c.mu.Unlock()
	for _, conn := range conns {
		if conn != nil {
			conn.Close()
		}
	}
}

// fail records a pump failure: the first error wins and Recv reports it
// once the inbox drains. A failure after Close is the teardown itself.
func (c *tcpConn) fail(err error) {
	c.mu.Lock()
	if !c.closed && c.rerr == nil {
		c.rerr = err
		c.closed = true
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// writeLoop drains peer j's outbound queue onto its stream.
func (c *tcpConn) writeLoop(j NodeID, conn *net.TCPConn, q *outQueue) {
	defer c.wwg.Done()
	for {
		buf, ok := q.pop()
		if !ok {
			return
		}
		if _, err := conn.Write(buf); err != nil {
			c.fail(fmt.Errorf("tcp node %d -> node %d (%s): write %s: %w",
				c.self, j, c.PeerAddr(j), c.peerTraffic(j), err))
			return
		}
	}
}

// readLoop pumps frames from peer j's stream into the shared inbox.
func (c *tcpConn) readLoop(j NodeID, conn *net.TCPConn) {
	defer c.rwg.Done()
	for {
		from, class, typ, payload, err := readFrame(conn)
		if err != nil {
			if err != io.EOF {
				c.fail(fmt.Errorf("tcp node %d <- node %d (%s): read %s: %w",
					c.self, j, c.PeerAddr(j), c.peerTraffic(j), err))
			} else {
				c.fail(fmt.Errorf("tcp node %d <- node %d (%s): peer closed %s: %w",
					c.self, j, c.PeerAddr(j), c.peerTraffic(j), ErrClosed))
			}
			return
		}
		if from != j || class >= uint8(NumClasses) {
			c.fail(fmt.Errorf("tcp node %d <- node %d (%s): bad frame from=%d class=%d",
				c.self, j, c.PeerAddr(j), from, class))
			return
		}
		m := Message{From: from, To: c.self, Class: Class(class), Type: typ, Payload: payload}
		c.mu.Lock()
		closed := c.closed
		if !closed {
			c.inbox = append(c.inbox, m)
		}
		c.mu.Unlock()
		if closed {
			return
		}
		c.cond.Signal()
	}
}

// frame serializes one message: length prefix + header + payload.
func frame(from NodeID, class, typ uint8, payload []byte) []byte {
	buf := make([]byte, 4+tcpHeader+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(tcpHeader+len(payload)))
	binary.BigEndian.PutUint32(buf[4:], uint32(from))
	buf[8] = class
	buf[9] = typ
	copy(buf[10:], payload)
	return buf
}

// readFrame reads one length-prefixed frame. The payload allocates — it
// outlives the call inside a Message.
func readFrame(r io.Reader) (from NodeID, class, typ uint8, payload []byte, err error) {
	var hdr [4 + tcpHeader]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length < tcpHeader || length > maxFrame {
		return 0, 0, 0, nil, fmt.Errorf("frame length %d out of range", length)
	}
	from = NodeID(binary.BigEndian.Uint32(hdr[4:8]))
	class, typ = hdr[8], hdr[9]
	if n := int(length) - tcpHeader; n > 0 {
		payload = make([]byte, n)
		if _, err = io.ReadFull(r, payload); err != nil {
			return 0, 0, 0, nil, err
		}
	}
	return from, class, typ, payload, nil
}

// outQueue is an unbounded MPSC byte-buffer queue with close semantics.
type outQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	bufs   [][]byte
	closed bool
}

func newOutQueue() *outQueue {
	q := &outQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues buf; it reports false once the queue is closed.
func (q *outQueue) push(buf []byte) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.bufs = append(q.bufs, buf)
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// pop dequeues the next buffer, blocking until one arrives; ok is false
// once the queue is closed and drained.
func (q *outQueue) pop() ([]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.bufs) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.bufs) == 0 {
		return nil, false
	}
	buf := q.bufs[0]
	n := copy(q.bufs, q.bufs[1:])
	q.bufs[n] = nil
	q.bufs = q.bufs[:n]
	return buf, true
}

func (q *outQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
