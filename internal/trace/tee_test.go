package trace

import "testing"

type countTracer struct{ n int }

func (c *countTracer) Emit(Event) { c.n++ }

func TestTeeFansOut(t *testing.T) {
	a, b := &countTracer{}, &countTracer{}
	tr := Tee(a, nil, b)
	for i := 0; i < 3; i++ {
		tr.Emit(Event{Kind: KindMsgSend})
	}
	if a.n != 3 || b.n != 3 {
		t.Errorf("sink counts = %d, %d, want 3, 3", a.n, b.n)
	}
}

func TestTeeCollapses(t *testing.T) {
	if Tee(nil, nil) != nil {
		t.Error("Tee of all-nil sinks should be nil (preserves the fast path)")
	}
	a := &countTracer{}
	if got := Tee(nil, a); got != Tracer(a) {
		t.Error("Tee with a single live sink should return it directly")
	}
}
