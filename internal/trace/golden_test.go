package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cvm"
	"cvm/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden trace file")

const microPage = 8 << 10

// microWorkload is a tiny deterministic exercise of every traced
// protocol path: local and remote faults, twins and diffs, a contended
// global lock, local and global barriers, and thread switches.
func microWorkload(w cvm.Worker, base cvm.Addr) {
	w.Barrier(0)
	if w.LocalID() == 0 {
		// One writer per node: twin + diff on the node's own page.
		w.WriteF64(base+cvm.Addr(w.NodeID()*microPage), float64(w.NodeID()+1))
	}
	w.LocalBarrier(0)
	w.Barrier(1)
	// Read the other node's page: one remote fault per node (the
	// co-located thread joins it as Block Same Page).
	other := (w.NodeID() + 1) % w.Nodes()
	_ = w.ReadF64(base + cvm.Addr(other*microPage))
	// A shared counter under a global lock: remote and local acquires.
	ctr := base + cvm.Addr(2*microPage)
	w.Lock(0)
	w.WriteF64(ctr, w.ReadF64(ctr)+1)
	w.Unlock(0)
	w.Barrier(2)
}

// microTrace runs the micro workload on 2 nodes x 2 threads and returns
// the recorded trace.
func microTrace(t *testing.T) *trace.Recorder {
	t.Helper()
	rec := trace.NewRecorder(2, 2, 0)
	cfg := cvm.DefaultConfig(2, 2)
	cfg.Tracer = rec
	cluster, err := cvm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := cluster.MustAlloc("micro", 3*microPage)
	if _, err := cluster.Run(func(w cvm.Worker) { microWorkload(w, base) }); err != nil {
		t.Fatal(err)
	}
	return rec
}

func exportChrome(t *testing.T, rec *trace.Recorder) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := trace.WriteChrome(&b, rec); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestGoldenTrace is the regression oracle for the protocol's event
// ordering: the simulator is deterministic, so the exported trace of a
// fixed workload must be byte-identical run to run. Regenerate with
// `go test ./internal/trace -run TestGoldenTrace -update` after an
// intentional protocol or exporter change, and review the diff.
func TestGoldenTrace(t *testing.T) {
	got := exportChrome(t, microTrace(t))
	golden := filepath.Join("testdata", "micro_trace.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace diverged from %s (%d bytes, want %d); the protocol's "+
			"event order changed — if intentional, regenerate with -update",
			golden, len(got), len(want))
	}
}

// TestTraceDeterministicConcurrent re-records the same workload from
// several goroutines at once and demands byte-identical exports: the
// harness runs independent simulations in parallel (-parallel), and a
// trace must not depend on what else the process is doing.
func TestTraceDeterministicConcurrent(t *testing.T) {
	const runs = 4
	out := make([][]byte, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = exportChrome(t, microTrace(t))
		}(i)
	}
	wg.Wait()
	for i := 1; i < runs; i++ {
		if !bytes.Equal(out[0], out[i]) {
			t.Fatalf("concurrent run %d produced a different trace (%d vs %d bytes)",
				i, len(out[i]), len(out[0]))
		}
	}
}

// TestCalibrationTwoHopLock reproduces the paper's §4.1 2-hop lock cost
// (937 µs) from trace events alone: two nodes alternate uncontended
// acquires of a manager-resident lock, separated by barriers.
func TestCalibrationTwoHopLock(t *testing.T) {
	rec := trace.NewRecorder(2, 1, 0)
	cfg := cvm.DefaultConfig(2, 1)
	cfg.Tracer = rec
	cluster, err := cvm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster.MustAlloc("pad", microPage)
	_, err = cluster.Run(func(w cvm.Worker) {
		for i := 0; i < 9; i++ {
			if i%2 == w.NodeID() {
				w.Lock(0)
				w.Unlock(0)
			}
			w.Barrier(10 + i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := trace.AnalyzeRecorder(rec)
	// The very first acquire hits the manager's cached token (local);
	// every later one needs a remote 2-hop round. None are forwarded.
	if rep.Lock3Hop.Count != 0 {
		t.Fatalf("unexpected 3-hop acquires: %+v", rep.Lock3Hop)
	}
	if rep.Lock2Hop.Count < 7 {
		t.Fatalf("2-hop count = %d, want ≥7", rep.Lock2Hop.Count)
	}
	assertNear(t, "2-hop lock p50", rep.Lock2Hop.P50, 937*cvm.Microsecond, 40*cvm.Microsecond)
}

// TestCalibrationThreeHopLock reproduces the §4.1 3-hop cost (1382 µs):
// the token bounces between two non-manager nodes, so every acquire is
// forwarded by the idle manager.
func TestCalibrationThreeHopLock(t *testing.T) {
	rec := trace.NewRecorder(3, 1, 0)
	cfg := cvm.DefaultConfig(3, 1)
	cfg.Tracer = rec
	cluster, err := cvm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster.MustAlloc("pad", microPage)
	_, err = cluster.Run(func(w cvm.Worker) {
		for i := 0; i < 9; i++ {
			if w.NodeID() == 1+i%2 {
				w.Lock(0)
				w.Unlock(0)
			}
			w.Barrier(10 + i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := trace.AnalyzeRecorder(rec)
	// Only the first acquire (token still at the manager) is 2-hop.
	if rep.Lock2Hop.Count != 1 {
		t.Fatalf("2-hop count = %d, want 1: %+v", rep.Lock2Hop.Count, rep.Lock2Hop)
	}
	if rep.Lock3Hop.Count < 7 {
		t.Fatalf("3-hop count = %d, want ≥7", rep.Lock3Hop.Count)
	}
	assertNear(t, "3-hop lock p50", rep.Lock3Hop.P50, 1382*cvm.Microsecond, 80*cvm.Microsecond)
}

// TestCalibrationRemoteFault reproduces the §4.1 remote page fault cost
// (~1100 µs): node 0 writes one word per interval, node 1 faults the
// page back in with a single small diff.
func TestCalibrationRemoteFault(t *testing.T) {
	rec := trace.NewRecorder(2, 1, 0)
	cfg := cvm.DefaultConfig(2, 1)
	cfg.Tracer = rec
	cluster, err := cvm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := cluster.MustAlloc("page", microPage)
	_, err = cluster.Run(func(w cvm.Worker) {
		for i := 0; i < 8; i++ {
			if w.NodeID() == 0 {
				w.WriteF64(base, float64(i))
			}
			w.Barrier(10 + 2*i)
			if w.NodeID() == 1 {
				_ = w.ReadF64(base)
			}
			w.Barrier(11 + 2*i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := trace.AnalyzeRecorder(rec)
	if rep.RemoteFault.Count < 8 {
		t.Fatalf("remote fault count = %d, want ≥8", rep.RemoteFault.Count)
	}
	assertNear(t, "remote fault p50", rep.RemoteFault.P50, 1100*cvm.Microsecond, 150*cvm.Microsecond)
}

func assertNear(t *testing.T, name string, got, want, tol cvm.Time) {
	t.Helper()
	d := got - want
	if d < 0 {
		d = -d
	}
	if d > tol {
		t.Errorf("%s = %v, want %v ± %v", name, got, want, tol)
	}
}
