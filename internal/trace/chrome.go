package trace

import (
	"bufio"
	"fmt"
	"io"

	"cvm/internal/sim"
)

// WriteChrome renders the recorder's events in the Chrome trace-event
// JSON format (loadable in Perfetto / chrome://tracing). Layout:
//
//   - one process per node (pid = node id);
//   - tid 0 is the node's "protocol" track (handler-context events:
//     message deliveries, lock grants, barrier releases);
//   - tid 1..T are the node's application threads;
//   - remote faults, remote lock acquires and barrier waits render as
//     complete ("X") duration slices on the owning thread's track;
//   - message send→deliver pairs and thread switches render as flow
//     arrows ("s"/"f") so cross-node causality and switch chains are
//     visible;
//   - everything else renders as instant events with kind-specific args.
//
// The output is built with a fixed field order and fixed-precision
// timestamps, so for a given run it is byte-reproducible — the property
// the golden-trace regression test locks in.
func WriteChrome(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"traceEvents\":[\n")

	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Metadata: name and order the node processes and their tracks.
	for n := 0; n < r.Nodes(); n++ {
		emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"node %d"}}`, n, n)
		emit(`{"name":"process_sort_index","ph":"M","pid":%d,"tid":0,"args":{"sort_index":%d}}`, n, n)
		emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":0,"args":{"name":"protocol"}}`, n)
		for l := 0; l < r.ThreadsPerNode(); l++ {
			gid := n*r.ThreadsPerNode() + l
			emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"thread g%d"}}`, n, l+1, gid)
		}
	}

	tid := func(e Event) int {
		if e.Thread < 0 {
			return 0
		}
		return int(e.Thread) - int(e.Node)*r.ThreadsPerNode() + 1
	}

	type pageKey struct{ node, page int32 }
	type syncKey struct{ node, sync int32 }
	faultStart := make(map[pageKey]Event)
	lockReq := make(map[syncKey]Event)
	barrierArrive := make(map[syncKey][]Event)

	span := func(name, cat string, start, end Event, onTid int) {
		emit(`{"name":%q,"cat":%q,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d}`,
			name, cat, usec(start.T), usec(end.T-start.T), start.Node, onTid)
	}
	instant := func(e Event, name, cat, args string) {
		if args == "" {
			emit(`{"name":%q,"cat":%q,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d}`,
				name, cat, usec(e.T), e.Node, tid(e))
			return
		}
		emit(`{"name":%q,"cat":%q,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":{%s}}`,
			name, cat, usec(e.T), e.Node, tid(e), args)
	}

	for _, e := range r.Events() {
		switch e.Kind {
		case KindFaultStart:
			faultStart[pageKey{e.Node, e.Page}] = e

		case KindFaultResolve:
			k := pageKey{e.Node, e.Page}
			if s, ok := faultStart[k]; ok {
				delete(faultStart, k)
				onTid := tid(s) // the faulting thread, even if resolve ran in handler context
				span(fmt.Sprintf("fault p%d", e.Page), "fault", s, e, onTid)
			} else {
				instant(e, fmt.Sprintf("fault p%d resolve", e.Page), "fault",
					fmt.Sprintf(`"diffs":%d`, e.Arg))
			}

		case KindTwinCreate:
			instant(e, fmt.Sprintf("twin p%d", e.Page), "diff", "")

		case KindDiffCreate:
			instant(e, fmt.Sprintf("diff p%d create", e.Page), "diff",
				fmt.Sprintf(`"bytes":%d,"interval":%d`, e.Arg, e.Aux))

		case KindDiffApply:
			instant(e, fmt.Sprintf("diff p%d apply", e.Page), "diff",
				fmt.Sprintf(`"from":%d,"interval":%d,"bytes":%d`, e.Peer, e.Arg, e.Aux))

		case KindLockRequest:
			lockReq[syncKey{e.Node, e.Sync}] = e

		case KindLockForward:
			instant(e, fmt.Sprintf("lock %d forward", e.Sync), "lock",
				fmt.Sprintf(`"requester":%d,"to":%d`, e.Arg, e.Peer))

		case KindLockGrant:
			instant(e, fmt.Sprintf("lock %d grant", e.Sync), "lock", "")

		case KindLockAcquire:
			k := syncKey{e.Node, e.Sync}
			if s, ok := lockReq[k]; ok && e.Arg == 0 {
				delete(lockReq, k)
				span(fmt.Sprintf("lock %d acquire", e.Sync), "lock", s, e, tid(e))
			} else {
				instant(e, fmt.Sprintf("lock %d acquire", e.Sync), "lock", `"local":1`)
			}

		case KindLockRelease:
			instant(e, fmt.Sprintf("lock %d release", e.Sync), "lock", "")

		case KindBarrierArrive:
			k := syncKey{e.Node, e.Sync}
			barrierArrive[k] = append(barrierArrive[k], e)

		case KindBarrierRelease:
			k := syncKey{e.Node, e.Sync}
			name := fmt.Sprintf("barrier %d wait", e.Sync)
			if e.Aux == 1 {
				name = fmt.Sprintf("local barrier %d wait", e.Sync)
			}
			for _, a := range barrierArrive[k] {
				span(name, "barrier", a, e, tid(a))
			}
			delete(barrierArrive, k)

		case KindThreadSwitch:
			// Flow arrow from the switched-out thread to the dispatched
			// one, plus an instant marking the switch cost point.
			from := e
			from.Thread = int32(e.Arg)
			emit(`{"name":"switch","cat":"sched","ph":"s","id":%d,"ts":%s,"pid":%d,"tid":%d}`,
				switchFlowBase+e.Seq, usec(e.T), e.Node, tid(from))
			emit(`{"name":"switch","cat":"sched","ph":"f","bp":"e","id":%d,"ts":%s,"pid":%d,"tid":%d}`,
				switchFlowBase+e.Seq, usec(e.T), e.Node, tid(e))
			instant(e, "switch in", "sched", fmt.Sprintf(`"from":"g%d"`, e.Arg))

		case KindThreadBlock:
			instant(e, "block", "sched", fmt.Sprintf(`"reason":%q`, reasonName(e.Arg)))

		case KindThreadUnblock:
			instant(e, "unblock", "sched", fmt.Sprintf(`"reason":%q`, reasonName(e.Arg)))

		case KindMsgSend:
			emit(`{"name":%q,"cat":"msg","ph":"s","id":%d,"ts":%s,"pid":%d,"tid":0,"args":{"bytes":%d}}`,
				"msg "+className(e.Sync), e.Aux, usec(e.T), e.Node, e.Arg)

		case KindMsgDeliver:
			emit(`{"name":%q,"cat":"msg","ph":"f","bp":"e","id":%d,"ts":%s,"pid":%d,"tid":0,"args":{"bytes":%d}}`,
				"msg "+className(e.Sync), e.Aux, usec(e.T), e.Node, e.Arg)

		case KindMsgDrop:
			instant(e, "drop "+className(e.Sync), "fault-inject",
				fmt.Sprintf(`"to":%d,"bytes":%d,"id":%d`, e.Peer, e.Arg, e.Aux))

		case KindMsgDup:
			instant(e, "dup "+className(e.Sync), "fault-inject",
				fmt.Sprintf(`"to":%d,"bytes":%d,"id":%d`, e.Peer, e.Arg, e.Aux))

		case KindRetransmit:
			instant(e, "retransmit "+className(e.Sync), "transport",
				fmt.Sprintf(`"to":%d,"seq":%d,"attempt":%d`, e.Peer, e.Aux, e.Arg))

		case KindDupSuppress:
			instant(e, "dup-suppress "+className(e.Sync), "transport",
				fmt.Sprintf(`"from":%d,"seq":%d`, e.Peer, e.Aux))
		}
	}

	// Faults or lock requests still open at the end of the trace (their
	// resolution fell outside the ring bound, or the run was cut) render
	// as instants so the data is not lost.
	for _, e := range faultStart {
		instant(e, fmt.Sprintf("fault p%d (unresolved)", e.Page), "fault", "")
	}
	for _, e := range lockReq {
		instant(e, fmt.Sprintf("lock %d request (ungranted)", e.Sync), "lock", "")
	}

	fmt.Fprintf(bw, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// switchFlowBase keeps thread-switch flow ids out of the message-id
// space (message ids are a small dense counter).
const switchFlowBase = uint64(1) << 40

// usec renders a virtual time as microseconds with nanosecond precision,
// the unit Chrome trace timestamps use. Fixed %d.%03d formatting keeps
// the output byte-stable (no float rounding).
func usec(t sim.Time) string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	return fmt.Sprintf("%s%d.%03d", neg, int64(t)/1000, int64(t)%1000)
}

// className names a message class for export. The mapping mirrors
// netsim's Table 2 classes (trace cannot import netsim — netsim emits
// into trace); the netsim class-guard test keeps the two in sync.
func className(class int32) string {
	switch class {
	case 0:
		return "barrier"
	case 1:
		return "lock"
	case 2:
		return "diff"
	default:
		return fmt.Sprintf("class%d", class)
	}
}

// reasonName names a block reason. Values mirror core's Reason
// constants (fault, lock, barrier).
func reasonName(r int64) string {
	switch r {
	case 1:
		return "fault"
	case 2:
		return "lock"
	case 3:
		return "barrier"
	default:
		return fmt.Sprintf("reason%d", r)
	}
}
