package trace

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"cvm/internal/sim"
)

// LatencyStats summarizes one latency class with nearest-rank quantiles.
type LatencyStats struct {
	Count int
	Min   sim.Time
	Max   sim.Time
	Mean  sim.Time
	P50   sim.Time
	P95   sim.Time
	P99   sim.Time
}

// summarize computes LatencyStats over samples (consumed: sorted in
// place).
func summarize(samples []sim.Time) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum sim.Time
	for _, s := range samples {
		sum += s
	}
	q := func(p float64) sim.Time {
		// Nearest-rank: the smallest sample with at least p of the mass
		// at or below it.
		i := int(float64(len(samples))*p+0.9999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	return LatencyStats{
		Count: len(samples),
		Min:   samples[0],
		Max:   samples[len(samples)-1],
		Mean:  sum / sim.Time(len(samples)),
		P50:   q(0.50),
		P95:   q(0.95),
		P99:   q(0.99),
	}
}

// Report is the latency analysis of one trace: per-class histograms of
// the protocol's end-to-end paths, reconstructed purely from events.
// On a default-calibrated cluster the uncontended classes reproduce the
// paper's §4.1 costs: 2-hop locks ≈937 µs, remote faults ≈1100 µs.
type Report struct {
	Events     int
	Dropped    uint64
	KindCounts [numKinds]int

	// RemoteFault spans fault.start → fault.resolve per (node, page):
	// signal delivery, parallel diff fetches, application, reprotection.
	RemoteFault LatencyStats

	// Lock2Hop / Lock3Hop span lock.request → lock.acquire for remote
	// acquires, classified by forwarding: no manager forward is the
	// 2-hop path (manager held the token), a forward is the 3-hop path.
	// Queueing behind a held token is included, so contended locks
	// stretch the upper quantiles.
	Lock2Hop LatencyStats
	Lock3Hop LatencyStats

	// LocalLockAcquires counts acquires satisfied without messages.
	LocalLockAcquires int

	// BarrierStall spans barrier.arrive → barrier.release per thread for
	// global barriers; LocalBarrierStall is the same for node-local
	// barriers.
	BarrierStall      LatencyStats
	LocalBarrierStall LatencyStats

	// MsgLatency spans msg.send → msg.deliver (egress departure to
	// handler start, including ingress serialization).
	MsgLatency LatencyStats
}

// Analyze builds the latency report from events. Events must be in
// (T, Seq) order, as returned by Recorder.Events.
func Analyze(events []Event) *Report {
	r := &Report{Events: len(events)}

	type pageKey struct{ node, page int32 }
	type syncKey struct{ node, sync int32 }
	faultStart := make(map[pageKey]sim.Time)
	lockReq := make(map[syncKey]sim.Time)
	lockForwards := make(map[syncKey]int) // keyed by (requester node, lock)
	barrierArrive := make(map[syncKey][]sim.Time)
	msgSend := make(map[int64]sim.Time)

	var faults, lock2, lock3, stall, localStall, msg []sim.Time

	for _, e := range events {
		r.KindCounts[e.Kind]++
		switch e.Kind {
		case KindFaultStart:
			faultStart[pageKey{e.Node, e.Page}] = e.T

		case KindFaultResolve:
			k := pageKey{e.Node, e.Page}
			if t0, ok := faultStart[k]; ok {
				delete(faultStart, k)
				faults = append(faults, e.T-t0)
			}

		case KindLockRequest:
			lockReq[syncKey{e.Node, e.Sync}] = e.T

		case KindLockForward:
			lockForwards[syncKey{int32(e.Arg), e.Sync}]++

		case KindLockAcquire:
			if e.Arg == 1 {
				r.LocalLockAcquires++
				continue
			}
			k := syncKey{e.Node, e.Sync}
			t0, ok := lockReq[k]
			if !ok {
				continue
			}
			delete(lockReq, k)
			if lockForwards[k] > 0 {
				delete(lockForwards, k)
				lock3 = append(lock3, e.T-t0)
			} else {
				lock2 = append(lock2, e.T-t0)
			}

		case KindBarrierArrive:
			k := syncKey{e.Node, e.Sync}
			barrierArrive[k] = append(barrierArrive[k], e.T)

		case KindBarrierRelease:
			k := syncKey{e.Node, e.Sync}
			for _, t0 := range barrierArrive[k] {
				if e.Aux == 1 {
					localStall = append(localStall, e.T-t0)
				} else {
					stall = append(stall, e.T-t0)
				}
			}
			delete(barrierArrive, k)

		case KindMsgSend:
			msgSend[e.Aux] = e.T

		case KindMsgDeliver:
			if t0, ok := msgSend[e.Aux]; ok {
				delete(msgSend, e.Aux)
				msg = append(msg, e.T-t0)
			}
		}
	}

	r.RemoteFault = summarize(faults)
	r.Lock2Hop = summarize(lock2)
	r.Lock3Hop = summarize(lock3)
	r.BarrierStall = summarize(stall)
	r.LocalBarrierStall = summarize(localStall)
	r.MsgLatency = summarize(msg)
	return r
}

// AnalyzeRecorder analyzes a recorder's retained events, carrying the
// drop count into the report so bounded traces are flagged.
func AnalyzeRecorder(rec *Recorder) *Report {
	r := Analyze(rec.Events())
	r.Dropped = rec.Dropped()
	return r
}

// Write renders the report: the per-class latency table (the §4.1
// comparison), then event-kind counts.
func (r *Report) Write(w io.Writer) error {
	fmt.Fprintf(w, "Trace latency report: %d events", r.Events)
	if r.Dropped > 0 {
		fmt.Fprintf(w, " (%d dropped by the ring bound; latencies are partial)", r.Dropped)
	}
	fmt.Fprintln(w)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "class\tcount\tp50\tp95\tp99\tmean\tmin\tmax\tpaper §4.1\t")
	row := func(name string, s LatencyStats, paper string) {
		if s.Count == 0 {
			fmt.Fprintf(tw, "%s\t0\t-\t-\t-\t-\t-\t-\t%s\t\n", name, paper)
			return
		}
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\t%v\t%v\t%v\t%s\t\n",
			name, s.Count, s.P50, s.P95, s.P99, s.Mean, s.Min, s.Max, paper)
	}
	row("remote fault", r.RemoteFault, "~1100µs")
	row("2-hop lock", r.Lock2Hop, "937µs")
	row("3-hop lock", r.Lock3Hop, "1382µs")
	row("barrier stall", r.BarrierStall, "-")
	row("local barrier stall", r.LocalBarrierStall, "-")
	row("message one-way", r.MsgLatency, "465µs hdr")
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(w, "local lock acquires (no messages): %d\n", r.LocalLockAcquires)
	fmt.Fprintln(w, "event counts:")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	for k := Kind(0); k < numKinds; k++ {
		if r.KindCounts[k] > 0 {
			fmt.Fprintf(tw, "  %s\t%d\t\n", k, r.KindCounts[k])
		}
	}
	return tw.Flush()
}
