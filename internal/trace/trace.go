// Package trace is the protocol observability layer: a deterministic,
// zero-overhead-when-disabled event recorder for the simulated DSM.
//
// The protocol and network layers emit typed events (page faults, twin
// and diff lifecycle, lock and barrier protocol steps, thread scheduling,
// message send/deliver) through a nil-checkable Tracer held on the
// cluster Config. Because the simulator dispatches entities in strict
// virtual-time order, the emission sequence — and therefore every
// exported artifact — is bit-reproducible for a given configuration,
// which makes a recorded trace usable as a golden regression oracle for
// the protocol's event ordering.
//
// Three consumers are provided: the Recorder (per-node append-only ring
// buffers), the Chrome trace-event exporter (chrome.go, loadable in
// Perfetto), and the latency analyzer (analyze.go), which rebuilds the
// paper's §4.1 primitive costs from events alone.
package trace

import (
	"fmt"
	"sort"

	"cvm/internal/sim"
)

// Kind is the type of a protocol event.
type Kind uint8

// Event kinds. The comment after each kind documents which Event fields
// are meaningful for it; unset fields are zero.
const (
	// KindFaultStart: a remote page fault begins at Node. Thread is the
	// faulting thread, Page the faulted page. Emitted before signal
	// delivery is charged, matching the paper's fault cost accounting.
	KindFaultStart Kind = iota
	// KindFaultResolve: the fault on Page at Node completed; the page is
	// consistent (or re-faults). Arg is the number of diffs applied.
	// Thread is the applying thread (-1 under the SW protocol, where the
	// completion runs in handler context).
	KindFaultResolve
	// KindTwinCreate: a local write fault created a twin of Page at Node
	// (Thread is the writer).
	KindTwinCreate
	// KindDiffCreate: closing an interval materialized a diff of Page at
	// Node. Thread is the closing thread (-1 when closed from handler
	// context), Arg the diff's wire size in bytes, Aux the interval index.
	KindDiffCreate
	// KindDiffApply: a diff created by node Peer (interval index Arg) was
	// applied to Page at Node by Thread. Aux is the diff's wire size.
	KindDiffApply
	// KindLockRequest: Thread at Node sent a remote acquire for lock
	// Sync toward its manager.
	KindLockRequest
	// KindLockForward: the manager (Node) forwarded the request of node
	// Arg for lock Sync to the last requester, node Peer. Only emitted for
	// the 3-hop path; 2-hop acquires have no forward.
	KindLockForward
	// KindLockGrant: the token for lock Sync arrived back at requester
	// Node (handler context; Thread is -1).
	KindLockGrant
	// KindLockAcquire: Thread at Node now holds lock Sync. Arg is 1 for
	// acquires satisfied locally (cached token or local queue), 0 for
	// acquires that needed a remote request.
	KindLockAcquire
	// KindLockRelease: Thread at Node released lock Sync.
	KindLockRelease
	// KindBarrierArrive: Thread at Node arrived at barrier Sync. Aux is 1
	// for node-local barriers, 0 for global ones.
	KindBarrierArrive
	// KindBarrierRelease: barrier Sync released its waiters at Node.
	// Thread is -1 for global barriers (release runs in handler context);
	// for local barriers (Aux=1) it is the last-arriving thread.
	KindBarrierRelease
	// KindThreadSwitch: Node dispatched Thread after running thread Arg
	// (global ids). Emitted after the switch cost is charged.
	KindThreadSwitch
	// KindThreadBlock: Thread at Node blocked; Arg is the sim.Reason
	// (fault/lock/barrier) for idle-time attribution.
	KindThreadBlock
	// KindThreadUnblock: Thread at Node resumed after a block; Arg is the
	// same reason recorded at block time.
	KindThreadUnblock
	// KindMsgSend: a message of class Sync left Node's egress for Peer.
	// T is the departure time (after egress queueing), Arg the payload
	// bytes, Aux the network-wide message id linking send to delivery.
	KindMsgSend
	// KindMsgDeliver: the message with id Aux (class Sync, Arg bytes,
	// sent by Peer) started its handler at Node.
	KindMsgDeliver
	// KindMsgDrop: the fault model dropped the message with id Aux
	// (class Sync, Arg bytes) from Node to Peer at its departure time T.
	// No matching deliver event exists for the id.
	KindMsgDrop
	// KindMsgDup: the fault model duplicated the message with id Aux
	// (class Sync, Arg bytes) from Node to Peer; the replica delivers as
	// a separate msg.deliver with its own id.
	KindMsgDup
	// KindRetransmit: the reliable transport at Node re-sent an
	// unacknowledged message to Peer. Sync is the class, Aux the
	// transport sequence number, Arg the retry attempt (1-based).
	KindRetransmit
	// KindDupSuppress: the reliable transport at Node received a replay
	// of an already-delivered message from Peer and suppressed it. Sync
	// is the class, Aux the transport sequence number.
	KindDupSuppress
	// KindModeChange: Node applied an adaptive coherence mode for Page.
	// Arg is the new mode (core.PageMode), Peer the designated owner (or
	// -1), Aux the adaptation epoch that stamped the change.
	KindModeChange
	// KindExclWindowClose: the exclusive (single-writer) window for Page
	// closed at its owner Node — a foreign access or a demotion forced
	// the page back onto the interval machinery. Aux is the adaptation
	// epoch current at the close.
	KindExclWindowClose
	// KindMigrateStart: Thread left Node (migration source). Peer is the
	// destination node, Aux the adaptation epoch that issued the order.
	KindMigrateStart
	// KindMigrateArrive: Thread was re-homed onto Node (migration
	// destination). Peer is the source node, Aux the adaptation epoch.
	KindMigrateArrive

	numKinds
)

var kindNames = [numKinds]string{
	KindFaultStart:      "fault.start",
	KindFaultResolve:    "fault.resolve",
	KindTwinCreate:      "twin.create",
	KindDiffCreate:      "diff.create",
	KindDiffApply:       "diff.apply",
	KindLockRequest:     "lock.request",
	KindLockForward:     "lock.forward",
	KindLockGrant:       "lock.grant",
	KindLockAcquire:     "lock.acquire",
	KindLockRelease:     "lock.release",
	KindBarrierArrive:   "barrier.arrive",
	KindBarrierRelease:  "barrier.release",
	KindThreadSwitch:    "thread.switch",
	KindThreadBlock:     "thread.block",
	KindThreadUnblock:   "thread.unblock",
	KindMsgSend:         "msg.send",
	KindMsgDeliver:      "msg.deliver",
	KindMsgDrop:         "msg.drop",
	KindMsgDup:          "msg.dup",
	KindRetransmit:      "msg.retransmit",
	KindDupSuppress:     "msg.dupsuppress",
	KindModeChange:      "adapt.mode",
	KindExclWindowClose: "adapt.exclclose",
	KindMigrateStart:    "migrate.start",
	KindMigrateArrive:   "migrate.arrive",
}

// String returns the dotted event-kind name used in exports and reports.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NumKinds reports the number of defined event kinds.
func NumKinds() int { return int(numKinds) }

// Event is one recorded protocol event. The struct is fixed-size and
// pointer-free so recording never allocates beyond the ring's backing
// array. Field meaning is kind-specific; see the Kind constants.
type Event struct {
	T    sim.Time // virtual timestamp
	Seq  uint64   // global emission order, assigned by the Recorder
	Aux  int64    // kind-specific auxiliary value
	Arg  int64    // kind-specific argument
	Kind Kind

	Node   int32 // node the event is recorded against
	Thread int32 // global thread id; -1 for handler (engine) context
	Page   int32 // page id, for page-related kinds
	Sync   int32 // lock/barrier id, or message class for msg kinds
	Peer   int32 // other node involved, for cross-node kinds
}

// Tracer receives protocol events. The hot paths guard every emission
// with a nil check on the configured Tracer, so a disabled tracer costs
// one predictable branch and nothing else.
type Tracer interface {
	Emit(e Event)
}

// ring is one node's event buffer: append-only until limit, then a
// circular overwrite of the oldest events.
type ring struct {
	buf     []Event
	next    int // write cursor once full
	full    bool
	dropped uint64
}

func (r *ring) add(e Event, limit int) {
	if limit <= 0 || len(r.buf) < limit {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % limit
	r.full = true
	r.dropped++
}

// events returns the ring contents in emission order.
func (r *ring) events() []Event {
	if !r.full {
		return r.buf
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Recorder is the standard Tracer: per-node ring buffers with an
// optional bound. The simulator runs one entity at a time with
// happens-before edges between consecutive dispatches, so the Recorder
// needs no locking; it must not be shared between concurrent systems.
type Recorder struct {
	nodes          int
	threadsPerNode int
	limit          int // per-node event cap; 0 means unbounded
	seq            uint64
	rings          []ring
}

// NewRecorder returns a Recorder for a cluster of the given shape.
// limit bounds the events kept per node (oldest dropped first);
// limit <= 0 keeps everything.
func NewRecorder(nodes, threadsPerNode, limit int) *Recorder {
	return &Recorder{
		nodes:          nodes,
		threadsPerNode: threadsPerNode,
		limit:          limit,
		rings:          make([]ring, nodes),
	}
}

// Nodes reports the cluster's node count.
func (r *Recorder) Nodes() int { return r.nodes }

// ThreadsPerNode reports the cluster's per-node threading level.
func (r *Recorder) ThreadsPerNode() int { return r.threadsPerNode }

// Emit records e, stamping its global sequence number. It implements
// Tracer.
func (r *Recorder) Emit(e Event) {
	r.seq++
	e.Seq = r.seq
	r.rings[e.Node].add(e, r.limit)
}

// Len reports the number of retained events across all nodes.
func (r *Recorder) Len() int {
	n := 0
	for i := range r.rings {
		n += len(r.rings[i].buf)
	}
	return n
}

// Dropped reports how many events the per-node bound discarded.
func (r *Recorder) Dropped() uint64 {
	var n uint64
	for i := range r.rings {
		n += r.rings[i].dropped
	}
	return n
}

// NodeEvents returns node n's retained events in emission order.
func (r *Recorder) NodeEvents(n int) []Event {
	return append([]Event(nil), r.rings[n].events()...)
}

// Events returns every retained event merged across nodes, ordered by
// (timestamp, sequence). The sequence tiebreak makes the order total and
// deterministic: same run, same slice.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.Len())
	for i := range r.rings {
		out = append(out, r.rings[i].events()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
