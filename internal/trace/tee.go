package trace

// tee fans every event out to multiple tracers in order. Built with Tee.
type tee struct {
	sinks []Tracer
}

// Emit implements Tracer.
func (t *tee) Emit(e Event) {
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// Tee composes tracers: every emitted event reaches each non-nil sink in
// argument order. It lets a run record a trace and feed the invariant
// checker from the same event stream. Nil sinks are skipped; if at most
// one sink remains, it is returned directly (nil for none), preserving
// the nil-check fast path on the hot side.
func Tee(sinks ...Tracer) Tracer {
	live := make([]Tracer, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &tee{sinks: live}
}
