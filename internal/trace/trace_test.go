package trace

import (
	"strings"
	"testing"

	"cvm/internal/sim"
)

func TestKindNames(t *testing.T) {
	seen := make(map[string]Kind)
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" {
			t.Errorf("kind %d has no name", k)
		}
		if !strings.Contains(name, ".") {
			t.Errorf("kind %d name %q is not dotted (category.event)", k, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
	if got := numKinds.String(); !strings.HasPrefix(got, "kind(") {
		t.Errorf("out-of-range kind prints %q", got)
	}
	if NumKinds() != int(numKinds) {
		t.Errorf("NumKinds() = %d, want %d", NumKinds(), numKinds)
	}
}

func TestRecorderUnbounded(t *testing.T) {
	r := NewRecorder(2, 2, 0)
	for i := 0; i < 100; i++ {
		r.Emit(Event{T: sim.Time(i), Kind: KindMsgSend, Node: int32(i % 2)})
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
	if got := len(r.NodeEvents(0)); got != 50 {
		t.Fatalf("node 0 has %d events, want 50", got)
	}
}

func TestRecorderRingBound(t *testing.T) {
	r := NewRecorder(1, 1, 4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{T: sim.Time(i), Kind: KindMsgSend})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.NodeEvents(0)
	// The oldest events drop first: 6..9 survive, in emission order.
	for i, e := range evs {
		if want := sim.Time(6 + i); e.T != want {
			t.Errorf("event %d has T=%v, want %v", i, e.T, want)
		}
	}
}

func TestRecorderSeqAssignment(t *testing.T) {
	r := NewRecorder(2, 1, 0)
	r.Emit(Event{T: 5, Node: 1})
	r.Emit(Event{T: 3, Node: 0})
	evs := r.Events()
	if evs[0].Seq == 0 || evs[1].Seq == 0 {
		t.Fatal("Emit must assign nonzero Seq")
	}
	if evs[0].Seq == evs[1].Seq {
		t.Fatal("Seq must be unique")
	}
}

func TestEventsMergedOrder(t *testing.T) {
	r := NewRecorder(3, 1, 0)
	// Interleave nodes with non-monotone timestamps per emission order
	// (deliveries are emitted at send time with a future T).
	r.Emit(Event{T: 100, Node: 0, Kind: KindMsgSend, Aux: 1})
	r.Emit(Event{T: 500, Node: 1, Kind: KindMsgDeliver, Aux: 1})
	r.Emit(Event{T: 200, Node: 2, Kind: KindFaultStart})
	r.Emit(Event{T: 100, Node: 1, Kind: KindThreadBlock})
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if a.T > b.T || (a.T == b.T && a.Seq >= b.Seq) {
			t.Fatalf("events %d,%d out of (T,Seq) order: (%v,%d) then (%v,%d)",
				i-1, i, a.T, a.Seq, b.T, b.Seq)
		}
	}
	// The two T=100 events must tie-break by emission order: node 0 first.
	if evs[0].Node != 0 || evs[1].Node != 1 {
		t.Fatalf("tie-break order wrong: nodes %d,%d", evs[0].Node, evs[1].Node)
	}
}

func TestEventStructIsPointerFree(t *testing.T) {
	// The ring stores events by value; a pointer field would re-introduce
	// allocation pressure and GC scanning on the hot path.
	var e Event
	_ = e
	// Compile-time-ish check: Event must be comparable (no slices/maps).
	events := map[Event]bool{e: true}
	if !events[e] {
		t.Fatal("Event must be comparable")
	}
}
