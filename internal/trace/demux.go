package trace

import (
	"sort"

	"cvm/internal/sim"
)

// Demux adapts a sequential Tracer to the conservative windowed engine:
// during a window each node emits into its own buffer (no shared state,
// so concurrent windows need no locking), and at every window commit
// Flush releases the buffered events to the underlying sink in canonical
// (T, Node, arrival) order. Because the window schedule is identical at
// every worker count, the sink — typically a Recorder, which stamps the
// global Seq in emission order — observes byte-identical event streams
// regardless of parallelism.
type Demux struct {
	sink Tracer
	bufs [][]demuxEntry
	idxs []uint64 // per-node monotone arrival counters
}

// demuxEntry pairs an event with its per-node arrival index, the
// tie-breaker that keeps same-instant events of one node in program
// order across flushes.
type demuxEntry struct {
	ev  Event
	idx uint64
}

// NewDemux returns a demultiplexer over nodes buffers feeding sink.
func NewDemux(nodes int, sink Tracer) *Demux {
	if nodes < 1 {
		nodes = 1
	}
	return &Demux{
		sink: sink,
		bufs: make([][]demuxEntry, nodes),
		idxs: make([]uint64, nodes),
	}
}

// Emit buffers the event on its node's queue. Safe to call from the
// node's window worker; events without a node (negative Node) may only
// be emitted with the engine quiescent (commit context) and share
// bucket 0.
func (d *Demux) Emit(e Event) {
	node := int(e.Node)
	if node < 0 || node >= len(d.bufs) {
		node = 0
	}
	d.idxs[node]++
	d.bufs[node] = append(d.bufs[node], demuxEntry{ev: e, idx: d.idxs[node]})
}

// Flush releases every buffered event with T strictly before the given
// bound to the sink, ordered by (T, Node, arrival). Events at or past
// the bound stay buffered — the next window may still emit events below
// them. Must be called with the engine quiescent (the window hook).
func (d *Demux) Flush(before sim.Time) {
	var out []demuxEntry
	for node, buf := range d.bufs {
		kept := buf[:0]
		for _, en := range buf {
			if en.ev.T < before {
				out = append(out, en)
			} else {
				kept = append(kept, en)
			}
		}
		d.bufs[node] = kept
	}
	d.release(out)
}

// FlushAll releases everything still buffered (end of run).
func (d *Demux) FlushAll() {
	var out []demuxEntry
	for node, buf := range d.bufs {
		out = append(out, buf...)
		d.bufs[node] = buf[:0]
	}
	d.release(out)
}

func (d *Demux) release(out []demuxEntry) {
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.ev.T != b.ev.T {
			return a.ev.T < b.ev.T
		}
		if a.ev.Node != b.ev.Node {
			return a.ev.Node < b.ev.Node
		}
		return a.idx < b.idx
	})
	for i := range out {
		d.sink.Emit(out[i].ev)
	}
}
