package trace

import (
	"strings"
	"testing"

	"cvm/internal/sim"
)

func TestSummarizeQuantiles(t *testing.T) {
	samples := make([]sim.Time, 100)
	for i := range samples {
		samples[i] = sim.Time(i + 1) // 1..100
	}
	s := summarize(samples)
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("count/min/max = %d/%v/%v", s.Count, s.Min, s.Max)
	}
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Fatalf("p50/p95/p99 = %v/%v/%v, want 50/95/99", s.P50, s.P95, s.P99)
	}
	if s.Mean != 50 { // 5050/100 truncated
		t.Fatalf("mean = %v, want 50", s.Mean)
	}
	if (summarize(nil) != LatencyStats{}) {
		t.Fatal("empty sample set must summarize to zero stats")
	}
	one := summarize([]sim.Time{7})
	if one.P50 != 7 || one.P99 != 7 || one.Min != 7 || one.Max != 7 {
		t.Fatalf("single sample: %+v", one)
	}
}

func TestAnalyzeFaultPairing(t *testing.T) {
	us := sim.Microsecond
	r := Analyze([]Event{
		{T: 0, Kind: KindFaultStart, Node: 0, Page: 3},
		{T: 10 * us, Kind: KindFaultStart, Node: 1, Page: 3}, // other node, same page
		{T: 1100 * us, Kind: KindFaultResolve, Node: 0, Page: 3},
		{T: 1200 * us, Kind: KindFaultResolve, Node: 1, Page: 3},
		{T: 2000 * us, Kind: KindFaultResolve, Node: 2, Page: 9}, // unmatched
	})
	if r.RemoteFault.Count != 2 {
		t.Fatalf("fault count = %d, want 2", r.RemoteFault.Count)
	}
	if r.RemoteFault.Min != 1100*us || r.RemoteFault.Max != 1190*us {
		t.Fatalf("fault min/max = %v/%v", r.RemoteFault.Min, r.RemoteFault.Max)
	}
}

func TestAnalyzeLockHopClassification(t *testing.T) {
	us := sim.Microsecond
	r := Analyze([]Event{
		// Node 1: request granted with no manager forward → 2-hop.
		{T: 0, Kind: KindLockRequest, Node: 1, Sync: 0},
		{T: 937 * us, Kind: KindLockAcquire, Node: 1, Sync: 0},
		// Node 2: manager (node 0) forwarded its request → 3-hop.
		{T: 2000 * us, Kind: KindLockRequest, Node: 2, Sync: 0},
		{T: 2400 * us, Kind: KindLockForward, Node: 0, Sync: 0, Peer: 1, Arg: 2},
		{T: 3382 * us, Kind: KindLockAcquire, Node: 2, Sync: 0},
		// Local acquires never enter the histograms.
		{T: 4000 * us, Kind: KindLockAcquire, Node: 2, Sync: 0, Arg: 1},
	})
	if r.Lock2Hop.Count != 1 || r.Lock2Hop.P50 != 937*us {
		t.Fatalf("2-hop: %+v", r.Lock2Hop)
	}
	if r.Lock3Hop.Count != 1 || r.Lock3Hop.P50 != 1382*us {
		t.Fatalf("3-hop: %+v", r.Lock3Hop)
	}
	if r.LocalLockAcquires != 1 {
		t.Fatalf("local acquires = %d, want 1", r.LocalLockAcquires)
	}
}

func TestAnalyzeBarrierStall(t *testing.T) {
	us := sim.Microsecond
	r := Analyze([]Event{
		{T: 0, Kind: KindBarrierArrive, Node: 0, Sync: 7},
		{T: 100 * us, Kind: KindBarrierArrive, Node: 0, Sync: 7},
		{T: 500 * us, Kind: KindBarrierRelease, Node: 0, Sync: 7},
		// Local barrier on the same id accumulates separately via Aux.
		{T: 600 * us, Kind: KindBarrierArrive, Node: 1, Sync: 7, Aux: 1},
		{T: 610 * us, Kind: KindBarrierRelease, Node: 1, Sync: 7, Aux: 1},
	})
	if r.BarrierStall.Count != 2 || r.BarrierStall.Max != 500*us || r.BarrierStall.Min != 400*us {
		t.Fatalf("barrier stall: %+v", r.BarrierStall)
	}
	if r.LocalBarrierStall.Count != 1 || r.LocalBarrierStall.P50 != 10*us {
		t.Fatalf("local barrier stall: %+v", r.LocalBarrierStall)
	}
}

func TestAnalyzeMessagePairing(t *testing.T) {
	us := sim.Microsecond
	r := Analyze([]Event{
		{T: 0, Kind: KindMsgSend, Node: 0, Peer: 1, Aux: 1},
		{T: 10 * us, Kind: KindMsgSend, Node: 1, Peer: 0, Aux: 2},
		{T: 465 * us, Kind: KindMsgDeliver, Node: 1, Peer: 0, Aux: 1},
		{T: 475 * us, Kind: KindMsgDeliver, Node: 0, Peer: 1, Aux: 2},
	})
	if r.MsgLatency.Count != 2 || r.MsgLatency.P50 != 465*us {
		t.Fatalf("msg latency: %+v", r.MsgLatency)
	}
}

func TestReportWrite(t *testing.T) {
	rec := NewRecorder(1, 1, 0)
	rec.Emit(Event{T: 0, Kind: KindFaultStart, Page: 1})
	rec.Emit(Event{T: 1100 * sim.Microsecond, Kind: KindFaultResolve, Page: 1})
	var b strings.Builder
	if err := AnalyzeRecorder(rec).Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"remote fault", "937µs", "fault.start", "2 events"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
