package chaos

import (
	"fmt"
	"testing"

	"cvm/internal/apps"
)

// TestEngineWorkersUnderChaos is the engine-parallelism axis of the
// chaos suite: the same fuzzed fault schedule must yield the fault-free
// checksum and zero invariant violations on the sequential engine and on
// the windowed engine at several worker counts — and the windowed runs
// must agree with each other on every statistic.
func TestEngineWorkersUnderChaos(t *testing.T) {
	app := "sor"
	want := baseline(t, app)
	for _, seed := range []uint64{7, 19} {
		spec := RandomSpec(seed)
		fp := mustPlan(t, spec, seed)
		var first *Result
		for _, workers := range []int{0, 1, 2, 4} {
			res, err := RunOneEngine(app, apps.SizeTest, chaosNodes, chaosThreads, workers, fp, nil)
			ctx := fmt.Sprintf("%s spec=%q seed=%d engine-workers=%d", app, spec, seed, workers)
			assertClean(t, app, ctx, res, err)
			if res.Checksum != want {
				t.Errorf("%s: checksum %x, fault-free baseline %x", ctx, res.Checksum, want)
			}
			if workers == 0 {
				continue // sequential timing may differ from windowed
			}
			if first == nil {
				r := res
				first = &r
				continue
			}
			if res.Stats.Wall != first.Stats.Wall ||
				res.Stats.Total != first.Stats.Total ||
				!res.Stats.Net.Equal(first.Stats.Net) {
				t.Errorf("%s: windowed stats diverge from workers=%d", ctx, 1)
			}
		}
	}
}
