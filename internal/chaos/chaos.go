// Package chaos is the fault-injection proving ground for the DSM: it
// runs the full application suite under adversarial network schedules
// (drop, duplication, reordering, jitter, node pauses and slowdowns)
// with the protocol invariant checker attached, and asserts the two
// properties the reliable transport guarantees:
//
//  1. correctness — every run reproduces the fault-free checksum bit
//     for bit (retransmission only perturbs virtual timing), and
//  2. cleanliness — zero protocol invariant violations, ever.
//
// The suite is deterministic end to end: fault schedules are keyed by
// seed, so a failure reproduces from its (app, shape, spec, seed)
// coordinates alone. The fuzzer shrinks a failing schedule to a minimal
// one before reporting, and failures write a violation-report artifact
// for CI when CHAOS_ARTIFACT_DIR is set.
package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/check"
)

// Result is one chaos run's outcome.
type Result struct {
	Stats    cvm.Stats
	Checksum float64
	Checker  *check.Checker // post-Finish; nil violations list on a clean run
}

// RunOne executes one application under a fault plan with the invariant
// checker attached and returns the checksum, statistics, and checker.
// reg, when non-nil, additionally collects metrics (one registry per
// run). A nil fp is the fault-free baseline.
func RunOne(name string, size apps.Size, nodes, threads int, fp *cvm.FaultPlan, reg *cvm.Metrics) (Result, error) {
	return RunOneEngine(name, size, nodes, threads, 0, fp, reg)
}

// RunOneEngine is RunOne with an explicit discrete-event execution mode:
// engineWorkers 0 runs the sequential engine, ≥ 1 the conservative
// windowed parallel engine at that worker count. The invariant checker
// observes the run through the engine's trace path (under the windowed
// engine that is the per-window demultiplexer, so events arrive in
// canonical order), making fault schedules an engine-parallelism
// determinism probe: rolls consume PRNG state in delivery order, so a
// nondeterministic commit would diverge visibly.
func RunOneEngine(name string, size apps.Size, nodes, threads, engineWorkers int, fp *cvm.FaultPlan, reg *cvm.Metrics) (Result, error) {
	return runOne(name, size, nodes, threads, engineWorkers, false, false, fp, reg)
}

// RunOneAdaptive is RunOneEngine with the adaptive coherence machinery
// switched on — per-page mode switching, and thread migration when
// migrate is set and the application tolerates re-homing. Adaptation
// decisions are functions of per-epoch protocol observations, not of
// virtual timing, so a faulted adaptive run must still reproduce the
// fault-free checksum; the checker additionally holds it to the
// adaptation invariants (mode-epoch monotonicity, cluster-wide mode
// agreement, exclusive-window diff silence, single-homed threads).
func RunOneAdaptive(name string, size apps.Size, nodes, threads, engineWorkers int, migrate bool, fp *cvm.FaultPlan, reg *cvm.Metrics) (Result, error) {
	return runOne(name, size, nodes, threads, engineWorkers, true, migrate, fp, reg)
}

func runOne(name string, size apps.Size, nodes, threads, engineWorkers int, adapt, migrate bool, fp *cvm.FaultPlan, reg *cvm.Metrics) (Result, error) {
	chk := check.New(nodes, threads)
	cfg := cvm.DefaultConfig(nodes, threads)
	cfg.EngineWorkers = engineWorkers
	cfg.Adapt = adapt
	cfg.Migrate = migrate && apps.Migratable(name)
	cfg.Tracer = chk
	cfg.Faults = fp
	cfg.Metrics = reg
	stats, sum, err := apps.RunConfigFull(name, size, cfg, 0)
	if err != nil {
		return Result{Checker: chk}, err
	}
	chk.Finish()
	return Result{Stats: stats, Checksum: sum, Checker: chk}, nil
}

// WriteViolationReport writes a violation-report artifact: the run's
// coordinates followed by every detailed violation, one per line. When
// CHAOS_ARTIFACT_DIR is unset it does nothing and returns "". CI
// uploads the directory on failure, so a red chaos job carries its own
// diagnosis.
func WriteViolationReport(name, context string, chk *check.Checker) (string, error) {
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", context)
	chk.Report(&b)
	path := filepath.Join(dir, name+".txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// splitmix64 steps the fuzzer's schedule PRNG (same generator family as
// the in-simulation fault rolls, independently seeded).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// schedRand derives the i-th uniform [0,1) draw of a seed's schedule.
func schedRand(seed uint64, i uint64) float64 {
	h := splitmix64(seed ^ splitmix64(i))
	return float64(h>>11) / float64(1<<53)
}

// RandomSpec derives a random-but-reproducible fault spec from a seed,
// exercising every injection dimension the -faults flag can express.
// The same seed always yields the same spec.
func RandomSpec(seed uint64) string {
	var parts []string
	add := func(s string, args ...any) { parts = append(parts, fmt.Sprintf(s, args...)) }
	// Probabilities in [0, 5%]: high enough to force retransmissions in
	// a SizeTest run, low enough to finish within the retry budget.
	add("drop=%.4f", 0.05*schedRand(seed, 0))
	add("dup=%.4f", 0.05*schedRand(seed, 1))
	add("reorder=%.4f", 0.05*schedRand(seed, 2))
	if schedRand(seed, 3) < 0.5 {
		add("jitter=%dus", 1+int(500*schedRand(seed, 4)))
	}
	if schedRand(seed, 5) < 0.3 {
		// Pause node 1 for up to 2ms somewhere in the first 20ms.
		add("pause=1:%dus:%dus", int(20000*schedRand(seed, 6)), 1+int(2000*schedRand(seed, 7)))
	}
	if schedRand(seed, 8) < 0.3 {
		add("slow=0:0s:%dms:%d", 5+int(20*schedRand(seed, 9)), 2+int(3*schedRand(seed, 10)))
	}
	return strings.Join(parts, ",")
}

// ShrinkSpec minimizes a failing fault spec: it repeatedly drops
// comma-separated items whose removal keeps stillFails true, returning
// the shortest schedule that still reproduces the failure. Determinism
// makes this sound — re-running a candidate spec is exact, not
// probabilistic.
func ShrinkSpec(spec string, stillFails func(spec string) bool) string {
	items := strings.Split(spec, ",")
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(items); i++ {
			candidate := strings.Join(append(append([]string{}, items[:i]...), items[i+1:]...), ",")
			if stillFails(candidate) {
				items = strings.Split(candidate, ",")
				changed = true
				break
			}
		}
	}
	return strings.Join(items, ",")
}
