package chaos

import (
	"fmt"
	"testing"

	"cvm/internal/apps"
	"cvm/internal/harness"
)

// TestAdaptiveUnderChaos is the adaptive axis of the chaos suite: fuzzed
// fault schedules against runs with per-page mode switching (and, for
// migration-safe apps, thread migration) enabled, across the sequential
// engine and the windowed engine at several worker counts. Adaptation
// must not change the computation (fault-free checksum, bit for bit),
// must stay invariant-clean under faults, and the windowed runs must
// agree with each other on every statistic — mode decisions and
// migration orders are functions of per-epoch protocol observations,
// so engine parallelism and retransmission timing must not leak in.
func TestAdaptiveUnderChaos(t *testing.T) {
	for _, tc := range []struct {
		app     string
		migrate bool
	}{
		{"sor", true},     // barrier-phased producer-consumer pages; migration-safe
		{"barnes", false}, // mode switching alone on an irregular sharer set
	} {
		want := baseline(t, tc.app)
		for _, seed := range []uint64{7, 19} {
			spec := RandomSpec(seed)
			fp := mustPlan(t, spec, seed)
			var first *Result
			for _, workers := range []int{0, 1, 2, 4} {
				res, err := RunOneAdaptive(tc.app, apps.SizeTest, chaosNodes, chaosThreads,
					workers, tc.migrate, fp, nil)
				ctx := fmt.Sprintf("%s adapt migrate=%v spec=%q seed=%d engine-workers=%d",
					tc.app, tc.migrate, spec, seed, workers)
				assertClean(t, tc.app, ctx, res, err)
				if res.Checksum != want {
					t.Errorf("%s: checksum %x, fault-free baseline %x", ctx, res.Checksum, want)
				}
				if err == nil && res.Stats.Total.ModeChanges == 0 {
					t.Errorf("%s: adaptive run applied no mode changes (axis not exercised)", ctx)
				}
				if workers == 0 {
					continue // sequential timing may differ from windowed
				}
				if first == nil {
					r := res
					first = &r
					continue
				}
				if res.Stats.Wall != first.Stats.Wall ||
					res.Stats.Total != first.Stats.Total ||
					!res.Stats.Net.Equal(first.Stats.Net) {
					t.Errorf("%s: windowed stats diverge from workers=1", ctx)
				}
			}
		}
	}
}

// TestAdaptiveFaultFree pins the no-fault adaptive runs across the whole
// suite: every application runs clean under -adapt (and -migrate where
// safe) with zero invariant violations and its fault-free checksum.
func TestAdaptiveFaultFree(t *testing.T) {
	for _, app := range harness.AppOrder {
		app := app
		t.Run(app, func(t *testing.T) {
			res, err := RunOneAdaptive(app, apps.SizeTest, chaosNodes, chaosThreads,
				0, true, nil, nil)
			assertClean(t, app, "adapt fault-free", res, err)
		})
	}
}
