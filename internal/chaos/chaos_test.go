package chaos

import (
	"bytes"
	"fmt"
	"testing"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/check"
	"cvm/internal/harness"
	"cvm/internal/metrics"
	"cvm/internal/trace"
)

const (
	chaosNodes   = 4
	chaosThreads = 2
)

// baseline computes (and caches per test run) each app's fault-free
// checksum — the oracle every faulted run must reproduce exactly.
var baselines = map[string]float64{}

func baseline(t *testing.T, app string) float64 {
	t.Helper()
	if sum, ok := baselines[app]; ok {
		return sum
	}
	res, err := RunOne(app, apps.SizeTest, chaosNodes, chaosThreads, nil, nil)
	if err != nil {
		t.Fatalf("%s fault-free baseline: %v", app, err)
	}
	if res.Checker.Count() != 0 {
		t.Fatalf("%s fault-free run violated invariants:\n%v", app, res.Checker.Err())
	}
	if res.Stats.Total.Retransmits != 0 || res.Stats.Total.DupsSuppressed != 0 {
		t.Fatalf("%s fault-free run recorded transport activity", app)
	}
	baselines[app] = res.Checksum
	return res.Checksum
}

// mustPlan parses a fault spec or fails the test.
func mustPlan(t *testing.T, spec string, seed uint64) *cvm.FaultPlan {
	t.Helper()
	fp, err := cvm.ParseFaults(spec, seed)
	if err != nil {
		t.Fatalf("ParseFaults(%q): %v", spec, err)
	}
	return fp
}

// assertClean fails the test (and writes the CI artifact) unless the run
// reproduced the baseline checksum with zero invariant violations.
func assertClean(t *testing.T, app, context string, res Result, err error) {
	t.Helper()
	if err != nil {
		t.Errorf("%s [%s]: run failed: %v", app, context, err)
		return
	}
	if want := baseline(t, app); res.Checksum != want {
		t.Errorf("%s [%s]: checksum %x, fault-free %x — faults changed the computation",
			app, context, res.Checksum, want)
	}
	if n := res.Checker.Count(); n != 0 {
		if path, werr := WriteViolationReport(
			fmt.Sprintf("%s-%s", app, t.Name()), app+" "+context, res.Checker); werr == nil && path != "" {
			t.Logf("violation report: %s", path)
		}
		t.Errorf("%s [%s]: %d invariant violation(s):\n%v", app, context, n, res.Checker.Err())
	}
}

// TestDropSweep is the chaos table: every application at every drop rate
// in {0, 0.1%, 1%, 5%} must reproduce its fault-free checksum with zero
// invariant violations.
func TestDropSweep(t *testing.T) {
	for _, rate := range []float64{0, 0.001, 0.01, 0.05} {
		for _, app := range harness.AppOrder {
			rate, app := rate, app
			t.Run(fmt.Sprintf("%s/drop=%g", app, rate), func(t *testing.T) {
				spec := fmt.Sprintf("drop=%g", rate)
				res, err := RunOne(app, apps.SizeTest, chaosNodes, chaosThreads,
					mustPlan(t, spec, 11), nil)
				assertClean(t, app, spec, res, err)
				if rate == 0 && err == nil && res.Stats.Total.Retransmits != 0 {
					t.Errorf("drop=0 run retransmitted %d times", res.Stats.Total.Retransmits)
				}
			})
		}
	}
}

// TestAcceptanceAllFaults is the issue's acceptance gate: all seven
// applications at 1% drop + dup + reorder produce fault-free-identical
// checksums, with at least one retransmission observed in the metrics
// and zero invariant violations.
func TestAcceptanceAllFaults(t *testing.T) {
	const spec = "drop=0.01,dup=0.01,reorder=0.01"
	var retransmits, dups int64
	for _, app := range harness.AppOrder {
		reg := cvm.NewMetrics()
		res, err := RunOne(app, apps.SizeTest, chaosNodes, chaosThreads,
			mustPlan(t, spec, 5), reg)
		assertClean(t, app, spec, res, err)
		if err != nil {
			continue
		}
		snap := reg.Snapshot()
		if got, want := int64(snap.Retransmits), res.Stats.Total.Retransmits; got != want {
			t.Errorf("%s: metrics Retransmits %d != NodeStats %d", app, got, want)
		}
		if got, want := int64(snap.DupSuppressed), res.Stats.Total.DupsSuppressed; got != want {
			t.Errorf("%s: metrics DupSuppressed %d != NodeStats %d", app, got, want)
		}
		if snap.NetDropped == 0 {
			t.Errorf("%s: 1%% drop run observed no drops in metrics", app)
		}
		retransmits += int64(snap.Retransmits)
		dups += int64(snap.DupSuppressed)
	}
	if retransmits == 0 {
		t.Error("acceptance sweep observed no retransmissions in metrics (Retransmits counter)")
	}
	if dups == 0 {
		t.Error("acceptance sweep suppressed no duplicate deliveries")
	}
}

// TestNodeInjections runs the suite's lock-heaviest app under pause and
// slowdown windows combined with network faults: node-level stalls must
// not break correctness either.
func TestNodeInjections(t *testing.T) {
	const spec = "drop=0.01,dup=0.005,pause=1:5ms:2ms,slow=0:0s:20ms:3"
	for _, app := range []string{"waternsq", "sor"} {
		res, err := RunOne(app, apps.SizeTest, chaosNodes, chaosThreads,
			mustPlan(t, spec, 17), nil)
		assertClean(t, app, spec, res, err)
	}
}

// fuzzCorpus is the fixed seed corpus: CI runs exactly these schedules,
// so a red run reproduces anywhere from the seed alone.
var fuzzCorpus = []uint64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987, 1597}

// TestFuzzSchedules sweeps randomized fault schedules (derived
// deterministically from the corpus seeds) across the application suite.
// On a failure it shrinks the schedule to a minimal failing spec before
// reporting, so the regression arrives pre-diagnosed.
func TestFuzzSchedules(t *testing.T) {
	corpus := fuzzCorpus
	if testing.Short() {
		corpus = corpus[:4]
	}
	for i, seed := range corpus {
		app := harness.AppOrder[i%len(harness.AppOrder)]
		spec := RandomSpec(seed)
		seed, app, spec := seed, app, spec
		t.Run(fmt.Sprintf("seed=%d/%s", seed, app), func(t *testing.T) {
			fails := func(spec string) bool {
				fp, err := cvm.ParseFaults(spec, seed)
				if err != nil {
					return false
				}
				res, err := RunOne(app, apps.SizeTest, chaosNodes, chaosThreads, fp, nil)
				return err != nil || res.Checksum != baseline(t, app) || res.Checker.Count() != 0
			}
			if !fails(spec) {
				return
			}
			minSpec := ShrinkSpec(spec, fails)
			// Re-run the minimal schedule for the full diagnosis.
			res, err := RunOne(app, apps.SizeTest, chaosNodes, chaosThreads,
				mustPlan(t, minSpec, seed), nil)
			assertClean(t, app, fmt.Sprintf("seed=%d spec=%q (shrunk from %q)", seed, minSpec, spec), res, err)
			if !t.Failed() {
				t.Errorf("%s seed=%d: full spec %q fails but shrunk %q passes — non-monotone failure",
					app, seed, spec, minSpec)
			}
		})
	}
}

// TestShrinkSpec pins the shrinker on a synthetic failure predicate.
func TestShrinkSpec(t *testing.T) {
	// Failure iff dup=0.01 present: everything else must shrink away.
	fails := func(spec string) bool {
		for _, item := range bytes.Split([]byte(spec), []byte(",")) {
			if string(item) == "dup=0.01" {
				return true
			}
		}
		return false
	}
	got := ShrinkSpec("drop=0.02,dup=0.01,reorder=0.03,jitter=100us", fails)
	if got != "dup=0.01" {
		t.Errorf("ShrinkSpec = %q, want %q", got, "dup=0.01")
	}
}

// TestRandomSpecDeterministic pins the schedule derivation: the corpus
// must mean the same schedules forever.
func TestRandomSpecDeterministic(t *testing.T) {
	for _, seed := range fuzzCorpus {
		if a, b := RandomSpec(seed), RandomSpec(seed); a != b {
			t.Fatalf("seed %d: RandomSpec not deterministic: %q vs %q", seed, a, b)
		}
		if _, err := cvm.ParseFaults(RandomSpec(seed), seed); err != nil {
			t.Errorf("seed %d: RandomSpec %q does not parse: %v", seed, RandomSpec(seed), err)
		}
	}
	if RandomSpec(1) == RandomSpec(2) {
		t.Error("distinct seeds produced identical schedules (suspicious)")
	}
}

// TestMetricsReportDeterminism: the same (seed, faults) run must produce
// a byte-identical metrics report — fault injection cannot cost the
// metrics layer its reproducibility guarantee.
func TestMetricsReportDeterminism(t *testing.T) {
	reportBytes := func() []byte {
		reg := cvm.NewMetrics()
		res, err := RunOne("waternsq", apps.SizeTest, chaosNodes, chaosThreads,
			mustPlan(t, "drop=0.02,dup=0.01,reorder=0.01,jitter=100us", 23), reg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Checker.Count() != 0 {
			t.Fatalf("violations: %v", res.Checker.Err())
		}
		var buf bytes.Buffer
		rep := metrics.NewReport(metrics.Meta{App: "waternsq", Config: "chaos"}, reg.Snapshot(), 10)
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := reportBytes(), reportBytes()
	if !bytes.Equal(a, b) {
		t.Error("metrics reports differ across identical faulted runs")
	}
}

// TestGoldenTraceDeterminism: the same (seed, faults) run must produce a
// byte-identical Chrome trace, with the checker and recorder fanned out
// through trace.Tee — observation composes without perturbing either.
func TestGoldenTraceDeterminism(t *testing.T) {
	traceBytes := func() []byte {
		rec := trace.NewRecorder(chaosNodes, chaosThreads, 0)
		chk := checkerVia(t, rec)
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, rec); err != nil {
			t.Fatal(err)
		}
		if chk != 0 {
			t.Fatalf("faulted traced run violated %d invariant(s)", chk)
		}
		return buf.Bytes()
	}
	a, b := traceBytes(), traceBytes()
	if !bytes.Equal(a, b) {
		t.Error("chrome traces differ across identical faulted runs")
	}
	// The trace must actually contain fault-model and transport events
	// (the Chrome export renders them as "drop <class>" instants in the
	// fault-inject category and "retransmit <class>" in transport).
	for _, want := range []string{"fault-inject", `"drop `, `"retransmit `} {
		if !bytes.Contains(a, []byte(want)) {
			t.Errorf("faulted trace contains no %q entries", want)
		}
	}
}

// checkerVia runs sor under faults with the recorder and a checker
// tee'd on one Tracer hook, returning the violation count.
func checkerVia(t *testing.T, rec *trace.Recorder) int {
	t.Helper()
	chk := check.New(chaosNodes, chaosThreads)
	cfg := cvm.DefaultConfig(chaosNodes, chaosThreads)
	cfg.Tracer = trace.Tee(rec, chk)
	cfg.Faults = mustPlan(t, "drop=0.02,dup=0.01", 31)
	if _, _, err := apps.RunConfigFull("sor", apps.SizeTest, cfg, 0); err != nil {
		t.Fatal(err)
	}
	chk.Finish()
	return chk.Count()
}
