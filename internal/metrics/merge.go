package metrics

import (
	"fmt"
	"reflect"
)

// mergeInto folds src into dst (both pointers to the same struct type)
// by walking the type with reflection: histograms merge bucket-wise,
// counters and plain integers add, gauges take the maximum, slices and
// maps merge element-wise (growing dst as needed). Walking the type
// instead of naming fields means a metric added anywhere under Snapshot
// is merged automatically — it cannot be silently dropped.
func mergeInto(dst, src any) {
	dv := reflect.ValueOf(dst).Elem()
	sv := reflect.ValueOf(src).Elem()
	mergeValue(dv, sv)
}

var (
	histType    = reflect.TypeOf(Histogram{})
	counterType = reflect.TypeOf(Counter(0))
	gaugeType   = reflect.TypeOf(Gauge(0))
)

// mergeValue merges src into the settable value dst.
func mergeValue(dst, src reflect.Value) {
	switch dst.Type() {
	case histType:
		dst.Addr().Interface().(*Histogram).merge(src.Addr().Interface().(*Histogram))
		return
	case gaugeType:
		if src.Int() > dst.Int() {
			dst.Set(src)
		}
		return
	}

	switch dst.Kind() {
	case reflect.Struct:
		for i := 0; i < dst.NumField(); i++ {
			mergeValue(dst.Field(i), src.Field(i))
		}

	case reflect.Slice:
		for i := 0; i < src.Len(); i++ {
			if i >= dst.Len() {
				dst.Set(reflect.Append(dst, reflect.Zero(dst.Type().Elem())))
			}
			mergeValue(dst.Index(i), src.Index(i))
		}

	case reflect.Array:
		for i := 0; i < dst.Len(); i++ {
			mergeValue(dst.Index(i), src.Index(i))
		}

	case reflect.Map:
		if src.Len() == 0 {
			return
		}
		if dst.IsNil() {
			dst.Set(reflect.MakeMap(dst.Type()))
		}
		for _, k := range src.MapKeys() {
			sv := src.MapIndex(k)
			dv := dst.MapIndex(k)
			if !dv.IsValid() || (dv.Kind() == reflect.Pointer && dv.IsNil()) {
				dv = reflect.New(dst.Type().Elem()).Elem()
				dst.SetMapIndex(k, dv)
			}
			// Map values are not addressable; merge through a copy and
			// store back.
			tmp := reflect.New(dst.Type().Elem()).Elem()
			tmp.Set(dst.MapIndex(k))
			mergeValue(tmp, sv)
			dst.SetMapIndex(k, tmp)
		}

	case reflect.Pointer:
		if src.IsNil() {
			return
		}
		if dst.IsNil() {
			dst.Set(reflect.New(dst.Type().Elem()))
		}
		mergeValue(dst.Elem(), src.Elem())

	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		// Counter and every plain integer (int64 totals, sim.Time) add.
		dst.SetInt(dst.Int() + src.Int())

	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		dst.SetUint(dst.Uint() + src.Uint())

	case reflect.String:
		// Shape metadata (message class names): first writer wins.
		if dst.String() == "" {
			dst.Set(src)
		}

	case reflect.Bool:
		if src.Bool() {
			dst.Set(src)
		}

	default:
		panic(fmt.Sprintf("metrics: cannot merge field of kind %v", dst.Kind()))
	}
}

// histograms walks every histogram reachable from s, calling fn with a
// stable scope ("node3" or "net:Lock"), the metric's JSON name, and the
// histogram. The walk is reflection-driven over NodeMetrics and
// NetMetrics, so new histogram fields appear in every consumer (report
// writers and compare) without being named anywhere.
func (s *Snapshot) histograms(fn func(scope, name string, h *Histogram)) {
	for i := range s.Nodes {
		scope := fmt.Sprintf("node%d", i)
		forEachHistField(&s.Nodes[i], func(name string, h *Histogram) {
			fn(scope, name, h)
		})
	}
	nv := reflect.ValueOf(&s.Net).Elem()
	nt := nv.Type()
	for f := 0; f < nt.NumField(); f++ {
		name := jsonName(nt.Field(f))
		fv := nv.Field(f)
		for c := 0; c < fv.Len(); c++ {
			class := fmt.Sprintf("class%d", c)
			if c < len(s.MsgClasses) {
				class = s.MsgClasses[c]
			}
			fn("net:"+class, name, fv.Index(c).Addr().Interface().(*Histogram))
		}
	}
}

// counters walks every Counter reachable from the snapshot's top level.
func (s *Snapshot) counters(fn func(name string, c *Counter)) {
	sv := reflect.ValueOf(s).Elem()
	st := sv.Type()
	for i := 0; i < st.NumField(); i++ {
		if sv.Field(i).Type() == counterType {
			fn(jsonName(st.Field(i)), sv.Field(i).Addr().Interface().(*Counter))
		}
	}
}

// EachHistogram walks every histogram reachable from s in deterministic
// order, calling fn with the same (scope, name) keys the report writers
// use ("node3"/"net:Lock", JSON field name). Exported for consumers
// outside the package — the Prometheus exporter and the backend
// equivalence gate — so they track new histogram fields automatically.
func (s *Snapshot) EachHistogram(fn func(scope, name string, h *Histogram)) {
	s.histograms(fn)
}

// EachCounter walks every top-level Counter of the snapshot in field
// order, keyed by JSON name. Exported for the same consumers as
// EachHistogram.
func (s *Snapshot) EachCounter(fn func(name string, c *Counter)) {
	s.counters(fn)
}

// forEachHistField visits the Histogram fields of a struct pointer.
func forEachHistField(ptr any, fn func(name string, h *Histogram)) {
	v := reflect.ValueOf(ptr).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if v.Field(i).Type() == histType {
			fn(jsonName(t.Field(i)), v.Field(i).Addr().Interface().(*Histogram))
		}
	}
}

// jsonName reports the field's JSON key (tag name, or Go name untagged).
func jsonName(f reflect.StructField) string {
	tag := f.Tag.Get("json")
	for i := 0; i < len(tag); i++ {
		if tag[i] == ',' {
			tag = tag[:i]
			break
		}
	}
	if tag != "" && tag != "-" {
		return tag
	}
	return f.Name
}
