package metrics

import (
	"fmt"
	"sort"
)

// Finding severities.
const (
	LevelWarn = "warn"
	LevelFail = "fail"
)

// Finding is one regression detected by CompareReports.
type Finding struct {
	Level string // LevelWarn or LevelFail
	Path  string // metric path, e.g. "node0/lock_2hop/mean"
	Base  int64
	Cur   int64
	Msg   string
}

// CompareOpts tunes the regression gate.
type CompareOpts struct {
	// LatencyTol is the allowed relative increase of a histogram mean
	// before a latency finding (0.25 = +25%).
	LatencyTol float64
	// CountTol is the allowed relative drift (either direction) of a
	// histogram count before a count finding. Counts are deterministic,
	// so the default of zero demands exact equality.
	CountTol float64
	// HardLatency escalates latency findings from warn to fail.
	HardLatency bool
}

// DefaultCompareOpts is the gate used by `cvm-metrics compare` and CI:
// counts must match exactly (the simulator is deterministic), latency
// drifts beyond 25% warn.
var DefaultCompareOpts = CompareOpts{LatencyTol: 0.25, CountTol: 0}

// CompareReports diffs cur against base, returning findings sorted by
// severity then path. Count mismatches and structural changes (a metric
// disappearing) are failures; mean increases beyond LatencyTol are
// warnings unless HardLatency. New metrics in cur are allowed silently.
func CompareReports(base, cur *Report, opts CompareOpts) []Finding {
	var fs []Finding

	bh := flattenHists(base.Snapshot)
	ch := flattenHists(cur.Snapshot)
	for _, path := range sortedKeys(bh) {
		b := bh[path]
		c, ok := ch[path]
		if !ok {
			fs = append(fs, Finding{LevelFail, path, b.Count, 0,
				"metric missing from current report"})
			continue
		}
		if exceeds(b.Count, c.Count, opts.CountTol) || exceeds(c.Count, b.Count, opts.CountTol) {
			fs = append(fs, Finding{LevelFail, path + "/count", b.Count, c.Count,
				fmt.Sprintf("count drift beyond %.0f%% (runs are deterministic)", opts.CountTol*100)})
		}
		if b.Count > 0 && c.Count > 0 && exceeds(b.Mean(), c.Mean(), opts.LatencyTol) {
			lvl := LevelWarn
			if opts.HardLatency {
				lvl = LevelFail
			}
			fs = append(fs, Finding{lvl, path + "/mean", b.Mean(), c.Mean(),
				fmt.Sprintf("mean increased beyond %.0f%%", opts.LatencyTol*100)})
		}
	}

	bc := flattenCounters(base.Snapshot)
	cc := flattenCounters(cur.Snapshot)
	for _, name := range sortedKeys(bc) {
		if base.fileKeys != nil && !base.fileKeys[name] {
			// The baseline file predates this counter: the struct walk
			// reports a zero the file never recorded. A metric that did
			// not exist when the baseline was captured cannot regress.
			continue
		}
		b := bc[name]
		c, ok := cc[name]
		if !ok {
			fs = append(fs, Finding{LevelFail, name, b, 0, "counter missing from current report"})
		} else if exceeds(b, c, opts.CountTol) || exceeds(c, b, opts.CountTol) {
			fs = append(fs, Finding{LevelFail, name, b, c,
				fmt.Sprintf("counter drift beyond %.0f%%", opts.CountTol*100)})
		}
	}

	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Level != fs[j].Level {
			return fs[i].Level == LevelFail
		}
		return fs[i].Path < fs[j].Path
	})
	return fs
}

// exceeds reports whether cur grew past base by more than tol (relative,
// with an absolute floor so tiny bases don't trip on ±1ns noise).
func exceeds(base, cur int64, tol float64) bool {
	if cur <= base {
		return false
	}
	allowed := float64(base) * tol
	if allowed < 1 {
		allowed = tol // tol==0 still demands exact equality
	}
	return float64(cur-base) > allowed
}

func flattenHists(s *Snapshot) map[string]*Histogram {
	m := make(map[string]*Histogram)
	s.histograms(func(scope, name string, h *Histogram) {
		m[scope+"/"+name] = h
	})
	return m
}

func flattenCounters(s *Snapshot) map[string]int64 {
	m := make(map[string]int64)
	s.counters(func(name string, c *Counter) {
		m[name] = int64(*c)
	})
	return m
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
