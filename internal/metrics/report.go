package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Meta identifies the run a report describes.
type Meta struct {
	App    string `json:"app,omitempty"`
	Config string `json:"config,omitempty"`
}

// HotEntry is one row of a derived hot-spot table.
type HotEntry struct {
	ID     int32 `json:"id"`
	WaitNs int64 `json:"wait_ns"`
	Count  int64 `json:"count"`
}

// Report is the serializable run profile: the raw snapshot plus the
// derived top-N hot-page and hot-lock tables. Real is present only for
// reports produced by a wall-clock backend (loopback or TCP): its
// absence is how tooling tells a virtual-time simulator report from a
// real-run report, and omitempty keeps simulator reports byte-identical
// to the pre-Real format.
type Report struct {
	Meta     Meta       `json:"meta"`
	Snapshot *Snapshot  `json:"snapshot"`
	HotPages []HotEntry `json:"hot_pages"`
	HotLocks []HotEntry `json:"hot_locks"`
	Real     *RealStats `json:"real,omitempty"`

	// fileKeys, set by ReadReport, records the snapshot's top-level JSON
	// keys actually present in the parsed file. A struct walk cannot
	// distinguish a counter recorded at zero from one the file predates
	// (both unmarshal to 0), so CompareReports consults this to honor
	// its "new metrics in cur are allowed silently" contract for
	// baselines written before a counter existed. nil for in-memory
	// reports, which always carry the full current schema.
	fileKeys map[string]bool
}

// RealStats is the wall-clock section of a real-run report: backend
// identity, elapsed wall time, and the transport traffic totals (with
// the per-peer breakdown when the backend tracks one).
type RealStats struct {
	Backend   string          `json:"backend"`
	Nodes     int             `json:"nodes"`
	ElapsedNs int64           `json:"elapsed_ns"`
	Classes   []RealClassStat `json:"classes,omitempty"`
	Peers     []RealPeerStat  `json:"peers,omitempty"`
}

// RealClassStat is one message class's transport traffic total.
type RealClassStat struct {
	Class string `json:"class"`
	Msgs  int64  `json:"msgs"`
	Bytes int64  `json:"bytes"`
}

// RealPeerStat is one destination peer's transport traffic total, as
// seen from the node(s) whose stats fed the report.
type RealPeerStat struct {
	Peer  int   `json:"peer"`
	Msgs  int64 `json:"msgs"`
	Bytes int64 `json:"bytes"`
}

// NewReport derives a report from a snapshot, keeping the top n entries
// of each hot-spot table (n ≤ 0 keeps all).
func NewReport(meta Meta, snap *Snapshot, n int) *Report {
	return &Report{
		Meta:     meta,
		Snapshot: snap,
		HotPages: hotTable(snap.PageWait, n),
		HotLocks: hotTable(snap.LockWait, n),
	}
}

func hotTable(m map[int32]*WaitAttr, n int) []HotEntry {
	entries := topN(m, n)
	out := make([]HotEntry, len(entries))
	for i, e := range entries {
		out[i] = HotEntry{ID: e.id, WaitNs: e.attr.WaitNs, Count: e.attr.Count}
	}
	return out
}

// WriteJSON writes the report as indented JSON. The encoding is
// byte-deterministic: struct fields encode in declaration order and map
// keys are sorted by encoding/json.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.Snapshot == nil {
		return nil, fmt.Errorf("metrics: report has no snapshot")
	}
	var probe struct {
		Snapshot map[string]json.RawMessage `json:"snapshot"`
	}
	if err := json.Unmarshal(data, &probe); err == nil {
		r.fileKeys = make(map[string]bool, len(probe.Snapshot))
		for k := range probe.Snapshot {
			r.fileKeys[k] = true
		}
	}
	return &r, nil
}

// WriteCSV writes one row per histogram (and per counter), walking the
// snapshot with the same reflection as Snapshot.Merge, so every metric
// field reaches the CSV without being named here.
func (r *Report) WriteCSV(w io.Writer) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("scope,metric,count,sum,min,max,mean,p50,p95,p99\n")
	r.Snapshot.histograms(func(scope, name string, h *Histogram) {
		pr("%s,%s,%d,%d,%d,%d,%d,%d,%d,%d\n",
			scope, name, h.Count, h.Sum, h.Min, h.Max,
			h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	})
	r.Snapshot.counters(func(name string, c *Counter) {
		pr("run,%s,,%d,,,,,,\n", name, int64(*c))
	})
	return err
}

// aggregateNodes merges every node's metrics into one NodeMetrics.
func aggregateNodes(s *Snapshot) NodeMetrics {
	var agg NodeMetrics
	for i := range s.Nodes {
		mergeInto(&agg, &s.Nodes[i])
	}
	return agg
}

// WriteText writes the human-readable run profile: the Figure-1 wall
// breakdown per node, cluster-wide latency histograms, per-class network
// latencies, the hot-page/hot-lock tables, and a per-node utilization
// timeline.
func (r *Report) WriteText(w io.Writer) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	s := r.Snapshot

	if r.Meta.App != "" || r.Meta.Config != "" {
		pr("run: %s %s\n\n", r.Meta.App, r.Meta.Config)
	}

	// Figure-1 decomposition: per node, wall == user + fault + lock +
	// barrier exactly (same hooks as NodeStats).
	pr("wall-time breakdown (virtual time)\n")
	pr("  %-5s %12s %12s %12s %12s %12s\n", "node", "user", "fault", "lock", "barrier", "wall")
	for i := range s.Nodes {
		n := &s.Nodes[i]
		wall := n.UserBurst.Sum + n.FaultIdle.Sum + n.LockIdle.Sum + n.BarrierIdle.Sum
		pr("  %-5d %12s %12s %12s %12s %12s\n", i,
			fmtNs(n.UserBurst.Sum), fmtNs(n.FaultIdle.Sum),
			fmtNs(n.LockIdle.Sum), fmtNs(n.BarrierIdle.Sum), fmtNs(wall))
	}

	agg := aggregateNodes(s)
	pr("\nlatency histograms (all nodes)\n")
	pr("  %-20s %9s %12s %12s %12s %12s\n", "metric", "count", "mean", "p50", "p95", "max")
	forEachHistField(&agg, func(name string, h *Histogram) {
		if h.Count == 0 {
			return
		}
		if name == "run_queue" || name == "diff_bytes" {
			// Occupancy is in threads and diff sizes in bytes, not
			// nanoseconds.
			pr("  %-20s %9d %12d %12d %12d %12d\n",
				name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Max)
			return
		}
		pr("  %-20s %9d %12s %12s %12s %12s\n", name, h.Count,
			fmtNs(h.Mean()), fmtNs(h.Quantile(0.50)), fmtNs(h.Quantile(0.95)), fmtNs(h.Max))
	})

	pr("\nnetwork latency by message class\n")
	pr("  %-10s %9s %12s %12s %12s %12s\n", "class", "count", "mean", "p95", "egress", "ingress")
	for c := range s.Net.Latency {
		h := &s.Net.Latency[c]
		if h.Count == 0 {
			continue
		}
		class := fmt.Sprintf("class%d", c)
		if c < len(s.MsgClasses) {
			class = s.MsgClasses[c]
		}
		pr("  %-10s %9d %12s %12s %12s %12s\n", class, h.Count,
			fmtNs(h.Mean()), fmtNs(h.Quantile(0.95)),
			fmtNs(s.Net.EgressWait[c].Mean()), fmtNs(s.Net.IngressWait[c].Mean()))
	}

	writeHot := func(title, unit string, entries []HotEntry) {
		if len(entries) == 0 {
			return
		}
		pr("\n%s\n", title)
		pr("  %-8s %12s %9s %12s\n", unit, "wait", "waits", "mean")
		for _, e := range entries {
			mean := int64(0)
			if e.Count > 0 {
				mean = e.WaitNs / e.Count
			}
			pr("  %-8d %12s %9d %12s\n", e.ID, fmtNs(e.WaitNs), e.Count, fmtNs(mean))
		}
	}
	writeHot("hottest pages (fault wait)", "page", r.HotPages)
	writeHot("most contended locks (acquire wait)", "lock", r.HotLocks)

	if re := r.Real; re != nil {
		pr("\nreal transport (%s, %d nodes, wall time)\n", re.Backend, re.Nodes)
		pr("  elapsed: %s\n", fmtNs(re.ElapsedNs))
		if len(re.Classes) > 0 {
			pr("  %-10s %9s %12s\n", "class", "msgs", "bytes")
			for _, c := range re.Classes {
				pr("  %-10s %9d %12d\n", c.Class, c.Msgs, c.Bytes)
			}
		}
		if len(re.Peers) > 0 {
			pr("  %-10s %9s %12s\n", "peer", "msgs", "bytes")
			for _, p := range re.Peers {
				pr("  node%-6d %9d %12d\n", p.Peer, p.Msgs, p.Bytes)
			}
		}
	}

	writeTimeline(pr, s)
	return err
}

// timelineCols bounds the width of the ASCII utilization timeline.
const timelineCols = 60

// writeTimeline renders each node's utilization timeline, one character
// per (possibly downsampled) bin: the dominant component of the bin
// (U=user, F=fault, L=lock, B=barrier, .=no attributed time).
func writeTimeline(pr func(string, ...any), s *Snapshot) {
	bins := 0
	for _, tl := range s.Timeline {
		if len(tl) > bins {
			bins = len(tl)
		}
	}
	if bins == 0 {
		return
	}
	group := (bins + timelineCols - 1) / timelineCols
	cols := (bins + group - 1) / group
	pr("\nutilization timeline (%s per column; U=user F=fault L=lock B=barrier)\n",
		fmtNs(int64(s.IntervalNs)*int64(group)))
	for node, tl := range s.Timeline {
		var row strings.Builder
		for c := 0; c < cols; c++ {
			var bin TimelineBin
			for g := 0; g < group; g++ {
				if i := c*group + g; i < len(tl) {
					bin.UserNs += tl[i].UserNs
					bin.FaultNs += tl[i].FaultNs
					bin.LockNs += tl[i].LockNs
					bin.BarrierNs += tl[i].BarrierNs
				}
			}
			row.WriteByte(dominant(&bin))
		}
		pr("  node%-3d |%s|\n", node, row.String())
	}
	if s.TimelineClippedNs > 0 {
		pr("  (timeline clipped: %s past bin cap)\n", fmtNs(int64(s.TimelineClippedNs)))
	}
}

func dominant(b *TimelineBin) byte {
	if b.total() == 0 {
		return '.'
	}
	best, ch := b.UserNs, byte('U')
	if b.FaultNs > best {
		best, ch = b.FaultNs, 'F'
	}
	if b.LockNs > best {
		best, ch = b.LockNs, 'L'
	}
	if b.BarrierNs > best {
		ch = 'B'
	}
	return ch
}

// fmtNs renders a virtual-time duration with a fixed, deterministic
// format: ns below 10µs, µs below 10ms, ms otherwise.
func fmtNs(ns int64) string {
	switch {
	case ns < 10_000 && ns > -10_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 10_000_000 && ns > -10_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	}
}
