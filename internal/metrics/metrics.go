// Package metrics is the virtual-time metrics layer of the simulated
// DSM: a deterministic registry of counters, gauges, and fixed-bucket
// log-scale histograms, plus the hot-spot attribution behind the
// per-page and per-lock profiler tables.
//
// Like trace.Tracer, the registry is nil-checkable: hot paths hold a
// per-node *NodeMetrics (or the *Registry itself) and guard every
// observation with one predictable branch, so a disabled registry costs
// nothing. All observations are pointer-free in-place updates — no
// allocation on the hot path beyond the amortized growth of the
// attribution maps and timeline bins.
//
// Because the simulator dispatches one entity at a time in virtual-time
// order, observation order is deterministic and the registry needs no
// locking; a Registry must not be shared between concurrent systems.
// The serialized Snapshot — and therefore every report built from it —
// is byte-reproducible for a given configuration.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"

	"cvm/internal/sim"
)

// NumBuckets is the fixed bucket count of every histogram. Bucket i
// holds values v with bits.Len64(v) == i: bucket 0 is exactly zero,
// bucket i ≥ 1 covers [2^(i-1), 2^i). The layout is value-range
// complete for non-negative int64, so observation never branches on
// configuration.
const NumBuckets = 64

// Histogram is a fixed-bucket log2-scale histogram. The struct is
// pointer-free and fixed-size: observing never allocates, and snapshots
// are plain value copies. Sum/Min/Max are exact; quantiles are bucket
// upper bounds (≤ one power of two of error).
type Histogram struct {
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
	Buckets [NumBuckets]int64
}

// Observe records v (negative values clamp to zero, preserving Count).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(uint64(v))]++
}

// Mean reports the exact mean of observed values (0 when empty).
func (h *Histogram) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Quantile reports the upper bound of the bucket holding the p-quantile
// (nearest rank), clamped to the exact Max. p is in [0, 1].
func (h *Histogram) Quantile(p float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(float64(h.Count)*p + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += h.Buckets[i]
		if cum >= rank {
			u := bucketUpper(i)
			if u > h.Max {
				u = h.Max
			}
			return u
		}
	}
	return h.Max
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// merge folds other into h.
func (h *Histogram) merge(other *Histogram) {
	if other.Count == 0 {
		return
	}
	if h.Count == 0 {
		*h = *other
		return
	}
	if other.Min < h.Min {
		h.Min = other.Min
	}
	if other.Max > h.Max {
		h.Max = other.Max
	}
	h.Count += other.Count
	h.Sum += other.Sum
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// histJSON is the wire form of a Histogram: the zero buckets are
// omitted, keyed by bucket index. encoding/json sorts map keys, so the
// encoding is deterministic.
type histJSON struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Min     int64            `json:"min,omitempty"`
	Max     int64            `json:"max,omitempty"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// MarshalJSON encodes the histogram sparsely (only nonzero buckets).
func (h Histogram) MarshalJSON() ([]byte, error) {
	j := histJSON{Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max}
	for i, c := range h.Buckets {
		if c != 0 {
			if j.Buckets == nil {
				j.Buckets = make(map[string]int64)
			}
			j.Buckets[strconv.Itoa(i)] = c
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the sparse form written by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var j histJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*h = Histogram{Count: j.Count, Sum: j.Sum, Min: j.Min, Max: j.Max}
	for k, c := range j.Buckets {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 || i >= NumBuckets {
			return fmt.Errorf("metrics: bad histogram bucket key %q", k)
		}
		h.Buckets[i] = c
	}
	return nil
}

// Counter is a monotonic counter. Counters merge by addition.
type Counter int64

// Add increases the counter by d.
func (c *Counter) Add(d int64) { *c += Counter(d) }

// Gauge is a last-value metric (an instantaneous level, not a total).
// Gauges merge by maximum.
type Gauge int64

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) { *g = Gauge(v) }

// WaitAttr accumulates blocked time attributed to one entity (a page or
// a lock): total wait and the number of waits.
type WaitAttr struct {
	WaitNs int64 `json:"wait_ns"`
	Count  int64 `json:"count"`
}

// TimelineBin is one fixed-interval slice of a node's utilization
// timeline: how the node's virtual time in the bin divided between user
// execution and the three idle classes.
type TimelineBin struct {
	UserNs    int64 `json:"user_ns"`
	FaultNs   int64 `json:"fault_ns"`
	LockNs    int64 `json:"lock_ns"`
	BarrierNs int64 `json:"barrier_ns"`
}

// Timeline components, indexing TimelineBin fields.
const (
	TimelineUser = iota
	TimelineFault
	TimelineLock
	TimelineBarrier
)

func (b *TimelineBin) add(comp int, d int64) {
	switch comp {
	case TimelineUser:
		b.UserNs += d
	case TimelineFault:
		b.FaultNs += d
	case TimelineLock:
		b.LockNs += d
	case TimelineBarrier:
		b.BarrierNs += d
	}
}

// total reports the bin's attributed virtual time across components.
func (b *TimelineBin) total() int64 {
	return b.UserNs + b.FaultNs + b.LockNs + b.BarrierNs
}

// NodeMetrics are one node's histograms. Every exported field must be a
// Histogram, Counter, or Gauge: the reflection-driven report writer,
// Snapshot.Merge, and the compare tool walk the fields, so a new metric
// added here automatically reaches every consumer (guarded by
// TestRegistryFieldsReachReportAndMerge).
//
// Time-valued histograms observe nanoseconds of virtual time.
type NodeMetrics struct {
	// The Figure-1 wall-time decomposition, observed from the scheduler
	// hooks: UserBurst records every execution slice (run-burst length),
	// and the three idle histograms record fully-idle processor episodes
	// by block reason. Their sums reconcile exactly with
	// NodeStats.UserTime/FaultWait/LockWait/BarrierWait, so
	// UserBurst.Sum + FaultIdle.Sum + LockIdle.Sum + BarrierIdle.Sum ==
	// NodeStats.Wall().
	UserBurst   Histogram `json:"user_burst"`
	FaultIdle   Histogram `json:"fault_idle"`
	LockIdle    Histogram `json:"lock_idle"`
	BarrierIdle Histogram `json:"barrier_idle"`

	// Protocol service times. FaultService spans a remote fault from
	// fault start to page consistency (the paper's ~1100µs path);
	// FaultThreadWait is each thread's blocked time per fault (joiners
	// included). Lock2Hop/Lock3Hop span request→acquire for remote lock
	// acquires by hop count (937µs / 1382µs uncontended);
	// LockLocalWait is the blocked time of local-queue (Block Same
	// Lock) acquires. BarrierStall spans arrive→release per thread.
	FaultService    Histogram `json:"fault_service"`
	FaultThreadWait Histogram `json:"fault_thread_wait"`
	Lock2Hop        Histogram `json:"lock_2hop"`
	Lock3Hop        Histogram `json:"lock_3hop"`
	LockLocalWait   Histogram `json:"lock_local_wait"`
	BarrierStall    Histogram `json:"barrier_stall"`

	LocalBarrierStall Histogram `json:"local_barrier_stall"`

	// DiffBytes observes the wire size of every diff materialized at
	// this node. RunQueue observes the ready-queue depth at each
	// execution slice (scheduler occupancy; unit: threads, not ns).
	DiffBytes Histogram `json:"diff_bytes"`
	RunQueue  Histogram `json:"run_queue"`
}

// NetMetrics are the interconnect histograms, indexed by message class
// in netsim class order (Snapshot.MsgClasses carries the names).
type NetMetrics struct {
	// Latency spans egress departure → handler start (wire plus ingress
	// queueing plus receive overhead). EgressWait and IngressWait are
	// the serialization delays at the sender NIC and receiver ingress.
	Latency     []Histogram `json:"latency"`
	EgressWait  []Histogram `json:"egress_wait"`
	IngressWait []Histogram `json:"ingress_wait"`
}

// Snapshot is the complete serializable state of a Registry. Merge
// folds another snapshot in (histograms add bucket-wise, counters add,
// gauges take the maximum), which the harness uses to aggregate
// per-cell registries of a grid in deterministic job order.
type Snapshot struct {
	Nodes      []NodeMetrics `json:"nodes"`
	Net        NetMetrics    `json:"net"`
	MsgClasses []string      `json:"msg_classes"`

	// PageWait attributes fault-blocked thread time to page ids;
	// LockWait attributes lock-blocked thread time to lock ids. The
	// top-N hot tables are derived from these at report time.
	PageWait map[int32]*WaitAttr `json:"page_wait"`
	LockWait map[int32]*WaitAttr `json:"lock_wait"`

	// Timeline is the per-node utilization timeline: fixed
	// IntervalNs-wide bins from EpochNs, each splitting the node's time
	// into user/fault/lock/barrier. Spans past the bin cap accumulate
	// in TimelineClippedNs instead of growing without bound.
	Timeline          [][]TimelineBin `json:"timeline"`
	IntervalNs        Gauge           `json:"interval_ns"`
	EpochNs           Gauge           `json:"epoch_ns"`
	TimelineClippedNs Counter         `json:"timeline_clipped_ns"`

	// Fault-injection and reliable-transport accounting. NetDropped and
	// NetDuplicated count messages the fault model discarded or replicated
	// at the network layer; Retransmits counts sender-side re-sends after
	// an ack timeout; DupSuppressed counts replayed deliveries the
	// receiver deduped. All stay zero on a fault-free run.
	NetDropped    Counter `json:"net_dropped"`
	NetDuplicated Counter `json:"net_duplicated"`
	Retransmits   Counter `json:"retransmits"`
	DupSuppressed Counter `json:"dup_suppressed"`

	// Backend-invariant synchronization counters: one increment per
	// application-level Lock, Unlock, Barrier, LocalBarrier, and Reduce
	// call. These are properties of the program, not of the protocol or
	// the clock, so the deterministic simulator and the real runtime
	// must agree on them exactly — `cvm-metrics diff-backends` and
	// harness.GuardTransportEquivalence gate on that equality. They are
	// run-lifetime counts: the steady-state Reset does not clear them
	// (the real runtime has no cluster-wide reset instant, so a windowed
	// count could never line up across backends).
	LockAcquires         Counter `json:"lock_acquires"`
	LockReleases         Counter `json:"lock_releases"`
	BarrierArrivals      Counter `json:"barrier_arrivals"`
	LocalBarrierArrivals Counter `json:"local_barrier_arrivals"`
	Reductions           Counter `json:"reductions"`
}

// BackendInvariantCounters names the Snapshot counters every backend
// must agree on exactly for the same application and shape (the
// diff-backends equivalence gate). The names are the counters' JSON
// keys, as produced by EachCounter.
func BackendInvariantCounters() []string {
	return []string{
		"lock_acquires",
		"lock_releases",
		"barrier_arrivals",
		"local_barrier_arrivals",
		"reductions",
	}
}

// Merge folds other into s field-by-field via reflection, so metrics
// added to any struct reached from Snapshot merge without new code.
func (s *Snapshot) Merge(other *Snapshot) { mergeInto(s, other) }

// Clone returns a deep copy of s.
func (s *Snapshot) Clone() *Snapshot {
	out := &Snapshot{}
	out.Merge(s)
	return out
}

// Registry collects a run's metrics. Create with NewRegistry, set on
// core.Config.Metrics; the system configures the shape at construction.
// A Registry observes one system's single run and must not be shared
// between concurrent systems.
type Registry struct {
	configured bool
	interval   sim.Time
	maxBins    int
	epoch      sim.Time
	snap       Snapshot

	// shards hold the observations that hot paths attribute to a known
	// node: wait attribution, timeline clipping, and transport counters.
	// Keeping them per node lets the conservative windowed engine observe
	// from concurrent per-node workers without locks; Snapshot folds the
	// shards in node order, and every fold operation is commutative, so
	// the folded snapshot is byte-identical at any worker count.
	shards []regShard

	// syncShards hold the backend-invariant synchronization counts.
	// Unlike shards they survive Reset: the counts are run-lifetime by
	// contract (see the Snapshot field comment), so Configure only
	// allocates them on first configuration.
	syncShards []syncCounts
}

// syncCounts is one node's shard of the backend-invariant counters.
type syncCounts struct {
	lockAcquires         int64
	lockReleases         int64
	barrierArrivals      int64
	localBarrierArrivals int64
	reductions           int64
}

// regShard is one node's lock-free observation shard.
type regShard struct {
	pageWait      map[int32]*WaitAttr
	lockWait      map[int32]*WaitAttr
	clippedNs     int64
	retransmits   int64
	dupSuppressed int64
}

// DefaultTimelineInterval is the default utilization-timeline bin width.
const DefaultTimelineInterval = 10 * sim.Millisecond

// defaultMaxBins bounds the per-node timeline length (bins past the cap
// accumulate in TimelineClippedNs).
const defaultMaxBins = 4096

// NewRegistry returns an unconfigured registry with the default
// timeline interval.
func NewRegistry() *Registry {
	return &Registry{interval: DefaultTimelineInterval, maxBins: defaultMaxBins}
}

// SetInterval sets the utilization-timeline bin width. It must be
// called before the registry is attached to a system; d must be > 0.
func (r *Registry) SetInterval(d sim.Time) {
	if d <= 0 {
		panic("metrics: SetInterval with non-positive interval")
	}
	if r.configured {
		panic("metrics: SetInterval after Configure")
	}
	r.interval = d
}

// Configure sizes the registry for a cluster. The system calls it once
// at construction; configuring twice panics, catching registries shared
// between systems (their interleaved observations would be
// system-order-dependent).
func (r *Registry) Configure(nodes int, msgClasses []string) {
	if r.configured {
		panic("metrics: Registry attached to a second system")
	}
	r.configured = true
	r.snap.Nodes = make([]NodeMetrics, nodes)
	r.snap.Net = NetMetrics{
		Latency:     make([]Histogram, len(msgClasses)),
		EgressWait:  make([]Histogram, len(msgClasses)),
		IngressWait: make([]Histogram, len(msgClasses)),
	}
	r.snap.MsgClasses = append([]string(nil), msgClasses...)
	r.snap.PageWait = make(map[int32]*WaitAttr)
	r.snap.LockWait = make(map[int32]*WaitAttr)
	r.snap.Timeline = make([][]TimelineBin, nodes)
	r.snap.IntervalNs.Set(int64(r.interval))
	r.shards = make([]regShard, nodes)
	for i := range r.shards {
		r.shards[i] = regShard{
			pageWait: make(map[int32]*WaitAttr),
			lockWait: make(map[int32]*WaitAttr),
		}
	}
	if len(r.syncShards) != nodes {
		r.syncShards = make([]syncCounts, nodes)
	}
}

// Node returns node i's metrics struct for hot-path observation.
func (r *Registry) Node(i int) *NodeMetrics { return &r.snap.Nodes[i] }

// Net returns the interconnect metrics for hot-path observation.
func (r *Registry) Net() *NetMetrics { return &r.snap.Net }

// PageFaultWait attributes d of fault-blocked thread time on node to
// page pg.
func (r *Registry) PageFaultWait(node int, pg int32, d sim.Time) {
	attrAdd(r.shards[node].pageWait, pg, d)
}

// LockAcquireWait attributes d of lock-blocked thread time on node to
// lock id.
func (r *Registry) LockAcquireWait(node int, id int32, d sim.Time) {
	attrAdd(r.shards[node].lockWait, id, d)
}

// FaultCounters exposes the network-layer fault counters for the fault
// model to increment directly. The returned addresses are stable across
// Reset (the snapshot is an embedded value), so they may be installed
// once at system construction.
func (r *Registry) FaultCounters() (dropped, dupped *Counter) {
	return &r.snap.NetDropped, &r.snap.NetDuplicated
}

// CountRetransmit records one reliable-transport retransmission by node.
func (r *Registry) CountRetransmit(node int) { r.shards[node].retransmits++ }

// CountDupSuppressed records one deduped replayed delivery at node.
func (r *Registry) CountDupSuppressed(node int) { r.shards[node].dupSuppressed++ }

// CountLockAcquire records one application-level Lock call by node.
func (r *Registry) CountLockAcquire(node int) { r.syncShards[node].lockAcquires++ }

// CountLockRelease records one application-level Unlock call by node.
func (r *Registry) CountLockRelease(node int) { r.syncShards[node].lockReleases++ }

// CountBarrierArrive records one global-barrier arrival by node.
func (r *Registry) CountBarrierArrive(node int) { r.syncShards[node].barrierArrivals++ }

// CountLocalBarrierArrive records one intra-node barrier arrival by node.
func (r *Registry) CountLocalBarrierArrive(node int) {
	r.syncShards[node].localBarrierArrivals++
}

// CountReduce records one global-reduction arrival by node.
func (r *Registry) CountReduce(node int) { r.syncShards[node].reductions++ }

func attrAdd(m map[int32]*WaitAttr, k int32, d sim.Time) {
	a := m[k]
	if a == nil {
		a = &WaitAttr{}
		m[k] = a
	}
	a.WaitNs += int64(d)
	a.Count++
}

// TimelineAdd distributes the span [start, end) of node's time across
// the timeline bins of the given component. Spans before the epoch
// (pre-steady-state remainders) clamp; spans past the bin cap
// accumulate in TimelineClippedNs.
func (r *Registry) TimelineAdd(node int, start, end sim.Time, comp int) {
	if start < r.epoch {
		start = r.epoch
	}
	if end <= start {
		return
	}
	bins := r.snap.Timeline[node]
	for start < end {
		i := int((start - r.epoch) / r.interval)
		if i >= r.maxBins {
			r.shards[node].clippedNs += int64(end - start)
			break
		}
		for len(bins) <= i {
			bins = append(bins, TimelineBin{})
		}
		binEnd := r.epoch + sim.Time(i+1)*r.interval
		if binEnd > end {
			binEnd = end
		}
		bins[i].add(comp, int64(binEnd-start))
		start = binEnd
	}
	r.snap.Timeline[node] = bins
}

// Reset zeroes every metric and re-anchors the timeline at epoch. The
// system calls it from MarkSteadyState, alongside the statistics reset,
// so metrics cover exactly the steady-state window NodeStats covers.
func (r *Registry) Reset(epoch sim.Time) {
	r.epoch = epoch
	nodes := len(r.snap.Nodes)
	classes := r.snap.MsgClasses
	r.snap = Snapshot{}
	r.configured = false
	r.Configure(nodes, classes)
	r.snap.EpochNs.Set(int64(epoch))
}

// Snapshot returns a deep copy of the collected metrics, folding the
// per-node shards in node order.
func (r *Registry) Snapshot() *Snapshot {
	out := r.snap.Clone()
	if out.PageWait == nil {
		out.PageWait = make(map[int32]*WaitAttr)
	}
	if out.LockWait == nil {
		out.LockWait = make(map[int32]*WaitAttr)
	}
	for i := range r.shards {
		sh := &r.shards[i]
		for k, a := range sh.pageWait {
			mergeAttr(out.PageWait, k, a)
		}
		for k, a := range sh.lockWait {
			mergeAttr(out.LockWait, k, a)
		}
		out.TimelineClippedNs.Add(sh.clippedNs)
		out.Retransmits.Add(sh.retransmits)
		out.DupSuppressed.Add(sh.dupSuppressed)
	}
	for i := range r.syncShards {
		sy := &r.syncShards[i]
		out.LockAcquires.Add(sy.lockAcquires)
		out.LockReleases.Add(sy.lockReleases)
		out.BarrierArrivals.Add(sy.barrierArrivals)
		out.LocalBarrierArrivals.Add(sy.localBarrierArrivals)
		out.Reductions.Add(sy.reductions)
	}
	return out
}

func mergeAttr(m map[int32]*WaitAttr, k int32, a *WaitAttr) {
	dst := m[k]
	if dst == nil {
		dst = &WaitAttr{}
		m[k] = dst
	}
	dst.WaitNs += a.WaitNs
	dst.Count += a.Count
}

// hotEntry is one row of a derived top-N table.
type hotEntry struct {
	id   int32
	attr WaitAttr
}

// topN derives the N highest-wait entries of an attribution map,
// ordered by total wait descending with ascending-id tiebreak, so the
// table is deterministic for a deterministic run.
func topN(m map[int32]*WaitAttr, n int) []hotEntry {
	entries := make([]hotEntry, 0, len(m))
	for id, a := range m {
		entries = append(entries, hotEntry{id, *a})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].attr.WaitNs != entries[j].attr.WaitNs {
			return entries[i].attr.WaitNs > entries[j].attr.WaitNs
		}
		return entries[i].id < entries[j].id
	})
	if n > 0 && len(entries) > n {
		entries = entries[:n]
	}
	return entries
}
