package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"cvm/internal/sim"
)

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 1000, 1 << 40, -5} {
		h.Observe(v)
	}
	if h.Count != 7 {
		t.Fatalf("Count = %d, want 7", h.Count)
	}
	if h.Min != 0 || h.Max != 1<<40 {
		t.Fatalf("Min/Max = %d/%d, want 0/%d", h.Min, h.Max, int64(1)<<40)
	}
	wantSum := int64(0 + 1 + 2 + 3 + 1000 + 1<<40 + 0) // -5 clamps to 0
	if h.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", h.Sum, wantSum)
	}
	// Bucket 0 holds exact zeros (two: the observed 0 and the clamped -5).
	if h.Buckets[0] != 2 {
		t.Fatalf("Buckets[0] = %d, want 2", h.Buckets[0])
	}
	// 2 and 3 share bucket 2 ([2,4)).
	if h.Buckets[2] != 2 {
		t.Fatalf("Buckets[2] = %d, want 2", h.Buckets[2])
	}
	var total int64
	for _, c := range h.Buckets {
		total += c
	}
	if total != h.Count {
		t.Fatalf("bucket total %d != Count %d", total, h.Count)
	}
}

func TestHistogramMeanQuantile(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zero mean and quantiles")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	if want := int64(50500); h.Mean() != want {
		t.Fatalf("Mean = %d, want %d", h.Mean(), want)
	}
	// Quantiles are bucket upper bounds, so only coarse assertions hold:
	// monotone, within [Min, Max], and p=1 is exactly Max.
	q50, q95, q100 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(1)
	if q50 > q95 || q95 > q100 {
		t.Fatalf("quantiles not monotone: %d %d %d", q50, q95, q100)
	}
	if q100 != h.Max {
		t.Fatalf("Quantile(1) = %d, want Max %d", q100, h.Max)
	}
	if q50 < h.Min || q50 > h.Max {
		t.Fatalf("Quantile(0.5) = %d outside [%d, %d]", q50, h.Min, h.Max)
	}
	// The p50 of 1000..100000 lies in the bucket of 50000.
	if q50 < 50000 || q50 > 65535 {
		t.Fatalf("Quantile(0.5) = %d, want in [50000, 65535]", q50)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for i := int64(0); i < 50; i++ {
		a.Observe(i * 7)
		whole.Observe(i * 7)
	}
	for i := int64(50); i < 90; i++ {
		b.Observe(i * 7)
		whole.Observe(i * 7)
	}
	a.merge(&b)
	if a != whole {
		t.Fatalf("merge mismatch:\n got %+v\nwant %+v", a, whole)
	}
	// Merging into an empty histogram copies (including Min).
	var empty Histogram
	empty.merge(&whole)
	if empty != whole {
		t.Fatal("merge into empty should copy")
	}
	// Merging an empty histogram is a no-op.
	before := whole
	whole.merge(&Histogram{})
	if whole != before {
		t.Fatal("merging empty should be a no-op")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 900, 1 << 30, math.MaxInt64} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	// Sparse: 5 observations must not serialize 64 buckets.
	if bytes.Count(data, []byte(":")) > 12 {
		t.Fatalf("encoding not sparse: %s", data)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, h)
	}
	// Deterministic encoding.
	data2, _ := json.Marshal(h)
	if !bytes.Equal(data, data2) {
		t.Fatal("non-deterministic histogram encoding")
	}
	// Bad bucket keys error.
	if err := json.Unmarshal([]byte(`{"count":1,"buckets":{"x":1}}`), &back); err == nil {
		t.Fatal("expected error for non-numeric bucket key")
	}
	if err := json.Unmarshal([]byte(`{"count":1,"buckets":{"64":1}}`), &back); err == nil {
		t.Fatal("expected error for out-of-range bucket key")
	}
}

func TestTimelineAddSplitsAcrossBins(t *testing.T) {
	r := NewRegistry()
	r.SetInterval(100)
	r.Configure(2, []string{"a"})

	// A span covering [50, 250) splits 50/100/50 across bins 0-2.
	r.TimelineAdd(0, 50, 250, TimelineUser)
	bins := r.snap.Timeline[0]
	if len(bins) != 3 {
		t.Fatalf("len(bins) = %d, want 3", len(bins))
	}
	for i, want := range []int64{50, 100, 50} {
		if bins[i].UserNs != want {
			t.Errorf("bin %d UserNs = %d, want %d", i, bins[i].UserNs, want)
		}
	}

	// Spans before the epoch clamp; zero-length spans are dropped.
	r.Reset(1000)
	r.TimelineAdd(0, 900, 1050, TimelineFault)
	r.TimelineAdd(0, 1050, 1050, TimelineLock)
	bins = r.snap.Timeline[0]
	if len(bins) != 1 || bins[0].FaultNs != 50 || bins[0].LockNs != 0 {
		t.Fatalf("after epoch clamp: %+v", bins)
	}
	if bins[0].total() != 50 {
		t.Fatalf("total = %d, want 50", bins[0].total())
	}
}

func TestTimelineAddClips(t *testing.T) {
	r := NewRegistry()
	r.SetInterval(10)
	r.maxBins = 4
	r.Configure(1, nil)
	// Bins cover [0, 40); the rest of the span must be clipped, not
	// allocated.
	r.TimelineAdd(0, 35, 95, TimelineBarrier)
	bins := r.snap.Timeline[0]
	if len(bins) != 4 {
		t.Fatalf("len(bins) = %d, want 4 (capped)", len(bins))
	}
	if bins[3].BarrierNs != 5 {
		t.Fatalf("last bin BarrierNs = %d, want 5", bins[3].BarrierNs)
	}
	if got := int64(r.Snapshot().TimelineClippedNs); got != 55 {
		t.Fatalf("TimelineClippedNs = %d, want 55", got)
	}
}

func TestRegistryConfigureTwicePanics(t *testing.T) {
	r := NewRegistry()
	r.Configure(1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Configure")
		}
	}()
	r.Configure(1, nil)
}

func TestSetIntervalValidation(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "non-positive interval", func() { r.SetInterval(0) })
	r.SetInterval(sim.Millisecond)
	r.Configure(1, nil)
	mustPanic(t, "SetInterval after Configure", func() { r.SetInterval(sim.Millisecond) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestTopNDeterministic(t *testing.T) {
	m := map[int32]*WaitAttr{
		7: {WaitNs: 100, Count: 1},
		3: {WaitNs: 300, Count: 2},
		5: {WaitNs: 100, Count: 4},
		1: {WaitNs: 200, Count: 1},
	}
	got := topN(m, 3)
	wantIDs := []int32{3, 1, 5} // 100ns tie between 5 and 7 breaks to lower id
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, id := range wantIDs {
		if got[i].id != id {
			t.Fatalf("row %d id = %d, want %d (rows %+v)", i, got[i].id, id, got)
		}
	}
	for i := 0; i < 100; i++ {
		again := topN(m, 3)
		if !reflect.DeepEqual(got, again) {
			t.Fatal("topN order not deterministic")
		}
	}
}

func TestSnapshotMergeAndClone(t *testing.T) {
	a := registryWithData(1)
	b := registryWithData(3)

	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa.Clone()
	merged.Merge(sb)

	// Histograms add bucket-wise.
	if got, want := merged.Nodes[0].UserBurst.Count, sa.Nodes[0].UserBurst.Count+sb.Nodes[0].UserBurst.Count; got != want {
		t.Fatalf("merged UserBurst.Count = %d, want %d", got, want)
	}
	// Counters add.
	if got, want := int64(merged.TimelineClippedNs), int64(sa.TimelineClippedNs)+int64(sb.TimelineClippedNs); got != want {
		t.Fatalf("merged TimelineClippedNs = %d, want %d", got, want)
	}
	// Attribution maps merge per key.
	if got := merged.PageWait[9].Count; got != 2 {
		t.Fatalf("merged PageWait[9].Count = %d, want 2", got)
	}
	if got := merged.PageWait[9].WaitNs; got != int64(1+3)*1000 {
		t.Fatalf("merged PageWait[9].WaitNs = %d, want 4000", got)
	}
	// Class names are first-wins strings, not concatenations.
	if !reflect.DeepEqual(merged.MsgClasses, sa.MsgClasses) {
		t.Fatalf("merged MsgClasses = %v", merged.MsgClasses)
	}
	// Merge must not alias the source: mutating merged leaves sb intact.
	merged.PageWait[9].Count = 99
	if sb.PageWait[9].Count != 1 {
		t.Fatal("Merge aliased a source map value")
	}
	// Clone is deep.
	c := sa.Clone()
	c.Nodes[0].UserBurst.Observe(1)
	c.PageWait[9].WaitNs = 0
	if sa.Nodes[0].UserBurst.Count != 1 || sa.PageWait[9].WaitNs != 1000 {
		t.Fatal("Clone shares state with its source")
	}
}

// registryWithData builds a 2-node registry with one observation of
// each family, scaled by k.
func registryWithData(k int64) *Registry {
	r := NewRegistry()
	r.Configure(2, []string{"a", "b"})
	r.Node(0).UserBurst.Observe(k * 10)
	r.Node(1).Lock2Hop.Observe(k * 100)
	r.Net().Latency[1].Observe(k * 7)
	r.PageFaultWait(0, 9, sim.Time(k*1000))
	r.LockAcquireWait(0, 4, sim.Time(k*500))
	r.TimelineAdd(0, 0, sim.Time(k)*r.interval, TimelineUser)
	r.snap.TimelineClippedNs.Add(k)
	return r
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	s := registryWithData(2).Snapshot()
	d1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := json.Marshal(s)
	if !bytes.Equal(d1, d2) {
		t.Fatal("non-deterministic snapshot encoding")
	}
	var back Snapshot
	if err := json.Unmarshal(d1, &back); err != nil {
		t.Fatal(err)
	}
	d3, _ := json.Marshal(&back)
	if !bytes.Equal(d1, d3) {
		t.Fatal("snapshot JSON round trip not stable")
	}
}
