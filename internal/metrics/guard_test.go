package metrics

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestRegistryFieldsReachReportAndMerge is the drift guard for the
// reflection-driven consumers (in the style of table2_guard_test.go):
// every exported field of NodeMetrics, NetMetrics, and Snapshot must be
// of a kind the merge walker handles, carry a json tag, survive
// Snapshot.Merge without being dropped, and — for histograms — reach
// the report/compare walkers and the JSON encoding. Adding a metric
// field automatically satisfies all of this; this test fails if a field
// of an unmergeable type or without a json name sneaks in.
func TestRegistryFieldsReachReportAndMerge(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(NodeMetrics{}),
		reflect.TypeOf(NetMetrics{}),
		reflect.TypeOf(Snapshot{}),
		reflect.TypeOf(WaitAttr{}),
		reflect.TypeOf(TimelineBin{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if !f.IsExported() {
				t.Errorf("%s.%s: metric fields must be exported for reflection walkers", typ.Name(), f.Name)
				continue
			}
			if jsonName(f) == f.Name {
				t.Errorf("%s.%s: missing json tag (report keys must be stable)", typ.Name(), f.Name)
			}
			if !mergeable(f.Type) {
				t.Errorf("%s.%s: type %v is not handled by mergeValue", typ.Name(), f.Name, f.Type)
			}
		}
	}
}

// mergeable mirrors mergeValue's type coverage.
func mergeable(t reflect.Type) bool {
	switch t {
	case histType, counterType, gaugeType:
		return true
	}
	switch t.Kind() {
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !mergeable(t.Field(i).Type) {
				return false
			}
		}
		return true
	case reflect.Slice, reflect.Array, reflect.Pointer:
		return mergeable(t.Elem())
	case reflect.Map:
		return t.Key().Kind() == reflect.Int32 && mergeable(t.Elem())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.String, reflect.Bool:
		return true
	}
	return false
}

// TestNewHistogramReachesConsumers proves the guard's promise end to
// end on the real structs: every NodeMetrics histogram observed once is
// visible in the histograms() walk, the JSON report, the CSV, and
// survives Merge. If someone adds a field and one consumer misses it,
// this fails without naming any field.
func TestNewHistogramReachesConsumers(t *testing.T) {
	r := NewRegistry()
	r.Configure(1, []string{"x"})
	n := r.Node(0)

	// Observe a distinct value into every histogram field via reflection,
	// as a future field's author would via normal code.
	var names []string
	forEachHistField(n, func(name string, h *Histogram) {
		h.Observe(int64(1000 + len(names)))
		names = append(names, name)
	})
	if len(names) != reflect.TypeOf(NodeMetrics{}).NumField() {
		t.Fatalf("forEachHistField visited %d fields, NodeMetrics has %d — non-histogram metric field?",
			len(names), reflect.TypeOf(NodeMetrics{}).NumField())
	}

	snap := r.Snapshot()

	// 1. The walker sees every field with count 1.
	seen := map[string]int64{}
	snap.histograms(func(scope, name string, h *Histogram) {
		if scope == "node0" {
			seen[name] = h.Count
		}
	})
	for _, name := range names {
		if seen[name] != 1 {
			t.Errorf("histograms() missed %q (count %d)", name, seen[name])
		}
	}

	// 2. The JSON report mentions every field by its json key.
	rep := NewReport(Meta{App: "guard"}, snap, 5)
	var jsonBuf strings.Builder
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if !strings.Contains(jsonBuf.String(), `"`+name+`"`) {
			t.Errorf("JSON report is missing %q", name)
		}
	}
	// And decodes back to an identical snapshot.
	back, err := ReadReport([]byte(jsonBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Snapshot, snap) {
		t.Error("report JSON round trip lost snapshot state")
	}

	// 3. The CSV has one row per field.
	var csvBuf strings.Builder
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if !strings.Contains(csvBuf.String(), "node0,"+name+",") {
			t.Errorf("CSV is missing %q", name)
		}
	}

	// 4. Merge doubles every count — no field silently dropped.
	merged := snap.Clone()
	merged.Merge(snap)
	merged.histograms(func(scope, name string, h *Histogram) {
		if scope == "node0" && h.Count != 2 {
			t.Errorf("Merge dropped %q (count %d, want 2)", name, h.Count)
		}
	})

	// 5. Compare sees a count drift in any field as a failure.
	findings := CompareReports(rep, NewReport(Meta{}, merged, 5), DefaultCompareOpts)
	fails := 0
	for _, f := range findings {
		if f.Level == LevelFail && strings.HasSuffix(f.Path, "/count") {
			fails++
		}
	}
	if fails != len(names) {
		t.Errorf("CompareReports flagged %d count drifts, want %d", fails, len(names))
	}
}

// TestSnapshotJSONKeysComplete pins the Snapshot wire schema: every
// exported field must appear in the encoding (no omitted metric can hide
// from the compare gate).
func TestSnapshotJSONKeysComplete(t *testing.T) {
	s := registryWithData(1).Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	typ := reflect.TypeOf(Snapshot{})
	for i := 0; i < typ.NumField(); i++ {
		key := jsonName(typ.Field(i))
		if !strings.Contains(string(data), `"`+key+`"`) {
			t.Errorf("snapshot JSON is missing key %q", key)
		}
	}
}

// TestCompareSkipsCountersTheBaselineFilePredates pins the schema-
// evolution contract: a counter added to the Snapshot after a baseline
// file was captured must not gate against the phantom zero the struct
// walk reports for it — while a counter the file genuinely recorded
// (even at zero) still gates exactly.
func TestCompareSkipsCountersTheBaselineFilePredates(t *testing.T) {
	cur := NewReport(Meta{}, &Snapshot{Nodes: make([]NodeMetrics, 1)}, 5)
	cur.Snapshot.LockAcquires.Add(224)
	cur.Snapshot.NetDropped.Add(3)

	var buf strings.Builder
	if err := cur.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Simulate an old baseline: strip lock_acquires from the file, and
	// record net_dropped at zero.
	raw := strings.Replace(buf.String(), `"lock_acquires": 224,`, "", 1)
	raw = strings.Replace(raw, `"net_dropped": 3,`, `"net_dropped": 0,`, 1)
	base, err := ReadReport([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}

	var lockFindings, dropFindings int
	for _, f := range CompareReports(base, cur, DefaultCompareOpts) {
		switch f.Path {
		case "lock_acquires":
			lockFindings++
		case "net_dropped":
			dropFindings++
		}
	}
	if lockFindings != 0 {
		t.Error("counter absent from the baseline file was gated against its phantom zero")
	}
	if dropFindings != 1 {
		t.Errorf("counter recorded at zero in the baseline file produced %d findings, want 1", dropFindings)
	}

	// An in-memory baseline (no file) still gates everything.
	memBase := NewReport(Meta{}, &Snapshot{Nodes: make([]NodeMetrics, 1)}, 5)
	var memLock int
	for _, f := range CompareReports(memBase, cur, DefaultCompareOpts) {
		if f.Path == "lock_acquires" {
			memLock++
		}
	}
	if memLock != 1 {
		t.Errorf("in-memory baseline produced %d lock_acquires findings, want 1", memLock)
	}
}
