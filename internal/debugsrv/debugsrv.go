// Package debugsrv is the live-introspection HTTP server a cvm-node
// process exposes on -debug-addr: /healthz for liveness probes,
// /status for a JSON view of the node's epoch, thread states and peer
// traffic, /metrics for the wall-clock metrics report (JSON by
// default, Prometheus text with ?format=prom), and the standard
// net/http/pprof handlers under /debug/pprof/ for profiling a live
// run. It is read-only: nothing it serves mutates the node.
package debugsrv

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"cvm/internal/metrics"
)

// Sources supplies the live data the endpoints render. Both callbacks
// must be safe to call concurrently with the run (the rt metrics and
// status paths are).
type Sources struct {
	// Status returns the value /status serves as JSON.
	Status func() any
	// Report returns the current metrics report for /metrics. A nil
	// report (metrics not wired) yields 503.
	Report func() *metrics.Report
}

// Server is a running debug server.
type Server struct {
	ln   net.Listener
	http *http.Server
	done chan struct{}
}

// Start binds addr and serves the debug endpoints until Shutdown.
func Start(addr string, src Sources) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debugsrv: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if src.Status == nil {
			http.Error(w, "status source not wired", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, src.Status())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if src.Report == nil {
			http.Error(w, "metrics source not wired", http.StatusServiceUnavailable)
			return
		}
		rep := src.Report()
		if rep == nil {
			http.Error(w, "metrics not collected yet", http.StatusServiceUnavailable)
			return
		}
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			writeProm(w, rep)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		rep.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln:   ln,
		http: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.http.Serve(ln) // returns on Shutdown/Close
	}()
	return s, nil
}

// Addr reports the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown drains in-flight requests, waiting at most timeout before
// closing connections outright.
func (s *Server) Shutdown(timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	s.http.Shutdown(ctx)
	s.http.Close()
	<-s.done
}

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// writeProm renders the report's snapshot in the Prometheus text
// exposition format: every top-level counter as cvm_<name>, every
// histogram as cvm_<name>_count / cvm_<name>_sum_ns with the snapshot
// scope ("total", "node3", "net:Lock") as a label.
func writeProm(w http.ResponseWriter, rep *metrics.Report) {
	snap := rep.Snapshot
	snap.EachCounter(func(name string, c *metrics.Counter) {
		fmt.Fprintf(w, "# TYPE cvm_%s counter\n", name)
		fmt.Fprintf(w, "cvm_%s %d\n", name, int64(*c))
	})
	type hrow struct {
		name, scope string
		h           *metrics.Histogram
	}
	var rows []hrow
	snap.EachHistogram(func(scope, name string, h *metrics.Histogram) {
		rows = append(rows, hrow{name, scope, h})
	})
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	last := ""
	for _, r := range rows {
		if r.name != last {
			fmt.Fprintf(w, "# TYPE cvm_%s_count counter\n", r.name)
			last = r.name
		}
		lbl := fmt.Sprintf("{scope=%q}", strings.ReplaceAll(r.scope, `"`, ""))
		fmt.Fprintf(w, "cvm_%s_count%s %d\n", r.name, lbl, r.h.Count)
		fmt.Fprintf(w, "cvm_%s_sum_ns%s %d\n", r.name, lbl, r.h.Sum)
	}
}
