package debugsrv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cvm/internal/metrics"
)

func testReport() *metrics.Report {
	snap := &metrics.Snapshot{Nodes: make([]metrics.NodeMetrics, 2)}
	snap.LockAcquires.Add(7)
	snap.Nodes[1].FaultService.Observe(1000)
	return metrics.NewReport(metrics.Meta{App: "sor", Config: "2x1 size=test"}, snap, 10)
}

func startTestServer(t *testing.T, src Sources) *Server {
	t.Helper()
	srv, err := Start("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(time.Second) })
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	srv := startTestServer(t, Sources{
		Status: func() any { return map[string]any{"state": "running", "node": 1} },
		Report: func() *metrics.Report { return testReport() },
	})
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}

	code, body := get(t, base+"/status")
	if code != 200 {
		t.Fatalf("/status = %d: %s", code, body)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if st["state"] != "running" {
		t.Errorf("/status state = %v, want running", st["state"])
	}

	code, body = get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d: %s", code, body)
	}
	rep, err := metrics.ReadReport([]byte(body))
	if err != nil {
		t.Fatalf("/metrics not a report: %v", err)
	}
	if rep.Meta.App != "sor" || int64(rep.Snapshot.LockAcquires) != 7 {
		t.Errorf("/metrics round-trip lost data: %+v", rep.Meta)
	}

	code, body = get(t, base+"/metrics?format=prom")
	if code != 200 {
		t.Fatalf("/metrics?format=prom = %d", code)
	}
	for _, want := range []string{
		"cvm_lock_acquires 7",
		`cvm_fault_service_count{scope="node1"} 1`,
		`cvm_fault_service_sum_ns{scope="node1"} 1000`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom output missing %q:\n%s", want, body)
		}
	}

	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d, want 200", code)
	}
}

func TestUnwiredSourcesReturn503(t *testing.T) {
	srv := startTestServer(t, Sources{
		Status: func() any { return nil },
		Report: func() *metrics.Report { return nil },
	})
	base := "http://" + srv.Addr()
	if code, _ := get(t, base+"/metrics"); code != http.StatusServiceUnavailable {
		t.Errorf("/metrics with nil report = %d, want 503", code)
	}
	srv2 := startTestServer(t, Sources{})
	base2 := "http://" + srv2.Addr()
	for _, ep := range []string{"/status", "/metrics"} {
		if code, _ := get(t, base2+ep); code != http.StatusServiceUnavailable {
			t.Errorf("%s with no sources = %d, want 503", ep, code)
		}
	}
}

func TestShutdownStopsServing(t *testing.T) {
	srv := startTestServer(t, Sources{})
	addr := srv.Addr()
	srv.Shutdown(time.Second)
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("server still answering after Shutdown")
	}
}
