package netsim

import (
	"strings"
	"testing"

	"cvm/internal/sim"
)

// TestClassesCoverage guards the class enumeration: Classes() must cover
// exactly the defined classes, every class must have a real (non-fallback)
// unique name, and the Stats arrays must have one slot per class. Adding
// a message class without extending the accounting fails here.
func TestClassesCoverage(t *testing.T) {
	cs := Classes()
	if len(cs) != int(numClasses) {
		t.Fatalf("Classes() has %d entries, want %d", len(cs), numClasses)
	}
	var st Stats
	if len(st.Msgs) != len(cs) || len(st.Bytes) != len(cs) {
		t.Fatalf("Stats arrays (%d msgs, %d bytes) out of sync with %d classes",
			len(st.Msgs), len(st.Bytes), len(cs))
	}
	seen := make(map[string]Class)
	for i, c := range cs {
		if c != Class(i) {
			t.Errorf("Classes()[%d] = %v, want contiguous ids", i, c)
		}
		name := c.String()
		if strings.HasPrefix(name, "Class(") {
			t.Errorf("class %d has no real name (String() = %q)", i, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("classes %v and %v share the name %q", prev, c, name)
		}
		seen[name] = c
	}
	if Class(numClasses).String() != "Class(3)" && int(numClasses) == 3 {
		t.Errorf("out-of-range class fallback broken: %q", Class(numClasses).String())
	}
}

// TestAllClassesAccounted sends one message of every class and checks
// each is tallied in its own slot — not just the classes the protocol
// happens to exercise most.
func TestAllClassesAccounted(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 2, DefaultParams())
	p0 := eng.AddProc(0)
	eng.AddProc(0)
	classes := Classes()
	eng.Spawn(p0, "t", func(tk *sim.Task) {
		for i, c := range classes {
			nw.SendFromTask(tk, 0, 1, c, 10*(i+1), func() {})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	var wantBytes int64
	for i, c := range classes {
		if st.Msgs[c] != 1 {
			t.Errorf("class %v: %d msgs, want 1", c, st.Msgs[c])
		}
		if want := int64(10 * (i + 1)); st.Bytes[c] != want {
			t.Errorf("class %v: %d bytes, want %d", c, st.Bytes[c], want)
		}
		wantBytes += int64(10 * (i + 1))
	}
	if st.TotalMsgs() != int64(len(classes)) || st.TotalBytes() != wantBytes {
		t.Errorf("totals = %d msgs/%d bytes, want %d/%d",
			st.TotalMsgs(), st.TotalBytes(), len(classes), wantBytes)
	}
}
