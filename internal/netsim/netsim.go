// Package netsim models the cluster interconnect: per-message CPU
// overheads, wire latency, per-byte transfer cost, and serialization at
// each node's egress and ingress. The default parameters are calibrated so
// the end-to-end costs match those the paper measured on the Alpha/ATM
// cluster (§4.1): 937 µs 2-hop lock acquires, 1382 µs 3-hop acquires,
// ~1100 µs remote page faults, and 2470 µs minimal 8-processor barriers.
//
// The package also keeps the per-class message and byte counts that
// Table 2 reports.
package netsim

import (
	"fmt"
	"sort"

	"cvm/internal/metrics"
	"cvm/internal/sim"
	"cvm/internal/trace"
	"cvm/internal/transport"
)

// NodeID identifies a node (processor) in the simulated cluster. It is
// the shared transport vocabulary type: every backend (this simulator,
// loopback, TCP) addresses nodes the same way.
type NodeID = transport.NodeID

// Class categorizes messages for Table 2 accounting.
type Class = transport.Class

// Message classes. Data-carrying traffic (page and diff requests and
// replies) is classed ClassDiff, following the paper: "Diff messages are
// used to satisfy remote data requests."
const (
	ClassBarrier = transport.ClassBarrier
	ClassLock    = transport.ClassLock
	ClassDiff    = transport.ClassDiff
	ClassUpdate  = transport.ClassUpdate
	ClassMigrate = transport.ClassMigrate
	numClasses   = transport.NumClasses
)

// Params are the interconnect cost parameters.
type Params struct {
	// SendOverhead is the CPU cost of sending one message. For sends from
	// task context it is charged to the sending thread; for sends from
	// message handlers it serializes the node's egress.
	SendOverhead sim.Time

	// RecvOverhead is the CPU cost of receiving one message; concurrent
	// arrivals at one node serialize by this amount.
	RecvOverhead sim.Time

	// WireLatency is the one-way propagation plus network switching time.
	WireLatency sim.Time

	// PerKByte is the additional transfer time per KiB of payload.
	PerKByte sim.Time
}

// transfer reports the payload transfer time for a message of n bytes.
func (p Params) transfer(n int) sim.Time {
	return sim.Time(n) * p.PerKByte / 1024
}

// DefaultParams returns parameters calibrated to the paper's measured
// costs. With S=R=128 µs, W=209 µs: a 2-hop lock is 2(S+W+R) ≈ 930 µs
// (paper: 937), a 3-hop lock ≈ 1395 µs (paper: 1382), a remote page fault
// is 49 (mprotect) + 98 (signal) + 930 + 8 KB·PerKByte/1024 ≈ 1100 µs (paper:
// ~1100), and a minimal 8-node barrier ≈ 2466 µs (paper: 2470).
func DefaultParams() Params {
	return Params{
		SendOverhead: 128 * sim.Microsecond,
		RecvOverhead: 128 * sim.Microsecond,
		WireLatency:  209 * sim.Microsecond,
		PerKByte:     2870 * sim.Nanosecond,
	}
}

// OneWay reports the uncontended one-way latency for a message of the
// given payload size, from send initiation to handler start.
func (p Params) OneWay(bytes int) sim.Time {
	return p.SendOverhead + p.transfer(bytes) + p.WireLatency + p.RecvOverhead
}

// Lookahead reports a lower bound on the time between a message being
// handed to the network on one node and its handler running on another:
// wire latency plus receive overhead. The conservative parallel engine
// uses this bound as its window lookahead, so it must hold from the
// instant the message is recorded (the deferred outbox append), not from
// send initiation. Send overhead is deliberately excluded: a task can
// charge it across a window boundary — entering the send before W0 and
// reaching the outbox just after — in which case only the charge's tail
// lands inside the window. Departure time, payload transfer,
// egress/ingress queueing, and fault-injected delays only add to the
// bound.
func (p Params) Lookahead() sim.Time {
	return p.WireLatency + p.RecvOverhead
}

// Stats holds cumulative per-class message and byte counts.
type Stats = transport.Stats

// Classes returns every message class in Table 2 column order. Tests
// use it to guard that new classes are reflected in the accounting
// arrays and the Table 2 writer.
func Classes() []Class { return transport.Classes() }

// Network simulates the interconnect between a fixed set of nodes.
type Network struct {
	eng    *sim.Engine
	params Params

	egressFree  []sim.Time // per-node time the NIC egress frees up
	ingressFree []sim.Time // per-node time the ingress frees up

	// bulkEgressFree/bulkIngressFree serialize unsolicited bulk data
	// (ClassUpdate) on its own per-node lane at both ends: the dedicated
	// protocol thread the paper argues for on SMP nodes ships and absorbs
	// pushed updates without occupying the request/reply path, so eager
	// data neither delays a blocked node's next fault request at the
	// egress nor head-of-line blocks a barrier release or fault reply at
	// the ingress. Bulk transfers still pay the per-message overheads and
	// serialize against each other.
	bulkEgressFree  []sim.Time
	bulkIngressFree []sim.Time

	stats  Stats
	tracer trace.Tracer        // nil when tracing is off
	met    *metrics.NetMetrics // nil when metrics are off
	msgID  int64               // trace message id linking send to delivery

	// Fault model (nil when the network is reliable). chanIdx holds the
	// per-directed-channel message counters keying the fault PRNG; fstats
	// counts injected faults; the counters mirror drops/dups into the
	// metrics snapshot.
	faults            *FaultParams
	chanIdx           []uint64
	fstats            FaultStats
	cDropped, cDupped *metrics.Counter

	// Deferred mode (SetDeferred), used by the conservative windowed
	// engine: sends enqueue in per-sender outboxes instead of scheduling
	// deliveries immediately, and CommitWindow drains them between
	// windows. Egress serialization is still resolved at send time (it
	// is sender-local); everything that touches receiver or global state
	// — ingress serialization, traffic accounting, fault rolls, message
	// ids, delivery scheduling — moves to the commit.
	deferred bool
	outbox   [][]wireMsg
}

// wireMsg is one deferred message waiting in its sender's outbox.
type wireMsg struct {
	sendT      sim.Time // send initiation, for deterministic commit order
	depart     sim.Time // egress departure (send-time computed)
	egressWait sim.Time // sender-NIC serialization delay, observed at commit
	to         NodeID
	class      Class
	bytes      int
	deliver    func()
}

// New returns a network connecting nodes 0..nodes-1.
func New(eng *sim.Engine, nodes int, params Params) *Network {
	n := new(Network)
	n.Init(eng, nodes, params)
	return n
}

// Init configures n in place to connect nodes 0..nodes-1, replacing any
// previous state. It exists so a Network can be embedded by value in a
// larger system; egress and ingress share one backing allocation.
func (n *Network) Init(eng *sim.Engine, nodes int, params Params) {
	free := make([]sim.Time, 4*nodes)
	*n = Network{
		eng:             eng,
		params:          params,
		egressFree:      free[:nodes:nodes],
		ingressFree:     free[nodes : 2*nodes : 2*nodes],
		bulkEgressFree:  free[2*nodes : 3*nodes : 3*nodes],
		bulkIngressFree: free[3*nodes:],
	}
}

// Params returns the network's cost parameters.
func (n *Network) Params() Params { return n.params }

// Name identifies this interconnect backend in error messages and run
// reports (core.Interconnect).
func (n *Network) Name() string { return "netsim" }

// PeerAddr describes a peer in backend terms (core.Interconnect). The
// simulated cluster has no wire addresses, so peers are named by node id.
func (n *Network) PeerAddr(to NodeID) string { return fmt.Sprintf("node %d", to) }

// SetDeferred switches the network into deferred (windowed) delivery
// mode. Must be set before traffic flows and requires the engine to run
// its conservative windowed loop, whose window hook calls CommitWindow.
func (n *Network) SetDeferred(on bool) {
	n.deferred = on
	if on && n.outbox == nil {
		n.outbox = make([][]wireMsg, len(n.egressFree))
	}
}

// SetTracer installs a protocol event tracer (nil disables tracing).
// Every transmitted message then records a send event at egress
// departure and a deliver event at handler start, linked by a message
// id for flow rendering.
func (n *Network) SetTracer(tr trace.Tracer) { n.tracer = tr }

// SetMetrics installs per-class latency/queueing histograms (nil
// disables them). The metrics must be sized for Classes() — the system
// configures them from the same class list.
func (n *Network) SetMetrics(m *metrics.NetMetrics) { n.met = m }

// Stats returns a snapshot of the per-class traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats zeroes the traffic and injected-fault counters (used after
// the initialization phase so tables reflect steady-state behaviour, as
// in the paper).
func (n *Network) ResetStats() {
	n.stats = Stats{}
	n.fstats = FaultStats{}
}

// SendFromTask transmits a message from the calling task's node. The
// sender's CPU overhead is charged to the task; deliver runs in engine
// context at the receiver once the message has been transferred and the
// receiver's ingress is free. from and to must differ: local communication
// never touches the network in CVM.
func (n *Network) SendFromTask(t *sim.Task, from, to NodeID, class Class, bytes int, deliver func()) {
	if from == to {
		panic("netsim: SendFromTask with from == to")
	}
	t.Advance(n.params.SendOverhead)
	lane := n.egressLane(class)
	depart := maxTime(t.Now(), lane[from])
	if n.deferred {
		wait := depart - t.Now()
		depart += n.params.transfer(bytes)
		lane[from] = depart
		n.outbox[from] = append(n.outbox[from], wireMsg{
			sendT: t.Now(), depart: depart, egressWait: wait,
			to: to, class: class, bytes: bytes, deliver: deliver})
		return
	}
	if n.met != nil {
		n.met.EgressWait[class].Observe(int64(depart - t.Now()))
	}
	depart += n.params.transfer(bytes)
	lane[from] = depart
	if n.faults != nil {
		// Task.Schedule (via the closure) lowers the sender's causality
		// horizon exactly as the reliable path below does.
		n.faultedSend(depart, from, to, class, bytes, deliver, t.Schedule)
		return
	}
	handlerAt := n.arrival(depart, from, to, class, bytes, 0)
	// Task.Schedule lowers the sender's causality horizon so the sender
	// cannot run past the delivery before it is applied.
	t.Schedule(handlerAt, deliver)
}

// SendFromHandler transmits a message from engine context (a message
// handler acting for node from, e.g. a lock manager forwarding a request).
// The send serializes the node's egress by SendOverhead plus transfer time.
func (n *Network) SendFromHandler(from, to NodeID, class Class, bytes int, deliver func()) {
	if from == to {
		panic("netsim: SendFromHandler with from == to")
	}
	lane := n.egressLane(class)
	if n.deferred {
		now := n.eng.Procs()[int(from)].LocalNow()
		depart := maxTime(now, lane[from])
		wait := depart - now
		depart += n.params.SendOverhead + n.params.transfer(bytes)
		lane[from] = depart
		n.outbox[from] = append(n.outbox[from], wireMsg{
			sendT: now, depart: depart, egressWait: wait,
			to: to, class: class, bytes: bytes, deliver: deliver})
		return
	}
	depart := maxTime(n.eng.Now(), lane[from])
	if n.met != nil {
		n.met.EgressWait[class].Observe(int64(depart - n.eng.Now()))
	}
	depart += n.params.SendOverhead + n.params.transfer(bytes)
	lane[from] = depart
	if n.faults != nil {
		n.faultedSend(depart, from, to, class, bytes, deliver, n.eng.Schedule)
		return
	}
	handlerAt := n.arrival(depart, from, to, class, bytes, 0)
	n.eng.Schedule(handlerAt, deliver)
}

// egressLane returns the per-node egress serializer for a message class:
// the protocol processor's bulk lane for unsolicited updates, the main
// NIC path for everything else.
func (n *Network) egressLane(class Class) []sim.Time {
	if class == ClassUpdate {
		return n.bulkEgressFree
	}
	return n.egressFree
}

// arrival accounts the message and computes when its handler runs at the
// receiver, serializing concurrent arrivals at the ingress. extra is
// fault-injected delivery delay (jitter/reorder); it is applied after
// the ingress serialization point so a delayed message does not
// head-of-line-block traffic that physically arrived on time — which is
// what lets later messages genuinely overtake it.
func (n *Network) arrival(depart sim.Time, from, to NodeID, class Class, bytes int, extra sim.Time) sim.Time {
	n.stats.Msgs[class]++
	n.stats.Bytes[class] += int64(bytes)
	arrive := depart + n.params.WireLatency
	lane := n.ingressFree
	if class == ClassUpdate {
		lane = n.bulkIngressFree
	}
	handlerAt := maxTime(arrive, lane[to]) + n.params.RecvOverhead
	lane[to] = handlerAt
	handlerAt += extra
	if n.met != nil {
		n.met.Latency[class].Observe(int64(handlerAt - depart))
		n.met.IngressWait[class].Observe(int64(handlerAt - extra - n.params.RecvOverhead - arrive))
	}
	if n.tracer != nil {
		n.msgID++
		n.tracer.Emit(trace.Event{T: depart, Kind: trace.KindMsgSend,
			Node: int32(from), Thread: -1, Peer: int32(to),
			Sync: int32(class), Arg: int64(bytes), Aux: n.msgID})
		n.tracer.Emit(trace.Event{T: handlerAt, Kind: trace.KindMsgDeliver,
			Node: int32(to), Thread: -1, Peer: int32(from),
			Sync: int32(class), Arg: int64(bytes), Aux: n.msgID})
	}
	return handlerAt
}

// CommitWindow drains every sender's outbox with the engine quiescent
// between two windows of limit's window. Senders are processed in node
// order; each sender's messages in send-initiation order (a stable sort,
// so same-instant sends keep program order). This order is a pure
// function of simulation state, so traffic accounting, fault rolls,
// message ids, and ingress serialization are identical at every worker
// count. Every delivery must land at or after limit — the lookahead
// guarantee — or the conservative schedule would be unsound; violations
// panic loudly.
func (n *Network) CommitWindow(limit sim.Time) {
	for from := range n.outbox {
		msgs := n.outbox[from]
		if len(msgs) == 0 {
			continue
		}
		sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].sendT < msgs[j].sendT })
		for i := range msgs {
			m := &msgs[i]
			if n.met != nil {
				n.met.EgressWait[m.class].Observe(int64(m.egressWait))
			}
			to := m.to
			sched := func(at sim.Time, fn func()) {
				if at < limit {
					panic(fmt.Sprintf("netsim: delivery at %v violates lookahead bound %v (msg %v %d->%d sendT=%v depart=%v bytes=%d)",
						at, limit, m.class, from, m.to, m.sendT, m.depart, m.bytes))
				}
				n.eng.ScheduleOn(n.eng.Procs()[int(to)], at, fn)
			}
			if n.faults != nil {
				n.faultedSend(m.depart, NodeID(from), m.to, m.class, m.bytes, m.deliver, sched)
			} else {
				sched(n.arrival(m.depart, NodeID(from), m.to, m.class, m.bytes, 0), m.deliver)
			}
			msgs[i] = wireMsg{} // release the delivery closure
		}
		n.outbox[from] = msgs[:0]
	}
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
