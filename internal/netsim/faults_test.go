package netsim

import (
	"testing"

	"cvm/internal/metrics"
	"cvm/internal/sim"
	"cvm/internal/trace"
)

// sendN pushes n messages 0→1 through the network from a task and
// returns the delivery times in handler order.
func sendN(t *testing.T, f *FaultParams, n int) (delivered []sim.Time, fs FaultStats) {
	t.Helper()
	eng := sim.NewEngine()
	nw := New(eng, 2, DefaultParams())
	nw.SetFaults(f)
	p := eng.AddProc(0)
	eng.AddProc(0)
	eng.Spawn(p, "sender", func(tk *sim.Task) {
		for i := 0; i < n; i++ {
			nw.SendFromTask(tk, 0, 1, ClassDiff, 64, func() {
				delivered = append(delivered, eng.Now())
			})
			tk.Advance(10 * us)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return delivered, nw.FaultStats()
}

func TestFaultsDropRate(t *testing.T) {
	f := &FaultParams{Seed: 42}
	for c := range f.Drop {
		f.Drop[c] = 0.1
	}
	const n = 2000
	delivered, fs := sendN(t, f, n)
	if fs.Dropped == 0 {
		t.Fatal("10% drop over 2000 messages dropped nothing")
	}
	if got := len(delivered) + int(fs.Dropped); got != n {
		t.Errorf("delivered %d + dropped %d = %d, want %d", len(delivered), fs.Dropped, got, n)
	}
	// Crude rate check: 10% ± 5 points over 2000 trials.
	rate := float64(fs.Dropped) / n
	if rate < 0.05 || rate > 0.15 {
		t.Errorf("drop rate = %.3f, want ≈0.10", rate)
	}
}

func TestFaultsDupRate(t *testing.T) {
	f := &FaultParams{Seed: 7}
	for c := range f.Dup {
		f.Dup[c] = 0.2
	}
	const n = 1000
	delivered, fs := sendN(t, f, n)
	if fs.Dupped == 0 {
		t.Fatal("20% dup over 1000 messages duplicated nothing")
	}
	if got := len(delivered) - int(fs.Dupped); got != n {
		t.Errorf("delivered %d - dupped %d = %d, want %d", len(delivered), fs.Dupped, got, n)
	}
}

func TestFaultsReorderOvertakes(t *testing.T) {
	f := &FaultParams{Seed: 3, ReorderDelay: 5 * sim.Millisecond}
	for c := range f.Reorder {
		f.Reorder[c] = 0.2
	}
	eng := sim.NewEngine()
	nw := New(eng, 2, DefaultParams())
	nw.SetFaults(f)
	p := eng.AddProc(0)
	eng.AddProc(0)
	var order []int // send indices in delivery order
	eng.Spawn(p, "sender", func(tk *sim.Task) {
		for i := 0; i < 200; i++ {
			i := i
			nw.SendFromTask(tk, 0, 1, ClassDiff, 64, func() {
				order = append(order, i)
			})
			tk.Advance(10 * us)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fs := nw.FaultStats(); fs.Reordered == 0 {
		t.Fatal("20% reorder over 200 messages reordered nothing")
	}
	// A delayed message must be overtaken: later send indices deliver first.
	overtakes := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			overtakes++
		}
	}
	if overtakes == 0 {
		t.Error("reordered messages never overtook — deliveries arrived in send order")
	}
}

func TestFaultsJitterDelays(t *testing.T) {
	base, _ := sendN(t, nil, 50)
	jit, _ := sendN(t, &FaultParams{Seed: 9, JitterMax: sim.Millisecond}, 50)
	if len(base) != len(jit) {
		t.Fatalf("jitter changed delivery count: %d vs %d", len(jit), len(base))
	}
	later := 0
	for i := range base {
		if jit[i] > base[i] {
			later++
		}
	}
	if later == 0 {
		t.Error("1ms jitter delayed no deliveries")
	}
}

func TestFaultsDeterministic(t *testing.T) {
	f := &FaultParams{Seed: 11, JitterMax: 500 * us, ReorderDelay: sim.Millisecond}
	for c := 0; c < NumClasses; c++ {
		f.Drop[c], f.Dup[c], f.Reorder[c] = 0.05, 0.05, 0.05
	}
	d1, fs1 := sendN(t, f, 500)
	d2, fs2 := sendN(t, f, 500)
	if fs1 != fs2 {
		t.Fatalf("fault stats diverged: %+v vs %+v", fs1, fs2)
	}
	if len(d1) != len(d2) {
		t.Fatalf("delivery counts diverged: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("delivery %d diverged: %v vs %v", i, d1[i], d2[i])
		}
	}
	// A different seed must produce a different schedule.
	g := *f
	g.Seed = 12
	_, fs3 := sendN(t, &g, 500)
	if fs3 == fs1 {
		t.Error("different seeds produced identical fault stats (suspicious)")
	}
}

func TestFaultsInactiveIsByteIdentical(t *testing.T) {
	// A FaultParams with every dimension zero must leave the network on
	// the reliable fast path: identical deliveries and zero fault stats.
	base, _ := sendN(t, nil, 100)
	zero, fs := sendN(t, &FaultParams{Seed: 99}, 100)
	if fs != (FaultStats{}) {
		t.Errorf("inactive faults injected: %+v", fs)
	}
	for i := range base {
		if base[i] != zero[i] {
			t.Fatalf("delivery %d diverged: %v vs %v", i, base[i], zero[i])
		}
	}
}

func TestFaultsValidate(t *testing.T) {
	bad := []FaultParams{
		{Drop: [NumClasses]float64{1.5}},
		{Dup: [NumClasses]float64{0, -0.1}},
		{JitterMax: -1},
		{Reorder: [NumClasses]float64{0.1}}, // no ReorderDelay
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("Validate(%d) accepted bad params %+v", i, f)
		}
	}
	good := FaultParams{Drop: [NumClasses]float64{0.5, 1, 0}, JitterMax: us}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected good params: %v", err)
	}
}

func TestFaultsTraceAndCounters(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 2, DefaultParams())
	rec := trace.NewRecorder(2, 1, 0)
	nw.SetTracer(rec)
	var dropped, dupped metrics.Counter
	nw.SetFaultCounters(&dropped, &dupped)
	f := &FaultParams{Seed: 5}
	for c := 0; c < NumClasses; c++ {
		f.Drop[c], f.Dup[c] = 0.2, 0.2
	}
	nw.SetFaults(f)
	p := eng.AddProc(0)
	eng.AddProc(0)
	eng.Spawn(p, "sender", func(tk *sim.Task) {
		for i := 0; i < 200; i++ {
			nw.SendFromTask(tk, 0, 1, ClassLock, 16, func() {})
			tk.Advance(us)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.Kind]int{}
	for n := 0; n < 2; n++ {
		for _, e := range rec.NodeEvents(n) {
			kinds[e.Kind]++
		}
	}
	fs := nw.FaultStats()
	if fs.Dropped == 0 || fs.Dupped == 0 {
		t.Fatalf("expected drops and dups, got %+v", fs)
	}
	if int64(kinds[trace.KindMsgDrop]) != fs.Dropped {
		t.Errorf("msg.drop events = %d, want %d", kinds[trace.KindMsgDrop], fs.Dropped)
	}
	if int64(kinds[trace.KindMsgDup]) != fs.Dupped {
		t.Errorf("msg.dup events = %d, want %d", kinds[trace.KindMsgDup], fs.Dupped)
	}
	if int64(dropped) != fs.Dropped || int64(dupped) != fs.Dupped {
		t.Errorf("counters = %d/%d, want %d/%d", dropped, dupped, fs.Dropped, fs.Dupped)
	}
	// Every delivered message has a send/deliver pair; drops have neither.
	if kinds[trace.KindMsgSend] != kinds[trace.KindMsgDeliver] {
		t.Errorf("send events %d != deliver events %d", kinds[trace.KindMsgSend], kinds[trace.KindMsgDeliver])
	}
}
