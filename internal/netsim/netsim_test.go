package netsim

import (
	"testing"

	"cvm/internal/sim"
)

const us = sim.Microsecond

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{ClassBarrier, "Barrier"},
		{ClassLock, "Lock"},
		{ClassDiff, "Diff"},
		{Class(9), "Class(9)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Class(%d).String() = %q, want %q", tt.c, got, tt.want)
		}
	}
}

func TestOneWayLatency(t *testing.T) {
	p := DefaultParams()
	// Header-only message: S + W + R = 128+209+128 = 465µs.
	if got, want := p.OneWay(0), 465*us; got != want {
		t.Errorf("OneWay(0) = %v, want %v", got, want)
	}
	// 8 KB page adds ~23µs.
	extra := p.OneWay(8192) - p.OneWay(0)
	if extra < 20*us || extra > 26*us {
		t.Errorf("8KB transfer adds %v, want ~23µs", extra)
	}
}

func TestRoundTripFromTask(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 2, DefaultParams())
	p0 := eng.AddProc(8 * us)
	eng.AddProc(8 * us)

	var rtt sim.Time
	eng.Spawn(p0, "client", func(tk *sim.Task) {
		start := tk.Now()
		nw.SendFromTask(tk, 0, 1, ClassLock, 0, func() {
			// Server handler replies immediately.
			nw.SendFromHandler(1, 0, ClassLock, 0, func() {
				eng.Wake(tk)
			})
		})
		tk.Block(sim.Reason(1))
		rtt = tk.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Round trip: one-way 465 + reply 465 = 930µs (paper's 2-hop lock,
	// minus the ~7µs manager service time).
	if rtt != 930*us {
		t.Errorf("round trip = %v, want 930µs", rtt)
	}
}

func TestIngressSerialization(t *testing.T) {
	eng := sim.NewEngine()
	params := DefaultParams()
	nw := New(eng, 9, params)
	procs := make([]*sim.Proc, 9)
	for i := range procs {
		procs[i] = eng.AddProc(0)
	}

	// Nodes 1..8 each send one message to node 0 at t=0; arrivals must be
	// handled RecvOverhead apart.
	var handledAt []sim.Time
	for i := 1; i <= 8; i++ {
		i := i
		eng.Spawn(procs[i], "sender", func(tk *sim.Task) {
			nw.SendFromTask(tk, NodeID(i), 0, ClassBarrier, 0, func() {
				handledAt = append(handledAt, eng.Now())
			})
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(handledAt) != 8 {
		t.Fatalf("handled %d messages, want 8", len(handledAt))
	}
	for i := 1; i < len(handledAt); i++ {
		if gap := handledAt[i] - handledAt[i-1]; gap != params.RecvOverhead {
			t.Errorf("handler gap %d = %v, want %v", i, gap, params.RecvOverhead)
		}
	}
}

func TestEgressSerializationFromHandler(t *testing.T) {
	eng := sim.NewEngine()
	params := DefaultParams()
	nw := New(eng, 3, params)
	for i := 0; i < 3; i++ {
		eng.AddProc(0)
	}

	// A handler on node 0 sends two messages back-to-back; the second
	// departs SendOverhead after the first.
	var at1, at2 sim.Time
	eng.Schedule(0, func() {
		nw.SendFromHandler(0, 1, ClassLock, 0, func() { at1 = eng.Now() })
		nw.SendFromHandler(0, 2, ClassLock, 0, func() { at2 = eng.Now() })
	})
	p := eng.AddProc(0)
	eng.Spawn(p, "idle", func(tk *sim.Task) { tk.Advance(5000 * us) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != 465*us {
		t.Errorf("first delivery at %v, want 465µs", at1)
	}
	if at2-at1 != params.SendOverhead {
		t.Errorf("second delivery %v after first, want %v", at2-at1, params.SendOverhead)
	}
}

func TestMinimalBarrierCost(t *testing.T) {
	// Reproduce the paper's minimal 8-processor barrier: 7 nodes send
	// arrivals to a manager; on the last arrival the manager sends 7
	// releases. Total should be ≈2470µs (paper, §4.1).
	eng := sim.NewEngine()
	params := DefaultParams()
	nw := New(eng, 8, params)
	procs := make([]*sim.Proc, 8)
	for i := range procs {
		procs[i] = eng.AddProc(8 * us)
	}

	arrived := 0
	released := make([]sim.Time, 0, 7)
	var lastRelease sim.Time
	for i := 1; i < 8; i++ {
		i := i
		eng.Spawn(procs[i], "member", func(tk *sim.Task) {
			nw.SendFromTask(tk, NodeID(i), 0, ClassBarrier, 0, func() {
				arrived++
				if arrived == 7 {
					for j := 1; j < 8; j++ {
						j := j
						nw.SendFromHandler(0, NodeID(j), ClassBarrier, 0, func() {
							released = append(released, eng.Now())
							lastRelease = eng.Now()
						})
					}
				}
			})
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(released) != 7 {
		t.Fatalf("released %d, want 7", len(released))
	}
	if lastRelease < 2300*us || lastRelease > 2600*us {
		t.Errorf("minimal barrier = %v, want ≈2470µs", lastRelease)
	}
	st := nw.Stats()
	if st.Msgs[ClassBarrier] != 14 {
		t.Errorf("barrier messages = %d, want 14", st.Msgs[ClassBarrier])
	}
}

func TestStatsAccounting(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 2, DefaultParams())
	p0 := eng.AddProc(0)
	eng.AddProc(0)
	eng.Spawn(p0, "t", func(tk *sim.Task) {
		nw.SendFromTask(tk, 0, 1, ClassDiff, 100, func() {})
		nw.SendFromTask(tk, 0, 1, ClassDiff, 200, func() {})
		nw.SendFromTask(tk, 0, 1, ClassLock, 8, func() {})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.Msgs[ClassDiff] != 2 || st.Bytes[ClassDiff] != 300 {
		t.Errorf("diff = %d msgs/%d bytes, want 2/300", st.Msgs[ClassDiff], st.Bytes[ClassDiff])
	}
	if st.TotalMsgs() != 3 || st.TotalBytes() != 308 {
		t.Errorf("total = %d msgs/%d bytes, want 3/308", st.TotalMsgs(), st.TotalBytes())
	}
	nw.ResetStats()
	if nw.Stats().TotalMsgs() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestSelfSendPanics(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, 2, DefaultParams())
	defer func() {
		if recover() == nil {
			t.Error("SendFromHandler(0,0) did not panic")
		}
	}()
	nw.SendFromHandler(0, 0, ClassLock, 0, func() {})
}
