package netsim

import (
	"fmt"

	"cvm/internal/metrics"
	"cvm/internal/sim"
	"cvm/internal/trace"
)

// NumClasses is the number of message classes, exported for sizing the
// per-class fault probability arrays.
const NumClasses = int(numClasses)

// FaultParams configures the deterministic network fault model. The
// struct is pure read-only configuration — a single value may be shared
// across concurrently running systems (the harness does); all mutable
// fault state lives in the Network.
//
// Every fault decision is a pure function of (Seed, from, to, msgIndex)
// where msgIndex counts messages per directed channel, so a run's fault
// schedule is byte-reproducible and independent of wall-clock, map
// iteration, or goroutine scheduling.
type FaultParams struct {
	// Seed keys the fault PRNG. Two runs with equal Seed (and equal
	// workload) suffer identical fault schedules.
	Seed uint64

	// Drop, Dup, and Reorder are per-class probabilities in [0, 1]:
	// the chance that a message is discarded in flight, delivered twice,
	// or delayed by ReorderDelay so later traffic overtakes it.
	Drop    [NumClasses]float64
	Dup     [NumClasses]float64
	Reorder [NumClasses]float64

	// JitterMax adds uniform extra delivery latency in [0, JitterMax) to
	// every message (0 disables jitter).
	JitterMax sim.Time

	// ReorderDelay is the extra delivery latency applied to reordered
	// messages. Must be > 0 if any Reorder probability is.
	ReorderDelay sim.Time
}

// Active reports whether any fault dimension is enabled.
func (f *FaultParams) Active() bool {
	if f == nil {
		return false
	}
	for c := 0; c < NumClasses; c++ {
		if f.Drop[c] > 0 || f.Dup[c] > 0 || f.Reorder[c] > 0 {
			return true
		}
	}
	return f.JitterMax > 0
}

// Validate checks the parameters are well-formed.
func (f *FaultParams) Validate() error {
	reorder := false
	for c := 0; c < NumClasses; c++ {
		for _, p := range [3]struct {
			name string
			v    float64
		}{{"drop", f.Drop[c]}, {"dup", f.Dup[c]}, {"reorder", f.Reorder[c]}} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("netsim: %s probability for %v is %v, want [0, 1]", p.name, Class(c), p.v)
			}
		}
		reorder = reorder || f.Reorder[c] > 0
	}
	if f.JitterMax < 0 {
		return fmt.Errorf("netsim: negative JitterMax %v", f.JitterMax)
	}
	if f.ReorderDelay < 0 {
		return fmt.Errorf("netsim: negative ReorderDelay %v", f.ReorderDelay)
	}
	if reorder && f.ReorderDelay == 0 {
		return fmt.Errorf("netsim: Reorder probability set but ReorderDelay is zero")
	}
	return nil
}

// FaultStats counts the faults the model actually injected.
type FaultStats struct {
	Dropped   int64
	Dupped    int64
	Reordered int64
}

// Fault decision streams: each (message, decision) pair draws from an
// independent stream of the keyed PRNG so enabling one fault dimension
// never shifts another dimension's rolls.
const (
	streamDrop uint64 = iota + 1
	streamDup
	streamReorder
	streamJitter
)

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// 64-bit mixer (Steele et al., "Fast Splittable Pseudorandom Number
// Generators").
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// faultRoll derives the decision word for one (message, stream) pair.
func faultRoll(seed uint64, from, to NodeID, idx, stream uint64) uint64 {
	h := splitmix64(seed)
	h = splitmix64(h ^ uint64(from))
	h = splitmix64(h ^ uint64(to))
	h = splitmix64(h ^ idx)
	return splitmix64(h ^ stream)
}

// unit maps a decision word to a uniform float64 in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) * (1.0 / (1 << 53)) }

// SetFaults installs the fault model (nil restores the reliable
// network). Must be called before traffic flows.
func (n *Network) SetFaults(f *FaultParams) {
	if f != nil {
		if err := f.Validate(); err != nil {
			panic(err)
		}
		if !f.Active() {
			f = nil
		}
	}
	n.faults = f
	if f != nil && n.chanIdx == nil {
		n.chanIdx = make([]uint64, len(n.egressFree)*len(n.egressFree))
	}
}

// SetFaultCounters installs metric counters incremented on every drop
// and duplication (either may be nil).
func (n *Network) SetFaultCounters(dropped, dupped *metrics.Counter) {
	n.cDropped, n.cDupped = dropped, dupped
}

// FaultStats returns a snapshot of the injected-fault counters.
func (n *Network) FaultStats() FaultStats { return n.fstats }

// nextChanIdx returns and advances the per-channel message index that
// keys fault rolls for the next message from→to.
func (n *Network) nextChanIdx(from, to NodeID) uint64 {
	i := int(from)*len(n.egressFree) + int(to)
	idx := n.chanIdx[i]
	n.chanIdx[i]++
	return idx
}

// faultedSend routes one departing message through the fault model:
// possibly dropping it, delaying it (jitter/reorder), or delivering it
// twice. sched schedules the delivery in the caller's context
// (Task.Schedule from task sends, Engine.Schedule from handler sends).
func (n *Network) faultedSend(depart sim.Time, from, to NodeID, class Class, bytes int, deliver func(), sched func(sim.Time, func())) {
	f := n.faults
	idx := n.nextChanIdx(from, to)

	if p := f.Drop[class]; p > 0 && unit(faultRoll(f.Seed, from, to, idx, streamDrop)) < p {
		n.dropMsg(depart, from, to, class, bytes)
		return
	}

	extra := sim.Time(0)
	if f.JitterMax > 0 {
		extra += sim.Time(unit(faultRoll(f.Seed, from, to, idx, streamJitter)) * float64(f.JitterMax))
	}
	if p := f.Reorder[class]; p > 0 && unit(faultRoll(f.Seed, from, to, idx, streamReorder)) < p {
		extra += f.ReorderDelay
		n.fstats.Reordered++
	}
	sched(n.arrival(depart, from, to, class, bytes, extra), deliver)

	if p := f.Dup[class]; p > 0 && unit(faultRoll(f.Seed, from, to, idx, streamDup)) < p {
		n.fstats.Dupped++
		if n.cDupped != nil {
			n.cDupped.Add(1)
		}
		if n.tracer != nil {
			// Aux links the duplication to the original message's id
			// (assigned by the arrival call just above).
			n.tracer.Emit(trace.Event{T: depart, Kind: trace.KindMsgDup,
				Node: int32(from), Thread: -1, Peer: int32(to),
				Sync: int32(class), Arg: int64(bytes), Aux: n.msgID})
		}
		// The replica is a second physical message: it pays its own wire,
		// ingress, and accounting, and delivers under its own id.
		sched(n.arrival(depart, from, to, class, bytes, extra), deliver)
	}
}

// dropMsg accounts a message that left the sender's egress but never
// arrived. It still counts in the traffic stats (it consumed the wire)
// but emits no send/deliver pair — only a drop event.
func (n *Network) dropMsg(depart sim.Time, from, to NodeID, class Class, bytes int) {
	n.stats.Msgs[class]++
	n.stats.Bytes[class] += int64(bytes)
	n.fstats.Dropped++
	if n.cDropped != nil {
		n.cDropped.Add(1)
	}
	if n.tracer != nil {
		n.msgID++
		n.tracer.Emit(trace.Event{T: depart, Kind: trace.KindMsgDrop,
			Node: int32(from), Thread: -1, Peer: int32(to),
			Sync: int32(class), Arg: int64(bytes), Aux: n.msgID})
	}
}
