package check_test

import (
	"strings"
	"testing"

	"cvm/internal/check"
	"cvm/internal/core"
	"cvm/internal/netsim"
	"cvm/internal/sim"
	"cvm/internal/trace"
)

// ev builds a violation-test event tersely.
func ev(k trace.Kind, node int32, mut ...func(*trace.Event)) trace.Event {
	e := trace.Event{Kind: k, Node: node, Thread: -1, Page: -1}
	for _, m := range mut {
		m(&e)
	}
	return e
}

func page(p int32) func(*trace.Event)   { return func(e *trace.Event) { e.Page = p } }
func syncID(s int32) func(*trace.Event) { return func(e *trace.Event) { e.Sync = s } }
func thread(t int32) func(*trace.Event) { return func(e *trace.Event) { e.Thread = t } }
func peer(p int32) func(*trace.Event)   { return func(e *trace.Event) { e.Peer = p } }
func aux(a int64) func(*trace.Event)    { return func(e *trace.Event) { e.Aux = a } }
func arg(a int64) func(*trace.Event)    { return func(e *trace.Event) { e.Arg = a } }

// feed runs a stream through a fresh checker and returns it.
func feed(nodes, threads int, events ...trace.Event) *check.Checker {
	c := check.New(nodes, threads)
	for _, e := range events {
		c.Emit(e)
	}
	return c
}

// wantViolation asserts exactly one violation naming the invariant.
func wantViolation(t *testing.T, c *check.Checker, invariant string) {
	t.Helper()
	vs := c.Violations()
	if c.Count() != 1 || len(vs) != 1 {
		t.Fatalf("got %d violations (%d detailed), want exactly 1: %v", c.Count(), len(vs), vs)
	}
	if vs[0].Invariant != invariant {
		t.Errorf("violation invariant = %q, want %q (detail: %s)", vs[0].Invariant, invariant, vs[0].Detail)
	}
}

func TestCleanStreamNoViolations(t *testing.T) {
	c := feed(2, 1,
		// A full twin→diff→apply cycle.
		ev(trace.KindTwinCreate, 0, page(3), thread(0)),
		ev(trace.KindDiffCreate, 0, page(3), aux(1)),
		ev(trace.KindDiffApply, 1, page(3), peer(0), arg(1)),
		// Same page, next interval.
		ev(trace.KindTwinCreate, 0, page(3), thread(0)),
		ev(trace.KindDiffCreate, 0, page(3), aux(2)),
		ev(trace.KindDiffApply, 1, page(3), peer(0), arg(2)),
		// Lock handoff.
		ev(trace.KindLockAcquire, 0, syncID(7), thread(0)),
		ev(trace.KindLockRelease, 0, syncID(7), thread(0)),
		ev(trace.KindLockAcquire, 1, syncID(7), thread(1)),
		ev(trace.KindLockRelease, 1, syncID(7), thread(1)),
		// One global barrier epoch: 2 nodes × 1 thread arrive, 2 releases.
		ev(trace.KindBarrierArrive, 0, syncID(9), thread(0)),
		ev(trace.KindBarrierArrive, 1, syncID(9), thread(1)),
		ev(trace.KindBarrierRelease, 0, syncID(9)),
		ev(trace.KindBarrierRelease, 1, syncID(9)),
	)
	c.Finish()
	if c.Count() != 0 {
		t.Fatalf("clean stream produced %d violations: %v", c.Count(), c.Violations())
	}
	if c.Err() != nil {
		t.Errorf("Err() = %v on a clean run, want nil", c.Err())
	}
}

func TestTwinUnique(t *testing.T) {
	c := feed(1, 1,
		ev(trace.KindTwinCreate, 0, page(4)),
		ev(trace.KindTwinCreate, 0, page(4)),
	)
	wantViolation(t, c, "twin-unique")
}

func TestIntervalMonotone(t *testing.T) {
	c := feed(1, 1,
		ev(trace.KindTwinCreate, 0, page(1)),
		ev(trace.KindDiffCreate, 0, page(1), aux(5)),
		ev(trace.KindTwinCreate, 0, page(2)),
		ev(trace.KindDiffCreate, 0, page(2), aux(4)), // runs backwards
	)
	wantViolation(t, c, "interval-monotone")
}

func TestDiffUnique(t *testing.T) {
	c := feed(1, 1,
		ev(trace.KindTwinCreate, 0, page(1)),
		ev(trace.KindDiffCreate, 0, page(1), aux(3)),
		ev(trace.KindTwinCreate, 0, page(1)),
		ev(trace.KindDiffCreate, 0, page(1), aux(3)), // same interval twice
	)
	wantViolation(t, c, "diff-unique")
}

func TestTwinDiffPairing(t *testing.T) {
	c := feed(1, 1,
		ev(trace.KindDiffCreate, 0, page(1), aux(1)), // no outstanding twin
	)
	wantViolation(t, c, "twin-diff-pairing")
}

func TestDiffApplyOnce(t *testing.T) {
	c := feed(2, 1,
		ev(trace.KindDiffApply, 1, page(6), peer(0), arg(2)),
		ev(trace.KindDiffApply, 1, page(6), peer(0), arg(2)), // replay
	)
	wantViolation(t, c, "diff-apply-once")
}

func TestDiffApplyOrder(t *testing.T) {
	c := feed(2, 1,
		ev(trace.KindDiffApply, 1, page(6), peer(0), arg(3)),
		ev(trace.KindDiffApply, 1, page(6), peer(0), arg(2)), // older interval after newer
	)
	wantViolation(t, c, "diff-apply-order")
}

func TestLockUniqueHolder(t *testing.T) {
	c := feed(2, 1,
		ev(trace.KindLockAcquire, 0, syncID(5), thread(0)),
		ev(trace.KindLockAcquire, 1, syncID(5), thread(1)), // double grant
	)
	wantViolation(t, c, "lock-unique-holder")

	c = feed(2, 1,
		ev(trace.KindLockRelease, 0, syncID(5), thread(0)), // never held
	)
	wantViolation(t, c, "lock-unique-holder")

	c = feed(2, 1,
		ev(trace.KindLockAcquire, 0, syncID(5), thread(0)),
		ev(trace.KindLockRelease, 1, syncID(5), thread(1)), // wrong holder
	)
	wantViolation(t, c, "lock-unique-holder")
}

func TestBarrierEpochRelease(t *testing.T) {
	// Release with no completed epoch.
	c := feed(2, 2,
		ev(trace.KindBarrierArrive, 0, syncID(1), thread(0)),
		ev(trace.KindBarrierRelease, 0, syncID(1)),
	)
	wantViolation(t, c, "barrier-epoch")

	// Extra release after a complete epoch drained.
	c = feed(1, 1,
		ev(trace.KindBarrierArrive, 0, syncID(1), thread(0)),
		ev(trace.KindBarrierRelease, 0, syncID(1)),
		ev(trace.KindBarrierRelease, 0, syncID(1)),
	)
	wantViolation(t, c, "barrier-epoch")
}

func TestBarrierEpochInterleave(t *testing.T) {
	// Releases of epoch k may interleave with arrivals of epoch k+1: a
	// released node races to the next barrier while another node's
	// release is still in flight. This is legal.
	c := feed(2, 1,
		ev(trace.KindBarrierArrive, 0, syncID(1), thread(0)),
		ev(trace.KindBarrierArrive, 1, syncID(1), thread(1)),
		ev(trace.KindBarrierRelease, 0, syncID(1)),
		ev(trace.KindBarrierArrive, 0, syncID(1), thread(0)), // next epoch, early
		ev(trace.KindBarrierRelease, 1, syncID(1)),           // epoch 1's last release
		ev(trace.KindBarrierArrive, 1, syncID(1), thread(1)),
		ev(trace.KindBarrierRelease, 0, syncID(1)),
		ev(trace.KindBarrierRelease, 1, syncID(1)),
	)
	c.Finish()
	if c.Count() != 0 {
		t.Fatalf("legal interleaving flagged: %v", c.Violations())
	}
}

func TestLocalBarrier(t *testing.T) {
	local := func(e *trace.Event) { e.Aux = 1 }
	// Clean: both threads of the node arrive, then release.
	c := feed(2, 2,
		ev(trace.KindBarrierArrive, 0, syncID(3), thread(0), local),
		ev(trace.KindBarrierArrive, 0, syncID(3), thread(1), local),
		ev(trace.KindBarrierRelease, 0, syncID(3), thread(1), local),
	)
	c.Finish()
	if c.Count() != 0 {
		t.Fatalf("clean local barrier flagged: %v", c.Violations())
	}

	// Early release: only one of two threads arrived.
	c = feed(2, 2,
		ev(trace.KindBarrierArrive, 0, syncID(3), thread(0), local),
		ev(trace.KindBarrierRelease, 0, syncID(3), thread(0), local),
	)
	wantViolation(t, c, "barrier-epoch")
}

func TestFinishMidEpoch(t *testing.T) {
	c := feed(2, 1,
		ev(trace.KindBarrierArrive, 0, syncID(1), thread(0)), // 1 of 2 arrivals
	)
	c.Finish()
	wantViolation(t, c, "barrier-epoch")

	c = feed(2, 2,
		ev(trace.KindBarrierArrive, 0, syncID(3), thread(0), func(e *trace.Event) { e.Aux = 1 }),
	)
	c.Finish()
	wantViolation(t, c, "barrier-epoch")
}

func TestDetailCapAndReport(t *testing.T) {
	c := check.New(1, 1)
	const n = 1500
	for i := 0; i < n; i++ {
		c.Emit(ev(trace.KindLockRelease, 0, syncID(1))) // never held, violates every time
	}
	if c.Count() != n {
		t.Errorf("Count() = %d, want %d", c.Count(), n)
	}
	if got := len(c.Violations()); got >= n {
		t.Errorf("detailed violations = %d, want capped below %d", got, n)
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "1500") {
		t.Errorf("Err() = %v, want summary naming all 1500", err)
	}
	var b strings.Builder
	c.Report(&b)
	if !strings.Contains(b.String(), "1500 violation(s)") {
		t.Errorf("Report missing total:\n%s", b.String()[:120])
	}
}

func TestViolationString(t *testing.T) {
	v := check.Violation{T: 5 * sim.Millisecond, Node: 2, Page: 7, Invariant: "diff-unique", Detail: "x"}
	s := v.String()
	for _, want := range []string{"node=2", "page=7", "diff-unique"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	v.Page = -1
	if strings.Contains(v.String(), "page=") {
		t.Errorf("String() = %q, should omit page when -1", v.String())
	}
}

// TestCheckerOnFaultedRun attaches the checker to a real cluster running
// the chained-accumulation workload under heavy network faults: the
// reliable transport must keep every invariant intact while the fault
// model drops, duplicates, and reorders its messages.
func TestCheckerOnFaultedRun(t *testing.T) {
	const nodes, threads = 4, 2
	fp := &core.FaultPlan{Net: netsim.FaultParams{
		Seed:         3,
		JitterMax:    200 * sim.Microsecond,
		ReorderDelay: 2 * sim.Millisecond,
	}}
	for c := 0; c < netsim.NumClasses; c++ {
		fp.Net.Drop[c] = 0.05
		fp.Net.Dup[c] = 0.05
		fp.Net.Reorder[c] = 0.05
	}

	chk := check.New(nodes, threads)
	cfg := core.DefaultConfig(nodes, threads)
	cfg.Tracer = chk
	cfg.Faults = fp
	s, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := s.Alloc("counters", 8192)
	at := func(i int) core.Addr { return addr + core.Addr(i*8) }
	err = s.Start(func(w *core.Thread) {
		w.Barrier(0)
		for r := 0; r < 2; r++ {
			for k := 0; k < 8; k++ {
				w.Lock(10 + k)
				w.WriteF64(at(k), w.ReadF64(at(k))+float64(w.GlobalID()+1))
				w.Unlock(10 + k)
			}
			w.Barrier(100 + r)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	chk.Finish()
	if chk.Count() != 0 {
		t.Fatalf("faulted run violated %d invariant(s):\n%v", chk.Count(), chk.Err())
	}
	if s.Stats().Total.Retransmits == 0 {
		t.Error("heavy-fault run recorded no retransmissions (faults not exercised)")
	}
}
