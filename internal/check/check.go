// Package check is a protocol invariant checker for the simulated DSM.
//
// The Checker implements trace.Tracer and audits the event stream
// online, holding the protocol to the invariants its correctness
// argument rests on: intervals close in order, twins pair with diffs,
// no diff is created or applied twice, at most one thread holds a lock,
// and barrier epochs are globally agreed. It is an optional hook in the
// same style as the tracer and metrics registry — wire it into
// Config.Tracer (alone, or fanned out with trace.Tee) and ask it for
// violations after the run; a nil or absent checker costs nothing.
//
// The checker is most valuable under fault injection: the reliable
// transport claims exactly-once delivery over a lossy network, and
// these invariants are exactly what breaks first if a duplicated or
// replayed message slips through — a lock granted twice, a diff applied
// twice, a barrier releasing early. The chaos suite runs every
// application under every fault schedule with a Checker attached and
// asserts zero violations.
package check

import (
	"fmt"
	"strings"

	"cvm/internal/sim"
	"cvm/internal/trace"
)

// maxDetailed bounds the violations kept with full detail; beyond it
// only the count grows (a broken protocol can violate millions of times).
const maxDetailed = 1000

// Violation is one observed invariant breach.
type Violation struct {
	T         sim.Time // virtual time of the offending event
	Node      int32    // node the event was recorded against
	Page      int32    // page involved, -1 when not page-related
	Invariant string   // short invariant name (e.g. "lock-unique-holder")
	Detail    string   // human-readable specifics
}

func (v Violation) String() string {
	if v.Page >= 0 {
		return fmt.Sprintf("T=%v node=%d page=%d [%s] %s", v.T, v.Node, v.Page, v.Invariant, v.Detail)
	}
	return fmt.Sprintf("T=%v node=%d [%s] %s", v.T, v.Node, v.Invariant, v.Detail)
}

// pagePeer keys per-(node,page,peer) diff application state.
type pagePeer struct {
	node, page, peer int32
}

// nodePage keys per-(node,page) twin state.
type nodePage struct {
	node, page int32
}

// diffKey identifies one created diff: creator node, page, interval.
type diffKey struct {
	node, page int32
	idx        int64
}

// lockHolder records who holds a lock.
type lockHolder struct {
	node, thread int32
}

// pageEpoch keys the cluster-wide mode agreement per adaptation epoch.
type pageEpoch struct {
	page  int32
	epoch int64
}

// modeDecl is the content of one mode-change notice: every node that
// applies epoch E for page P must apply the same declaration.
type modeDecl struct {
	mode  int64
	owner int32
}

// migration tracks one in-flight thread migration.
type migration struct {
	src, dst int32
}

// modeExcl mirrors core.ModeExcl (trace events carry the numeric mode
// in Arg; importing core here would invert the dependency). Pinned by
// TestModeValueMirrorsCore.
const modeExcl = 2

// barrierState tracks one global barrier id across epochs. Epochs of
// the same id are sequential, but releases of epoch k can interleave
// with arrivals of epoch k+1 (a released node races ahead while another
// node's release message is still in flight), so arrivals and
// outstanding releases are tracked independently.
type barrierState struct {
	arrived     int // arrivals toward the current epoch
	outstanding int // releases still owed for completed epochs
}

// localBarrierState tracks one (node, id) local barrier.
type localBarrierState struct {
	arrived int
}

// Checker audits a protocol event stream. It implements trace.Tracer.
// Like the Recorder, it relies on the simulator's sequential dispatch
// and must not be shared between concurrently running systems.
type Checker struct {
	nodes   int
	threads int // per node

	violations []Violation
	total      int

	intervalIdx []int64                    // per node: highest interval idx seen closing
	twins       map[nodePage]bool          // outstanding twin per (node, page)
	diffsMade   map[diffKey]bool           // diffs created, for uniqueness
	appliedIdx  map[pagePeer]int64         // highest interval idx applied per (node,page,peer)
	applied     map[diffKey]map[int32]bool // diff → set of nodes that applied it
	lockHeld    map[int32]lockHolder       // lock id → holder
	barriers    map[int32]*barrierState
	localBars   map[nodePage]*localBarrierState // (node, barrier id)

	// Adaptive-coherence state. All maps stay empty for plain LRC runs
	// (the kinds below are never emitted), so the checker costs nothing
	// extra there.
	modeEpoch map[nodePage]int64     // last mode-change epoch applied
	modeAt    map[pageEpoch]modeDecl // cluster-wide declaration per epoch
	exclSpan  map[nodePage]bool      // owner holds an unopened/open excl grant
	homes     map[int32]int32        // thread gid → home node
	inflight  map[int32]migration    // thread gid → migration under way
}

// New returns a Checker for a cluster of the given shape.
func New(nodes, threadsPerNode int) *Checker {
	return &Checker{
		nodes:       nodes,
		threads:     threadsPerNode,
		intervalIdx: make([]int64, nodes),
		twins:       make(map[nodePage]bool),
		diffsMade:   make(map[diffKey]bool),
		appliedIdx:  make(map[pagePeer]int64),
		applied:     make(map[diffKey]map[int32]bool),
		lockHeld:    make(map[int32]lockHolder),
		barriers:    make(map[int32]*barrierState),
		localBars:   make(map[nodePage]*localBarrierState),
		modeEpoch:   make(map[nodePage]int64),
		modeAt:      make(map[pageEpoch]modeDecl),
		exclSpan:    make(map[nodePage]bool),
		homes:       make(map[int32]int32),
		inflight:    make(map[int32]migration),
	}
}

func (c *Checker) violate(e trace.Event, page int32, invariant, format string, args ...any) {
	c.total++
	if len(c.violations) < maxDetailed {
		c.violations = append(c.violations, Violation{
			T: e.T, Node: e.Node, Page: page,
			Invariant: invariant, Detail: fmt.Sprintf(format, args...),
		})
	}
}

// Emit audits one event. It implements trace.Tracer.
func (c *Checker) Emit(e trace.Event) {
	// migrate-single-home: a thread acts only on its home node, and
	// never while its continuation is in flight between nodes. Audited
	// on the kinds that carry a global thread id attributed to the
	// emitting node.
	switch e.Kind {
	case trace.KindFaultStart, trace.KindFaultResolve,
		trace.KindLockAcquire, trace.KindLockRelease,
		trace.KindBarrierArrive, trace.KindThreadBlock, trace.KindThreadUnblock:
		if e.Thread >= 0 {
			if m, ok := c.inflight[e.Thread]; ok {
				c.violate(e, -1, "migrate-single-home",
					"thread %d acted on node %d while migrating %d→%d",
					e.Thread, e.Node, m.src, m.dst)
			} else if home, ok := c.homes[e.Thread]; !ok {
				c.homes[e.Thread] = e.Node
			} else if home != e.Node {
				c.violate(e, -1, "migrate-single-home",
					"thread %d acted on node %d, homed on node %d without a migration",
					e.Thread, e.Node, home)
			}
		}
	}

	switch e.Kind {
	case trace.KindTwinCreate:
		// twin-unique: at most one outstanding twin per (node, page) —
		// a second twin inside the same interval would fork the page.
		key := nodePage{e.Node, e.Page}
		if c.twins[key] {
			c.violate(e, e.Page, "twin-unique", "twin created while a twin is already outstanding")
			return
		}
		c.twins[key] = true

	case trace.KindDiffCreate:
		// interval-monotone: a node closes intervals in increasing
		// index order — the vector-clock component for the node itself
		// never runs backwards.
		if idx := e.Aux; idx < c.intervalIdx[e.Node] {
			c.violate(e, e.Page, "interval-monotone",
				"diff for interval %d created after interval %d closed", idx, c.intervalIdx[e.Node])
		} else {
			c.intervalIdx[e.Node] = idx
		}
		// diff-unique: one diff per (node, page, interval).
		dk := diffKey{e.Node, e.Page, e.Aux}
		if c.diffsMade[dk] {
			c.violate(e, e.Page, "diff-unique",
				"diff for interval %d created twice", e.Aux)
		}
		c.diffsMade[dk] = true
		// twin-diff-pairing: a diff encodes the page against its twin,
		// so an unconsumed twin must exist.
		key := nodePage{e.Node, e.Page}
		if !c.twins[key] {
			c.violate(e, e.Page, "twin-diff-pairing", "diff created with no outstanding twin")
		}
		delete(c.twins, key)
		// excl-no-diff: an exclusive owner absorbs writes without the
		// twin/diff machinery; a diff between the grant and the window
		// close means the single-writer fast path leaked an interval.
		if c.exclSpan[key] {
			c.violate(e, e.Page, "excl-no-diff",
				"diff created inside an exclusive-mode window")
		}

	case trace.KindDiffApply:
		// diff-apply-once: a node never applies the same diff twice —
		// the first thing a replayed message would do.
		dk := diffKey{e.Peer, e.Page, e.Arg}
		nodes := c.applied[dk]
		if nodes == nil {
			nodes = make(map[int32]bool)
			c.applied[dk] = nodes
		}
		if nodes[e.Node] {
			c.violate(e, e.Page, "diff-apply-once",
				"diff from node %d interval %d applied twice", e.Peer, e.Arg)
		}
		nodes[e.Node] = true
		// diff-apply-order: diffs from one creator apply to a page in
		// interval order (the creator's program order); applying them
		// out of order loses updates.
		pp := pagePeer{e.Node, e.Page, e.Peer}
		if prev, ok := c.appliedIdx[pp]; ok && e.Arg < prev {
			c.violate(e, e.Page, "diff-apply-order",
				"diff from node %d interval %d applied after interval %d", e.Peer, e.Arg, prev)
		} else {
			c.appliedIdx[pp] = e.Arg
		}

	case trace.KindLockAcquire:
		// lock-unique-holder: mutual exclusion in emission order.
		if h, held := c.lockHeld[e.Sync]; held {
			c.violate(e, -1, "lock-unique-holder",
				"lock %d acquired by thread %d while node %d thread %d holds it",
				e.Sync, e.Thread, h.node, h.thread)
		}
		c.lockHeld[e.Sync] = lockHolder{e.Node, e.Thread}

	case trace.KindLockRelease:
		h, held := c.lockHeld[e.Sync]
		if !held {
			c.violate(e, -1, "lock-unique-holder", "lock %d released while not held", e.Sync)
		} else if h != (lockHolder{e.Node, e.Thread}) {
			c.violate(e, -1, "lock-unique-holder",
				"lock %d released by node %d thread %d, held by node %d thread %d",
				e.Sync, e.Node, e.Thread, h.node, h.thread)
		}
		delete(c.lockHeld, e.Sync)

	case trace.KindBarrierArrive:
		if e.Aux == 1 {
			key := nodePage{e.Node, e.Sync}
			lb := c.localBars[key]
			if lb == nil {
				lb = &localBarrierState{}
				c.localBars[key] = lb
			}
			lb.arrived++
			return
		}
		b := c.barriers[e.Sync]
		if b == nil {
			b = &barrierState{}
			c.barriers[e.Sync] = b
		}
		b.arrived++
		if b.arrived > c.nodes*c.threads {
			c.violate(e, -1, "barrier-epoch",
				"barrier %d saw arrival %d, epoch needs %d", e.Sync, b.arrived, c.nodes*c.threads)
		} else if b.arrived == c.nodes*c.threads {
			// Epoch complete: every node now owes one release.
			b.arrived = 0
			b.outstanding += c.nodes
		}

	case trace.KindBarrierRelease:
		if e.Aux == 1 {
			key := nodePage{e.Node, e.Sync}
			lb := c.localBars[key]
			if lb == nil || lb.arrived != c.threads {
				got := 0
				if lb != nil {
					got = lb.arrived
				}
				c.violate(e, -1, "barrier-epoch",
					"local barrier %d released after %d arrivals, want %d", e.Sync, got, c.threads)
			}
			if lb != nil {
				lb.arrived = 0
			}
			return
		}
		b := c.barriers[e.Sync]
		if b == nil || b.outstanding == 0 {
			arrived := 0
			if b != nil {
				arrived = b.arrived
			}
			c.violate(e, -1, "barrier-epoch",
				"barrier %d released with no completed epoch (%d/%d arrivals)",
				e.Sync, arrived, c.nodes*c.threads)
			return
		}
		b.outstanding--

	case trace.KindModeChange:
		// mode-epoch-monotone: a node applies mode changes for a page in
		// strictly increasing adaptation-epoch order — a replayed or
		// reordered notice would roll a page's protocol backwards.
		key := nodePage{e.Node, e.Page}
		if last, ok := c.modeEpoch[key]; ok && e.Aux <= last {
			c.violate(e, e.Page, "mode-epoch-monotone",
				"mode change for epoch %d applied after epoch %d", e.Aux, last)
		} else {
			c.modeEpoch[key] = e.Aux
		}
		// mode-agree: every node that applies epoch E for a page applies
		// the same (mode, owner) declaration — the notices are a
		// broadcast, and a disagreement forks the coherence protocol.
		pe := pageEpoch{e.Page, e.Aux}
		decl := modeDecl{mode: e.Arg, owner: e.Peer}
		if prev, ok := c.modeAt[pe]; !ok {
			c.modeAt[pe] = decl
		} else if prev != decl {
			c.violate(e, e.Page, "mode-agree",
				"epoch %d declares mode %d owner %d here, mode %d owner %d elsewhere",
				e.Aux, decl.mode, decl.owner, prev.mode, prev.owner)
		}
		// excl-no-diff bookkeeping: a grant opens the forbidden span at
		// the owner; any change away from exclusive ends it (the window,
		// if it ever opened, was closed before this notice was emitted).
		if e.Arg == modeExcl && e.Peer == e.Node {
			c.exclSpan[key] = true
		} else {
			delete(c.exclSpan, key)
		}

	case trace.KindExclWindowClose:
		// The owner committed its absorbed writes back onto the interval
		// machinery; diffs for the page are legitimate again.
		delete(c.exclSpan, nodePage{e.Node, e.Page})

	case trace.KindMigrateStart:
		if m, ok := c.inflight[e.Thread]; ok {
			c.violate(e, -1, "migrate-single-home",
				"thread %d re-migrated (%d→%d) while already in flight %d→%d",
				e.Thread, e.Node, e.Peer, m.src, m.dst)
			return
		}
		if home, ok := c.homes[e.Thread]; ok && home != e.Node {
			c.violate(e, -1, "migrate-single-home",
				"thread %d migrated out of node %d but is homed on node %d",
				e.Thread, e.Node, home)
		}
		delete(c.homes, e.Thread)
		c.inflight[e.Thread] = migration{src: e.Node, dst: e.Peer}

	case trace.KindMigrateArrive:
		m, ok := c.inflight[e.Thread]
		if !ok {
			c.violate(e, -1, "migrate-single-home",
				"thread %d arrived at node %d with no migration in flight",
				e.Thread, e.Node)
		} else if m.dst != e.Node || m.src != e.Peer {
			c.violate(e, -1, "migrate-single-home",
				"thread %d arrived %d→%d, migration in flight was %d→%d",
				e.Thread, e.Peer, e.Node, m.src, m.dst)
		}
		delete(c.inflight, e.Thread)
		c.homes[e.Thread] = e.Node
	}
}

// Finish audits end-of-run state: every barrier epoch that gathered
// arrivals must have fully released. Call after the run completes; it
// may append further violations.
func (c *Checker) Finish() {
	for id, b := range c.barriers {
		if b.arrived != 0 || b.outstanding != 0 {
			c.violate(trace.Event{Node: -1}, -1, "barrier-epoch",
				"run ended with barrier %d mid-epoch: %d arrivals pending, %d releases owed",
				id, b.arrived, b.outstanding)
		}
	}
	for key, lb := range c.localBars {
		if lb.arrived != 0 {
			c.violate(trace.Event{Node: key.node}, -1, "barrier-epoch",
				"run ended with local barrier %d on node %d mid-epoch: %d arrivals pending",
				key.page, key.node, lb.arrived)
		}
	}
	for gid, m := range c.inflight {
		c.violate(trace.Event{Node: m.src}, -1, "migrate-single-home",
			"run ended with thread %d still in flight %d→%d", gid, m.src, m.dst)
	}
}

// Violations returns the detailed violations recorded so far (capped at
// an internal bound; Count reports the true total).
func (c *Checker) Violations() []Violation { return c.violations }

// Count reports the total number of violations, including any beyond
// the detailed cap.
func (c *Checker) Count() int { return c.total }

// Err summarizes the violations as an error, nil if there are none.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d protocol invariant violation(s)", c.total)
	show := c.violations
	if len(show) > 5 {
		show = show[:5]
	}
	for _, v := range show {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if c.total > len(show) {
		fmt.Fprintf(&b, "\n  ... and %d more", c.total-len(show))
	}
	return fmt.Errorf("%s", b.String())
}

// Report writes every detailed violation, one per line — the artifact
// CI uploads when a chaos run fails.
func (c *Checker) Report(w *strings.Builder) {
	fmt.Fprintf(w, "%d violation(s), %d detailed\n", c.total, len(c.violations))
	for _, v := range c.violations {
		w.WriteString(v.String())
		w.WriteByte('\n')
	}
}
