package check_test

import (
	"testing"

	"cvm/internal/core"
	"cvm/internal/trace"
)

// The checker mirrors core.ModeExcl numerically (importing core would
// invert the dependency); this pins the mirrored value.
func TestModeValueMirrorsCore(t *testing.T) {
	if core.ModeExcl != 2 {
		t.Fatalf("core.ModeExcl = %d; update check.modeExcl to match", core.ModeExcl)
	}
}

func excl(e *trace.Event) { e.Arg = int64(core.ModeExcl) }

func TestModeEpochMonotone(t *testing.T) {
	// A replayed notice (same epoch) rolls nothing forward.
	c := feed(2, 1,
		ev(trace.KindModeChange, 0, page(3), peer(-1), aux(2)),
		ev(trace.KindModeChange, 0, page(3), peer(-1), aux(2)),
	)
	wantViolation(t, c, "mode-epoch-monotone")

	// A reordered notice (older epoch after newer) rolls backwards.
	c = feed(2, 1,
		ev(trace.KindModeChange, 0, page(3), peer(-1), aux(5)),
		ev(trace.KindModeChange, 0, page(3), peer(-1), aux(4)),
	)
	wantViolation(t, c, "mode-epoch-monotone")

	// Distinct pages and distinct nodes have independent epoch chains.
	c = feed(2, 1,
		ev(trace.KindModeChange, 0, page(3), peer(-1), aux(2)),
		ev(trace.KindModeChange, 0, page(4), peer(-1), aux(2)),
		ev(trace.KindModeChange, 1, page(3), peer(-1), aux(2)),
		ev(trace.KindModeChange, 0, page(3), peer(-1), aux(3)),
	)
	if c.Count() != 0 {
		t.Fatalf("independent chains flagged: %v", c.Violations())
	}
}

func TestModeAgree(t *testing.T) {
	// Two nodes applying the same epoch must see the same declaration.
	c := feed(2, 1,
		ev(trace.KindModeChange, 0, page(7), peer(0), aux(3), excl),
		ev(trace.KindModeChange, 1, page(7), peer(1), aux(3), excl), // different owner
	)
	wantViolation(t, c, "mode-agree")

	c = feed(2, 1,
		ev(trace.KindModeChange, 0, page(7), peer(-1), aux(3), arg(1)),
		ev(trace.KindModeChange, 1, page(7), peer(-1), aux(3), arg(0)), // different mode
	)
	wantViolation(t, c, "mode-agree")
}

func TestExclNoDiff(t *testing.T) {
	// Between an exclusive grant at the owner and the window close, the
	// owner must not commit an interval for the page. (The twin alone is
	// legal: closing the window creates one.)
	c := feed(2, 1,
		ev(trace.KindModeChange, 0, page(4), peer(0), aux(1), excl),
		ev(trace.KindTwinCreate, 0, page(4)),
		ev(trace.KindDiffCreate, 0, page(4), aux(1)),
	)
	wantViolation(t, c, "excl-no-diff")

	// After the window closes, the absorbed writes flow through the
	// normal machinery — diffing is the point.
	c = feed(2, 1,
		ev(trace.KindModeChange, 0, page(4), peer(0), aux(1), excl),
		ev(trace.KindTwinCreate, 0, page(4)),
		ev(trace.KindExclWindowClose, 0, page(4), aux(1)),
		ev(trace.KindDiffCreate, 0, page(4), aux(1)),
	)
	if c.Count() != 0 {
		t.Fatalf("post-close diff flagged: %v", c.Violations())
	}

	// A demotion also ends the span, even if the window never opened.
	c = feed(2, 1,
		ev(trace.KindModeChange, 0, page(4), peer(0), aux(1), excl),
		ev(trace.KindModeChange, 0, page(4), peer(-1), aux(2), arg(0)),
		ev(trace.KindTwinCreate, 0, page(4)),
		ev(trace.KindDiffCreate, 0, page(4), aux(1)),
	)
	if c.Count() != 0 {
		t.Fatalf("post-demotion diff flagged: %v", c.Violations())
	}

	// The grant binds (node, page): a non-owner diffs freely.
	c = feed(2, 1,
		ev(trace.KindModeChange, 1, page(4), peer(0), aux(1), excl),
		ev(trace.KindTwinCreate, 1, page(4)),
		ev(trace.KindDiffCreate, 1, page(4), aux(1)),
	)
	if c.Count() != 0 {
		t.Fatalf("non-owner diff flagged: %v", c.Violations())
	}
}

func TestMigrateSingleHome(t *testing.T) {
	mig := func(k trace.Kind, node, th, other int32) trace.Event {
		return ev(k, node, thread(th), peer(other))
	}

	// Clean migration: act at home, move, act at the new home.
	c := feed(2, 1,
		ev(trace.KindLockAcquire, 0, syncID(5), thread(2)),
		ev(trace.KindLockRelease, 0, syncID(5), thread(2)),
		mig(trace.KindMigrateStart, 0, 2, 1),
		mig(trace.KindMigrateArrive, 1, 2, 0),
		ev(trace.KindLockAcquire, 1, syncID(5), thread(2)),
		ev(trace.KindLockRelease, 1, syncID(5), thread(2)),
	)
	c.Finish()
	if c.Count() != 0 {
		t.Fatalf("clean migration flagged: %v", c.Violations())
	}

	// Acting while the continuation is in flight.
	c = feed(2, 1,
		mig(trace.KindMigrateStart, 0, 2, 1),
		ev(trace.KindLockAcquire, 0, syncID(5), thread(2)),
	)
	wantViolation(t, c, "migrate-single-home")

	// Acting on a foreign node with no migration recorded. (Distinct
	// locks, so only the home invariant is in play.)
	c = feed(2, 1,
		ev(trace.KindLockAcquire, 0, syncID(5), thread(2)),
		ev(trace.KindLockAcquire, 1, syncID(6), thread(2)),
	)
	wantViolation(t, c, "migrate-single-home")

	// Arriving with nothing in flight.
	c = feed(2, 1,
		mig(trace.KindMigrateArrive, 1, 2, 0),
	)
	wantViolation(t, c, "migrate-single-home")

	// Arriving somewhere other than the ordered destination.
	c = feed(3, 1,
		mig(trace.KindMigrateStart, 0, 2, 1),
		mig(trace.KindMigrateArrive, 2, 2, 0),
	)
	wantViolation(t, c, "migrate-single-home")

	// A run must not end with a thread between nodes.
	c = feed(2, 1,
		mig(trace.KindMigrateStart, 0, 2, 1),
	)
	c.Finish()
	wantViolation(t, c, "migrate-single-home")
}
