// Package sim implements a deterministic, sequential discrete-event engine
// with cooperative green threads.
//
// The engine is the substrate for the simulated cluster: each simulated
// processor (Proc) owns a virtual clock and a FIFO run queue of Tasks.
// Exactly one entity runs at any moment — either a pending event (message
// delivery) or the active task of one processor — and entities are always
// dispatched in virtual-time order, which makes every simulation run
// bit-reproducible.
//
// Tasks execute ordinary Go code. Every simulated action (computing,
// sending, blocking) goes through Task methods that advance the owning
// processor's clock; a task yields control back to the engine whenever its
// clock would cross the engine's causality horizon (the lowest timestamp of
// any other runnable entity), so no task ever observes state from an event
// that has not yet been applied.
package sim

import "fmt"

// Time is a virtual-time instant or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond

	// MaxTime is the largest representable instant; it is used as the
	// horizon when no other entity bounds a running task.
	MaxTime Time = 1<<63 - 1
)

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with a unit chosen by magnitude.
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fµs", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

func minTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
