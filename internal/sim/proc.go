package sim

// Reason classifies why a task blocked. The engine treats it as opaque;
// higher layers define values and use them for idle-time attribution
// (the paper's non-overlapped fault / lock / barrier wait times).
type Reason uint8

// ReasonNone is the zero Reason, used for tasks that never blocked.
const ReasonNone Reason = 0

// Hooks receives scheduling notifications for one processor. Hooks run
// in the dispatch context of that processor and must not block. In the
// windowed parallel mode several processors dispatch concurrently, so a
// handler shared between procs must only touch per-proc state.
type Hooks interface {
	// OnSwitch fires when the processor dispatches a task other than the
	// one it last ran, after the switch cost has been charged.
	OnSwitch(from, to *Task)

	// OnIdleEnd fires when an idle processor becomes runnable again.
	// The interval [start, end) was spent with no runnable task, and task
	// is the wake that ended it; its Reason attributes the wait.
	OnIdleEnd(start, end Time, task *Task)

	// OnSlice fires after every execution slice with the user-time span
	// [start, end) consumed by task (including any switch cost charged to
	// dispatch it).
	OnSlice(task *Task, start, end Time)
}

// ProcHooks is the function-valued form of Hooks; any field may be nil.
// Installing one allocates an adapter — implement Hooks directly on a
// long-lived receiver to avoid that on construction-heavy paths.
type ProcHooks struct {
	OnSwitch  func(from, to *Task)
	OnIdleEnd func(start, end Time, task *Task)
	OnSlice   func(task *Task, start, end Time)
}

// funcHooks adapts ProcHooks to the Hooks interface.
type funcHooks struct{ h ProcHooks }

func (f *funcHooks) OnSwitch(from, to *Task) {
	if f.h.OnSwitch != nil {
		f.h.OnSwitch(from, to)
	}
}

func (f *funcHooks) OnIdleEnd(start, end Time, task *Task) {
	if f.h.OnIdleEnd != nil {
		f.h.OnIdleEnd(start, end, task)
	}
}

func (f *funcHooks) OnSlice(task *Task, start, end Time) {
	if f.h.OnSlice != nil {
		f.h.OnSlice(task, start, end)
	}
}

// Proc is a simulated processor: a virtual clock plus a run queue of
// tasks, of which at most one is active. Procs are created with
// Engine.AddProc. The queue is FIFO by default; SetLIFO switches to a
// most-recently-ready discipline (the memory-conscious scheduling the
// paper suggests as future work).
type Proc struct {
	eng        *Engine
	id         int
	clock      Time
	switchCost Time
	lifo       bool
	hooks      Hooks

	current *Task   // task that continues when this proc is next granted
	lastRan *Task   // for switch-cost accounting
	runq    []*Task // ready tasks, FIFO

	idle      bool
	idleSince Time

	inj *injections // nil unless fault injections were scheduled

	// Per-proc execution state. reports carries scheduling reports from
	// this proc's tasks in both modes; the remaining fields are used only
	// by the conservative windowed mode (Engine.SetConservative), where
	// each proc owns a private event queue and local virtual time so
	// windows execute without touching any engine-global state.
	reports   chan report
	levents   eventQueue // proc-local pending events
	lseq      uint64     // tie-breaker for levents
	lnow      Time       // local virtual time of the current entity
	live      int        // this proc's not-yet-finished tasks
	wakes     uint64     // wake count, for the windowed futile watchdog
	failure   any        // panic captured from this proc's window, if any
	futileErr error      // windowed livelock verdict, if any
}

// LocalNow reports the virtual time of the entity currently executing on
// p: in windowed mode the proc-local event or dispatch time, otherwise
// the engine-global now. Handler code that runs on a known proc should
// prefer this over Engine.Now — the two are identical in the sequential
// mode, and only LocalNow is meaningful inside a parallel window.
func (p *Proc) LocalNow() Time {
	if p.eng.windowed {
		return p.lnow
	}
	return p.eng.now
}

// nextAt reports the earliest virtual time at which p has work: its next
// local event or its clock if a task is runnable. MaxTime means idle.
func (p *Proc) nextAt() Time {
	at := p.levents.peekTime()
	if p.runnable() && p.clock < at {
		at = p.clock
	}
	return at
}

// charge advances the processor clock by a compute charge of d, mapped
// through any injected pause/slowdown windows. Only task compute is
// dilated; switch costs and wake stamps are not (the windows model the
// *node* being starved of cycles, which the DSM observes as stretched
// bursts).
func (p *Proc) charge(d Time) {
	if p.inj != nil {
		d = p.inj.dilate(p.clock, d)
	}
	p.clock += d
}

// ID reports the processor's index, assigned in creation order from 0.
func (p *Proc) ID() int { return p.id }

// Clock reports the processor's current virtual time.
func (p *Proc) Clock() Time { return p.clock }

// SetHooks installs function-valued scheduling hooks (test convenience;
// allocates an adapter).
func (p *Proc) SetHooks(h ProcHooks) { p.hooks = &funcHooks{h} }

// SetHookHandler installs a Hooks implementation directly, without the
// adapter allocation SetHooks pays.
func (p *Proc) SetHookHandler(h Hooks) { p.hooks = h }

// SetLIFO selects the run-queue discipline: when true, the most recently
// readied task is dispatched first, preserving cache and TLB state (the
// paper's §5 "approach closer to LIFO than FIFO"). Default is FIFO.
func (p *Proc) SetLIFO(lifo bool) { p.lifo = lifo }

// QueueLen reports the number of ready tasks waiting in the run queue
// (excluding the task currently selected to run). Hooks read it for
// scheduler-occupancy metrics.
func (p *Proc) QueueLen() int { return len(p.runq) }

// runnable reports whether the proc has work and is therefore a dispatch
// candidate.
func (p *Proc) runnable() bool { return p.current != nil || len(p.runq) > 0 }

// enqueue appends t to the ready queue, ending an idle period if one is in
// progress. at is the virtual time of the wake (engine now, or the clock of
// the spawning task).
func (p *Proc) enqueue(t *Task, at Time) {
	wasIdle := p.idle && !p.runnable()
	p.runq = append(p.runq, t)
	if wasIdle {
		p.idle = false
		p.clock = maxTime(p.clock, at)
		if p.hooks != nil {
			p.hooks.OnIdleEnd(p.idleSince, p.clock, t)
		}
	}
}

// noteBlocked records the transition to idle if nothing is runnable.
func (p *Proc) noteBlocked() {
	if !p.runnable() {
		p.idle = true
		p.idleSince = p.clock
	}
}

// dispatch ensures a current task is selected, charging the thread-switch
// cost when control moves to a different task than last ran.
func (p *Proc) dispatch() *Task {
	if p.current == nil {
		var t *Task
		if p.lifo {
			t = p.runq[len(p.runq)-1]
			p.runq[len(p.runq)-1] = nil
			p.runq = p.runq[:len(p.runq)-1]
		} else {
			t = p.runq[0]
			copy(p.runq, p.runq[1:])
			p.runq[len(p.runq)-1] = nil
			p.runq = p.runq[:len(p.runq)-1]
		}
		p.current = t
		if p.lastRan != nil && p.lastRan != t {
			p.clock += p.switchCost
			if p.hooks != nil {
				p.hooks.OnSwitch(p.lastRan, t)
			}
		}
		p.lastRan = t
	}
	return p.current
}
