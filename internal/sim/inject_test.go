package sim

import "testing"

func TestInjectPauseDisplacesCompute(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(0)
	p.InjectPause(50*us, 150*us)
	var end Time
	e.Spawn(p, "t", func(tk *Task) {
		tk.Advance(100 * us)
		end = tk.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 50µs of compute runs before the pause, the node sits out 100µs, and
	// the remaining 50µs lands after the window: done at 200µs.
	if end != 200*us {
		t.Errorf("task finished at %v, want 200µs", end)
	}
}

func TestInjectPauseChainDisplacesAcrossWindows(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(0)
	// Inserted out of order on purpose: the schedule must sort itself.
	p.InjectPause(120*us, 170*us)
	p.InjectPause(50*us, 100*us)
	var end Time
	e.Spawn(p, "t", func(tk *Task) {
		tk.Advance(100 * us)
		end = tk.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 50 compute + 50 pause + 20 compute + 50 pause + 30 compute = 200µs.
	// The second window only intersects the charge because the first
	// displaced it — the scan must honor the updated end.
	if end != 200*us {
		t.Errorf("task finished at %v, want 200µs", end)
	}
}

func TestInjectSlowdownDilatesCompute(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(0)
	p.InjectSlowdown(0, Second, 2.0)
	var mid, end Time
	e.Spawn(p, "t", func(tk *Task) {
		tk.Advance(100 * us)
		mid = tk.Now()
		tk.Advance(50 * us)
		end = tk.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if mid != 200*us || end != 300*us {
		t.Errorf("clocks = %v, %v, want 200µs, 300µs", mid, end)
	}
}

func TestInjectSlowdownOnlyInsideWindow(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(0)
	p.InjectSlowdown(100*us, 200*us, 3.0)
	var end Time
	e.Spawn(p, "t", func(tk *Task) {
		tk.Advance(100 * us) // outside: full speed, clock 100µs
		tk.Advance(20 * us)  // starts at window edge: ×3 → 60µs
		tk.Advance(40 * us)  // starts at 160µs, inside: ×3 → 120µs
		tk.Advance(10 * us)  // starts at 280µs, outside again
		end = tk.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 290*us {
		t.Errorf("task finished at %v, want 290µs", end)
	}
}

func TestInjectOverlapPanics(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(0)
	p.InjectPause(10*us, 50*us)
	defer func() {
		if recover() == nil {
			t.Error("overlapping InjectPause did not panic")
		}
	}()
	p.InjectPause(40*us, 60*us)
}

func TestInjectBadArgsPanic(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(0)
	for name, fn := range map[string]func(){
		"empty pause":      func() { p.InjectPause(50*us, 50*us) },
		"negative pause":   func() { p.InjectPause(-us, us) },
		"speedup slowdown": func() { p.InjectSlowdown(0, us, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestInjectionsDeterministic(t *testing.T) {
	run := func() Time {
		e := NewEngine()
		p := e.AddProc(8 * us)
		p.InjectPause(30*us, 90*us)
		p.InjectSlowdown(200*us, 400*us, 1.5)
		var end Time
		for i := 0; i < 3; i++ {
			e.Spawn(p, "t", func(tk *Task) {
				for j := 0; j < 10; j++ {
					tk.Advance(7 * us)
					tk.Yield()
				}
				end = tk.Now()
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("injected run diverged: %v vs %v", got, first)
		}
	}
}
