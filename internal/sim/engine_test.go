package sim

import (
	"errors"
	"fmt"
	"testing"
)

const us = Microsecond

func TestTimeString(t *testing.T) {
	tests := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{500, "500ns"},
		{3 * Microsecond, "3.000µs"},
		{1500 * Microsecond, "1.500ms"},
		{2 * Second, "2.000s"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(tt.in), got, tt.want)
		}
	}
}

func TestSingleTaskAdvances(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(8 * us)
	var end Time
	e.Spawn(p, "t0", func(task *Task) {
		task.Advance(100 * us)
		task.Advance(50 * us)
		end = task.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 150*us {
		t.Errorf("task clock = %v, want 150µs", end)
	}
	if p.Clock() != 150*us {
		t.Errorf("proc clock = %v, want 150µs", p.Clock())
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*us, func() { order = append(order, 3) })
	e.Schedule(10*us, func() { order = append(order, 1) })
	e.Schedule(20*us, func() { order = append(order, 2) })
	p := e.AddProc(0)
	e.Spawn(p, "t", func(task *Task) { task.Advance(100 * us) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Errorf("event order = %v, want [1 2 3]", order)
	}
}

func TestEqualTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*us, func() { order = append(order, i) })
	}
	p := e.AddProc(0)
	e.Spawn(p, "t", func(task *Task) { task.Advance(10 * us) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO at equal times)", i, v, i)
		}
	}
}

func TestBlockAndWake(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(8 * us)
	var task *Task
	var resumedAt Time
	task = e.Spawn(p, "blocker", func(tk *Task) {
		tk.Advance(10 * us)
		tk.Block(Reason(1))
		resumedAt = tk.Now()
	})
	e.Schedule(500*us, func() { e.Wake(task) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Woken at 500µs; same task resumes (no other task ran), so no switch
	// cost is charged.
	if resumedAt != 500*us {
		t.Errorf("resumed at %v, want 500µs", resumedAt)
	}
}

func TestSwitchCostCharged(t *testing.T) {
	e := NewEngine()
	const sw = 8 * us
	p := e.AddProc(sw)
	var switches int
	p.SetHooks(ProcHooks{OnSwitch: func(from, to *Task) { switches++ }})

	var t1 *Task
	var t2ResumedAt, t1ResumedAt Time
	t1 = e.Spawn(p, "t1", func(tk *Task) {
		tk.Advance(10 * us)
		tk.Block(Reason(1)) // woken at 100
		t1ResumedAt = tk.Now()
	})
	e.Spawn(p, "t2", func(tk *Task) {
		// Dispatched after t1 blocks at 10µs: one switch (8µs).
		tk.Advance(30 * us) // runs 18..48
		t2ResumedAt = tk.Now()
	})
	e.Schedule(100*us, func() { e.Wake(t1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if t2ResumedAt != 48*us {
		t.Errorf("t2 finished at %v, want 48µs", t2ResumedAt)
	}
	// t1 woken at 100, switch from t2 charged: resumes at 108.
	if t1ResumedAt != 108*us {
		t.Errorf("t1 resumed at %v, want 108µs", t1ResumedAt)
	}
	if switches != 2 {
		t.Errorf("switches = %d, want 2", switches)
	}
}

func TestIdleAttribution(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(0)
	const faultReason = Reason(2)
	var idleStart, idleEnd Time
	var idleReason Reason
	p.SetHooks(ProcHooks{OnIdleEnd: func(start, end Time, task *Task) {
		idleStart, idleEnd, idleReason = start, end, task.BlockReason()
	}})
	var task *Task
	task = e.Spawn(p, "t", func(tk *Task) {
		tk.Advance(25 * us)
		tk.Block(faultReason)
	})
	e.Schedule(250*us, func() { e.Wake(task) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if idleStart != 25*us || idleEnd != 250*us {
		t.Errorf("idle = [%v, %v), want [25µs, 250µs)", idleStart, idleEnd)
	}
	if idleReason != faultReason {
		t.Errorf("idle reason = %d, want %d", idleReason, faultReason)
	}
}

func TestHorizonCausality(t *testing.T) {
	// A task on proc A computes in large steps while an event at an
	// earlier virtual time mutates state. The task must observe the
	// mutation no later than its first primitive after the event time.
	e := NewEngine()
	a := e.AddProc(0)
	b := e.AddProc(0)

	shared := 0
	var sawAt Time
	sawVal := -1
	e.Spawn(a, "reader", func(tk *Task) {
		for i := 0; i < 100; i++ {
			tk.Advance(10 * us)
			if shared != 0 && sawVal == -1 {
				sawVal = shared
				sawAt = tk.Now()
			}
		}
	})
	e.Spawn(b, "writer", func(tk *Task) {
		tk.Advance(101 * us)
		// Schedule a "message" that sets shared at 150µs.
		tk.Schedule(150*us, func() { shared = 42 })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sawVal != 42 {
		t.Fatalf("reader never saw write")
	}
	if sawAt < 150*us || sawAt > 160*us {
		t.Errorf("reader saw write at %v, want within one granule after 150µs", sawAt)
	}
}

func TestProcsInterleaveByClock(t *testing.T) {
	// Two procs advancing in different step sizes must interleave in
	// virtual-time order when they touch shared engine state.
	e := NewEngine()
	var log []string
	mk := func(p *Proc, name string, step Time, n int) {
		e.Spawn(p, name, func(tk *Task) {
			for i := 0; i < n; i++ {
				tk.Advance(step)
				log = append(log, fmt.Sprintf("%s@%d", name, int64(tk.Now()/us)))
			}
		})
	}
	mk(e.AddProc(0), "a", 30*us, 3) // 30, 60, 90
	mk(e.AddProc(0), "b", 20*us, 4) // 20, 40, 60, 80
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// At the t=60 tie, b is already running with an inclusive horizon of
	// 60, so it reaches 60 before control returns to a.
	want := "[b@20 a@30 b@40 b@60 a@60 b@80 a@90]"
	if got := fmt.Sprint(log); got != want {
		t.Errorf("interleaving = %v, want %v", got, want)
	}
}

func TestYieldRoundRobin(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(0)
	var log []string
	for _, name := range []string{"x", "y"} {
		name := name
		e.Spawn(p, name, func(tk *Task) {
			for i := 0; i < 3; i++ {
				tk.Advance(1 * us)
				log = append(log, name)
				tk.Yield()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[x y x y x y]"
	if got := fmt.Sprint(log); got != want {
		t.Errorf("yield order = %v, want %v", got, want)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(0)
	e.Spawn(p, "stuck", func(tk *Task) {
		tk.Block(Reason(3)) // nobody wakes it
	})
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run() = %v, want ErrDeadlock", err)
	}
	e.Shutdown()
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for pi := 0; pi < 4; pi++ {
			p := e.AddProc(8 * us)
			for ti := 0; ti < 3; ti++ {
				name := fmt.Sprintf("p%dt%d", pi, ti)
				step := Time(pi*7+ti*3+1) * us
				e.Spawn(p, name, func(tk *Task) {
					for i := 0; i < 5; i++ {
						tk.Advance(step)
						log = append(log, fmt.Sprintf("%s@%d", name, tk.Now()))
						tk.Yield()
					}
				})
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := fmt.Sprint(run())
	for i := 0; i < 3; i++ {
		if got := fmt.Sprint(run()); got != first {
			t.Fatalf("run %d diverged from first run", i+2)
		}
	}
}

func TestSliceHookCoversUserTime(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(0)
	var total Time
	p.SetHooks(ProcHooks{OnSlice: func(task *Task, start, end Time) { total += end - start }})
	e.Spawn(p, "t", func(tk *Task) {
		tk.Advance(40 * us)
		tk.Yield()
		tk.Advance(60 * us)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 100*us {
		t.Errorf("slice total = %v, want 100µs", total)
	}
}

func TestSpawnMidRun(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(0)
	var childEnd Time
	e.Spawn(p, "parent", func(tk *Task) {
		tk.Advance(10 * us)
		e.Spawn(p, "child", func(c *Task) {
			c.Advance(5 * us)
			childEnd = c.Now()
		})
		tk.Advance(10 * us)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childEnd != 25*us {
		t.Errorf("child finished at %v, want 25µs", childEnd)
	}
}

func TestLIFODispatchOrder(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(0)
	p.SetLIFO(true)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(p, name, func(tk *Task) {
			tk.Advance(1 * us)
			order = append(order, name)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// LIFO: the most recently spawned (readied) task runs first.
	if fmt.Sprint(order) != "[c b a]" {
		t.Errorf("LIFO order = %v, want [c b a]", order)
	}
	if p.ID() != 0 {
		t.Errorf("proc id = %d, want 0", p.ID())
	}
}

func TestTaskAccessors(t *testing.T) {
	e := NewEngine()
	p := e.AddProc(0)
	task := e.Spawn(p, "named", func(tk *Task) { tk.Advance(us) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if task.Name() != "named" || task.ID() != 0 || task.Proc() != p {
		t.Errorf("accessors: name=%q id=%d", task.Name(), task.ID())
	}
	if len(e.Procs()) != 1 {
		t.Errorf("Procs() = %d, want 1", len(e.Procs()))
	}
}
