package sim

import "runtime"

type taskState uint8

const (
	taskReady taskState = iota
	taskRunning
	taskBlocked
	taskDone
)

type reportKind uint8

const (
	reportYield   reportKind = iota // horizon crossed; task remains current
	reportRequeue                   // voluntary yield; task to back of run queue
	reportBlock                     // task blocked awaiting Wake
	reportDone                      // task function returned
)

type report struct {
	task *Task
	kind reportKind
}

type grant struct {
	horizon Time
	poison  bool // engine shutting down: task must exit
}

// Task is a green thread running on a Proc. Task methods must be called
// only from the task's own goroutine while it holds the execution grant
// (i.e. from within the function passed to Engine.Spawn).
type Task struct {
	eng  *Engine
	proc *Proc
	id   int
	name string

	resume  chan grant
	horizon Time
	state   taskState
	reason  Reason // why the task last blocked
}

// ID reports the task's engine-wide index, assigned in spawn order from 0.
func (t *Task) ID() int { return t.id }

// Name reports the diagnostic name given at spawn.
func (t *Task) Name() string { return t.name }

// Proc reports the processor the task runs on.
func (t *Task) Proc() *Proc { return t.proc }

// Now reports the task's current virtual time (its processor clock).
func (t *Task) Now() Time { return t.proc.clock }

// BlockReason reports why the task last blocked (ReasonNone initially).
func (t *Task) BlockReason() Reason { return t.reason }

// Advance charges d of computation to the task, advancing its processor
// clock. If the new clock crosses the engine's causality horizon the task
// yields so pending earlier events are applied before the task observes any
// further state.
func (t *Task) Advance(d Time) {
	t.proc.charge(d)
	for t.proc.clock > t.horizon {
		t.handoff(report{t, reportYield})
	}
}

// Block suspends the task until Engine.Wake, recording reason for idle-time
// attribution. It returns once the scheduler grants the task again; the
// processor clock at return reflects wake time plus any switch cost.
func (t *Task) Block(reason Reason) {
	t.reason = reason
	t.state = taskBlocked
	t.handoff(report{t, reportBlock})
	t.state = taskRunning
}

// Yield moves the task to the back of its processor's run queue, letting
// other local ready tasks run first. It models CVM's explicit
// application-requested thread switch.
func (t *Task) Yield() {
	t.state = taskReady
	t.handoff(report{t, reportRequeue})
	t.state = taskRunning
}

// Schedule runs fn in engine context at absolute virtual time at, which
// must not precede the task's clock. The task's horizon is lowered so it
// will not run past the new event before the event is applied. In
// windowed mode the event lands on the task's own processor — a task can
// only schedule local continuations; cross-proc effects go through the
// deferred network.
func (t *Task) Schedule(at Time, fn func()) {
	if at < t.proc.clock {
		at = t.proc.clock
	}
	if t.eng.windowed {
		t.proc.lseq++
		t.proc.levents.push(&event{at: at, seq: t.proc.lseq, fn: fn})
	} else {
		t.eng.schedule(at, fn)
	}
	t.horizon = minTime(t.horizon, at)
}

// handoff returns control to the engine and waits for the next grant.
func (t *Task) handoff(r report) {
	t.proc.reports <- r
	g := <-t.resume
	if g.poison {
		runtime.Goexit()
	}
	t.horizon = g.horizon
}

// start is the goroutine body wrapping the task function.
func (t *Task) start(r Runner) {
	g := <-t.resume
	if g.poison {
		return
	}
	t.horizon = g.horizon
	t.state = taskRunning
	r.RunTask(t)
	t.state = taskDone
	t.proc.reports <- report{t, reportDone}
}
