package sim

import "time"

// Clock abstracts "what time is it" for code that runs on both the
// simulated cluster and a real one. The discrete-event engine keeps
// virtual clocks (Proc.Clock, Task.Now); the real-execution runtime
// keeps wall time. Code that only reports durations — run reports,
// stats, timeouts in the control plane — takes a Clock so it works over
// either substrate.
//
// A Clock reports Time in nanoseconds since its epoch. Virtual clocks
// are deterministic and advance only when the engine dispatches work;
// wall clocks are monotonic and advance on their own, so nothing built
// on WallClock can promise bit-reproducible timing.
type Clock interface {
	// Now reports nanoseconds since the clock's epoch.
	Now() Time
	// IsVirtual reports whether time is simulated (deterministic) or
	// real (monotonic wall time).
	IsVirtual() bool
}

// EngineClock adapts an Engine's global virtual clock to the Clock
// interface. Its epoch is the simulation start (T=0).
type EngineClock struct{ Eng *Engine }

// Now reports the engine's current virtual time.
func (c EngineClock) Now() Time { return c.Eng.Now() }

// IsVirtual reports true: engine time is simulated.
func (c EngineClock) IsVirtual() bool { return true }

// WallClock is a real monotonic clock. Its epoch is fixed at
// construction, so two WallClocks are not comparable — durations within
// one are.
type WallClock struct{ t0 time.Time }

// NewWallClock returns a wall clock whose epoch is now.
func NewWallClock() *WallClock { return &WallClock{t0: time.Now()} }

// Now reports monotonic nanoseconds since the clock's construction.
func (c *WallClock) Now() Time { return Time(time.Since(c.t0)) }

// IsVirtual reports false: wall time is real and non-reproducible.
func (c *WallClock) IsVirtual() bool { return false }
