package sim

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestLivelockDetected is the regression test for the futile-event
// watchdog: a self-perpetuating event chain (the shape of an unbounded
// retransmission timer) with every task blocked must fail with
// ErrDeadlock, not spin Run forever. Without the watchdog this test
// times out instead of hanging the suite.
func TestLivelockDetected(t *testing.T) {
	e := NewEngine()
	e.SetFutileLimit(1000)
	p := e.AddProc(0)
	e.Spawn(p, "stuck", func(tk *Task) {
		tk.Block(Reason(2)) // nobody wakes it
	})
	var tick func()
	tick = func() { e.Schedule(e.Now()+5*us, tick) }
	e.Schedule(5*us, tick)

	done := make(chan error, 1)
	go func() { done <- e.Run() }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("Run() = %v, want ErrDeadlock", err)
		}
		if !strings.Contains(err.Error(), "livelock") {
			t.Errorf("error %q does not identify the livelock", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("engine spun on a livelocked event chain instead of detecting it")
	}
	e.Shutdown()
}

func TestFutileLimitDisabled(t *testing.T) {
	// A long but finite futile chain must complete when the watchdog is
	// generous enough; the limit is a pathology detector, not a budget.
	e := NewEngine()
	e.SetFutileLimit(10_000)
	p := e.AddProc(0)
	var task *Task
	task = e.Spawn(p, "late", func(tk *Task) { tk.Block(Reason(1)) })
	n := 0
	var tick func()
	tick = func() {
		if n++; n == 5000 {
			e.Wake(task)
			return
		}
		e.Schedule(e.Now()+us, tick)
	}
	e.Schedule(us, tick)
	if err := e.Run(); err != nil {
		t.Fatalf("Run() = %v, want nil (wake arrived before the limit)", err)
	}
}

// TestShutdownReleasesYieldParkedTasks pins the goroutine-leak fix: a
// task parked mid-yield (state running, waiting in handoff) when Run
// fails must still be poisoned by Shutdown. The old code only released
// blocked/ready tasks and leaked the goroutine.
func TestShutdownReleasesYieldParkedTasks(t *testing.T) {
	before := runtime.NumGoroutine()

	e := NewEngine()
	e.SetFutileLimit(500)
	p := e.AddProc(0)
	e.Spawn(p, "parked", func(tk *Task) {
		tk.Advance(100 * us) // crosses the 10µs event horizon and yields
	})
	// A zero-width event chain pinned below the task's clock: the event
	// branch wins every iteration, the task stays yield-parked, and the
	// watchdog fires.
	var tick func()
	tick = func() { e.Schedule(e.Now(), tick) }
	e.Schedule(10*us, tick)

	if err := e.Run(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run() = %v, want ErrDeadlock", err)
	}
	e.Shutdown()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines after Shutdown = %d, want <= %d (yield-parked task leaked)", got, before)
	}
}

func TestDeadlockErrNamesReasons(t *testing.T) {
	e := NewEngine()
	e.SetReasonNamer(func(r Reason) string {
		if r == 3 {
			return "barrier"
		}
		return "?"
	})
	p := e.AddProc(0)
	e.Spawn(p, "waiter", func(tk *Task) { tk.Block(Reason(3)) })
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run() = %v, want ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "waiter(reason=barrier)") {
		t.Errorf("error %q does not name the blocked task's reason", err)
	}
	e.Shutdown()
}
