package sim

import (
	"errors"
	"fmt"
	"strings"
)

// ErrDeadlock is returned by Engine.Run when live tasks remain but no
// entity is runnable and no event is pending, or when the futile-event
// watchdog concludes the event queue is self-perpetuating without ever
// readying a task (a livelock — e.g. an unbounded retransmission timer
// whose receiver is gone).
var ErrDeadlock = errors.New("sim: deadlock")

// defaultFutileLimit bounds how many consecutive events may run without
// dispatching or waking any task before Run declares a livelock. Real
// workloads ready a task every handful of events; a million futile
// events is unambiguous pathology while staying cheap to count.
const defaultFutileLimit = 1 << 20

// Engine is a sequential discrete-event simulator. It owns the event queue
// and all processors, and dispatches exactly one entity at a time in
// virtual-time order. An Engine is not safe for concurrent use; all
// interaction happens from the goroutine that calls Run and from task
// goroutines while they hold the execution grant.
type Engine struct {
	procs   []*Proc
	events  eventQueue
	now     Time
	seq     uint64
	live    int
	ntasks  int
	tasks   []*Task
	reports chan report
	running bool

	wakes       uint64 // total WakeAt calls, for the futile-event watchdog
	futileLimit int
	reasonName  func(Reason) string
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{reports: make(chan report), futileLimit: defaultFutileLimit}
}

// SetFutileLimit overrides the livelock watchdog threshold: the number of
// consecutive events Run may execute without any task being dispatched or
// woken before it fails with ErrDeadlock. limit <= 0 disables the
// watchdog.
func (e *Engine) SetFutileLimit(limit int) { e.futileLimit = limit }

// SetReasonNamer installs a formatter for block Reasons used in deadlock
// diagnostics. Higher layers own the Reason value space, so the engine
// delegates naming to them.
func (e *Engine) SetReasonNamer(f func(Reason) string) { e.reasonName = f }

// AddProc creates a simulated processor whose thread switches cost
// switchCost of virtual time.
func (e *Engine) AddProc(switchCost Time) *Proc {
	p := &Proc{eng: e, id: len(e.procs), switchCost: switchCost}
	e.procs = append(e.procs, p)
	return p
}

// Procs returns the engine's processors in creation order.
func (e *Engine) Procs() []*Proc { return e.procs }

// Now reports the virtual time of the entity currently being dispatched.
// Within event handlers this is the event time.
func (e *Engine) Now() Time { return e.now }

// Spawn creates a task on p executing fn. It may be called before Run or
// from engine/task context while the simulation is in progress.
func (e *Engine) Spawn(p *Proc, name string, fn func(*Task)) *Task {
	t := &Task{
		eng:    e,
		proc:   p,
		id:     e.ntasks,
		name:   name,
		resume: make(chan grant),
	}
	e.ntasks++
	e.live++
	e.tasks = append(e.tasks, t)
	go t.start(fn)
	p.enqueue(t, p.clock)
	return t
}

// Schedule runs fn in engine context at absolute virtual time at. It must
// be called from engine context (event handlers); tasks use Task.Schedule.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.schedule(at, fn)
}

func (e *Engine) schedule(at Time, fn func()) {
	e.seq++
	e.events.push(&event{at: at, seq: e.seq, fn: fn})
}

// Wake makes a blocked task ready. It must be called from engine context
// (typically a message-delivery handler); the wake is stamped with the
// current event time.
func (e *Engine) Wake(t *Task) { e.WakeAt(t, e.now) }

// WakeAt makes a blocked task ready, stamping the wake at the given
// virtual time. Use it from task context (e.g. a thread handing a local
// lock to a local waiter) with the caller's current clock.
func (e *Engine) WakeAt(t *Task, at Time) {
	if t.state != taskBlocked {
		panic(fmt.Sprintf("sim: Wake of task %q in state %d", t.name, t.state))
	}
	t.state = taskReady
	e.wakes++
	t.proc.enqueue(t, at)
}

// Run dispatches entities in virtual-time order until every spawned task
// has finished. It returns ErrDeadlock (wrapped with diagnostics) if live
// tasks remain but nothing is runnable.
func (e *Engine) Run() error {
	if e.running {
		return errors.New("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	// Run until every task is done, then drain in-flight events (e.g.
	// message deliveries whose senders have already finished) so traffic
	// accounting is complete. The futile counter tracks consecutive
	// events that neither dispatched nor woke a task: a self-perpetuating
	// event chain with every task blocked (a retransmission timer whose
	// peer will never answer) would otherwise spin Run forever.
	futile := 0
	for e.live > 0 || e.events.Len() > 0 {
		p, next := e.minProcNext()
		evAt := e.events.peekTime()

		// Events run first on ties so handlers at time T are applied
		// before any task continues at T.
		if p == nil || evAt <= p.clock {
			if evAt == MaxTime {
				return e.deadlockErr("no runnable entity and no pending event")
			}
			ev := e.events.pop()
			e.now = ev.at
			wakesBefore, liveBefore := e.wakes, e.live
			ev.fn()
			if e.live > 0 && e.wakes == wakesBefore && e.live == liveBefore {
				futile++
				if e.futileLimit > 0 && futile >= e.futileLimit {
					return e.deadlockErr(fmt.Sprintf(
						"livelock: %d consecutive events without a task dispatch or wake", futile))
				}
			} else {
				futile = 0
			}
			continue
		}

		futile = 0
		e.dispatchProc(p, minTime(evAt, next))
	}
	return nil
}

// minProcNext returns the runnable proc with the lowest clock (nil if
// none; ties break by processor index, keeping dispatch deterministic)
// and, from the same scan, the lowest clock among the other runnable
// procs — the processor contribution to the winner's causality horizon.
func (e *Engine) minProcNext() (*Proc, Time) {
	var best *Proc
	next := MaxTime
	for _, p := range e.procs {
		if !p.runnable() {
			continue
		}
		switch {
		case best == nil:
			best = p
		case p.clock < best.clock:
			next = minTime(next, best.clock)
			best = p
		default:
			next = minTime(next, p.clock)
		}
	}
	return best, next
}

// dispatchProc grants p's next task a slice bounded by horizon (the
// lowest timestamp of any pending event or other runnable processor,
// computed by the caller's dispatch scan; p.dispatch only mutates p, so
// the bound stays valid).
func (e *Engine) dispatchProc(p *Proc, horizon Time) {
	sliceStart := p.clock
	t := p.dispatch()
	e.now = p.clock

	t.resume <- grant{horizon: horizon}
	r := <-e.reports

	if r.task != t {
		panic("sim: report from unexpected task")
	}
	if p.hooks.OnSlice != nil && p.clock > sliceStart {
		p.hooks.OnSlice(t, sliceStart, p.clock)
	}

	switch r.kind {
	case reportYield:
		// Task crossed its horizon; it remains current and will be
		// re-granted when p is again the minimum entity.
	case reportRequeue:
		p.current = nil
		p.runq = append(p.runq, t)
	case reportBlock:
		p.current = nil
		p.noteBlocked()
	case reportDone:
		p.current = nil
		e.live--
		p.noteBlocked()
	}
}

// Shutdown releases the goroutines of any unfinished tasks. It is safe
// to call after Run returns (including on deadlock or a recovered panic)
// and at most once. Every non-done task is waiting to receive a grant —
// blocked and ready tasks in handoff/start, and yield-parked tasks
// (state taskRunning, mid-handoff) likewise — so poisoning all of them
// leaks nothing.
func (e *Engine) Shutdown() {
	for _, t := range e.tasks {
		if t.state != taskDone {
			t.resume <- grant{poison: true}
		}
	}
}

func (e *Engine) deadlockErr(why string) error {
	var blocked []string
	for _, t := range e.tasks {
		if t.state == taskBlocked {
			blocked = append(blocked, fmt.Sprintf("%s(reason=%s)", t.name, e.fmtReason(t.reason)))
		}
	}
	return fmt.Errorf("%w: %s; %d tasks live, blocked: %s",
		ErrDeadlock, why, e.live, strings.Join(blocked, ", "))
}

func (e *Engine) fmtReason(r Reason) string {
	if e.reasonName != nil {
		return e.reasonName(r)
	}
	return fmt.Sprintf("%d", r)
}
