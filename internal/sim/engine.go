package sim

import (
	"errors"
	"fmt"
	"strings"
)

// ErrDeadlock is returned by Engine.Run when live tasks remain but no
// entity is runnable and no event is pending, or when the futile-event
// watchdog concludes the event queue is self-perpetuating without ever
// readying a task (a livelock — e.g. an unbounded retransmission timer
// whose receiver is gone).
var ErrDeadlock = errors.New("sim: deadlock")

// defaultFutileLimit bounds how many consecutive events may run without
// dispatching or waking any task before Run declares a livelock. Real
// workloads ready a task every handful of events; a million futile
// events is unambiguous pathology while staying cheap to count.
const defaultFutileLimit = 1 << 20

// Engine is a sequential discrete-event simulator. It owns the event queue
// and all processors, and dispatches exactly one entity at a time in
// virtual-time order. An Engine is not safe for concurrent use; all
// interaction happens from the goroutine that calls Run and from task
// goroutines while they hold the execution grant.
type Engine struct {
	procs   []*Proc
	events  eventQueue
	now     Time
	seq     uint64
	live    int
	ntasks  int
	tasks   []*Task
	running bool

	wakes       uint64 // total WakeAt calls, for the futile-event watchdog
	futileLimit int
	reasonName  func(Reason) string

	// Conservative windowed mode (SetConservative). windowed selects the
	// run loop; workers is the OS-thread fan-out per window; lookahead is
	// the cross-proc latency lower bound defining the window width; the
	// window hook runs after every barrier with the window's limit.
	windowed   bool
	workers    int
	lookahead  Time
	windowHook func(limit Time)
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	e := new(Engine)
	e.Init()
	return e
}

// Init prepares e for use, replacing any previous state. It exists so an
// Engine can be embedded by value in a larger system instead of
// separately heap-allocated.
func (e *Engine) Init() {
	*e = Engine{futileLimit: defaultFutileLimit}
}

// SetConservative switches Run to the conservative windowed parallel
// loop: event execution is partitioned by processor, all processors
// advance through a shared sequence of virtual-time windows, and the
// nodes of one window run concurrently on up to workers OS threads.
// lookahead must be a lower bound on the delay of every cross-processor
// interaction (for the DSM: the network's zero-byte one-way latency);
// windows are [W0, W0+lookahead). Results are byte-identical for every
// workers value ≥ 1, because the window schedule — not the worker count —
// determines execution order. workers <= 0 restores the sequential loop.
func (e *Engine) SetConservative(workers int, lookahead Time) {
	if e.running {
		panic("sim: SetConservative while running")
	}
	if workers > 0 && lookahead <= 0 {
		panic("sim: SetConservative with non-positive lookahead")
	}
	e.windowed = workers > 0
	e.workers = workers
	e.lookahead = lookahead
}

// SetWindowHook installs fn to run after every windowed barrier, with
// the engine quiescent, receiving the window limit just executed. The
// DSM layer uses it to commit deferred network traffic and flush the
// trace demultiplexer.
func (e *Engine) SetWindowHook(fn func(limit Time)) { e.windowHook = fn }

// SetFutileLimit overrides the livelock watchdog threshold: the number of
// consecutive events Run may execute without any task being dispatched or
// woken before it fails with ErrDeadlock. limit <= 0 disables the
// watchdog.
func (e *Engine) SetFutileLimit(limit int) { e.futileLimit = limit }

// SetReasonNamer installs a formatter for block Reasons used in deadlock
// diagnostics. Higher layers own the Reason value space, so the engine
// delegates naming to them.
func (e *Engine) SetReasonNamer(f func(Reason) string) { e.reasonName = f }

// AddProc creates a simulated processor whose thread switches cost
// switchCost of virtual time.
func (e *Engine) AddProc(switchCost Time) *Proc {
	p := &Proc{eng: e, id: len(e.procs), switchCost: switchCost, reports: make(chan report)}
	e.procs = append(e.procs, p)
	return p
}

// Procs returns the engine's processors in creation order.
func (e *Engine) Procs() []*Proc { return e.procs }

// Now reports the virtual time of the entity currently being dispatched.
// Within event handlers this is the event time.
func (e *Engine) Now() Time { return e.now }

// Runner is a task body. SpawnRunner exists alongside Spawn so a caller
// that already has a per-task object can pass it directly instead of
// allocating a closure per task.
type Runner interface {
	RunTask(t *Task)
}

// funcRunner adapts a plain function to Runner (func values are
// pointer-shaped, so the interface conversion does not allocate).
type funcRunner func(*Task)

func (f funcRunner) RunTask(t *Task) { f(t) }

// Spawn creates a task on p executing fn. It may be called before Run or
// from engine/task context while the simulation is in progress.
func (e *Engine) Spawn(p *Proc, name string, fn func(*Task)) *Task {
	return e.SpawnRunner(p, name, funcRunner(fn))
}

// SpawnRunner creates a task on p executing r.RunTask. Semantics match
// Spawn exactly.
func (e *Engine) SpawnRunner(p *Proc, name string, r Runner) *Task {
	if e.windowed && e.running {
		panic("sim: Spawn during a windowed run")
	}
	t := &Task{
		eng:    e,
		proc:   p,
		id:     e.ntasks,
		name:   name,
		resume: make(chan grant),
	}
	e.ntasks++
	e.live++
	p.live++
	e.tasks = append(e.tasks, t)
	go t.start(r)
	p.enqueue(t, p.clock)
	return t
}

// Schedule runs fn in engine context at absolute virtual time at. It must
// be called from engine context (event handlers); tasks use Task.Schedule.
// In windowed mode the global queue does not exist — handlers must name
// the processor their continuation belongs to via ScheduleOn.
func (e *Engine) Schedule(at Time, fn func()) {
	if e.windowed {
		panic("sim: Schedule in windowed mode; use ScheduleOn")
	}
	if at < e.now {
		at = e.now
	}
	e.schedule(at, fn)
}

// ScheduleOn runs fn in engine context on p's timeline at absolute
// virtual time at. In the sequential mode it is identical to Schedule
// (one global queue); in windowed mode the event joins p's private queue
// and fn will run on whichever worker executes p's windows.
func (e *Engine) ScheduleOn(p *Proc, at Time, fn func()) {
	if !e.windowed {
		if at < e.now {
			at = e.now
		}
		e.schedule(at, fn)
		return
	}
	if at < p.lnow {
		at = p.lnow
	}
	p.lseq++
	p.levents.push(&event{at: at, seq: p.lseq, fn: fn})
}

func (e *Engine) schedule(at Time, fn func()) {
	e.seq++
	e.events.push(&event{at: at, seq: e.seq, fn: fn})
}

// Wake makes a blocked task ready. It must be called from engine context
// (typically a message-delivery handler) executing on t's own processor;
// the wake is stamped with that processor's current time. (In the
// sequential mode this is the engine-global now, so the two definitions
// coincide; in windowed mode handlers only ever wake tasks of the
// processor they run on.)
func (e *Engine) Wake(t *Task) { e.WakeAt(t, t.proc.LocalNow()) }

// WakeAt makes a blocked task ready, stamping the wake at the given
// virtual time. Use it from task context (e.g. a thread handing a local
// lock to a local waiter) with the caller's current clock.
func (e *Engine) WakeAt(t *Task, at Time) {
	if t.state != taskBlocked {
		panic(fmt.Sprintf("sim: Wake of task %q in state %d", t.name, t.state))
	}
	t.state = taskReady
	if e.windowed {
		t.proc.wakes++
	} else {
		e.wakes++
	}
	t.proc.enqueue(t, at)
}

// Migrate re-homes a blocked task onto another processor: a first-class
// scheduler action for thread migration. The task's continuation (its
// goroutine and report channel discipline) moves wholesale — the next
// Wake enqueues it on the destination's run queue and its subsequent
// grants and reports flow through the destination's dispatch loop.
//
// Call it only from engine context on the destination processor (e.g. a
// migrate-message delivery handler), and only for a blocked task: a
// running or ready task still has scheduler state on its old processor.
// Under the windowed engine, per-proc live counts are deliberately left
// untouched — the coordinator sums them globally, so moving a task must
// not touch the source processor's accounting from another worker.
func (e *Engine) Migrate(t *Task, to *Proc) {
	if t.state != taskBlocked {
		panic(fmt.Sprintf("sim: Migrate of task %q in state %d", t.name, t.state))
	}
	if to == nil {
		panic("sim: Migrate to nil proc")
	}
	t.proc = to
}

// Run dispatches entities in virtual-time order until every spawned task
// has finished. It returns ErrDeadlock (wrapped with diagnostics) if live
// tasks remain but nothing is runnable.
func (e *Engine) Run() error {
	if e.running {
		return errors.New("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	if e.windowed {
		return e.runWindowed()
	}

	// Run until every task is done, then drain in-flight events (e.g.
	// message deliveries whose senders have already finished) so traffic
	// accounting is complete. The futile counter tracks consecutive
	// events that neither dispatched nor woke a task: a self-perpetuating
	// event chain with every task blocked (a retransmission timer whose
	// peer will never answer) would otherwise spin Run forever.
	futile := 0
	for e.live > 0 || e.events.Len() > 0 {
		p, next := e.minProcNext()
		evAt := e.events.peekTime()

		// Events run first on ties so handlers at time T are applied
		// before any task continues at T.
		if p == nil || evAt <= p.clock {
			if evAt == MaxTime {
				return e.deadlockErr("no runnable entity and no pending event")
			}
			ev := e.events.pop()
			e.now = ev.at
			wakesBefore, liveBefore := e.wakes, e.live
			ev.fn()
			if e.live > 0 && e.wakes == wakesBefore && e.live == liveBefore {
				futile++
				if e.futileLimit > 0 && futile >= e.futileLimit {
					return e.deadlockErr(fmt.Sprintf(
						"livelock: %d consecutive events without a task dispatch or wake", futile))
				}
			} else {
				futile = 0
			}
			continue
		}

		futile = 0
		e.dispatchProc(p, minTime(evAt, next))
	}
	return nil
}

// minProcNext returns the runnable proc with the lowest clock (nil if
// none; ties break by processor index, keeping dispatch deterministic)
// and, from the same scan, the lowest clock among the other runnable
// procs — the processor contribution to the winner's causality horizon.
func (e *Engine) minProcNext() (*Proc, Time) {
	var best *Proc
	next := MaxTime
	for _, p := range e.procs {
		if !p.runnable() {
			continue
		}
		switch {
		case best == nil:
			best = p
		case p.clock < best.clock:
			next = minTime(next, best.clock)
			best = p
		default:
			next = minTime(next, p.clock)
		}
	}
	return best, next
}

// dispatchProc grants p's next task a slice bounded by horizon (the
// lowest timestamp of any pending event or other runnable processor,
// computed by the caller's dispatch scan; p.dispatch only mutates p, so
// the bound stays valid).
func (e *Engine) dispatchProc(p *Proc, horizon Time) {
	sliceStart := p.clock
	t := p.dispatch()
	if e.windowed {
		p.lnow = p.clock
	} else {
		e.now = p.clock
	}

	t.resume <- grant{horizon: horizon}
	r := <-p.reports

	if r.task != t {
		panic("sim: report from unexpected task")
	}
	if p.hooks != nil && p.clock > sliceStart {
		p.hooks.OnSlice(t, sliceStart, p.clock)
	}

	switch r.kind {
	case reportYield:
		// Task crossed its horizon; it remains current and will be
		// re-granted when p is again the minimum entity.
	case reportRequeue:
		p.current = nil
		p.runq = append(p.runq, t)
	case reportBlock:
		p.current = nil
		p.noteBlocked()
	case reportDone:
		p.current = nil
		if e.windowed {
			// Keep the idle flag exact so a later wake lifts the proc
			// clock to the wake instant; a stale clock would let a
			// woken task run before the current window's floor. (The
			// sequential loop keeps its historical behavior — its
			// global event order does not depend on the flag.)
			p.noteBlocked()
		}
		p.live--
		if !e.windowed {
			e.live--
		}
		p.noteBlocked()
	}
}

// Shutdown releases the goroutines of any unfinished tasks. It is safe
// to call after Run returns (including on deadlock or a recovered panic)
// and at most once. Every non-done task is waiting to receive a grant —
// blocked and ready tasks in handoff/start, and yield-parked tasks
// (state taskRunning, mid-handoff) likewise — so poisoning all of them
// leaks nothing.
func (e *Engine) Shutdown() {
	for _, t := range e.tasks {
		if t.state != taskDone {
			t.resume <- grant{poison: true}
		}
	}
}

func (e *Engine) deadlockErr(why string) error {
	var blocked []string
	for _, t := range e.tasks {
		if t.state == taskBlocked {
			blocked = append(blocked, fmt.Sprintf("%s(reason=%s)", t.name, e.fmtReason(t.reason)))
		}
	}
	return fmt.Errorf("%w: %s; %d tasks live, blocked: %s",
		ErrDeadlock, why, e.live, strings.Join(blocked, ", "))
}

func (e *Engine) fmtReason(r Reason) string {
	if e.reasonName != nil {
		return e.reasonName(r)
	}
	return fmt.Sprintf("%d", r)
}
