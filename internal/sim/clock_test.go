package sim

import (
	"testing"
	"time"
)

func TestEngineClock(t *testing.T) {
	var eng Engine
	eng.Init()
	c := EngineClock{Eng: &eng}
	if !c.IsVirtual() {
		t.Error("EngineClock.IsVirtual() = false, want true")
	}
	if c.Now() != 0 {
		t.Errorf("fresh engine clock at %v, want 0", c.Now())
	}
	eng.Schedule(5*Millisecond, func() {})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 5*Millisecond {
		t.Errorf("engine clock at %v after run, want 5ms", c.Now())
	}
}

func TestWallClock(t *testing.T) {
	c := NewWallClock()
	if c.IsVirtual() {
		t.Error("WallClock.IsVirtual() = true, want false")
	}
	a := c.Now()
	if a < 0 {
		t.Errorf("wall clock went backwards: %v", a)
	}
	time.Sleep(time.Millisecond)
	b := c.Now()
	if b < a+Time(500*time.Microsecond) {
		t.Errorf("wall clock barely advanced across a 1ms sleep: %v -> %v", a, b)
	}
}
