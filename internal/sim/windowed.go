package sim

import (
	"fmt"
	"sync"
)

// This file is the conservative windowed parallel run loop (enabled by
// SetConservative). The scheme is a null-message-free conservative
// parallel discrete-event simulation:
//
//   - Work is partitioned by Proc. During a window each proc executes
//     only its own tasks and its own local events; every cross-proc
//     effect is routed through a deferral layer (for the DSM, the
//     netsim outboxes) and applied between windows.
//   - A window starts at W0 = min over procs of nextAt(p) — the
//     earliest pending work anywhere — and runs every proc up to
//     W1 = W0 + lookahead, exclusive.
//   - lookahead is a static lower bound on cross-proc latency, counted
//     from the instant an interaction is recorded by the deferral layer
//     (not from when the sender started charging overhead — a send can
//     straddle the window boundary): anything recorded at time T ≥ W0
//     inside the window lands at its target no earlier than
//     T + lookahead ≥ W1, i.e. at or after the next window boundary.
//     Procs therefore cannot affect each other within a window, and no
//     null messages or channel clocks are needed.
//   - At the barrier the coordinator runs the window hook (commit
//     deferred messages, flush traces, apply deferred resets), then
//     opens the next window.
//
// Every step is deterministic in the window schedule alone: W0 is a
// pure function of simulation state, per-proc execution is sequential,
// and the commit processes outboxes in fixed order. The worker count
// only changes which OS thread executes a proc's window, so results are
// byte-identical for every workers value — the invariant the
// determinism guard in internal/harness enforces.

// runWindowed executes the simulation window by window until every task
// has finished and all deferred work has drained.
func (e *Engine) runWindowed() error {
	nw := e.workers
	if nw > len(e.procs) {
		nw = len(e.procs)
	}
	if nw < 1 {
		nw = 1
	}

	// Persistent worker pool: worker w handles procs w, w+nw, w+2nw, ...
	// for every window (stable assignment, though any assignment would
	// produce identical results). Worker 0 is the coordinator itself.
	var wg sync.WaitGroup
	var starts []chan Time
	for w := 1; w < nw; w++ {
		ch := make(chan Time)
		starts = append(starts, ch)
		go func(w int, ch chan Time) {
			for limit := range ch {
				for pi := w; pi < len(e.procs); pi += nw {
					e.procWindow(e.procs[pi], limit)
				}
				wg.Done()
			}
		}(w, ch)
	}
	defer func() {
		for _, ch := range starts {
			close(ch)
		}
	}()

	for {
		w0 := MaxTime
		live := 0
		for _, p := range e.procs {
			live += p.live
			if at := p.nextAt(); at < w0 {
				w0 = at
			}
		}
		if w0 == MaxTime {
			if live == 0 {
				return nil
			}
			return e.deadlockErr("no runnable entity and no pending event")
		}
		limit := w0 + e.lookahead

		wg.Add(len(starts))
		for _, ch := range starts {
			ch <- limit
		}
		for pi := 0; pi < len(e.procs); pi += nw {
			e.procWindow(e.procs[pi], limit)
		}
		wg.Wait()

		// Propagate worker outcomes deterministically: the lowest proc
		// index wins, so a multi-proc failure reports identically at
		// every worker count. Panics (e.g. the transport's loud failure)
		// re-raise on the coordinator, where Run's caller can recover
		// them exactly as in the sequential mode.
		for _, p := range e.procs {
			if p.failure != nil {
				f := p.failure
				p.failure = nil
				panic(f)
			}
		}
		for _, p := range e.procs {
			if p.futileErr != nil {
				return p.futileErr
			}
		}

		if e.windowHook != nil {
			e.windowHook(limit)
		}
	}
}

// procWindow runs one processor to the window limit: its local events
// and task slices interleaved in local-time order, events first on ties.
// It touches only p-local state (plus deferral-layer state owned by p),
// so any worker may execute it. Panics are captured per proc and
// re-raised by the coordinator.
func (e *Engine) procWindow(p *Proc, limit Time) {
	defer func() {
		if r := recover(); r != nil {
			p.failure = r
		}
	}()
	futile := 0
	for {
		evAt := p.levents.peekTime()
		taskAt := MaxTime
		if p.runnable() {
			taskAt = p.clock
		}
		if evAt >= limit && taskAt >= limit {
			return
		}
		if evAt <= taskAt {
			ev := p.levents.pop()
			p.lnow = ev.at
			wakesBefore, liveBefore := p.wakes, p.live
			ev.fn()
			if p.wakes == wakesBefore && p.live == liveBefore && !p.runnable() {
				futile++
				if e.futileLimit > 0 && futile >= e.futileLimit {
					p.futileErr = fmt.Errorf(
						"%w: livelock on proc %d: %d consecutive events without a task dispatch or wake",
						ErrDeadlock, p.id, futile)
					return
				}
			} else {
				futile = 0
			}
			continue
		}
		futile = 0
		e.dispatchProc(p, minTime(evAt, limit))
	}
}
