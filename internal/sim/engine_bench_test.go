package sim

import "testing"

// BenchmarkEventQueue measures the engine's event heap under a steady
// schedule/dispatch load: the pattern message deliveries produce (push at
// now+latency, pop in time order).
func BenchmarkEventQueue(b *testing.B) {
	var q eventQueue
	nop := func() {}
	// Keep a standing population of 256 events, pushing one pseudo-random
	// future event per pop.
	x := uint64(1)
	for i := 0; i < 256; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		q.push(&event{at: Time(x >> 40), seq: uint64(i), fn: nop})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := q.pop()
		x = x*6364136223846793005 + 1442695040888963407
		ev.at += Time(x >> 40)
		ev.seq = uint64(256 + i)
		q.push(ev)
	}
}

// BenchmarkEngineSpawnRun measures end-to-end engine dispatch: tasks that
// repeatedly advance and yield through the scheduler.
func BenchmarkEngineSpawnRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := NewEngine()
		p := eng.AddProc(8 * Microsecond)
		for t := 0; t < 4; t++ {
			eng.Spawn(p, "t", func(tk *Task) {
				for j := 0; j < 100; j++ {
					tk.Advance(Microsecond)
					tk.Yield()
				}
			})
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchScan measures the per-dispatch processor scan on a
// populated engine: 16 procs (the largest paper configuration) whose
// tasks advance in small steps, so nearly every Run-loop turn pays one
// minProcNext scan. The scan used to be two O(P) passes (min-clock
// selection plus a separate horizon pass); it is now one.
func BenchmarkDispatchScan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := NewEngine()
		for pi := 0; pi < 16; pi++ {
			p := eng.AddProc(8 * Microsecond)
			eng.Spawn(p, "t", func(tk *Task) {
				for j := 0; j < 200; j++ {
					tk.Advance(Microsecond)
				}
			})
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
