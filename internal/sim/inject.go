package sim

import "fmt"

// Window is a half-open virtual-time interval [From, To) used by the
// node-level fault injections (pauses and slowdowns).
type Window struct {
	From, To Time
}

func (w Window) contains(t Time) bool { return t >= w.From && t < w.To }

// slowWindow is a Window with a compute dilation factor.
type slowWindow struct {
	Window
	factor float64
}

// injections holds a processor's fault-injection schedule. The pointer is
// nil on an uninjected proc, so the charge path pays one nil check and
// nothing else — fault-free runs stay byte-identical.
type injections struct {
	pauses []Window     // sorted by From, non-overlapping
	slow   []slowWindow // sorted by From, non-overlapping
}

// InjectPause schedules a window during which the processor makes no
// progress: any compute that crosses into [from, to) is displaced past
// the window end, as if the node had been suspended for the window's
// length. Windows must not overlap previously injected pauses. Must be
// called before Run.
func (p *Proc) InjectPause(from, to Time) {
	if to <= from || from < 0 {
		panic(fmt.Sprintf("sim: InjectPause with bad window [%v, %v)", from, to))
	}
	inj := p.injected()
	inj.pauses = insertWindow(inj.pauses, Window{from, to})
}

// InjectSlowdown schedules a window during which compute charged on this
// processor is multiplied by factor (> 1 runs slower). The factor applies
// per charge: a charge beginning inside the window dilates wholesale,
// which is exact for the fine-grained charges the DSM issues (ns–µs
// against ms-scale windows). factor must be ≥ 1; windows must not overlap
// previously injected slowdowns. Must be called before Run.
func (p *Proc) InjectSlowdown(from, to Time, factor float64) {
	if to <= from || from < 0 {
		panic(fmt.Sprintf("sim: InjectSlowdown with bad window [%v, %v)", from, to))
	}
	if factor < 1 {
		panic(fmt.Sprintf("sim: InjectSlowdown with factor %v < 1", factor))
	}
	inj := p.injected()
	var ws []Window
	for _, s := range inj.slow {
		ws = append(ws, s.Window)
	}
	ws = insertWindow(ws, Window{from, to})
	slow := make([]slowWindow, 0, len(ws))
	for _, w := range ws {
		f := factor
		for _, s := range inj.slow {
			if s.From == w.From {
				f = s.factor
			}
		}
		slow = append(slow, slowWindow{w, f})
	}
	inj.slow = slow
}

func (p *Proc) injected() *injections {
	if p.inj == nil {
		p.inj = &injections{}
	}
	return p.inj
}

// insertWindow inserts w keeping the slice sorted by From, panicking on
// overlap (schedules with overlapping windows are ambiguous).
func insertWindow(ws []Window, w Window) []Window {
	for _, o := range ws {
		if w.From < o.To && o.From < w.To {
			panic(fmt.Sprintf("sim: injection window [%v, %v) overlaps [%v, %v)", w.From, w.To, o.From, o.To))
		}
	}
	ws = append(ws, w)
	for i := len(ws) - 1; i > 0 && ws[i].From < ws[i-1].From; i-- {
		ws[i], ws[i-1] = ws[i-1], ws[i]
	}
	return ws
}

// dilate maps a compute charge of d starting at the processor's current
// clock through the injection schedule, returning the virtual time the
// charge actually occupies: slowdown windows multiply the charge, pause
// windows displace it past their end.
func (inj *injections) dilate(clock Time, d Time) Time {
	for _, s := range inj.slow {
		if s.contains(clock) {
			d = Time(float64(d) * s.factor)
			break
		}
	}
	// Displace the charge past every pause window it crosses. Windows are
	// sorted by From; extending the end can pull later windows into range,
	// which the forward scan picks up against the updated end.
	end := clock + d
	for _, w := range inj.pauses {
		if w.To <= clock || w.From >= end {
			continue
		}
		end += w.To - maxTime(w.From, clock)
	}
	return end - clock
}
