package harness

import (
	"bytes"
	"testing"

	"cvm/internal/apps"
)

// TestScaleSmoke is the `make scale-smoke` gate: a 256-node scaleout run
// must complete on the conservative windowed engine, reproduce the
// sequential engine's checksum (the repo-wide correctness oracle; the
// two engines legally differ in same-timestamp tie order, so virtual
// timings may drift), and be byte-identical — checksum, statistics,
// metrics report, trace — across windowed worker counts. This is the
// determinism guard at a cluster size far past anything the paper grid
// exercises (and past the old 64-node copyset ceiling).
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node smoke skipped in -short")
	}
	if raceEnabled {
		// ~10x slowdown at this size; the windowed engine's goroutines
		// get race coverage from TestGuardDeterminism at small sizes.
		t.Skip("256-node smoke skipped under the race detector")
	}
	const nodes, threads = 256, 1
	// Engine workers 0 is the sequential engine, the correctness oracle.
	seq, err := RunDeterminismProbe("scaleout", apps.SizeTest, nodes, threads, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunDeterminismProbe("scaleout", apps.SizeTest, nodes, threads, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Checksum != seq.Checksum {
		t.Fatalf("windowed engine checksum %v, sequential %v", base.Checksum, seq.Checksum)
	}
	p, err := RunDeterminismProbe("scaleout", apps.SizeTest, nodes, threads, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.diff(p); err != nil {
		t.Fatalf("windowed engine workers 1 vs 2 diverged: %v", err)
	}
	if seq.Stats.Total.RemoteFaults == 0 || seq.Stats.Total.RemoteLocks == 0 {
		t.Errorf("smoke run exercised no remote primitives: %+v", seq.Stats.Total)
	}
}

// TestRunScaleStudy checks the study runner end to end at toy sizes:
// schema population, the compression win, and JSON round-tripping.
func TestRunScaleStudy(t *testing.T) {
	study, err := RunScaleStudy([]int{2, 4}, 2, apps.SizeTest, []bool{false, true}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(study.Points))
	}
	for i := 0; i < len(study.Points); i += 2 {
		raw, comp := study.Points[i], study.Points[i+1]
		if raw.Compress || !comp.Compress {
			t.Fatalf("point order: %+v then %+v", raw, comp)
		}
		if raw.Nodes != comp.Nodes || raw.Checksum != comp.Checksum {
			t.Errorf("compression changed the result: %+v vs %+v", raw, comp)
		}
		if comp.DiffBytes >= raw.DiffBytes {
			t.Errorf("nodes=%d: compressed diff bytes %d not below raw %d",
				raw.Nodes, comp.DiffBytes, raw.DiffBytes)
		}
		if raw.Pages <= 0 || raw.WallNs <= 0 || raw.RemoteFaults <= 0 {
			t.Errorf("nodes=%d: implausible point %+v", raw.Nodes, raw)
		}
	}

	var buf bytes.Buffer
	if err := WriteScaleBaseline(&buf, study); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScaleBaseline(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(study.Points) || back.Points[3] != study.Points[3] {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
}
