package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/core"
)

// ScaleBaseline is the schema of BENCH_scaleout.json: the scaling study
// the sparse page directory, unbounded copysets and compressed diffs
// exist for. Each point runs the synthetic scaleout application at one
// cluster size, with and without diff compression, and records the
// per-primitive latency curves (fault/lock/barrier wait), the network
// traffic per message class, and the host-side heap the run needed —
// the number that must stay working-set-proportional as the address
// space crosses a million pages.
type ScaleBaseline struct {
	GoVersion     string       `json:"go_version"`
	Size          string       `json:"size"`
	EngineWorkers int          `json:"engine_workers"`
	Points        []ScalePoint `json:"points"`
}

// ScalePoint is one (cluster size, compression) cell of the study.
type ScalePoint struct {
	Nodes    int  `json:"nodes"`
	Threads  int  `json:"threads"`
	Compress bool `json:"compress_diffs"`

	// Pages is the allocated shared address space in pages; the heap
	// figure below must not scale with it.
	Pages int64 `json:"pages"`

	// Virtual-time results: total wall and the Figure 1 breakdown
	// summed over nodes (nanoseconds of virtual time).
	WallNs        int64 `json:"wall_ns"`
	UserNs        int64 `json:"user_ns"`
	FaultWaitNs   int64 `json:"fault_wait_ns"`
	LockWaitNs    int64 `json:"lock_wait_ns"`
	BarrierWaitNs int64 `json:"barrier_wait_ns"`

	// Per-primitive action counts.
	RemoteFaults int64 `json:"remote_faults"`
	RemoteLocks  int64 `json:"remote_locks"`
	DiffsCreated int64 `json:"diffs_created"`
	DiffsUsed    int64 `json:"diffs_used"`

	// Network traffic per Table 2 class.
	LockMsgs     int64 `json:"lock_msgs"`
	BarrierMsgs  int64 `json:"barrier_msgs"`
	DiffMsgs     int64 `json:"diff_msgs"`
	LockBytes    int64 `json:"lock_bytes"`
	BarrierBytes int64 `json:"barrier_bytes"`
	DiffBytes    int64 `json:"diff_bytes"`

	// Host-side cost of simulating the point.
	HeapMB      float64 `json:"heap_mb"`
	HostSeconds float64 `json:"host_seconds"`

	Checksum float64 `json:"checksum"`
}

// ReadScaleBaseline parses a BENCH_scaleout.json payload.
func ReadScaleBaseline(data []byte) (*ScaleBaseline, error) {
	var b ScaleBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// WriteScaleBaseline emits the study as indented JSON.
func WriteScaleBaseline(w io.Writer, b *ScaleBaseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// RunScaleStudy runs the scaleout application across the given node
// counts (threadsPerNode threads each), once per compression setting,
// on the conservative windowed engine with engineWorkers workers
// (0 = sequential engine). Points run sequentially — heap measurement
// needs the run to own the process — in deterministic order.
func RunScaleStudy(nodeCounts []int, threadsPerNode int, size apps.Size,
	compress []bool, engineWorkers int, progress io.Writer) (*ScaleBaseline, error) {
	b := &ScaleBaseline{
		GoVersion:     runtime.Version(),
		Size:          scaleSizeName(size),
		EngineWorkers: engineWorkers,
	}
	sink := newProgressSink(progress)
	defer sink.Close()
	for _, nodes := range nodeCounts {
		for _, comp := range compress {
			sink.Printf("scaleout %dx%d compress=%v...\n", nodes, threadsPerNode, comp)
			pt, err := runScalePoint(nodes, threadsPerNode, size, comp, engineWorkers)
			if err != nil {
				return nil, fmt.Errorf("harness: scaleout %dx%d compress=%v: %w",
					nodes, threadsPerNode, comp, err)
			}
			b.Points = append(b.Points, pt)
		}
	}
	return b, nil
}

// runScalePoint runs one cell. Unlike apps.RunConfigFull it builds the
// cluster here, so it can read the allocated address-space size and
// bracket the run with heap measurements.
func runScalePoint(nodes, threads int, size apps.Size, compress bool, engineWorkers int) (ScalePoint, error) {
	app, err := apps.New("scaleout", size)
	if err != nil {
		return ScalePoint{}, err
	}
	cfg := cvm.DefaultConfig(nodes, threads)
	cfg.CompressDiffs = compress
	cfg.EngineWorkers = engineWorkers

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()

	cluster, err := cvm.New(cfg)
	if err != nil {
		return ScalePoint{}, err
	}
	if err := app.Setup(cluster); err != nil {
		return ScalePoint{}, err
	}
	stats, err := cluster.Run(app.Main)
	if err != nil {
		return ScalePoint{}, err
	}

	// Heap while the cluster (page tables, diffs, intervals) is still
	// live: the delta over the pre-run baseline is what the simulated
	// cluster state costs the host.
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	host := time.Since(t0)

	if err := app.Check(); err != nil {
		return ScalePoint{}, err
	}
	var pages int64
	for _, seg := range cluster.System().Segments() {
		pages += int64((seg.Size + cfg.PageSize - 1) / cfg.PageSize)
	}
	heap := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	if heap < 0 {
		heap = 0
	}
	return ScalePoint{
		Nodes:         nodes,
		Threads:       threads,
		Compress:      compress,
		Pages:         pages,
		WallNs:        int64(stats.Wall),
		UserNs:        int64(stats.Total.UserTime),
		FaultWaitNs:   int64(stats.Total.FaultWait),
		LockWaitNs:    int64(stats.Total.LockWait),
		BarrierWaitNs: int64(stats.Total.BarrierWait),
		RemoteFaults:  stats.Total.RemoteFaults,
		RemoteLocks:   stats.Total.RemoteLocks,
		DiffsCreated:  stats.Total.DiffsCreated,
		DiffsUsed:     stats.Total.DiffsUsed,
		LockMsgs:      stats.Net.Msgs[core.ClassLock],
		BarrierMsgs:   stats.Net.Msgs[core.ClassBarrier],
		DiffMsgs:      stats.Net.Msgs[core.ClassDiff],
		LockBytes:     stats.Net.Bytes[core.ClassLock],
		BarrierBytes:  stats.Net.Bytes[core.ClassBarrier],
		DiffBytes:     stats.Net.Bytes[core.ClassDiff],
		HeapMB:        heap / (1 << 20),
		HostSeconds:   host.Seconds(),
		Checksum:      app.Checksum(),
	}, nil
}

func scaleSizeName(s apps.Size) string {
	switch s {
	case apps.SizeTest:
		return "test"
	case apps.SizePaper:
		return "paper"
	default:
		return "small"
	}
}

// ScaleStudyNodes is the study's default node-count sweep.
var ScaleStudyNodes = []int{8, 64, 256, 1024}

// WriteScaleStudy renders the study as a text table.
func WriteScaleStudy(w io.Writer, b *ScaleBaseline) {
	fmt.Fprintf(w, "Scaling study (size %s, engine workers %d)\n", b.Size, b.EngineWorkers)
	fmt.Fprintf(w, "%6s %3s %5s %9s %11s %11s %11s %11s %9s %8s %8s\n",
		"nodes", "thr", "comp", "pages", "wall(ms)", "fault(ms)", "lock(ms)", "barrier(ms)",
		"diffKB", "heapMB", "host(s)")
	for _, p := range b.Points {
		comp := "off"
		if p.Compress {
			comp = "on"
		}
		fmt.Fprintf(w, "%6d %3d %5s %9d %11.2f %11.2f %11.2f %11.2f %9.1f %8.1f %8.2f\n",
			p.Nodes, p.Threads, comp, p.Pages,
			float64(p.WallNs)/1e6, float64(p.FaultWaitNs)/1e6,
			float64(p.LockWaitNs)/1e6, float64(p.BarrierWaitNs)/1e6,
			float64(p.DiffBytes)/1024, p.HeapMB, p.HostSeconds)
	}
}
