package harness

import (
	"fmt"
	"io"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/metrics"
)

// RunGridMetricsParallel is RunGridParallel with a metrics registry
// attached to every cell. Each cell gets its own fresh registry (a
// Registry must not be shared between systems); the per-cell snapshots
// are merged in deterministic job order — runJobs returns results in job
// order regardless of worker count — so the aggregate snapshot, and
// every report built from it, is bit-identical at any parallelism.
// interval sets the utilization-timeline bin width (≤ 0 = default).
func RunGridMetricsParallel(appNames []string, size apps.Size, shapes []Shape, progress io.Writer, workers int, interval cvm.Time) (Results, *metrics.Snapshot, error) {
	jobs, err := gridJobs(appNames, size, shapes)
	if err != nil {
		return nil, nil, err
	}

	type cell struct {
		stats cvm.Stats
		snap  *metrics.Snapshot
	}
	sink := newProgressSink(progress)
	defer sink.Close()
	cells, err := runJobs(jobs, workers, func(k Key) (cell, error) {
		sink.Printf("running %s %dx%d...\n", k.App, k.Nodes, k.Threads)
		reg := metrics.NewRegistry()
		if interval > 0 {
			reg.SetInterval(interval)
		}
		cfg := cvm.DefaultConfig(k.Nodes, k.Threads)
		cfg.Metrics = reg
		st, err := apps.RunConfig(k.App, size, cfg)
		if err != nil {
			return cell{}, fmt.Errorf("harness: %s %dx%d: %w", k.App, k.Nodes, k.Threads, err)
		}
		return cell{st, reg.Snapshot()}, nil
	})
	if err != nil {
		return nil, nil, err
	}

	res := make(Results, len(jobs))
	agg := &metrics.Snapshot{}
	for i, k := range jobs {
		res[k] = cells[i].stats
		agg.Merge(cells[i].snap)
	}
	return res, agg, nil
}
