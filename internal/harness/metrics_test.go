package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"cvm/internal/apps"
	"cvm/internal/metrics"
)

// TestRunGridMetricsParallelDeterminism mirrors the PR 1 results_identical
// guard for the metrics layer: the aggregated snapshot must serialize
// byte-identically whether the grid ran sequentially or on 4 workers
// (cell snapshots merge in job order, not completion order), and across
// repeated runs of the same grid.
func TestRunGridMetricsParallelDeterminism(t *testing.T) {
	appList := []string{"sor", "waternsq"}
	shapes := GridShapes([]int{2, 4}, []int{1, 2})

	seqRes, seqSnap, err := RunGridMetricsParallel(appList, apps.SizeTest, shapes, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	parRes, parSnap, err := RunGridMetricsParallel(appList, apps.SizeTest, shapes, nil, 4, 0)
	if err != nil {
		t.Fatal(err)
	}

	if !seqRes.Equal(parRes) {
		t.Fatal("parallel Results differ from sequential")
	}
	seqJSON := marshalSnap(t, seqSnap)
	parJSON := marshalSnap(t, parSnap)
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatal("aggregated metrics snapshot differs between sequential and parallel runs")
	}

	// Repeatability: the same grid again produces the same bytes.
	_, again, err := RunGridMetricsParallel(appList, apps.SizeTest, shapes, nil, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, marshalSnap(t, again)) {
		t.Fatal("aggregated metrics snapshot differs between repeated runs")
	}

	// The report built from the snapshot is deterministic too.
	r1 := metrics.NewReport(metrics.Meta{App: "grid"}, seqSnap, 10)
	r2 := metrics.NewReport(metrics.Meta{App: "grid"}, parSnap, 10)
	var b1, b2 bytes.Buffer
	if err := r1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("reports differ between sequential and parallel grids")
	}
}

// TestRunGridMetricsMatchesPlainGrid asserts the metrics-attached grid
// produces exactly the Results of the plain grid: attaching registries
// is A/B-neutral for every cell.
func TestRunGridMetricsMatchesPlainGrid(t *testing.T) {
	appList := []string{"sor", "waternsq"}
	shapes := GridShapes([]int{2, 4}, []int{1, 2})

	plain, err := RunGridParallel(appList, apps.SizeTest, shapes, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	metered, snap, err := RunGridMetricsParallel(appList, apps.SizeTest, shapes, nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(metered) {
		t.Fatal("Results differ with metrics attached (observation perturbed the simulation)")
	}
	// Aggregation covered every cell: 8 cells × nodes histograms all
	// carry observations.
	if len(snap.Nodes) != 4 {
		t.Fatalf("aggregate snapshot has %d node slots, want max nodes 4", len(snap.Nodes))
	}
	var total int64
	for _, n := range snap.Nodes {
		total += n.UserBurst.Count
	}
	if total == 0 {
		t.Fatal("aggregate snapshot is empty")
	}
}

func marshalSnap(t *testing.T, s *metrics.Snapshot) []byte {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
