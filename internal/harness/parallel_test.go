package harness

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"cvm/internal/apps"
)

// TestRunGridParallelDeterminism is the determinism guard: a parallel grid
// must produce byte-identical Results to the sequential one — each cell's
// simulation is single-threaded and deterministic, parallelism only
// reorders which cell runs when. If this fails, a table changed silently.
func TestRunGridParallelDeterminism(t *testing.T) {
	appList := []string{"sor", "waternsq"}
	shapes := GridShapes([]int{2, 4}, []int{1, 2})

	seq, err := RunGridParallel(appList, apps.SizeTest, shapes, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunGridParallel(appList, apps.SizeTest, shapes, nil, 4)
	if err != nil {
		t.Fatal(err)
	}

	if !seq.Equal(par) {
		t.Fatal("parallel Results differ from sequential")
	}
	// Equal must also be sensitive, not vacuously true.
	for k := range par {
		mutated := make(Results, len(par))
		for k2, v := range par {
			mutated[k2] = v
		}
		st := mutated[k]
		st.Total.ThreadSwitches++
		mutated[k] = st
		if seq.Equal(mutated) {
			t.Fatal("Results.Equal failed to detect a mutated cell")
		}
		break
	}
	for k, sv := range seq {
		pv, ok := par[k]
		if !ok {
			t.Fatalf("parallel grid missing %v", k)
		}
		if sv.Wall != pv.Wall || sv.Total != pv.Total {
			t.Errorf("%v: sequential and parallel stats differ", k)
		}
	}
}

// TestRunGridParallelProgress checks the single-writer progress sink: all
// lines arrive intact (no interleaving tears) regardless of worker count.
func TestRunGridParallelProgress(t *testing.T) {
	var buf bytes.Buffer
	_, err := RunGridParallel([]string{"sor"}, apps.SizeTest,
		GridShapes([]int{2, 4}, []int{1, 2}), &buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	sort.Strings(lines)
	want := []string{
		"running sor 2x1...",
		"running sor 2x2...",
		"running sor 4x1...",
		"running sor 4x2...",
	}
	if len(lines) != len(want) {
		t.Fatalf("progress lines = %q, want %d lines", lines, len(want))
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

// TestRunJobsOrder checks that results come back in job order and that the
// first (lowest-indexed) failure wins, at several worker counts.
func TestRunJobsOrder(t *testing.T) {
	jobs := make([]int, 50)
	for i := range jobs {
		jobs[i] = i
	}
	for _, workers := range []int{1, 3, 16, 100} {
		got, err := runJobs(jobs, workers, func(j int) (int, error) { return j * j, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}

		_, err = runJobs(jobs, workers, func(j int) (int, error) {
			if j == 7 || j == 31 {
				return 0, fmt.Errorf("job %d failed", j)
			}
			return j, nil
		})
		if err == nil || !strings.Contains(err.Error(), "job 7") {
			t.Errorf("workers=%d: err = %v, want first failure (job 7)", workers, err)
		}
	}
}

// TestRunJobsEmpty checks the degenerate cases.
func TestRunJobsEmpty(t *testing.T) {
	got, err := runJobs(nil, 4, func(j int) (int, error) { return 0, errors.New("never called") })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty jobs: got %v, %v", got, err)
	}
}

func TestClampWorkers(t *testing.T) {
	tests := []struct {
		workers, jobs, wantMin, wantMax int
	}{
		{1, 10, 1, 1},
		{4, 2, 2, 2},   // never more workers than jobs
		{-1, 5, 1, 5},  // ≤ 0 means DefaultParallelism, capped by jobs
		{0, 0, 1, 1},   // zero jobs still yields a valid count
		{16, 16, 16, 16},
	}
	for _, tt := range tests {
		got := clampWorkers(tt.workers, tt.jobs)
		if got < tt.wantMin || got > tt.wantMax {
			t.Errorf("clampWorkers(%d, %d) = %d, want in [%d, %d]",
				tt.workers, tt.jobs, got, tt.wantMin, tt.wantMax)
		}
	}
}

// TestGridShapes covers the cross-product builder directly.
func TestGridShapes(t *testing.T) {
	got := GridShapes([]int{4, 8}, []int{1, 2})
	want := []Shape{{4, 1}, {4, 2}, {8, 1}, {8, 2}}
	if len(got) != len(want) {
		t.Fatalf("shapes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("shape[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if s := GridShapes(nil, []int{1, 2}); len(s) != 0 {
		t.Errorf("empty nodes: %v, want empty", s)
	}
	if s := GridShapes([]int{4}, nil); len(s) != 0 {
		t.Errorf("empty threads: %v, want empty", s)
	}
}
