// Package harness runs the paper's experiments and formats its tables and
// figures: Figure 1 (normalized execution time), Table 2 (communication),
// Table 3 (DSM actions), Figure 2 (memory system), Table 4 (scalability),
// Table 5 (Water-Nsq optimizations), and the §4.1 cost microbenchmarks.
package harness

import (
	"fmt"
	"io"

	"cvm"
	"cvm/internal/apps"
)

// Shape is one cluster configuration of an experiment grid.
type Shape struct {
	Nodes   int
	Threads int
}

// Key identifies one run in a result set.
type Key struct {
	App     string
	Nodes   int
	Threads int
}

// Results caches run statistics per (app, shape).
type Results map[Key]cvm.Stats

// AppOrder is the paper's application ordering in figures and tables.
var AppOrder = []string{"barnes", "fft", "ocean", "sor", "swm750", "watersp", "waternsq"}

// ThreadLevels are the per-node threading levels the paper evaluates.
var ThreadLevels = []int{1, 2, 3, 4}

// RunGrid executes every application at every shape, validating results
// against the sequential references. Shapes an application does not
// support (Ocean at non-power-of-two threads) are skipped. Progress lines
// go to progress when non-nil.
func RunGrid(appNames []string, size apps.Size, shapes []Shape, progress io.Writer) (Results, error) {
	res := make(Results, len(appNames)*len(shapes))
	for _, name := range appNames {
		for _, sh := range shapes {
			app, err := apps.New(name, size)
			if err != nil {
				return nil, err
			}
			if !app.SupportsThreads(sh.Threads) {
				continue
			}
			if progress != nil {
				fmt.Fprintf(progress, "running %s %dx%d...\n", name, sh.Nodes, sh.Threads)
			}
			st, err := apps.Run(name, size, sh.Nodes, sh.Threads)
			if err != nil {
				return nil, fmt.Errorf("harness: %s %dx%d: %w", name, sh.Nodes, sh.Threads, err)
			}
			res[Key{name, sh.Nodes, sh.Threads}] = st
		}
	}
	return res, nil
}

// GridShapes builds the cross product of node counts and thread levels.
func GridShapes(nodes []int, threads []int) []Shape {
	shapes := make([]Shape, 0, len(nodes)*len(threads))
	for _, n := range nodes {
		for _, t := range threads {
			shapes = append(shapes, Shape{Nodes: n, Threads: t})
		}
	}
	return shapes
}

// pct formats a relative change as a rounded percentage (Table 4 style).
func pct(now, base int64) string {
	if base == 0 {
		if now == 0 {
			return "0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", 100*float64(now-base)/float64(base))
}
