// Package harness runs the paper's experiments and formats its tables and
// figures: Figure 1 (normalized execution time), Table 2 (communication),
// Table 3 (DSM actions), Figure 2 (memory system), Table 4 (scalability),
// Table 5 (Water-Nsq optimizations), and the §4.1 cost microbenchmarks.
package harness

import (
	"fmt"
	"io"
	"reflect"

	"cvm"
	"cvm/internal/apps"
)

// Shape is one cluster configuration of an experiment grid.
type Shape struct {
	Nodes   int
	Threads int
}

// Key identifies one run in a result set.
type Key struct {
	App     string
	Nodes   int
	Threads int
}

// Results caches run statistics per (app, shape).
type Results map[Key]cvm.Stats

// Equal reports whether two result sets cover the same keys with
// identical statistics. The parallel runner must produce results Equal to
// the sequential runner's at every worker count.
func (r Results) Equal(other Results) bool {
	if len(r) != len(other) {
		return false
	}
	for k, v := range r {
		ov, ok := other[k]
		if !ok || !reflect.DeepEqual(v, ov) {
			return false
		}
	}
	return true
}

// AppOrder is the paper's application ordering in figures and tables.
var AppOrder = []string{"barnes", "fft", "ocean", "sor", "swm750", "watersp", "waternsq"}

// ThreadLevels are the per-node threading levels the paper evaluates.
var ThreadLevels = []int{1, 2, 3, 4}

// RunGrid executes every application at every shape, validating results
// against the sequential references. Shapes an application does not
// support (Ocean at non-power-of-two threads) are skipped. Progress lines
// go to progress when non-nil. Cells run concurrently across
// DefaultParallelism workers; use RunGridParallel to choose the width.
func RunGrid(appNames []string, size apps.Size, shapes []Shape, progress io.Writer) (Results, error) {
	return RunGridParallel(appNames, size, shapes, progress, DefaultParallelism())
}

// RunGridParallel is RunGrid with an explicit worker count (≤ 0 means
// DefaultParallelism). Every grid cell is an independent single-threaded
// simulation, so the cells fan out across a worker pool; results are
// merged in deterministic grid order and are bit-identical at any worker
// count (see TestRunGridParallelDeterminism).
func RunGridParallel(appNames []string, size apps.Size, shapes []Shape, progress io.Writer, workers int) (Results, error) {
	jobs, err := gridJobs(appNames, size, shapes)
	if err != nil {
		return nil, err
	}

	sink := newProgressSink(progress)
	defer sink.Close()
	stats, err := runJobs(jobs, workers, func(k Key) (cvm.Stats, error) {
		sink.Printf("running %s %dx%d...\n", k.App, k.Nodes, k.Threads)
		st, err := apps.Run(k.App, size, k.Nodes, k.Threads)
		if err != nil {
			return cvm.Stats{}, fmt.Errorf("harness: %s %dx%d: %w", k.App, k.Nodes, k.Threads, err)
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}

	res := make(Results, len(jobs))
	for i, k := range jobs {
		res[k] = stats[i]
	}
	return res, nil
}

// RunGridConfig is RunGridParallel with a per-cell configuration hook:
// mut (when non-nil) runs on each cell's default configuration before
// the cluster is built, so experiments can perturb any Config dimension
// — most usefully Faults, which is how the chaos suite sweeps fault
// schedules across the whole application grid. mut is called
// concurrently from pool workers and must not write shared state; a
// *FaultPlan may be shared across cells (systems copy what they need).
func RunGridConfig(appNames []string, size apps.Size, shapes []Shape, mut func(Key, *cvm.Config), progress io.Writer, workers int) (Results, error) {
	jobs, err := gridJobs(appNames, size, shapes)
	if err != nil {
		return nil, err
	}

	sink := newProgressSink(progress)
	defer sink.Close()
	stats, err := runJobs(jobs, workers, func(k Key) (cvm.Stats, error) {
		sink.Printf("running %s %dx%d...\n", k.App, k.Nodes, k.Threads)
		cfg := cvm.DefaultConfig(k.Nodes, k.Threads)
		if mut != nil {
			mut(k, &cfg)
		}
		st, err := apps.RunConfig(k.App, size, cfg)
		if err != nil {
			return cvm.Stats{}, fmt.Errorf("harness: %s %dx%d: %w", k.App, k.Nodes, k.Threads, err)
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}

	res := make(Results, len(jobs))
	for i, k := range jobs {
		res[k] = stats[i]
	}
	return res, nil
}

// gridJobs expands a grid into its runnable cells, skipping shapes an
// application does not support.
func gridJobs(appNames []string, size apps.Size, shapes []Shape) ([]Key, error) {
	jobs := make([]Key, 0, len(appNames)*len(shapes))
	for _, name := range appNames {
		for _, sh := range shapes {
			app, err := apps.New(name, size)
			if err != nil {
				return nil, err
			}
			if !app.SupportsThreads(sh.Threads) {
				continue
			}
			jobs = append(jobs, Key{name, sh.Nodes, sh.Threads})
		}
	}
	return jobs, nil
}

// GridShapes builds the cross product of node counts and thread levels.
func GridShapes(nodes []int, threads []int) []Shape {
	shapes := make([]Shape, 0, len(nodes)*len(threads))
	for _, n := range nodes {
		for _, t := range threads {
			shapes = append(shapes, Shape{Nodes: n, Threads: t})
		}
	}
	return shapes
}

// pct formats a relative change as a rounded percentage (Table 4 style).
func pct(now, base int64) string {
	if base == 0 {
		if now == 0 {
			return "0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", 100*float64(now-base)/float64(base))
}
