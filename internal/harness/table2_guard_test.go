package harness

import (
	"reflect"
	"testing"

	"cvm/internal/netsim"
)

// TestTable2RowCoversAllClasses guards Table2Row against a silently
// missing column: for every netsim message class there must be a
// `<Class>Msgs` int64 field (and a matching `<Class>DelayMs` for the
// paper's non-overlapped delay columns). Adding a fourth message class
// to netsim without extending Table 2 fails here instead of shipping a
// table whose class columns no longer sum to the total.
func TestTable2RowCoversAllClasses(t *testing.T) {
	rt := reflect.TypeOf(Table2Row{})
	for _, c := range netsim.Classes() {
		msgs := c.String() + "Msgs"
		f, ok := rt.FieldByName(msgs)
		if !ok {
			t.Errorf("Table2Row has no %s field for class %v", msgs, c)
		} else if f.Type.Kind() != reflect.Int64 {
			t.Errorf("Table2Row.%s is %v, want int64", msgs, f.Type)
		}
		delay := c.String() + "DelayMs"
		if _, ok := rt.FieldByName(delay); !ok {
			t.Errorf("Table2Row has no %s field for class %v", delay, c)
		}
	}
}
