package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cvm"
)

// Fig1Row is one bar of Figure 1: execution time at (app, nodes, threads)
// normalized to the single-threaded run at the same node count, decomposed
// into user / barrier / fault / lock components.
type Fig1Row struct {
	App     string
	Nodes   int
	Threads int

	Norm    float64 // total normalized execution time (1.0 at T=1)
	User    float64 // components; they sum to ≈ Norm
	Barrier float64
	Fault   float64
	Lock    float64
}

// Figure1 computes the normalized execution-time bars from a result grid.
func Figure1(res Results, appNames []string, nodes, threads []int) []Fig1Row {
	var rows []Fig1Row
	for _, name := range appNames {
		for _, p := range nodes {
			base, ok := res[Key{name, p, 1}]
			if !ok {
				continue
			}
			baseTotal := componentsTotal(base)
			for _, t := range threads {
				st, ok := res[Key{name, p, t}]
				if !ok {
					continue
				}
				rows = append(rows, Fig1Row{
					App:     name,
					Nodes:   p,
					Threads: t,
					Norm:    float64(componentsTotal(st)) / float64(baseTotal),
					User:    float64(st.Total.UserTime) / float64(baseTotal),
					Barrier: float64(st.Total.BarrierWait) / float64(baseTotal),
					Fault:   float64(st.Total.FaultWait) / float64(baseTotal),
					Lock:    float64(st.Total.LockWait) / float64(baseTotal),
				})
			}
		}
	}
	return rows
}

func componentsTotal(st cvm.Stats) cvm.Time {
	return st.Total.UserTime + st.Total.BarrierWait + st.Total.FaultWait + st.Total.LockWait
}

// WriteFigure1 renders the Figure 1 data as a table with a text bar chart.
func WriteFigure1(w io.Writer, res Results, appNames []string, nodes, threads []int) {
	fmt.Fprintln(w, "Figure 1: Normalized Execution Time (user/barrier/fault/lock)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tP/T\tnorm\tuser\tbarrier\tfault\tlock\t")
	for _, r := range Figure1(res, appNames, nodes, threads) {
		fmt.Fprintf(tw, "%s\t%d/%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%s\n",
			r.App, r.Nodes, r.Threads, r.Norm, r.User, r.Barrier, r.Fault, r.Lock,
			bar(r.Norm))
	}
	tw.Flush()
}

// bar renders a 40-column text bar for a normalized value.
func bar(v float64) string {
	n := int(v * 30)
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// Fig2Row is one series point of Figure 2: memory-system misses at a
// threading level (in raw counts; the paper reports millions).
type Fig2Row struct {
	App     string
	Threads int

	DCacheMisses int64
	DTLBMisses   int64
	ITLBMisses   int64
}

// Figure2 extracts memory-system miss counts (at the paper's 4-node SP-2
// setup, the node count used for Figure 2's sweeps is fixed by caller).
func Figure2(res Results, appNames []string, nodes int, threads []int) []Fig2Row {
	var rows []Fig2Row
	for _, name := range appNames {
		for _, t := range threads {
			st, ok := res[Key{name, nodes, t}]
			if !ok {
				continue
			}
			rows = append(rows, Fig2Row{
				App:          name,
				Threads:      t,
				DCacheMisses: st.MemTotal.DCacheMisses,
				DTLBMisses:   st.MemTotal.DTLBMisses,
				ITLBMisses:   st.MemTotal.ITLBMisses,
			})
		}
	}
	return rows
}

// WriteFigure2 renders Figure 2 as three miss-count tables. The paper
// reports millions of misses at full input scale; reduced inputs shrink
// the absolute counts, so raw values are shown — the claim under test is
// the trend across threading levels.
func WriteFigure2(w io.Writer, res Results, appNames []string, nodes int, threads []int) {
	fmt.Fprintln(w, "Figure 2: Effect on Memory System When Increasing Number of Threads")
	fmt.Fprintln(w, "(raw miss counts; the paper's full-scale inputs yield millions)")
	rows := Figure2(res, appNames, nodes, threads)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "app\tT\tD-cache\tD-TLB\tI-TLB\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t\n",
			r.App, r.Threads, r.DCacheMisses, r.DTLBMisses, r.ITLBMisses)
	}
	tw.Flush()
}
