package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cvm"
)

// Costs are the measured primitive costs of §4.1.
type Costs struct {
	TwoHopLock   cvm.Time // paper: 937 µs
	ThreeHopLock cvm.Time // paper: 1382 µs
	PageFault    cvm.Time // paper: ~1100 µs
	Barrier8     cvm.Time // paper: 2470 µs (simultaneous arrivals)
	ThreadSwitch cvm.Time // paper: 8 µs
}

// MeasureCosts runs the §4.1 microbenchmarks on a default-calibrated
// cluster.
func MeasureCosts() (Costs, error) {
	var c Costs

	// 2-hop lock: the manager holds the free token.
	if err := micro(2, 1, func(w cvm.Worker) {
		if w.NodeID() == 1 {
			start := w.Now()
			w.Lock(0)
			c.TwoHopLock = w.Now() - start
			w.Unlock(0)
		}
	}); err != nil {
		return c, err
	}

	// 3-hop lock: the token is at a third node.
	if err := micro(3, 1, func(w cvm.Worker) {
		if w.NodeID() == 1 {
			w.Lock(0)
			w.Unlock(0)
		}
		w.Barrier(0)
		if w.NodeID() == 2 {
			start := w.Now()
			w.Lock(0)
			c.ThreeHopLock = w.Now() - start
			w.Unlock(0)
		}
	}); err != nil {
		return c, err
	}

	// Remote page fault fetching a full-page diff.
	if err := microAlloc(2, 1, 8192, func(w cvm.Worker, addr cvm.Addr) {
		if w.NodeID() == 0 {
			for i := 0; i < 8192; i += 8 {
				w.WriteF64(addr+cvm.Addr(i), float64(i))
			}
		}
		w.Barrier(0)
		if w.NodeID() == 1 {
			start := w.Now()
			_ = w.ReadF64(addr)
			c.PageFault = w.Now() - start
		}
	}); err != nil {
		return c, err
	}

	// Minimal 8-processor barrier, back-to-back.
	if err := micro(8, 1, func(w cvm.Worker) {
		w.Barrier(0)
		start := w.Now()
		w.Barrier(1)
		if w.NodeID() == 7 {
			c.Barrier8 = w.Now() - start
		}
	}); err != nil {
		return c, err
	}

	// Thread switch.
	var t0End, t1Start cvm.Time
	if err := micro(1, 2, func(w cvm.Worker) {
		if w.LocalID() == 0 {
			w.Compute(10 * cvm.Microsecond)
			t0End = w.Now()
			w.Yield()
		} else {
			t1Start = w.Now()
		}
	}); err != nil {
		return c, err
	}
	c.ThreadSwitch = t1Start - t0End

	return c, nil
}

func micro(nodes, threads int, main func(cvm.Worker)) error {
	return microAlloc(nodes, threads, 8192, func(w cvm.Worker, _ cvm.Addr) { main(w) })
}

func microAlloc(nodes, threads, bytes int, main func(cvm.Worker, cvm.Addr)) error {
	cluster, err := cvm.New(cvm.DefaultConfig(nodes, threads))
	if err != nil {
		return err
	}
	addr := cluster.MustAlloc("micro", bytes)
	_, err = cluster.Run(func(w cvm.Worker) { main(w, addr) })
	return err
}

// WriteCosts renders the §4.1 comparison.
func WriteCosts(w io.Writer, c Costs) {
	fmt.Fprintln(w, "Section 4.1: primitive costs (measured vs paper)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "primitive\tmeasured\tpaper\t")
	fmt.Fprintf(tw, "2-hop lock acquire\t%v\t937µs\t\n", c.TwoHopLock)
	fmt.Fprintf(tw, "3-hop lock acquire\t%v\t1382µs\t\n", c.ThreeHopLock)
	fmt.Fprintf(tw, "remote page fault\t%v\t~1100µs\t\n", c.PageFault)
	fmt.Fprintf(tw, "8-processor barrier\t%v\t2470µs\t\n", c.Barrier8)
	fmt.Fprintf(tw, "thread switch\t%v\t8µs\t\n", c.ThreadSwitch)
	tw.Flush()
}
