package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/sim"
)

// AblationRow records the multi-threading benefit of one application
// under one modified cluster parameter: speedup of T=4 over T=1 at 8
// nodes.
type AblationRow struct {
	Param      string
	Value      string
	App        string
	WallT1     cvm.Time
	WallT4     cvm.Time
	SpeedupPct float64
}

// AblationSwitchCost sweeps the thread-switch cost. The paper lists
// switch cost as limiting factor #5: "efficient thread switching is
// crucial to getting good coverage of remote latency". The benefit should
// erode as switches grow expensive.
func AblationSwitchCost(appName string, size apps.Size) ([]AblationRow, error) {
	costs := []sim.Time{
		8 * sim.Microsecond, // the paper's measured cost
		50 * sim.Microsecond,
		200 * sim.Microsecond,
		1000 * sim.Microsecond,
	}
	return runJobs(costs, 0, func(c sim.Time) (AblationRow, error) {
		return ablate(appName, size, fmt.Sprintf("%v", c), "switch-cost",
			func(cfg *cvm.Config) { cfg.SwitchCost = c })
	})
}

// AblationWireLatency sweeps the interconnect wire latency. The paper's
// premise is that multi-threading pays in proportion to remote latency;
// the benefit should grow as the wire slows.
func AblationWireLatency(appName string, size apps.Size) ([]AblationRow, error) {
	factors := []struct {
		label string
		mul   int
		div   int
	}{
		{"0.5x", 1, 2},
		{"1x (paper)", 1, 1},
		{"2x", 2, 1},
		{"4x", 4, 1},
	}
	return runJobs(factors, 0, func(f struct {
		label string
		mul   int
		div   int
	}) (AblationRow, error) {
		return ablate(appName, size, f.label, "wire-latency",
			func(cfg *cvm.Config) {
				cfg.Net.WireLatency = cfg.Net.WireLatency * sim.Time(f.mul) / sim.Time(f.div)
				cfg.Net.SendOverhead = cfg.Net.SendOverhead * sim.Time(f.mul) / sim.Time(f.div)
				cfg.Net.RecvOverhead = cfg.Net.RecvOverhead * sim.Time(f.mul) / sim.Time(f.div)
			})
	})
}

// ablationCheckTol is the relative checksum tolerance for ablation runs.
// Ablations perturb cluster timing (switch cost, wire latency, run-queue
// discipline), which reorders lock grants and barrier wakeups; the
// reduction-style applications then accumulate in a different order and
// the reassociated result drifts a few ulps past the default 1e-6 bound
// (waternsq reaches ~3e-6 at T=4 with a 200µs switch cost). The
// computation is unchanged — only FP association moves — so ablations
// accept 1e-4, still tight enough to catch real protocol corruption.
const ablationCheckTol = 1e-4

// ablate runs appName at 8 nodes with T=1 and T=4 under a modified
// configuration and reports the multi-threading speedup.
func ablate(appName string, size apps.Size, label, param string, mutate func(*cvm.Config)) (AblationRow, error) {
	wall := func(threads int) (cvm.Time, error) {
		cfg := cvm.DefaultConfig(8, threads)
		mutate(&cfg)
		st, err := apps.RunConfigTol(appName, size, cfg, ablationCheckTol)
		if err != nil {
			return 0, fmt.Errorf("harness: ablation %s=%s T=%d: %w", param, label, threads, err)
		}
		return st.Wall, nil
	}
	t1, err := wall(1)
	if err != nil {
		return AblationRow{}, err
	}
	t4, err := wall(4)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Param:      param,
		Value:      label,
		App:        appName,
		WallT1:     t1,
		WallT4:     t4,
		SpeedupPct: 100 * (float64(t1)/float64(t4) - 1),
	}, nil
}

// WriteAblation renders ablation rows.
func WriteAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(w, "Ablation:", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "param\tvalue\tapp\twall T=1\twall T=4\tMT speedup\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%v\t%v\t%+.1f%%\t\n",
			r.Param, r.Value, r.App, r.WallT1, r.WallT4, r.SpeedupPct)
	}
	tw.Flush()
}

// AblationScheduler compares the FIFO run queue (CVM's, and the paper's
// factor #3 complaint) against the LIFO memory-conscious discipline the
// paper proposes as future work, reporting cache behaviour and time.
type SchedulerRow struct {
	App          string
	LIFO         bool
	Wall         cvm.Time
	DCacheMisses int64
	ITLBMisses   int64
}

// AblationScheduler runs appName at 8 nodes × 4 threads under both
// run-queue disciplines.
func AblationScheduler(appName string, size apps.Size) ([]SchedulerRow, error) {
	return runJobs([]bool{false, true}, 0, func(lifo bool) (SchedulerRow, error) {
		cfg := cvm.DefaultConfig(8, 4)
		cfg.LIFOScheduler = lifo
		st, err := apps.RunConfigTol(appName, size, cfg, ablationCheckTol)
		if err != nil {
			return SchedulerRow{}, fmt.Errorf("harness: scheduler ablation lifo=%v: %w", lifo, err)
		}
		return SchedulerRow{
			App:          appName,
			LIFO:         lifo,
			Wall:         st.Wall,
			DCacheMisses: st.MemTotal.DCacheMisses,
			ITLBMisses:   st.MemTotal.ITLBMisses,
		}, nil
	})
}

// WriteSchedulerAblation renders the scheduler comparison.
func WriteSchedulerAblation(w io.Writer, rows []SchedulerRow) {
	fmt.Fprintln(w, "Ablation: FIFO vs LIFO thread scheduling (paper §5, factor #3)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "app\tqueue\twall\tD-cache misses\tI-TLB misses\t")
	for _, r := range rows {
		q := "FIFO"
		if r.LIFO {
			q = "LIFO"
		}
		fmt.Fprintf(tw, "%s\t%s\t%v\t%d\t%d\t\n", r.App, q, r.Wall, r.DCacheMisses, r.ITLBMisses)
	}
	tw.Flush()
}
