package harness

import (
	"testing"

	"cvm"
	"cvm/internal/apps"
)

// chaosPlan is a shared fault plan for grid determinism tests: every
// dimension active, rates high enough to force retransmissions in a
// SizeTest run.
func chaosPlan(seed uint64) *cvm.FaultPlan {
	fp, err := cvm.ParseFaults("drop=0.02,dup=0.01,reorder=0.01,jitter=200us", seed)
	if err != nil {
		panic(err)
	}
	return fp
}

// TestRunGridConfigFaultDeterminism is the fault-injection determinism
// guard: the same (seed, faults) grid must produce bit-identical Results
// at any worker count. The fault PRNG is keyed on (seed, from, to,
// msgIndex) inside each cell's private simulation, so pool scheduling
// cannot leak into the fault schedule; one shared read-only *FaultPlan
// serves every concurrent cell.
func TestRunGridConfigFaultDeterminism(t *testing.T) {
	appList := []string{"sor", "waternsq"}
	shapes := GridShapes([]int{2, 4}, []int{1, 2})
	fp := chaosPlan(42)
	mut := func(_ Key, cfg *cvm.Config) { cfg.Faults = fp }

	seq, err := RunGridConfig(appList, apps.SizeTest, shapes, mut, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunGridConfig(appList, apps.SizeTest, shapes, mut, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(par) {
		t.Fatal("faulted parallel Results differ from sequential")
	}

	// The plan must actually have injected: at these rates a full grid
	// with zero retransmissions means faults silently did not reach the
	// cells.
	var retransmits int64
	for _, st := range seq {
		retransmits += st.Total.Retransmits
	}
	if retransmits == 0 {
		t.Error("faulted grid recorded zero retransmissions")
	}

	// Repeatability: a fresh run of the same grid is bit-identical too.
	again, err := RunGridConfig(appList, apps.SizeTest, shapes, mut, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(again) {
		t.Fatal("repeated faulted grid diverged")
	}
}

// TestRunGridConfigNilMutMatchesRunGrid pins RunGridConfig's baseline:
// with no mutator it is exactly RunGridParallel.
func TestRunGridConfigNilMutMatchesRunGrid(t *testing.T) {
	appList := []string{"sor"}
	shapes := GridShapes([]int{2}, []int{1, 2})
	plain, err := RunGridParallel(appList, apps.SizeTest, shapes, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	viaCfg, err := RunGridConfig(appList, apps.SizeTest, shapes, nil, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(viaCfg) {
		t.Fatal("RunGridConfig(nil mut) differs from RunGridParallel")
	}
}
