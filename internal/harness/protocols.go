package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/core"
)

// ProtocolRow compares the two coherence protocols on one application:
// the paper's lazy multi-writer release consistency versus the
// single-writer write-invalidate baseline (the comparison of the paper's
// reference [1], Keleher ICDCS'96).
type ProtocolRow struct {
	App string

	LRCWall cvm.Time
	SWWall  cvm.Time

	LRCMsgs int64
	SWMsgs  int64

	LRCKBytes int64
	SWKBytes  int64
}

// CompareProtocols runs every application under both protocols at the
// given shape, validating results against the sequential references (so
// the single-writer protocol's coherence is exercised end to end). The
// app × protocol runs fan out over the worker pool and merge into rows
// in application order.
func CompareProtocols(appNames []string, size apps.Size, nodes, threads int, progress io.Writer, workers int) ([]ProtocolRow, error) {
	type job struct {
		name  string
		proto core.Protocol
	}
	var jobs []job
	for _, name := range appNames {
		app, err := apps.New(name, size)
		if err != nil {
			return nil, err
		}
		if !app.SupportsThreads(threads) {
			continue
		}
		for _, proto := range []core.Protocol{core.ProtocolLRC, core.ProtocolSW} {
			jobs = append(jobs, job{name, proto})
		}
	}

	sink := newProgressSink(progress)
	defer sink.Close()
	stats, err := runJobs(jobs, workers, func(j job) (cvm.Stats, error) {
		sink.Printf("running %s under %v...\n", j.name, j.proto)
		cfg := cvm.DefaultConfig(nodes, threads)
		cfg.Protocol = j.proto
		st, err := apps.RunConfig(j.name, size, cfg)
		if err != nil {
			return cvm.Stats{}, fmt.Errorf("harness: %s under %v: %w", j.name, j.proto, err)
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}

	var rows []ProtocolRow
	for i, j := range jobs {
		st := stats[i]
		if len(rows) == 0 || rows[len(rows)-1].App != j.name {
			rows = append(rows, ProtocolRow{App: j.name})
		}
		row := &rows[len(rows)-1]
		if j.proto == core.ProtocolLRC {
			row.LRCWall = st.Wall
			row.LRCMsgs = st.Net.TotalMsgs()
			row.LRCKBytes = st.Net.TotalBytes() / 1024
		} else {
			row.SWWall = st.Wall
			row.SWMsgs = st.Net.TotalMsgs()
			row.SWKBytes = st.Net.TotalBytes() / 1024
		}
	}
	return rows, nil
}

// WriteProtocols renders the protocol comparison.
func WriteProtocols(w io.Writer, rows []ProtocolRow, nodes, threads int) {
	fmt.Fprintf(w, "Protocol comparison (%d nodes x %d threads): lazy multi-writer LRC vs single-writer invalidate\n",
		nodes, threads)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "app\tLRC wall\tSW wall\tSW/LRC\tLRC msgs\tSW msgs\tLRC KB\tSW KB\t")
	for _, r := range rows {
		ratio := float64(r.SWWall) / float64(r.LRCWall)
		fmt.Fprintf(tw, "%s\t%v\t%v\t%.2fx\t%d\t%d\t%d\t%d\t\n",
			r.App, r.LRCWall, r.SWWall, ratio, r.LRCMsgs, r.SWMsgs,
			r.LRCKBytes, r.SWKBytes)
	}
	tw.Flush()
}
