package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/core"
)

// ProtocolRow compares the two coherence protocols on one application:
// the paper's lazy multi-writer release consistency versus the
// single-writer write-invalidate baseline (the comparison of the paper's
// reference [1], Keleher ICDCS'96).
type ProtocolRow struct {
	App string

	LRCWall cvm.Time
	SWWall  cvm.Time

	LRCMsgs int64
	SWMsgs  int64

	LRCKBytes int64
	SWKBytes  int64
}

// CompareProtocols runs every application under both protocols at the
// given shape, validating results against the sequential references (so
// the single-writer protocol's coherence is exercised end to end).
func CompareProtocols(appNames []string, size apps.Size, nodes, threads int, progress io.Writer) ([]ProtocolRow, error) {
	var rows []ProtocolRow
	for _, name := range appNames {
		app, err := apps.New(name, size)
		if err != nil {
			return nil, err
		}
		if !app.SupportsThreads(threads) {
			continue
		}
		row := ProtocolRow{App: name}
		for _, proto := range []core.Protocol{core.ProtocolLRC, core.ProtocolSW} {
			if progress != nil {
				fmt.Fprintf(progress, "running %s under %v...\n", name, proto)
			}
			cfg := cvm.DefaultConfig(nodes, threads)
			cfg.Protocol = proto
			st, err := apps.RunConfig(name, size, cfg)
			if err != nil {
				return nil, fmt.Errorf("harness: %s under %v: %w", name, proto, err)
			}
			if proto == core.ProtocolLRC {
				row.LRCWall = st.Wall
				row.LRCMsgs = st.Net.TotalMsgs()
				row.LRCKBytes = st.Net.TotalBytes() / 1024
			} else {
				row.SWWall = st.Wall
				row.SWMsgs = st.Net.TotalMsgs()
				row.SWKBytes = st.Net.TotalBytes() / 1024
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteProtocols renders the protocol comparison.
func WriteProtocols(w io.Writer, rows []ProtocolRow, nodes, threads int) {
	fmt.Fprintf(w, "Protocol comparison (%d nodes x %d threads): lazy multi-writer LRC vs single-writer invalidate\n",
		nodes, threads)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "app\tLRC wall\tSW wall\tSW/LRC\tLRC msgs\tSW msgs\tLRC KB\tSW KB\t")
	for _, r := range rows {
		ratio := float64(r.SWWall) / float64(r.LRCWall)
		fmt.Fprintf(tw, "%s\t%v\t%v\t%.2fx\t%d\t%d\t%d\t%d\t\n",
			r.App, r.LRCWall, r.SWWall, ratio, r.LRCMsgs, r.SWMsgs,
			r.LRCKBytes, r.SWKBytes)
	}
	tw.Flush()
}
