package harness

import (
	"strings"
	"testing"

	"cvm/internal/apps"
)

// TestGuardTransportEquivalence runs the conformance guard over the
// whole suite at test scale: the rt-loopback backend must reproduce the
// simulator's checksum bit for bit for every application.
func TestGuardTransportEquivalence(t *testing.T) {
	const nodes, threads = 4, 2
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			app, err := apps.New(name, apps.SizeTest)
			if err != nil {
				t.Fatal(err)
			}
			if !app.SupportsThreads(threads) {
				t.Skipf("%s does not support %d threads per node", name, threads)
			}
			if err := GuardTransportEquivalence(name, apps.SizeTest, nodes, threads); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGuardTransportEquivalenceRejectsBadShape(t *testing.T) {
	err := GuardTransportEquivalence("ocean", apps.SizeTest, 4, 3)
	if err == nil || !strings.Contains(err.Error(), "does not support") {
		t.Fatalf("err = %v, want unsupported-threads rejection", err)
	}
	if err := GuardTransportEquivalence("nosuch", apps.SizeTest, 4, 1); err == nil {
		t.Fatal("unknown app accepted")
	}
}
