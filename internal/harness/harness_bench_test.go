package harness

import (
	"testing"

	"cvm/internal/apps"
)

// End-to-end grid benchmarks: the regression baseline for RunGrid
// throughput (cells/sec at the test input scale). The parallel variant's
// advantage over Seq is the wall-clock win cvm-bench -experiment all
// inherits; on a single-core machine they should be within noise.

func benchmarkRunGrid(b *testing.B, workers int) {
	appList := []string{"sor", "waternsq"}
	shapes := GridShapes([]int{4}, []int{1, 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunGridParallel(appList, apps.SizeTest, shapes, nil, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunGridSeq(b *testing.B)  { benchmarkRunGrid(b, 1) }
func BenchmarkRunGridPar4(b *testing.B) { benchmarkRunGrid(b, 4) }
