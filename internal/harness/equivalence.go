package harness

import (
	"fmt"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/metrics"
	"cvm/internal/rt"
)

// The transport-equivalence guard is the real-transport backend's
// conformance oracle: the same application at the same shape must
// produce the same checksum on the deterministic simulator (netsim,
// virtual time) and on the real runtime (internal/rt over the loopback
// transport, wall time). The applications quantize every shared-sum
// contribution onto an exact binary grid (apps.qfix), which makes their
// accumulations associative in float64 — so any CORRECT release-
// consistent execution yields a bit-identical checksum regardless of
// message timing, and a checksum difference is a coherence bug, not
// floating-point noise.
//
// Two observables are compared. First the checksum. Second, the
// backend-invariant sync counters (lock acquires/releases, barrier and
// local-barrier arrivals, reductions; metrics.BackendInvariantCounters):
// each is incremented exactly once per application-level call, so the
// program — not the protocol — determines them and they must match
// exactly across backends. Everything else (wall time, wait
// breakdowns, fault and message counts) is exempt by design: the
// simulator charges the paper's calibrated costs in deterministic
// virtual time under a lazy protocol, while the real runtime pays
// actual wall time under a home-based eager one — those numbers
// measure different machines and are not comparable. See DESIGN.md
// §11 and §13.

// TransportProbe captures one backend's run of an application.
type TransportProbe struct {
	Backend  string // "sim" or "loopback"
	Checksum float64
}

// GuardTransportEquivalence runs app at the given shape on both the
// simulator and the rt-loopback backend and returns an error unless
// the checksums match exactly (both runs must also verify against the
// app's sequential reference) and every backend-invariant sync counter
// agrees. A nil error is the conformance verdict.
func GuardTransportEquivalence(app string, size apps.Size, nodes, threads int) error {
	a, err := apps.New(app, size)
	if err != nil {
		return err
	}
	if !a.SupportsThreads(threads) {
		return fmt.Errorf("harness: %s does not support %d threads per node", app, threads)
	}

	reg := cvm.NewMetrics()
	cfg := cvm.DefaultConfig(nodes, threads)
	cfg.Metrics = reg
	_, simSum, err := apps.RunConfigFull(app, size, cfg, 0)
	if err != nil {
		return fmt.Errorf("harness: sim backend: %w", err)
	}

	rtSum, rtSnap, err := runLoopbackProbe(app, size, nodes, threads)
	if err != nil {
		return err
	}
	if rtSum != simSum {
		return fmt.Errorf("harness: transport equivalence violation in %s %dx%d: loopback checksum %v, sim %v",
			app, nodes, threads, rtSum, simSum)
	}
	simCounts := invariantCounts(reg.Snapshot())
	rtCounts := invariantCounts(rtSnap)
	for _, name := range metrics.BackendInvariantCounters() {
		if simCounts[name] != rtCounts[name] {
			return fmt.Errorf("harness: transport equivalence violation in %s %dx%d: %s is %d on loopback, %d on sim",
				app, nodes, threads, name, rtCounts[name], simCounts[name])
		}
	}
	return nil
}

// invariantCounts extracts the backend-invariant counters by JSON name.
func invariantCounts(s *metrics.Snapshot) map[string]int64 {
	want := make(map[string]bool)
	for _, name := range metrics.BackendInvariantCounters() {
		want[name] = true
	}
	out := make(map[string]int64)
	s.EachCounter(func(name string, c *metrics.Counter) {
		if want[name] {
			out[name] = int64(*c)
		}
	})
	return out
}

// runLoopbackProbe executes one application on the real runtime over
// the in-process loopback transport and returns its checksum and
// wall-clock metrics snapshot, after validating the result against the
// sequential reference.
func runLoopbackProbe(app string, size apps.Size, nodes, threads int) (float64, *metrics.Snapshot, error) {
	a, err := apps.New(app, size)
	if err != nil {
		return 0, nil, err
	}
	rcfg := rt.DefaultConfig(nodes, threads)
	met := rt.NewMetrics()
	rcfg.Metrics = met
	cl, err := rt.NewCluster(rcfg)
	if err != nil {
		return 0, nil, err
	}
	if err := a.Setup(cl); err != nil {
		return 0, nil, fmt.Errorf("harness: loopback backend: %w", err)
	}
	if _, err := cl.RunLoopback(a.Main); err != nil {
		return 0, nil, fmt.Errorf("harness: loopback backend: %w", err)
	}
	if err := a.Check(); err != nil {
		return 0, nil, fmt.Errorf("harness: loopback backend: %w", err)
	}
	return a.Checksum(), met.Snapshot(), nil
}
