package harness

import (
	"fmt"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/rt"
)

// The transport-equivalence guard is the real-transport backend's
// conformance oracle: the same application at the same shape must
// produce the same checksum on the deterministic simulator (netsim,
// virtual time) and on the real runtime (internal/rt over the loopback
// transport, wall time). The applications quantize every shared-sum
// contribution onto an exact binary grid (apps.qfix), which makes their
// accumulations associative in float64 — so any CORRECT release-
// consistent execution yields a bit-identical checksum regardless of
// message timing, and a checksum difference is a coherence bug, not
// floating-point noise.
//
// Only the checksum is compared. Virtual-time statistics (wall time,
// wait breakdowns, message counts) are exempt by design: the simulator
// charges the paper's calibrated costs in deterministic virtual time,
// while the real runtime pays actual wall time under a different (home-
// based, eager) protocol — their timings and message counts measure
// different machines and are not comparable. The checksum is the one
// observable both engines must agree on. See DESIGN.md §11.

// TransportProbe captures one backend's run of an application.
type TransportProbe struct {
	Backend  string // "sim" or "loopback"
	Checksum float64
}

// GuardTransportEquivalence runs app at the given shape on both the
// simulator and the rt-loopback backend and returns an error unless the
// checksums match exactly (both runs must also verify against the
// app's sequential reference). A nil error is the conformance verdict.
func GuardTransportEquivalence(app string, size apps.Size, nodes, threads int) error {
	a, err := apps.New(app, size)
	if err != nil {
		return err
	}
	if !a.SupportsThreads(threads) {
		return fmt.Errorf("harness: %s does not support %d threads per node", app, threads)
	}

	_, simSum, err := apps.RunConfigFull(app, size, cvm.DefaultConfig(nodes, threads), 0)
	if err != nil {
		return fmt.Errorf("harness: sim backend: %w", err)
	}

	rtSum, err := runLoopbackProbe(app, size, nodes, threads)
	if err != nil {
		return err
	}
	if rtSum != simSum {
		return fmt.Errorf("harness: transport equivalence violation in %s %dx%d: loopback checksum %v, sim %v",
			app, nodes, threads, rtSum, simSum)
	}
	return nil
}

// runLoopbackProbe executes one application on the real runtime over
// the in-process loopback transport and returns its checksum, after
// validating it against the sequential reference.
func runLoopbackProbe(app string, size apps.Size, nodes, threads int) (float64, error) {
	a, err := apps.New(app, size)
	if err != nil {
		return 0, err
	}
	cl, err := rt.NewCluster(rt.DefaultConfig(nodes, threads))
	if err != nil {
		return 0, err
	}
	if err := a.Setup(cl); err != nil {
		return 0, fmt.Errorf("harness: loopback backend: %w", err)
	}
	if _, err := cl.RunLoopback(a.Main); err != nil {
		return 0, fmt.Errorf("harness: loopback backend: %w", err)
	}
	if err := a.Check(); err != nil {
		return 0, fmt.Errorf("harness: loopback backend: %w", err)
	}
	return a.Checksum(), nil
}
