//go:build !race

package harness

// raceEnabled reports whether the race detector is compiled in; the
// race-tagged twin of this file flips it.
const raceEnabled = false
