package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"
)

// DefaultParallelism is the worker count used when callers do not choose
// one: every available CPU. Each grid cell is one single-threaded
// deterministic simulation, so cells scale across cores with no effect on
// results.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// clampWorkers normalizes a requested worker count for a job list.
func clampWorkers(workers, jobs int) int {
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// progressSink serializes progress lines from concurrent workers into a
// single writer goroutine, so interleaved experiments never tear lines.
type progressSink struct {
	lines chan string
	done  chan struct{}
}

// newProgressSink starts the single writer goroutine; it returns nil for
// a nil writer (progress disabled). Close must be called to flush.
func newProgressSink(w io.Writer) *progressSink {
	if w == nil {
		return nil
	}
	s := &progressSink{lines: make(chan string, 64), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		for line := range s.lines {
			io.WriteString(w, line)
		}
	}()
	return s
}

// Printf queues one progress line. Safe for concurrent use; a nil sink
// discards.
func (s *progressSink) Printf(format string, args ...any) {
	if s == nil {
		return
	}
	s.lines <- fmt.Sprintf(format, args...)
}

// Close flushes queued lines and stops the writer goroutine.
func (s *progressSink) Close() {
	if s == nil {
		return
	}
	close(s.lines)
	<-s.done
}

// runJobs fans jobs out over a worker pool and returns their results in
// job order, so output built from the slice is deterministic regardless
// of completion order. On error it returns the failure of the
// lowest-indexed failing job (the same one a sequential loop would have
// reported first, had it kept going past earlier successes).
func runJobs[J, R any](jobs []J, workers int, run func(J) (R, error)) ([]R, error) {
	results := make([]R, len(jobs))
	errs := make([]error, len(jobs))
	workers = clampWorkers(workers, len(jobs))

	if workers == 1 {
		// Strictly sequential: no goroutines, so single-worker runs keep
		// the exact allocation and scheduling profile of the old loop.
		for i, j := range jobs {
			r, err := run(j)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = run(jobs[i])
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
