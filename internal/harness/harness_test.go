package harness

import (
	"strings"
	"testing"

	"cvm/internal/apps"
)

// smallGrid runs a compact grid shared by the table tests.
func smallGrid(t *testing.T) Results {
	t.Helper()
	res, err := RunGrid([]string{"sor", "waternsq"}, apps.SizeTest,
		GridShapes([]int{4}, []int{1, 2}), nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunGridSkipsUnsupported(t *testing.T) {
	res, err := RunGrid([]string{"ocean"}, apps.SizeTest,
		GridShapes([]int{2}, []int{1, 2, 3, 4}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res[Key{"ocean", 2, 3}]; ok {
		t.Error("grid contains ocean at 3 threads; must be skipped")
	}
	if _, ok := res[Key{"ocean", 2, 2}]; !ok {
		t.Error("grid missing ocean at 2 threads")
	}
}

func TestFigure1Normalization(t *testing.T) {
	res := smallGrid(t)
	rows := Figure1(res, []string{"sor", "waternsq"}, []int{4}, []int{1, 2})
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Threads == 1 && (r.Norm < 0.999 || r.Norm > 1.001) {
			t.Errorf("%s T=1 norm = %v, want 1.0", r.App, r.Norm)
		}
		sum := r.User + r.Barrier + r.Fault + r.Lock
		if sum < r.Norm*0.999 || sum > r.Norm*1.001 {
			t.Errorf("%s T=%d components sum %v != norm %v", r.App, r.Threads, sum, r.Norm)
		}
	}
}

func TestTable2Consistency(t *testing.T) {
	res := smallGrid(t)
	for _, r := range Table2(res, []string{"sor", "waternsq"}, 4, []int{1, 2}) {
		if got := r.BarrierMsgs + r.LockMsgs + r.DiffMsgs; got != r.TotalMsgs {
			t.Errorf("%s T=%d: class sum %d != total %d", r.App, r.Threads, got, r.TotalMsgs)
		}
		if r.App == "sor" && r.LockMsgs != 0 {
			t.Errorf("sor lock msgs = %d, want 0", r.LockMsgs)
		}
		if r.App == "waternsq" && r.LockMsgs == 0 {
			t.Error("waternsq lock msgs = 0, want > 0")
		}
	}
}

func TestTable3MultithreadingEffects(t *testing.T) {
	res := smallGrid(t)
	rows := Table3(res, []string{"sor"}, 4, []int{1, 2})
	if rows[0].ThreadSwitches != 0 {
		// T=1 has only scheduler drains; no useful switches between
		// distinct application threads beyond startup.
		t.Logf("note: single-thread switches = %d", rows[0].ThreadSwitches)
	}
	if rows[1].ThreadSwitches == 0 {
		t.Error("T=2 thread switches = 0, want > 0")
	}
	if rows[1].OutstandingFaults == 0 {
		t.Error("T=2 outstanding faults = 0, want > 0 (overlap)")
	}
	if rows[0].OutstandingFaults != 0 {
		t.Errorf("T=1 outstanding faults = %d, want 0", rows[0].OutstandingFaults)
	}
}

func TestTable4Percentages(t *testing.T) {
	res := smallGrid(t)
	rows := Table4(res, []string{"sor"}, []int{4}, []int{2})
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if rows[0].TotalMsgs == "" || rows[0].DiffsCreated == "" {
		t.Error("empty percentage cells")
	}
}

func TestPct(t *testing.T) {
	tests := []struct {
		now, base int64
		want      string
	}{
		{110, 100, "+10%"},
		{90, 100, "-10%"},
		{100, 100, "+0%"},
		{0, 0, "0%"},
		{5, 0, "n/a"},
		{-5, 0, "n/a"},        // zero base with a negative delta
		{0, 100, "-100%"},     // everything eliminated
		{25, 100, "-75%"},     // negative delta
		{300, 100, "+200%"},   // multiples
		{1004, 1000, "+0%"},   // rounds toward zero change
		{1006, 1000, "+1%"},   // rounds up
		{995, 1000, "-0%"},    // tiny negative delta rounds to -0
		{994, 1000, "-1%"},    // rounds down
	}
	for _, tt := range tests {
		if got := pct(tt.now, tt.base); got != tt.want {
			t.Errorf("pct(%d,%d) = %q, want %q", tt.now, tt.base, got, tt.want)
		}
	}
}

func TestTable5Speedups(t *testing.T) {
	rows, err := Table5(apps.SizeTest, 4, []int{1, 2}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Threads == 1 && r.SpeedupPct != 0 {
			t.Errorf("%s T=1 speedup = %v, want 0", r.Variant, r.SpeedupPct)
		}
	}
	// Block Same Lock: zero for the local-barrier variants, positive for
	// NoOpts at T=2 (Table 5's signature result).
	for _, r := range rows {
		switch {
		case r.Variant == "waternsq-noopts" && r.Threads == 2 && r.BlockSameLock == 0:
			t.Error("NoOpts T=2 BlockSameLock = 0, want > 0")
		case r.Variant != "waternsq-noopts" && r.BlockSameLock != 0:
			t.Errorf("%s T=%d BlockSameLock = %d, want 0", r.Variant, r.Threads, r.BlockSameLock)
		}
	}
}

func TestMeasureCosts(t *testing.T) {
	c, err := MeasureCosts()
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name   string
		got    int64
		lo, hi int64
	}{
		{"2-hop lock", int64(c.TwoHopLock), 890_000, 990_000},
		{"3-hop lock", int64(c.ThreeHopLock), 1_330_000, 1_460_000},
		{"page fault", int64(c.PageFault), 950_000, 1_260_000},
		{"barrier", int64(c.Barrier8), 1_400_000, 2_600_000},
		{"thread switch", int64(c.ThreadSwitch), 8_000, 8_000},
	}
	for _, ck := range checks {
		if ck.got < ck.lo || ck.got > ck.hi {
			t.Errorf("%s = %dns, want within [%d, %d]", ck.name, ck.got, ck.lo, ck.hi)
		}
	}
}

func TestWritersProduceOutput(t *testing.T) {
	res := smallGrid(t)
	var sb strings.Builder
	WriteFigure1(&sb, res, []string{"sor", "waternsq"}, []int{4}, []int{1, 2})
	WriteTable2(&sb, res, []string{"sor", "waternsq"}, 4, []int{1, 2})
	WriteTable3(&sb, res, []string{"sor", "waternsq"}, 4, []int{1, 2})
	WriteTable4(&sb, res, []string{"sor", "waternsq"}, []int{4}, []int{2})
	WriteFigure2(&sb, res, []string{"sor", "waternsq"}, 4, []int{1, 2})
	out := sb.String()
	for _, want := range []string{"Figure 1", "Table 2", "Table 3", "Table 4", "Figure 2", "sor", "waternsq"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAblationSwitchCost(t *testing.T) {
	rows, err := AblationSwitchCost("waternsq", apps.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// The multi-threading benefit must erode as switches get expensive
	// (the paper's limiting factor #5).
	if rows[0].SpeedupPct <= rows[len(rows)-1].SpeedupPct {
		t.Errorf("speedup at 8µs (%+.1f%%) not greater than at 1ms (%+.1f%%)",
			rows[0].SpeedupPct, rows[len(rows)-1].SpeedupPct)
	}
}

func TestAblationWireLatency(t *testing.T) {
	rows, err := AblationWireLatency("waternsq", apps.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// The benefit must grow with remote latency (the paper's premise).
	if rows[len(rows)-1].SpeedupPct <= rows[0].SpeedupPct {
		t.Errorf("speedup at 4x latency (%+.1f%%) not greater than at 0.5x (%+.1f%%)",
			rows[len(rows)-1].SpeedupPct, rows[0].SpeedupPct)
	}
	var sb strings.Builder
	WriteAblation(&sb, "wire", rows)
	if !strings.Contains(sb.String(), "wire-latency") {
		t.Error("WriteAblation output missing param name")
	}
}

func TestAblationScheduler(t *testing.T) {
	rows, err := AblationScheduler("sor", apps.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].LIFO || !rows[1].LIFO {
		t.Fatalf("rows = %+v, want FIFO then LIFO", rows)
	}
	for _, r := range rows {
		if r.Wall <= 0 {
			t.Errorf("lifo=%v wall = %v, want > 0", r.LIFO, r.Wall)
		}
	}
}

func TestCompareProtocols(t *testing.T) {
	rows, err := CompareProtocols([]string{"sor", "waternsq"}, apps.SizeTest, 4, 2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.LRCWall <= 0 || r.SWWall <= 0 {
			t.Errorf("%s: non-positive wall times %v / %v", r.App, r.LRCWall, r.SWWall)
		}
	}
	// Water-Nsq's falsely-shared force pages must cost the single-writer
	// protocol far more data movement (whole pages ping-pong).
	for _, r := range rows {
		if r.App == "waternsq" && r.SWKBytes <= r.LRCKBytes {
			t.Errorf("waternsq: SW bytes %d not greater than LRC %d", r.SWKBytes, r.LRCKBytes)
		}
	}
	var sb strings.Builder
	WriteProtocols(&sb, rows, 4, 2)
	if !strings.Contains(sb.String(), "single-writer") {
		t.Error("WriteProtocols output missing header")
	}
}

func TestRemainingWriters(t *testing.T) {
	var sb strings.Builder
	WriteCosts(&sb, Costs{TwoHopLock: 930000, ThreeHopLock: 1395000,
		PageFault: 1196000, Barrier8: 1699000, ThreadSwitch: 8000})
	WriteSchedulerAblation(&sb, []SchedulerRow{
		{App: "sor", LIFO: false, Wall: 1000, DCacheMisses: 10, ITLBMisses: 1},
		{App: "sor", LIFO: true, Wall: 900, DCacheMisses: 9, ITLBMisses: 1},
	})
	WriteTable5(&sb, []Table5Row{{Variant: "waternsq", Threads: 2, SpeedupPct: 6.6}})
	out := sb.String()
	for _, want := range []string{"937µs", "FIFO", "LIFO", "Table 5", "waternsq"} {
		if !strings.Contains(out, want) {
			t.Errorf("writer output missing %q", want)
		}
	}
}
