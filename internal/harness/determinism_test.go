package harness

import (
	"testing"

	"cvm"
	"cvm/internal/apps"
)

// TestGuardDeterminismFaultFree proves byte-identical artifacts across
// three worker counts on a fault-free run (the acceptance bar).
func TestGuardDeterminismFaultFree(t *testing.T) {
	if err := GuardDeterminism("sor", apps.SizeTest, 4, 4, []int{1, 2, 4}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestGuardDeterminismUnderFaults proves the same identity under an
// adversarial fault schedule: fault rolls consume PRNG state in
// delivery order, so any commit-order nondeterminism would surface as
// divergent retransmission counts or checksums.
func TestGuardDeterminismUnderFaults(t *testing.T) {
	fp, err := cvm.ParseFaults("drop=0.02,dup=0.01,reorder=0.02,jitter=300us", 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := GuardDeterminism("waternsq", apps.SizeTest, 4, 2, []int{1, 2, 4}, fp); err != nil {
		t.Fatal(err)
	}
}

// TestGuardDeterminismAdaptive holds adapted runs to the same bar: with
// per-page mode switching and thread migration on, every artifact —
// checksum, statistics, metrics report, Chrome trace — must stay
// byte-identical across worker counts and across repeated runs (the
// duplicated leading count), fault-free.
func TestGuardDeterminismAdaptive(t *testing.T) {
	for _, app := range []string{"sor", "barnes"} {
		if err := GuardDeterminismAdaptive(app, apps.SizeTest, 4, 2, []int{1, 1, 2, 4}, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGuardDeterminismAdaptiveUnderFaults is the adapted variant of the
// fault-schedule guard: retransmission timing must not leak into the
// classifier's observations or the migration orders.
func TestGuardDeterminismAdaptiveUnderFaults(t *testing.T) {
	fp, err := cvm.ParseFaults("drop=0.02,dup=0.01,reorder=0.02,jitter=300us", 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := GuardDeterminismAdaptive("sor", apps.SizeTest, 4, 2, []int{1, 1, 2, 4}, fp); err != nil {
		t.Fatal(err)
	}
}
