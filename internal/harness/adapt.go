package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cvm"
	"cvm/internal/apps"
)

// AdaptiveRow compares one application's baseline run (plain LRC) with
// its adaptive run (per-page mode switching, plus thread migration when
// the app is migration-safe). Delays are the Figure-1 non-overlapped
// components whose dominant term the adaptive protocol targets.
type AdaptiveRow struct {
	App      string
	Migrated bool // migration was enabled (app is migration-safe)

	BaseWall  cvm.Time
	AdaptWall cvm.Time

	BaseFaultWait  cvm.Time
	AdaptFaultWait cvm.Time

	BaseBarrierWait  cvm.Time
	AdaptBarrierWait cvm.Time

	BaseLockWait  cvm.Time
	AdaptLockWait cvm.Time

	BaseMsgs  int64
	AdaptMsgs int64

	BaseKBytes  int64
	AdaptKBytes int64

	ModeChanges int64
	Migrations  int64
	UpdateHits  int64
}

// DominantCost names the largest baseline Figure-1 remote-cost component
// (fault, barrier or lock wait) and reports its baseline and adaptive
// values. That component is the paper's per-app bottleneck; the adaptive
// protocol's win condition is reducing it.
func (r *AdaptiveRow) DominantCost() (name string, base, adapted cvm.Time) {
	name, base, adapted = "fault", r.BaseFaultWait, r.AdaptFaultWait
	if r.BaseBarrierWait > base {
		name, base, adapted = "barrier", r.BaseBarrierWait, r.AdaptBarrierWait
	}
	if r.BaseLockWait > base {
		name, base, adapted = "lock", r.BaseLockWait, r.AdaptLockWait
	}
	return name, base, adapted
}

// CompareAdaptive runs every application with and without the adaptive
// protocol at the given shape. Thread migration is enabled on the
// adaptive side for migration-safe apps only (apps.Migratable). Every
// run still validates against its sequential reference, so the adaptive
// protocol's coherence is exercised end to end. The app × variant runs
// fan out over the worker pool and merge into rows in application order.
func CompareAdaptive(appNames []string, size apps.Size, nodes, threads int, progress io.Writer, workers int) ([]AdaptiveRow, error) {
	type job struct {
		name  string
		adapt bool
	}
	var jobs []job
	for _, name := range appNames {
		app, err := apps.New(name, size)
		if err != nil {
			return nil, err
		}
		if !app.SupportsThreads(threads) {
			continue
		}
		for _, adapt := range []bool{false, true} {
			jobs = append(jobs, job{name, adapt})
		}
	}

	sink := newProgressSink(progress)
	defer sink.Close()
	stats, err := runJobs(jobs, workers, func(j job) (cvm.Stats, error) {
		variant := "baseline"
		if j.adapt {
			variant = "adaptive"
		}
		sink.Printf("running %s (%s)...\n", j.name, variant)
		cfg := cvm.DefaultConfig(nodes, threads)
		if j.adapt {
			cfg.Adapt = true
			cfg.Migrate = apps.Migratable(j.name)
		}
		st, err := apps.RunConfig(j.name, size, cfg)
		if err != nil {
			return cvm.Stats{}, fmt.Errorf("harness: %s (%s): %w", j.name, variant, err)
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}

	var rows []AdaptiveRow
	for i, j := range jobs {
		st := stats[i]
		if len(rows) == 0 || rows[len(rows)-1].App != j.name {
			rows = append(rows, AdaptiveRow{App: j.name, Migrated: apps.Migratable(j.name)})
		}
		row := &rows[len(rows)-1]
		if j.adapt {
			row.AdaptWall = st.Wall
			row.AdaptFaultWait = st.Total.FaultWait
			row.AdaptBarrierWait = st.Total.BarrierWait
			row.AdaptLockWait = st.Total.LockWait
			row.AdaptMsgs = st.Net.TotalMsgs()
			row.AdaptKBytes = st.Net.TotalBytes() / 1024
			row.ModeChanges = st.Total.ModeChanges
			row.Migrations = st.Total.Migrations
			row.UpdateHits = st.Total.UpdateHits
		} else {
			row.BaseWall = st.Wall
			row.BaseFaultWait = st.Total.FaultWait
			row.BaseBarrierWait = st.Total.BarrierWait
			row.BaseLockWait = st.Total.LockWait
			row.BaseMsgs = st.Net.TotalMsgs()
			row.BaseKBytes = st.Net.TotalBytes() / 1024
		}
	}
	return rows, nil
}

// WriteAdaptive renders the adaptive-protocol comparison: per app, the
// dominant baseline remote cost and how the adaptive run changed it,
// plus wall time, traffic, and the adaptation activity counters.
func WriteAdaptive(w io.Writer, rows []AdaptiveRow, nodes, threads int) {
	fmt.Fprintf(w, "Adaptive protocol (%d nodes x %d threads): per-page mode switching + thread migration vs plain LRC\n",
		nodes, threads)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "app\tdominant\tbase\tadaptive\tchange\tbase wall\tadapt wall\tbase msgs\tadapt msgs\tmodes\tmigr\tupd hits\t")
	for i := range rows {
		r := &rows[i]
		name, base, adapted := r.DominantCost()
		change := "-"
		if base > 0 {
			change = fmt.Sprintf("%+.1f%%", (float64(adapted)/float64(base)-1)*100)
		}
		fmt.Fprintf(tw, "%s\t%s\t%v\t%v\t%s\t%v\t%v\t%d\t%d\t%d\t%d\t%d\t\n",
			r.App, name, base, adapted, change, r.BaseWall, r.AdaptWall,
			r.BaseMsgs, r.AdaptMsgs, r.ModeChanges, r.Migrations, r.UpdateHits)
	}
	tw.Flush()
}
