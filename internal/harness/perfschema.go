package harness

import "encoding/json"

// PerfBaseline is the schema of BENCH_harness.json: an end-to-end
// sequential-vs-parallel harness comparison plus hot-path
// microbenchmarks. cvm-bench's perf experiment writes it; cvm-metrics
// compare reads it to gate allocation and throughput regressions.
type PerfBaseline struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Size       string `json:"size"`

	Grid PerfGrid `json:"grid"`

	// Engine is the intra-run parallelism section: the same small grid
	// on the conservative windowed engine at 1 worker and at
	// Engine.Workers workers, with byte-identical results required.
	Engine PerfEngine `json:"engine"`

	// Phases are the perf experiment's per-phase host wall times, each
	// tagged with the concurrency that produced it (grid-pool workers
	// for the grid phases, engine workers for the engine phases).
	Phases []PerfPhase `json:"phases,omitempty"`

	Micro []MicroResult `json:"micro"`

	// DiffWire records the compressed diff encoding's wire size against
	// the raw run encoding on the fixed wire patterns, so the compression
	// win is gated (cvm-metrics enforces absolute ratio caps), not
	// anecdotal.
	DiffWire []DiffWireResult `json:"diff_wire,omitempty"`
}

// DiffWireResult is one wire pattern's encoded-vs-raw size.
type DiffWireResult struct {
	Pattern      string  `json:"pattern"`
	RawBytes     int     `json:"raw_bytes"`
	EncodedBytes int     `json:"encoded_bytes"`
	Ratio        float64 `json:"ratio"`
}

// PerfEngine is the conservative-windowed-engine portion of a perf
// baseline. Speedup compares one engine worker against Workers engine
// workers on the same host; on a single-core host it records the
// window-coordination overhead rather than a speedup (see DESIGN §6).
type PerfEngine struct {
	Workers    int     `json:"workers"`
	Cores      int     `json:"cores"`
	SeqSeconds float64 `json:"seq_seconds"`
	ParSeconds float64 `json:"par_seconds"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"results_identical"`
}

// PerfPhase is one perf-experiment phase's host wall time.
type PerfPhase struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
}

// PerfGrid is the grid-throughput portion of a perf baseline.
type PerfGrid struct {
	Cells       int     `json:"cells"`
	Workers     int     `json:"workers"`
	SeqSeconds  float64 `json:"seq_seconds"`
	ParSeconds  float64 `json:"par_seconds"`
	SeqCellsSec float64 `json:"seq_cells_per_sec"`
	ParCellsSec float64 `json:"par_cells_per_sec"`
	Speedup     float64 `json:"speedup"`
	Identical   bool    `json:"results_identical"`
}

// MicroResult is one microbenchmark's time and allocation cost.
type MicroResult struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// ReadPerfBaseline parses a BENCH_harness.json payload.
func ReadPerfBaseline(data []byte) (*PerfBaseline, error) {
	var b PerfBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, err
	}
	return &b, nil
}
