package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/netsim"
)

// Table2Row is one row of Table 2: non-overlapped delays, message counts
// per class, and bandwidth.
type Table2Row struct {
	App     string
	Threads int

	BarrierDelayMs float64
	LockDelayMs    float64
	DiffDelayMs    float64
	// Update pushes and thread migrations carry no non-overlapped thread
	// delay of their own (pushes are asynchronous; migration overlaps the
	// barrier wait), so their delay columns stay zero; the columns exist
	// so every message class has the same Table 2 shape.
	UpdateDelayMs  float64
	MigrateDelayMs float64

	BarrierMsgs int64
	LockMsgs    int64
	DiffMsgs    int64
	UpdateMsgs  int64
	MigrateMsgs int64
	TotalMsgs   int64
	BWKBytes    int64
}

// Table2 builds the communication-performance table at the given node
// count (the paper uses 8 processors).
func Table2(res Results, appNames []string, nodes int, threads []int) []Table2Row {
	var rows []Table2Row
	for _, name := range appNames {
		for _, t := range threads {
			st, ok := res[Key{name, nodes, t}]
			if !ok {
				continue
			}
			rows = append(rows, Table2Row{
				App:            name,
				Threads:        t,
				BarrierDelayMs: st.Total.BarrierWait.Milliseconds(),
				LockDelayMs:    st.Total.LockWait.Milliseconds(),
				DiffDelayMs:    st.Total.FaultWait.Milliseconds(),
				BarrierMsgs:    st.Net.Msgs[netsim.ClassBarrier],
				LockMsgs:       st.Net.Msgs[netsim.ClassLock],
				DiffMsgs:       st.Net.Msgs[netsim.ClassDiff],
				UpdateMsgs:     st.Net.Msgs[netsim.ClassUpdate],
				MigrateMsgs:    st.Net.Msgs[netsim.ClassMigrate],
				TotalMsgs:      st.Net.TotalMsgs(),
				BWKBytes:       st.Net.TotalBytes() / 1024,
			})
		}
	}
	return rows
}

// WriteTable2 renders Table 2.
func WriteTable2(w io.Writer, res Results, appNames []string, nodes int, threads []int) {
	fmt.Fprintf(w, "Table 2: Communication Performance (%d processors)\n", nodes)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "app\tT\tbarrier ms\tlock ms\tdiff ms\tbarrier msgs\tlock msgs\tdiff msgs\ttotal msgs\tBW KB\t")
	for _, r := range Table2(res, appNames, nodes, threads) {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.0f\t%d\t%d\t%d\t%d\t%d\t\n",
			r.App, r.Threads, r.BarrierDelayMs, r.LockDelayMs, r.DiffDelayMs,
			r.BarrierMsgs, r.LockMsgs, r.DiffMsgs, r.TotalMsgs, r.BWKBytes)
	}
	tw.Flush()
}

// Table3Row is one row of Table 3: the low-level DSM action counters.
type Table3Row struct {
	App     string
	Threads int

	ThreadSwitches    int64
	RemoteFaults      int64
	RemoteLocks       int64
	OutstandingFaults int64
	OutstandingLocks  int64
	BlockSamePage     int64
	BlockSameLock     int64
	DiffsCreated      int64
	DiffsUsed         int64
}

// Table3 builds the DSM-actions table at the given node count.
func Table3(res Results, appNames []string, nodes int, threads []int) []Table3Row {
	var rows []Table3Row
	for _, name := range appNames {
		for _, t := range threads {
			st, ok := res[Key{name, nodes, t}]
			if !ok {
				continue
			}
			rows = append(rows, table3Row(name, t, st))
		}
	}
	return rows
}

func table3Row(name string, t int, st cvm.Stats) Table3Row {
	return Table3Row{
		App:               name,
		Threads:           t,
		ThreadSwitches:    st.Total.ThreadSwitches,
		RemoteFaults:      st.Total.RemoteFaults,
		RemoteLocks:       st.Total.RemoteLocks,
		OutstandingFaults: st.Total.OutstandingFaults,
		OutstandingLocks:  st.Total.OutstandingLocks,
		BlockSamePage:     st.Total.BlockSamePage,
		BlockSameLock:     st.Total.BlockSameLock,
		DiffsCreated:      st.Total.DiffsCreated,
		DiffsUsed:         st.Total.DiffsUsed,
	}
}

// WriteTable3 renders Table 3.
func WriteTable3(w io.Writer, res Results, appNames []string, nodes int, threads []int) {
	fmt.Fprintf(w, "Table 3: DSM Actions (%d processors)\n", nodes)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "app\tT\tswitches\trem faults\trem locks\tout faults\tout locks\tblk page\tblk lock\tdiffs made\tdiffs used\t")
	for _, r := range Table3(res, appNames, nodes, threads) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			r.App, r.Threads, r.ThreadSwitches, r.RemoteFaults, r.RemoteLocks,
			r.OutstandingFaults, r.OutstandingLocks, r.BlockSamePage,
			r.BlockSameLock, r.DiffsCreated, r.DiffsUsed)
	}
	tw.Flush()
}

// Table4Row is one row of Table 4: relative change of communication
// quantities versus the single-threaded run at the same node count.
type Table4Row struct {
	App     string
	Nodes   int
	Threads int

	TotalMsgs    string
	BWKBytes     string
	RemoteFaults string
	DiffsCreated string
}

// Table4 builds the scalability table: Δ% at T versus T=1 for each node
// count. The paper reports 4, 8 and 16 processors with T ∈ {2, 4}.
func Table4(res Results, appNames []string, nodes []int, threads []int) []Table4Row {
	var rows []Table4Row
	for _, name := range appNames {
		for _, p := range nodes {
			base, ok := res[Key{name, p, 1}]
			if !ok {
				continue
			}
			for _, t := range threads {
				st, ok := res[Key{name, p, t}]
				if !ok {
					continue
				}
				rows = append(rows, Table4Row{
					App:          name,
					Nodes:        p,
					Threads:      t,
					TotalMsgs:    pct(st.Net.TotalMsgs(), base.Net.TotalMsgs()),
					BWKBytes:     pct(st.Net.TotalBytes(), base.Net.TotalBytes()),
					RemoteFaults: pct(st.Total.RemoteFaults, base.Total.RemoteFaults),
					DiffsCreated: pct(st.Total.DiffsCreated, base.Total.DiffsCreated),
				})
			}
		}
	}
	return rows
}

// WriteTable4 renders Table 4.
func WriteTable4(w io.Writer, res Results, appNames []string, nodes []int, threads []int) {
	fmt.Fprintln(w, "Table 4: Scalability (change vs single-threaded at same node count)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "app\tP\tT\ttotal msgs\tBW\tremote faults\tdiffs created\t")
	for _, r := range Table4(res, appNames, nodes, threads) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%s\t%s\t\n",
			r.App, r.Nodes, r.Threads, r.TotalMsgs, r.BWKBytes, r.RemoteFaults,
			r.DiffsCreated)
	}
	tw.Flush()
}

// Table5Row is one row of the Water-Nsq case study: variant × threading
// level, with speedup versus the variant's own single-threaded run.
type Table5Row struct {
	Variant string
	Threads int

	SpeedupPct float64
	Table3Row
}

// Table5 runs the Water-Nsq variants at the paper's 8-processor setup and
// builds the optimization case-study table. The variant × thread cells
// fan out over the worker pool; speedups versus each variant's own T=1
// run are computed in a deterministic post-pass.
func Table5(size apps.Size, nodes int, threads []int, progress io.Writer, workers int) ([]Table5Row, error) {
	variants := []string{"waternsq-noopts", "waternsq-localbarrier", "waternsq"}
	type job struct {
		variant string
		threads int
	}
	var jobs []job
	for _, variant := range variants {
		for _, t := range threads {
			jobs = append(jobs, job{variant, t})
		}
	}

	sink := newProgressSink(progress)
	defer sink.Close()
	stats, err := runJobs(jobs, workers, func(j job) (cvm.Stats, error) {
		sink.Printf("running %s %dx%d...\n", j.variant, nodes, j.threads)
		st, err := apps.Run(j.variant, size, nodes, j.threads)
		if err != nil {
			return cvm.Stats{}, fmt.Errorf("harness: table5 %s T=%d: %w", j.variant, j.threads, err)
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}

	base := make(map[string]cvm.Time, len(variants))
	for i, j := range jobs {
		if j.threads == 1 {
			base[j.variant] = stats[i].Wall
		}
	}
	rows := make([]Table5Row, 0, len(jobs))
	for i, j := range jobs {
		st := stats[i]
		speedup := 0.0
		if st.Wall > 0 && base[j.variant] > 0 {
			speedup = (float64(base[j.variant])/float64(st.Wall) - 1) * 100
		}
		rows = append(rows, Table5Row{
			Variant:    j.variant,
			Threads:    j.threads,
			SpeedupPct: speedup,
			Table3Row:  table3Row(j.variant, j.threads, st),
		})
	}
	return rows, nil
}

// WriteTable5 renders Table 5.
func WriteTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "Table 5: Water-Nsq Optimizations (8 processors)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "variant\tT\tspdup\tswitches\trem faults\trem locks\tout faults\tout locks\tblk page\tblk lock\tdiffs made\tdiffs used\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			r.Variant, r.Threads, r.SpeedupPct, r.ThreadSwitches, r.RemoteFaults,
			r.RemoteLocks, r.OutstandingFaults, r.OutstandingLocks,
			r.BlockSamePage, r.BlockSameLock, r.DiffsCreated, r.DiffsUsed)
	}
	tw.Flush()
}
