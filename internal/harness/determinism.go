package harness

import (
	"bytes"
	"fmt"
	"reflect"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/metrics"
	"cvm/internal/trace"
)

// The determinism guard is the conservative parallel engine's safety
// net: it proves that the windowed engine produces byte-identical
// results at every worker count by running the same workload under a
// sweep of Config.EngineWorkers values and comparing every observable
// artifact — application checksum, run statistics, the serialized
// metrics report, and the exported Chrome trace. Identity must hold
// fault-free and under fault schedules (the chaos suite drives the
// guard with fuzzed plans), because fault rolls consume PRNG state in
// delivery order and would expose any nondeterminism in the commit.

// DeterminismProbe captures the byte-level artifacts of one run whose
// identity across engine worker counts the guard asserts.
type DeterminismProbe struct {
	EngineWorkers int
	Checksum      float64
	Stats         cvm.Stats
	ReportJSON    []byte // serialized metrics report
	Chrome        []byte // exported Chrome trace
	Events        int    // trace events recorded
}

// RunDeterminismProbe executes one run on the windowed engine with the
// given worker count (engineWorkers ≥ 1) and collects its artifacts.
// fp may be nil for a fault-free run.
func RunDeterminismProbe(app string, size apps.Size, nodes, threads, engineWorkers int, fp *cvm.FaultPlan) (*DeterminismProbe, error) {
	return runDeterminismProbe(app, size, nodes, threads, engineWorkers, false, fp)
}

// RunDeterminismProbeAdaptive is RunDeterminismProbe with adaptive
// coherence switched on (and thread migration, when the application
// tolerates re-homing).
func RunDeterminismProbeAdaptive(app string, size apps.Size, nodes, threads, engineWorkers int, fp *cvm.FaultPlan) (*DeterminismProbe, error) {
	return runDeterminismProbe(app, size, nodes, threads, engineWorkers, true, fp)
}

func runDeterminismProbe(app string, size apps.Size, nodes, threads, engineWorkers int, adaptive bool, fp *cvm.FaultPlan) (*DeterminismProbe, error) {
	reg := cvm.NewMetrics()
	rec := trace.NewRecorder(nodes, threads, 0)
	cfg := cvm.DefaultConfig(nodes, threads)
	cfg.EngineWorkers = engineWorkers
	cfg.Metrics = reg
	cfg.Tracer = rec
	cfg.Faults = fp
	if adaptive {
		cfg.Adapt = true
		cfg.Migrate = apps.Migratable(app)
	}
	stats, sum, err := apps.RunConfigFull(app, size, cfg, 0)
	if err != nil {
		return nil, fmt.Errorf("harness: probe %s workers=%d: %w", app, engineWorkers, err)
	}
	meta := metrics.Meta{App: app, Config: fmt.Sprintf("%dx%d", nodes, threads)}
	rep := metrics.NewReport(meta, reg.Snapshot(), 10)
	var rj bytes.Buffer
	if err := rep.WriteJSON(&rj); err != nil {
		return nil, err
	}
	var cb bytes.Buffer
	if err := trace.WriteChrome(&cb, rec); err != nil {
		return nil, err
	}
	return &DeterminismProbe{
		EngineWorkers: engineWorkers,
		Checksum:      sum,
		Stats:         stats,
		ReportJSON:    rj.Bytes(),
		Chrome:        cb.Bytes(),
		Events:        rec.Len(),
	}, nil
}

// GuardDeterminism runs app at every worker count in workerCounts and
// returns an error describing the first artifact that differs from the
// first count's run; nil means every artifact was byte-identical.
func GuardDeterminism(app string, size apps.Size, nodes, threads int, workerCounts []int, fp *cvm.FaultPlan) error {
	return guardDeterminism(app, size, nodes, threads, workerCounts, false, fp)
}

// GuardDeterminismAdaptive is GuardDeterminism with adaptive coherence
// (and migration, for migration-safe apps) enabled on every probe: the
// classifier's decisions, the mode-change notices, and the migration
// orders must themselves be functions of the deterministic event order,
// so every artifact stays byte-identical across worker counts. Repeat a
// count in workerCounts to additionally assert run-to-run identity.
func GuardDeterminismAdaptive(app string, size apps.Size, nodes, threads int, workerCounts []int, fp *cvm.FaultPlan) error {
	return guardDeterminism(app, size, nodes, threads, workerCounts, true, fp)
}

func guardDeterminism(app string, size apps.Size, nodes, threads int, workerCounts []int, adaptive bool, fp *cvm.FaultPlan) error {
	if len(workerCounts) < 2 {
		return fmt.Errorf("harness: determinism guard needs at least two worker counts, got %v", workerCounts)
	}
	base, err := runDeterminismProbe(app, size, nodes, threads, workerCounts[0], adaptive, fp)
	if err != nil {
		return err
	}
	for _, w := range workerCounts[1:] {
		p, err := runDeterminismProbe(app, size, nodes, threads, w, adaptive, fp)
		if err != nil {
			return err
		}
		if err := base.diff(p); err != nil {
			return fmt.Errorf("harness: determinism violation in %s %dx%d (workers %d vs %d): %w",
				app, nodes, threads, base.EngineWorkers, p.EngineWorkers, err)
		}
	}
	return nil
}

// diff reports the first artifact in which other differs from p.
func (p *DeterminismProbe) diff(other *DeterminismProbe) error {
	if p.Checksum != other.Checksum {
		return fmt.Errorf("checksum %x != %x", p.Checksum, other.Checksum)
	}
	if !reflect.DeepEqual(p.Stats, other.Stats) {
		return fmt.Errorf("run statistics differ: %+v != %+v", p.Stats.Total, other.Stats.Total)
	}
	if !bytes.Equal(p.ReportJSON, other.ReportJSON) {
		return fmt.Errorf("metrics report bytes differ (%d vs %d bytes at first divergence %d)",
			len(p.ReportJSON), len(other.ReportJSON), firstDiff(p.ReportJSON, other.ReportJSON))
	}
	if p.Events != other.Events {
		return fmt.Errorf("trace event count %d != %d", p.Events, other.Events)
	}
	if !bytes.Equal(p.Chrome, other.Chrome) {
		return fmt.Errorf("chrome trace bytes differ (%d vs %d bytes at first divergence %d)",
			len(p.Chrome), len(other.Chrome), firstDiff(p.Chrome, other.Chrome))
	}
	return nil
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
