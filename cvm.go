// Package cvm is a Go implementation of CVM, the multi-threaded software
// distributed shared memory system of Thitikamol & Keleher, "Multi-threading
// and Remote Latency in Software DSMs" (ICDCS 1997).
//
// CVM emulates shared memory over message passing using a multiple-writer
// lazy release consistency protocol: shared pages are replicated per node,
// writes are collected against twins and shipped as diffs, and consistency
// information piggybacks on lock and barrier messages. The paper's
// contribution — reproduced here — is per-node multi-threading: several
// application threads share each node, and the runtime switches threads
// whenever one blocks on a remote page fetch or lock acquire, hiding remote
// latency behind useful local work.
//
// Because Go's runtime owns the address space (no user-level SIGSEGV
// paging), the cluster is simulated: a deterministic discrete-event engine
// runs one green thread at a time in virtual-time order, with network and
// memory-hierarchy costs calibrated to the paper's measured numbers
// (937 µs two-hop locks, ~1100 µs remote page faults, 8 µs thread switches).
// Every protocol action — twins, diffs, write notices, local lock queues,
// per-node barrier aggregation — is implemented in full; see DESIGN.md.
//
// # Quick start
//
//	cluster, err := cvm.New(cvm.DefaultConfig(4, 2)) // 4 nodes × 2 threads
//	if err != nil { ... }
//	data := cluster.MustAllocF64("data", 1<<16)
//	stats, err := cluster.Run(func(w cvm.Worker) {
//	    chunk := data.Len / w.Threads()
//	    for i := w.GlobalID() * chunk; i < (w.GlobalID()+1)*chunk; i++ {
//	        data.Set(w, i, float64(i))
//	    }
//	    w.Barrier(0)
//	})
package cvm

import (
	"fmt"

	"cvm/internal/core"
	"cvm/internal/memsim"
	"cvm/internal/metrics"
	"cvm/internal/netsim"
	"cvm/internal/sim"
	"cvm/internal/trace"
)

// Worker is one application thread (the paper's unit of multi-threading):
// the handle through which application code accesses shared memory and
// synchronizes. Two engines implement it — the simulated cluster behind
// Cluster.Run (*core.Thread, deterministic virtual time) and the
// real-execution runtime behind internal/rt (OS threads over a loopback
// or TCP transport, wall time). Application code written against Worker
// runs unchanged on both; only timing-dependent observations (Now,
// Stats) differ between the engines.
//
// On the simulated engine every method deterministically advances
// virtual time; on the real engine the modelling-only methods (Compute,
// Phase, Yield, TouchPrivate) are free, since real hardware charges real
// costs on its own.
type Worker interface {
	// GlobalID reports the thread's global index in [0, Threads()).
	// Threads are numbered contiguously per node, so consecutive IDs are
	// co-located — the layout the paper's applications assume.
	GlobalID() int
	// LocalID reports the thread's index within its node.
	LocalID() int
	// NodeID reports the node the thread runs on.
	NodeID() int
	// Threads reports the total number of application threads.
	Threads() int
	// Nodes reports the number of nodes.
	Nodes() int
	// LocalThreads reports the number of threads per node.
	LocalThreads() int
	// Now reports the thread's current time: virtual on the simulator,
	// monotonic wall time since run start on real engines.
	Now() Time
	// Compute charges d of pure computation to the thread (simulation
	// modelling; free on real engines).
	Compute(d Time)
	// Yield requests an explicit thread switch (a CVM system call).
	Yield()
	// Phase declares the application code region, driving the simulated
	// instruction-locality model (free on real engines).
	Phase(p int)
	// TouchPrivate models an access to thread-private memory (free on
	// real engines).
	TouchPrivate(idx int)
	// MarkSteadyState zeroes statistics counters after initialization,
	// mirroring the paper's exclusion of startup from measurements.
	MarkSteadyState()

	// Barrier blocks until every thread has arrived at barrier id.
	Barrier(id int)
	// LocalBarrier blocks until every co-located thread has arrived.
	LocalBarrier(id int)
	// Lock acquires the global lock id; Unlock releases it.
	Lock(id int)
	Unlock(id int)
	// ReduceF64 combines v across all threads with op and returns the
	// result to every thread.
	ReduceF64(id int, v float64, op ReduceOp) float64

	// ReadF64/WriteF64 and ReadI64/WriteI64 access one shared value.
	ReadF64(a Addr) float64
	WriteF64(a Addr, v float64)
	ReadI64(a Addr) int64
	WriteI64(a Addr, v int64)
	// The range forms batch the access check per page touched.
	ReadRangeF64(a Addr, dst []float64)
	WriteRangeF64(a Addr, src []float64)
	FillF64(a Addr, n int, v float64)
	ReadRangeI64(a Addr, dst []int64)
	WriteRangeI64(a Addr, src []int64)
	FillI64(a Addr, n int, v int64)
	// AddF64 is a fused read-modify-write of one float64.
	AddF64(a Addr, v float64)
}

// Allocator is the pre-run surface applications allocate their shared
// segments against. Both cluster kinds implement it — the simulated
// *Cluster here and the real-execution runtime's cluster — so an
// application's setup code is engine-independent.
type Allocator interface {
	// Alloc reserves a page-aligned shared segment.
	Alloc(name string, size int) (Addr, error)
	// MustAlloc is Alloc, panicking on error.
	MustAlloc(name string, size int) Addr
	// PageSize reports the coherence unit in bytes.
	PageSize() int
	// Nodes reports the cluster's node count.
	Nodes() int
	// ThreadsPerNode reports the application threads per node.
	ThreadsPerNode() int
}

// Re-exported core types.
type (
	// Addr is a byte offset in the shared address space.
	Addr = core.Addr
	// Config parameterizes the simulated cluster.
	Config = core.Config
	// Stats aggregates a run's statistics.
	Stats = core.RunStats
	// NodeStats are per-node DSM counters and the Figure-1 time breakdown.
	NodeStats = core.NodeStats
	// ReduceOp selects a reduction operator.
	ReduceOp = core.ReduceOp
	// Protocol selects the coherence protocol.
	Protocol = core.Protocol
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Tracer receives protocol events when set on Config.Tracer; see
	// internal/trace for the event model, recorder, and exporters.
	Tracer = trace.Tracer
	// NetParams are interconnect cost parameters.
	NetParams = netsim.Params
	// MemParams are cache/TLB geometry parameters.
	MemParams = memsim.Params
	// Metrics is the virtual-time metrics registry; create one with
	// NewMetrics, set it on Config.Metrics, and read the collected
	// histograms and hot-spot attribution with its Snapshot method after
	// the run. See internal/metrics for the report and compare tooling.
	Metrics = metrics.Registry
	// MetricsSnapshot is the serializable state of a Metrics registry.
	MetricsSnapshot = metrics.Snapshot
	// MetricsReport is a run profile derived from a snapshot (hot-page
	// and hot-lock tables included), with JSON/CSV/text writers.
	MetricsReport = metrics.Report
	// FaultPlan configures deterministic fault injection (network
	// drop/duplication/reordering/jitter plus node pause and slowdown
	// windows); set on Config.Faults. Parse the -faults flag syntax with
	// ParseFaults. See internal/core's faultplan.go for the model.
	FaultPlan = core.FaultPlan
	// NodePause suspends one node's compute for a virtual-time window.
	NodePause = core.NodePause
	// NodeSlowdown dilates one node's compute by a factor for a window.
	NodeSlowdown = core.NodeSlowdown
	// FaultParams is the network-level fault model (per-class
	// probabilities and jitter, keyed by a deterministic seed).
	FaultParams = netsim.FaultParams
	// AdaptTuning parameterizes the adaptive coherence classifier and the
	// thread-migration policy; set on Config.AdaptTune (zero value =
	// calibrated defaults). Only read when Config.Adapt or Config.Migrate
	// is set.
	AdaptTuning = core.AdaptTuning
)

// ErrTransport is wrapped by the error a run returns when fault
// injection defeats the retry budget (the network was effectively dead).
var ErrTransport = core.ErrTransport

// ParseFaults builds a FaultPlan from the compact comma-separated syntax
// the -faults command-line flag accepts, e.g.
// "drop=0.01,dup=0.001,jitter=500us". seed keys the fault PRNG; the same
// (spec, seed) pair reproduces the same fault schedule bit for bit.
func ParseFaults(spec string, seed uint64) (*FaultPlan, error) {
	return core.ParseFaultPlan(spec, seed)
}

// Re-exported constants.
const (
	ReduceSum = core.ReduceSum
	ReduceMax = core.ReduceMax
	ReduceMin = core.ReduceMin

	// ProtocolLRC is the paper's lazy multi-writer protocol (default).
	ProtocolLRC = core.ProtocolLRC
	// ProtocolSW is the single-writer write-invalidate baseline.
	ProtocolSW = core.ProtocolSW

	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DefaultConfig returns the paper's calibrated cluster configuration for
// the given shape.
func DefaultConfig(nodes, threadsPerNode int) Config {
	return core.DefaultConfig(nodes, threadsPerNode)
}

// NewMetrics returns a metrics registry ready to set on Config.Metrics.
// One registry serves exactly one cluster.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// NewMetricsReport derives a report (top-N hot-spot tables included)
// from a snapshot; see metrics.NewReport.
func NewMetricsReport(app, config string, snap *MetricsSnapshot, topN int) *MetricsReport {
	return metrics.NewReport(metrics.Meta{App: app, Config: config}, snap, topN)
}

// Cluster is a simulated CVM cluster ready to allocate shared memory and
// run an application.
type Cluster struct {
	sys *core.System
}

// New builds a cluster from cfg.
func New(cfg Config) (*Cluster, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{sys: sys}, nil
}

// System exposes the underlying DSM system for tools and tests.
func (c *Cluster) System() *core.System { return c.sys }

// Alloc reserves a page-aligned shared segment.
func (c *Cluster) Alloc(name string, size int) (Addr, error) {
	return c.sys.Alloc(name, size)
}

// MustAlloc is Alloc, panicking on error. Allocation errors are
// programming errors (allocating after Run, or a non-positive size), so
// examples and applications use this form.
func (c *Cluster) MustAlloc(name string, size int) Addr {
	a, err := c.sys.Alloc(name, size)
	if err != nil {
		panic(fmt.Sprintf("cvm: %v", err))
	}
	return a
}

// PageSize reports the coherence unit in bytes (Allocator).
func (c *Cluster) PageSize() int { return c.sys.Config().PageSize }

// Nodes reports the cluster's node count (Allocator).
func (c *Cluster) Nodes() int { return c.sys.Config().Nodes }

// ThreadsPerNode reports the application threads per node (Allocator).
func (c *Cluster) ThreadsPerNode() int { return c.sys.Config().ThreadsPerNode }

// Run spawns Nodes × ThreadsPerNode workers executing main, runs the
// simulation to completion, and returns the collected statistics.
func (c *Cluster) Run(main func(Worker)) (Stats, error) {
	if err := c.sys.Start(func(t *core.Thread) { main(t) }); err != nil {
		return Stats{}, err
	}
	if err := c.sys.Run(); err != nil {
		return Stats{}, err
	}
	return c.sys.Stats(), nil
}
